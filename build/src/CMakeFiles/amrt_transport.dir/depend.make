# Empty dependencies file for amrt_transport.
# This may be replaced when dependencies are built.
