file(REMOVE_RECURSE
  "libamrt_transport.a"
)
