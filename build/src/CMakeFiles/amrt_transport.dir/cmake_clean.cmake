file(REMOVE_RECURSE
  "CMakeFiles/amrt_transport.dir/transport/config.cpp.o"
  "CMakeFiles/amrt_transport.dir/transport/config.cpp.o.d"
  "CMakeFiles/amrt_transport.dir/transport/endpoint.cpp.o"
  "CMakeFiles/amrt_transport.dir/transport/endpoint.cpp.o.d"
  "CMakeFiles/amrt_transport.dir/transport/homa.cpp.o"
  "CMakeFiles/amrt_transport.dir/transport/homa.cpp.o.d"
  "CMakeFiles/amrt_transport.dir/transport/ndp.cpp.o"
  "CMakeFiles/amrt_transport.dir/transport/ndp.cpp.o.d"
  "CMakeFiles/amrt_transport.dir/transport/phost.cpp.o"
  "CMakeFiles/amrt_transport.dir/transport/phost.cpp.o.d"
  "CMakeFiles/amrt_transport.dir/transport/receiver_driven.cpp.o"
  "CMakeFiles/amrt_transport.dir/transport/receiver_driven.cpp.o.d"
  "libamrt_transport.a"
  "libamrt_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amrt_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
