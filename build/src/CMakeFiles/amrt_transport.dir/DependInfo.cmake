
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/config.cpp" "src/CMakeFiles/amrt_transport.dir/transport/config.cpp.o" "gcc" "src/CMakeFiles/amrt_transport.dir/transport/config.cpp.o.d"
  "/root/repo/src/transport/endpoint.cpp" "src/CMakeFiles/amrt_transport.dir/transport/endpoint.cpp.o" "gcc" "src/CMakeFiles/amrt_transport.dir/transport/endpoint.cpp.o.d"
  "/root/repo/src/transport/homa.cpp" "src/CMakeFiles/amrt_transport.dir/transport/homa.cpp.o" "gcc" "src/CMakeFiles/amrt_transport.dir/transport/homa.cpp.o.d"
  "/root/repo/src/transport/ndp.cpp" "src/CMakeFiles/amrt_transport.dir/transport/ndp.cpp.o" "gcc" "src/CMakeFiles/amrt_transport.dir/transport/ndp.cpp.o.d"
  "/root/repo/src/transport/phost.cpp" "src/CMakeFiles/amrt_transport.dir/transport/phost.cpp.o" "gcc" "src/CMakeFiles/amrt_transport.dir/transport/phost.cpp.o.d"
  "/root/repo/src/transport/receiver_driven.cpp" "src/CMakeFiles/amrt_transport.dir/transport/receiver_driven.cpp.o" "gcc" "src/CMakeFiles/amrt_transport.dir/transport/receiver_driven.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/amrt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amrt_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amrt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
