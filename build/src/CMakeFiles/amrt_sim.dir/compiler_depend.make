# Empty compiler generated dependencies file for amrt_sim.
# This may be replaced when dependencies are built.
