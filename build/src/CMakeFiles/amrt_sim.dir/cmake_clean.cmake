file(REMOVE_RECURSE
  "CMakeFiles/amrt_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/amrt_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/amrt_sim.dir/sim/rng.cpp.o"
  "CMakeFiles/amrt_sim.dir/sim/rng.cpp.o.d"
  "CMakeFiles/amrt_sim.dir/sim/scheduler.cpp.o"
  "CMakeFiles/amrt_sim.dir/sim/scheduler.cpp.o.d"
  "CMakeFiles/amrt_sim.dir/sim/time.cpp.o"
  "CMakeFiles/amrt_sim.dir/sim/time.cpp.o.d"
  "CMakeFiles/amrt_sim.dir/sim/trace.cpp.o"
  "CMakeFiles/amrt_sim.dir/sim/trace.cpp.o.d"
  "libamrt_sim.a"
  "libamrt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amrt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
