file(REMOVE_RECURSE
  "libamrt_sim.a"
)
