
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/amrt_sim.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/amrt_sim.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/rng.cpp" "src/CMakeFiles/amrt_sim.dir/sim/rng.cpp.o" "gcc" "src/CMakeFiles/amrt_sim.dir/sim/rng.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/CMakeFiles/amrt_sim.dir/sim/scheduler.cpp.o" "gcc" "src/CMakeFiles/amrt_sim.dir/sim/scheduler.cpp.o.d"
  "/root/repo/src/sim/time.cpp" "src/CMakeFiles/amrt_sim.dir/sim/time.cpp.o" "gcc" "src/CMakeFiles/amrt_sim.dir/sim/time.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/amrt_sim.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/amrt_sim.dir/sim/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
