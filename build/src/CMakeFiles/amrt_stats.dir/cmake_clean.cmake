file(REMOVE_RECURSE
  "CMakeFiles/amrt_stats.dir/stats/fct.cpp.o"
  "CMakeFiles/amrt_stats.dir/stats/fct.cpp.o.d"
  "CMakeFiles/amrt_stats.dir/stats/summary.cpp.o"
  "CMakeFiles/amrt_stats.dir/stats/summary.cpp.o.d"
  "CMakeFiles/amrt_stats.dir/stats/timeseries.cpp.o"
  "CMakeFiles/amrt_stats.dir/stats/timeseries.cpp.o.d"
  "libamrt_stats.a"
  "libamrt_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amrt_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
