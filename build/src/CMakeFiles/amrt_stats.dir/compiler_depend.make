# Empty compiler generated dependencies file for amrt_stats.
# This may be replaced when dependencies are built.
