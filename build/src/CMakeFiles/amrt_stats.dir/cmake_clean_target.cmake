file(REMOVE_RECURSE
  "libamrt_stats.a"
)
