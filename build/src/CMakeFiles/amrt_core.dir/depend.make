# Empty dependencies file for amrt_core.
# This may be replaced when dependencies are built.
