
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/amrt.cpp" "src/CMakeFiles/amrt_core.dir/core/amrt.cpp.o" "gcc" "src/CMakeFiles/amrt_core.dir/core/amrt.cpp.o.d"
  "/root/repo/src/core/anti_ecn.cpp" "src/CMakeFiles/amrt_core.dir/core/anti_ecn.cpp.o" "gcc" "src/CMakeFiles/amrt_core.dir/core/anti_ecn.cpp.o.d"
  "/root/repo/src/core/factory.cpp" "src/CMakeFiles/amrt_core.dir/core/factory.cpp.o" "gcc" "src/CMakeFiles/amrt_core.dir/core/factory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/amrt_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amrt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amrt_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amrt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
