file(REMOVE_RECURSE
  "libamrt_core.a"
)
