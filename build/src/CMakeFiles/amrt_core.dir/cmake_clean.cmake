file(REMOVE_RECURSE
  "CMakeFiles/amrt_core.dir/core/amrt.cpp.o"
  "CMakeFiles/amrt_core.dir/core/amrt.cpp.o.d"
  "CMakeFiles/amrt_core.dir/core/anti_ecn.cpp.o"
  "CMakeFiles/amrt_core.dir/core/anti_ecn.cpp.o.d"
  "CMakeFiles/amrt_core.dir/core/factory.cpp.o"
  "CMakeFiles/amrt_core.dir/core/factory.cpp.o.d"
  "libamrt_core.a"
  "libamrt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amrt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
