file(REMOVE_RECURSE
  "CMakeFiles/amrt_model.dir/model/amrt_model.cpp.o"
  "CMakeFiles/amrt_model.dir/model/amrt_model.cpp.o.d"
  "libamrt_model.a"
  "libamrt_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amrt_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
