file(REMOVE_RECURSE
  "libamrt_model.a"
)
