# Empty compiler generated dependencies file for amrt_model.
# This may be replaced when dependencies are built.
