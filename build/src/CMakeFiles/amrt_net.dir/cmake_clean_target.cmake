file(REMOVE_RECURSE
  "libamrt_net.a"
)
