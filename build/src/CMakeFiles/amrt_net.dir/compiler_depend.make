# Empty compiler generated dependencies file for amrt_net.
# This may be replaced when dependencies are built.
