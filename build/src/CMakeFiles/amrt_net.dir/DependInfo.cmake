
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/host.cpp" "src/CMakeFiles/amrt_net.dir/net/host.cpp.o" "gcc" "src/CMakeFiles/amrt_net.dir/net/host.cpp.o.d"
  "/root/repo/src/net/monitor.cpp" "src/CMakeFiles/amrt_net.dir/net/monitor.cpp.o" "gcc" "src/CMakeFiles/amrt_net.dir/net/monitor.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/CMakeFiles/amrt_net.dir/net/packet.cpp.o" "gcc" "src/CMakeFiles/amrt_net.dir/net/packet.cpp.o.d"
  "/root/repo/src/net/port.cpp" "src/CMakeFiles/amrt_net.dir/net/port.cpp.o" "gcc" "src/CMakeFiles/amrt_net.dir/net/port.cpp.o.d"
  "/root/repo/src/net/queue.cpp" "src/CMakeFiles/amrt_net.dir/net/queue.cpp.o" "gcc" "src/CMakeFiles/amrt_net.dir/net/queue.cpp.o.d"
  "/root/repo/src/net/routing.cpp" "src/CMakeFiles/amrt_net.dir/net/routing.cpp.o" "gcc" "src/CMakeFiles/amrt_net.dir/net/routing.cpp.o.d"
  "/root/repo/src/net/switch.cpp" "src/CMakeFiles/amrt_net.dir/net/switch.cpp.o" "gcc" "src/CMakeFiles/amrt_net.dir/net/switch.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/CMakeFiles/amrt_net.dir/net/topology.cpp.o" "gcc" "src/CMakeFiles/amrt_net.dir/net/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/amrt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
