file(REMOVE_RECURSE
  "CMakeFiles/amrt_net.dir/net/host.cpp.o"
  "CMakeFiles/amrt_net.dir/net/host.cpp.o.d"
  "CMakeFiles/amrt_net.dir/net/monitor.cpp.o"
  "CMakeFiles/amrt_net.dir/net/monitor.cpp.o.d"
  "CMakeFiles/amrt_net.dir/net/packet.cpp.o"
  "CMakeFiles/amrt_net.dir/net/packet.cpp.o.d"
  "CMakeFiles/amrt_net.dir/net/port.cpp.o"
  "CMakeFiles/amrt_net.dir/net/port.cpp.o.d"
  "CMakeFiles/amrt_net.dir/net/queue.cpp.o"
  "CMakeFiles/amrt_net.dir/net/queue.cpp.o.d"
  "CMakeFiles/amrt_net.dir/net/routing.cpp.o"
  "CMakeFiles/amrt_net.dir/net/routing.cpp.o.d"
  "CMakeFiles/amrt_net.dir/net/switch.cpp.o"
  "CMakeFiles/amrt_net.dir/net/switch.cpp.o.d"
  "CMakeFiles/amrt_net.dir/net/topology.cpp.o"
  "CMakeFiles/amrt_net.dir/net/topology.cpp.o.d"
  "libamrt_net.a"
  "libamrt_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amrt_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
