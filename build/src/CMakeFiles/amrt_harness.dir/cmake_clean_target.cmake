file(REMOVE_RECURSE
  "libamrt_harness.a"
)
