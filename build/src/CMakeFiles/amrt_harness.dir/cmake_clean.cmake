file(REMOVE_RECURSE
  "CMakeFiles/amrt_harness.dir/harness/csv.cpp.o"
  "CMakeFiles/amrt_harness.dir/harness/csv.cpp.o.d"
  "CMakeFiles/amrt_harness.dir/harness/experiment.cpp.o"
  "CMakeFiles/amrt_harness.dir/harness/experiment.cpp.o.d"
  "CMakeFiles/amrt_harness.dir/harness/options.cpp.o"
  "CMakeFiles/amrt_harness.dir/harness/options.cpp.o.d"
  "CMakeFiles/amrt_harness.dir/harness/scenarios.cpp.o"
  "CMakeFiles/amrt_harness.dir/harness/scenarios.cpp.o.d"
  "libamrt_harness.a"
  "libamrt_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amrt_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
