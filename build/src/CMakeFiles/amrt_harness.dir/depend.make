# Empty dependencies file for amrt_harness.
# This may be replaced when dependencies are built.
