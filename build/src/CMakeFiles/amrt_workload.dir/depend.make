# Empty dependencies file for amrt_workload.
# This may be replaced when dependencies are built.
