file(REMOVE_RECURSE
  "libamrt_workload.a"
)
