file(REMOVE_RECURSE
  "CMakeFiles/amrt_workload.dir/workload/cdf.cpp.o"
  "CMakeFiles/amrt_workload.dir/workload/cdf.cpp.o.d"
  "CMakeFiles/amrt_workload.dir/workload/generator.cpp.o"
  "CMakeFiles/amrt_workload.dir/workload/generator.cpp.o.d"
  "CMakeFiles/amrt_workload.dir/workload/workloads.cpp.o"
  "CMakeFiles/amrt_workload.dir/workload/workloads.cpp.o.d"
  "libamrt_workload.a"
  "libamrt_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amrt_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
