
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/cdf.cpp" "src/CMakeFiles/amrt_workload.dir/workload/cdf.cpp.o" "gcc" "src/CMakeFiles/amrt_workload.dir/workload/cdf.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "src/CMakeFiles/amrt_workload.dir/workload/generator.cpp.o" "gcc" "src/CMakeFiles/amrt_workload.dir/workload/generator.cpp.o.d"
  "/root/repo/src/workload/workloads.cpp" "src/CMakeFiles/amrt_workload.dir/workload/workloads.cpp.o" "gcc" "src/CMakeFiles/amrt_workload.dir/workload/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/amrt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
