file(REMOVE_RECURSE
  "CMakeFiles/amrt-sim.dir/amrt_sim.cpp.o"
  "CMakeFiles/amrt-sim.dir/amrt_sim.cpp.o.d"
  "amrt_sim"
  "amrt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amrt-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
