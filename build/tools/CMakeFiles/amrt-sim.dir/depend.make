# Empty dependencies file for amrt-sim.
# This may be replaced when dependencies are built.
