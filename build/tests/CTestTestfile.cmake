# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_time[1]_include.cmake")
include("/root/repo/build/tests/test_event_queue[1]_include.cmake")
include("/root/repo/build/tests/test_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_packet[1]_include.cmake")
include("/root/repo/build/tests/test_queues[1]_include.cmake")
include("/root/repo/build/tests/test_anti_ecn[1]_include.cmake")
include("/root/repo/build/tests/test_port_link[1]_include.cmake")
include("/root/repo/build/tests/test_routing_switch[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_monitor[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_transport_unit[1]_include.cmake")
include("/root/repo/build/tests/test_transport_recovery[1]_include.cmake")
include("/root/repo/build/tests/test_protocol_behaviors[1]_include.cmake")
include("/root/repo/build/tests/test_scenarios[1]_include.cmake")
include("/root/repo/build/tests/test_integration_fabric[1]_include.cmake")
include("/root/repo/build/tests/test_harness_utils[1]_include.cmake")
include("/root/repo/build/tests/test_property_conservation[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_model_validation[1]_include.cmake")
