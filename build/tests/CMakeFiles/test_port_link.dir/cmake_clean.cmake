file(REMOVE_RECURSE
  "CMakeFiles/test_port_link.dir/test_port_link.cpp.o"
  "CMakeFiles/test_port_link.dir/test_port_link.cpp.o.d"
  "test_port_link"
  "test_port_link.pdb"
  "test_port_link[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_port_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
