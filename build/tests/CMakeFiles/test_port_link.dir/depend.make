# Empty dependencies file for test_port_link.
# This may be replaced when dependencies are built.
