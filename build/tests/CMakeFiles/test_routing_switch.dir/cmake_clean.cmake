file(REMOVE_RECURSE
  "CMakeFiles/test_routing_switch.dir/test_routing_switch.cpp.o"
  "CMakeFiles/test_routing_switch.dir/test_routing_switch.cpp.o.d"
  "test_routing_switch"
  "test_routing_switch.pdb"
  "test_routing_switch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_routing_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
