# Empty compiler generated dependencies file for test_routing_switch.
# This may be replaced when dependencies are built.
