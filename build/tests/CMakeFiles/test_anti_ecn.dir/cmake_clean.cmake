file(REMOVE_RECURSE
  "CMakeFiles/test_anti_ecn.dir/test_anti_ecn.cpp.o"
  "CMakeFiles/test_anti_ecn.dir/test_anti_ecn.cpp.o.d"
  "test_anti_ecn"
  "test_anti_ecn.pdb"
  "test_anti_ecn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_anti_ecn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
