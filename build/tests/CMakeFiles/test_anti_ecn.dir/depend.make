# Empty dependencies file for test_anti_ecn.
# This may be replaced when dependencies are built.
