# Empty dependencies file for test_harness_utils.
# This may be replaced when dependencies are built.
