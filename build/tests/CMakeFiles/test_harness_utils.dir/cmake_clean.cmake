file(REMOVE_RECURSE
  "CMakeFiles/test_harness_utils.dir/test_harness_utils.cpp.o"
  "CMakeFiles/test_harness_utils.dir/test_harness_utils.cpp.o.d"
  "test_harness_utils"
  "test_harness_utils.pdb"
  "test_harness_utils[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_harness_utils.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
