file(REMOVE_RECURSE
  "CMakeFiles/test_transport_recovery.dir/test_transport_recovery.cpp.o"
  "CMakeFiles/test_transport_recovery.dir/test_transport_recovery.cpp.o.d"
  "test_transport_recovery"
  "test_transport_recovery.pdb"
  "test_transport_recovery[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transport_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
