# Empty compiler generated dependencies file for test_transport_recovery.
# This may be replaced when dependencies are built.
