# Empty dependencies file for test_property_conservation.
# This may be replaced when dependencies are built.
