file(REMOVE_RECURSE
  "CMakeFiles/test_property_conservation.dir/test_property_conservation.cpp.o"
  "CMakeFiles/test_property_conservation.dir/test_property_conservation.cpp.o.d"
  "test_property_conservation"
  "test_property_conservation.pdb"
  "test_property_conservation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_conservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
