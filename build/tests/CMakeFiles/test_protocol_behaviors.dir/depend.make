# Empty dependencies file for test_protocol_behaviors.
# This may be replaced when dependencies are built.
