
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_protocol_behaviors.cpp" "tests/CMakeFiles/test_protocol_behaviors.dir/test_protocol_behaviors.cpp.o" "gcc" "tests/CMakeFiles/test_protocol_behaviors.dir/test_protocol_behaviors.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/amrt_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amrt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amrt_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amrt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amrt_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amrt_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amrt_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amrt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
