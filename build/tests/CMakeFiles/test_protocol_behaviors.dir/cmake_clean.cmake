file(REMOVE_RECURSE
  "CMakeFiles/test_protocol_behaviors.dir/test_protocol_behaviors.cpp.o"
  "CMakeFiles/test_protocol_behaviors.dir/test_protocol_behaviors.cpp.o.d"
  "test_protocol_behaviors"
  "test_protocol_behaviors.pdb"
  "test_protocol_behaviors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol_behaviors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
