file(REMOVE_RECURSE
  "CMakeFiles/test_transport_unit.dir/test_transport_unit.cpp.o"
  "CMakeFiles/test_transport_unit.dir/test_transport_unit.cpp.o.d"
  "test_transport_unit"
  "test_transport_unit.pdb"
  "test_transport_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transport_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
