# Empty dependencies file for test_transport_unit.
# This may be replaced when dependencies are built.
