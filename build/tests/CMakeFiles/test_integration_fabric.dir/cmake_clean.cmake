file(REMOVE_RECURSE
  "CMakeFiles/test_integration_fabric.dir/test_integration_fabric.cpp.o"
  "CMakeFiles/test_integration_fabric.dir/test_integration_fabric.cpp.o.d"
  "test_integration_fabric"
  "test_integration_fabric.pdb"
  "test_integration_fabric[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
