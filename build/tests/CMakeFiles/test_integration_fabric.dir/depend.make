# Empty dependencies file for test_integration_fabric.
# This may be replaced when dependencies are built.
