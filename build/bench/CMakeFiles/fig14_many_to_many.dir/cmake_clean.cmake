file(REMOVE_RECURSE
  "CMakeFiles/fig14_many_to_many.dir/fig14_many_to_many.cpp.o"
  "CMakeFiles/fig14_many_to_many.dir/fig14_many_to_many.cpp.o.d"
  "fig14_many_to_many"
  "fig14_many_to_many.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_many_to_many.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
