# Empty dependencies file for fig14_many_to_many.
# This may be replaced when dependencies are built.
