file(REMOVE_RECURSE
  "CMakeFiles/fig09_testbed_dynamic.dir/fig09_testbed_dynamic.cpp.o"
  "CMakeFiles/fig09_testbed_dynamic.dir/fig09_testbed_dynamic.cpp.o.d"
  "fig09_testbed_dynamic"
  "fig09_testbed_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_testbed_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
