# Empty compiler generated dependencies file for fig09_testbed_dynamic.
# This may be replaced when dependencies are built.
