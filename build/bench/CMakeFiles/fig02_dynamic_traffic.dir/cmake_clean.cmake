file(REMOVE_RECURSE
  "CMakeFiles/fig02_dynamic_traffic.dir/fig02_dynamic_traffic.cpp.o"
  "CMakeFiles/fig02_dynamic_traffic.dir/fig02_dynamic_traffic.cpp.o.d"
  "fig02_dynamic_traffic"
  "fig02_dynamic_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_dynamic_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
