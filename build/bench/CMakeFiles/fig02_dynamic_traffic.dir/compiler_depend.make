# Empty compiler generated dependencies file for fig02_dynamic_traffic.
# This may be replaced when dependencies are built.
