# Empty compiler generated dependencies file for ablation_amrt.
# This may be replaced when dependencies are built.
