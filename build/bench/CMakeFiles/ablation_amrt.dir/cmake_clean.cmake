file(REMOVE_RECURSE
  "CMakeFiles/ablation_amrt.dir/ablation_amrt.cpp.o"
  "CMakeFiles/ablation_amrt.dir/ablation_amrt.cpp.o.d"
  "ablation_amrt"
  "ablation_amrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_amrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
