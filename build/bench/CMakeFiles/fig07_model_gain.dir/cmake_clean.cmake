file(REMOVE_RECURSE
  "CMakeFiles/fig07_model_gain.dir/fig07_model_gain.cpp.o"
  "CMakeFiles/fig07_model_gain.dir/fig07_model_gain.cpp.o.d"
  "fig07_model_gain"
  "fig07_model_gain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_model_gain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
