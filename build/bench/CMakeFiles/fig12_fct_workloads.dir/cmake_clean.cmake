file(REMOVE_RECURSE
  "CMakeFiles/fig12_fct_workloads.dir/fig12_fct_workloads.cpp.o"
  "CMakeFiles/fig12_fct_workloads.dir/fig12_fct_workloads.cpp.o.d"
  "fig12_fct_workloads"
  "fig12_fct_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_fct_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
