# Empty compiler generated dependencies file for fig11_testbed_multibottleneck.
# This may be replaced when dependencies are built.
