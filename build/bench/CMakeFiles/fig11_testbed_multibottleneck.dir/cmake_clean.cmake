file(REMOVE_RECURSE
  "CMakeFiles/fig11_testbed_multibottleneck.dir/fig11_testbed_multibottleneck.cpp.o"
  "CMakeFiles/fig11_testbed_multibottleneck.dir/fig11_testbed_multibottleneck.cpp.o.d"
  "fig11_testbed_multibottleneck"
  "fig11_testbed_multibottleneck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_testbed_multibottleneck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
