# Empty dependencies file for fig01_multi_bottleneck.
# This may be replaced when dependencies are built.
