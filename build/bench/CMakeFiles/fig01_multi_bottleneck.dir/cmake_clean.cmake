file(REMOVE_RECURSE
  "CMakeFiles/fig01_multi_bottleneck.dir/fig01_multi_bottleneck.cpp.o"
  "CMakeFiles/fig01_multi_bottleneck.dir/fig01_multi_bottleneck.cpp.o.d"
  "fig01_multi_bottleneck"
  "fig01_multi_bottleneck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_multi_bottleneck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
