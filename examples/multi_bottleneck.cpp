// Multi-bottleneck scenario (the paper's Fig. 10/11 testbed experiment):
// a two-hop chain S0 -> S1 -> S2 where flow f1 crosses both bottlenecks,
// f2 shares the first with it and f3/f4 the second. Runs all four protocols
// and prints each flow's throughput timeline plus completion times — watch
// f2 climb above its initial 50% share only under AMRT.
//
//   usage: multi_bottleneck [protocol]   (default: all four)
#include <cstdio>
#include <string>

#include "harness/scenarios.hpp"

using namespace amrt;
using harness::ChainConfig;
using harness::ChainFlow;
using harness::ChainPath;

namespace {

void run_one(transport::Protocol proto) {
  using sim::Duration;
  ChainConfig cfg;
  cfg.proto = proto;
  cfg.link_rate = sim::Bandwidth::gbps(10);
  // f1 and f2 split bottleneck 1; f3 arrives later and squeezes f1 at
  // bottleneck 2; f4 then shares bottleneck 2 with f3.
  cfg.flows = {
      ChainFlow{ChainPath::kBoth, 5'000'000, Duration::zero()},           // f1
      ChainFlow{ChainPath::kFirst, 6'000'000, Duration::zero()},          // f2
      ChainFlow{ChainPath::kSecond, 4'000'000, Duration::milliseconds(1)},// f3
      ChainFlow{ChainPath::kSecond, 4'000'000, Duration::milliseconds(3)},// f4
  };
  cfg.duration = Duration::milliseconds(14);
  cfg.bin = Duration::microseconds(500);

  const auto r = harness::run_chain(cfg);

  std::printf("== %s ==\n", transport::to_string(proto));
  std::printf("%-8s", "t(ms)");
  for (std::size_t f = 0; f < cfg.flows.size(); ++f) std::printf("f%zu(Gbps)  ", f + 1);
  std::printf("%s\n", "B1 util");
  const std::size_t bins = r.bottleneck1_util.size();
  for (std::size_t b = 0; b < bins; b += 2) {
    std::printf("%-8.1f", static_cast<double>(b) * r.bin.to_millis());
    for (const auto& series : r.flow_gbps) {
      std::printf("%-10.2f", b < series.size() ? series[b] : 0.0);
    }
    std::printf("%.2f\n", r.bottleneck1_util[b]);
  }
  for (std::size_t f = 0; f < r.flow_fct_ms.size(); ++f) {
    std::printf("f%zu fct: %s\n", f + 1,
                r.flow_fct_ms[f] < 0 ? "(incomplete)" : (std::to_string(r.flow_fct_ms[f]) + " ms").c_str());
  }
  std::printf("bottleneck1 mean util %.1f%%, bottleneck2 mean util %.1f%%, max queue %zu pkts\n\n",
              100.0 * r.mean_util_b1, 100.0 * r.mean_util_b2, r.max_queue_pkts);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    run_one(transport::protocol_from_string(argv[1]));
    return 0;
  }
  for (auto proto : {transport::Protocol::kPhost, transport::Protocol::kHoma,
                     transport::Protocol::kNdp, transport::Protocol::kAmrt}) {
    run_one(proto);
  }
  return 0;
}
