// Dynamic-traffic scenario (the paper's Fig. 2 motivation / Fig. 9 testbed):
// four flows with distinct sender/receiver pairs share one bottleneck and
// finish one after another. Under pHost the freed bandwidth is wasted (the
// utilization staircase of Fig. 2); under AMRT the anti-ECN marks let the
// survivors absorb it within a couple of RTTs.
//
//   usage: dynamic_traffic [protocol]    (default: pHost then AMRT)
#include <cstdio>

#include "harness/scenarios.hpp"

using namespace amrt;
using harness::DynamicConfig;
using harness::DynamicFlow;

namespace {

void run_one(transport::Protocol proto) {
  using sim::Duration;
  DynamicConfig cfg;
  cfg.proto = proto;
  cfg.link_rate = sim::Bandwidth::gbps(10);
  // Staggered sizes: at a fair quarter-share f1 finishes first, then f2, f3.
  cfg.flows = {
      DynamicFlow{2'500'000, Duration::zero()},
      DynamicFlow{5'000'000, Duration::zero()},
      DynamicFlow{7'500'000, Duration::zero()},
      DynamicFlow{10'000'000, Duration::zero()},
  };
  cfg.duration = Duration::milliseconds(30);
  cfg.bin = Duration::microseconds(500);

  const auto r = harness::run_dynamic(cfg);

  std::printf("== %s ==\n", transport::to_string(proto));
  std::printf("%-8s%-10s%-10s%-10s%-10s%s\n", "t(ms)", "f1", "f2", "f3", "f4", "util");
  for (std::size_t b = 0; b < r.bottleneck1_util.size(); b += 4) {
    std::printf("%-8.1f", static_cast<double>(b) * r.bin.to_millis());
    for (const auto& series : r.flow_gbps) {
      std::printf("%-10.2f", b < series.size() ? series[b] : 0.0);
    }
    std::printf("%.2f\n", r.bottleneck1_util[b]);
  }
  for (std::size_t f = 0; f < r.flow_fct_ms.size(); ++f) {
    if (r.flow_fct_ms[f] >= 0) {
      std::printf("f%zu fct: %.2f ms\n", f + 1, r.flow_fct_ms[f]);
    }
  }
  std::printf("bottleneck mean utilization: %.1f%%\n\n", 100.0 * r.mean_util_b1);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    run_one(transport::protocol_from_string(argv[1]));
    return 0;
  }
  run_one(transport::Protocol::kPhost);
  run_one(transport::Protocol::kAmrt);
  return 0;
}
