// Incast (Section 8.2 / the partition-aggregate pattern of Section 2.2):
// N synchronized senders answer one receiver through a single ToR switch.
// With the paper's small-buffer discipline (Section 6: an 8-packet drop
// threshold for AMRT, trimming for NDP) this is the stress test for loss
// recovery. Prints per-protocol p99 FCT, queue peaks, drops and goodput.
//
//   usage: incast [senders] [bytes_per_sender]
#include <cstdio>
#include <cstdlib>

#include "harness/scenarios.hpp"

using namespace amrt;

int main(int argc, char** argv) {
  harness::IncastConfig cfg;
  if (argc > 1) cfg.senders = std::atoi(argv[1]);
  if (argc > 2) cfg.bytes_per_sender = std::strtoull(argv[2], nullptr, 10);

  // Section 6: tight buffers — AMRT/pHost/Homa drop beyond 8 packets, NDP
  // trims at the same depth.
  cfg.queues.buffer_pkts = 8;
  cfg.queues.trim_threshold = 8;

  std::printf("incast: %d senders x %llu bytes, buffers %zu pkts\n\n", cfg.senders,
              static_cast<unsigned long long>(cfg.bytes_per_sender), cfg.queues.buffer_pkts);
  std::printf("%-8s %-10s %-10s %-10s %-8s %-8s %-8s %-10s\n", "proto", "afct(us)", "p99(us)",
              "done", "maxQ", "drops", "trims", "goodput");
  for (auto proto : {transport::Protocol::kPhost, transport::Protocol::kHoma,
                     transport::Protocol::kNdp, transport::Protocol::kAmrt}) {
    cfg.proto = proto;
    const auto r = harness::run_incast(cfg);
    std::printf("%-8s %-10.1f %-10.1f %zu/%-7d %-8zu %-8llu %-8llu %.2f Gbps\n",
                transport::to_string(proto), r.fct.afct_us, r.fct.p99_us, r.fct.completed,
                cfg.senders, r.max_queue_pkts, static_cast<unsigned long long>(r.drops),
                static_cast<unsigned long long>(r.trims), r.goodput_gbps);
  }
  return 0;
}
