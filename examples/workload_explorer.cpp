// Prints the five Section 8.1 workload distributions: knots, analytic mean,
// key quantiles and the fraction of tiny flows — then samples each to show
// the generator converging on the analytic mean.
#include <cstdio>

#include "sim/rng.hpp"
#include "workload/generator.hpp"
#include "workload/workloads.hpp"

using namespace amrt;

int main() {
  std::printf("%-16s %-10s %-12s %-12s %-12s %-12s %-10s\n", "workload", "abbrev", "mean",
              "p50", "p90", "p99", "<10KB");
  for (auto kind : workload::kAllKinds) {
    const auto& cdf = workload::cdf(kind);
    std::printf("%-16s %-10s %-12.0f %-12.0f %-12.0f %-12.0f %.0f%%\n", workload::name(kind),
                workload::abbrev(kind), cdf.mean_bytes(), cdf.quantile(0.5), cdf.quantile(0.9),
                cdf.quantile(0.99), 100.0 * cdf.fraction_below(10'000));
  }

  std::printf("\nsampling check (100k samples each):\n");
  for (auto kind : workload::kAllKinds) {
    sim::Rng rng{42};
    const auto& cdf = workload::cdf(kind);
    double sum = 0;
    constexpr int kN = 100'000;
    for (int i = 0; i < kN; ++i) sum += static_cast<double>(cdf.sample(rng));
    std::printf("  %-6s analytic mean %.0f, sampled mean %.0f\n", workload::abbrev(kind),
                cdf.mean_bytes(), sum / kN);
  }

  std::printf("\nPoisson arrivals at load 0.5, 16 hosts x 10Gbps (Web Search):\n");
  sim::Rng rng{7};
  workload::FlowGenerator gen{workload::cdf(workload::Kind::kWebSearch), rng};
  workload::TrafficConfig traffic;
  traffic.load = 0.5;
  traffic.n_flows = 10;
  traffic.n_hosts = 16;
  const auto flows = gen.generate(traffic);
  std::printf("  mean inter-arrival: %s\n", gen.mean_interarrival(traffic).str().c_str());
  for (const auto& f : flows) {
    std::printf("  flow %llu: host %zu -> %zu, %llu bytes at %s\n",
                static_cast<unsigned long long>(f.id), f.src_host, f.dst_host,
                static_cast<unsigned long long>(f.bytes), f.start.str().c_str());
  }
  return 0;
}
