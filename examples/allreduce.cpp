// Ring allreduce on a leaf-spine fabric — the Section 2.1 motivation
// ("massive numbers of model parameters updated synchronously by cross-rack
// flows ... which coexist with cross traffic at each hop").
//
// N workers hold a G-byte gradient; a ring allreduce runs 2(N-1) steps, each
// worker sending a G/N chunk to its ring successor per step, with a barrier
// between steps. Background cross-traffic makes some hops multi-bottleneck.
// Because every step waits for its slowest transfer, the synchronized
// pattern amplifies exactly the under-utilization AMRT attacks: when cross
// flows release bandwidth mid-step, only AMRT's workers can speed up.
//
//   usage: allreduce [workers] [gradient_bytes]
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <vector>

#include "core/factory.hpp"
#include "net/topology.hpp"

using namespace amrt;

namespace {

struct Result {
  double allreduce_ms = 0;
  std::size_t steps = 0;
  std::uint64_t events = 0;
};

Result run(transport::Protocol proto, int workers, std::uint64_t gradient_bytes) {
  sim::Simulation sim;
  sim::Scheduler& sched = sim.scheduler();
  net::Network network{sim};

  net::LeafSpineConfig topo_cfg;
  topo_cfg.leaves = 4;
  topo_cfg.spines = 2;
  topo_cfg.hosts_per_leaf = std::max(2, (workers + 3) / 4 + 1);
  topo_cfg.link_delay = sim::Duration::microseconds(10);
  topo_cfg.queue_factory = core::make_queue_factory(proto);
  topo_cfg.marker_factory = core::make_marker_factory(proto);
  auto topo = net::build_leaf_spine(network, topo_cfg);

  transport::TransportConfig tcfg;
  tcfg.host_rate = topo_cfg.link_rate;
  tcfg.base_rtt = topo.base_rtt;
  stats::FctRecorder recorder{topo_cfg.link_rate, topo.base_rtt};
  std::vector<transport::TransportEndpoint*> eps;
  for (auto* h : topo.hosts) {
    auto ep = core::make_endpoint(proto, sim, *h, tcfg, &recorder);
    eps.push_back(ep.get());
    h->attach(std::move(ep));
  }

  // Workers are spread round-robin across leaves so ring neighbours are
  // cross-rack; the remaining hosts generate background cross traffic.
  std::vector<std::size_t> worker_hosts;
  for (int w = 0; w < workers; ++w) {
    const std::size_t leaf = static_cast<std::size_t>(w) % 4;
    const std::size_t slot = static_cast<std::size_t>(w) / 4;
    worker_hosts.push_back(leaf * topo_cfg.hosts_per_leaf + slot);
  }
  net::FlowId next_id = 1;

  // Background: each leaf's last host streams to the next leaf's last host.
  // Staggered sizes keep cross traffic alive through the early steps and
  // release bandwidth one stream at a time — the Section 2 scenarios.
  for (int l = 0; l < 4; ++l) {
    const std::size_t src = static_cast<std::size_t>(l) * topo_cfg.hosts_per_leaf +
                            (topo_cfg.hosts_per_leaf - 1);
    const std::size_t dst = static_cast<std::size_t>((l + 1) % 4) * topo_cfg.hosts_per_leaf +
                            (topo_cfg.hosts_per_leaf - 1);
    eps[src]->start_flow({next_id++, topo.hosts[src]->id(), topo.hosts[dst]->id(),
                          static_cast<std::uint64_t>(5 + 5 * l) * 1'000'000,
                          sim::TimePoint::zero()});
  }

  // Synchronous ring steps driven by a completion barrier.
  const std::uint64_t chunk = std::max<std::uint64_t>(1, gradient_bytes / workers);
  const std::size_t total_steps = 2 * (static_cast<std::size_t>(workers) - 1);
  std::size_t step = 0;
  std::size_t done_at_barrier = 4;  // background flows complete independently

  std::function<void()> barrier;
  std::function<void()> launch_step = [&] {
    for (int w = 0; w < workers; ++w) {
      const std::size_t src = worker_hosts[static_cast<std::size_t>(w)];
      const std::size_t dst = worker_hosts[static_cast<std::size_t>((w + 1) % workers)];
      eps[src]->start_flow({next_id++, topo.hosts[src]->id(), topo.hosts[dst]->id(), chunk,
                            sched.now()});
    }
    ++step;
  };
  barrier = [&] {
    // Step transfers (not necessarily the background flows) all finished?
    const std::size_t step_flows_done =
        recorder.completed().size() >= done_at_barrier ? recorder.completed().size() : 0;
    const std::size_t expected = step * static_cast<std::size_t>(workers);
    std::size_t completed_step_flows = 0;
    for (const auto& r : recorder.completed()) {
      if (r.flow > 4) ++completed_step_flows;  // ids 1..4 are background
    }
    (void)step_flows_done;
    if (completed_step_flows >= expected) {
      if (step >= total_steps) {
        sched.stop();
        return;
      }
      launch_step();
    }
    sched.after(sim::Duration::microseconds(20), barrier);
  };

  launch_step();
  sched.after(sim::Duration::microseconds(20), barrier);
  sched.run_until(sim::TimePoint::zero() + sim::Duration::seconds(10));

  Result out;
  out.allreduce_ms = sched.now().to_millis();
  out.steps = step;
  out.events = sched.events_processed();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int workers = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::uint64_t gradient = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 25'000'000;

  std::printf("ring allreduce: %d workers, %.1fMB gradient, 2(N-1)=%d steps, with background\n"
              "cross-traffic releasing bandwidth mid-run\n\n",
              workers, static_cast<double>(gradient) * 1e-6, 2 * (workers - 1));
  std::printf("%-8s %-14s %-8s %-12s\n", "proto", "allreduce(ms)", "steps", "events");
  double phost_ms = 0;
  for (auto proto : {transport::Protocol::kPhost, transport::Protocol::kHoma,
                     transport::Protocol::kNdp, transport::Protocol::kAmrt}) {
    const auto r = run(proto, workers, gradient);
    if (proto == transport::Protocol::kPhost) phost_ms = r.allreduce_ms;
    std::printf("%-8s %-14.2f %-8zu %-12llu\n", transport::to_string(proto), r.allreduce_ms,
                r.steps, static_cast<unsigned long long>(r.events));
  }
  if (phost_ms > 0) std::printf("\n(lower is better; pHost is the baseline at %.2fms)\n", phost_ms);
  return 0;
}
