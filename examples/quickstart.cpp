// Quickstart: build a small leaf-spine fabric, attach AMRT endpoints, run a
// handful of flows and print their completion times.
//
// This is the smallest end-to-end use of the public API:
//   Simulation -> Network/build_leaf_spine -> make_endpoint -> start_flow
// Everything else in the repository (benches, tests, other examples) is a
// bigger arrangement of the same pieces.
#include <cstdio>

#include "core/factory.hpp"
#include "net/topology.hpp"

using namespace amrt;

int main() {
  sim::Simulation sim;
  net::Network network{sim};

  // A 2-leaf / 2-spine fabric with four hosts per leaf, 10Gbps links.
  net::LeafSpineConfig topo_cfg;
  topo_cfg.leaves = 2;
  topo_cfg.spines = 2;
  topo_cfg.hosts_per_leaf = 4;
  topo_cfg.link_rate = sim::Bandwidth::gbps(10);
  topo_cfg.link_delay = sim::Duration::microseconds(10);
  topo_cfg.queue_factory = core::make_queue_factory(transport::Protocol::kAmrt);
  topo_cfg.marker_factory = core::make_marker_factory(transport::Protocol::kAmrt);  // anti-ECN
  net::LeafSpine topo = net::build_leaf_spine(network, topo_cfg);

  // One AMRT endpoint per host; every completion lands in the recorder.
  transport::TransportConfig tcfg;
  tcfg.host_rate = topo_cfg.link_rate;
  tcfg.base_rtt = topo.base_rtt;
  stats::FctRecorder recorder{topo_cfg.link_rate, topo.base_rtt};

  std::vector<transport::TransportEndpoint*> endpoints;
  for (net::Host* host : topo.hosts) {
    auto ep = core::make_endpoint(transport::Protocol::kAmrt, sim, *host, tcfg, &recorder);
    endpoints.push_back(ep.get());
    host->attach(std::move(ep));
  }

  // Three cross-rack flows: a tiny RPC, a mid-size response, a 10MB bulk.
  struct Demo {
    std::size_t src, dst;
    std::uint64_t bytes;
  };
  const Demo demo[] = {{0, 4, 2'000}, {1, 5, 200'000}, {2, 6, 10'000'000}};
  net::FlowId id = 1;
  for (const auto& d : demo) {
    transport::FlowSpec spec{id++, topo.hosts[d.src]->id(), topo.hosts[d.dst]->id(), d.bytes,
                             sim::TimePoint::zero()};
    endpoints[d.src]->start_flow(spec);
  }

  sim.run_until(sim::TimePoint::zero() + sim::Duration::milliseconds(100));

  std::printf("base RTT: %s, BDP: %u packets\n\n", topo.base_rtt.str().c_str(), tcfg.bdp_packets());
  std::printf("%-8s %-12s %-12s %-10s\n", "flow", "bytes", "fct", "slowdown");
  for (const auto& r : recorder.completed()) {
    const double ideal_us =
        topo_cfg.link_rate.tx_time(static_cast<std::int64_t>(r.bytes)).to_micros() +
        topo.base_rtt.to_micros();
    std::printf("%-8llu %-12llu %-12s %-10.2f\n", static_cast<unsigned long long>(r.flow),
                static_cast<unsigned long long>(r.bytes), r.fct().str().c_str(),
                r.fct().to_micros() / ideal_us);
  }
  std::printf("\n%zu/%zu flows completed, %llu events, sim time %s\n", recorder.completed().size(),
              recorder.started_count(), static_cast<unsigned long long>(sim.events_processed()),
              sim.now().str().c_str());
  return recorder.completed().size() == 3 ? 0 : 1;
}
