#include "stats/fct.hpp"

#include <algorithm>

#include "net/packet.hpp"
#include "sim/trace.hpp"
#include "stats/summary.hpp"

namespace amrt::stats {

void FctRecorder::on_flow_started(std::uint64_t flow, std::uint64_t bytes, sim::TimePoint at) {
  ++started_;
  open_[flow] = FlowRecord{flow, bytes, at, at};
}

void FctRecorder::on_flow_progress(std::uint64_t flow, std::uint64_t delta_bytes, sim::TimePoint at) {
  bytes_delivered_ += delta_bytes;
  if (progress_hook_) progress_hook_(flow, delta_bytes, at);
}

void FctRecorder::on_flow_completed(std::uint64_t flow, sim::TimePoint at) {
  FlowRecord* rec = open_.find(flow);
  if (rec == nullptr) {
    if (cross_shard_) {
      // The start was booked on the sender's shard; hold the end time until
      // merge_from pairs the two halves.
      pending_end_[flow] = at;
    } else {
      AMRT_WARN("FctRecorder: completion for unknown flow %llu",
                static_cast<unsigned long long>(flow));
    }
    return;
  }
  rec->end = at;
  completed_.push_back(*rec);
  open_.erase(flow);
}

void FctRecorder::merge_from(const FctRecorder& other) {
  started_ += other.started_;
  bytes_delivered_ += other.bytes_delivered_;
  completed_.insert(completed_.end(), other.completed_.begin(), other.completed_.end());
  for (const auto& [flow, rec] : other.open_) open_[flow] = rec;
  for (const auto& [flow, end] : other.pending_end_) pending_end_[flow] = end;

  // Pair starts with completions recorded on different shards. Resolved
  // records are appended in flow-id order so the merged list is identical
  // for any merge order of the same per-shard recorders.
  std::vector<std::uint64_t> resolved;
  for (const auto& [flow, end] : pending_end_) {
    if (open_.find(flow) != nullptr) resolved.push_back(flow);
  }
  std::sort(resolved.begin(), resolved.end());
  for (const std::uint64_t flow : resolved) {
    FlowRecord rec = *open_.find(flow);
    rec.end = *pending_end_.find(flow);
    completed_.push_back(rec);
    open_.erase(flow);
    pending_end_.erase(flow);
  }
}

std::optional<FlowRecord> FctRecorder::record_of(std::uint64_t flow) const {
  for (const auto& r : completed_) {
    if (r.flow == flow) return r;
  }
  if (const FlowRecord* rec = open_.find(flow)) return *rec;
  return std::nullopt;
}

FctSummary FctRecorder::summarize() const { return summarize(0, UINT64_MAX); }

FctSummary FctRecorder::summarize(std::uint64_t min_bytes, std::uint64_t max_bytes) const {
  FctSummary out;
  out.started = started_;
  std::vector<double> fcts;
  double slowdown_sum = 0.0;
  for (const auto& r : completed_) {
    if (r.bytes < min_bytes || r.bytes >= max_bytes) continue;
    const double fct_us = r.fct().to_micros();
    fcts.push_back(fct_us);
    // Ideal: serialize the flow at line rate plus one base RTT of signalling.
    const std::uint64_t pkts = net::packets_for_bytes(r.bytes);
    const auto wire_bytes =
        static_cast<std::int64_t>(r.bytes) + static_cast<std::int64_t>(pkts) * net::kHeaderBytes;
    const double ideal_us =
        reference_rate_.tx_time(wire_bytes).to_micros() + base_rtt_.to_micros();
    slowdown_sum += fct_us / ideal_us;
    out.max_fct_us = std::max(out.max_fct_us, fct_us);
  }
  out.completed = fcts.size();
  if (!fcts.empty()) {
    double sum = 0.0;
    for (double v : fcts) sum += v;
    out.afct_us = sum / static_cast<double>(fcts.size());
    out.p50_us = percentile(fcts, 0.50);
    out.p99_us = percentile(fcts, 0.99);
    out.mean_slowdown = slowdown_sum / static_cast<double>(fcts.size());
  }
  return out;
}

}  // namespace amrt::stats
