// Fixed-bin time series, used for per-flow throughput timelines
// (Figs. 1, 2, 9, 11).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "util/flat_map.hpp"

namespace amrt::stats {

// Accumulates values into equal-width time bins starting at t=0.
class BinnedSeries {
 public:
  // Default-constructible so it can live in a FlatMap slot; a real bin
  // width is assigned before the first add().
  BinnedSeries() = default;
  explicit BinnedSeries(sim::Duration bin_width) : width_{bin_width} {}

  void add(sim::TimePoint at, double value);

  [[nodiscard]] sim::Duration bin_width() const { return width_; }
  [[nodiscard]] std::size_t bins() const { return sums_.size(); }
  [[nodiscard]] double sum_at(std::size_t bin) const { return bin < sums_.size() ? sums_[bin] : 0.0; }
  [[nodiscard]] sim::TimePoint bin_start(std::size_t bin) const {
    return sim::TimePoint::zero() + width_ * static_cast<std::int64_t>(bin);
  }
  // Sum per bin divided by bin width in seconds (value/sec).
  [[nodiscard]] std::vector<double> rates() const;

 private:
  sim::Duration width_ = sim::Duration::zero();
  std::vector<double> sums_;
};

// Per-flow byte-arrival series; plug into FctRecorder::set_progress_hook.
// Rates come out in Gbps for direct comparison with link capacity.
class FlowThroughputTracker {
 public:
  explicit FlowThroughputTracker(sim::Duration bin_width) : width_{bin_width} {}

  void record(std::uint64_t flow, std::uint64_t delta_bytes, sim::TimePoint at);

  [[nodiscard]] bool has_flow(std::uint64_t flow) const { return series_.contains(flow); }
  // Gbps per bin for one flow (empty if never seen).
  [[nodiscard]] std::vector<double> gbps(std::uint64_t flow) const;
  // Aggregate Gbps per bin across all flows.
  [[nodiscard]] std::vector<double> total_gbps() const;
  [[nodiscard]] sim::Duration bin_width() const { return width_; }

 private:
  sim::Duration width_;
  util::FlatMap<std::uint64_t, BinnedSeries> series_;
};

}  // namespace amrt::stats
