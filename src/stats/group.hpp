// Group-aware completion accounting (DESIGN.md §14).
//
// The workload layer can emit flows that belong to a collective: an incast
// coflow (many senders, one receiver) or a front-end fan-out request (one
// request, N backend responses). The number the operator cares about is not
// any member flow's FCT but the *collective* completion time — the span from
// the first member's start to the last member's finish — because the request
// is only answered when the straggler lands. Tail-at-scale in one metric.
//
// GroupBook sits in the stats layer but deliberately knows nothing about the
// workload types: the harness feeds it raw (flow, group, request) ids from
// the generated schedule, then hands it the completed FlowRecords. A group
// only counts as complete when every member the schedule promised has a
// completion record — a partially-finished incast must not masquerade as a
// fast one.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/fct.hpp"
#include "util/flat_map.hpp"

namespace amrt::stats {

// Collective completion-time summary over *complete* groups only; times in
// microseconds. `groups` counts groups promised by the schedule, `complete`
// those with every member finished.
struct GroupStats {
  std::size_t groups = 0;
  std::size_t complete = 0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

class GroupBook {
 public:
  // Schedule-time registration; group/request 0 means "not a member" on that
  // axis and is ignored. Call once per generated flow, before the run.
  void note(std::uint64_t flow, std::uint64_t group, std::uint64_t request);

  [[nodiscard]] bool empty() const { return flow_group_.empty() && flow_request_.empty(); }

  // Stamps group/request onto records whose flow id was noted (CSV/JSON
  // output wants the membership next to each FCT row).
  void annotate(std::vector<FlowRecord>& records) const;

  // Collective completion times over the coflow/group axis and the fan-out
  // request axis, computed from completed records.
  [[nodiscard]] GroupStats group_stats(const std::vector<FlowRecord>& completed) const;
  [[nodiscard]] GroupStats request_stats(const std::vector<FlowRecord>& completed) const;

 private:
  [[nodiscard]] GroupStats stats_over(const util::FlatMap<std::uint64_t, std::uint64_t>& membership,
                                      const util::FlatMap<std::uint64_t, std::size_t>& expected,
                                      const std::vector<FlowRecord>& completed) const;

  util::FlatMap<std::uint64_t, std::uint64_t> flow_group_;    // flow -> group
  util::FlatMap<std::uint64_t, std::uint64_t> flow_request_;  // flow -> request
  util::FlatMap<std::uint64_t, std::size_t> group_size_;      // group -> member count
  util::FlatMap<std::uint64_t, std::size_t> request_size_;    // request -> member count
};

}  // namespace amrt::stats
