#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace amrt::stats {

void OnlineStats::add(double x) {
  ++n_;
  sum_ += x;
  if (n_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double OnlineStats::variance() const {
  return n_ == 0 ? 0.0 : m2_ / static_cast<double>(n_);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double jain_fairness(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  double sumsq = 0.0;
  for (double x : xs) {
    sum += x;
    sumsq += x * x;
  }
  if (sumsq == 0.0) return 0.0;
  return sum * sum / (static_cast<double>(xs.size()) * sumsq);
}

double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(lo), xs.end());
  const double x_lo = xs[lo];
  if (frac == 0.0 || lo + 1 >= xs.size()) return x_lo;
  // After nth_element the (lo+1)-th order statistic is the tail's minimum.
  const double x_hi =
      *std::min_element(xs.begin() + static_cast<std::ptrdiff_t>(lo) + 1, xs.end());
  return x_lo + (x_hi - x_lo) * frac;
}

}  // namespace amrt::stats
