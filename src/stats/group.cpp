#include "stats/group.hpp"

#include <algorithm>
#include <cmath>

#include "stats/summary.hpp"

namespace amrt::stats {

namespace {

// Span accumulator for one collective: first member start to last member end.
struct Span {
  sim::TimePoint first_start = sim::TimePoint::max();
  sim::TimePoint last_end = sim::TimePoint::zero();
  std::size_t members = 0;
};

}  // namespace

void GroupBook::note(std::uint64_t flow, std::uint64_t group, std::uint64_t request) {
  if (group != 0) {
    flow_group_[flow] = group;
    ++group_size_[group];
  }
  if (request != 0) {
    flow_request_[flow] = request;
    ++request_size_[request];
  }
}

void GroupBook::annotate(std::vector<FlowRecord>& records) const {
  if (empty()) return;
  for (auto& r : records) {
    if (const auto* g = flow_group_.find(r.flow)) r.group = *g;
    if (const auto* q = flow_request_.find(r.flow)) r.request = *q;
  }
}

GroupStats GroupBook::group_stats(const std::vector<FlowRecord>& completed) const {
  return stats_over(flow_group_, group_size_, completed);
}

GroupStats GroupBook::request_stats(const std::vector<FlowRecord>& completed) const {
  return stats_over(flow_request_, request_size_, completed);
}

GroupStats GroupBook::stats_over(const util::FlatMap<std::uint64_t, std::uint64_t>& membership,
                                 const util::FlatMap<std::uint64_t, std::size_t>& expected,
                                 const std::vector<FlowRecord>& completed) const {
  GroupStats out;
  out.groups = expected.size();
  if (out.groups == 0) return out;

  util::FlatMap<std::uint64_t, Span> spans;
  spans.reserve(out.groups);
  for (const auto& r : completed) {
    const auto* key = membership.find(r.flow);
    if (key == nullptr) continue;
    Span& s = spans[*key];
    s.first_start = std::min(s.first_start, r.start);
    s.last_end = std::max(s.last_end, r.end);
    ++s.members;
  }

  // Collective times over complete groups only: a collective with a member
  // still in flight has no completion time yet, and counting its partial
  // span would *understate* the tail. Sort for deterministic percentiles
  // (FlatMap iteration order depends on insertion history).
  std::vector<double> cct_us;
  cct_us.reserve(spans.size());
  for (const auto& [key, span] : spans) {
    const auto* want = expected.find(key);
    if (want != nullptr && span.members == *want) {
      cct_us.push_back((span.last_end - span.first_start).to_micros());
    }
  }
  out.complete = cct_us.size();
  if (cct_us.empty()) return out;
  std::sort(cct_us.begin(), cct_us.end());

  double sum = 0.0;
  for (const double v : cct_us) sum += v;
  out.mean_us = sum / static_cast<double>(cct_us.size());
  out.p50_us = percentile(cct_us, 0.50);
  out.p99_us = percentile(cct_us, 0.99);
  out.max_us = cct_us.back();
  return out;
}

}  // namespace amrt::stats
