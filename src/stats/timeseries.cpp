#include "stats/timeseries.hpp"

#include <algorithm>

namespace amrt::stats {

void BinnedSeries::add(sim::TimePoint at, double value) {
  const auto bin = static_cast<std::size_t>(at.ns() / width_.ns());
  if (bin >= sums_.size()) sums_.resize(bin + 1, 0.0);
  sums_[bin] += value;
}

std::vector<double> BinnedSeries::rates() const {
  std::vector<double> out(sums_.size());
  const double secs = width_.to_seconds();
  for (std::size_t i = 0; i < sums_.size(); ++i) out[i] = sums_[i] / secs;
  return out;
}

void FlowThroughputTracker::record(std::uint64_t flow, std::uint64_t delta_bytes, sim::TimePoint at) {
  auto [series, inserted] = series_.try_emplace(flow);
  if (inserted) *series = BinnedSeries{width_};
  series->add(at, static_cast<double>(delta_bytes));
}

std::vector<double> FlowThroughputTracker::gbps(std::uint64_t flow) const {
  const BinnedSeries* series = series_.find(flow);
  if (series == nullptr) return {};
  auto rates = series->rates();  // bytes/sec
  for (auto& r : rates) r = r * 8.0 * 1e-9;
  return rates;
}

std::vector<double> FlowThroughputTracker::total_gbps() const {
  std::vector<double> out;
  for (const auto& [flow, series] : series_) {
    auto rates = series.rates();
    if (rates.size() > out.size()) out.resize(rates.size(), 0.0);
    for (std::size_t i = 0; i < rates.size(); ++i) out[i] += rates[i] * 8.0 * 1e-9;
  }
  return out;
}

}  // namespace amrt::stats
