// Small numeric summaries: streaming moments and exact percentiles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace amrt::stats {

// Streaming mean/variance/min/max (Welford).
class OnlineStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ == 0 ? 0.0 : mean_; }
  [[nodiscard]] double variance() const;  // population variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return n_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Exact q-quantile (0 <= q <= 1) by partial sort; `xs` is taken by value on
// purpose — callers keep their data. Returns 0 for an empty input.
//
// Convention (the one definition everywhere — FctRecorder, GroupBook, the
// benches): linear interpolation between closest ranks, rank = q * (n - 1),
// i.e. NumPy's default. percentile({1..5}, 0.5) = 3, and quantiles between
// two order statistics interpolate rather than snap to the nearest one.
[[nodiscard]] double percentile(std::vector<double> xs, double q);

// Jain's fairness index: (sum x)^2 / (n * sum x^2). 1.0 = perfectly fair,
// 1/n = one flow hogging everything. Returns 0 for empty/all-zero input.
[[nodiscard]] double jain_fairness(const std::vector<double>& xs);

}  // namespace amrt::stats
