// Flow-completion-time accounting.
//
// Transports report through the FlowObserver interface; FctRecorder is the
// standard implementation and produces the AFCT / 99th-percentile / slowdown
// summaries that Fig. 12 plots.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/flat_map.hpp"

namespace amrt::stats {

struct FlowRecord {
  std::uint64_t flow = 0;
  std::uint64_t bytes = 0;
  sim::TimePoint start{};
  sim::TimePoint end{};
  // Structure membership (stats/group.hpp). Transports don't know about
  // groups, so the recorder leaves these 0; GroupBook::annotate fills them
  // in from the workload schedule after the run.
  std::uint64_t group = 0;
  std::uint64_t request = 0;
  [[nodiscard]] sim::Duration fct() const { return end - start; }
};

// Implemented by metric sinks; every callback carries the virtual time.
class FlowObserver {
 public:
  virtual ~FlowObserver() = default;
  virtual void on_flow_started(std::uint64_t flow, std::uint64_t bytes, sim::TimePoint at) = 0;
  // `delta_bytes` of new payload accepted at the receiver.
  virtual void on_flow_progress(std::uint64_t flow, std::uint64_t delta_bytes, sim::TimePoint at) = 0;
  virtual void on_flow_completed(std::uint64_t flow, sim::TimePoint at) = 0;
};

struct FctSummary {
  std::size_t completed = 0;
  std::size_t started = 0;
  double afct_us = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_slowdown = 0.0;  // FCT / ideal FCT at `reference_rate`
  double max_fct_us = 0.0;
};

class FctRecorder final : public FlowObserver {
 public:
  // `reference_rate`: line rate used for the ideal-FCT denominator of the
  // slowdown metric; `base_rtt`: added to the ideal transfer time.
  FctRecorder(sim::Bandwidth reference_rate, sim::Duration base_rtt)
      : reference_rate_{reference_rate}, base_rtt_{base_rtt} {}

  void on_flow_started(std::uint64_t flow, std::uint64_t bytes, sim::TimePoint at) override;
  void on_flow_progress(std::uint64_t flow, std::uint64_t delta_bytes, sim::TimePoint at) override;
  void on_flow_completed(std::uint64_t flow, sim::TimePoint at) override;

  [[nodiscard]] const std::vector<FlowRecord>& completed() const { return completed_; }
  [[nodiscard]] std::size_t started_count() const { return started_; }
  [[nodiscard]] std::size_t incomplete_count() const { return open_.size(); }
  [[nodiscard]] std::optional<FlowRecord> record_of(std::uint64_t flow) const;

  // Summary over all completed flows, or only those with size in
  // [min_bytes, max_bytes).
  [[nodiscard]] FctSummary summarize() const;
  [[nodiscard]] FctSummary summarize(std::uint64_t min_bytes, std::uint64_t max_bytes) const;

  // Total payload bytes delivered (progress callbacks), for goodput checks.
  [[nodiscard]] std::uint64_t bytes_delivered() const { return bytes_delivered_; }

  // Folds another recorder's state into this one (sharded runs keep one
  // recorder per shard; the harness merges them in shard order, which keeps
  // the combined record list deterministic for a fixed shard count).
  void merge_from(const FctRecorder& other);

  // Sharded runs: a flow starts at the sender (its shard's recorder) but
  // completes at the receiver, which may live on another shard. In
  // cross-shard mode a completion for a flow this recorder never saw is held
  // aside instead of warned about; merge_from pairs held completions with
  // starts from the other shards' recorders.
  void set_cross_shard(bool on) { cross_shard_ = on; }

  // Optional per-progress hook for time-series consumers.
  using ProgressHook = std::function<void(std::uint64_t flow, std::uint64_t delta, sim::TimePoint at)>;
  void set_progress_hook(ProgressHook hook) { progress_hook_ = std::move(hook); }

 private:
  sim::Bandwidth reference_rate_;
  sim::Duration base_rtt_;
  util::FlatMap<std::uint64_t, FlowRecord> open_;
  util::FlatMap<std::uint64_t, sim::TimePoint> pending_end_;  // cross-shard only
  std::vector<FlowRecord> completed_;
  std::size_t started_ = 0;
  std::uint64_t bytes_delivered_ = 0;
  bool cross_shard_ = false;
  ProgressHook progress_hook_;
};

}  // namespace amrt::stats
