// The on-wire unit of the simulator.
//
// One flat struct carries every protocol's fields; a given transport only
// reads/writes the subset it defines. This keeps the hot path allocation-free
// (packets move by value through ports and switches) at the cost of a few
// unused bytes per packet — the standard trade in packet-level simulators.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace amrt::net {

// Identifies a host or switch in a Network. Strongly typed so ports, flow
// ids and node ids cannot be mixed up.
struct NodeId {
  std::uint32_t value = 0;
  friend constexpr auto operator<=>(NodeId, NodeId) = default;
};

using FlowId = std::uint64_t;

enum class PacketType : std::uint8_t {
  kData,   // payload-carrying packet (possibly trimmed to a header by NDP queues)
  kRts,    // flow announcement: sender -> receiver, carries flow_bytes
  kGrant,  // receiver -> sender credit (AMRT grant, pHost token, Homa grant, NDP pull)
  kDone,   // receiver -> sender: flow fully received, release state
};

// Wire-size constants shared by all protocols (Section 3/4 of the paper:
// 1500B Ethernet MTU, ECN in the IP header, 64B minimum-size control frames).
inline constexpr std::uint32_t kMtuBytes = 1500;
inline constexpr std::uint32_t kHeaderBytes = 40;
inline constexpr std::uint32_t kMssBytes = kMtuBytes - kHeaderBytes;  // payload per full packet
inline constexpr std::uint32_t kCtrlBytes = 64;

struct Packet {
  FlowId flow = 0;
  std::uint32_t seq = 0;       // data: packet index within the flow; grant: grant serial
  std::uint32_t wire_bytes = 0;
  std::uint32_t payload_bytes = 0;
  PacketType type = PacketType::kData;
  NodeId src{};
  NodeId dst{};

  // --- priority / ECN state (switch-visible header bits) ---
  std::uint8_t priority = 0;   // 0 = highest; used by StrictPriorityQueue (Homa)
  bool ecn_capable = false;    // AMRT data packets participate in anti-ECN marking
  bool ce = false;             // anti-ECN: senders emit CE=1, switches AND it down (Eq. 3)
  // Conventional threshold ECN (DCTCP): senders emit CE=0, switches OR it up
  // when the egress backlog is deep. Mutually exclusive with the anti-ECN
  // interpretation above, so mixed fabrics carry both semantics side by side
  // and each marker acts only on its own packets.
  bool threshold_ecn = false;
  bool trimmed = false;        // NDP: payload removed by an overloaded queue
  bool unscheduled = false;    // sent blind in the first BDP (Aeolus-style drop preference)

  // --- grant fields (receiver -> sender) ---
  bool marked_grant = false;       // AMRT: echo of the data packet's CE bit
  std::uint16_t allowance = 1;     // number of new data packets this grant triggers
  std::int64_t request_seq = -1;   // >=0: retransmit exactly this sequence number
  std::uint64_t grant_offset = 0;  // Homa: authorized byte offset

  // --- flow metadata (first packet / RTS advertising) ---
  std::uint64_t flow_bytes = 0;

  sim::TimePoint created{};

#ifdef AMRT_AUDIT
  // Audit builds only: the AND of every hop's anti-ECN verdict, maintained
  // in parallel with `ce` so the auditor can verify Eq. 3 end to end. Lives
  // on the packet copy (not in the ledger) because a retransmission of the
  // same (flow, seq) may see different hop verdicts than the original.
  bool audit_ce_expected = false;
#endif

  [[nodiscard]] bool is_control() const { return type != PacketType::kData || trimmed; }
  [[nodiscard]] std::string str() const;
};

// Number of MSS-sized packets needed to carry `bytes` of payload.
[[nodiscard]] constexpr std::uint32_t packets_for_bytes(std::uint64_t bytes) {
  if (bytes == 0) return 0;
  return static_cast<std::uint32_t>((bytes + kMssBytes - 1) / kMssBytes);
}

// Payload carried by packet `seq` of a `total_bytes` flow (last one may be short).
[[nodiscard]] constexpr std::uint32_t payload_of_seq(std::uint64_t total_bytes, std::uint32_t seq) {
  const std::uint64_t offset = static_cast<std::uint64_t>(seq) * kMssBytes;
  if (offset >= total_bytes) return 0;
  const std::uint64_t left = total_bytes - offset;
  return static_cast<std::uint32_t>(left < kMssBytes ? left : kMssBytes);
}

}  // namespace amrt::net
