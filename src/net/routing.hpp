// Destination-based routing with ECMP.
//
// A switch's routing table maps destination node -> the set of egress ports
// with equal-cost paths; a flow hash picks one so a flow stays on one path
// (per-flow ECMP, see DESIGN.md §6 for why all protocols share this choice).
//
// Data-plane layout (see DESIGN.md "Data-plane fast path"): destinations are
// dense small integers per topology, so the table is a flat array of
// {offset, count} entries into one shared port pool — a forward is two
// indexed loads, no hashing and no node allocation. On top of that a
// direct-mapped per-flow route cache memoizes the ECMP pick: the hash and
// the (division-heavy) modulo run once per flow per switch, after which a
// forward is a single 16-byte cache-slot compare. The cache is sound because
// `ecmp_hash` is a pure function of the flow id and the port set is frozen
// after wiring; any later `add_route` invalidates it wholesale.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "net/packet.hpp"

namespace amrt::net {

// Fabric-wide link liveness, owned by Network and shared read-only with
// every RoutingTable. The epoch bumps on each up/down transition; tables
// compare it against the epoch they last compiled their alive view for and
// refresh lazily, so the per-forward cost in a healthy run is one load and
// one compare.
struct LinkState {
  std::vector<std::uint8_t> up;  // indexed by PortId; absent slots count as up
  // Atomic (relaxed) so sharded runs may read it from every worker thread:
  // fault injection is serial-only, so across a partitioned run the epoch is
  // a constant and the relaxed load costs the same as the plain one did.
  std::atomic<std::uint64_t> epoch{0};

  [[nodiscard]] bool is_up(std::int32_t port) const {
    const auto i = static_cast<std::size_t>(port);
    return i >= up.size() || up[i] != 0;
  }
};

// How multipath sets are used. Per-flow hashing (the default, used by every
// experiment so all protocols compare on equal routing) keeps a flow on one
// path; per-packet spraying (what real NDP deploys) round-robins every
// packet across the set, trading reordering for perfect load balance.
// Spray state is kept per destination, so concurrent spray sets on one
// switch round-robin independently instead of in (correlated) lockstep.
enum class MultipathMode : std::uint8_t { kPerFlowEcmp, kPacketSpray };

// The ECMP hash: deterministic, spreads consecutive flow ids across paths.
[[nodiscard]] std::uint64_t ecmp_hash(FlowId flow);

class RoutingTable {
 public:
  // Registers `port` as one of the equal-cost next hops toward `dst`.
  // Mutating the table invalidates the compiled fast path; it is rebuilt
  // (and the route cache flushed) on the next lookup.
  void add_route(NodeId dst, int port);

  void set_mode(MultipathMode mode) { mode_ = mode; }
  [[nodiscard]] MultipathMode mode() const { return mode_; }

  // Subscribes this table to the fabric's link liveness (Network wires every
  // switch at construction). When the state's epoch moves past the one the
  // current view was compiled for, the next select() rebuilds an ECMP view
  // restricted to live ports and flushes the route cache; healthy runs pay
  // one epoch compare per forward.
  void bind_link_state(const LinkState* ls) { link_state_ = ls; }

  // Picks the egress port for `pkt`. Unknown destinations are a wiring bug:
  // the process aborts with a diagnostic (use `require_route` at build time
  // to fail during setup instead of mid-run).
  [[nodiscard]] int select(const Packet& pkt) {
    if (dirty_) compact();
    if (link_state_ != nullptr &&
        link_state_->epoch.load(std::memory_order_relaxed) != seen_epoch_) [[unlikely]] {
      refresh_link_view();
    }
    const std::uint32_t dst = pkt.dst.value;
    if (dst >= view_size_ || view_entries_[dst].count == 0) [[unlikely]] {
      die_unknown_destination(pkt.dst);
    }
    Entry& e = view_entries_[dst];
    const int* ports = view_pool_ + e.offset;
    if (e.count == 1) return ports[0];
    if (mode_ == MultipathMode::kPacketSpray && pkt.type == PacketType::kData) {
      // Control packets stay on the flow's hashed path so grant clocks are
      // not reordered; only data is sprayed (as in NDP).
      return ports[e.spray++ % e.count];
    }
    CacheSlot& slot = cache_[cache_index(pkt.flow, dst)];
    if (slot.flow == pkt.flow && slot.dst == dst) return slot.port;
    const int port = ports[ecmp_hash(pkt.flow) % e.count];
    slot = CacheSlot{pkt.flow, dst, port};
    return port;
  }

  // The ECMP set toward `dst`; empty if the destination is unknown.
  [[nodiscard]] std::span<const int> ports_for(NodeId dst) const;
  [[nodiscard]] bool knows(NodeId dst) const { return !ports_for(dst).empty(); }
  [[nodiscard]] std::size_t destinations() const { return dst_count_; }

  // Wiring-time validation: throws std::logic_error if `dst` has no route.
  // Topology builders call this for every node a switch must reach, so a
  // miswired fabric fails at setup rather than aborting mid-run.
  void require_route(NodeId dst) const;

 private:
  // Dense per-destination view into the shared port pool. `spray` is the
  // destination's own round-robin cursor (kPacketSpray mode).
  struct Entry {
    std::uint32_t offset = 0;
    std::uint32_t count = 0;
    std::uint32_t spray = 0;
  };
  struct CacheSlot {
    FlowId flow = ~FlowId{0};
    std::uint32_t dst = ~std::uint32_t{0};
    std::int32_t port = -1;
  };
  static constexpr std::size_t kCacheSlots = 512;  // direct-mapped, 8KB

  [[nodiscard]] static std::size_t cache_index(FlowId flow, std::uint32_t dst) {
    // Flow ids are sequential; fold the high half in and mix with the
    // destination so forward and reverse traffic of one flow land apart.
    return (static_cast<std::size_t>(flow ^ (flow >> 32)) ^
            (static_cast<std::size_t>(dst) * 0x9e3779b9u)) &
           (kCacheSlots - 1);
  }

  void compact() const;
  // Rebuilds the live-port view after a link-state transition (cold: runs
  // once per epoch change, not per packet). If every port toward some
  // destination is down the wired set is kept — packets then charge the
  // dead port's `faulted` counter instead of aborting the run.
  void refresh_link_view() const;
  [[noreturn]] static void die_unknown_destination(NodeId dst);

  // Build-side: per-destination port lists as added. The compiled (dense)
  // form is derived lazily so builders may interleave wiring and lookups.
  std::vector<std::vector<int>> pending_;
  std::size_t dst_count_ = 0;
  mutable bool dirty_ = false;

  // Compiled fast path, rebuilt by compact().
  mutable std::vector<Entry> entries_;
  mutable std::vector<int> pool_;

  // The view select() reads: the full tables above, or (between a link
  // transition and full recovery) the filtered alive_* copies. Raw pointers
  // are re-derived by compact()/refresh_link_view() whenever the backing
  // vectors change shape.
  mutable Entry* view_entries_ = nullptr;
  mutable const int* view_pool_ = nullptr;
  mutable std::size_t view_size_ = 0;
  mutable std::vector<Entry> alive_entries_;
  mutable std::vector<int> alive_pool_;
  mutable std::uint64_t seen_epoch_ = 0;
  const LinkState* link_state_ = nullptr;

  mutable std::array<CacheSlot, kCacheSlots> cache_{};
  MultipathMode mode_ = MultipathMode::kPerFlowEcmp;
};

}  // namespace amrt::net
