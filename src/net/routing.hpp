// Destination-based routing with ECMP.
//
// A switch's routing table maps destination node -> the set of egress ports
// with equal-cost paths; a flow hash picks one so a flow stays on one path
// (per-flow ECMP, see DESIGN.md §6 for why all protocols share this choice).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"

namespace amrt::net {

// How multipath sets are used. Per-flow hashing (the default, used by every
// experiment so all protocols compare on equal routing) keeps a flow on one
// path; per-packet spraying (what real NDP deploys) round-robins every
// packet across the set, trading reordering for perfect load balance.
enum class MultipathMode : std::uint8_t { kPerFlowEcmp, kPacketSpray };

class RoutingTable {
 public:
  // Registers `port` as one of the equal-cost next hops toward `dst`.
  void add_route(NodeId dst, int port);

  void set_mode(MultipathMode mode) { mode_ = mode; }
  [[nodiscard]] MultipathMode mode() const { return mode_; }

  // Picks the egress port for `pkt`; throws if the destination is unknown.
  [[nodiscard]] int select(const Packet& pkt);

  [[nodiscard]] const std::vector<int>& ports_for(NodeId dst) const;
  [[nodiscard]] std::size_t destinations() const { return table_.size(); }

 private:
  std::unordered_map<std::uint32_t, std::vector<int>> table_;
  MultipathMode mode_ = MultipathMode::kPerFlowEcmp;
  std::uint64_t spray_counter_ = 0;  // deterministic round-robin state
};

// The ECMP hash: deterministic, spreads consecutive flow ids across paths.
[[nodiscard]] std::uint64_t ecmp_hash(FlowId flow);

}  // namespace amrt::net
