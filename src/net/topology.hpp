// Network container and canonical topologies.
//
// `Network` owns every node and hands out stable references; builders wire
// ports, cabling and routing tables. The leaf-spine fabric (Section 8.1's
// evaluation topology) lives here; the small fixed scenarios from the
// motivation/testbed figures are assembled in harness/scenarios.cpp from the
// same primitives.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/host.hpp"
#include "net/marker.hpp"
#include "net/queue.hpp"
#include "net/switch.hpp"
#include "sim/simulation.hpp"

namespace amrt::net {

class Network {
 public:
  explicit Network(sim::Simulation& sim) : sim_{sim}, sched_{sim.scheduler()} {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Creates a host whose NIC transmits at `rate` with `delay` to its switch.
  Host& add_host(const std::string& name, sim::Bandwidth rate, sim::Duration delay,
                 std::unique_ptr<EgressQueue> nic_queue);
  Switch& add_switch(const std::string& name);

  // Adds an egress port on `from` toward `to` (one direction of a cable).
  // Optionally installs a dequeue marker (AMRT's anti-ECN marker).
  EgressPort& add_switch_port(Switch& from, Node& to, sim::Bandwidth rate, sim::Duration delay,
                              std::unique_ptr<EgressQueue> queue,
                              std::unique_ptr<DequeueMarker> marker = nullptr);

  // Connects a host's NIC to a switch and the switch back to the host.
  // Returns the switch-side port index (the host downlink).
  int attach_host(Host& host, Switch& sw, std::unique_ptr<EgressQueue> down_queue,
                  std::unique_ptr<DequeueMarker> down_marker = nullptr);

  [[nodiscard]] sim::Simulation& simulation() { return sim_; }
  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] std::vector<std::unique_ptr<Host>>& hosts() { return hosts_; }
  [[nodiscard]] std::vector<std::unique_ptr<Switch>>& switches() { return switches_; }
  [[nodiscard]] Host& host(std::size_t i) { return *hosts_.at(i); }
  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }

 private:
  [[nodiscard]] NodeId next_id() { return NodeId{next_id_++}; }

  sim::Simulation& sim_;
  sim::Scheduler& sched_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<Switch>> switches_;
  std::uint32_t next_id_ = 0;
};

// Section 8.1 fabric: `leaves` ToR switches, `spines` core switches,
// `hosts_per_leaf` hosts per ToR, every link at `link_rate` with
// `link_delay` propagation, ECMP across all spines.
struct LeafSpineConfig {
  int leaves = 10;
  int spines = 8;
  int hosts_per_leaf = 40;
  sim::Bandwidth link_rate = sim::Bandwidth::gbps(10);
  sim::Duration link_delay = sim::Duration::microseconds(100);
  QueueFactory queue_factory;           // discipline per port (per protocol)
  MarkerFactory marker_factory;         // optional; applied to switch egress ports
  std::size_t host_nic_queue_pkts = 8192;  // room for the unscheduled burst
  MultipathMode multipath = MultipathMode::kPerFlowEcmp;
};

struct LeafSpine {
  std::vector<Host*> hosts;          // leaf-major order: hosts[l * hosts_per_leaf + h]
  std::vector<Switch*> leaves;
  std::vector<Switch*> spines;
  // Port indices for monitoring.
  std::vector<std::vector<int>> leaf_down;  // leaf_down[l][h]: leaf l -> its h-th host
  std::vector<std::vector<int>> leaf_up;    // leaf_up[l][s]:   leaf l -> spine s
  std::vector<std::vector<int>> spine_down; // spine_down[s][l]: spine s -> leaf l

  // The base one-way path: host->leaf(->spine->leaf)->host has 4 links; the
  // minimum RTT (no queueing, MTU-sized data + 64B grant) is derived by the
  // builder and used by transports for BDP and timeout settings.
  sim::Duration base_rtt = sim::Duration::zero();
};

[[nodiscard]] LeafSpine build_leaf_spine(Network& net, const LeafSpineConfig& cfg);

// Minimum RTT over an `hops`-link one-way path at `rate`: a full data packet
// out, a control packet back, plus propagation both ways. Store-and-forward
// re-serializes at every hop.
[[nodiscard]] sim::Duration path_base_rtt(int hops, sim::Bandwidth rate, sim::Duration link_delay);

}  // namespace amrt::net
