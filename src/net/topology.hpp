// Canonical topologies over the pooled network core.
//
// Builders wire ports, cabling and routing tables on a `net::Network`
// (net/network.hpp). The leaf-spine fabric (Section 8.1's evaluation
// topology) and the three-tier fat-tree used by the scale-out benchmarks
// live here; the small fixed scenarios from the motivation/testbed figures
// are assembled in harness/scenarios.cpp from the same primitives.
//
// The result structs hand out Host*/Switch* for convenience. Those pointers
// are resolved after all pools stop growing, so they are stable — but only
// as long as nothing else is added to the same Network afterwards (see the
// invalidation rules in net/network.hpp).
#pragma once

#include <vector>

#include "net/marker.hpp"
#include "net/network.hpp"
#include "net/queue.hpp"

namespace amrt::net {

// Section 8.1 fabric: `leaves` ToR switches, `spines` core switches,
// `hosts_per_leaf` hosts per ToR, every link at `link_rate` with
// `link_delay` propagation, ECMP across all spines.
struct LeafSpineConfig {
  int leaves = 10;
  int spines = 8;
  int hosts_per_leaf = 40;
  sim::Bandwidth link_rate = sim::Bandwidth::gbps(10);
  sim::Duration link_delay = sim::Duration::microseconds(100);
  QueueFactory queue_factory;           // discipline per port (per protocol)
  MarkerFactory marker_factory;         // optional; applied to switch egress ports
  std::size_t host_nic_queue_pkts = 8192;  // room for the unscheduled burst
  MultipathMode multipath = MultipathMode::kPerFlowEcmp;
};

struct LeafSpine {
  std::vector<Host*> hosts;          // leaf-major order: hosts[l * hosts_per_leaf + h]
  std::vector<Switch*> leaves;
  std::vector<Switch*> spines;
  // Global port-pool slots for monitoring: net.port_at(...).
  std::vector<std::vector<PortId>> leaf_down;   // leaf_down[l][h]: leaf l -> its h-th host
  std::vector<std::vector<PortId>> leaf_up;     // leaf_up[l][s]:   leaf l -> spine s
  std::vector<std::vector<PortId>> spine_down;  // spine_down[s][l]: spine s -> leaf l

  // The base one-way path: host->leaf(->spine->leaf)->host has 4 links; the
  // minimum RTT (no queueing, MTU-sized data + 64B grant) is derived by the
  // builder and used by transports for BDP and timeout settings.
  sim::Duration base_rtt = sim::Duration::zero();
};

[[nodiscard]] LeafSpine build_leaf_spine(Network& net, const LeafSpineConfig& cfg);

// Three-tier fat-tree (Al-Fares et al.): `k` pods of k/2 edge and k/2
// aggregation switches, (k/2)^2 cores, k/2 hosts per edge — k^3/4 hosts
// total (k=16 -> 1024 hosts, 320 switches). Aggregation switch `a` of every
// pod uplinks to core group [a*(k/2), (a+1)*(k/2)); ECMP sprays upward at
// both the edge and aggregation tiers. `k` must be even and >= 2.
struct FatTreeConfig {
  int k = 4;
  sim::Bandwidth link_rate = sim::Bandwidth::gbps(10);
  sim::Duration link_delay = sim::Duration::microseconds(100);
  QueueFactory queue_factory;           // discipline per port (per protocol)
  MarkerFactory marker_factory;         // optional; applied to switch egress ports
  std::size_t host_nic_queue_pkts = 8192;
  MultipathMode multipath = MultipathMode::kPerFlowEcmp;
};

struct FatTree {
  int k = 0;
  std::vector<Host*> hosts;     // pod-major: hosts[(p*(k/2) + e)*(k/2) + h]
  std::vector<Switch*> edges;   // pod-major: edges[p*(k/2) + e]
  std::vector<Switch*> aggs;    // pod-major: aggs[p*(k/2) + a]
  std::vector<Switch*> cores;   // group-major: cores[a*(k/2) + j]
  // Global port-pool slots, indexed by the flat switch index above.
  std::vector<std::vector<PortId>> edge_down;  // edge_down[e][h]: edge -> its h-th host
  std::vector<std::vector<PortId>> edge_up;    // edge_up[e][a]:   edge -> pod agg a
  std::vector<std::vector<PortId>> agg_down;   // agg_down[a][e]:  agg -> pod edge e
  std::vector<std::vector<PortId>> agg_up;     // agg_up[a][j]:    agg -> its j-th core
  std::vector<std::vector<PortId>> core_down;  // core_down[c][p]: core -> pod p

  [[nodiscard]] std::size_t host_count() const { return hosts.size(); }

  // Worst-case (inter-pod) path: host->edge->agg->core->agg->edge->host is
  // 6 links; transports size BDP and timeouts from this.
  sim::Duration base_rtt = sim::Duration::zero();
};

[[nodiscard]] FatTree build_fat_tree(Network& net, const FatTreeConfig& cfg);

// Minimum RTT over an `hops`-link one-way path at `rate`: a full data packet
// out, a control packet back, plus propagation both ways. Store-and-forward
// re-serializes at every hop.
[[nodiscard]] sim::Duration path_base_rtt(int hops, sim::Bandwidth rate, sim::Duration link_delay);

}  // namespace amrt::net
