#include "net/port.hpp"

#include <cassert>
#include <stdexcept>

namespace amrt::net {

EgressPort::EgressPort(sim::Scheduler& sched, Config cfg, std::unique_ptr<EgressQueue> queue)
    : sched_{sched}, cfg_{std::move(cfg)}, queue_{std::move(queue)}, jitter_rng_{cfg_.jitter_seed} {
  if (!queue_) throw std::invalid_argument("EgressPort requires a queue");
  if (cfg_.rate.bits_per_second() <= 0) throw std::invalid_argument("EgressPort requires a positive rate");
}

void EgressPort::connect(Node& peer, int peer_ingress_port) {
  peer_ = &peer;
  peer_port_ = peer_ingress_port;
}

void EgressPort::add_marker(std::unique_ptr<DequeueMarker> marker) {
  markers_.push_back(std::move(marker));
}

void EgressPort::enqueue(Packet&& pkt) {
  queue_->enqueue(std::move(pkt));
  if (!busy_) start_next_transmission();
}

void EgressPort::start_next_transmission() {
  assert(!busy_);
  auto next = queue_->dequeue();
  if (!next) return;

  const sim::TimePoint tx_start = sched_.now();
  for (auto& marker : markers_) {
    marker->on_dequeue(*next, tx_start, last_tx_end_, cfg_.rate);
  }

  sim::Duration tx = cfg_.rate.tx_time(next->wire_bytes);
  busy_ = true;
  busy_time_ += tx;
  bytes_sent_ += next->wire_bytes;
  ++packets_sent_;
  if (cfg_.tx_jitter > sim::Duration::zero()) {
    tx += sim::Duration::nanoseconds(jitter_rng_.uniform_int(0, cfg_.tx_jitter.ns()));
  }

  // One event at transmission end handles both the link hand-off and the
  // next dequeue; the propagation delay is folded into the delivery event.
  sched_.after(tx, [this, pkt = std::move(*next)]() mutable {
    last_tx_end_ = sched_.now();
    busy_ = false;
    if (peer_ != nullptr) {
      sched_.after(cfg_.delay, [this, p = std::move(pkt)]() mutable {
        peer_->handle_packet(std::move(p), peer_port_);
      });
    }
    start_next_transmission();
  });
}

}  // namespace amrt::net
