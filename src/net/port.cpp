#include "net/port.hpp"

#include <cassert>
#include <stdexcept>

#include "net/network.hpp"
#include "net/partition.hpp"

namespace amrt::net {

EgressPort::EgressPort(sim::Scheduler& sched, Config cfg, EgressQueue& queue)
    : sched_{&sched},
      cfg_{cfg},
      queue_{&queue},
      jitter_rng_{cfg_.jitter_seed},
      effective_rate_{cfg_.rate} {
  if (cfg_.rate.bits_per_second() <= 0) throw std::invalid_argument("EgressPort requires a positive rate");
}

void EgressPort::connect(Node& peer, int peer_ingress_port) {
  net_ = nullptr;
  peer_node_ = &peer;
  peer_id_ = peer.id();
  peer_port_ = peer_ingress_port;
}

void EgressPort::connect(Network& net, NodeId peer, int peer_ingress_port) {
  net_ = &net;
  peer_node_ = nullptr;
  peer_id_ = peer;
  peer_port_ = peer_ingress_port;
}

void EgressPort::add_marker(std::unique_ptr<DequeueMarker> marker) {
  marker->bind_queue(*queue_);
  markers_.push_back(std::move(marker));
}

void EgressPort::enqueue(Packet&& pkt) {
  if (!link_up_) [[unlikely]] {
    eat_faulted(std::move(pkt), audit::DropReason::kLinkDown);
    return;
  }
  if (drop_prob_ > 0.0 && fault_rng_.bernoulli(drop_prob_)) [[unlikely]] {
    eat_faulted(std::move(pkt), audit::DropReason::kBlackhole);
    return;
  }
  queue_->enqueue(std::move(pkt));
  if (!busy()) {
    start_next_transmission();
  } else {
    ensure_wakeup();
  }
}

void EgressPort::eat_faulted(Packet&& pkt, audit::DropReason reason) {
  ++packets_faulted_;
#ifdef AMRT_AUDIT
  if (auto* a = sched_->auditor()) a->on_drop(audit::info_of(pkt), reason);
#endif
  (void)pkt;
  (void)reason;
}

void EgressPort::set_link_up(bool up) {
  if (up == link_up_) return;
  link_up_ = up;
  // Going down spills the queue: those packets were committed to a link
  // that no longer exists. The transmission already serializing (bits on
  // the wire) is left to deliver — real links lose the queue, not photons.
  if (!up) packets_faulted_ += queue_->flush_faulted();
}

void EgressPort::set_rate_scale(double scale) {
  if (scale <= 0.0 || scale > 1.0) throw std::invalid_argument("rate scale must be in (0, 1]");
  rate_scale_ = scale;
  effective_rate_ =
      sim::Bandwidth::bps(static_cast<std::int64_t>(static_cast<double>(cfg_.rate.bits_per_second()) * scale));
  // The memoized serialization times were computed at the old rate.
  tx_memo_bytes_[0] = tx_memo_bytes_[1] = -1;
}

void EgressPort::set_drop_prob(double prob, std::uint64_t seed) {
  if (prob < 0.0 || prob > 1.0) throw std::invalid_argument("drop probability must be in [0, 1]");
  drop_prob_ = prob;
  if (prob > 0.0) fault_rng_ = sim::Rng{seed};
}

void EgressPort::ensure_wakeup() {
  if (wakeup_pending_) return;
  wakeup_pending_ = true;
  // Raw lane: the wakeup is never cancelled (wakeup_pending_ dedups it), so
  // it can skip the callback record entirely.
  sched_->at_raw(
      busy_until_, [](void* p) { static_cast<EgressPort*>(p)->on_wakeup(); }, this);
}

void EgressPort::on_wakeup() {
  wakeup_pending_ = false;
  if (busy()) {
    // An enqueue at exactly the old busy_until_ beat us to the dequeue and
    // started a new transmission; re-arm for its end if work is waiting.
    if (!queue_->empty()) ensure_wakeup();
    return;
  }
  start_next_transmission();
}

void EgressPort::deliver_to_peer(Packet&& pkt) {
  if (net_ != nullptr) {
    net_->deliver(peer_id_, std::move(pkt), peer_port_);
  } else {
    peer_node_->handle_packet(std::move(pkt), peer_port_);
  }
}

void EgressPort::start_next_transmission() {
  assert(!busy());
  auto next = queue_->dequeue();
  if (!next) return;

  const sim::TimePoint tx_start = sched_->now();
  // Most ports (all NICs, and every non-AMRT switch port) have no markers:
  // skip the loop outright rather than pay its setup per packet.
  if (!markers_.empty()) {
    for (auto& marker : markers_) {
      // Markers measure against the actual draining rate, so Eq. 2's spare
      // bandwidth stays honest when a fault degrades the link.
      marker->on_dequeue(*next, tx_start, last_tx_end_, effective_rate_);
    }
  }

  sim::Duration tx = tx_time_for(next->wire_bytes);
  busy_time_ += tx;
  bytes_sent_ += next->wire_bytes;
  ++packets_sent_;
  if (cfg_.tx_jitter > sim::Duration::zero()) {
    tx += sim::Duration::nanoseconds(jitter_rng_.uniform_int(0, cfg_.tx_jitter.ns()));
  }

  // The serializer is a timestamp, not an event: markers above read
  // last_tx_end_ as "end of the previous transmission", and the next dequeue
  // can only run at/after busy_until_, so updating both eagerly is
  // equivalent to updating them in a tx-end event — without paying for one.
  busy_until_ = tx_start + tx;
  last_tx_end_ = busy_until_;
  if (!queue_->empty()) ensure_wakeup();

  // Delivery at the peer after serialization + propagation. The packet moves
  // once, and the lambda fits the scheduler's inline callback buffer. `this`
  // is stable here: the port pool is frozen once traffic flows (see the
  // Network invalidation rules).
  if (outbox_ != nullptr) [[unlikely]] {
    // Cross-shard link: the peer's handler runs on another shard's thread,
    // so no event is scheduled here. The delivery timestamp rides along and
    // the receiving shard injects it at its next window — the conservative
    // lookahead guarantees that window hasn't started yet.
    outbox_->push((tx_start + tx + cfg_.delay).ns(), peer_id_, peer_port_, std::move(*next));
  } else if (net_ != nullptr || peer_node_ != nullptr) {
    sched_->after(tx + cfg_.delay, [this, p = std::move(*next)]() mutable {
      deliver_to_peer(std::move(p));
    });
  }
}

}  // namespace amrt::net
