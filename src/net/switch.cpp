#include "net/switch.hpp"

#include "net/network.hpp"

namespace amrt::net {

Switch::Switch(Network& net, NodeId id) : Node{id}, net_{&net} {}

int Switch::adopt_port(PortId port) {
  port_slots_.push_back(port);
  return static_cast<int>(port_slots_.size()) - 1;
}

}  // namespace amrt::net
