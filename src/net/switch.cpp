#include "net/switch.hpp"

#include "net/network.hpp"

namespace amrt::net {

Switch::Switch(Network& net, NodeId id) : Node{id}, net_{&net} {
  // Every switch forwards against the fabric-wide link liveness so injected
  // link failures reroute ECMP traffic (see RoutingTable::bind_link_state).
  routes_.bind_link_state(&net.link_state());
}

int Switch::adopt_port(PortId port) {
  port_slots_.push_back(port);
  return static_cast<int>(port_slots_.size()) - 1;
}

}  // namespace amrt::net
