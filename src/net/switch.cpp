#include "net/switch.hpp"

namespace amrt::net {

Switch::Switch(sim::Scheduler& sched, NodeId id, std::string name)
    : Node{id, std::move(name)}, sched_{sched} {}

int Switch::add_port(EgressPort::Config cfg, std::unique_ptr<EgressQueue> queue) {
  ports_.push_back(std::make_unique<EgressPort>(sched_, std::move(cfg), std::move(queue)));
  return static_cast<int>(ports_.size()) - 1;
}

void Switch::handle_packet(Packet&& pkt, int /*ingress_port*/) {
  const int out = routes_.select(pkt);
  ports_[out]->enqueue(std::move(pkt));
}

}  // namespace amrt::net
