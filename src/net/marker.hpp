// Dequeue-time packet rewriting hook.
//
// The anti-ECN marker (src/core/anti_ecn.hpp) is the one implementation the
// paper needs, but the hook is generic: a marker observes each packet at the
// instant it begins transmission, together with when the port last finished
// transmitting — exactly the state Section 4.1 requires a switch to keep.
#pragma once

#include <functional>
#include <memory>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace amrt::net {

class EgressQueue;

class DequeueMarker {
 public:
  virtual ~DequeueMarker() = default;

  // `tx_start`     — current virtual time; transmission of `pkt` begins now.
  // `last_tx_end`  — when this port's previous transmission completed.
  // `rate`         — the port's line rate (the C of Eq. 2).
  virtual void on_dequeue(Packet& pkt, sim::TimePoint tx_start,
                          sim::TimePoint last_tx_end, sim::Bandwidth rate) = 0;

  // Called once when the marker is attached to a port, with the port's
  // egress queue. Depth-based markers (threshold ECN) keep the reference;
  // gap-based markers (anti-ECN) ignore it — the default is a no-op so the
  // on_dequeue signature and its many standalone test call sites stay put.
  virtual void bind_queue(const EgressQueue& queue) { (void)queue; }
};

using MarkerFactory = std::function<std::unique_ptr<DequeueMarker>()>;

}  // namespace amrt::net
