#include "net/packet.hpp"

#include <cstdio>

namespace amrt::net {

std::string Packet::str() const {
  const char* t = "?";
  switch (type) {
    case PacketType::kData: t = trimmed ? "HDR" : "DATA"; break;
    case PacketType::kRts: t = "RTS"; break;
    case PacketType::kGrant: t = "GRANT"; break;
    case PacketType::kDone: t = "DONE"; break;
  }
  char buf[160];
  std::snprintf(buf, sizeof buf, "%s flow=%llu seq=%u %uB %u->%u ce=%d prio=%u",
                t, static_cast<unsigned long long>(flow), seq, wire_bytes,
                src.value, dst.value, ce ? 1 : 0, priority);
  return buf;
}

}  // namespace amrt::net
