#include "net/routing.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace amrt::net {

std::uint64_t ecmp_hash(FlowId flow) {
  // SplitMix64 finalizer: cheap and well distributed.
  std::uint64_t x = flow + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void RoutingTable::add_route(NodeId dst, int port) {
  if (dst.value >= pending_.size()) pending_.resize(dst.value + 1);
  if (pending_[dst.value].empty()) ++dst_count_;
  pending_[dst.value].push_back(port);
  dirty_ = true;
}

// Flattens the per-destination lists into {offset,count} entries over one
// contiguous pool, in destination order (deterministic). Any cached ECMP
// picks refer to the old layout, so the route cache is flushed; spray
// cursors restart at the front of each (possibly re-shaped) port set.
void RoutingTable::compact() const {
  entries_.assign(pending_.size(), Entry{});
  pool_.clear();
  for (std::size_t dst = 0; dst < pending_.size(); ++dst) {
    entries_[dst].offset = static_cast<std::uint32_t>(pool_.size());
    entries_[dst].count = static_cast<std::uint32_t>(pending_[dst].size());
    pool_.insert(pool_.end(), pending_[dst].begin(), pending_[dst].end());
  }
  cache_.fill(CacheSlot{});
  view_entries_ = entries_.data();
  view_pool_ = pool_.data();
  view_size_ = entries_.size();
  // Any past link transition invalidates this full view; resetting the seen
  // epoch below the live one makes the next select() re-filter. Epoch 0
  // (no transition ever) keeps the full view with no refresh.
  seen_epoch_ = 0;
  dirty_ = false;
}

void RoutingTable::refresh_link_view() const {
  seen_epoch_ = link_state_->epoch.load(std::memory_order_relaxed);
  // Cached ECMP picks may point at ports that just died (or skip ports that
  // just revived): flush wholesale, repopulated per flow on the next packet.
  cache_.fill(CacheSlot{});
  bool any_down = false;
  for (const int p : pool_) {
    if (!link_state_->is_up(p)) {
      any_down = true;
      break;
    }
  }
  if (!any_down) {
    view_entries_ = entries_.data();
    view_pool_ = pool_.data();
    view_size_ = entries_.size();
    return;
  }
  alive_entries_.assign(entries_.size(), Entry{});
  alive_pool_.clear();
  alive_pool_.reserve(pool_.size());
  for (std::size_t dst = 0; dst < entries_.size(); ++dst) {
    const Entry& e = entries_[dst];
    const auto offset = static_cast<std::uint32_t>(alive_pool_.size());
    for (std::uint32_t i = 0; i < e.count; ++i) {
      const int p = pool_[e.offset + i];
      if (link_state_->is_up(p)) alive_pool_.push_back(p);
    }
    auto count = static_cast<std::uint32_t>(alive_pool_.size()) - offset;
    if (count == 0 && e.count != 0) {
      // Every path toward dst is dead. Keep the wired set: the dead egress
      // port eats the packets (charged as faulted), the flow heals when a
      // link returns, and a miswired fabric still dies via the count==0
      // check in select().
      for (std::uint32_t i = 0; i < e.count; ++i) alive_pool_.push_back(pool_[e.offset + i]);
      count = e.count;
    }
    alive_entries_[dst] = Entry{offset, count, 0};
  }
  view_entries_ = alive_entries_.data();
  view_pool_ = alive_pool_.data();
  view_size_ = alive_entries_.size();
}

std::span<const int> RoutingTable::ports_for(NodeId dst) const {
  if (dirty_) compact();
  if (dst.value >= entries_.size()) return {};
  const Entry& e = entries_[dst.value];
  return {pool_.data() + e.offset, e.count};
}

void RoutingTable::require_route(NodeId dst) const {
  if (!knows(dst)) {
    throw std::logic_error("RoutingTable: no route to node " + std::to_string(dst.value) +
                           " after wiring");
  }
}

void RoutingTable::die_unknown_destination(NodeId dst) {
  // A packet addressed past the wired fabric is a topology bug, not a
  // runtime condition: fail loudly instead of dragging exception machinery
  // through the per-packet path.
  std::fprintf(stderr, "RoutingTable: unknown destination node %u — miswired topology\n",
               dst.value);
  std::abort();
}

}  // namespace amrt::net
