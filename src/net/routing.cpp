#include "net/routing.hpp"

#include <stdexcept>

namespace amrt::net {

std::uint64_t ecmp_hash(FlowId flow) {
  // SplitMix64 finalizer: cheap and well distributed.
  std::uint64_t x = flow + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void RoutingTable::add_route(NodeId dst, int port) {
  table_[dst.value].push_back(port);
}

const std::vector<int>& RoutingTable::ports_for(NodeId dst) const {
  auto it = table_.find(dst.value);
  if (it == table_.end()) throw std::out_of_range("RoutingTable: unknown destination");
  return it->second;
}

int RoutingTable::select(const Packet& pkt) {
  const auto& ports = ports_for(pkt.dst);
  if (ports.size() == 1) return ports.front();
  if (mode_ == MultipathMode::kPacketSpray) {
    // Control packets stay on the flow's hashed path so grant clocks are
    // not reordered; only data is sprayed (as in NDP).
    if (pkt.type == PacketType::kData) {
      return ports[spray_counter_++ % ports.size()];
    }
  }
  return ports[ecmp_hash(pkt.flow) % ports.size()];
}

}  // namespace amrt::net
