#include "net/routing.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace amrt::net {

std::uint64_t ecmp_hash(FlowId flow) {
  // SplitMix64 finalizer: cheap and well distributed.
  std::uint64_t x = flow + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void RoutingTable::add_route(NodeId dst, int port) {
  if (dst.value >= pending_.size()) pending_.resize(dst.value + 1);
  if (pending_[dst.value].empty()) ++dst_count_;
  pending_[dst.value].push_back(port);
  dirty_ = true;
}

// Flattens the per-destination lists into {offset,count} entries over one
// contiguous pool, in destination order (deterministic). Any cached ECMP
// picks refer to the old layout, so the route cache is flushed; spray
// cursors restart at the front of each (possibly re-shaped) port set.
void RoutingTable::compact() const {
  entries_.assign(pending_.size(), Entry{});
  pool_.clear();
  for (std::size_t dst = 0; dst < pending_.size(); ++dst) {
    entries_[dst].offset = static_cast<std::uint32_t>(pool_.size());
    entries_[dst].count = static_cast<std::uint32_t>(pending_[dst].size());
    pool_.insert(pool_.end(), pending_[dst].begin(), pending_[dst].end());
  }
  cache_.fill(CacheSlot{});
  dirty_ = false;
}

std::span<const int> RoutingTable::ports_for(NodeId dst) const {
  if (dirty_) compact();
  if (dst.value >= entries_.size()) return {};
  const Entry& e = entries_[dst.value];
  return {pool_.data() + e.offset, e.count};
}

void RoutingTable::require_route(NodeId dst) const {
  if (!knows(dst)) {
    throw std::logic_error("RoutingTable: no route to node " + std::to_string(dst.value) +
                           " after wiring");
  }
}

void RoutingTable::die_unknown_destination(NodeId dst) {
  // A packet addressed past the wired fabric is a topology bug, not a
  // runtime condition: fail loudly instead of dragging exception machinery
  // through the per-packet path.
  std::fprintf(stderr, "RoutingTable: unknown destination node %u — miswired topology\n",
               dst.value);
  std::abort();
}

}  // namespace amrt::net
