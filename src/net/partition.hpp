// Partitioned (sharded) execution of one fabric over worker threads.
//
// Conservative parallel discrete-event execution in the MPI-ns-3 style:
// the fabric is split into shards (fat-tree: one pod per shard, cores
// round-robin; leaf-spine: one leaf per shard, spines round-robin), each
// shard runs its own `sim::Scheduler` on its own thread, and shards only
// synchronize at time-window barriers. The window width — the *lookahead* —
// is the minimum latency of any cross-shard link (propagation delay plus
// the serialization floor of a header-only packet), so an event fired
// inside the current window can only affect another shard at or after the
// next window's start. Cross-shard packets travel through per-(src,dst)
// shard-pair mailboxes: plain vectors written by the producing shard during
// its window and drained by the receiving shard in the injection phase that
// follows the barrier, so no lock-free structures are needed — the barrier
// itself provides the happens-before edge.
//
// Determinism contract (DESIGN.md §12): the serial path is untouched and
// stays bit-identical; a fixed shard count is reproducible run-to-run
// (deterministic window sequence, serial execution inside each shard,
// deterministic mailbox drain order: source shard, then delivery timestamp,
// then push order); different shard counts agree statistically (FCT
// tolerance), not bitwise, because same-timestamp ties resolve per-shard.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "net/topology.hpp"
#include "sim/shard.hpp"

namespace amrt::net {

// One direction of a shard-pair channel. The producing shard's cross ports
// push into it during a window (single writer); the receiving shard drains
// it during the injection phase after the barrier (single reader). The two
// phases are separated by a barrier on either side, so a plain vector is
// race-free by construction.
class ShardMailbox {
 public:
  struct Msg {
    std::int64_t deliver_ns = 0;  // wire arrival time at the peer
    NodeId peer{};                // receiving node (pool id)
    std::int32_t peer_port = -1;  // its ingress port
    Packet pkt{};
  };

  void push(std::int64_t deliver_ns, NodeId peer, std::int32_t peer_port, Packet&& pkt) {
    msgs_.push_back(Msg{deliver_ns, peer, peer_port, std::move(pkt)});
  }

  // Orders queued messages for injection: by delivery time, stable — ties
  // keep push order, which is the producing shard's deterministic event
  // order. Draining source shards in index order on the receiving side
  // completes the (source shard, timestamp, seq) drain contract.
  void sort_for_injection();

  [[nodiscard]] std::vector<Msg>& msgs() { return msgs_; }
  [[nodiscard]] bool empty() const { return msgs_.empty(); }
  void clear() { msgs_.clear(); }

 private:
  std::vector<Msg> msgs_;
};

// The partition map over a built (frozen) Network: which shard owns each
// node and each egress port, which ports cross shards, and the conservative
// lookahead those crossings admit.
struct Partition {
  unsigned n_shards = 1;
  std::vector<std::uint32_t> node_shard;  // by NodeId.value
  std::vector<std::uint32_t> port_shard;  // by PortId (the owning node's shard)
  std::vector<std::uint8_t> port_cross;   // 1 iff the port's peer lives on another shard
  // min over cross ports of (propagation + header serialization time);
  // Duration::max() when nothing crosses (every window then runs to drain).
  sim::Duration lookahead = sim::Duration::max();
  std::size_t cross_ports = 0;

  [[nodiscard]] std::uint32_t shard_of(NodeId id) const { return node_shard[id.value]; }
};

// Derives port ownership, cross flags and the lookahead from a complete
// node->shard map. Throws std::logic_error if any node or port is left
// unassigned (or assigned twice), or a shard index is out of range — the
// coverage guarantees tests/test_partition.cpp pins down.
[[nodiscard]] Partition make_partition(const Network& net, std::vector<std::uint32_t> node_shard,
                                       unsigned n_shards);

// Pod-partitioned fat-tree: pod p's hosts, edge and aggregation switches go
// to shard p % n_shards; core switch c goes to shard c % n_shards. Only
// agg<->core links cross shards (when their endpoints' shards differ).
[[nodiscard]] Partition partition_fat_tree(const Network& net, const FatTree& topo,
                                           unsigned n_shards);

// Leaf-partitioned leaf-spine: leaf l and its hosts go to shard l % n_shards,
// spine s to shard s % n_shards. Only leaf<->spine links cross shards.
[[nodiscard]] Partition partition_leaf_spine(const Network& net, const LeafSpine& topo,
                                             unsigned n_shards);

// Drives a partitioned run: binds every port/host/queue to its owning
// shard's scheduler, spawns one worker per shard, and executes conservative
// time windows between barriers until every shard drains (or a limit trips).
// Single-shot: build, run() once, read the results. With n_shards == 1 the
// runner degenerates to a plain serial run on the master scheduler.
class ShardedRunner {
 public:
  struct Config {
    // Total-events safety valve across all shards (0 = unlimited); also
    // armed per shard so a runaway window terminates.
    std::uint64_t event_limit = 0;
    // Hard stop: windows never open at or past this virtual time.
    sim::TimePoint horizon = sim::TimePoint::max();
    // Replay context installed on every worker thread, so a fail-fast audit
    // abort on any shard prints the repro line (audit::set_context is
    // thread-local).
    std::string audit_context;
  };

  // `net` must be fully built against `shards.master()` and frozen.
  ShardedRunner(Network& net, Partition part, sim::ShardGroup& shards, Config cfg);
  ShardedRunner(Network& net, Partition part, sim::ShardGroup& shards);

  void run();

  [[nodiscard]] const Partition& partition() const { return part_; }
  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }
  [[nodiscard]] bool event_limit_hit() const { return limit_hit_; }
  [[nodiscard]] bool horizon_hit() const { return horizon_hit_; }

 private:
  void bind();
  void inject_inbound(unsigned me);
  void coordinate() noexcept;  // runs single-threaded inside the barrier completion

  Network& net_;
  Partition part_;
  sim::ShardGroup& shards_;
  Config cfg_;
  std::vector<ShardMailbox> boxes_;  // [src * n + dst], addresses frozen by bind()
  std::int64_t window_end_ns_ = 0;
  bool done_ = false;                // written only in coordinate()
  std::atomic<bool> failed_{false};  // a worker threw; terminate at the next barrier
  std::uint64_t rounds_ = 0;
  bool limit_hit_ = false;
  bool horizon_hit_ = false;
};

}  // namespace amrt::net
