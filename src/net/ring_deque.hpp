// Growable ring buffer with deque semantics for the packet hot path.
//
// `std::deque` allocates and frees a ~512-byte chunk every few packets as a
// FIFO window slides through it, which puts the allocator on the per-packet
// path of every egress queue. This ring keeps one power-of-two buffer that
// only grows (capacity is retained for the rest of the run), so steady-state
// enqueue/dequeue never touches the heap.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace amrt::net {

template <typename T>
class RingDeque {
 public:
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  [[nodiscard]] T& front() { return buf_[head_]; }
  [[nodiscard]] const T& front() const { return buf_[head_]; }
  // Index 0 is the front (oldest element).
  [[nodiscard]] T& operator[](std::size_t i) { return buf_[wrap(head_ + i)]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return buf_[wrap(head_ + i)]; }

  void push_back(T&& v) {
    if (size_ == buf_.size()) grow();
    buf_[wrap(head_ + size_)] = std::move(v);
    ++size_;
  }

  // Prepends: the new element becomes index 0 (used by loss-repair queues,
  // where fresh detections jump ahead of scheduled retries).
  void push_front(T&& v) {
    if (size_ == buf_.size()) grow();
    head_ = wrap(head_ + buf_.size() - 1);
    buf_[head_] = std::move(v);
    ++size_;
  }

  T pop_front() {
    T out = std::move(buf_[head_]);
    head_ = wrap(head_ + 1);
    --size_;
    return out;
  }

  // Removes the element at `i`, shifting the (younger) tail side forward.
  void erase(std::size_t i) {
    for (std::size_t j = i; j + 1 < size_; ++j) {
      (*this)[j] = std::move((*this)[j + 1]);
    }
    --size_;
  }

 private:
  [[nodiscard]] std::size_t wrap(std::size_t i) const { return i & (buf_.size() - 1); }

  void grow() {
    // Start at 64: egress queues under incast reach hundreds of packets per
    // run, and starting small just replays the doubling ladder every run.
    const std::size_t cap = buf_.empty() ? 64 : buf_.size() * 2;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < size_; ++i) next[i] = std::move((*this)[i]);
    buf_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace amrt::net
