// End host: a single NIC egress port plus a transport attachment point.
//
// The host owns its transport endpoint through the PacketSink interface so
// the network layer never depends on the transport layer's types. The host
// itself lives by value in Network's host pool and addresses its NIC as a
// slot in the network-wide port pool; the hot accessors (send/nic) are
// defined inline in net/network.hpp once Network is complete.
#pragma once

#include <memory>

#include "audit/hooks.hpp"
#include "net/node.hpp"
#include "net/port.hpp"
#include "sim/scheduler.hpp"

namespace amrt::net {

class Network;

class Host final : public Node {
 public:
  Host(sim::Scheduler& sched, Network& net, NodeId id, PortId nic);

  // Installs the transport stack; the host takes ownership.
  void attach(std::unique_ptr<PacketSink> sink);
  [[nodiscard]] bool has_sink() const { return sink_ != nullptr; }

  // Transmits via the NIC (subject to its queue and line rate). This is the
  // audited injection point: everything a transport puts on the wire enters
  // the packet-conservation ledger here, and the anti-ECN shadow bit starts
  // as the sender's CE (each hop's marker ANDs its verdict into both).
  // Defined in net/network.hpp (needs the port pool).
  inline void send(Packet&& pkt);

  void handle_packet(Packet&& pkt, int ingress_port) override;

  [[nodiscard]] inline EgressPort& nic();
  [[nodiscard]] inline const EgressPort& nic() const;
  [[nodiscard]] inline sim::Bandwidth link_rate() const;
  [[nodiscard]] PortId nic_id() const { return nic_; }

  // Bytes received off the wire (any packet type), for throughput meters.
  [[nodiscard]] std::uint64_t bytes_received() const { return bytes_received_; }

  // Re-points the audit hooks at the owning shard's scheduler (sharded runs
  // only; see net/partition.hpp). Must run before traffic flows.
  void rebind_scheduler(sim::Scheduler& sched) { sched_ = &sched; }

 private:
  sim::Scheduler* sched_;
  Network* net_;
  PortId nic_;
  std::unique_ptr<PacketSink> sink_;
  std::uint64_t bytes_received_ = 0;
};

}  // namespace amrt::net
