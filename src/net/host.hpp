// End host: a single NIC egress port plus a transport attachment point.
//
// The host owns its transport endpoint through the PacketSink interface so
// the network layer never depends on the transport layer's types.
#pragma once

#include <memory>

#include "audit/hooks.hpp"
#include "net/node.hpp"
#include "net/port.hpp"
#include "sim/scheduler.hpp"

namespace amrt::net {

class Host final : public Node {
 public:
  Host(sim::Scheduler& sched, NodeId id, std::string name,
       EgressPort::Config nic_cfg, std::unique_ptr<EgressQueue> nic_queue);

  // Installs the transport stack; the host takes ownership.
  void attach(std::unique_ptr<PacketSink> sink);
  [[nodiscard]] bool has_sink() const { return sink_ != nullptr; }

  // Transmits via the NIC (subject to its queue and line rate). This is the
  // audited injection point: everything a transport puts on the wire enters
  // the packet-conservation ledger here, and the anti-ECN shadow bit starts
  // as the sender's CE (each hop's marker ANDs its verdict into both).
  void send(Packet&& pkt) {
#ifdef AMRT_AUDIT
    if (auto* a = nic_.scheduler().auditor()) {
      pkt.audit_ce_expected = pkt.ce;
      a->on_inject(audit::info_of(pkt));
    }
#endif
    nic_.enqueue(std::move(pkt));
  }

  void handle_packet(Packet&& pkt, int ingress_port) override;

  [[nodiscard]] EgressPort& nic() { return nic_; }
  [[nodiscard]] const EgressPort& nic() const { return nic_; }
  [[nodiscard]] sim::Bandwidth link_rate() const { return nic_.config().rate; }

  // Bytes received off the wire (any packet type), for throughput meters.
  [[nodiscard]] std::uint64_t bytes_received() const { return bytes_received_; }

 private:
  EgressPort nic_;
  std::unique_ptr<PacketSink> sink_;
  std::uint64_t bytes_received_ = 0;
};

}  // namespace amrt::net
