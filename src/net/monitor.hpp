// Telemetry samplers over egress ports.
//
// `PortSampler` polls a port on a fixed interval and records utilization
// (busy fraction of the interval), queue depth and cumulative bytes — the
// raw series behind the paper's throughput/utilization/queue figures.
// `window_utilization` gives the one-number summary used by Fig. 13/14.
#pragma once

#include <cstdint>
#include <vector>

#include "net/port.hpp"
#include "sim/simulation.hpp"

namespace amrt::net {

class PortSampler {
 public:
  struct Sample {
    sim::TimePoint at;
    double utilization = 0.0;   // busy fraction over the previous interval
    std::size_t queue_pkts = 0; // instantaneous data-band depth
    std::uint64_t bytes_sent = 0;  // cumulative
  };

  PortSampler(sim::Simulation& sim, const EgressPort& port, sim::Duration interval);
  ~PortSampler();
  PortSampler(const PortSampler&) = delete;
  PortSampler& operator=(const PortSampler&) = delete;

  void start();
  void stop();

  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
  [[nodiscard]] std::size_t max_queue_pkts() const { return max_queue_; }
  [[nodiscard]] double mean_utilization() const;
  // Mean utilization over samples in [from, to].
  [[nodiscard]] double mean_utilization(sim::TimePoint from, sim::TimePoint to) const;

 private:
  void tick();

  sim::Scheduler& sched_;
  const EgressPort& port_;
  sim::Duration interval_;
  sim::Scheduler::Handle pending_{};
  bool running_ = false;
  std::uint64_t last_bytes_ = 0;
  sim::Duration last_busy_ = sim::Duration::zero();
  std::vector<Sample> samples_;
  std::size_t max_queue_ = 0;
};

// Utilization of `port` between two instants, from byte counters taken
// before/after (caller snapshots with `bytes_sent()`): delivered bits over
// capacity * elapsed.
[[nodiscard]] double window_utilization(const EgressPort& port, std::uint64_t bytes_before,
                                        sim::TimePoint from, sim::TimePoint to);

}  // namespace amrt::net
