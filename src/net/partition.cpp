#include "net/partition.hpp"

#include <algorithm>
#include <barrier>
#include <limits>
#include <stdexcept>
#include <thread>

#include "audit/auditor.hpp"

namespace amrt::net {

namespace {
constexpr std::uint32_t kUnassigned = ~std::uint32_t{0};
}  // namespace

void ShardMailbox::sort_for_injection() {
  std::stable_sort(msgs_.begin(), msgs_.end(),
                   [](const Msg& a, const Msg& b) { return a.deliver_ns < b.deliver_ns; });
}

Partition make_partition(const Network& net, std::vector<std::uint32_t> node_shard,
                         unsigned n_shards) {
  if (n_shards == 0) throw std::logic_error("make_partition: need at least one shard");
  const std::size_t n_nodes = net.host_count() + net.switch_count();
  if (node_shard.size() != n_nodes) {
    throw std::logic_error("make_partition: node map size does not match the node pool");
  }
  for (const std::uint32_t s : node_shard) {
    if (s >= n_shards) throw std::logic_error("make_partition: node unassigned or shard out of range");
  }

  Partition part;
  part.n_shards = n_shards;
  part.node_shard = std::move(node_shard);
  part.port_shard.assign(net.port_count(), kUnassigned);
  part.port_cross.assign(net.port_count(), 0);

  // A port belongs to the node that transmits on it. Every port slot must be
  // claimed by exactly one node — double or missing claims are wiring bugs.
  auto claim = [&part](PortId p, std::uint32_t shard) {
    auto& slot = part.port_shard[static_cast<std::size_t>(p)];
    if (slot != kUnassigned) throw std::logic_error("make_partition: port claimed twice");
    slot = shard;
  };
  for (const Host& h : net.hosts()) claim(h.nic_id(), part.shard_of(h.id()));
  for (const Switch& sw : net.switches()) {
    const std::uint32_t s = part.shard_of(sw.id());
    for (int i = 0; i < sw.port_count(); ++i) claim(sw.port_id(i), s);
  }
  for (const std::uint32_t s : part.port_shard) {
    if (s == kUnassigned) throw std::logic_error("make_partition: port owned by no node");
  }

  // Lookahead: the fastest any event can reach another shard. A cross link
  // delivers no earlier than propagation plus the serialization time of the
  // smallest frame (a trimmed header), so that minimum bounds every
  // cross-shard interaction and is safe under tx jitter (additive) and
  // fault rate-scaling (scale <= 1 only slows links down).
  std::int64_t min_latency_ns = std::numeric_limits<std::int64_t>::max();
  for (std::size_t p = 0; p < net.port_count(); ++p) {
    const EgressPort& port = net.port_at(static_cast<PortId>(p));
    const std::uint32_t peer_shard = part.shard_of(port.peer());
    if (peer_shard == part.port_shard[p]) continue;
    part.port_cross[p] = 1;
    ++part.cross_ports;
    const std::int64_t lat =
        (port.config().delay + port.config().rate.tx_time(kHeaderBytes)).ns();
    if (lat < min_latency_ns) min_latency_ns = lat;
  }
  if (part.cross_ports != 0) part.lookahead = sim::Duration::nanoseconds(min_latency_ns);
  return part;
}

Partition partition_fat_tree(const Network& net, const FatTree& topo, unsigned n_shards) {
  const int half = topo.k / 2;
  const std::size_t n_nodes = net.host_count() + net.switch_count();
  std::vector<std::uint32_t> map(n_nodes, kUnassigned);

  // Pod-major layouts: hosts[(p*half + e)*half + h], edges/aggs[p*half + e].
  for (std::size_t i = 0; i < topo.hosts.size(); ++i) {
    const auto pod = i / (static_cast<std::size_t>(half) * static_cast<std::size_t>(half));
    map[topo.hosts[i]->id().value] = static_cast<std::uint32_t>(pod % n_shards);
  }
  for (std::size_t i = 0; i < topo.edges.size(); ++i) {
    const auto pod = i / static_cast<std::size_t>(half);
    map[topo.edges[i]->id().value] = static_cast<std::uint32_t>(pod % n_shards);
  }
  for (std::size_t i = 0; i < topo.aggs.size(); ++i) {
    const auto pod = i / static_cast<std::size_t>(half);
    map[topo.aggs[i]->id().value] = static_cast<std::uint32_t>(pod % n_shards);
  }
  for (std::size_t i = 0; i < topo.cores.size(); ++i) {
    map[topo.cores[i]->id().value] = static_cast<std::uint32_t>(i % n_shards);
  }
  return make_partition(net, std::move(map), n_shards);
}

Partition partition_leaf_spine(const Network& net, const LeafSpine& topo, unsigned n_shards) {
  const std::size_t n_nodes = net.host_count() + net.switch_count();
  std::vector<std::uint32_t> map(n_nodes, kUnassigned);
  const std::size_t hosts_per_leaf = topo.hosts.size() / topo.leaves.size();

  for (std::size_t i = 0; i < topo.hosts.size(); ++i) {
    map[topo.hosts[i]->id().value] = static_cast<std::uint32_t>((i / hosts_per_leaf) % n_shards);
  }
  for (std::size_t l = 0; l < topo.leaves.size(); ++l) {
    map[topo.leaves[l]->id().value] = static_cast<std::uint32_t>(l % n_shards);
  }
  for (std::size_t s = 0; s < topo.spines.size(); ++s) {
    map[topo.spines[s]->id().value] = static_cast<std::uint32_t>(s % n_shards);
  }
  return make_partition(net, std::move(map), n_shards);
}

ShardedRunner::ShardedRunner(Network& net, Partition part, sim::ShardGroup& shards, Config cfg)
    : net_{net}, part_{std::move(part)}, shards_{shards}, cfg_{std::move(cfg)} {
  if (shards_.size() != part_.n_shards) {
    throw std::logic_error("ShardedRunner: shard group size does not match the partition");
  }
}

ShardedRunner::ShardedRunner(Network& net, Partition part, sim::ShardGroup& shards)
    : ShardedRunner{net, std::move(part), shards, Config{}} {}

void ShardedRunner::bind() {
  const unsigned n = part_.n_shards;
  boxes_ = std::vector<ShardMailbox>(static_cast<std::size_t>(n) * n);
  for (std::size_t p = 0; p < net_.port_count(); ++p) {
    EgressPort& port = net_.port_at(static_cast<PortId>(p));
    const std::uint32_t s = part_.port_shard[p];
    sim::Scheduler& sched = shards_.shard(s).scheduler();
    port.rebind_scheduler(sched);
    // The queue's audit hook fires on the owning shard's thread; re-point it
    // at that shard's auditor (no-op without AMRT_AUDIT).
    port.queue_mut().audit_bind(&shards_.shard(s).auditor(), static_cast<std::uint32_t>(p));
    if (part_.port_cross[p] != 0) {
      const std::uint32_t d = part_.shard_of(port.peer());
      port.set_cross_shard_outbox(&boxes_[static_cast<std::size_t>(s) * n + d]);
    }
  }
  for (Host& host : net_.hosts()) {
    host.rebind_scheduler(shards_.shard(part_.shard_of(host.id())).scheduler());
  }
  // Injection and delivery of one packet may land in different shards'
  // ledgers; cross-shard mode books both sides and the post-run merge
  // cancels them.
  for (unsigned i = 0; i < n; ++i) shards_.shard(i).auditor().set_cross_shard(true);
}

void ShardedRunner::inject_inbound(unsigned me) {
  const unsigned n = part_.n_shards;
  sim::Scheduler& sched = shards_.shard(me).scheduler();
  for (unsigned src = 0; src < n; ++src) {
    ShardMailbox& box = boxes_[static_cast<std::size_t>(src) * n + me];
    if (box.empty()) continue;
    box.sort_for_injection();
    Network* net = &net_;
    for (ShardMailbox::Msg& m : box.msgs()) {
      sched.at(sim::TimePoint::from_ns(m.deliver_ns),
               [net, peer = m.peer, port = m.peer_port, p = std::move(m.pkt)]() mutable {
                 net->deliver(peer, std::move(p), port);
               });
    }
    box.clear();
  }
}

void ShardedRunner::coordinate() noexcept {
  ++rounds_;
  if (failed_.load(std::memory_order_relaxed)) {
    done_ = true;
    return;
  }
  const unsigned n = part_.n_shards;
  std::int64_t min_next = std::numeric_limits<std::int64_t>::max();
  std::uint64_t total_events = 0;
  for (unsigned i = 0; i < n; ++i) {
    sim::Scheduler& sched = shards_.shard(i).scheduler();
    total_events += sched.events_processed();
    if (const auto t = sched.next_event_time(); t.has_value() && t->ns() < min_next) {
      min_next = t->ns();
    }
  }
  if (min_next == std::numeric_limits<std::int64_t>::max()) {
    done_ = true;  // global drain: every shard's event set is empty
    return;
  }
  if (cfg_.event_limit != 0 && total_events >= cfg_.event_limit) {
    done_ = true;
    limit_hit_ = true;
    return;
  }
  if (min_next > cfg_.horizon.ns()) {
    done_ = true;
    horizon_hit_ = true;
    return;
  }
  // Skip-ahead: the window opens at the global minimum next event, so idle
  // stretches cost one barrier round, not one round per lookahead quantum.
  const std::int64_t la = part_.lookahead.ns();
  window_end_ns_ = la >= std::numeric_limits<std::int64_t>::max() - min_next
                       ? std::numeric_limits<std::int64_t>::max()
                       : min_next + la;
}

void ShardedRunner::run() {
  const unsigned n = part_.n_shards;
  if (n <= 1) {
    // Degenerate case: a plain serial run on the master scheduler.
    sim::Scheduler& sched = shards_.master().scheduler();
    if (cfg_.event_limit != 0) sched.set_event_limit(cfg_.event_limit);
    if (cfg_.horizon < sim::TimePoint::max()) {
      sched.run_until(cfg_.horizon);
    } else {
      sched.run();
    }
    return;
  }

  bind();
  std::barrier post_inject{static_cast<std::ptrdiff_t>(n), [this]() noexcept { coordinate(); }};
  std::barrier<> post_run{static_cast<std::ptrdiff_t>(n)};
  std::vector<std::exception_ptr> errors(n);

  auto worker = [&](unsigned me) {
    audit::set_context(cfg_.audit_context);  // thread-local; empty is fine
    sim::Scheduler& sched = shards_.shard(me).scheduler();
    if (cfg_.event_limit != 0) sched.set_event_limit(cfg_.event_limit);
    // After an exception the shard stops executing but keeps arriving at the
    // barriers, so its peers reach the termination decision instead of
    // deadlocking; coordinate() sees failed_ and winds the run down.
    bool dead = false;
    auto guard = [&](auto&& fn) {
      if (dead) return;
      try {
        fn();
      } catch (...) {
        errors[me] = std::current_exception();
        dead = true;
        failed_.store(true, std::memory_order_relaxed);
      }
    };
    for (;;) {
      guard([&] { inject_inbound(me); });
      post_inject.arrive_and_wait();
      if (done_) break;
      guard([&] { sched.run_window(sim::TimePoint::from_ns(window_end_ns_)); });
      post_run.arrive_and_wait();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(n);
  for (unsigned i = 0; i < n; ++i) threads.emplace_back(worker, i);
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  // Fold every shard's ledger into the master so the caller's
  // check_drained() / violation_count() see the whole run (stub: no-op).
  for (unsigned i = 1; i < n; ++i) {
    shards_.master().auditor().merge_from(shards_.shard(i).auditor());
  }
}

}  // namespace amrt::net
