#include "net/queue.hpp"

#include <algorithm>

namespace amrt::net {

void EgressQueue::enqueue(Packet&& pkt) {
  ++stats_.enqueued;
  if (pkt.is_control()) {
    // Control packets are tiny and precious: strict priority, never dropped.
    push_control(std::move(pkt));
    return;
  }
  const auto bytes = pkt.wire_bytes;
  if (data_enqueue(std::move(pkt))) {
    stats_.data_bytes_in += bytes;
    stats_.max_data_pkts = std::max(stats_.max_data_pkts, data_size());
  }
}

std::optional<Packet> EgressQueue::dequeue() {
  if (!control_.empty()) {
    ++stats_.dequeued;
    return control_.pop_front();
  }
  auto pkt = data_dequeue();
  if (pkt) ++stats_.dequeued;
  return pkt;
}

bool DropTailQueue::data_enqueue(Packet&& pkt) {
  if (fifo_.size() >= capacity_) {
    ++stats_.dropped;
    return false;
  }
  fifo_.push_back(std::move(pkt));
  return true;
}

std::optional<Packet> DropTailQueue::data_dequeue() {
  if (fifo_.empty()) return std::nullopt;
  return fifo_.pop_front();
}

bool TrimmingQueue::data_enqueue(Packet&& pkt) {
  if (fifo_.size() >= threshold_) {
    // NDP: cut the payload, keep the header. The header rides the control
    // band so the receiver learns of the loss one RTT faster than a timeout.
    pkt.trimmed = true;
    pkt.payload_bytes = 0;
    pkt.wire_bytes = kCtrlBytes;
    ++stats_.trimmed;
    push_control(std::move(pkt));
    return false;  // not accepted into the data band (counted as trim, not drop)
  }
  fifo_.push_back(std::move(pkt));
  return true;
}

std::optional<Packet> TrimmingQueue::data_dequeue() {
  if (fifo_.empty()) return std::nullopt;
  return fifo_.pop_front();
}

bool SelectiveDropQueue::data_enqueue(Packet&& pkt) {
  if (fifo_.size() >= capacity_) {
    if (pkt.unscheduled) {
      ++stats_.dropped;
      return false;
    }
    // Scheduled traffic evicts the youngest blind packet, if any.
    for (std::size_t i = fifo_.size(); i-- > 0;) {
      if (fifo_[i].unscheduled) {
        fifo_.erase(i);
        ++stats_.dropped;
        fifo_.push_back(std::move(pkt));
        return true;
      }
    }
    ++stats_.dropped;  // queue full of scheduled packets: tail drop
    return false;
  }
  fifo_.push_back(std::move(pkt));
  return true;
}

std::optional<Packet> SelectiveDropQueue::data_dequeue() {
  if (fifo_.empty()) return std::nullopt;
  return fifo_.pop_front();
}

StrictPriorityQueue::StrictPriorityQueue(std::size_t bands, std::size_t capacity_pkts)
    : bands_(bands == 0 ? 1 : bands), capacity_{capacity_pkts} {}

bool StrictPriorityQueue::data_enqueue(Packet&& pkt) {
  if (size_ >= capacity_) {
    ++stats_.dropped;
    return false;
  }
  const std::size_t band = std::min<std::size_t>(pkt.priority, bands_.size() - 1);
  bands_[band].push_back(std::move(pkt));
  ++size_;
  return true;
}

std::optional<Packet> StrictPriorityQueue::data_dequeue() {
  for (auto& band : bands_) {
    if (!band.empty()) {
      --size_;
      return band.pop_front();
    }
  }
  return std::nullopt;
}

}  // namespace amrt::net
