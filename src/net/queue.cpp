#include "net/queue.hpp"

namespace amrt::net {

// The eviction scan is the one queue operation that is O(depth); it only
// runs when the band is already full, so it stays out of the header.
bool SelectiveDropQueue::data_enqueue(Packet&& pkt) {
  if (fifo_.size() >= capacity_) {
    if (pkt.unscheduled) {
      return drop_data(std::move(pkt), audit::DropReason::kUnscheduledSacrifice);
    }
    // Scheduled traffic evicts the youngest blind packet, if any.
    for (std::size_t i = fifo_.size(); i-- > 0;) {
      if (fifo_[i].unscheduled) {
        drop_admitted(std::move(fifo_[i]), audit::DropReason::kEvictedUnscheduled);
        fifo_.erase(i);
        fifo_.push_back(std::move(pkt));
        return true;
      }
    }
    // Queue full of scheduled packets: tail drop.
    return drop_data(std::move(pkt), audit::DropReason::kDataCapacity);
  }
  fifo_.push_back(std::move(pkt));
  return true;
}

StrictPriorityQueue::StrictPriorityQueue(std::size_t bands, std::size_t capacity_pkts)
    : EgressQueue{QueueKind::kStrictPriority},
      bands_(bands == 0 ? 1 : bands),
      capacity_{capacity_pkts} {}

}  // namespace amrt::net
