#include "net/queue.hpp"

namespace amrt::net {

// The eviction scan is the one queue operation that is O(depth); it only
// runs when the band is already full, so it stays out of the header.
bool SelectiveDropQueue::data_enqueue(Packet&& pkt) {
  if (fifo_.size() >= capacity_) {
    if (pkt.unscheduled) {
      ++stats_.dropped;
      return false;
    }
    // Scheduled traffic evicts the youngest blind packet, if any.
    for (std::size_t i = fifo_.size(); i-- > 0;) {
      if (fifo_[i].unscheduled) {
        fifo_.erase(i);
        ++stats_.dropped;
        fifo_.push_back(std::move(pkt));
        return true;
      }
    }
    ++stats_.dropped;  // queue full of scheduled packets: tail drop
    return false;
  }
  fifo_.push_back(std::move(pkt));
  return true;
}

StrictPriorityQueue::StrictPriorityQueue(std::size_t bands, std::size_t capacity_pkts)
    : EgressQueue{QueueKind::kStrictPriority},
      bands_(bands == 0 ? 1 : bands),
      capacity_{capacity_pkts} {}

}  // namespace amrt::net
