// The pooled network core.
//
// `Network` owns every simulation object of the data plane in four
// contiguous pools:
//
//   hosts_     std::vector<Host>        — end hosts, by value
//   switches_  std::vector<Switch>      — switches, by value
//   ports_     std::vector<EgressPort>  — every egress port (host NICs and
//                                         switch ports alike), by value
//   queues_    queue arena              — one EgressQueue per port slot;
//                                         heap cells (disciplines differ in
//                                         size) owned by the arena, never by
//                                         the port
//
// Addressing is index-based throughout: a NodeId is a dense index into the
// directory (`dir_`), which maps it to a {kind, pool slot} pair, so packet
// delivery is two indexed loads and a direct (devirtualized) call — no hash
// map, no `at()` bounds checks, no pointer-chasing through unique_ptr cells.
// HostId/SwitchId/PortId (net/node.hpp) are plain pool indices; routing
// tables store global PortIds and AMRT's markers ride inside the pooled
// ports themselves. Names are gone from the object model: `label(NodeId)`
// derives a debug label ("h3", "sw1") on demand.
//
// Invalidation rules (the price of contiguity):
//   * Handles (HostId/SwitchId/PortId/NodeId) are never invalidated.
//   * References and pointers obtained from host()/switch_at()/port_at()
//     are invalidated by any add_host/add_switch/add_switch_port/
//     attach_host call that grows the same pool. Builders therefore carry
//     handles and resolve references only after wiring is complete.
//   * The pools must be frozen before traffic flows: in-flight packets and
//     port wakeups capture port addresses, so growing a pool mid-run is
//     undefined. Build first, then run.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/host.hpp"
#include "net/queue.hpp"
#include "net/switch.hpp"
#include "sim/simulation.hpp"

namespace amrt::net {

class Network {
 public:
  explicit Network(sim::Simulation& sim) : sim_{sim}, sched_{sim.scheduler()} {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Creates a host whose NIC transmits at `rate` with `delay` to its switch.
  HostId add_host(sim::Bandwidth rate, sim::Duration delay,
                  std::unique_ptr<EgressQueue> nic_queue);
  SwitchId add_switch();

  // Adds an egress port on `from` toward `to` (one direction of a cable).
  // Optionally installs a dequeue marker (AMRT's anti-ECN marker). Returns
  // the new port's global pool slot — exactly what routing tables store.
  PortId add_switch_port(SwitchId from, NodeId to, sim::Bandwidth rate, sim::Duration delay,
                         std::unique_ptr<EgressQueue> queue,
                         std::unique_ptr<DequeueMarker> marker = nullptr);

  // Connects a host's NIC to a switch and the switch back to the host.
  // Returns the switch-side downlink's global port slot.
  PortId attach_host(HostId host, SwitchId sw, std::unique_ptr<EgressQueue> down_queue,
                     std::unique_ptr<DequeueMarker> down_marker = nullptr);

  // --- pool access (O(1), unchecked on the hot path) ----------------------
  [[nodiscard]] Host& host(HostId h) { return hosts_[h.slot]; }
  [[nodiscard]] const Host& host(HostId h) const { return hosts_[h.slot]; }
  [[nodiscard]] Host& host(std::size_t i) { return hosts_[i]; }
  [[nodiscard]] Switch& switch_at(SwitchId s) { return switches_[s.slot]; }
  [[nodiscard]] const Switch& switch_at(SwitchId s) const { return switches_[s.slot]; }
  [[nodiscard]] EgressPort& port_at(PortId p) { return ports_[static_cast<std::size_t>(p)]; }
  [[nodiscard]] const EgressPort& port_at(PortId p) const {
    return ports_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] std::vector<Host>& hosts() { return hosts_; }
  [[nodiscard]] const std::vector<Host>& hosts() const { return hosts_; }
  [[nodiscard]] std::vector<Switch>& switches() { return switches_; }
  [[nodiscard]] const std::vector<Switch>& switches() const { return switches_; }
  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }
  [[nodiscard]] std::size_t switch_count() const { return switches_.size(); }
  [[nodiscard]] std::size_t port_count() const { return ports_.size(); }

  [[nodiscard]] NodeId id_of(HostId h) const { return hosts_[h.slot].id(); }
  [[nodiscard]] NodeId id_of(SwitchId s) const { return switches_[s.slot].id(); }

  // Reserves pool capacity up front (builders that know their shape call
  // this so wiring never reallocates).
  void reserve(std::size_t n_hosts, std::size_t n_switches, std::size_t n_ports);

  // Packet delivery off the wire: directory lookup, then a direct call into
  // the final Host/Switch handler (no virtual dispatch).
  void deliver(NodeId to, Packet&& pkt, int ingress_port) {
    const NodeRef ref = dir_[to.value];
    if (ref.kind == NodeKind::kHost) {
      hosts_[ref.slot].handle_packet(std::move(pkt), ingress_port);
    } else {
      switches_[ref.slot].handle_packet(std::move(pkt), ingress_port);
    }
  }

  // --- fault control (src/fault's FaultInjector drives these) -------------
  // Takes a link down/up: updates the port (down flushes its queue as
  // faulted drops), and bumps the link-state epoch so every routing table
  // recomputes its ECMP alive view. Idempotent per state.
  void set_link_up(PortId p, bool up);
  // Degrades (scale < 1) or restores (scale = 1) a port's line rate.
  void set_port_rate_scale(PortId p, double scale) { port_at(p).set_rate_scale(scale); }
  // Arms probabilistic blackholing at a port (covers control packets too).
  void set_port_drop_prob(PortId p, double prob, std::uint64_t seed) {
    port_at(p).set_drop_prob(prob, seed);
  }
  [[nodiscard]] const LinkState& link_state() const { return link_state_; }
  // Sum of every port's fault-consumed packets (flushed + refused + blackholed).
  [[nodiscard]] std::uint64_t packets_faulted() const;

  // Debug label for diagnostics ("h3" for host slot 3, "sw1" for switch
  // slot 1). Derived on demand; the pools store no strings.
  [[nodiscard]] std::string label(NodeId id) const;

  [[nodiscard]] sim::Simulation& simulation() { return sim_; }
  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }

 private:
  struct NodeRef {
    NodeKind kind = NodeKind::kHost;
    std::uint32_t slot = 0;
  };

  [[nodiscard]] NodeId next_id() { return NodeId{next_id_++}; }
  // Installs `queue` in the arena and a port over it in the port pool.
  PortId new_port(EgressPort::Config cfg, std::unique_ptr<EgressQueue> queue);

  sim::Simulation& sim_;
  sim::Scheduler& sched_;
  std::vector<Host> hosts_;
  std::vector<Switch> switches_;
  std::vector<EgressPort> ports_;
  std::vector<std::unique_ptr<EgressQueue>> queues_;  // slot-parallel to ports_
  std::vector<NodeRef> dir_;                          // indexed by NodeId.value
  LinkState link_state_;
  std::uint32_t next_id_ = 0;
};

// --- inline hot paths (need the complete Network) ---------------------------

inline void Host::send(Packet&& pkt) {
#ifdef AMRT_AUDIT
  if (auto* a = sched_->auditor()) {
    pkt.audit_ce_expected = pkt.ce;
    a->on_inject(audit::info_of(pkt));
  }
#endif
  net_->port_at(nic_).enqueue(std::move(pkt));
}

inline EgressPort& Host::nic() { return net_->port_at(nic_); }
inline const EgressPort& Host::nic() const { return net_->port_at(nic_); }
inline sim::Bandwidth Host::link_rate() const { return nic().config().rate; }

inline EgressPort& Switch::port(int idx) { return net_->port_at(port_id(idx)); }
inline const EgressPort& Switch::port(int idx) const { return net_->port_at(port_id(idx)); }

inline void Switch::handle_packet(Packet&& pkt, int /*ingress_port*/) {
  const PortId out = routes_.select(pkt);
  net_->port_at(out).enqueue(std::move(pkt));
}

}  // namespace amrt::net
