// Output-queued switch.
//
// Forwarding is instantaneous (modern datacenter switching latency is
// negligible next to 100µs link propagation); all contention happens in the
// egress queues. The switch lives by value in Network's switch pool; its
// ports are slots in the network-wide port pool, so the routing table's
// answers (global PortIds) index that pool directly — a forward is a route
// lookup plus one indexed load, with no per-switch indirection. The hot
// accessors are defined inline in net/network.hpp once Network is complete.
#pragma once

#include <vector>

#include "net/node.hpp"
#include "net/port.hpp"
#include "net/routing.hpp"

namespace amrt::net {

class Network;

class Switch final : public Node {
 public:
  Switch(Network& net, NodeId id);

  // Registers a port-pool slot as this switch's next local port; returns
  // the local index. Network's wiring helpers call this.
  int adopt_port(PortId port);

  [[nodiscard]] inline EgressPort& port(int idx);
  [[nodiscard]] inline const EgressPort& port(int idx) const;
  [[nodiscard]] int port_count() const { return static_cast<int>(port_slots_.size()); }
  // The global port-pool slot behind local index `idx`.
  [[nodiscard]] PortId port_id(int idx) const { return port_slots_.at(static_cast<std::size_t>(idx)); }

  [[nodiscard]] RoutingTable& routes() { return routes_; }
  [[nodiscard]] const RoutingTable& routes() const { return routes_; }

  inline void handle_packet(Packet&& pkt, int ingress_port) override;

 private:
  Network* net_;
  std::vector<PortId> port_slots_;
  RoutingTable routes_;
};

}  // namespace amrt::net
