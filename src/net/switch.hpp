// Output-queued switch.
//
// Forwarding is instantaneous (modern datacenter switching latency is
// negligible next to 100µs link propagation); all contention happens in the
// egress queues.
#pragma once

#include <memory>
#include <vector>

#include "net/node.hpp"
#include "net/port.hpp"
#include "net/routing.hpp"
#include "sim/scheduler.hpp"

namespace amrt::net {

class Switch final : public Node {
 public:
  Switch(sim::Scheduler& sched, NodeId id, std::string name);

  // Adds an egress port; returns its index (also used as the peer's view of
  // our ingress for symmetric cabling, though ingress is uncontended here).
  int add_port(EgressPort::Config cfg, std::unique_ptr<EgressQueue> queue);

  [[nodiscard]] EgressPort& port(int idx) { return *ports_.at(idx); }
  [[nodiscard]] const EgressPort& port(int idx) const { return *ports_.at(idx); }
  [[nodiscard]] int port_count() const { return static_cast<int>(ports_.size()); }

  [[nodiscard]] RoutingTable& routes() { return routes_; }
  [[nodiscard]] const RoutingTable& routes() const { return routes_; }

  void handle_packet(Packet&& pkt, int ingress_port) override;

 private:
  sim::Scheduler& sched_;
  std::vector<std::unique_ptr<EgressPort>> ports_;
  RoutingTable routes_;
};

}  // namespace amrt::net
