// An egress port: queue + serializer + propagation delay.
//
// This is the simulator's congestion point. Packets are enqueued by the
// owning node; the port transmits them one at a time at its line rate and
// delivers each to the peer node after the link's propagation delay
// (store-and-forward). Dequeue markers run at transmission start, which is
// where AMRT's inter-dequeue-gap measurement lives.
//
// Ports live by value in Network's contiguous port pool and address their
// queue (non-owning; the queue arena owns it) and their peer (a NodeId
// resolved through the Network directory) as pool slots. The standalone
// `connect(Node&)` path remains for unit tests that drive a port against a
// bare scheduler without a Network.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/marker.hpp"
#include "net/node.hpp"
#include "net/queue.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"

namespace amrt::net {

class Network;
class ShardMailbox;

class EgressPort {
 public:
  struct Config {
    sim::Bandwidth rate;
    sim::Duration delay;  // propagation delay to the peer
    // Uniform random extra delay added per transmission (host NICs only;
    // models OS/NIC timing noise). Without it a deterministic simulator
    // phase-locks equal-rate senders and drop-tail races become
    // winner-takes-all — the same reason NS2 randomizes packet processing.
    sim::Duration tx_jitter = sim::Duration::zero();
    std::uint64_t jitter_seed = 0;
  };

  // `queue` is non-owning: Network's queue arena (or, in standalone tests,
  // the caller) keeps it alive for the port's lifetime.
  EgressPort(sim::Scheduler& sched, Config cfg, EgressQueue& queue);

  // Wires the far end to a standalone node (unit tests). Must be called
  // before the first enqueue.
  void connect(Node& peer, int peer_ingress_port);
  // Wires the far end to a pool slot: delivery resolves `peer` through the
  // Network directory with no virtual dispatch. Network builders call this.
  void connect(Network& net, NodeId peer, int peer_ingress_port);

  void add_marker(std::unique_ptr<DequeueMarker> marker);

  // Hands a packet to this port; it is queued (or dropped/trimmed) and
  // transmitted in turn.
  void enqueue(Packet&& pkt);

  // --- fault injection (src/fault drives these through Network) -----------
  // Link down: the queue is flushed (faulted drops) and every subsequent
  // enqueue is eaten until the link comes back. In-flight deliveries — bits
  // already on the wire — still complete. Idempotent.
  void set_link_up(bool up);
  // Degrades (scale < 1) or restores (scale = 1) the serialization rate.
  void set_rate_scale(double scale);
  // Probabilistic blackholing at enqueue, covering control packets too (the
  // "lossy control plane" lever). `seed` makes the per-port stream
  // deterministic; prob <= 0 disarms it.
  void set_drop_prob(double prob, std::uint64_t seed);
  [[nodiscard]] bool link_up() const { return link_up_; }
  [[nodiscard]] double rate_scale() const { return rate_scale_; }
  [[nodiscard]] double drop_prob() const { return drop_prob_; }
  // Packets this port's faults consumed (flushed, refused-down, blackholed).
  [[nodiscard]] std::uint64_t packets_faulted() const { return packets_faulted_; }

  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] const EgressQueue& queue() const { return *queue_; }
  // Mutable queue access for shard binding (re-pointing the audit hook at
  // the owning shard's auditor); the data path never needs this.
  [[nodiscard]] EgressQueue& queue_mut() { return *queue_; }
  [[nodiscard]] sim::Scheduler& scheduler() { return *sched_; }
  [[nodiscard]] bool busy() const { return sched_->now() < busy_until_; }
  [[nodiscard]] NodeId peer() const { return peer_id_; }
  [[nodiscard]] int peer_ingress_port() const { return peer_port_; }

  // --- sharded execution (net/partition.hpp drives these) ------------------
  // Re-points event scheduling at the owning shard's scheduler. Must run
  // before traffic flows; the serial path never calls it.
  void rebind_scheduler(sim::Scheduler& sched) { sched_ = &sched; }
  // Routes deliveries into a cross-shard mailbox instead of scheduling the
  // peer's handler on this shard. nullptr (the default) restores direct
  // delivery — the serial fast path pays one predicted-not-taken branch.
  void set_cross_shard_outbox(ShardMailbox* outbox) { outbox_ = outbox; }

  // --- telemetry (read by monitors) ---
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t packets_sent() const { return packets_sent_; }
  [[nodiscard]] sim::Duration busy_time() const { return busy_time_; }
  [[nodiscard]] sim::TimePoint last_tx_end() const { return last_tx_end_; }

 private:
  void start_next_transmission();
  void deliver_to_peer(Packet&& pkt);
  // Serialization time at this port's (fixed) rate, memoized by packet size.
  // Traffic is almost entirely two sizes — full-MTU data and small control
  // frames — so a two-entry MRU cache turns the 128-bit division in
  // Bandwidth::tx_time into a compare on the per-packet path.
  [[nodiscard]] sim::Duration tx_time_for(std::int64_t bytes) {
    if (bytes == tx_memo_bytes_[0]) return tx_memo_[0];
    if (bytes == tx_memo_bytes_[1]) {
      std::swap(tx_memo_bytes_[0], tx_memo_bytes_[1]);
      std::swap(tx_memo_[0], tx_memo_[1]);
      return tx_memo_[0];
    }
    const sim::Duration t = effective_rate_.tx_time(bytes);
    tx_memo_bytes_[1] = tx_memo_bytes_[0];
    tx_memo_[1] = tx_memo_[0];
    tx_memo_bytes_[0] = bytes;
    tx_memo_[0] = t;
    return t;
  }
  // Arms (at most one) continuation event at `busy_until_`. The port keeps
  // no standing tx-end event: an idle port parks with no event scheduled,
  // and the serializer is woken only when a packet is actually waiting.
  void ensure_wakeup();
  void on_wakeup();
  // A fault consumed this packet before admission (link down / blackhole).
  void eat_faulted(Packet&& pkt, audit::DropReason reason);

  sim::Scheduler* sched_;
  Config cfg_;
  EgressQueue* queue_ = nullptr;
  ShardMailbox* outbox_ = nullptr;  // non-null only on cross-shard ports
  std::vector<std::unique_ptr<DequeueMarker>> markers_;
  // Pooled wiring resolves peer_id_ through net_; standalone wiring
  // virtual-dispatches through peer_node_. connect() sets exactly one.
  Network* net_ = nullptr;
  Node* peer_node_ = nullptr;
  NodeId peer_id_{};
  int peer_port_ = -1;
  sim::Rng jitter_rng_;
  // Fault state (src/fault). effective_rate_ = cfg_.rate * rate_scale_, kept
  // materialized so the healthy fast path pays nothing.
  sim::Bandwidth effective_rate_;
  double rate_scale_ = 1.0;
  double drop_prob_ = 0.0;
  bool link_up_ = true;
  sim::Rng fault_rng_{0};
  std::uint64_t packets_faulted_ = 0;
  std::int64_t tx_memo_bytes_[2] = {-1, -1};
  sim::Duration tx_memo_[2] = {sim::Duration::zero(), sim::Duration::zero()};
  sim::TimePoint busy_until_ = sim::TimePoint::zero();  // end of in-flight transmission
  bool wakeup_pending_ = false;
  sim::TimePoint last_tx_end_ = sim::TimePoint::zero();

  std::uint64_t bytes_sent_ = 0;
  std::uint64_t packets_sent_ = 0;
  sim::Duration busy_time_ = sim::Duration::zero();
};

}  // namespace amrt::net
