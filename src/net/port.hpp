// An egress port: queue + serializer + propagation delay.
//
// This is the simulator's congestion point. Packets are enqueued by the
// owning node; the port transmits them one at a time at its line rate and
// delivers each to the peer node after the link's propagation delay
// (store-and-forward). Dequeue markers run at transmission start, which is
// where AMRT's inter-dequeue-gap measurement lives.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/marker.hpp"
#include "net/node.hpp"
#include "net/queue.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"

namespace amrt::net {

class EgressPort {
 public:
  struct Config {
    sim::Bandwidth rate;
    sim::Duration delay;  // propagation delay to the peer
    std::string name;     // for diagnostics, e.g. "leaf0->spine2"
    // Uniform random extra delay added per transmission (host NICs only;
    // models OS/NIC timing noise). Without it a deterministic simulator
    // phase-locks equal-rate senders and drop-tail races become
    // winner-takes-all — the same reason NS2 randomizes packet processing.
    sim::Duration tx_jitter = sim::Duration::zero();
    std::uint64_t jitter_seed = 0;
  };

  EgressPort(sim::Scheduler& sched, Config cfg, std::unique_ptr<EgressQueue> queue);

  // Wires the far end. Must be called before the first enqueue.
  void connect(Node& peer, int peer_ingress_port);

  void add_marker(std::unique_ptr<DequeueMarker> marker);

  // Hands a packet to this port; it is queued (or dropped/trimmed) and
  // transmitted in turn.
  void enqueue(Packet&& pkt);

  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] const EgressQueue& queue() const { return *queue_; }
  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] bool busy() const { return sched_.now() < busy_until_; }

  // --- telemetry (read by monitors) ---
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t packets_sent() const { return packets_sent_; }
  [[nodiscard]] sim::Duration busy_time() const { return busy_time_; }
  [[nodiscard]] sim::TimePoint last_tx_end() const { return last_tx_end_; }

 private:
  void start_next_transmission();
  // Serialization time at this port's (fixed) rate, memoized by packet size.
  // Traffic is almost entirely two sizes — full-MTU data and small control
  // frames — so a two-entry MRU cache turns the 128-bit division in
  // Bandwidth::tx_time into a compare on the per-packet path.
  [[nodiscard]] sim::Duration tx_time_for(std::int64_t bytes) {
    if (bytes == tx_memo_bytes_[0]) return tx_memo_[0];
    if (bytes == tx_memo_bytes_[1]) {
      std::swap(tx_memo_bytes_[0], tx_memo_bytes_[1]);
      std::swap(tx_memo_[0], tx_memo_[1]);
      return tx_memo_[0];
    }
    const sim::Duration t = cfg_.rate.tx_time(bytes);
    tx_memo_bytes_[1] = tx_memo_bytes_[0];
    tx_memo_[1] = tx_memo_[0];
    tx_memo_bytes_[0] = bytes;
    tx_memo_[0] = t;
    return t;
  }
  // Arms (at most one) continuation event at `busy_until_`. The port keeps
  // no standing tx-end event: an idle port parks with no event scheduled,
  // and the serializer is woken only when a packet is actually waiting.
  void ensure_wakeup();
  void on_wakeup();

  sim::Scheduler& sched_;
  Config cfg_;
  std::unique_ptr<EgressQueue> queue_;
  std::vector<std::unique_ptr<DequeueMarker>> markers_;
  Node* peer_ = nullptr;
  int peer_port_ = -1;
  sim::Rng jitter_rng_;
  std::int64_t tx_memo_bytes_[2] = {-1, -1};
  sim::Duration tx_memo_[2] = {sim::Duration::zero(), sim::Duration::zero()};
  sim::TimePoint busy_until_ = sim::TimePoint::zero();  // end of in-flight transmission
  bool wakeup_pending_ = false;
  sim::TimePoint last_tx_end_ = sim::TimePoint::zero();

  std::uint64_t bytes_sent_ = 0;
  std::uint64_t packets_sent_ = 0;
  sim::Duration busy_time_ = sim::Duration::zero();
};

}  // namespace amrt::net
