// Egress queue disciplines.
//
// Every egress port owns one EgressQueue. The base class implements the
// strict-priority *control band* (grants, tokens, pulls, RTS, and NDP's
// trimmed headers) that all receiver-driven designs rely on: credit packets
// must not starve behind data or the grant clock collapses. Concrete
// subclasses define only the data band:
//
//   DropTailQueue       — plain FIFO with a packet-count cap (pHost/Homa/AMRT)
//   TrimmingQueue       — NDP: beyond a threshold, payloads are cut and the
//                         64B header is promoted into the control band
//   StrictPriorityQueue — Homa: N FIFO bands selected by Packet::priority
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "net/packet.hpp"
#include "net/ring_deque.hpp"

namespace amrt::net {

struct QueueStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dequeued = 0;
  std::uint64_t dropped = 0;
  std::uint64_t trimmed = 0;
  std::size_t max_data_pkts = 0;     // high-water mark of the data band
  std::uint64_t data_bytes_in = 0;   // accepted data-band bytes
};

class EgressQueue {
 public:
  virtual ~EgressQueue() = default;

  // Consumes the packet: accepted into a band, trimmed, or dropped.
  void enqueue(Packet&& pkt);
  // Control band first, then the data band.
  [[nodiscard]] std::optional<Packet> dequeue();

  [[nodiscard]] std::size_t control_pkts() const { return control_.size(); }
  [[nodiscard]] std::size_t data_pkts() const { return data_size(); }
  [[nodiscard]] std::size_t total_pkts() const { return control_.size() + data_size(); }
  [[nodiscard]] bool empty() const { return total_pkts() == 0; }
  [[nodiscard]] const QueueStats& stats() const { return stats_; }

 protected:
  // Returns false if the data band dropped the packet.
  virtual bool data_enqueue(Packet&& pkt) = 0;
  [[nodiscard]] virtual std::optional<Packet> data_dequeue() = 0;
  [[nodiscard]] virtual std::size_t data_size() const = 0;

  // Hook for TrimmingQueue to divert a trimmed header into the control band.
  void push_control(Packet&& pkt) { control_.push_back(std::move(pkt)); }
  QueueStats stats_;

 private:
  RingDeque<Packet> control_;
};

class DropTailQueue final : public EgressQueue {
 public:
  explicit DropTailQueue(std::size_t capacity_pkts) : capacity_{capacity_pkts} {}
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 protected:
  bool data_enqueue(Packet&& pkt) override;
  std::optional<Packet> data_dequeue() override;
  std::size_t data_size() const override { return fifo_.size(); }

 private:
  std::size_t capacity_;
  RingDeque<Packet> fifo_;
};

class TrimmingQueue final : public EgressQueue {
 public:
  // `threshold_pkts`: data packets held before trimming kicks in (NDP uses 8).
  explicit TrimmingQueue(std::size_t threshold_pkts) : threshold_{threshold_pkts} {}
  [[nodiscard]] std::size_t threshold() const { return threshold_; }

 protected:
  bool data_enqueue(Packet&& pkt) override;
  std::optional<Packet> data_dequeue() override;
  std::size_t data_size() const override { return fifo_.size(); }

 private:
  std::size_t threshold_;
  RingDeque<Packet> fifo_;
};

// Aeolus-style selective dropping (Hu et al., APNet'18 — cited as [11]):
// when the data band is full, blind *unscheduled* packets are sacrificed
// first so that granted (scheduled) traffic stays lossless. An arriving
// scheduled packet evicts the youngest queued unscheduled packet; an
// arriving unscheduled packet is dropped outright. Combines with AMRT's
// small-threshold discipline (Section 6) to protect the grant clock.
class SelectiveDropQueue final : public EgressQueue {
 public:
  explicit SelectiveDropQueue(std::size_t capacity_pkts) : capacity_{capacity_pkts} {}
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 protected:
  bool data_enqueue(Packet&& pkt) override;
  std::optional<Packet> data_dequeue() override;
  std::size_t data_size() const override { return fifo_.size(); }

 private:
  std::size_t capacity_;
  RingDeque<Packet> fifo_;
};

class StrictPriorityQueue final : public EgressQueue {
 public:
  // `bands`: number of priority levels; `capacity_pkts`: shared data cap.
  StrictPriorityQueue(std::size_t bands, std::size_t capacity_pkts);
  [[nodiscard]] std::size_t bands() const { return bands_.size(); }

 protected:
  bool data_enqueue(Packet&& pkt) override;
  std::optional<Packet> data_dequeue() override;
  std::size_t data_size() const override { return size_; }

 private:
  std::vector<RingDeque<Packet>> bands_;
  std::size_t capacity_;
  std::size_t size_ = 0;
};

// Factory signature used by topology builders: experiments pick a discipline
// per protocol. `host_nic` distinguishes end-host NICs (which need room for
// the unscheduled first-BDP burst) from switch fabric ports.
using QueueFactory = std::function<std::unique_ptr<EgressQueue>(bool host_nic)>;

}  // namespace amrt::net
