// Egress queue disciplines.
//
// Every egress port owns one EgressQueue. The base class implements the
// strict-priority *control band* (grants, tokens, pulls, RTS, and NDP's
// trimmed headers) that all receiver-driven designs rely on: credit packets
// must not starve behind data or the grant clock collapses. Concrete
// subclasses define only the data band:
//
//   DropTailQueue       — plain FIFO with a packet-count cap (pHost/Homa/AMRT)
//   TrimmingQueue       — NDP: beyond a threshold, payloads are cut and the
//                         64B header is promoted into the control band
//   StrictPriorityQueue — Homa: N FIFO bands selected by Packet::priority
//
// Dispatch: the per-packet enqueue/dequeue path is devirtualized. Each
// built-in discipline registers a QueueKind tag and the base class switches
// on it to call the (final, inlinable) subclass methods directly; the
// virtual data_* interface remains as the extension fallback (kCustom), so
// out-of-tree disciplines keep working at the old cost.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "audit/hooks.hpp"
#include "net/packet.hpp"
#include "net/ring_deque.hpp"

namespace amrt::net {

struct QueueStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dequeued = 0;
  std::uint64_t dropped = 0;
  std::uint64_t trimmed = 0;
  std::size_t max_data_pkts = 0;     // high-water mark of the data band
  std::uint64_t data_bytes_in = 0;   // accepted data-band bytes
};

// Tag for the devirtualized fast path. kCustom = dispatch virtually.
enum class QueueKind : std::uint8_t {
  kDropTail,
  kTrimming,
  kSelectiveDrop,
  kStrictPriority,
  kCustom,
};

class EgressQueue {
 public:
  virtual ~EgressQueue() = default;

  // Consumes the packet: accepted into a band, trimmed, or dropped.
  inline void enqueue(Packet&& pkt);
  // Control band first, then the data band.
  [[nodiscard]] inline std::optional<Packet> dequeue();

  [[nodiscard]] std::size_t control_pkts() const { return control_.size(); }
  [[nodiscard]] inline std::size_t data_pkts() const;
  [[nodiscard]] std::size_t total_pkts() const { return control_.size() + data_pkts(); }
  [[nodiscard]] bool empty() const { return total_pkts() == 0; }
  [[nodiscard]] QueueKind kind() const { return kind_; }
  [[nodiscard]] const QueueStats& stats() const { return stats_; }

  // Link failure (src/fault): every queued packet — control band included —
  // is discarded through the admitted-drop accounting, so the stats identity
  // and the audit shadow stay closed. Returns the number of packets flushed.
  inline std::size_t flush_faulted();

  // Attaches the run's invariant auditor under a dense shadow slot (Network
  // binds each arena queue with its port-pool slot; standalone tests pick
  // any small integer). A no-op in builds without AMRT_AUDIT.
  void audit_bind(audit::Auditor* a, std::uint32_t slot) {
#ifdef AMRT_AUDIT
    audit_ = a;
    audit_slot_ = slot;
#else
    (void)a;
    (void)slot;
#endif
  }

 protected:
  explicit EgressQueue(QueueKind kind = QueueKind::kCustom) : kind_{kind} {}

  // Returns false if the data band dropped the packet.
  virtual bool data_enqueue(Packet&& pkt) = 0;
  [[nodiscard]] virtual std::optional<Packet> data_dequeue() = 0;
  [[nodiscard]] virtual std::size_t data_size() const = 0;

  // --- instrumented loss/trim choke points ---------------------------------
  // Every way a packet can leave a queue other than dequeue() goes through
  // exactly one of these three helpers, so the drop/trim statistics and the
  // audit build's byte accounting cannot drift apart per-discipline.

  // Refuses an arriving packet at the data band. Returns false so callers
  // can `return drop_data(...)` from data_enqueue.
  bool drop_data(Packet&& pkt, audit::DropReason reason) {
    ++stats_.dropped;
#ifdef AMRT_AUDIT
    if (audit_ != nullptr) audit_->on_drop(audit::info_of(pkt), reason);
#endif
    (void)pkt;
    (void)reason;
    return false;
  }

  // Evicts a packet that was already admitted into the data band (Aeolus
  // selective drop): the occupancy shadow must shrink too.
  void drop_admitted(Packet&& pkt, audit::DropReason reason) {
    ++stats_.dropped;
#ifdef AMRT_AUDIT
    if (audit_ != nullptr) {
      audit_->on_queue_unadmit(audit_slot_, pkt.wire_bytes);
      audit_->on_drop(audit::info_of(pkt), reason);
    }
#endif
    (void)pkt;
    (void)reason;
  }

  // NDP trim: cuts the payload and promotes the 64B header into the control
  // band. The byte shadow records the header at its post-trim size — the
  // 1500B payload leaves the accounting here, attributed as a trim.
  void trim_to_control(Packet&& pkt) {
    const std::uint32_t removed = pkt.payload_bytes;
    pkt.trimmed = true;
    pkt.payload_bytes = 0;
    pkt.wire_bytes = kCtrlBytes;
    ++stats_.trimmed;
#ifdef AMRT_AUDIT
    if (audit_ != nullptr) audit_->on_trim(audit::info_of(pkt), removed);
#endif
    (void)removed;
    push_control(std::move(pkt));
  }

  // Admission into the control band (direct control packets and trimmed
  // headers) — the control-band admit hook fires here.
  void push_control(Packet&& pkt) {
#ifdef AMRT_AUDIT
    const std::uint32_t wire = pkt.wire_bytes;
#endif
    control_.push_back(std::move(pkt));
#ifdef AMRT_AUDIT
    if (audit_ != nullptr) {
      audit_->on_queue_admit(audit_slot_, wire, total_pkts(), stats_.enqueued, stats_.dequeued,
                             stats_.dropped);
    }
#endif
  }
  QueueStats stats_;

 private:
  // Tag-dispatched (devirtualized) forms of the data_* hooks.
  inline bool dispatch_enqueue(Packet&& pkt);
  [[nodiscard]] inline std::optional<Packet> dispatch_dequeue();

  RingDeque<Packet> control_;
  QueueKind kind_;
#ifdef AMRT_AUDIT
  audit::Auditor* audit_ = nullptr;
  std::uint32_t audit_slot_ = 0;
#endif
};

class DropTailQueue final : public EgressQueue {
 public:
  explicit DropTailQueue(std::size_t capacity_pkts)
      : EgressQueue{QueueKind::kDropTail}, capacity_{capacity_pkts} {}
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 protected:
  // Bodies live in the header so the tag-dispatched fast path inlines them
  // at every call site (ports sit in a different TU).
  bool data_enqueue(Packet&& pkt) override {
    if (fifo_.size() >= capacity_) {
      return drop_data(std::move(pkt), audit::DropReason::kDataCapacity);
    }
    fifo_.push_back(std::move(pkt));
    return true;
  }
  std::optional<Packet> data_dequeue() override {
    if (fifo_.empty()) return std::nullopt;
    return fifo_.pop_front();
  }
  std::size_t data_size() const override { return fifo_.size(); }

 private:
  friend class EgressQueue;  // tag dispatch calls the hooks non-virtually
  std::size_t capacity_;
  RingDeque<Packet> fifo_;
};

class TrimmingQueue final : public EgressQueue {
 public:
  // `threshold_pkts`: data packets held before trimming kicks in (NDP uses 8).
  explicit TrimmingQueue(std::size_t threshold_pkts)
      : EgressQueue{QueueKind::kTrimming}, threshold_{threshold_pkts} {}
  [[nodiscard]] std::size_t threshold() const { return threshold_; }

 protected:
  bool data_enqueue(Packet&& pkt) override {
    if (fifo_.size() >= threshold_) {
      // NDP: cut the payload, keep the header. The header rides the control
      // band so the receiver learns of the loss one RTT faster than a timeout.
      trim_to_control(std::move(pkt));
      return false;  // not accepted into the data band (counted as trim, not drop)
    }
    fifo_.push_back(std::move(pkt));
    return true;
  }
  std::optional<Packet> data_dequeue() override {
    if (fifo_.empty()) return std::nullopt;
    return fifo_.pop_front();
  }
  std::size_t data_size() const override { return fifo_.size(); }

 private:
  friend class EgressQueue;
  std::size_t threshold_;
  RingDeque<Packet> fifo_;
};

// Aeolus-style selective dropping (Hu et al., APNet'18 — cited as [11]):
// when the data band is full, blind *unscheduled* packets are sacrificed
// first so that granted (scheduled) traffic stays lossless. An arriving
// scheduled packet evicts the youngest queued unscheduled packet; an
// arriving unscheduled packet is dropped outright. Combines with AMRT's
// small-threshold discipline (Section 6) to protect the grant clock.
class SelectiveDropQueue final : public EgressQueue {
 public:
  explicit SelectiveDropQueue(std::size_t capacity_pkts)
      : EgressQueue{QueueKind::kSelectiveDrop}, capacity_{capacity_pkts} {}
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 protected:
  bool data_enqueue(Packet&& pkt) override;  // cold path stays in queue.cpp
  std::optional<Packet> data_dequeue() override {
    if (fifo_.empty()) return std::nullopt;
    return fifo_.pop_front();
  }
  std::size_t data_size() const override { return fifo_.size(); }

 private:
  friend class EgressQueue;
  std::size_t capacity_;
  RingDeque<Packet> fifo_;
};

class StrictPriorityQueue final : public EgressQueue {
 public:
  // `bands`: number of priority levels; `capacity_pkts`: shared data cap.
  StrictPriorityQueue(std::size_t bands, std::size_t capacity_pkts);
  [[nodiscard]] std::size_t bands() const { return bands_.size(); }

 protected:
  bool data_enqueue(Packet&& pkt) override {
    if (size_ >= capacity_) {
      return drop_data(std::move(pkt), audit::DropReason::kDataCapacity);
    }
    const std::size_t band = std::min<std::size_t>(pkt.priority, bands_.size() - 1);
    bands_[band].push_back(std::move(pkt));
    ++size_;
    return true;
  }
  std::optional<Packet> data_dequeue() override {
    for (auto& band : bands_) {
      if (!band.empty()) {
        --size_;
        return band.pop_front();
      }
    }
    return std::nullopt;
  }
  std::size_t data_size() const override { return size_; }

 private:
  friend class EgressQueue;
  std::vector<RingDeque<Packet>> bands_;
  std::size_t capacity_;
  std::size_t size_ = 0;
};

// --- devirtualized dispatch -------------------------------------------------
// Defined after the concrete types so the switch can static_cast to them.
// All four built-ins are `final`, so the casts are exact and the hook bodies
// (in queue.cpp, same TU as the callers that matter) inline away.

inline bool EgressQueue::dispatch_enqueue(Packet&& pkt) {
  switch (kind_) {
    case QueueKind::kDropTail:
      return static_cast<DropTailQueue&>(*this).data_enqueue(std::move(pkt));
    case QueueKind::kTrimming:
      return static_cast<TrimmingQueue&>(*this).data_enqueue(std::move(pkt));
    case QueueKind::kSelectiveDrop:
      return static_cast<SelectiveDropQueue&>(*this).data_enqueue(std::move(pkt));
    case QueueKind::kStrictPriority:
      return static_cast<StrictPriorityQueue&>(*this).data_enqueue(std::move(pkt));
    case QueueKind::kCustom:
      break;
  }
  return data_enqueue(std::move(pkt));
}

inline std::optional<Packet> EgressQueue::dispatch_dequeue() {
  switch (kind_) {
    case QueueKind::kDropTail:
      return static_cast<DropTailQueue&>(*this).data_dequeue();
    case QueueKind::kTrimming:
      return static_cast<TrimmingQueue&>(*this).data_dequeue();
    case QueueKind::kSelectiveDrop:
      return static_cast<SelectiveDropQueue&>(*this).data_dequeue();
    case QueueKind::kStrictPriority:
      return static_cast<StrictPriorityQueue&>(*this).data_dequeue();
    case QueueKind::kCustom:
      break;
  }
  return data_dequeue();
}

inline std::size_t EgressQueue::data_pkts() const {
  switch (kind_) {
    case QueueKind::kDropTail:
      return static_cast<const DropTailQueue&>(*this).data_size();
    case QueueKind::kTrimming:
      return static_cast<const TrimmingQueue&>(*this).data_size();
    case QueueKind::kSelectiveDrop:
      return static_cast<const SelectiveDropQueue&>(*this).data_size();
    case QueueKind::kStrictPriority:
      return static_cast<const StrictPriorityQueue&>(*this).data_size();
    case QueueKind::kCustom:
      break;
  }
  return data_size();
}

inline void EgressQueue::enqueue(Packet&& pkt) {
  ++stats_.enqueued;
  if (pkt.is_control()) {
    // Control packets are tiny and precious: strict priority, never dropped.
    push_control(std::move(pkt));
    return;
  }
  const auto bytes = pkt.wire_bytes;
  if (dispatch_enqueue(std::move(pkt))) {
    stats_.data_bytes_in += bytes;
    const std::size_t depth = data_pkts();
    if (depth > stats_.max_data_pkts) stats_.max_data_pkts = depth;
#ifdef AMRT_AUDIT
    if (audit_ != nullptr) {
      audit_->on_queue_admit(audit_slot_, bytes, total_pkts(), stats_.enqueued, stats_.dequeued,
                             stats_.dropped);
    }
#endif
  }
}

inline std::optional<Packet> EgressQueue::dequeue() {
  if (!control_.empty()) {
    ++stats_.dequeued;
    std::optional<Packet> pkt{control_.pop_front()};
#ifdef AMRT_AUDIT
    if (audit_ != nullptr) {
      audit_->on_queue_dequeue(audit_slot_, pkt->wire_bytes, total_pkts(), stats_.enqueued,
                               stats_.dequeued, stats_.dropped);
    }
#endif
    return pkt;
  }
  auto pkt = dispatch_dequeue();
  if (pkt) {
    ++stats_.dequeued;
#ifdef AMRT_AUDIT
    if (audit_ != nullptr) {
      audit_->on_queue_dequeue(audit_slot_, pkt->wire_bytes, total_pkts(), stats_.enqueued,
                               stats_.dequeued, stats_.dropped);
    }
#endif
  }
  return pkt;
}

inline std::size_t EgressQueue::flush_faulted() {
  std::size_t flushed = 0;
  while (!control_.empty()) {
    drop_admitted(control_.pop_front(), audit::DropReason::kLinkDown);
    ++flushed;
  }
  while (auto pkt = dispatch_dequeue()) {
    drop_admitted(std::move(*pkt), audit::DropReason::kLinkDown);
    ++flushed;
  }
  return flushed;
}

// Factory signature used by topology builders: experiments pick a discipline
// per protocol. `host_nic` distinguishes end-host NICs (which need room for
// the unscheduled first-BDP burst) from switch fabric ports.
using QueueFactory = std::function<std::unique_ptr<EgressQueue>(bool host_nic)>;

}  // namespace amrt::net
