#include "net/topology.hpp"

#include <stdexcept>

namespace amrt::net {

Host& Network::add_host(const std::string& name, sim::Bandwidth rate, sim::Duration delay,
                        std::unique_ptr<EgressQueue> nic_queue) {
  EgressPort::Config cfg{rate, delay, name + ".nic"};
  // Host stacks carry timing noise of a fraction of a packet time; see the
  // Config::tx_jitter comment for why the simulation needs it too.
  cfg.tx_jitter = rate.tx_time(kMtuBytes) / 8;
  cfg.jitter_seed = 0x9e3779b97f4a7c15ULL ^ (static_cast<std::uint64_t>(next_id_) << 17);
  hosts_.push_back(std::make_unique<Host>(sched_, next_id(), name, std::move(cfg), std::move(nic_queue)));
  return *hosts_.back();
}

Switch& Network::add_switch(const std::string& name) {
  switches_.push_back(std::make_unique<Switch>(sched_, next_id(), name));
  return *switches_.back();
}

EgressPort& Network::add_switch_port(Switch& from, Node& to, sim::Bandwidth rate,
                                     sim::Duration delay, std::unique_ptr<EgressQueue> queue,
                                     std::unique_ptr<DequeueMarker> marker) {
  EgressPort::Config cfg{rate, delay, from.name() + "->" + to.name()};
  const int idx = from.add_port(std::move(cfg), std::move(queue));
  auto& port = from.port(idx);
  port.connect(to, 0);
  if (marker) port.add_marker(std::move(marker));
  return port;
}

int Network::attach_host(Host& host, Switch& sw, std::unique_ptr<EgressQueue> down_queue,
                         std::unique_ptr<DequeueMarker> down_marker) {
  const auto rate = host.nic().config().rate;
  const auto delay = host.nic().config().delay;
  host.nic().connect(sw, sw.port_count());
  EgressPort::Config cfg{rate, delay, sw.name() + "->" + host.name()};
  const int idx = sw.add_port(std::move(cfg), std::move(down_queue));
  auto& port = sw.port(idx);
  port.connect(host, 0);
  if (down_marker) port.add_marker(std::move(down_marker));
  return idx;
}

sim::Duration path_base_rtt(int hops, sim::Bandwidth rate, sim::Duration link_delay) {
  // Data direction: `hops` serializations of an MTU packet + propagation.
  // Control direction: `hops` serializations of a 64B grant + propagation.
  const auto data_way = rate.tx_time(kMtuBytes) * hops + link_delay * hops;
  const auto ctrl_way = rate.tx_time(kCtrlBytes) * hops + link_delay * hops;
  return data_way + ctrl_way;
}

LeafSpine build_leaf_spine(Network& net, const LeafSpineConfig& cfg) {
  if (!cfg.queue_factory) throw std::invalid_argument("LeafSpineConfig.queue_factory is required");
  LeafSpine out;

  auto make_marker = [&]() -> std::unique_ptr<DequeueMarker> {
    return cfg.marker_factory ? cfg.marker_factory() : nullptr;
  };

  for (int l = 0; l < cfg.leaves; ++l) {
    out.leaves.push_back(&net.add_switch("leaf" + std::to_string(l)));
  }
  for (int s = 0; s < cfg.spines; ++s) {
    out.spines.push_back(&net.add_switch("spine" + std::to_string(s)));
  }

  out.leaf_down.resize(cfg.leaves);
  out.leaf_up.resize(cfg.leaves);
  out.spine_down.resize(cfg.spines, std::vector<int>(cfg.leaves, -1));

  // Hosts under each leaf.
  for (int l = 0; l < cfg.leaves; ++l) {
    for (int h = 0; h < cfg.hosts_per_leaf; ++h) {
      auto& host = net.add_host("h" + std::to_string(l) + "_" + std::to_string(h), cfg.link_rate,
                                cfg.link_delay,
                                std::make_unique<DropTailQueue>(cfg.host_nic_queue_pkts));
      const int down = net.attach_host(host, *out.leaves[l], cfg.queue_factory(false), make_marker());
      out.hosts.push_back(&host);
      out.leaf_down[l].push_back(down);
      out.leaves[l]->routes().add_route(host.id(), down);
    }
  }

  // Leaf <-> spine fabric.
  for (int l = 0; l < cfg.leaves; ++l) {
    for (int s = 0; s < cfg.spines; ++s) {
      auto& up = net.add_switch_port(*out.leaves[l], *out.spines[s], cfg.link_rate, cfg.link_delay,
                                     cfg.queue_factory(false), make_marker());
      static_cast<void>(up);
      out.leaf_up[l].push_back(out.leaves[l]->port_count() - 1);
      auto& down = net.add_switch_port(*out.spines[s], *out.leaves[l], cfg.link_rate, cfg.link_delay,
                                       cfg.queue_factory(false), make_marker());
      static_cast<void>(down);
      out.spine_down[s][l] = out.spines[s]->port_count() - 1;
    }
  }

  // Routing: leaves send remote traffic up any spine (ECMP); spines know
  // which leaf owns each host.
  for (int l = 0; l < cfg.leaves; ++l) {
    for (int other = 0; other < cfg.leaves; ++other) {
      if (other == l) continue;
      for (int h = 0; h < cfg.hosts_per_leaf; ++h) {
        const NodeId dst = out.hosts[static_cast<std::size_t>(other) * cfg.hosts_per_leaf + h]->id();
        for (int s = 0; s < cfg.spines; ++s) {
          out.leaves[l]->routes().add_route(dst, out.leaf_up[l][s]);
        }
      }
    }
  }
  for (int s = 0; s < cfg.spines; ++s) {
    for (int l = 0; l < cfg.leaves; ++l) {
      for (int h = 0; h < cfg.hosts_per_leaf; ++h) {
        const NodeId dst = out.hosts[static_cast<std::size_t>(l) * cfg.hosts_per_leaf + h]->id();
        out.spines[s]->routes().add_route(dst, out.spine_down[s][l]);
      }
    }
  }

  for (auto* leaf : out.leaves) leaf->routes().set_mode(cfg.multipath);
  for (auto* spine : out.spines) spine->routes().set_mode(cfg.multipath);

  // Every switch must be able to reach every host; a gap here would abort
  // mid-run from the forwarding fast path, so fail at wiring time instead.
  for (auto* sw : out.leaves) {
    for (auto* host : out.hosts) sw->routes().require_route(host->id());
  }
  for (auto* sw : out.spines) {
    for (auto* host : out.hosts) sw->routes().require_route(host->id());
  }

  out.base_rtt = path_base_rtt(4, cfg.link_rate, cfg.link_delay);
  return out;
}

}  // namespace amrt::net
