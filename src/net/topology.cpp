#include "net/topology.hpp"

#include <stdexcept>

namespace amrt::net {

sim::Duration path_base_rtt(int hops, sim::Bandwidth rate, sim::Duration link_delay) {
  // Data direction: `hops` serializations of an MTU packet + propagation.
  // Control direction: `hops` serializations of a 64B grant + propagation.
  const auto data_way = rate.tx_time(kMtuBytes) * hops + link_delay * hops;
  const auto ctrl_way = rate.tx_time(kCtrlBytes) * hops + link_delay * hops;
  return data_way + ctrl_way;
}

LeafSpine build_leaf_spine(Network& net, const LeafSpineConfig& cfg) {
  if (!cfg.queue_factory) throw std::invalid_argument("LeafSpineConfig.queue_factory is required");
  LeafSpine out;

  auto make_marker = [&]() -> std::unique_ptr<DequeueMarker> {
    return cfg.marker_factory ? cfg.marker_factory() : nullptr;
  };

  const std::size_t n_hosts = static_cast<std::size_t>(cfg.leaves) * cfg.hosts_per_leaf;
  const std::size_t n_switches = static_cast<std::size_t>(cfg.leaves) + cfg.spines;
  // Each host: NIC + leaf downlink; each leaf-spine cable: two ports.
  net.reserve(net.host_count() + n_hosts, net.switch_count() + n_switches,
              net.port_count() + 2 * n_hosts +
                  2 * static_cast<std::size_t>(cfg.leaves) * cfg.spines);

  std::vector<SwitchId> leaves, spines;
  std::vector<HostId> hosts;
  for (int l = 0; l < cfg.leaves; ++l) leaves.push_back(net.add_switch());
  for (int s = 0; s < cfg.spines; ++s) spines.push_back(net.add_switch());

  out.leaf_down.resize(static_cast<std::size_t>(cfg.leaves));
  out.leaf_up.resize(static_cast<std::size_t>(cfg.leaves));
  out.spine_down.resize(static_cast<std::size_t>(cfg.spines),
                        std::vector<PortId>(static_cast<std::size_t>(cfg.leaves), PortId{-1}));

  // Hosts under each leaf.
  for (int l = 0; l < cfg.leaves; ++l) {
    for (int h = 0; h < cfg.hosts_per_leaf; ++h) {
      const HostId host = net.add_host(cfg.link_rate, cfg.link_delay,
                                       std::make_unique<DropTailQueue>(cfg.host_nic_queue_pkts));
      const PortId down = net.attach_host(host, leaves[l], cfg.queue_factory(false), make_marker());
      hosts.push_back(host);
      out.leaf_down[l].push_back(down);
      net.switch_at(leaves[l]).routes().add_route(net.id_of(host), down);
    }
  }

  // Leaf <-> spine fabric.
  for (int l = 0; l < cfg.leaves; ++l) {
    for (int s = 0; s < cfg.spines; ++s) {
      const PortId up = net.add_switch_port(leaves[l], net.id_of(spines[s]), cfg.link_rate,
                                            cfg.link_delay, cfg.queue_factory(false), make_marker());
      out.leaf_up[l].push_back(up);
      const PortId down = net.add_switch_port(spines[s], net.id_of(leaves[l]), cfg.link_rate,
                                              cfg.link_delay, cfg.queue_factory(false), make_marker());
      out.spine_down[s][l] = down;
    }
  }

  // Routing: leaves send remote traffic up any spine (ECMP); spines know
  // which leaf owns each host.
  for (int l = 0; l < cfg.leaves; ++l) {
    for (int other = 0; other < cfg.leaves; ++other) {
      if (other == l) continue;
      for (int h = 0; h < cfg.hosts_per_leaf; ++h) {
        const NodeId dst =
            net.id_of(hosts[static_cast<std::size_t>(other) * cfg.hosts_per_leaf + h]);
        for (int s = 0; s < cfg.spines; ++s) {
          net.switch_at(leaves[l]).routes().add_route(dst, out.leaf_up[l][s]);
        }
      }
    }
  }
  for (int s = 0; s < cfg.spines; ++s) {
    for (int l = 0; l < cfg.leaves; ++l) {
      for (int h = 0; h < cfg.hosts_per_leaf; ++h) {
        const NodeId dst = net.id_of(hosts[static_cast<std::size_t>(l) * cfg.hosts_per_leaf + h]);
        net.switch_at(spines[s]).routes().add_route(dst, out.spine_down[s][l]);
      }
    }
  }

  for (const SwitchId l : leaves) net.switch_at(l).routes().set_mode(cfg.multipath);
  for (const SwitchId s : spines) net.switch_at(s).routes().set_mode(cfg.multipath);

  // Every switch must be able to reach every host; a gap here would abort
  // mid-run from the forwarding fast path, so fail at wiring time instead.
  for (const SwitchId l : leaves) {
    for (const HostId h : hosts) net.switch_at(l).routes().require_route(net.id_of(h));
  }
  for (const SwitchId s : spines) {
    for (const HostId h : hosts) net.switch_at(s).routes().require_route(net.id_of(h));
  }

  // Resolve the convenience pointers only now that the pools are final.
  for (const HostId h : hosts) out.hosts.push_back(&net.host(h));
  for (const SwitchId l : leaves) out.leaves.push_back(&net.switch_at(l));
  for (const SwitchId s : spines) out.spines.push_back(&net.switch_at(s));

  out.base_rtt = path_base_rtt(4, cfg.link_rate, cfg.link_delay);
  return out;
}

FatTree build_fat_tree(Network& net, const FatTreeConfig& cfg) {
  if (!cfg.queue_factory) throw std::invalid_argument("FatTreeConfig.queue_factory is required");
  if (cfg.k < 2 || cfg.k % 2 != 0) throw std::invalid_argument("FatTreeConfig.k must be even");
  const int k = cfg.k;
  const int half = k / 2;
  const int n_pods = k;
  const int n_edges = k * half;       // k/2 per pod
  const int n_aggs = k * half;        // k/2 per pod
  const int n_cores = half * half;    // (k/2)^2
  const int n_hosts = k * half * half;  // k^3/4

  FatTree out;
  out.k = k;

  auto make_marker = [&]() -> std::unique_ptr<DequeueMarker> {
    return cfg.marker_factory ? cfg.marker_factory() : nullptr;
  };

  // Ports: every host contributes a NIC + an edge downlink; every
  // edge<->agg and agg<->core cable contributes two ports.
  const std::size_t n_fabric_cables =
      static_cast<std::size_t>(n_edges) * half + static_cast<std::size_t>(n_aggs) * half;
  net.reserve(net.host_count() + static_cast<std::size_t>(n_hosts),
              net.switch_count() + static_cast<std::size_t>(n_edges + n_aggs + n_cores),
              net.port_count() + 2 * static_cast<std::size_t>(n_hosts) + 2 * n_fabric_cables);

  // Switch tiers first: edges and aggs pod-major, then the core plane.
  std::vector<SwitchId> edges, aggs, cores;
  for (int p = 0; p < n_pods; ++p) {
    for (int e = 0; e < half; ++e) edges.push_back(net.add_switch());
    for (int a = 0; a < half; ++a) aggs.push_back(net.add_switch());
  }
  for (int c = 0; c < n_cores; ++c) cores.push_back(net.add_switch());

  out.edge_down.resize(static_cast<std::size_t>(n_edges));
  out.edge_up.resize(static_cast<std::size_t>(n_edges));
  out.agg_down.resize(static_cast<std::size_t>(n_aggs));
  out.agg_up.resize(static_cast<std::size_t>(n_aggs));
  out.core_down.resize(static_cast<std::size_t>(n_cores),
                       std::vector<PortId>(static_cast<std::size_t>(n_pods), PortId{-1}));

  // Hosts under each edge switch (pod-major), with the edge's local route.
  std::vector<HostId> hosts;
  for (int p = 0; p < n_pods; ++p) {
    for (int e = 0; e < half; ++e) {
      const int ei = p * half + e;
      for (int h = 0; h < half; ++h) {
        const HostId host = net.add_host(cfg.link_rate, cfg.link_delay,
                                         std::make_unique<DropTailQueue>(cfg.host_nic_queue_pkts));
        const PortId down =
            net.attach_host(host, edges[ei], cfg.queue_factory(false), make_marker());
        hosts.push_back(host);
        out.edge_down[ei].push_back(down);
        net.switch_at(edges[ei]).routes().add_route(net.id_of(host), down);
      }
    }
  }

  // Edge <-> agg fabric inside each pod.
  for (int p = 0; p < n_pods; ++p) {
    for (int e = 0; e < half; ++e) {
      const int ei = p * half + e;
      for (int a = 0; a < half; ++a) {
        const int ai = p * half + a;
        const PortId up = net.add_switch_port(edges[ei], net.id_of(aggs[ai]), cfg.link_rate,
                                              cfg.link_delay, cfg.queue_factory(false), make_marker());
        out.edge_up[ei].push_back(up);
        const PortId down = net.add_switch_port(aggs[ai], net.id_of(edges[ei]), cfg.link_rate,
                                                cfg.link_delay, cfg.queue_factory(false), make_marker());
        if (out.agg_down[ai].empty()) {
          out.agg_down[ai].resize(static_cast<std::size_t>(half), PortId{-1});
        }
        out.agg_down[ai][static_cast<std::size_t>(e)] = down;
      }
    }
  }

  // Agg <-> core plane: agg `a` of every pod owns core group
  // [a*(k/2), (a+1)*(k/2)).
  for (int p = 0; p < n_pods; ++p) {
    for (int a = 0; a < half; ++a) {
      const int ai = p * half + a;
      for (int j = 0; j < half; ++j) {
        const int ci = a * half + j;
        const PortId up = net.add_switch_port(aggs[ai], net.id_of(cores[ci]), cfg.link_rate,
                                              cfg.link_delay, cfg.queue_factory(false), make_marker());
        out.agg_up[ai].push_back(up);
        const PortId down = net.add_switch_port(cores[ci], net.id_of(aggs[ai]), cfg.link_rate,
                                                cfg.link_delay, cfg.queue_factory(false), make_marker());
        out.core_down[ci][static_cast<std::size_t>(p)] = down;
      }
    }
  }

  // Routing. Host flat index -> (pod, edge) is positional: hosts are
  // pod-major, half*half per pod, half per edge.
  auto pod_of = [&](int host_idx) { return host_idx / (half * half); };
  auto edge_of = [&](int host_idx) { return host_idx / half; };  // flat edge index

  // Edges: hosts behind other switches go up any pod agg (ECMP).
  for (int ei = 0; ei < n_edges; ++ei) {
    RoutingTable& routes = net.switch_at(edges[ei]).routes();
    for (int hi = 0; hi < n_hosts; ++hi) {
      if (edge_of(hi) == ei) continue;  // local hosts already routed
      const NodeId dst = net.id_of(hosts[static_cast<std::size_t>(hi)]);
      for (int a = 0; a < half; ++a) routes.add_route(dst, out.edge_up[ei][a]);
    }
  }

  // Aggs: in-pod hosts go down to their edge; everything else up to the
  // agg's core group (ECMP).
  for (int p = 0; p < n_pods; ++p) {
    for (int a = 0; a < half; ++a) {
      const int ai = p * half + a;
      RoutingTable& routes = net.switch_at(aggs[ai]).routes();
      for (int hi = 0; hi < n_hosts; ++hi) {
        const NodeId dst = net.id_of(hosts[static_cast<std::size_t>(hi)]);
        if (pod_of(hi) == p) {
          routes.add_route(dst, out.agg_down[ai][static_cast<std::size_t>(edge_of(hi) % half)]);
        } else {
          for (int j = 0; j < half; ++j) routes.add_route(dst, out.agg_up[ai][j]);
        }
      }
    }
  }

  // Cores: one downlink per pod.
  for (int ci = 0; ci < n_cores; ++ci) {
    RoutingTable& routes = net.switch_at(cores[ci]).routes();
    for (int hi = 0; hi < n_hosts; ++hi) {
      const NodeId dst = net.id_of(hosts[static_cast<std::size_t>(hi)]);
      routes.add_route(dst, out.core_down[ci][static_cast<std::size_t>(pod_of(hi))]);
    }
  }

  for (const SwitchId s : edges) net.switch_at(s).routes().set_mode(cfg.multipath);
  for (const SwitchId s : aggs) net.switch_at(s).routes().set_mode(cfg.multipath);
  for (const SwitchId s : cores) net.switch_at(s).routes().set_mode(cfg.multipath);

  // Wiring-time validation: every switch must reach every host.
  auto require_all = [&](const std::vector<SwitchId>& tier) {
    for (const SwitchId s : tier) {
      RoutingTable& routes = net.switch_at(s).routes();
      for (const HostId h : hosts) routes.require_route(net.id_of(h));
    }
  };
  require_all(edges);
  require_all(aggs);
  require_all(cores);

  // Resolve the convenience pointers only now that the pools are final.
  for (const HostId h : hosts) out.hosts.push_back(&net.host(h));
  for (const SwitchId s : edges) out.edges.push_back(&net.switch_at(s));
  for (const SwitchId s : aggs) out.aggs.push_back(&net.switch_at(s));
  for (const SwitchId s : cores) out.cores.push_back(&net.switch_at(s));

  out.base_rtt = path_base_rtt(6, cfg.link_rate, cfg.link_delay);
  return out;
}

}  // namespace amrt::net
