#include "net/monitor.hpp"

#include <algorithm>

namespace amrt::net {

PortSampler::PortSampler(sim::Simulation& sim, const EgressPort& port, sim::Duration interval)
    : sched_{sim.scheduler()}, port_{port}, interval_{interval} {}

PortSampler::~PortSampler() { stop(); }

void PortSampler::start() {
  if (running_) return;
  running_ = true;
  last_bytes_ = port_.bytes_sent();
  last_busy_ = port_.busy_time();
  pending_ = sched_.after(interval_, [this] { tick(); });
}

void PortSampler::stop() {
  running_ = false;
  pending_.cancel();
}

void PortSampler::tick() {
  if (!running_) return;
  const auto busy = port_.busy_time();
  const double util = std::min(1.0, (busy - last_busy_) / interval_);
  last_busy_ = busy;
  const std::size_t depth = port_.queue().data_pkts();
  max_queue_ = std::max(max_queue_, depth);
  samples_.push_back(Sample{sched_.now(), util, depth, port_.bytes_sent()});
  last_bytes_ = port_.bytes_sent();
  pending_ = sched_.after(interval_, [this] { tick(); });
}

double PortSampler::mean_utilization() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& s : samples_) sum += s.utilization;
  return sum / static_cast<double>(samples_.size());
}

double PortSampler::mean_utilization(sim::TimePoint from, sim::TimePoint to) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& s : samples_) {
    if (s.at >= from && s.at <= to) {
      sum += s.utilization;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double window_utilization(const EgressPort& port, std::uint64_t bytes_before,
                          sim::TimePoint from, sim::TimePoint to) {
  if (to <= from) return 0.0;
  const auto bits = static_cast<double>(port.bytes_sent() - bytes_before) * 8.0;
  const double secs = (to - from).to_seconds();
  const double cap = static_cast<double>(port.config().rate.bits_per_second());
  return std::min(1.0, bits / (cap * secs));
}

}  // namespace amrt::net
