#include "net/host.hpp"

#include "net/network.hpp"
#include "sim/trace.hpp"

namespace amrt::net {

Host::Host(sim::Scheduler& sched, Network& net, NodeId id, PortId nic)
    : Node{id}, sched_{&sched}, net_{&net}, nic_{nic} {}

void Host::attach(std::unique_ptr<PacketSink> sink) { sink_ = std::move(sink); }

void Host::handle_packet(Packet&& pkt, int /*ingress_port*/) {
  bytes_received_ += pkt.wire_bytes;
#ifdef AMRT_AUDIT
  // The audited delivery point: closes this copy's ledger entry and checks
  // the Eq. 3 CE composition for data packets.
  if (auto* a = sched_->auditor()) a->on_deliver(audit::info_of(pkt));
#endif
  if (sink_ != nullptr) {
    sink_->deliver(std::move(pkt));
  } else {
    AMRT_WARN("host %s dropped packet (no transport attached): %s", net_->label(id()).c_str(),
              pkt.str().c_str());
  }
}

}  // namespace amrt::net
