#include "net/host.hpp"

#include "sim/trace.hpp"

namespace amrt::net {

Host::Host(sim::Scheduler& sched, NodeId id, std::string name,
           EgressPort::Config nic_cfg, std::unique_ptr<EgressQueue> nic_queue)
    : Node{id, std::move(name)}, nic_{sched, std::move(nic_cfg), std::move(nic_queue)} {}

void Host::attach(std::unique_ptr<PacketSink> sink) { sink_ = std::move(sink); }

void Host::handle_packet(Packet&& pkt, int /*ingress_port*/) {
  bytes_received_ += pkt.wire_bytes;
#ifdef AMRT_AUDIT
  // The audited delivery point: closes this copy's ledger entry and checks
  // the Eq. 3 CE composition for data packets.
  if (auto* a = nic_.scheduler().auditor()) a->on_deliver(audit::info_of(pkt));
#endif
  if (sink_ != nullptr) {
    sink_->deliver(std::move(pkt));
  } else {
    AMRT_WARN("host %s dropped packet (no transport attached): %s", name().c_str(), pkt.str().c_str());
  }
}

}  // namespace amrt::net
