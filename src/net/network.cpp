#include "net/network.hpp"

#include <stdexcept>

namespace amrt::net {

void Network::reserve(std::size_t n_hosts, std::size_t n_switches, std::size_t n_ports) {
  hosts_.reserve(n_hosts);
  switches_.reserve(n_switches);
  ports_.reserve(n_ports);
  queues_.reserve(n_ports);
  dir_.reserve(n_hosts + n_switches);
}

PortId Network::new_port(EgressPort::Config cfg, std::unique_ptr<EgressQueue> queue) {
  const PortId id = static_cast<PortId>(ports_.size());
  // The queue's audit shadow is keyed by its pool slot (== the port slot).
  queue->audit_bind(sched_.auditor(), static_cast<std::uint32_t>(id));
  queues_.push_back(std::move(queue));
  ports_.emplace_back(sched_, cfg, *queues_.back());
  return id;
}

HostId Network::add_host(sim::Bandwidth rate, sim::Duration delay,
                         std::unique_ptr<EgressQueue> nic_queue) {
  EgressPort::Config cfg{rate, delay};
  // Host stacks carry timing noise of a fraction of a packet time; see the
  // Config::tx_jitter comment for why the simulation needs it too.
  cfg.tx_jitter = rate.tx_time(kMtuBytes) / 8;
  cfg.jitter_seed = 0x9e3779b97f4a7c15ULL ^ (static_cast<std::uint64_t>(next_id_) << 17);
  const PortId nic = new_port(cfg, std::move(nic_queue));
  const HostId h{static_cast<std::uint32_t>(hosts_.size())};
  hosts_.emplace_back(sched_, *this, next_id(), nic);
  dir_.push_back(NodeRef{NodeKind::kHost, h.slot});
  return h;
}

SwitchId Network::add_switch() {
  const SwitchId s{static_cast<std::uint32_t>(switches_.size())};
  switches_.emplace_back(*this, next_id());
  dir_.push_back(NodeRef{NodeKind::kSwitch, s.slot});
  return s;
}

PortId Network::add_switch_port(SwitchId from, NodeId to, sim::Bandwidth rate, sim::Duration delay,
                                std::unique_ptr<EgressQueue> queue,
                                std::unique_ptr<DequeueMarker> marker) {
  const PortId pid = new_port(EgressPort::Config{rate, delay}, std::move(queue));
  switches_[from.slot].adopt_port(pid);
  EgressPort& port = ports_[static_cast<std::size_t>(pid)];
  port.connect(*this, to, 0);
  if (marker) port.add_marker(std::move(marker));
  return pid;
}

PortId Network::attach_host(HostId host, SwitchId sw, std::unique_ptr<EgressQueue> down_queue,
                            std::unique_ptr<DequeueMarker> down_marker) {
  const NodeId host_node = id_of(host);
  const PortId nic = hosts_[host.slot].nic_id();
  // Copy the NIC config out before new_port can grow the pool and invalidate
  // the reference; the downlink mirrors the uplink's rate and delay.
  const EgressPort::Config nic_cfg = ports_[static_cast<std::size_t>(nic)].config();
  ports_[static_cast<std::size_t>(nic)].connect(*this, id_of(sw), switches_[sw.slot].port_count());
  const PortId pid =
      new_port(EgressPort::Config{nic_cfg.rate, nic_cfg.delay}, std::move(down_queue));
  switches_[sw.slot].adopt_port(pid);
  EgressPort& down = ports_[static_cast<std::size_t>(pid)];
  down.connect(*this, host_node, 0);
  if (down_marker) down.add_marker(std::move(down_marker));
  return pid;
}

void Network::set_link_up(PortId p, bool up) {
  const auto slot = static_cast<std::size_t>(p);
  if (slot >= ports_.size()) throw std::out_of_range("set_link_up: no such port");
  if (link_state_.is_up(p) == up) return;
  if (link_state_.up.size() < ports_.size()) link_state_.up.resize(ports_.size(), 1);
  link_state_.up[slot] = up ? 1 : 0;
  link_state_.epoch.fetch_add(1, std::memory_order_relaxed);
  ports_[slot].set_link_up(up);
}

std::uint64_t Network::packets_faulted() const {
  std::uint64_t n = 0;
  for (const auto& port : ports_) n += port.packets_faulted();
  return n;
}

std::string Network::label(NodeId id) const {
  if (id.value >= dir_.size()) return "node" + std::to_string(id.value);
  const NodeRef ref = dir_[id.value];
  return (ref.kind == NodeKind::kHost ? "h" : "sw") + std::to_string(ref.slot);
}

}  // namespace amrt::net
