// Abstract network element (host or switch) and the sink interface that
// decouples the network layer from the transport layer above it.
#pragma once

#include <string>
#include <utility>

#include "net/packet.hpp"

namespace amrt::net {

class Node {
 public:
  Node(NodeId id, std::string name) : id_{id}, name_{std::move(name)} {}
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  // A packet arrives from the wire on `ingress_port`.
  virtual void handle_packet(Packet&& pkt, int ingress_port) = 0;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  NodeId id_;
  std::string name_;
};

// What a Host delivers received packets to (implemented by transports).
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void deliver(Packet&& pkt) = 0;
};

}  // namespace amrt::net
