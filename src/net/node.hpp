// Abstract network element (host or switch), the pool handles used to
// address elements inside a Network, and the sink interface that decouples
// the network layer from the transport layer above it.
//
// Since the pooled-core refactor, nodes carry no names: a NodeId is a dense
// index into the owning Network's directory, and human-readable labels are
// derived lazily (Network::label) only when diagnostics need them.
#pragma once

#include "net/packet.hpp"

namespace amrt::net {

// What kind of pool slot a NodeId resolves to.
enum class NodeKind : std::uint8_t { kHost, kSwitch };

// Typed handles into Network's contiguous pools. They are plain indices:
// trivially copyable, stable for the lifetime of the Network, and O(1) to
// dereference (no map lookups). A PortId indexes the network-wide port
// pool, so routing tables and monitors can address any port directly
// without going through the owning switch.
struct HostId {
  std::uint32_t slot = 0;
};
struct SwitchId {
  std::uint32_t slot = 0;
};
using PortId = std::int32_t;

class Node {
 public:
  explicit Node(NodeId id) : id_{id} {}
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;
  // Pool storage moves elements on growth; see Network's invalidation rules.
  Node(Node&&) = default;

  // A packet arrives from the wire on `ingress_port`. Pooled delivery goes
  // through Network::deliver (devirtualized); this virtual remains for
  // standalone peers (unit-test sinks) wired with EgressPort::connect.
  virtual void handle_packet(Packet&& pkt, int ingress_port) = 0;

  [[nodiscard]] NodeId id() const { return id_; }

 private:
  NodeId id_;
};

// What a Host delivers received packets to (implemented by transports).
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void deliver(Packet&& pkt) = 0;
};

}  // namespace amrt::net
