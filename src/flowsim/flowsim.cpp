#include "flowsim/flowsim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace amrt::flowsim {

namespace {
constexpr double kDoneEps = 1e-3;  // bytes: below this a flow is drained
}

const char* to_string(RateModel m) {
  switch (m) {
    case RateModel::kInstant: return "instant";
    case RateModel::kAmrtGrantClock: return "amrt";
    case RateModel::kDctcpThreshold: return "dctcp";
    case RateModel::kTraditional: return "traditional";
  }
  return "?";
}

FlowSim::FlowSim(const Fabric& fabric, FlowSimConfig cfg) : fabric_{fabric}, cfg_{std::move(cfg)} {
  if (cfg_.rtt <= sim::Duration::zero()) {
    throw std::invalid_argument("FlowSim: rtt must be positive");
  }
  if (cfg_.payload_fraction <= 0.0 || cfg_.payload_fraction > 1.0) {
    throw std::invalid_argument("FlowSim: payload_fraction must be in (0, 1]");
  }
  const std::size_t n = fabric.link_count();
  cap_rem_.assign(n, 0.0);
  link_cnt_.assign(n, 0);
  link_bytes_.assign(n, 0.0);
  link_first_.assign(n, sim::TimePoint::max());
  link_last_.assign(n, sim::TimePoint::zero());
}

void FlowSim::add_flow(std::uint64_t id, std::size_t src, std::size_t dst, std::uint64_t bytes,
                       sim::TimePoint start, RateModel model) {
  if (bytes == 0) throw std::invalid_argument("FlowSim: zero-byte flow");
  Input in;
  in.id = id;
  in.bytes = bytes;
  in.start = start;
  in.model = model;
  in.path_off = static_cast<std::uint32_t>(path_arena_.size());
  fabric_.path(id, src, dst, path_arena_);
  in.path_len = static_cast<std::uint32_t>(path_arena_.size()) - in.path_off;
  inputs_.push_back(in);
}

void FlowSim::record_link_usage(sim::Duration bin) {
  if (bin <= sim::Duration::zero()) {
    throw std::invalid_argument("FlowSim: usage bin must be positive");
  }
  usage_bin_ = bin;
  usage_.assign(fabric_.link_count(), {});
}

sim::Duration FlowSim::completion_latency(const Active& f) const {
  return cfg_.prop_delay * static_cast<std::int64_t>(f.path_len) +
         cfg_.mtu_tx * static_cast<std::int64_t>(f.path_len > 0 ? f.path_len - 1 : 0) +
         cfg_.fixed_latency;
}

void FlowSim::recompute_targets() {
  ++recomputes_;
  const double rtt_s = cfg_.rtt.to_seconds();
  const double slot_step = cfg_.mtu_bytes / rtt_s;  // one packet slot per RTT, bytes/sec

  // Per-link active-flow counts and payload capacities, over used links only.
  used_links_.clear();
  for (const Active& f : active_) {
    for (std::uint32_t i = 0; i < f.path_len; ++i) {
      const LinkId l = path_arena_[f.path_off + i];
      if (link_cnt_[l] == 0) {
        used_links_.push_back(l);
        cap_rem_[l] = fabric_.capacity_bps(l) / 8.0 * cfg_.payload_fraction;
      }
      ++link_cnt_[l];
    }
  }

  // Water-filling: repeatedly freeze every flow crossing the current
  // bottleneck (the link with the smallest per-flow share) at that share.
  std::vector<char> frozen(active_.size(), 0);
  std::size_t left = active_.size();
  while (left > 0) {
    double best = -1.0;
    LinkId best_link = 0;
    for (const LinkId l : used_links_) {
      if (link_cnt_[l] == 0) continue;
      const double share = cap_rem_[l] / static_cast<double>(link_cnt_[l]);
      if (best < 0.0 || share < best) {
        best = share;
        best_link = l;
      }
    }
    if (best < 0.0) break;  // no constrained link left (cannot happen: host links)
    for (std::size_t i = 0; i < active_.size(); ++i) {
      if (frozen[i] != 0) continue;
      Active& f = active_[i];
      bool on_bottleneck = false;
      for (std::uint32_t p = 0; p < f.path_len; ++p) {
        if (path_arena_[f.path_off + p] == best_link) {
          on_bottleneck = true;
          break;
        }
      }
      if (!on_bottleneck) continue;
      frozen[i] = 1;
      --left;
      f.target = best;
      for (std::uint32_t p = 0; p < f.path_len; ++p) {
        const LinkId l = path_arena_[f.path_off + p];
        cap_rem_[l] = std::max(0.0, cap_rem_[l] - best);
        --link_cnt_[l];
      }
    }
  }
  for (const LinkId l : used_links_) link_cnt_[l] = 0;  // restore the zeroed invariant

  // Model transitions: how each flow's actual rate tracks its new share.
  for (Active& f : active_) {
    if (f.fresh) {
      // Arrival: the unscheduled burst plus an immediately-scheduled grant
      // clock put a new flow at its share within the first RTT.
      f.rate = f.target;
      f.ramp_step = 0.0;
      f.fresh = false;
      continue;
    }
    switch (f.model) {
      case RateModel::kInstant:
        f.rate = f.target;
        f.ramp_step = 0.0;
        break;
      case RateModel::kTraditional:
        // Eq. 6: grants lost to a rate reduction are never re-marked.
        if (f.target < f.rate) f.rate = f.target;
        f.ramp_step = 0.0;
        break;
      case RateModel::kAmrtGrantClock:
        if (f.target <= f.rate) {
          f.rate = f.target;  // the grant clock cuts within one RTT
          f.ramp_step = 0.0;
        } else if (f.ramp_step <= 0.0) {
          // Refill episode begins at pre-drop rate R0. Earliest (Eq. 4/7):
          // the filled slots re-mark every RTT, +R0 per RTT. Latest
          // (Eq. 5/8): consecutive vacancies refill one slot per RTT.
          f.ramp_step = cfg_.amrt_ramp_latest ? slot_step : std::max(f.rate, slot_step);
        }
        break;
      case RateModel::kDctcpThreshold:
        if (f.target <= f.rate) {
          f.rate = f.target;
          f.ramp_step = 0.0;
        } else if (f.ramp_step <= 0.0) {
          f.ramp_step = cfg_.mss_bytes / rtt_s;  // additive increase, 1 MSS/RTT
        }
        break;
    }
  }
}

void FlowSim::apply_ramp_tick() {
  for (Active& f : active_) {
    if (f.ramp_step <= 0.0 || f.rate >= f.target) continue;
    f.rate = std::min(f.target, f.rate + f.ramp_step);
    if (f.rate >= f.target) f.ramp_step = 0.0;
  }
}

void FlowSim::advance_to(sim::TimePoint t, stats::FlowObserver* observer) {
  const double dt = (t - now_).to_seconds();
  if (dt > 0.0) {
    const double bin_s = usage_bin_ > sim::Duration::zero() ? usage_bin_.to_seconds() : 0.0;
    for (Active& f : active_) {
      if (f.rate <= 0.0) continue;
      const double add =
          std::min(f.rate * dt, static_cast<double>(f.total_bytes) - f.delivered);
      f.delivered += add;
      const auto whole = static_cast<std::uint64_t>(f.delivered);
      if (observer != nullptr && whole > f.reported) {
        observer->on_flow_progress(f.id, whole - f.reported, t);
        f.reported = whole;
      }
      for (std::uint32_t p = 0; p < f.path_len; ++p) {
        const LinkId l = path_arena_[f.path_off + p];
        link_bytes_[l] += add;
        if (link_first_[l] > now_) link_first_[l] = now_;
        if (link_last_[l] < t) link_last_[l] = t;
        if (bin_s > 0.0) {
          // Spread this segment's mean rate across the bins it overlaps.
          std::int64_t seg_start = now_.ns();
          const std::int64_t seg_end = t.ns();
          const std::int64_t bin_ns = usage_bin_.ns();
          while (seg_start < seg_end) {
            const std::int64_t b = seg_start / bin_ns;
            const std::int64_t b_end = std::min(seg_end, (b + 1) * bin_ns);
            const double overlap_s = static_cast<double>(b_end - seg_start) * 1e-9;
            auto& lane = usage_[l];
            if (lane.size() <= static_cast<std::size_t>(b)) {
              lane.resize(static_cast<std::size_t>(b) + 1, 0.0);
            }
            lane[static_cast<std::size_t>(b)] += f.rate * overlap_s / bin_s;
            seg_start = b_end;
          }
        }
      }
    }
  }
  now_ = t;
}

FlowSimResult FlowSim::run(stats::FlowObserver* observer) {
  std::sort(inputs_.begin(), inputs_.end(), [](const Input& a, const Input& b) {
    return a.start != b.start ? a.start < b.start : a.id < b.id;
  });

  FlowSimResult res;
  res.started = 0;
  std::size_t next = 0;
  now_ = sim::TimePoint::zero();
  sim::TimePoint next_tick = sim::TimePoint::max();

  while (next < inputs_.size() || !active_.empty()) {
    // Earliest of: next arrival, earliest drain at current rates, ramp tick.
    sim::TimePoint t_next = sim::TimePoint::max();
    if (next < inputs_.size()) t_next = inputs_[next].start;
    for (const Active& f : active_) {
      if (f.rate <= 0.0) continue;
      const double secs = (static_cast<double>(f.total_bytes) - f.delivered) / f.rate;
      sim::TimePoint est = now_ + sim::Duration::from_seconds(secs);
      if (est <= now_) est = now_ + sim::Duration::nanoseconds(1);
      if (est < t_next) t_next = est;
    }
    if (next_tick < t_next) t_next = next_tick;
    if (t_next == sim::TimePoint::max()) break;  // stalled: no arrivals, nothing moving
    if (t_next > cfg_.max_time) {
      advance_to(cfg_.max_time, observer);
      break;
    }

    advance_to(t_next, observer);
    ++events_;

    bool membership_changed = false;
    // Completions, in arrival order for deterministic observer callbacks.
    for (Active& f : active_) {
      if (static_cast<double>(f.total_bytes) - f.delivered > kDoneEps) continue;
      if (observer != nullptr) {
        if (f.total_bytes > f.reported) {
          observer->on_flow_progress(f.id, f.total_bytes - f.reported, now_);
          f.reported = f.total_bytes;
        }
        observer->on_flow_completed(f.id, now_ + completion_latency(f));
      }
      ++res.completed;
      f.path_len = 0;  // mark for removal; keeps indices stable until the erase
      f.rate = 0.0;
      f.total_bytes = 0;
      f.delivered = 0.0;
      membership_changed = true;
    }
    if (membership_changed) {
      active_.erase(std::remove_if(active_.begin(), active_.end(),
                                   [](const Active& f) { return f.path_len == 0; }),
                    active_.end());
    }

    // Arrivals due now.
    while (next < inputs_.size() && inputs_[next].start <= now_) {
      const Input& in = inputs_[next];
      Active f;
      f.id = in.id;
      f.total_bytes = in.bytes;
      f.model = in.model;
      f.start = in.start;
      f.path_off = in.path_off;
      f.path_len = in.path_len;
      active_.push_back(f);
      if (observer != nullptr) observer->on_flow_started(in.id, in.bytes, in.start);
      ++res.started;
      ++next;
      membership_changed = true;
    }

    if (membership_changed) recompute_targets();

    if (next_tick <= now_) {
      apply_ramp_tick();
      next_tick = sim::TimePoint::max();
    }
    // (Re)arm the grant-clock tick while anyone is still converging.
    bool ramping = false;
    for (const Active& f : active_) {
      if (f.ramp_step > 0.0 && f.rate < f.target) {
        ramping = true;
        break;
      }
    }
    if (ramping) {
      const sim::TimePoint tick = now_ + cfg_.rtt;
      if (tick < next_tick) next_tick = tick;
    } else if (next_tick <= now_) {
      next_tick = sim::TimePoint::max();
    }
  }

  res.events = events_;
  res.recomputes = recomputes_;
  res.end_time = now_;
  return res;
}

}  // namespace amrt::flowsim
