// Flow-level view of the canonical topologies (DESIGN.md §15).
//
// The packet simulator models a fabric as ports, queues and routing tables;
// the flow-level mode only needs the part of that structure that shapes
// steady-state bandwidth sharing: which directed link capacities a flow's
// bytes cross. A Fabric is therefore just a table of link capacities plus a
// deterministic path resolver mirroring the leaf-spine / fat-tree wiring of
// net/topology.hpp — same shapes, same ECMP fan-out (approximated by a
// per-flow hash, the fluid analogue of per-flow ECMP), no per-packet state.
//
// Link ids are stable and topology-ordered so the mixed-fidelity runner can
// map them onto the packet fabric's global PortIds (harness/fidelity.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace amrt::flowsim {

using LinkId = std::uint32_t;

class Fabric {
 public:
  enum class Kind : std::uint8_t { kLeafSpine, kFatTree };

  // Section 8.1 leaf-spine: every link at `link_rate`, ECMP across spines.
  [[nodiscard]] static Fabric leaf_spine(int leaves, int spines, int hosts_per_leaf,
                                         sim::Bandwidth link_rate);
  // Three-tier fat-tree (net/topology.hpp semantics): k pods, k^3/4 hosts.
  [[nodiscard]] static Fabric fat_tree(int k, sim::Bandwidth link_rate);

  [[nodiscard]] std::size_t n_hosts() const { return n_hosts_; }
  [[nodiscard]] std::size_t link_count() const { return capacity_bps_.size(); }
  [[nodiscard]] double capacity_bps(LinkId l) const { return capacity_bps_[l]; }
  [[nodiscard]] Kind kind() const { return kind_; }

  // Appends the directed links flow `id` crosses from `src` to `dst` (host
  // indices in topology order). The multipath choice is a pure function of
  // the flow id, so repeated resolution — and the mixed-fidelity replay of
  // the same schedule — always picks the same path.
  void path(std::uint64_t flow_id, std::size_t src, std::size_t dst,
            std::vector<LinkId>& out) const;

  // --- link naming (leaf-spine), for monitors and the port mapping --------
  [[nodiscard]] LinkId host_up(std::size_t host) const { return static_cast<LinkId>(host); }
  [[nodiscard]] LinkId host_down(std::size_t host) const {
    return static_cast<LinkId>(n_hosts_ + host);
  }
  // Leaf-spine fabric tiers; invalid for fat-tree fabrics.
  [[nodiscard]] LinkId leaf_up(int leaf, int spine) const;
  [[nodiscard]] LinkId spine_down(int spine, int leaf) const;

  [[nodiscard]] int leaves() const { return leaves_; }
  [[nodiscard]] int spines() const { return spines_; }
  [[nodiscard]] int hosts_per_leaf() const { return hosts_per_leaf_; }
  [[nodiscard]] int k() const { return k_; }

 private:
  Kind kind_ = Kind::kLeafSpine;
  std::size_t n_hosts_ = 0;
  std::vector<double> capacity_bps_;
  // Leaf-spine shape.
  int leaves_ = 0;
  int spines_ = 0;
  int hosts_per_leaf_ = 0;
  // Fat-tree shape.
  int k_ = 0;

  // Fat-tree link-id block offsets (computed once in the builder).
  std::uint32_t ft_edge_up_base_ = 0;
  std::uint32_t ft_agg_up_base_ = 0;
  std::uint32_t ft_agg_down_base_ = 0;
  std::uint32_t ft_core_down_base_ = 0;
};

// The per-flow multipath hash: a splitmix64 finalizer, shared by both
// topologies so tests can predict path choices.
[[nodiscard]] std::uint64_t path_hash(std::uint64_t flow_id);

}  // namespace amrt::flowsim
