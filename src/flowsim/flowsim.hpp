// Flow-level fast path (DESIGN.md §15, ROADMAP item 4).
//
// Replaces per-packet events with fluid flows: each active flow streams
// payload at a rate set by progressive max-min sharing over the Fabric's
// link capacities. Events happen only when the rate vector can change —
// a flow arrives, a flow drains, or a grant-clock tick advances a ramp —
// so a run costs thousands of events where the packet simulator costs
// millions. The price is per-packet effects (queueing jitter, loss,
// trimming); the flowsim_validation ctest bounds that error against the
// packet-level truth (avg FCT ±10%, p99 ±25% on small fabrics).
//
// Rate models (the AMRT-aware part):
//   kInstant        — ideal max-min: rates jump to the fair share.
//   kAmrtGrantClock — anti-ECN refill: a rate *increase* ramps additively
//                     at the pre-drop rate per RTT (Eq. 4/7's earliest
//                     bound) or spread across the vacated packet slots
//                     (Eq. 5/8's latest bound); decreases are immediate
//                     (the receiver's grant clock cuts within one RTT).
//   kDctcpThreshold — threshold-ECN background flows: additive increase of
//                     one MSS per RTT toward the share, immediate decrease.
//   kTraditional    — Section 5's TRP: the rate never recovers after a
//                     reduction (Eq. 6's pessimistic completion).
//
// All sharing happens on *payload* capacity (link rate scaled by MSS/MTU),
// matching what FctRecorder counts at the packet level.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "flowsim/fabric.hpp"
#include "sim/time.hpp"
#include "stats/fct.hpp"

namespace amrt::flowsim {

enum class RateModel : std::uint8_t { kInstant, kAmrtGrantClock, kDctcpThreshold, kTraditional };

[[nodiscard]] const char* to_string(RateModel m);

struct FlowSimConfig {
  // Grant-clock tick: ramps advance once per RTT.
  sim::Duration rtt = sim::Duration::microseconds(100);
  // Payload fraction of raw link capacity (MSS/MTU at the packet level).
  double payload_fraction = 1460.0 / 1500.0;
  // Per-link propagation delay and MTU serialization time: each completion
  // is reported `links*prop + (links-1)*mtu_tx + fixed_latency` after the
  // last payload byte is scheduled, mirroring the packet path's pipeline.
  sim::Duration prop_delay = sim::Duration::microseconds(10);
  sim::Duration mtu_tx = sim::Duration::nanoseconds(1200);
  sim::Duration fixed_latency = sim::Duration::zero();
  // Use Eq. 5/8's latest-convergence ramp instead of Eq. 4/7's earliest.
  bool amrt_ramp_latest = false;
  // MTU bytes (slot size for the Eq. 5 vacancy count) and MSS for DCTCP's
  // additive step.
  double mtu_bytes = 1500.0;
  double mss_bytes = 1460.0;
  // Hard stop; flows still active at the horizon stay incomplete.
  sim::TimePoint max_time = sim::TimePoint::zero() + sim::Duration::seconds(30);
};

struct FlowSimResult {
  std::uint64_t events = 0;      // processed event boundaries
  std::uint64_t recomputes = 0;  // max-min water-fillings
  std::size_t started = 0;
  std::size_t completed = 0;
  sim::TimePoint end_time{};
};

class FlowSim {
 public:
  FlowSim(const Fabric& fabric, FlowSimConfig cfg);

  // Register a flow before run(). Flows may be added in any order.
  void add_flow(std::uint64_t id, std::size_t src, std::size_t dst, std::uint64_t bytes,
                sim::TimePoint start, RateModel model);

  // Mixed fidelity: accumulate the mean used bandwidth (payload bytes/sec)
  // of every link into fixed `bin` windows starting at t=0. Call before
  // run(); read back with link_usage()/usage_bins().
  void record_link_usage(sim::Duration bin);
  [[nodiscard]] const std::vector<std::vector<double>>& link_usage() const { return usage_; }
  [[nodiscard]] sim::Duration usage_bin() const { return usage_bin_; }

  // Per-link lifetime counters (for utilization summaries).
  [[nodiscard]] double link_bytes(LinkId l) const { return link_bytes_[l]; }
  [[nodiscard]] sim::TimePoint link_first_busy(LinkId l) const { return link_first_[l]; }
  [[nodiscard]] sim::TimePoint link_last_busy(LinkId l) const { return link_last_[l]; }

  // Runs to completion (or cfg.max_time). `observer` may be null; when set
  // it receives the same started/progress/completed callbacks the packet
  // transports emit, so a stats::FctRecorder plugs in unchanged.
  FlowSimResult run(stats::FlowObserver* observer);

 private:
  struct Active {
    std::uint64_t id = 0;
    std::uint64_t total_bytes = 0;
    double delivered = 0.0;        // fluid payload bytes
    std::uint64_t reported = 0;    // integer bytes already sent to the observer
    double rate = 0.0;             // current payload bytes/sec
    double target = 0.0;           // max-min share
    double ramp_step = 0.0;        // bytes/sec added per RTT tick while rate < target
    RateModel model = RateModel::kInstant;
    sim::TimePoint start{};
    std::uint32_t path_off = 0;
    std::uint32_t path_len = 0;
    bool fresh = true;  // not yet given an initial rate
  };

  void recompute_targets();
  void advance_to(sim::TimePoint t, stats::FlowObserver* observer);
  void apply_ramp_tick();
  [[nodiscard]] sim::Duration completion_latency(const Active& f) const;

  const Fabric& fabric_;
  FlowSimConfig cfg_;

  struct Input {
    std::uint64_t id;
    std::uint64_t bytes;
    sim::TimePoint start;
    RateModel model;
    std::uint32_t path_off;
    std::uint32_t path_len;
  };
  std::vector<Input> inputs_;
  std::vector<LinkId> path_arena_;

  std::vector<Active> active_;
  sim::TimePoint now_{};

  // Scratch for the water-filling (sized to link_count, reused).
  std::vector<double> cap_rem_;
  std::vector<std::uint32_t> link_cnt_;
  std::vector<LinkId> used_links_;

  // Usage recording.
  sim::Duration usage_bin_ = sim::Duration::zero();
  std::vector<std::vector<double>> usage_;  // usage_[link][bin] = mean bytes/sec
  std::vector<double> link_bytes_;
  std::vector<sim::TimePoint> link_first_;
  std::vector<sim::TimePoint> link_last_;

  std::uint64_t events_ = 0;
  std::uint64_t recomputes_ = 0;
};

}  // namespace amrt::flowsim
