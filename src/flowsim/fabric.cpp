#include "flowsim/fabric.hpp"

#include <stdexcept>

namespace amrt::flowsim {

std::uint64_t path_hash(std::uint64_t flow_id) {
  // splitmix64 finalizer: cheap, well-mixed, and stable across platforms.
  std::uint64_t z = flow_id + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Fabric Fabric::leaf_spine(int leaves, int spines, int hosts_per_leaf, sim::Bandwidth link_rate) {
  if (leaves < 1 || spines < 1 || hosts_per_leaf < 1) {
    throw std::invalid_argument("flowsim::Fabric::leaf_spine: need leaves/spines/hosts >= 1");
  }
  Fabric f;
  f.kind_ = Kind::kLeafSpine;
  f.leaves_ = leaves;
  f.spines_ = spines;
  f.hosts_per_leaf_ = hosts_per_leaf;
  f.n_hosts_ = static_cast<std::size_t>(leaves) * static_cast<std::size_t>(hosts_per_leaf);
  const double cap = static_cast<double>(link_rate.bits_per_second());
  // Layout: [host uplinks][host downlinks][leaf->spine][spine->leaf].
  const std::size_t n_links = 2 * f.n_hosts_ + 2 * static_cast<std::size_t>(leaves) *
                                                   static_cast<std::size_t>(spines);
  f.capacity_bps_.assign(n_links, cap);
  return f;
}

LinkId Fabric::leaf_up(int leaf, int spine) const {
  return static_cast<LinkId>(2 * n_hosts_ +
                             static_cast<std::size_t>(leaf) * static_cast<std::size_t>(spines_) +
                             static_cast<std::size_t>(spine));
}

LinkId Fabric::spine_down(int spine, int leaf) const {
  return static_cast<LinkId>(2 * n_hosts_ +
                             static_cast<std::size_t>(leaves_) * static_cast<std::size_t>(spines_) +
                             static_cast<std::size_t>(spine) * static_cast<std::size_t>(leaves_) +
                             static_cast<std::size_t>(leaf));
}

Fabric Fabric::fat_tree(int k, sim::Bandwidth link_rate) {
  if (k < 2 || k % 2 != 0) {
    throw std::invalid_argument("flowsim::Fabric::fat_tree: k must be even and >= 2");
  }
  Fabric f;
  f.kind_ = Kind::kFatTree;
  f.k_ = k;
  const std::size_t half = static_cast<std::size_t>(k) / 2;
  const std::size_t pods = static_cast<std::size_t>(k);
  const std::size_t edges = pods * half;   // flat edge index: pod*half + e
  const std::size_t aggs = pods * half;    // flat agg index:  pod*half + a
  const std::size_t cores = half * half;   // core index:      a*half + j
  f.n_hosts_ = edges * half;               // (pod*half + e)*half + h
  const double cap = static_cast<double>(link_rate.bits_per_second());
  // Layout: [host up][host down][edge->agg][agg->core][agg->edge][core->pod].
  f.ft_edge_up_base_ = static_cast<std::uint32_t>(2 * f.n_hosts_);
  f.ft_agg_up_base_ = static_cast<std::uint32_t>(f.ft_edge_up_base_ + edges * half);
  f.ft_agg_down_base_ = static_cast<std::uint32_t>(f.ft_agg_up_base_ + aggs * half);
  f.ft_core_down_base_ = static_cast<std::uint32_t>(f.ft_agg_down_base_ + aggs * half);
  const std::size_t n_links = f.ft_core_down_base_ + cores * pods;
  f.capacity_bps_.assign(n_links, cap);
  return f;
}

void Fabric::path(std::uint64_t flow_id, std::size_t src, std::size_t dst,
                  std::vector<LinkId>& out) const {
  if (src >= n_hosts_ || dst >= n_hosts_ || src == dst) {
    throw std::invalid_argument("flowsim::Fabric::path: bad host pair");
  }
  const std::uint64_t h = path_hash(flow_id);
  out.push_back(host_up(src));
  if (kind_ == Kind::kLeafSpine) {
    const int l_src = static_cast<int>(src) / hosts_per_leaf_;
    const int l_dst = static_cast<int>(dst) / hosts_per_leaf_;
    if (l_src != l_dst) {
      const int s = static_cast<int>(h % static_cast<std::uint64_t>(spines_));
      out.push_back(leaf_up(l_src, s));
      out.push_back(spine_down(s, l_dst));
    }
  } else {
    const std::size_t half = static_cast<std::size_t>(k_) / 2;
    const std::size_t e_src = src / half;      // flat edge index
    const std::size_t e_dst = dst / half;
    const std::size_t p_src = e_src / half;    // pod
    const std::size_t p_dst = e_dst / half;
    if (e_src != e_dst) {
      const std::size_t a = h % half;  // pod-local agg choice (ECMP up at the edge)
      out.push_back(static_cast<LinkId>(ft_edge_up_base_ + e_src * half + a));
      if (p_src == p_dst) {
        out.push_back(static_cast<LinkId>(ft_agg_down_base_ + (p_src * half + a) * half +
                                          (e_dst % half)));
      } else {
        const std::size_t j = (h >> 16) % half;  // core choice within agg a's group
        out.push_back(static_cast<LinkId>(ft_agg_up_base_ + (p_src * half + a) * half + j));
        const std::size_t core = a * half + j;
        out.push_back(static_cast<LinkId>(ft_core_down_base_ + core * static_cast<std::size_t>(k_) +
                                          p_dst));
        // Core `a*half+j` homes on aggregation switch `a` of every pod.
        out.push_back(static_cast<LinkId>(ft_agg_down_base_ + (p_dst * half + a) * half +
                                          (e_dst % half)));
      }
    }
  }
  out.push_back(host_down(dst));
}

}  // namespace amrt::flowsim
