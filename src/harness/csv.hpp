// Minimal table/CSV emitter for benchmark output: fixed columns, aligned
// stdout rendering, optional CSV dump for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace amrt::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> columns) : columns_{std::move(columns)} {}

  // Cells are stringified by the caller-side helpers below.
  void add_row(std::vector<std::string> cells);

  void print(std::ostream& os) const;       // aligned, human-readable
  void print_csv(std::ostream& os) const;   // machine-readable

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

[[nodiscard]] std::string fmt(double v, int precision = 2);
[[nodiscard]] std::string fmt_pct(double fraction, int precision = 1);  // 0.368 -> "36.8%"

}  // namespace amrt::harness
