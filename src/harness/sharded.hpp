// Harness-side glue for partitioned runs.
//
// A sharded scenario keeps one FctRecorder per shard (observer callbacks
// fire on the owning shard's thread, and FctRecorder is not thread-safe) and
// resolves, per host, the Simulation the host's transport endpoint must be
// constructed against — the endpoint caches that scheduler and all its
// timers then live on the host's shard. After run() the per-shard recorders
// are folded, in shard order, into one merged recorder, so the combined
// record list is deterministic for a fixed shard count.
//
// Usage (bench_scale, fuzz, run_leaf_spine all follow this shape):
//   sim::ShardGroup group{seed, n};
//   net::Network network{group.master()};          // build against master
//   ... build topology, derive net::Partition ...
//   harness::ShardedScenario scen{group, network, part, rate, base_rtt};
//   for host: make_endpoint(proto, scen.sim_of(id), *host, cfg,
//                           &scen.recorder_of(id))
//   for flow: scen.sched_of(src).at(start, ...)    // start on the owner
//   scen.run({...});
//   scen.merged().completed() ...
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/partition.hpp"
#include "sim/shard.hpp"
#include "stats/fct.hpp"

namespace amrt::harness {

class ShardedScenario {
 public:
  ShardedScenario(sim::ShardGroup& group, net::Network& net, net::Partition part,
                  sim::Bandwidth reference_rate, sim::Duration base_rtt);

  [[nodiscard]] sim::ShardGroup& group() { return group_; }
  [[nodiscard]] const net::Partition& partition() const { return part_; }
  [[nodiscard]] unsigned shard_of(net::NodeId host) const { return part_.shard_of(host); }
  [[nodiscard]] sim::Simulation& sim_of(net::NodeId host) {
    return group_.shard(part_.shard_of(host));
  }
  [[nodiscard]] sim::Scheduler& sched_of(net::NodeId host) { return sim_of(host).scheduler(); }
  [[nodiscard]] stats::FctRecorder& recorder_of(net::NodeId host) {
    return *recorders_[part_.shard_of(host)];
  }

  struct RunLimits {
    std::uint64_t event_limit = 0;
    sim::TimePoint horizon = sim::TimePoint::max();
    std::string audit_context;  // repro line printed on a fail-fast audit abort
  };
  struct RunStatus {
    std::uint64_t rounds = 0;
    bool event_limit_hit = false;
    bool horizon_hit = false;
  };

  // Single-shot: binds the fabric to the shards and runs to global drain
  // (or a limit). Afterwards the master auditor holds the merged ledger and
  // merged() the combined flow records.
  RunStatus run(const RunLimits& limits);

  [[nodiscard]] const stats::FctRecorder& merged() const { return merged_; }
  [[nodiscard]] std::uint64_t events() const { return group_.events_processed(); }

 private:
  sim::ShardGroup& group_;
  net::Network& net_;
  net::Partition part_;
  std::vector<std::unique_ptr<stats::FctRecorder>> recorders_;  // one per shard
  stats::FctRecorder merged_;
};

}  // namespace amrt::harness
