// Fixed small-scale scenarios reproducing the paper's motivation and
// testbed figures. All of them are wired from net:: primitives with the
// per-protocol queue/marker factories, so the same code paths as the
// large-scale runs are exercised.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/factory.hpp"
#include "stats/fct.hpp"
#include "stats/timeseries.hpp"

namespace amrt::harness {

// --------------------------------------------------------------------------
// Two-bottleneck chain: S0 -> S1 -> S2 (Fig. 1 motivation and the Fig. 10/11
// testbed). A flow takes one of three paths over the chain.
// --------------------------------------------------------------------------

enum class ChainPath {
  kBoth,    // src under S0, dst under S2: crosses both bottlenecks
  kFirst,   // src under S0, dst under S1: crosses only S0->S1
  kSecond,  // src under S1, dst under S2: crosses only S1->S2
};

struct ChainFlow {
  ChainPath path = ChainPath::kBoth;
  std::uint64_t bytes = 0;
  sim::Duration start = sim::Duration::zero();
};

struct ChainConfig {
  transport::Protocol proto = transport::Protocol::kPhost;
  sim::Bandwidth link_rate = sim::Bandwidth::gbps(10);
  sim::Duration link_delay = sim::Duration::microseconds(12);  // ~100us RTT over 4 hops
  // Section 6's small-queue discipline: receiver-driven designs cap switch
  // queues at ~8 packets (NDP trims, the others drop). This is what keeps
  // the motivation scenarios at near-zero queueing; the large-scale runs
  // use Section 8.1's 128-packet buffers instead.
  core::QueueConfig queues{.buffer_pkts = 8, .trim_threshold = 8};
  int homa_overcommit = 2;
  std::vector<ChainFlow> flows;
  sim::Duration duration = sim::Duration::milliseconds(8);
  sim::Duration bin = sim::Duration::microseconds(100);
  // Seeded per-flow start jitter. Perfectly synchronized starts phase-lock
  // a deterministic simulator (one flow wins every drop-tail race); real
  // stacks and NS2 both carry natural jitter.
  sim::Duration start_jitter = sim::Duration::microseconds(20);
  std::uint64_t seed = 1;
};

struct TimelineResult {
  sim::Duration bin = sim::Duration::zero();
  // Per-flow receive throughput (Gbps) per bin; index matches config order.
  std::vector<std::vector<double>> flow_gbps;
  // Bottleneck utilization per sample (same cadence as `bin`).
  std::vector<double> bottleneck1_util;
  std::vector<double> bottleneck2_util;  // empty for single-bottleneck runs
  // Completion time per flow in ms (-1 if still running at the end).
  std::vector<double> flow_fct_ms;
  std::size_t max_queue_pkts = 0;
  double mean_util_b1 = 0;
  double mean_util_b2 = 0;
};

[[nodiscard]] TimelineResult run_chain(const ChainConfig& cfg);

// --------------------------------------------------------------------------
// Dynamic traffic on one shared bottleneck (Fig. 2 motivation, Fig. 8/9
// testbed): N flows with distinct sender/receiver pairs all cross S0 -> S1;
// staggered sizes make them finish one by one.
// --------------------------------------------------------------------------

struct DynamicFlow {
  std::uint64_t bytes = 0;
  sim::Duration start = sim::Duration::zero();
};

struct DynamicConfig {
  transport::Protocol proto = transport::Protocol::kPhost;
  sim::Bandwidth link_rate = sim::Bandwidth::gbps(10);
  sim::Duration link_delay = sim::Duration::microseconds(12);
  core::QueueConfig queues{.buffer_pkts = 8, .trim_threshold = 8};  // see ChainConfig
  int homa_overcommit = 2;
  std::vector<DynamicFlow> flows;
  sim::Duration duration = sim::Duration::milliseconds(8);
  sim::Duration bin = sim::Duration::microseconds(100);
  sim::Duration start_jitter = sim::Duration::microseconds(20);  // see ChainConfig
  std::uint64_t seed = 1;
  // Ablation knobs for the AMRT mechanism (defaults = the paper's design).
  std::uint32_t marker_probe_bytes = net::kMtuBytes;
  std::uint16_t amrt_marked_allowance = 2;
};

[[nodiscard]] TimelineResult run_dynamic(const DynamicConfig& cfg);

// --------------------------------------------------------------------------
// Many-to-many with unresponsive senders (Fig. 14): 40 senders under two
// leaves each open one connection to each of two receivers under a third
// leaf; only a fraction of senders answer grants. Compares AMRT's marking
// against Homa's fixed overcommitment.
// --------------------------------------------------------------------------

struct ManyToManyConfig {
  transport::Protocol proto = transport::Protocol::kHoma;
  int senders_per_leaf = 20;
  int spines = 2;
  double responsive_ratio = 0.5;
  int homa_overcommit = 2;
  std::uint64_t flow_bytes = 10'000'000;
  sim::Bandwidth link_rate = sim::Bandwidth::gbps(10);
  sim::Duration link_delay = sim::Duration::microseconds(10);
  core::QueueConfig queues{};
  sim::Duration duration = sim::Duration::milliseconds(20);
  std::uint64_t seed = 1;
};

struct ManyToManyResult {
  double mean_downlink_util = 0;  // over the two receiver downlinks
  std::size_t max_queue_pkts = 0; // at the receiver downlinks
  double mean_queue_pkts = 0;
  std::size_t responsive_senders = 0;
};

[[nodiscard]] ManyToManyResult run_many_to_many(const ManyToManyConfig& cfg);

// --------------------------------------------------------------------------
// Incast (Section 8.2 / Section 6): N synchronized senders, one receiver,
// small switch buffers — the stress test for the 8-packet drop threshold.
// --------------------------------------------------------------------------

struct IncastConfig {
  transport::Protocol proto = transport::Protocol::kAmrt;
  int senders = 32;
  std::uint64_t bytes_per_sender = 64'000;
  sim::Bandwidth link_rate = sim::Bandwidth::gbps(10);
  sim::Duration link_delay = sim::Duration::microseconds(5);
  core::QueueConfig queues{};
  sim::Duration max_time = sim::Duration::milliseconds(200);
  std::uint64_t seed = 1;
};

struct IncastResult {
  stats::FctSummary fct;
  std::size_t max_queue_pkts = 0;
  std::uint64_t drops = 0;
  std::uint64_t trims = 0;
  double goodput_gbps = 0;  // aggregate payload rate until the last completion
};

[[nodiscard]] IncastResult run_incast(const IncastConfig& cfg);

}  // namespace amrt::harness
