// Parallel sweep/campaign runner.
//
// Every figure in the paper is a sweep: a grid of experiment points
// (protocol x workload x load x ...) evaluated independently. Each point
// builds its own `sim::Simulation`, so points share no mutable state and
// can run on a thread pool; results are written into a vector indexed by
// input position, making parallel output byte-identical to serial (see
// tests/test_determinism.cpp).
//
// The generic `map` runs any per-index function; `run` is the
// `ExperimentConfig` convenience used by the FCT/utilization figures, with
// JSON export for downstream plotting.
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <utility>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/options.hpp"

namespace amrt::harness {

struct SweepOptions {
  // 0 = one thread per hardware core.
  unsigned threads = 0;
  // Called after each point completes (serialized; `done` points of `total`
  // are finished). For progress meters on long sweeps.
  std::function<void(std::size_t done, std::size_t total)> on_progress;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions opts = {});

  [[nodiscard]] unsigned threads() const { return threads_; }

  // Deterministic parallel for: fn(0) .. fn(n-1), each exactly once. Blocks
  // until all complete; the first exception thrown by any point is
  // rethrown. Points may run on any worker in any order.
  void for_each(std::size_t n, const std::function<void(std::size_t)>& fn);

  // Deterministic parallel map: out[i] = fn(i), input order preserved.
  template <typename R, typename Fn>
  [[nodiscard]] std::vector<R> map(std::size_t n, Fn&& fn) {
    std::vector<R> out(n);
    for_each(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  // map over a vector of sweep points: out[i] = fn(points[i]).
  template <typename T, typename Fn>
  [[nodiscard]] auto map_points(const std::vector<T>& points, Fn&& fn)
      -> std::vector<decltype(fn(points.front()))> {
    using R = decltype(fn(points.front()));
    std::vector<R> out(points.size());
    for_each(points.size(), [&](std::size_t i) { out[i] = fn(points[i]); });
    return out;
  }

  // Runs `run_leaf_spine` over every point.
  [[nodiscard]] std::vector<ExperimentResult> run(const std::vector<ExperimentConfig>& points);

 private:
  unsigned threads_;
  std::function<void(std::size_t, std::size_t)> on_progress_;
};

// Machine-readable sweep export: a JSON array with one object per point
// (config knobs + summary metrics; per-flow records are deliberately
// omitted — use write_fct_csv for those).
void write_results_json(std::ostream& os, const std::vector<ExperimentConfig>& points,
                        const std::vector<ExperimentResult>& results);

// Runner wired from the shared bench flags: --threads= plus a stderr
// progress meter ("tag 3/48").
[[nodiscard]] SweepRunner make_bench_runner(const BenchOptions& opts, const char* tag);

// Writes `write_results_json` to opts.json_path when --json= was given.
void export_json_if_requested(const BenchOptions& opts,
                              const std::vector<ExperimentConfig>& points,
                              const std::vector<ExperimentResult>& results);

}  // namespace amrt::harness
