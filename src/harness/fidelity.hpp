// Fidelity dispatch (DESIGN.md §15): the flow-level and mixed-fidelity
// variants of the leaf-spine experiment, plus the flow-level fat-tree run
// that bench_scale uses to measure the fast path's headroom.
//
// Both variants replay the exact packet-path workload: flow generation draws
// from a fresh sim::Rng{cfg.seed}, which is the same stream the packet
// simulator's own Simulation{seed} feeds to the traffic engine, so the two
// fidelities see the same flows, sizes and start times draw for draw.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "flowsim/flowsim.hpp"
#include "harness/experiment.hpp"
#include "net/topology.hpp"

namespace amrt::harness {

// Flow-level leaf-spine run. Honors proto (via rate_model_for),
// engine/workload/load/n_flows, topology shape, background_dctcp_fraction
// (background flows get the DCTCP rate model) and seed. Serial-only;
// throws on shards > 1 or fault injection.
[[nodiscard]] ExperimentResult run_leaf_spine_flow(const ExperimentConfig& cfg);

// Mixed fidelity: flows tagged background by
// is_background_flow(id, cfg.flow_background_fraction) run at flow level
// first; their binned per-link usage becomes scheduled rate reservations
// (EgressPort::set_rate_scale) on the packet fabric, which then carries the
// foreground flows. fct_foreground/fct_background report the two sides;
// fct_all merges the records.
[[nodiscard]] ExperimentResult run_leaf_spine_mixed(const ExperimentConfig& cfg);

// The packet transport's fluid analogue: kAmrt -> the anti-ECN grant-clock
// ramp, kDctcp -> threshold-ECN additive increase, everything else (phost /
// homa / ndp schedule at wire speed per grant) -> instant max-min.
[[nodiscard]] flowsim::RateModel rate_model_for(transport::Protocol proto);

// Flow-level fat-tree run for bench_scale --fidelity=flow: same websearch
// workload and seed stream as bench_scale's packet run_one.
struct FlowFatTreeResult {
  std::uint64_t events = 0;
  std::uint64_t delivered_bytes = 0;
  std::size_t flows = 0;
  std::size_t completed = 0;
  double sim_seconds = 0.0;
};
[[nodiscard]] FlowFatTreeResult run_fat_tree_flow(int k, transport::Protocol proto,
                                                  std::size_t n_flows, double load,
                                                  std::uint64_t seed);

namespace detail {

// A scheduled capacity reservation on one packet-fabric port (mixed mode).
struct RateScaleEvent {
  sim::TimePoint at{};
  net::PortId port{};
  double scale = 1.0;
};

// Optional knobs for the serial packet path. A null/empty overrides object
// leaves the run byte-identical to the historical serial path.
struct SerialOverrides {
  // Pre-generated schedule to run instead of invoking the traffic engine
  // (the caller has already drawn it from the seed stream).
  const std::vector<workload::GeneratedFlow>* flows = nullptr;
  // Called once after the fabric is built (port ids only exist then); the
  // returned events are scheduled before the clock starts.
  std::function<std::vector<RateScaleEvent>(const net::LeafSpine&)> rate_scale;
};

[[nodiscard]] ExperimentResult run_leaf_spine_serial(const ExperimentConfig& cfg,
                                                     const SerialOverrides* overrides);

// Shared generation step (traffic engine + optional trace dump + group
// registration), used by every fidelity.
std::vector<workload::GeneratedFlow> generate_flows(const ExperimentConfig& cfg,
                                                    std::size_t n_hosts, sim::Rng& rng,
                                                    stats::GroupBook& book);

}  // namespace detail

}  // namespace amrt::harness
