// Deterministic scenario fuzzer.
//
// Every case is a pure function of (seed, topology family, protocol): the
// seed drives a private parameter stream (fabric shape, link speeds, queue
// depths, workload, load, flow count) and the simulation's own stream, so a
// failure reproduces bit-identically from its one-line repro. Cases build
// sampler-free scenarios — no periodic monitors keep the event loop alive —
// and run the scheduler to natural drain, then check oracles that hold for
// every protocol on every topology:
//
//   * completion — every generated flow finishes (under an event-limit
//     safety valve that converts livelock into a reported failure);
//   * physics — each FCT is at least the flow's serialization time at the
//     NIC plus one link propagation;
//   * queue accounting — after drain every queue is empty and satisfies
//     enqueued == dequeued + dropped;
//   * audit — in AMRT_AUDIT builds, the run's Auditor (packet conservation,
//     byte ledgers, marked-grant allowance, anti-ECN Eq. 3, ...) reports
//     zero violations and a drained ledger.
//
// `run_fuzz` sweeps a seed range across topologies and protocols on the
// SweepRunner pool; because each case owns its Simulation, parallel results
// are byte-identical to serial (checked by tests/test_scenario_fuzz.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "transport/config.hpp"

namespace amrt::harness::fuzz {

enum class Topo : std::uint8_t { kLeafSpine, kDumbbell, kChain, kFatTree };

inline constexpr std::array<Topo, 4> kAllTopos = {Topo::kLeafSpine, Topo::kDumbbell, Topo::kChain,
                                                  Topo::kFatTree};

[[nodiscard]] const char* to_string(Topo t);
// Accepts "leafspine" / "leaf-spine" / "dumbbell" / "chain" / "fattree" /
// "fat-tree"; throws on junk.
[[nodiscard]] Topo topo_from_string(const std::string& s);

struct CaseConfig {
  std::uint64_t seed = 1;
  Topo topo = Topo::kLeafSpine;
  transport::Protocol proto = transport::Protocol::kAmrt;
  // Draw a fault schedule (link flaps, blackhole windows, rate dips against
  // switch egress ports) on top of the scenario. The fault draws extend the
  // parameter stream *after* every pre-existing draw, so cases with faults
  // off replay bit-identically to builds that predate fault injection.
  bool faults = false;
  // Partitioned execution: run the case on `shards` worker threads (fat-tree
  // and leaf-spine topologies only; the small dumbbell/chain fabrics have no
  // useful cut). Mutually exclusive with `faults` — the fault injector
  // mutates LinkState from a serial-only control path. The oracles are
  // unchanged: completion, physics, queue accounting and the (merged)
  // audit ledger must hold for every shard count.
  unsigned shards = 1;
  // Mixed transports (DESIGN.md §13): AMRT foreground plus a drawn fraction
  // of DCTCP background flows on a shared strict-priority fabric with both
  // ECN markers. Requires proto == kAmrt (the foreground transport); the
  // background fraction is drawn after every pre-existing draw, so non-mixed
  // cases replay bit-identically. Serial-only (mutually exclusive with
  // shards > 1). The oracles are unchanged — completion, physics, queue
  // accounting and the audit ledger hold for both populations.
  bool mixed = false;
  // Workload-engine cases (DESIGN.md §14): draw a non-legacy traffic engine
  // (skewed matrices with optional coflow groups, or front-end fan-out
  // requests) plus its knobs. All engine draws sit strictly after every
  // pre-existing draw — including the mixed draw — so cases with the flag
  // off replay bit-identically to builds that predate the engine layer. Adds
  // a fifth oracle: when every flow completes, every coflow group and every
  // fan-out request must be accounted complete by the GroupBook.
  bool engine = false;
};

struct CaseResult {
  bool ok = true;
  std::string failure;  // first violated oracle, "" when ok

  // Run fingerprint: FNV-1a over every completed flow record plus the
  // drop/trim/event counters. Two runs of one CaseConfig must agree bit for
  // bit (the replay-determinism oracle of the ctest smoke).
  std::uint64_t hash = 0;

  std::size_t flows = 0;
  std::size_t completed = 0;
  std::uint64_t events = 0;
  std::uint64_t drops = 0;
  std::uint64_t trims = 0;
  std::uint64_t faulted = 0;  // packets eaten by injected faults (0 without --faults)
  std::uint64_t audit_violations = 0;  // always 0 in non-audit builds
};

// The one-line reproduction command for a case.
[[nodiscard]] std::string repro_line(const CaseConfig& c);

// Builds, runs and checks one case. Sets the audit replay context to
// `repro_line(c)` so a fail-fast audit abort prints how to reproduce it.
[[nodiscard]] CaseResult run_case(const CaseConfig& c);

struct FuzzOptions {
  std::uint64_t first_seed = 1;
  std::uint64_t seeds = 25;  // per (topo, protocol) pair
  std::vector<Topo> topos{kAllTopos.begin(), kAllTopos.end()};
  std::vector<transport::Protocol> protocols{
      transport::Protocol::kAmrt, transport::Protocol::kPhost, transport::Protocol::kHoma,
      transport::Protocol::kNdp};
  bool faults = false;   // inject a drawn fault schedule into every case
  // Run every case partitioned across this many shards. Values > 1 restrict
  // the sweep to the partitionable topologies (fat-tree, leaf-spine).
  unsigned shards = 1;
  // Mixed-transport cases: AMRT foreground + DCTCP background. Restricts the
  // protocol axis to kAmrt (the foreground transport is fixed; the DCTCP
  // population rides inside the case). Mutually exclusive with shards > 1.
  bool mixed = false;
  // Workload-engine cases: every case draws a non-legacy traffic engine and
  // its knobs (see CaseConfig::engine).
  bool engine = false;
  unsigned threads = 0;  // SweepRunner: 0 = one per hardware core
  // Called after each case (serialized), for progress/reporting.
  std::function<void(const CaseConfig&, const CaseResult&)> on_case;
};

struct FuzzReport {
  std::size_t cases = 0;
  std::size_t failures = 0;
  // One "<repro line>  # <failure>" entry per failing case, input order.
  std::vector<std::string> failure_lines;
};

[[nodiscard]] FuzzReport run_fuzz(const FuzzOptions& opts);

}  // namespace amrt::harness::fuzz
