#include "harness/csv.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace amrt::harness {

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) os << std::string(width[c] - cells[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit(columns_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < columns_.size(); ++c) total += width[c] + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) os << ',';
    }
    os << '\n';
  };
  emit(columns_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace amrt::harness
