#include "harness/fidelity.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>

#include "net/packet.hpp"
#include "workload/generator.hpp"
#include "workload/workloads.hpp"

namespace amrt::harness {

flowsim::RateModel rate_model_for(transport::Protocol proto) {
  switch (proto) {
    case transport::Protocol::kAmrt: return flowsim::RateModel::kAmrtGrantClock;
    case transport::Protocol::kDctcp: return flowsim::RateModel::kDctcpThreshold;
    case transport::Protocol::kPhost:
    case transport::Protocol::kHoma:
    case transport::Protocol::kNdp:
      // Grant-per-packet schedulers re-pace within an RTT of any share
      // change; the fluid analogue is the ideal max-min rate.
      return flowsim::RateModel::kInstant;
  }
  return flowsim::RateModel::kInstant;
}

namespace {

void check_serial_only(const ExperimentConfig& cfg, const char* what) {
  if (cfg.shards > 1) {
    throw std::invalid_argument(std::string("run_leaf_spine: ") + what +
                                " is serial-only (shards must be 1)");
  }
  if (cfg.fault_incidents > 0) {
    throw std::invalid_argument(std::string("run_leaf_spine: ") + what +
                                " does not compose with fault injection");
  }
}

// The packet path's timing constants, translated for the fluid engine:
// same base RTT (grant-clock cadence), payload-fraction goodput derate,
// and the store-and-forward pipeline of the last packet as the completion
// latency.
flowsim::FlowSimConfig flow_config(const ExperimentConfig& cfg, int hops) {
  flowsim::FlowSimConfig fs;
  fs.rtt = net::path_base_rtt(hops, cfg.link_rate, cfg.link_delay);
  fs.payload_fraction =
      static_cast<double>(net::kMssBytes) / static_cast<double>(net::kMtuBytes);
  fs.prop_delay = cfg.link_delay;
  fs.mtu_tx = cfg.link_rate.tx_time(net::kMtuBytes);
  fs.mtu_bytes = net::kMtuBytes;
  fs.mss_bytes = net::kMssBytes;
  fs.max_time = sim::TimePoint::zero() + cfg.max_sim_time;
  return fs;
}

// Receiver-downlink utilization from the fluid per-link counters, mirroring
// the packet path's active-window semantics: a link is judged over
// [first_busy, last_busy] only, and the fleet mean is byte-weighted.
void fill_downlink_utilization(const flowsim::Fabric& fabric, const flowsim::FlowSim& fsim,
                               double payload_fraction, ExperimentResult& out) {
  double util_sum = 0.0;
  double weight_sum = 0.0;
  out.downlink_utilization.reserve(fabric.n_hosts());
  for (std::size_t h = 0; h < fabric.n_hosts(); ++h) {
    const flowsim::LinkId l = fabric.host_down(h);
    const double bytes = fsim.link_bytes(l);
    double util = 0.0;
    if (bytes > 0.0) {
      const double window = (fsim.link_last_busy(l) - fsim.link_first_busy(l)).to_seconds();
      if (window > 0.0) {
        // Wire occupancy: payload bytes re-inflated by the header share.
        util = std::min(1.0, bytes / payload_fraction * 8.0 /
                                 (fabric.capacity_bps(l) * window));
        util_sum += util * bytes;
        weight_sum += bytes;
      }
    }
    out.downlink_utilization.push_back(util);
  }
  out.mean_utilization = weight_sum == 0.0 ? 0.0 : util_sum / weight_sum;
}

void fill_fct_results(const stats::FctRecorder& recorder, const stats::GroupBook& book,
                      ExperimentResult& out) {
  out.fct_all = recorder.summarize();
  out.fct_small = recorder.summarize(0, 100'000);
  out.fct_large = recorder.summarize(1'000'000, UINT64_MAX);
  out.flows_started = recorder.started_count();
  out.flows_completed = recorder.completed().size();
  out.flow_records = recorder.completed();
  if (!book.empty()) {
    book.annotate(out.flow_records);
    out.group_stats = book.group_stats(out.flow_records);
    out.request_stats = book.request_stats(out.flow_records);
  }
  out.bytes_delivered = recorder.bytes_delivered();
}

}  // namespace

ExperimentResult run_leaf_spine_flow(const ExperimentConfig& cfg) {
  const auto wall_start = std::chrono::steady_clock::now();
  check_serial_only(cfg, "flow fidelity");
  const bool mixed_transport = cfg.background_dctcp_fraction > 0.0;
  if (mixed_transport && cfg.proto != transport::Protocol::kAmrt) {
    throw std::invalid_argument(
        "run_leaf_spine: background_dctcp_fraction pairs DCTCP background with AMRT "
        "foreground; set proto = kAmrt");
  }

  const flowsim::Fabric fabric =
      flowsim::Fabric::leaf_spine(cfg.leaves, cfg.spines, cfg.hosts_per_leaf, cfg.link_rate);
  const flowsim::FlowSimConfig fscfg = flow_config(cfg, 4);
  flowsim::FlowSim fsim{fabric, fscfg};

  // Same stream Simulation{seed} hands the packet path: identical schedule.
  sim::Rng rng{cfg.seed};
  stats::GroupBook book;
  const auto flows = detail::generate_flows(cfg, fabric.n_hosts(), rng, book);
  if (flows.empty()) return {};

  const flowsim::RateModel fg_model = rate_model_for(cfg.proto);
  for (const auto& f : flows) {
    const flowsim::RateModel model =
        mixed_transport && is_background_flow(f.id, cfg.background_dctcp_fraction)
            ? flowsim::RateModel::kDctcpThreshold
            : fg_model;
    fsim.add_flow(f.id, f.src_host, f.dst_host, f.bytes, f.start, model);
  }

  stats::FctRecorder recorder{cfg.link_rate, fscfg.rtt};
  const flowsim::FlowSimResult run = fsim.run(&recorder);

  ExperimentResult out;
  fill_fct_results(recorder, book, out);
  out.events = run.events;
  out.sim_seconds = run.end_time.to_seconds();

  if (mixed_transport) {
    std::vector<stats::FlowRecord> fg;
    std::vector<stats::FlowRecord> bg;
    for (const auto& r : out.flow_records) {
      (is_background_flow(r.flow, cfg.background_dctcp_fraction) ? bg : fg).push_back(r);
    }
    out.fct_foreground = summarize_records(fg);
    out.fct_background = summarize_records(bg);
  } else {
    out.fct_foreground = out.fct_all;
  }

  fill_downlink_utilization(fabric, fsim, fscfg.payload_fraction, out);

  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  return out;
}

ExperimentResult run_leaf_spine_mixed(const ExperimentConfig& cfg) {
  const auto wall_start = std::chrono::steady_clock::now();
  check_serial_only(cfg, "mixed fidelity");
  if (cfg.background_dctcp_fraction > 0.0) {
    throw std::invalid_argument(
        "run_leaf_spine: mixed fidelity and mixed transports are exclusive "
        "(the fluid side is the background class; use flow_background_fraction)");
  }
  const double frac = cfg.flow_background_fraction;
  if (frac <= 0.0 || frac >= 1.0) {
    throw std::invalid_argument(
        "run_leaf_spine: mixed fidelity needs flow_background_fraction in (0, 1)");
  }

  // The full schedule, drawn exactly as the pure-packet run would draw it.
  const flowsim::Fabric fabric =
      flowsim::Fabric::leaf_spine(cfg.leaves, cfg.spines, cfg.hosts_per_leaf, cfg.link_rate);
  sim::Rng rng{cfg.seed};
  stats::GroupBook book;
  const auto all = detail::generate_flows(cfg, fabric.n_hosts(), rng, book);
  if (all.empty()) return {};

  std::vector<workload::GeneratedFlow> foreground;
  std::vector<workload::GeneratedFlow> background;
  for (const auto& f : all) {
    (is_background_flow(f.id, frac) ? background : foreground).push_back(f);
  }

  // Pass 1: the background class at flow level, recording per-link usage.
  const flowsim::FlowSimConfig fscfg = flow_config(cfg, 4);
  flowsim::FlowSim fsim{fabric, fscfg};
  // Reservation bin: a handful of RTTs smooths grant-clock ripple without
  // hiding shifts in the background load.
  const sim::Duration bin = std::max(cfg.sample_interval, fscfg.rtt * 8);
  fsim.record_link_usage(bin);
  const flowsim::RateModel model = rate_model_for(cfg.proto);
  for (const auto& f : background) {
    fsim.add_flow(f.id, f.src_host, f.dst_host, f.bytes, f.start, model);
  }
  stats::FctRecorder bg_recorder{cfg.link_rate, fscfg.rtt};
  const flowsim::FlowSimResult bg_run = fsim.run(&bg_recorder);

  // Pass 2: the foreground class at packet level, against scheduled
  // capacity reservations on the switch ports the fluid side occupied.
  // (Host NIC uplinks have no switch port; their contention is the
  // documented approximation of this one-way coupling.)
  detail::SerialOverrides ov;
  ov.flows = &foreground;
  ov.rate_scale = [&](const net::LeafSpine& topo) {
    std::vector<detail::RateScaleEvent> evs;
    const auto& usage = fsim.link_usage();
    auto emit = [&](flowsim::LinkId l, net::PortId port) {
      const auto& lane = usage[l];
      double prev = 1.0;
      for (std::size_t b = 0; b <= lane.size(); ++b) {
        const double used = b < lane.size() ? lane[b] : 0.0;  // trailing restore
        // The packet side keeps whatever wire share the fluid side left.
        double scale =
            1.0 - used / fscfg.payload_fraction * 8.0 / fabric.capacity_bps(l);
        scale = std::clamp(scale, 0.05, 1.0);
        if (std::abs(scale - prev) < 0.01) continue;
        evs.push_back({sim::TimePoint::zero() + bin * static_cast<std::int64_t>(b), port,
                       scale});
        prev = scale;
      }
    };
    for (int l = 0; l < cfg.leaves; ++l) {
      for (int h = 0; h < cfg.hosts_per_leaf; ++h) {
        emit(fabric.host_down(static_cast<std::size_t>(l) * cfg.hosts_per_leaf + h),
             topo.leaf_down[static_cast<std::size_t>(l)][static_cast<std::size_t>(h)]);
      }
      for (int s = 0; s < cfg.spines; ++s) {
        emit(fabric.leaf_up(l, s),
             topo.leaf_up[static_cast<std::size_t>(l)][static_cast<std::size_t>(s)]);
        emit(fabric.spine_down(s, l),
             topo.spine_down[static_cast<std::size_t>(s)][static_cast<std::size_t>(l)]);
      }
    }
    return evs;
  };

  ExperimentResult out = detail::run_leaf_spine_serial(cfg, &ov);

  // Merge: foreground (packet) + background (fluid) records.
  out.fct_foreground = out.fct_all;
  out.fct_background = summarize_records(bg_recorder.completed());
  std::vector<stats::FlowRecord> merged = out.flow_records;
  merged.insert(merged.end(), bg_recorder.completed().begin(), bg_recorder.completed().end());
  std::sort(merged.begin(), merged.end(), [](const stats::FlowRecord& a, const stats::FlowRecord& b) {
    return a.start != b.start ? a.start < b.start : a.flow < b.flow;
  });
  out.fct_all = summarize_records(merged);
  auto summarize_band = [&](std::uint64_t lo, std::uint64_t hi) {
    std::vector<stats::FlowRecord> band;
    for (const auto& r : merged) {
      if (r.bytes >= lo && r.bytes < hi) band.push_back(r);
    }
    return summarize_records(band);
  };
  out.fct_small = summarize_band(0, 100'000);
  out.fct_large = summarize_band(1'000'000, UINT64_MAX);
  out.flow_records = std::move(merged);
  if (!book.empty()) {
    book.annotate(out.flow_records);
    out.group_stats = book.group_stats(out.flow_records);
    out.request_stats = book.request_stats(out.flow_records);
  }
  out.flows_started += bg_run.started;
  out.flows_completed += bg_recorder.completed().size();
  out.bytes_delivered += bg_recorder.bytes_delivered();
  out.events += bg_run.events;
  out.sim_seconds = std::max(out.sim_seconds, bg_run.end_time.to_seconds());
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  return out;
}

FlowFatTreeResult run_fat_tree_flow(int k, transport::Protocol proto, std::size_t n_flows,
                                    double load, std::uint64_t seed) {
  const net::FatTreeConfig defaults;  // rate/delay shared with the packet bench
  const flowsim::Fabric fabric = flowsim::Fabric::fat_tree(k, defaults.link_rate);

  flowsim::FlowSimConfig fscfg;
  fscfg.rtt = net::path_base_rtt(6, defaults.link_rate, defaults.link_delay);
  fscfg.payload_fraction =
      static_cast<double>(net::kMssBytes) / static_cast<double>(net::kMtuBytes);
  fscfg.prop_delay = defaults.link_delay;
  fscfg.mtu_tx = defaults.link_rate.tx_time(net::kMtuBytes);
  fscfg.mtu_bytes = net::kMtuBytes;
  fscfg.mss_bytes = net::kMssBytes;

  // Same draws as bench_scale's packet run_one (Simulation{seed}'s stream).
  sim::Rng rng{seed};
  workload::FlowGenerator gen{workload::cdf(workload::Kind::kWebSearch), rng};
  workload::TrafficConfig traffic;
  traffic.load = load;
  traffic.n_flows = n_flows;
  traffic.n_hosts = fabric.n_hosts();
  traffic.host_rate = defaults.link_rate;
  const auto flows = gen.generate(traffic);

  flowsim::FlowSim fsim{fabric, fscfg};
  const flowsim::RateModel model = rate_model_for(proto);
  for (const auto& f : flows) {
    fsim.add_flow(f.id, f.src_host, f.dst_host, f.bytes, f.start, model);
  }
  stats::FctRecorder recorder{defaults.link_rate, fscfg.rtt};
  const flowsim::FlowSimResult run = fsim.run(&recorder);

  FlowFatTreeResult r;
  r.events = run.events;
  r.delivered_bytes = recorder.bytes_delivered();
  r.flows = flows.size();
  r.completed = recorder.completed().size();
  r.sim_seconds = run.end_time.to_seconds();
  return r;
}

}  // namespace amrt::harness
