#include "harness/sharded.hpp"

namespace amrt::harness {

ShardedScenario::ShardedScenario(sim::ShardGroup& group, net::Network& net, net::Partition part,
                                 sim::Bandwidth reference_rate, sim::Duration base_rtt)
    : group_{group}, net_{net}, part_{std::move(part)}, merged_{reference_rate, base_rtt} {
  recorders_.reserve(part_.n_shards);
  for (unsigned i = 0; i < part_.n_shards; ++i) {
    recorders_.push_back(std::make_unique<stats::FctRecorder>(reference_rate, base_rtt));
    // Starts book at the sender, completions at the receiver — possibly on
    // another shard. merge_from pairs the halves after the run.
    if (part_.n_shards > 1) recorders_.back()->set_cross_shard(true);
  }
}

ShardedScenario::RunStatus ShardedScenario::run(const RunLimits& limits) {
  net::ShardedRunner::Config cfg;
  cfg.event_limit = limits.event_limit;
  cfg.horizon = limits.horizon;
  cfg.audit_context = limits.audit_context;
  net::ShardedRunner runner{net_, part_, group_, std::move(cfg)};
  runner.run();

  for (const auto& rec : recorders_) merged_.merge_from(*rec);

  RunStatus st;
  st.rounds = runner.rounds();
  st.event_limit_hit = runner.event_limit_hit();
  st.horizon_hit = runner.horizon_hit();
  return st;
}

}  // namespace amrt::harness
