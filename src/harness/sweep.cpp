#include "harness/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <string>
#include <thread>

namespace amrt::harness {

namespace {
unsigned resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  if (const char* env = std::getenv("AMRT_SWEEP_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}
}  // namespace

SweepRunner::SweepRunner(SweepOptions opts)
    : threads_{resolve_threads(opts.threads)}, on_progress_{std::move(opts.on_progress)} {}

void SweepRunner::for_each(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;

  const unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(threads_, n));
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex mu;  // guards first_error and the progress callback
  std::exception_ptr first_error;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock{mu};
        if (!first_error) first_error = std::current_exception();
      }
      const std::size_t finished = done.fetch_add(1, std::memory_order_relaxed) + 1;
      if (on_progress_) {
        std::lock_guard<std::mutex> lock{mu};
        on_progress_(finished, n);
      }
    }
  };

  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  if (first_error) std::rethrow_exception(first_error);
}

std::vector<ExperimentResult> SweepRunner::run(const std::vector<ExperimentConfig>& points) {
  return map_points(points, [](const ExperimentConfig& cfg) { return run_leaf_spine(cfg); });
}

SweepRunner make_bench_runner(const BenchOptions& opts, const char* tag) {
  SweepOptions sopts;
  sopts.threads = opts.threads;
  const std::string name = tag;
  sopts.on_progress = [name](std::size_t done, std::size_t total) {
    std::fprintf(stderr, "  %s %zu/%zu\n", name.c_str(), done, total);
  };
  return SweepRunner{sopts};
}

void export_json_if_requested(const BenchOptions& opts,
                              const std::vector<ExperimentConfig>& points,
                              const std::vector<ExperimentResult>& results) {
  if (opts.json_path.empty()) return;
  std::ofstream out{opts.json_path};
  if (!out) throw std::runtime_error("cannot open --json path: " + opts.json_path);
  write_results_json(out, points, results);
}

void write_results_json(std::ostream& os, const std::vector<ExperimentConfig>& points,
                        const std::vector<ExperimentResult>& results) {
  os << "[\n";
  const std::size_t n = std::min(points.size(), results.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto& c = points[i];
    const auto& r = results[i];
    os << "  {\"proto\":\"" << transport::to_string(c.proto) << "\""
       << ",\"workload\":\"" << workload::abbrev(c.workload) << "\""
       << ",\"engine\":\"" << workload::to_string(c.engine.engine) << "\""
       << ",\"load\":" << c.load
       << ",\"n_flows\":" << c.n_flows
       << ",\"seed\":" << c.seed
       << ",\"leaves\":" << c.leaves
       << ",\"spines\":" << c.spines
       << ",\"hosts_per_leaf\":" << c.hosts_per_leaf
       << ",\"afct_us\":" << r.fct_all.afct_us
       << ",\"p99_us\":" << r.fct_all.p99_us
       << ",\"small_afct_us\":" << r.fct_small.afct_us
       << ",\"large_afct_us\":" << r.fct_large.afct_us
       << ",\"mean_slowdown\":" << r.fct_all.mean_slowdown
       << ",\"utilization\":" << r.mean_utilization
       << ",\"max_queue_pkts\":" << r.max_queue_pkts
       << ",\"drops\":" << r.drops
       << ",\"trims\":" << r.trims
       << ",\"faulted\":" << r.faulted
       << ",\"bytes_delivered\":" << r.bytes_delivered
       << ",\"flows_started\":" << r.flows_started
       << ",\"flows_completed\":" << r.flows_completed
       << ",\"groups\":" << r.group_stats.groups
       << ",\"groups_complete\":" << r.group_stats.complete
       << ",\"group_p99_us\":" << r.group_stats.p99_us
       << ",\"requests\":" << r.request_stats.groups
       << ",\"requests_complete\":" << r.request_stats.complete
       << ",\"request_p99_us\":" << r.request_stats.p99_us
       << ",\"events\":" << r.events
       << ",\"sim_seconds\":" << r.sim_seconds
       << ",\"wall_seconds\":" << r.wall_seconds
       << "}" << (i + 1 < n ? "," : "") << "\n";
  }
  os << "]\n";
}

}  // namespace amrt::harness
