#include "harness/fuzz.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "audit/auditor.hpp"
#include "core/factory.hpp"
#include "fault/fault.hpp"
#include "harness/experiment.hpp"
#include "harness/sharded.hpp"
#include "harness/sweep.hpp"
#include "net/partition.hpp"
#include "net/topology.hpp"
#include "sim/shard.hpp"
#include "sim/simulation.hpp"
#include "stats/fct.hpp"
#include "stats/group.hpp"
#include "workload/generator.hpp"
#include "workload/traffic.hpp"
#include "workload/workloads.hpp"

namespace amrt::harness::fuzz {

namespace {

using transport::Protocol;

// Splitmix-style finalizer: one seed, salted per (topo, protocol), yields
// independent parameter streams so `--seed 7 --topo chain --transport ndp`
// shares nothing with the same seed on another axis.
std::uint64_t mix(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (salt + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t case_salt(const CaseConfig& c) {
  return (static_cast<std::uint64_t>(c.topo) << 8) | static_cast<std::uint64_t>(c.proto) |
         (c.mixed ? (1ULL << 16) : 0ULL) | (c.engine ? (1ULL << 17) : 0ULL);
}

struct Fnv {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFFu;
      h *= 1099511628211ULL;
    }
  }
};

// Everything a case draws before the simulation starts.
struct CaseParams {
  // Fabric.
  int leaves = 2, spines = 1, hosts_per_leaf = 2;  // leaf-spine
  int left_hosts = 2, right_hosts = 2;             // dumbbell
  int chain_switches = 2, hosts_per_switch = 1;    // chain
  int fat_k = 4;                                   // fat-tree
  sim::Bandwidth link_rate = sim::Bandwidth::gbps(10);
  sim::Duration link_delay = sim::Duration::microseconds(10);
  core::QueueConfig queues;
  // Traffic.
  workload::Kind workload = workload::Kind::kWebSearch;
  double load = 0.5;
  std::size_t n_flows = 16;
  // Mixed cases only: fraction of flows (by id residue) that run DCTCP.
  double background_fraction = 0.0;
  // Engine cases only: drawn traffic-engine spec; the default is the legacy
  // engine, which generates draw-for-draw like the old FlowGenerator.
  workload::WorkloadSpec spec{};
};

CaseParams draw_params(const CaseConfig& c, sim::Rng& rng) {
  CaseParams p;
  p.leaves = static_cast<int>(rng.uniform_int(2, 3));
  p.spines = static_cast<int>(rng.uniform_int(1, 2));
  p.hosts_per_leaf = static_cast<int>(rng.uniform_int(2, 4));
  p.left_hosts = static_cast<int>(rng.uniform_int(2, 5));
  p.right_hosts = static_cast<int>(rng.uniform_int(2, 5));
  p.chain_switches = static_cast<int>(rng.uniform_int(2, 4));
  p.hosts_per_switch = static_cast<int>(rng.uniform_int(1, 2));

  static constexpr int kRates[] = {10, 25, 40};
  p.link_rate = sim::Bandwidth::gbps(kRates[rng.index(3)]);
  p.link_delay = sim::Duration::microseconds(rng.uniform_int(1, 50));

  static constexpr std::size_t kBuffers[] = {8, 16, 32, 64, 128};
  p.queues.buffer_pkts = kBuffers[rng.index(5)];
  static constexpr std::size_t kTrim[] = {4, 8, 16};
  p.queues.trim_threshold = kTrim[rng.index(3)];
  // AMRT's selective-drop discipline is an orthogonal switch feature; flip
  // it per case so both admission paths get fuzzed.
  p.queues.selective_drop = c.proto == Protocol::kAmrt && rng.bernoulli(0.5);

  p.workload = workload::kAllKinds[rng.index(workload::kAllKinds.size())];
  p.load = rng.uniform(0.3, 0.8);
  p.n_flows = static_cast<std::size_t>(rng.uniform_int(8, 40));
  // Drawn last so the older topologies' parameter streams are unchanged.
  p.fat_k = rng.bernoulli(0.5) ? 6 : 4;
  // Mixed-only draw, strictly after every single-transport draw: non-mixed
  // cases consume exactly the old stream.
  if (c.mixed) p.background_fraction = rng.uniform(0.2, 0.7);
  // Engine-only draws, strictly after everything above (including the mixed
  // draw): non-engine cases consume exactly the old stream.
  if (c.engine) {
    if (rng.bernoulli(0.5)) {
      p.spec.engine = workload::Engine::kSkewed;
      p.spec.pairs = rng.bernoulli(0.5) ? workload::PairModel::kHotRack
                                        : workload::PairModel::kPermutation;
      p.spec.arrivals = rng.bernoulli(0.5) ? workload::ArrivalModel::kPoisson
                                           : workload::ArrivalModel::kFixedRate;
      p.spec.skew.hosts_per_rack = static_cast<std::size_t>(rng.uniform_int(2, 4));
      p.spec.skew.hot_rack_fraction = rng.uniform(0.2, 0.6);
      p.spec.skew.hot_weight = rng.uniform(0.5, 0.9);
      p.spec.skew.locality = rng.uniform(0.1, 0.5);
      if (rng.bernoulli(0.5)) {
        p.spec.coflow_fraction = rng.uniform(0.1, 0.4);
        p.spec.coflow_width = static_cast<std::size_t>(rng.uniform_int(2, 4));
      }
    } else {
      p.spec.engine = workload::Engine::kFanout;
      p.spec.fanout = static_cast<std::size_t>(rng.uniform_int(2, 6));
      p.spec.response_bytes = rng.bernoulli(0.5) ? rng.uniform_int(2'000, 40'000) : 0;
    }
  }
  return p;
}

// Factory selection shared by the four topology builders: mixed cases get
// the strict-priority fabric with both ECN markers; everything else keeps
// the per-protocol factories bit-for-bit.
net::QueueFactory case_queue_factory(const CaseConfig& c, const CaseParams& p) {
  return c.mixed ? core::make_mixed_queue_factory(p.queues)
                 : core::make_queue_factory(c.proto, p.queues);
}

net::MarkerFactory case_marker_factory(const CaseConfig& c, const CaseParams& p) {
  return c.mixed ? core::make_mixed_marker_factory(p.queues) : core::make_marker_factory(c.proto);
}

// A built scenario ready to run: the network plus per-host endpoints and
// the base RTT the transports were configured with.
struct Scenario {
  std::vector<net::Host*> hosts;
  std::vector<transport::TransportEndpoint*> endpoints;
  sim::Duration base_rtt = sim::Duration::zero();
};

Scenario build_leaf_spine_case(net::Network& network, const CaseConfig& c, const CaseParams& p) {
  net::LeafSpineConfig topo_cfg;
  topo_cfg.leaves = p.leaves;
  topo_cfg.spines = p.spines;
  topo_cfg.hosts_per_leaf = p.hosts_per_leaf;
  topo_cfg.link_rate = p.link_rate;
  topo_cfg.link_delay = p.link_delay;
  topo_cfg.host_nic_queue_pkts = p.queues.host_nic_pkts;
  topo_cfg.queue_factory = case_queue_factory(c, p);
  topo_cfg.marker_factory = case_marker_factory(c, p);
  net::LeafSpine topo = net::build_leaf_spine(network, topo_cfg);
  Scenario s;
  s.hosts = topo.hosts;
  s.base_rtt = topo.base_rtt;
  return s;
}

Scenario build_dumbbell_case(net::Network& network, const CaseConfig& c, const CaseParams& p) {
  auto qf = case_queue_factory(c, p);
  auto mf = case_marker_factory(c, p);
  auto marker = [&]() -> std::unique_ptr<net::DequeueMarker> { return mf ? mf() : nullptr; };
  const auto rate = p.link_rate;
  const auto delay = p.link_delay;

  const net::SwitchId left = network.add_switch();
  const net::SwitchId right = network.add_switch();
  const net::PortId l_to_r =
      network.add_switch_port(left, network.id_of(right), rate, delay, qf(false), marker());
  const net::PortId r_to_l =
      network.add_switch_port(right, network.id_of(left), rate, delay, qf(false), marker());

  std::vector<net::HostId> hosts;
  auto attach = [&](net::SwitchId sw, net::SwitchId far, net::PortId far_port, int count) {
    for (int i = 0; i < count; ++i) {
      const net::HostId host = network.add_host(
          rate, delay, std::make_unique<net::DropTailQueue>(p.queues.host_nic_pkts));
      const net::PortId down = network.attach_host(host, sw, qf(false), marker());
      network.switch_at(sw).routes().add_route(network.id_of(host), down);
      network.switch_at(far).routes().add_route(network.id_of(host), far_port);
      hosts.push_back(host);
    }
  };
  attach(left, right, r_to_l, p.left_hosts);
  attach(right, left, l_to_r, p.right_hosts);
  for (const net::HostId h : hosts) {
    network.switch_at(left).routes().require_route(network.id_of(h));
    network.switch_at(right).routes().require_route(network.id_of(h));
  }
  Scenario s;
  for (const net::HostId h : hosts) s.hosts.push_back(&network.host(h));
  // host -> ToR -> ToR -> host: three store-and-forward links.
  s.base_rtt = net::path_base_rtt(3, rate, delay);
  return s;
}

Scenario build_chain_case(net::Network& network, const CaseConfig& c, const CaseParams& p) {
  auto qf = case_queue_factory(c, p);
  auto mf = case_marker_factory(c, p);
  auto marker = [&]() -> std::unique_ptr<net::DequeueMarker> { return mf ? mf() : nullptr; };
  const auto rate = p.link_rate;
  const auto delay = p.link_delay;
  const int k = p.chain_switches;

  std::vector<net::SwitchId> switches;
  for (int i = 0; i < k; ++i) switches.push_back(network.add_switch());
  // right_port[i]: switch i -> i+1; left_port[i]: switch i -> i-1.
  std::vector<net::PortId> right_port(static_cast<std::size_t>(k), -1);
  std::vector<net::PortId> left_port(static_cast<std::size_t>(k), -1);
  for (int i = 0; i + 1 < k; ++i) {
    right_port[i] = network.add_switch_port(switches[i], network.id_of(switches[i + 1]), rate,
                                            delay, qf(false), marker());
    left_port[i + 1] = network.add_switch_port(switches[i + 1], network.id_of(switches[i]), rate,
                                               delay, qf(false), marker());
  }

  std::vector<net::HostId> hosts;
  std::vector<int> host_at;  // host index -> switch index
  for (int i = 0; i < k; ++i) {
    for (int h = 0; h < p.hosts_per_switch; ++h) {
      const net::HostId host = network.add_host(
          rate, delay, std::make_unique<net::DropTailQueue>(p.queues.host_nic_pkts));
      const net::PortId down = network.attach_host(host, switches[i], qf(false), marker());
      network.switch_at(switches[i]).routes().add_route(network.id_of(host), down);
      hosts.push_back(host);
      host_at.push_back(i);
    }
  }
  // Linear routing: every switch reaches every host by walking the chain.
  for (std::size_t h = 0; h < hosts.size(); ++h) {
    const int at = host_at[h];
    const net::NodeId dst = network.id_of(hosts[h]);
    for (int i = 0; i < k; ++i) {
      if (i == at) continue;
      network.switch_at(switches[i]).routes().add_route(dst, i < at ? right_port[i] : left_port[i]);
    }
    for (int i = 0; i < k; ++i) network.switch_at(switches[i]).routes().require_route(dst);
  }
  Scenario s;
  for (const net::HostId h : hosts) s.hosts.push_back(&network.host(h));
  // Worst case: end to end across all k switches, k+1 links.
  s.base_rtt = net::path_base_rtt(k + 1, rate, delay);
  return s;
}

Scenario build_fat_tree_case(net::Network& network, const CaseConfig& c, const CaseParams& p) {
  net::FatTreeConfig topo_cfg;
  topo_cfg.k = p.fat_k;
  topo_cfg.link_rate = p.link_rate;
  topo_cfg.link_delay = p.link_delay;
  topo_cfg.host_nic_queue_pkts = p.queues.host_nic_pkts;
  topo_cfg.queue_factory = case_queue_factory(c, p);
  topo_cfg.marker_factory = case_marker_factory(c, p);
  net::FatTree topo = net::build_fat_tree(network, topo_cfg);
  Scenario s;
  s.hosts = topo.hosts;
  s.base_rtt = topo.base_rtt;
  return s;
}

Scenario build_case(net::Network& network, const CaseConfig& c, const CaseParams& p) {
  switch (c.topo) {
    case Topo::kLeafSpine:
      return build_leaf_spine_case(network, c, p);
    case Topo::kDumbbell:
      return build_dumbbell_case(network, c, p);
    case Topo::kChain:
      return build_chain_case(network, c, p);
    case Topo::kFatTree:
      return build_fat_tree_case(network, c, p);
  }
  throw std::logic_error("fuzz: unknown topology");
}

// Draws a bounded fault schedule against the built fabric's switch egress
// ports. Called after build_case with the same parameter stream, so these
// draws sit strictly after every pre-existing one (replay contract: cases
// with faults off consume exactly the old stream). All windows are bounded
// multiples of the topology's base RTT — long enough to force every
// backstop in DESIGN.md §11, short enough that completion stays provable.
fault::FaultPlan draw_fault_plan(const CaseConfig& c, const net::Network& network,
                                 sim::Duration base_rtt, sim::Rng& rng) {
  fault::FaultPlan plan;
  plan.seed = mix(c.seed, case_salt(c) ^ 0xFA17ULL);

  // Only switch-owned egress ports fault: host NICs are the measurement
  // reference point (the FCT floor oracle assumes the sender serializes at
  // its configured rate at least once).
  std::vector<net::PortId> eligible;
  for (const auto& sw : network.switches()) {
    for (int i = 0; i < sw.port_count(); ++i) eligible.push_back(sw.port_id(i));
  }
  if (eligible.empty()) return plan;

  const auto incidents = rng.uniform_int(1, 4);
  plan.draw(rng, eligible, base_rtt, incidents);
  return plan;
}

// Livelock valve: typical cases finish in well under 10^5 events, and the
// worst observed legitimate case (deep loss recovery with 8-packet buffers
// under timeout backoff) converges around 6x10^6, so an order of magnitude
// above that separates "slow recovery" from a genuinely stuck event loop,
// which is reported as a failure instead of hanging the fuzzer.
constexpr std::uint64_t kEventLimit = 50'000'000;

// Oracles 1-4 plus the replay fingerprint, shared by the serial and the
// partitioned paths (the latter passes the merged per-shard recorder and the
// master auditor, which holds the folded cross-shard ledger after the run).
// Expects r.flows / r.completed / r.events / r.faulted to be set already.
void check_oracles(CaseResult& r, const stats::FctRecorder& recorder, net::Network& network,
                   const Scenario& scen, const CaseParams& params, audit::Auditor& auditor) {
  auto fail = [&r](std::string why) {
    if (r.ok) {
      r.ok = false;
      r.failure = std::move(why);
    }
  };

  // Oracle 1: completion (an event-limit hit shows up here as livelock).
  if (r.completed < r.flows) {
    fail("incomplete: " + std::to_string(r.flows - r.completed) + " of " +
         std::to_string(r.flows) + " flows unfinished" +
         (r.events >= kEventLimit ? " (event limit hit)" : ""));
  }
  // Oracle 2: physics. Payload must serialize through the sender NIC and
  // cross at least one propagation delay; queueing/loss only adds to that.
  for (const auto& rec : recorder.completed()) {
    const sim::Duration floor =
        params.link_rate.tx_time(static_cast<std::int64_t>(rec.bytes)) + params.link_delay;
    if (rec.fct() < floor) {
      fail("fct below serialization floor: flow " + std::to_string(rec.flow) + " fct " +
           rec.fct().str() + " < " + floor.str());
      break;
    }
  }

  // Oracle 3: queue accounting at drain, on every switch port and host NIC.
  auto check_queue = [&](const net::EgressQueue& q, const std::string& where) {
    const auto& st = q.stats();
    if (q.total_pkts() != 0) {
      fail(where + ": " + std::to_string(q.total_pkts()) + " packets stranded after drain");
    } else if (st.enqueued != st.dequeued + st.dropped) {
      fail(where + ": stats identity broken: enqueued " + std::to_string(st.enqueued) +
           " != dequeued " + std::to_string(st.dequeued) + " + dropped " +
           std::to_string(st.dropped));
    }
    r.drops += st.dropped;
    r.trims += st.trimmed;
  };
  for (const auto& sw : network.switches()) {
    for (int i = 0; i < sw.port_count(); ++i) {
      check_queue(sw.port(i).queue(), network.label(sw.id()) + " port " + std::to_string(i));
    }
  }
  for (net::Host* host : scen.hosts) {
    check_queue(host->nic().queue(), network.label(host->id()) + " nic");
  }

  // Oracle 4 (audit builds; all calls are no-op stubs otherwise): the
  // conservation ledger must be drained and nothing may have tripped.
  auditor.check_drained();
  r.audit_violations = auditor.violation_count();
  if (r.audit_violations != 0) {
    fail("audit: " + auditor.violations().front());
  }

  // Fingerprint, for replay/parallel bit-identity checks.
  Fnv fnv;
  fnv.add(r.flows);
  for (const auto& rec : recorder.completed()) {
    fnv.add(rec.flow);
    fnv.add(rec.bytes);
    fnv.add(static_cast<std::uint64_t>(rec.start.ns()));
    fnv.add(static_cast<std::uint64_t>(rec.end.ns()));
  }
  fnv.add(r.drops);
  fnv.add(r.trims);
  fnv.add(r.events);
  fnv.add(r.faulted);
  r.hash = fnv.h;
}

// Oracle 5 (engine cases): group accounting. If every flow completed, every
// coflow group and every fan-out request must be complete in the GroupBook —
// a mismatch means membership bookkeeping lost or double-counted a member.
void check_group_oracle(CaseResult& r, const std::vector<workload::GeneratedFlow>& flows,
                        const stats::FctRecorder& recorder) {
  stats::GroupBook book;
  for (const auto& f : flows) book.note(f.id, f.group_id, f.request_id);
  if (book.empty() || r.completed < r.flows) return;
  const stats::GroupStats gs = book.group_stats(recorder.completed());
  const stats::GroupStats qs = book.request_stats(recorder.completed());
  auto fail = [&r](std::string why) {
    if (r.ok) {
      r.ok = false;
      r.failure = std::move(why);
    }
  };
  if (gs.complete != gs.groups) {
    fail("group accounting: " + std::to_string(gs.complete) + " of " + std::to_string(gs.groups) +
         " groups complete though every flow finished");
  }
  if (qs.complete != qs.groups) {
    fail("request accounting: " + std::to_string(qs.complete) + " of " + std::to_string(qs.groups) +
         " requests complete though every flow finished");
  }
}

// Partitioned variant of run_case: same parameter stream and flow schedule
// (everything builds against the master shard, which carries the case seed
// unchanged), executed on `c.shards` worker threads under the conservative
// window protocol. Only the partitionable topologies are supported.
CaseResult run_case_sharded(const CaseConfig& c) {
  if (c.faults) {
    throw std::invalid_argument("fuzz: --faults and --shards are mutually exclusive "
                                "(fault injection mutates link state serially)");
  }
  if (c.topo != Topo::kFatTree && c.topo != Topo::kLeafSpine) {
    throw std::invalid_argument(std::string{"fuzz: --shards does not support topology "} +
                                to_string(c.topo));
  }

  sim::Rng draw{mix(c.seed, case_salt(c))};
  const CaseParams params = draw_params(c, draw);

  sim::ShardGroup group{mix(c.seed, case_salt(c) ^ 0xA5A5ULL), c.shards};
  net::Network network{group.master()};

  Scenario scen;
  net::Partition part;
  if (c.topo == Topo::kFatTree) {
    net::FatTreeConfig topo_cfg;
    topo_cfg.k = params.fat_k;
    topo_cfg.link_rate = params.link_rate;
    topo_cfg.link_delay = params.link_delay;
    topo_cfg.host_nic_queue_pkts = params.queues.host_nic_pkts;
    topo_cfg.queue_factory = core::make_queue_factory(c.proto, params.queues);
    topo_cfg.marker_factory = core::make_marker_factory(c.proto);
    net::FatTree topo = net::build_fat_tree(network, topo_cfg);
    scen.hosts = topo.hosts;
    scen.base_rtt = topo.base_rtt;
    part = net::partition_fat_tree(network, topo, c.shards);
  } else {
    net::LeafSpineConfig topo_cfg;
    topo_cfg.leaves = params.leaves;
    topo_cfg.spines = params.spines;
    topo_cfg.hosts_per_leaf = params.hosts_per_leaf;
    topo_cfg.link_rate = params.link_rate;
    topo_cfg.link_delay = params.link_delay;
    topo_cfg.host_nic_queue_pkts = params.queues.host_nic_pkts;
    topo_cfg.queue_factory = core::make_queue_factory(c.proto, params.queues);
    topo_cfg.marker_factory = core::make_marker_factory(c.proto);
    net::LeafSpine topo = net::build_leaf_spine(network, topo_cfg);
    scen.hosts = topo.hosts;
    scen.base_rtt = topo.base_rtt;
    part = net::partition_leaf_spine(network, topo, c.shards);
  }

  ShardedScenario sharded{group, network, std::move(part), params.link_rate, scen.base_rtt};

  transport::TransportConfig tcfg;
  tcfg.host_rate = params.link_rate;
  tcfg.base_rtt = scen.base_rtt;

  scen.endpoints.reserve(scen.hosts.size());
  for (net::Host* host : scen.hosts) {
    auto ep = core::make_endpoint(c.proto, sharded.sim_of(host->id()), *host, tcfg,
                                  &sharded.recorder_of(host->id()));
    scen.endpoints.push_back(ep.get());
    host->attach(std::move(ep));
  }

  workload::TrafficConfig traffic;
  traffic.load = params.load;
  traffic.n_flows = params.n_flows;
  traffic.n_hosts = scen.hosts.size();
  traffic.host_rate = params.link_rate;
  const auto flows = workload::generate_traffic(params.spec, &workload::cdf(params.workload),
                                                traffic, group.master().rng());

  for (const auto& f : flows) {
    transport::FlowSpec spec{f.id, scen.hosts[f.src_host]->id(), scen.hosts[f.dst_host]->id(),
                             f.bytes, f.start};
    transport::TransportEndpoint* src_ep = scen.endpoints[f.src_host];
    // A flow starts on its sender's shard: the start event must fire on the
    // thread that owns the sender's scheduler and timers.
    sharded.sched_of(spec.src).at(f.start, [src_ep, spec] { src_ep->start_flow(spec); });
  }

  ShardedScenario::RunLimits limits;
  limits.event_limit = kEventLimit;
  limits.audit_context = repro_line(c);
  sharded.run(limits);

  CaseResult r;
  r.flows = flows.size();
  r.completed = sharded.merged().completed().size();
  r.events = sharded.events();
  r.faulted = network.packets_faulted();
  check_oracles(r, sharded.merged(), network, scen, params, group.master().auditor());
  check_group_oracle(r, flows, sharded.merged());
  return r;
}

}  // namespace

const char* to_string(Topo t) {
  switch (t) {
    case Topo::kLeafSpine:
      return "leafspine";
    case Topo::kDumbbell:
      return "dumbbell";
    case Topo::kChain:
      return "chain";
    case Topo::kFatTree:
      return "fattree";
  }
  return "?";
}

Topo topo_from_string(const std::string& s) {
  if (s == "leafspine" || s == "leaf-spine" || s == "ls") return Topo::kLeafSpine;
  if (s == "dumbbell" || s == "db") return Topo::kDumbbell;
  if (s == "chain") return Topo::kChain;
  if (s == "fattree" || s == "fat-tree" || s == "ft") return Topo::kFatTree;
  throw std::invalid_argument("unknown topology: " + s);
}

std::string repro_line(const CaseConfig& c) {
  return std::string{"scenario_fuzz --seed "} + std::to_string(c.seed) + " --topo " +
         to_string(c.topo) + " --transport " + transport::to_string(c.proto) +
         (c.faults ? " --faults" : "") +
         (c.shards > 1 ? " --shards " + std::to_string(c.shards) : "") +
         (c.mixed ? " --mixed" : "") + (c.engine ? " --workload-engine" : "");
}

CaseResult run_case(const CaseConfig& c) {
  // A fail-fast audit abort anywhere below prints this line.
  audit::set_context(repro_line(c));

  if (c.mixed && c.proto != Protocol::kAmrt) {
    throw std::invalid_argument("fuzz: --mixed requires --transport AMRT "
                                "(the foreground transport is fixed; DCTCP rides as background)");
  }
  if (c.mixed && c.shards > 1) {
    throw std::invalid_argument("fuzz: --mixed and --shards are mutually exclusive "
                                "(mixed transports are serial-only)");
  }
  if (c.shards > 1) return run_case_sharded(c);

  sim::Rng draw{mix(c.seed, case_salt(c))};
  const CaseParams params = draw_params(c, draw);

  sim::Simulation simu{mix(c.seed, case_salt(c) ^ 0xA5A5ULL)};
  sim::Scheduler& sched = simu.scheduler();
  net::Network network{simu};
  Scenario scen = build_case(network, c, params);

  // Fault schedule: drawn after the topology (it needs the built port pool),
  // armed before the run. The injector owns the plan the scheduled
  // callbacks read, so it must outlive sched.run() below.
  std::unique_ptr<fault::FaultInjector> injector;
  if (c.faults) {
    injector = std::make_unique<fault::FaultInjector>(
        network, draw_fault_plan(c, network, scen.base_rtt, draw));
    injector->arm();
  }

  transport::TransportConfig tcfg;
  tcfg.host_rate = params.link_rate;
  tcfg.base_rtt = scen.base_rtt;

  stats::FctRecorder recorder{params.link_rate, scen.base_rtt};
  scen.endpoints.reserve(scen.hosts.size());
  for (net::Host* host : scen.hosts) {
    auto ep = c.mixed ? core::make_mixed_endpoint(
                            simu, *host, tcfg, &recorder,
                            [frac = params.background_fraction](net::FlowId id) {
                              return is_background_flow(id, frac);
                            })
                      : core::make_endpoint(c.proto, simu, *host, tcfg, &recorder);
    scen.endpoints.push_back(ep.get());
    host->attach(std::move(ep));
  }

  workload::TrafficConfig traffic;
  traffic.load = params.load;
  traffic.n_flows = params.n_flows;
  traffic.n_hosts = scen.hosts.size();
  traffic.host_rate = params.link_rate;
  const auto flows =
      workload::generate_traffic(params.spec, &workload::cdf(params.workload), traffic, simu.rng());

  for (const auto& f : flows) {
    transport::FlowSpec spec{f.id, scen.hosts[f.src_host]->id(), scen.hosts[f.dst_host]->id(),
                             f.bytes, f.start};
    transport::TransportEndpoint* src_ep = scen.endpoints[f.src_host];
    sched.at(f.start, [src_ep, spec] { src_ep->start_flow(spec); });
  }

  // No samplers and no polling: once the last flow completes, recovery
  // timers cancel and the event set empties, so run() returns at drain.
  sched.set_event_limit(kEventLimit);
  sched.run();

  CaseResult r;
  r.flows = flows.size();
  r.completed = recorder.completed().size();
  r.events = sched.events_processed();
  r.faulted = network.packets_faulted();
  check_oracles(r, recorder, network, scen, params, simu.auditor());
  check_group_oracle(r, flows, recorder);
  return r;
}

FuzzReport run_fuzz(const FuzzOptions& opts) {
  std::vector<CaseConfig> cases;
  cases.reserve(opts.topos.size() * opts.protocols.size() * opts.seeds);
  for (const Topo topo : opts.topos) {
    // Partitioned sweeps cover only the topologies that have a pod/leaf cut;
    // the tiny dumbbell/chain fabrics are silently skipped rather than
    // forcing every caller to trim the default topology list.
    if (opts.shards > 1 && topo != Topo::kFatTree && topo != Topo::kLeafSpine) continue;
    for (const Protocol proto : opts.protocols) {
      // Mixed sweeps fix the foreground transport: only the AMRT axis runs.
      if (opts.mixed && proto != Protocol::kAmrt) continue;
      for (std::uint64_t s = 0; s < opts.seeds; ++s) {
        cases.push_back(CaseConfig{opts.first_seed + s, topo, proto, opts.faults, opts.shards,
                                   opts.mixed, opts.engine});
      }
    }
  }

  SweepOptions sweep_opts;
  sweep_opts.threads = opts.threads;
  SweepRunner runner{sweep_opts};
  const auto results = runner.map_points(cases, [](const CaseConfig& c) { return run_case(c); });

  FuzzReport report;
  report.cases = cases.size();
  for (std::size_t i = 0; i < cases.size(); ++i) {
    if (opts.on_case) opts.on_case(cases[i], results[i]);
    if (!results[i].ok) {
      ++report.failures;
      report.failure_lines.push_back(repro_line(cases[i]) + "  # " + results[i].failure);
    }
  }
  return report;
}

}  // namespace amrt::harness::fuzz
