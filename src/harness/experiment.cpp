#include "harness/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <ostream>

#include <stdexcept>

#include "fault/fault.hpp"
#include "harness/fidelity.hpp"
#include "harness/sharded.hpp"
#include "net/monitor.hpp"
#include "net/partition.hpp"
#include "net/topology.hpp"
#include "sim/shard.hpp"
#include "stats/summary.hpp"
#include "workload/flow_trace.hpp"
#include "workload/traffic.hpp"

namespace amrt::harness {

void write_fct_csv(std::ostream& os, const std::vector<stats::FlowRecord>& records) {
  os << "flow,bytes,start_us,end_us,fct_us,group_id,request_id\n";
  for (const auto& r : records) {
    os << r.flow << ',' << r.bytes << ',' << r.start.to_micros() << ',' << r.end.to_micros()
       << ',' << r.fct().to_micros() << ',';
    // Ungrouped flows get empty cells, not zeros: consumers that treat the
    // column as an id shouldn't see a phantom group 0.
    if (r.group != 0) os << r.group;
    os << ',';
    if (r.request != 0) os << r.request;
    os << '\n';
  }
}

const char* to_string(Fidelity f) {
  switch (f) {
    case Fidelity::kPacket: return "packet";
    case Fidelity::kFlow: return "flow";
    case Fidelity::kMixed: return "mixed";
  }
  return "?";
}

Fidelity fidelity_from_string(const std::string& name) {
  if (name == "packet") return Fidelity::kPacket;
  if (name == "flow") return Fidelity::kFlow;
  if (name == "mixed") return Fidelity::kMixed;
  throw std::invalid_argument("unknown fidelity '" + name + "' (packet|flow|mixed)");
}

bool is_background_flow(net::FlowId id, double fraction) {
  if (fraction <= 0.0) return false;
  if (fraction >= 1.0) return true;
  const auto cut = static_cast<net::FlowId>(fraction * 100.0 + 0.5);
  return (id % 100) < cut;
}

stats::FctSummary summarize_records(const std::vector<stats::FlowRecord>& records) {
  stats::FctSummary out;
  out.started = records.size();
  out.completed = records.size();
  if (records.empty()) return out;
  std::vector<double> fcts;
  fcts.reserve(records.size());
  double sum = 0.0;
  for (const auto& r : records) {
    const double fct_us = r.fct().to_micros();
    fcts.push_back(fct_us);
    sum += fct_us;
    out.max_fct_us = std::max(out.max_fct_us, fct_us);
  }
  out.afct_us = sum / static_cast<double>(fcts.size());
  out.p50_us = stats::percentile(fcts, 0.50);
  out.p99_us = stats::percentile(fcts, 0.99);
  return out;
}

namespace {
// Per-port mean utilization restricted to the port's own active window, so
// a downlink that only carried traffic for 2ms of a 50ms run is judged on
// those 2ms (this is the "bottleneck utilization" of Fig. 13). Also returns
// the bytes the port moved, used as the weight when averaging across ports:
// a downlink that served one tiny RPC should not dilute the busy ones where
// the protocols actually differ.
struct PortUtilization {
  double utilization = -1.0;  // -1: never active
  double weight_bytes = 0.0;
};

PortUtilization active_window_utilization(const net::PortSampler& sampler) {
  const auto& samples = sampler.samples();
  std::size_t first = samples.size();
  std::size_t last = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (samples[i].utilization > 0.0) {
      first = std::min(first, i);
      last = i;
    }
  }
  if (first >= samples.size()) return {};
  double sum = 0.0;
  for (std::size_t i = first; i <= last; ++i) sum += samples[i].utilization;
  return PortUtilization{sum / static_cast<double>(last - first + 1),
                         static_cast<double>(samples[last].bytes_sent)};
}
// Annotates records with membership and fills the collective summaries.
void finish_group_stats(const stats::GroupBook& book, ExperimentResult& out) {
  if (book.empty()) return;
  book.annotate(out.flow_records);
  out.group_stats = book.group_stats(out.flow_records);
  out.request_stats = book.request_stats(out.flow_records);
}

// Partitioned variant: same topology, workload draws and flow schedule as
// the serial path (everything builds against the master shard, which carries
// cfg.seed unchanged), executed across cfg.shards worker threads. No
// PortSamplers and no completion-poll loop — periodic callbacks would keep
// every shard's window advancing forever — so the run drains naturally under
// the max_sim_time horizon, utilization is not measured, and the queue
// high-water comes from the queues' own counters.
ExperimentResult run_leaf_spine_sharded(const ExperimentConfig& cfg) {
  const auto wall_start = std::chrono::steady_clock::now();

  if (cfg.fault_incidents > 0) {
    throw std::invalid_argument(
        "run_leaf_spine: fault injection and sharded execution are mutually exclusive "
        "(the injector mutates link state from a serial-only control path)");
  }
  if (cfg.background_dctcp_fraction > 0.0) {
    throw std::invalid_argument(
        "run_leaf_spine: mixed transports are serial-only (the coexistence metrics "
        "need the serial utilization samplers)");
  }

  sim::ShardGroup group{cfg.seed, cfg.shards};
  net::Network network{group.master()};

  net::LeafSpineConfig topo_cfg;
  topo_cfg.leaves = cfg.leaves;
  topo_cfg.spines = cfg.spines;
  topo_cfg.hosts_per_leaf = cfg.hosts_per_leaf;
  topo_cfg.link_rate = cfg.link_rate;
  topo_cfg.link_delay = cfg.link_delay;
  topo_cfg.host_nic_queue_pkts = cfg.queues.host_nic_pkts;
  topo_cfg.queue_factory = core::make_queue_factory(cfg.proto, cfg.queues);
  topo_cfg.marker_factory =
      core::make_marker_factory(cfg.proto, net::kMtuBytes, cfg.queues.ecn_threshold_pkts);
  topo_cfg.multipath = cfg.multipath;
  net::LeafSpine topo = net::build_leaf_spine(network, topo_cfg);

  ShardedScenario scen{group, network, net::partition_leaf_spine(network, topo, cfg.shards),
                       cfg.link_rate, topo.base_rtt};

  transport::TransportConfig tcfg;
  tcfg.host_rate = cfg.link_rate;
  tcfg.base_rtt = topo.base_rtt;
  tcfg.homa_overcommit = cfg.homa_overcommit;
  tcfg.loss_timeout = cfg.loss_timeout;

  std::vector<transport::TransportEndpoint*> endpoints;
  endpoints.reserve(topo.hosts.size());
  for (net::Host* host : topo.hosts) {
    auto ep = core::make_endpoint(cfg.proto, scen.sim_of(host->id()), *host, tcfg,
                                  &scen.recorder_of(host->id()));
    endpoints.push_back(ep.get());
    host->attach(std::move(ep));
  }

  stats::GroupBook book;
  const auto flows = detail::generate_flows(cfg, topo.hosts.size(), group.master().rng(), book);
  if (flows.empty()) return {};

  for (const auto& f : flows) {
    transport::FlowSpec spec{f.id, topo.hosts[f.src_host]->id(), topo.hosts[f.dst_host]->id(),
                             f.bytes, f.start};
    transport::TransportEndpoint* src_ep = endpoints[f.src_host];
    scen.sched_of(spec.src).at(f.start, [src_ep, spec] { src_ep->start_flow(spec); });
  }

  ShardedScenario::RunLimits limits;
  limits.horizon = sim::TimePoint::zero() + cfg.max_sim_time;
  scen.run(limits);

  const stats::FctRecorder& recorder = scen.merged();
  ExperimentResult out;
  out.fct_all = recorder.summarize();
  out.fct_small = recorder.summarize(0, 100'000);
  out.fct_large = recorder.summarize(1'000'000, UINT64_MAX);
  out.fct_foreground = out.fct_all;  // sharded runs are single-transport
  out.flows_started = recorder.started_count();
  out.flows_completed = recorder.completed().size();
  out.flow_records = recorder.completed();
  finish_group_stats(book, out);
  out.bytes_delivered = recorder.bytes_delivered();
  out.events = group.events_processed();
  out.sim_seconds = group.now_max().to_seconds();

  for (const auto& sw : network.switches()) {
    for (int p = 0; p < sw.port_count(); ++p) {
      const auto& st = sw.port(p).queue().stats();
      out.drops += st.dropped;
      out.trims += st.trimmed;
      out.max_queue_pkts = std::max(out.max_queue_pkts, st.max_data_pkts);
    }
  }
  out.faulted = network.packets_faulted();

  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  if (out.flows_completed < out.flows_started) {
    group.master().trace().warn(
        "run_leaf_spine[%s/%s, %u shards]: %zu of %zu flows incomplete at t=%s",
        transport::to_string(cfg.proto), workload::abbrev(cfg.workload), cfg.shards,
        out.flows_started - out.flows_completed, out.flows_started,
        group.now_max().str().c_str());
  }
  return out;
}

}  // namespace

namespace detail {

// Generation, shared by the serial, sharded and flow-level paths: run the
// configured traffic engine against the run's seeded stream, optionally dump
// the schedule as a replayable trace, and register group/request membership.
std::vector<workload::GeneratedFlow> generate_flows(const ExperimentConfig& cfg,
                                                    std::size_t n_hosts, sim::Rng& rng,
                                                    stats::GroupBook& book) {
  workload::TrafficConfig traffic;
  traffic.load = cfg.load;
  traffic.n_flows = cfg.n_flows;
  traffic.n_hosts = n_hosts;
  traffic.host_rate = cfg.link_rate;
  const workload::EmpiricalCdf* sizes =
      cfg.engine.engine == workload::Engine::kTrace ? nullptr : &workload::cdf(cfg.workload);
  auto flows = workload::generate_traffic(cfg.engine, sizes, traffic, rng);
  if (!cfg.trace_out.empty()) workload::write_trace_file(cfg.trace_out, flows);
  for (const auto& f : flows) book.note(f.id, f.group_id, f.request_id);
  return flows;
}

ExperimentResult run_leaf_spine_serial(const ExperimentConfig& cfg,
                                       const SerialOverrides* overrides) {
  const auto wall_start = std::chrono::steady_clock::now();

  const bool mixed = cfg.background_dctcp_fraction > 0.0;
  if (mixed && cfg.proto != transport::Protocol::kAmrt) {
    throw std::invalid_argument(
        "run_leaf_spine: background_dctcp_fraction pairs DCTCP background with AMRT "
        "foreground; set proto = kAmrt");
  }

  sim::Simulation simu{cfg.seed};
  sim::Scheduler& sched = simu.scheduler();
  net::Network network{simu};

  net::LeafSpineConfig topo_cfg;
  topo_cfg.leaves = cfg.leaves;
  topo_cfg.spines = cfg.spines;
  topo_cfg.hosts_per_leaf = cfg.hosts_per_leaf;
  topo_cfg.link_rate = cfg.link_rate;
  topo_cfg.link_delay = cfg.link_delay;
  topo_cfg.host_nic_queue_pkts = cfg.queues.host_nic_pkts;
  topo_cfg.queue_factory = mixed ? core::make_mixed_queue_factory(cfg.queues)
                                 : core::make_queue_factory(cfg.proto, cfg.queues);
  topo_cfg.marker_factory =
      mixed ? core::make_mixed_marker_factory(cfg.queues)
            : core::make_marker_factory(cfg.proto, net::kMtuBytes, cfg.queues.ecn_threshold_pkts);
  topo_cfg.multipath = cfg.multipath;
  net::LeafSpine topo = net::build_leaf_spine(network, topo_cfg);

  // Injected fault schedule, drawn from its own seed stream (so a fault
  // scenario can be pinned while the workload seed sweeps). The injector
  // must outlive sched.run_until below — its scheduled callbacks read it.
  std::unique_ptr<fault::FaultInjector> injector;
  if (cfg.fault_incidents > 0) {
    std::vector<net::PortId> fabric_ports;
    for (int l = 0; l < cfg.leaves; ++l) {
      for (int h = 0; h < cfg.hosts_per_leaf; ++h) fabric_ports.push_back(topo.leaf_down[l][h]);
      for (int s = 0; s < cfg.spines; ++s) {
        fabric_ports.push_back(topo.leaf_up[l][s]);
        fabric_ports.push_back(topo.spine_down[s][l]);
      }
    }
    fault::FaultPlan plan;
    plan.seed = cfg.fault_seed;
    sim::Rng fault_rng{cfg.fault_seed};
    plan.draw(fault_rng, fabric_ports, topo.base_rtt, cfg.fault_incidents);
    injector = std::make_unique<fault::FaultInjector>(network, std::move(plan));
    injector->arm();
  }

  transport::TransportConfig tcfg;
  tcfg.host_rate = cfg.link_rate;
  tcfg.base_rtt = topo.base_rtt;
  tcfg.homa_overcommit = cfg.homa_overcommit;
  tcfg.loss_timeout = cfg.loss_timeout;

  stats::FctRecorder recorder{cfg.link_rate, topo.base_rtt};
  std::vector<transport::TransportEndpoint*> endpoints;
  endpoints.reserve(topo.hosts.size());
  const double bg_fraction = cfg.background_dctcp_fraction;
  for (net::Host* host : topo.hosts) {
    auto ep = mixed ? core::make_mixed_endpoint(
                          simu, *host, tcfg, &recorder,
                          [bg_fraction](net::FlowId id) { return is_background_flow(id, bg_fraction); })
                    : core::make_endpoint(cfg.proto, simu, *host, tcfg, &recorder);
    endpoints.push_back(ep.get());
    host->attach(std::move(ep));
  }

  // Workload, drawn from the simulation's own random stream — unless the
  // caller (the mixed-fidelity runner) already drew the schedule.
  stats::GroupBook book;
  std::vector<workload::GeneratedFlow> flows;
  if (overrides != nullptr && overrides->flows != nullptr) {
    flows = *overrides->flows;
    for (const auto& f : flows) book.note(f.id, f.group_id, f.request_id);
  } else {
    flows = generate_flows(cfg, topo.hosts.size(), simu.rng(), book);
  }
  if (flows.empty()) return {};

  for (const auto& f : flows) {
    transport::FlowSpec spec{f.id, topo.hosts[f.src_host]->id(), topo.hosts[f.dst_host]->id(),
                             f.bytes, f.start};
    transport::TransportEndpoint* src_ep = endpoints[f.src_host];
    sched.at(f.start, [src_ep, spec] { src_ep->start_flow(spec); });
  }

  // Mixed fidelity: replay the fluid side's bandwidth usage as scheduled
  // serialization-rate reservations on the shared fabric ports.
  if (overrides != nullptr && overrides->rate_scale) {
    for (const auto& ev : overrides->rate_scale(topo)) {
      net::EgressPort* port = &network.port_at(ev.port);
      const double scale = ev.scale;
      sched.at(ev.at, [port, scale] { port->set_rate_scale(scale); });
    }
  }

  // Monitors on every receiver downlink (the typical bottleneck) plus the
  // fabric, for queue high-water marks.
  std::vector<std::unique_ptr<net::PortSampler>> downlinks;
  std::vector<std::unique_ptr<net::PortSampler>> fabric;
  for (int l = 0; l < cfg.leaves; ++l) {
    for (int h = 0; h < cfg.hosts_per_leaf; ++h) {
      downlinks.push_back(std::make_unique<net::PortSampler>(
          simu, network.port_at(topo.leaf_down[l][h]), cfg.sample_interval));
      downlinks.back()->start();
    }
    for (int s = 0; s < cfg.spines; ++s) {
      fabric.push_back(std::make_unique<net::PortSampler>(
          simu, network.port_at(topo.leaf_up[l][s]), cfg.sample_interval));
      fabric.back()->start();
      fabric.push_back(std::make_unique<net::PortSampler>(
          simu, network.port_at(topo.spine_down[s][l]), cfg.sample_interval));
      fabric.back()->start();
    }
  }

  // Stop as soon as every flow has completed (samplers and recovery timers
  // would otherwise keep the event loop alive forever).
  const std::size_t expected = flows.size();
  const sim::TimePoint last_start = flows.back().start;
  std::function<void()> poll = [&] {
    if (recorder.completed().size() >= expected && sched.now() > last_start) {
      sched.stop();
      return;
    }
    sched.after(sim::Duration::milliseconds(1), poll);
  };
  sched.after(sim::Duration::milliseconds(1), poll);

  sched.run_until(sim::TimePoint::zero() + cfg.max_sim_time);

  ExperimentResult out;
  out.fct_all = recorder.summarize();
  out.fct_small = recorder.summarize(0, 100'000);
  out.fct_large = recorder.summarize(1'000'000, UINT64_MAX);
  out.flows_started = recorder.started_count();
  out.flows_completed = recorder.completed().size();
  out.flow_records = recorder.completed();
  finish_group_stats(book, out);
  out.bytes_delivered = recorder.bytes_delivered();
  out.events = sched.events_processed();
  out.sim_seconds = sched.now().to_seconds();

  if (mixed) {
    std::vector<stats::FlowRecord> fg;
    std::vector<stats::FlowRecord> bg;
    for (const auto& r : out.flow_records) {
      (is_background_flow(r.flow, bg_fraction) ? bg : fg).push_back(r);
    }
    out.fct_foreground = summarize_records(fg);
    out.fct_background = summarize_records(bg);
  } else {
    out.fct_foreground = out.fct_all;
  }

  double util_sum = 0.0;
  double weight_sum = 0.0;
  out.downlink_utilization.reserve(downlinks.size());
  for (const auto& s : downlinks) {
    const auto u = active_window_utilization(*s);
    out.downlink_utilization.push_back(u.utilization < 0.0 ? 0.0 : u.utilization);
    if (u.utilization >= 0.0) {
      util_sum += u.utilization * u.weight_bytes;
      weight_sum += u.weight_bytes;
    }
    out.max_queue_pkts = std::max(out.max_queue_pkts, s->max_queue_pkts());
  }
  for (const auto& s : fabric) {
    out.max_queue_pkts = std::max(out.max_queue_pkts, s->max_queue_pkts());
  }
  out.mean_utilization = weight_sum == 0.0 ? 0.0 : util_sum / weight_sum;

  for (const auto& sw : network.switches()) {
    for (int p = 0; p < sw.port_count(); ++p) {
      out.drops += sw.port(p).queue().stats().dropped;
      out.trims += sw.port(p).queue().stats().trimmed;
    }
  }
  out.faulted = network.packets_faulted();

  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  if (out.flows_completed < out.flows_started) {
    simu.trace().warn("run_leaf_spine[%s/%s]: %zu of %zu flows incomplete at t=%s",
                      transport::to_string(cfg.proto), workload::abbrev(cfg.workload),
                      out.flows_started - out.flows_completed, out.flows_started,
                      sched.now().str().c_str());
  }
  return out;
}

}  // namespace detail

ExperimentResult run_leaf_spine(const ExperimentConfig& cfg) {
  if (cfg.fidelity == Fidelity::kFlow) return run_leaf_spine_flow(cfg);
  if (cfg.fidelity == Fidelity::kMixed) return run_leaf_spine_mixed(cfg);
  if (cfg.shards > 1) return run_leaf_spine_sharded(cfg);
  return detail::run_leaf_spine_serial(cfg, nullptr);
}

}  // namespace amrt::harness
