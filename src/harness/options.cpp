#include "harness/options.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace amrt::harness {

namespace {
std::vector<double> parse_list(const std::string& s) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find(',', pos);
    if (next == std::string::npos) next = s.size();
    out.push_back(std::stod(s.substr(pos, next - pos)));
    pos = next + 1;
  }
  return out;
}
}  // namespace

std::size_t BenchOptions::scaled(std::size_t base) const {
  if (flows) return *flows;
  const auto n = static_cast<std::size_t>(static_cast<double>(base) * scale);
  return std::max<std::size_t>(n, 20);
}

BenchOptions parse_bench_options(int argc, char** argv) {
  BenchOptions opts;
  if (const char* env = std::getenv("AMRT_BENCH_SCALE"); env != nullptr) {
    opts.scale = std::stod(env);
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const std::string& prefix) -> std::optional<std::string> {
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (arg == "--paper-scale") {
      opts.paper_scale = true;
    } else if (arg == "--csv") {
      opts.csv = true;
    } else if (auto flows = value_of("--flows=")) {
      opts.flows = static_cast<std::size_t>(std::stoull(*flows));
    } else if (auto seed = value_of("--seed=")) {
      opts.seed = std::stoull(*seed);
    } else if (auto loads = value_of("--loads=")) {
      opts.loads = parse_list(*loads);
    } else if (auto scale = value_of("--scale=")) {
      opts.scale = std::stod(*scale);
    } else if (auto threads = value_of("--threads=")) {
      opts.threads = static_cast<unsigned>(std::stoul(*threads));
    } else if (auto json = value_of("--json=")) {
      opts.json_path = *json;
    } else if (arg == "--help" || arg == "-h") {
      throw std::invalid_argument(
          "options: --paper-scale --csv --flows=N --seed=S --loads=a,b,c --scale=X "
          "--threads=N --json=PATH");
    }
    // Unknown flags are ignored so google-benchmark style flags pass through.
  }
  return opts;
}

}  // namespace amrt::harness
