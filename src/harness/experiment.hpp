// The large-scale experiment runner behind Figs. 12/13: a leaf-spine fabric,
// one transport endpoint per host, Poisson workload arrivals, and the
// FCT/utilization/queue metrics the paper reports.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/factory.hpp"
#include "net/routing.hpp"
#include "stats/fct.hpp"
#include "stats/group.hpp"
#include "workload/generator.hpp"
#include "workload/traffic.hpp"
#include "workload/workloads.hpp"

namespace amrt::harness {

// Simulation fidelity (DESIGN.md §15).
//   kPacket — the per-packet event simulator (the default; byte-identical to
//             builds that predate the fidelity axis).
//   kFlow   — the flow-level fast path (src/flowsim): fluid max-min rates
//             with AMRT/DCTCP-aware ramps, orders of magnitude fewer events.
//   kMixed  — background flows fluid, foreground flows packet-level; the
//             fluid side's per-link usage is replayed onto the packet fabric
//             as scheduled rate reservations.
enum class Fidelity : std::uint8_t { kPacket, kFlow, kMixed };

[[nodiscard]] const char* to_string(Fidelity f);
[[nodiscard]] Fidelity fidelity_from_string(const std::string& name);

struct ExperimentConfig {
  transport::Protocol proto = transport::Protocol::kAmrt;
  workload::Kind workload = workload::Kind::kWebSearch;
  double load = 0.5;          // Fig. 12 x-axis
  std::size_t n_flows = 400;  // Fig. 13 x-axis

  // Traffic engine (DESIGN.md §14). The default — the legacy engine — is
  // byte-identical to the original FlowGenerator: same draws, same schedule,
  // same golden fixtures. kSkewed/kFanout open up the pair/arrival/structure
  // axes; kTrace replays engine.trace_path and ignores workload/load/n_flows
  // (the trace carries its own sizes and schedule). Every engine composes
  // with `shards` — generation happens on the master shard before the clock
  // starts. For kTrace the trace is read once per run, on every shard count.
  workload::WorkloadSpec engine{};

  // Non-empty: dump the generated schedule (whatever engine produced it) as
  // a flow-trace file right after generation. Replaying that file with the
  // trace engine under the same fabric config reproduces the run's FCT
  // records bit for bit.
  std::string trace_out;

  // Topology. Paper scale is 10/8/40 with 100us links; the default is a
  // scaled-down fabric so the full sweep runs on a laptop (see DESIGN.md).
  int leaves = 4;
  int spines = 4;
  int hosts_per_leaf = 8;
  sim::Bandwidth link_rate = sim::Bandwidth::gbps(10);
  sim::Duration link_delay = sim::Duration::microseconds(10);

  // Mixed transports (DESIGN.md §13): fraction of flows, by id, carried by
  // DCTCP background senders instead of `proto`. 0 = single-transport run
  // (byte-identical to older builds). When set, `proto` must be kAmrt — the
  // mixed fabric pairs AMRT foreground with DCTCP background — the fabric
  // switches to strict-priority queues with both ECN markers, and both ends
  // of every flow dispatch it by is_background_flow(). Serial-only.
  double background_dctcp_fraction = 0.0;

  core::QueueConfig queues{};
  int homa_overcommit = 2;
  // Zero = per-protocol default (see TransportConfig::default_loss_timeout).
  sim::Duration loss_timeout = sim::Duration::zero();
  net::MultipathMode multipath = net::MultipathMode::kPerFlowEcmp;
  std::uint64_t seed = 1;

  // Partitioned execution: run the fabric across this many shard threads
  // under the conservative window protocol (src/net/partition.hpp). 1 = the
  // classic serial run, bit-identical to older builds. Values > 1 keep the
  // same topology, workload draws and flow schedule (all built against the
  // master shard, which carries `seed` unchanged) but interleave packet
  // events differently, so FCTs agree statistically rather than exactly.
  // Utilization sampling needs the serial event loop; sharded runs report
  // mean_utilization = 0 and take max_queue_pkts from the queues' own
  // high-water marks. Mutually exclusive with fault injection.
  unsigned shards = 1;

  // Fault injection (src/fault): number of random bounded incidents (link
  // flaps, blackhole windows, rate dips) drawn against the fabric's switch
  // ports. 0 (the default) runs a pristine fabric — byte-identical to
  // builds without fault injection.
  std::size_t fault_incidents = 0;
  std::uint64_t fault_seed = 1;  // independent of `seed` so schedules can be pinned

  // Hard stop for pathological runs; completion normally stops the clock.
  sim::Duration max_sim_time = sim::Duration::seconds(30);
  sim::Duration sample_interval = sim::Duration::microseconds(100);

  // Simulation fidelity. kFlow and kMixed are serial-only and exclusive
  // with fault injection; kPacket composes with everything as before.
  Fidelity fidelity = Fidelity::kPacket;
  // kMixed only: fraction of flows (by id, is_background_flow) simulated at
  // flow level; the rest run packet-level against the fluid side's
  // per-link bandwidth reservations.
  double flow_background_fraction = 0.5;
};

struct ExperimentResult {
  stats::FctSummary fct_all;
  stats::FctSummary fct_small;  // flows < 100KB
  stats::FctSummary fct_large;  // flows >= 1MB
  // Mixed runs: AMRT foreground vs DCTCP background split of fct_all
  // (no slowdown; computed from the flow records). Single-transport runs
  // put everything in fct_foreground.
  stats::FctSummary fct_foreground;
  stats::FctSummary fct_background;
  double mean_utilization = 0;  // over active receiver downlinks
  // Per-receiver-downlink active-window utilization, in topology order
  // (leaf-major, host-minor); 0 for never-active ports. Serial runs only.
  std::vector<double> downlink_utilization;
  std::size_t max_queue_pkts = 0;
  std::uint64_t drops = 0;  // across all switch ports
  std::uint64_t trims = 0;
  std::uint64_t faulted = 0;  // packets eaten by injected faults
  std::uint64_t bytes_delivered = 0;
  std::uint64_t events = 0;
  double sim_seconds = 0;
  double wall_seconds = 0;
  std::size_t flows_started = 0;
  std::size_t flows_completed = 0;
  // Per-flow completion records (size, start, end, group/request membership),
  // for CSV export and custom post-processing.
  std::vector<stats::FlowRecord> flow_records;
  // Collective completion times (stats/group.hpp): coflow groups and fan-out
  // requests. All-zero when the workload emitted no grouped flows.
  stats::GroupStats group_stats;
  stats::GroupStats request_stats;
};

// Dumps `flow_records` as CSV: flow,bytes,start_us,end_us,fct_us,group_id,
// request_id — the last two empty for ungrouped flows, so pre-engine
// consumers that split on ',' still find their columns where they were.
void write_fct_csv(std::ostream& os, const std::vector<stats::FlowRecord>& records);

// The mixed-transport dispatch rule, shared by the harness, the fuzzer and
// the benches: a flow is DCTCP background iff its id falls in the first
// round(fraction*100) residues mod 100. Pure in the id, so the sender and
// receiver ends (and any post-processing) always agree.
[[nodiscard]] bool is_background_flow(net::FlowId id, double fraction);

// FctSummary over an arbitrary record subset (no slowdown; used for the
// foreground/background split, where one recorder served both classes).
[[nodiscard]] stats::FctSummary summarize_records(const std::vector<stats::FlowRecord>& records);

[[nodiscard]] ExperimentResult run_leaf_spine(const ExperimentConfig& cfg);

}  // namespace amrt::harness
