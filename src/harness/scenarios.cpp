#include "harness/scenarios.hpp"

#include <algorithm>
#include <memory>

#include "net/monitor.hpp"
#include "net/topology.hpp"
#include "sim/rng.hpp"

namespace amrt::harness {

namespace {

using transport::FlowSpec;
using transport::TransportEndpoint;

// Shared plumbing for the fixed scenarios: endpoints, recorder, throughput
// tracker and flow scheduling.
struct Rig {
  sim::Simulation sim;
  sim::Scheduler& sched;
  net::Network network{sim};
  stats::FctRecorder recorder;
  stats::FlowThroughputTracker throughput;
  std::vector<TransportEndpoint*> endpoints;  // parallel to network.hosts()

  Rig(std::uint64_t seed, sim::Bandwidth rate, sim::Duration base_rtt, sim::Duration bin)
      : sim{seed}, sched{sim.scheduler()}, recorder{rate, base_rtt}, throughput{bin} {
    recorder.set_progress_hook([this](std::uint64_t flow, std::uint64_t delta, sim::TimePoint at) {
      throughput.record(flow, delta, at);
    });
  }

  net::HostId add_host(sim::Bandwidth rate, sim::Duration delay, std::size_t nic_pkts) {
    return network.add_host(rate, delay, std::make_unique<net::DropTailQueue>(nic_pkts));
  }

  // Only call once the topology is complete: endpoints hold Host references
  // into the pool, which must not grow afterwards.
  void attach_endpoints(transport::Protocol proto, const transport::TransportConfig& tcfg) {
    for (auto& host : network.hosts()) {
      auto ep = core::make_endpoint(proto, sim, host, tcfg, &recorder);
      endpoints.push_back(ep.get());
      host.attach(std::move(ep));
    }
  }

  void schedule_flow(std::size_t src_host_idx, std::size_t dst_host_idx, net::FlowId id,
                     std::uint64_t bytes, sim::Duration start, sim::Duration jitter) {
    if (jitter > sim::Duration::zero()) {
      start += sim::Duration::nanoseconds(sim.rng().uniform_int(0, jitter.ns()));
    }
    FlowSpec spec{id, network.host(src_host_idx).id(), network.host(dst_host_idx).id(), bytes,
                  sim::TimePoint::zero() + start};
    TransportEndpoint* ep = endpoints[src_host_idx];
    sched.at(spec.start, [ep, spec] { ep->start_flow(spec); });
  }

  [[nodiscard]] double fct_ms(net::FlowId id) const {
    for (const auto& r : recorder.completed()) {
      if (r.flow == id) return r.fct().to_millis();
    }
    return -1.0;
  }
};

std::vector<double> util_series(const net::PortSampler& s) {
  std::vector<double> out;
  out.reserve(s.samples().size());
  for (const auto& sample : s.samples()) out.push_back(sample.utilization);
  return out;
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

}  // namespace

// ---------------------------------------------------------------------------
// Chain (Figs. 1, 10/11)
// ---------------------------------------------------------------------------

TimelineResult run_chain(const ChainConfig& cfg) {
  const auto rate = cfg.link_rate;
  const auto delay = cfg.link_delay;
  const auto base_rtt = net::path_base_rtt(4, rate, delay);

  Rig rig{cfg.seed, rate, base_rtt, cfg.bin};
  auto qf = core::make_queue_factory(cfg.proto, cfg.queues);
  auto mf = core::make_marker_factory(cfg.proto);
  auto marker = [&]() -> std::unique_ptr<net::DequeueMarker> { return mf ? mf() : nullptr; };

  net::Network& net = rig.network;
  const net::SwitchId s0 = net.add_switch();
  const net::SwitchId s1 = net.add_switch();
  const net::SwitchId s2 = net.add_switch();
  const net::PortId b1 =
      net.add_switch_port(s0, net.id_of(s1), rate, delay, qf(false), marker());  // bottleneck 1
  const net::PortId b2 =
      net.add_switch_port(s1, net.id_of(s2), rate, delay, qf(false), marker());  // bottleneck 2
  const net::PortId s1_to_s0 =
      net.add_switch_port(s1, net.id_of(s0), rate, delay, qf(false), marker());  // reverse path
  const net::PortId s2_to_s1 =
      net.add_switch_port(s2, net.id_of(s1), rate, delay, qf(false), marker());
  const net::PortId s0_to_s1 = b1, s1_to_s2 = b2;

  // One src/dst host pair per flow, attached per its path. Remember which
  // switch each host hangs off so the chain routes can be derived.
  struct HostPair {
    std::size_t src, dst;
  };
  std::vector<HostPair> pairs;
  std::vector<int> attachment;  // host index -> switch index (0, 1, 2)
  for (std::size_t i = 0; i < cfg.flows.size(); ++i) {
    const auto& f = cfg.flows[i];
    const int src_at = f.path == ChainPath::kSecond ? 1 : 0;
    const int dst_at = f.path == ChainPath::kFirst ? 1 : 2;
    const net::SwitchId src_sw = src_at == 1 ? s1 : s0;
    const net::SwitchId dst_sw = dst_at == 1 ? s1 : s2;
    const net::HostId src = rig.add_host(rate, delay, cfg.queues.host_nic_pkts);
    const net::HostId dst = rig.add_host(rate, delay, cfg.queues.host_nic_pkts);
    const net::PortId src_down = net.attach_host(src, src_sw, qf(false), marker());
    const net::PortId dst_down = net.attach_host(dst, dst_sw, qf(false), marker());
    net.switch_at(src_sw).routes().add_route(net.id_of(src), src_down);
    net.switch_at(dst_sw).routes().add_route(net.id_of(dst), dst_down);
    pairs.push_back({rig.network.host_count() - 2, rig.network.host_count() - 1});
    attachment.push_back(src_at);
    attachment.push_back(dst_at);
  }

  // Remote routes: traffic for a host attached elsewhere follows the chain.
  for (std::size_t h = 0; h < rig.network.host_count(); ++h) {
    const net::NodeId id = rig.network.host(h).id();
    switch (attachment[h]) {
      case 0:
        net.switch_at(s1).routes().add_route(id, s1_to_s0);
        net.switch_at(s2).routes().add_route(id, s2_to_s1);
        break;
      case 1:
        net.switch_at(s0).routes().add_route(id, s0_to_s1);
        net.switch_at(s2).routes().add_route(id, s2_to_s1);
        break;
      default:
        net.switch_at(s0).routes().add_route(id, s0_to_s1);
        net.switch_at(s1).routes().add_route(id, s1_to_s2);
        break;
    }
  }

  transport::TransportConfig tcfg;
  tcfg.host_rate = rate;
  tcfg.base_rtt = base_rtt;
  tcfg.homa_overcommit = cfg.homa_overcommit;
  rig.attach_endpoints(cfg.proto, tcfg);

  for (std::size_t i = 0; i < cfg.flows.size(); ++i) {
    rig.schedule_flow(pairs[i].src, pairs[i].dst, i + 1, cfg.flows[i].bytes, cfg.flows[i].start,
                      cfg.start_jitter);
  }

  net::PortSampler sampler1{rig.sim, net.port_at(b1), cfg.bin};
  net::PortSampler sampler2{rig.sim, net.port_at(b2), cfg.bin};
  sampler1.start();
  sampler2.start();

  rig.sched.run_until(sim::TimePoint::zero() + cfg.duration);

  TimelineResult out;
  out.bin = cfg.bin;
  for (std::size_t i = 0; i < cfg.flows.size(); ++i) {
    out.flow_gbps.push_back(rig.throughput.gbps(i + 1));
    out.flow_fct_ms.push_back(rig.fct_ms(i + 1));
  }
  out.bottleneck1_util = util_series(sampler1);
  out.bottleneck2_util = util_series(sampler2);
  out.mean_util_b1 = mean(out.bottleneck1_util);
  out.mean_util_b2 = mean(out.bottleneck2_util);
  out.max_queue_pkts = std::max(sampler1.max_queue_pkts(), sampler2.max_queue_pkts());
  return out;
}

// ---------------------------------------------------------------------------
// Dynamic traffic, single bottleneck (Figs. 2, 8/9)
// ---------------------------------------------------------------------------

TimelineResult run_dynamic(const DynamicConfig& cfg) {
  const auto rate = cfg.link_rate;
  const auto delay = cfg.link_delay;
  const auto base_rtt = net::path_base_rtt(3, rate, delay);

  Rig rig{cfg.seed, rate, base_rtt, cfg.bin};
  auto qf = core::make_queue_factory(cfg.proto, cfg.queues);
  auto mf = core::make_marker_factory(cfg.proto, cfg.marker_probe_bytes);
  auto marker = [&]() -> std::unique_ptr<net::DequeueMarker> { return mf ? mf() : nullptr; };

  net::Network& net = rig.network;
  const net::SwitchId s0 = net.add_switch();
  const net::SwitchId s1 = net.add_switch();
  const net::PortId bottleneck =
      net.add_switch_port(s0, net.id_of(s1), rate, delay, qf(false), marker());
  const net::PortId s1_to_s0 =
      net.add_switch_port(s1, net.id_of(s0), rate, delay, qf(false), marker());
  const net::PortId s0_to_s1 = bottleneck;

  std::vector<std::size_t> srcs, dsts;
  for (std::size_t i = 0; i < cfg.flows.size(); ++i) {
    const net::HostId src = rig.add_host(rate, delay, cfg.queues.host_nic_pkts);
    const net::HostId dst = rig.add_host(rate, delay, cfg.queues.host_nic_pkts);
    const net::PortId src_down = net.attach_host(src, s0, qf(false), marker());
    const net::PortId dst_down = net.attach_host(dst, s1, qf(false), marker());
    net.switch_at(s0).routes().add_route(net.id_of(src), src_down);
    net.switch_at(s1).routes().add_route(net.id_of(dst), dst_down);
    net.switch_at(s0).routes().add_route(net.id_of(dst), s0_to_s1);
    net.switch_at(s1).routes().add_route(net.id_of(src), s1_to_s0);
    srcs.push_back(rig.network.host_count() - 2);
    dsts.push_back(rig.network.host_count() - 1);
  }

  transport::TransportConfig tcfg;
  tcfg.host_rate = rate;
  tcfg.base_rtt = base_rtt;
  tcfg.homa_overcommit = cfg.homa_overcommit;
  tcfg.amrt_marked_allowance = cfg.amrt_marked_allowance;
  rig.attach_endpoints(cfg.proto, tcfg);

  for (std::size_t i = 0; i < cfg.flows.size(); ++i) {
    rig.schedule_flow(srcs[i], dsts[i], i + 1, cfg.flows[i].bytes, cfg.flows[i].start,
                      cfg.start_jitter);
  }

  net::PortSampler sampler{rig.sim, net.port_at(bottleneck), cfg.bin};
  sampler.start();
  rig.sched.run_until(sim::TimePoint::zero() + cfg.duration);

  TimelineResult out;
  out.bin = cfg.bin;
  for (std::size_t i = 0; i < cfg.flows.size(); ++i) {
    out.flow_gbps.push_back(rig.throughput.gbps(i + 1));
    out.flow_fct_ms.push_back(rig.fct_ms(i + 1));
  }
  out.bottleneck1_util = util_series(sampler);
  out.mean_util_b1 = mean(out.bottleneck1_util);
  out.max_queue_pkts = sampler.max_queue_pkts();
  return out;
}

// ---------------------------------------------------------------------------
// Many-to-many with unresponsive senders (Fig. 14)
// ---------------------------------------------------------------------------

ManyToManyResult run_many_to_many(const ManyToManyConfig& cfg) {
  sim::Simulation simu{cfg.seed};
  sim::Scheduler& sched = simu.scheduler();
  net::Network network{simu};

  net::LeafSpineConfig topo_cfg;
  topo_cfg.leaves = 3;
  topo_cfg.spines = cfg.spines;
  topo_cfg.hosts_per_leaf = cfg.senders_per_leaf;
  topo_cfg.link_rate = cfg.link_rate;
  topo_cfg.link_delay = cfg.link_delay;
  topo_cfg.host_nic_queue_pkts = cfg.queues.host_nic_pkts;
  topo_cfg.queue_factory = core::make_queue_factory(cfg.proto, cfg.queues);
  topo_cfg.marker_factory = core::make_marker_factory(cfg.proto);
  net::LeafSpine topo = net::build_leaf_spine(network, topo_cfg);

  transport::TransportConfig tcfg;
  tcfg.host_rate = cfg.link_rate;
  tcfg.base_rtt = topo.base_rtt;
  tcfg.homa_overcommit = cfg.homa_overcommit;
  // Connections are long-established: the experiment isolates grant-driven
  // behaviour, so the blind first-BDP burst is disabled on every endpoint.
  tcfg.unscheduled_start = false;

  stats::FctRecorder recorder{cfg.link_rate, topo.base_rtt};
  sim::Rng& rng = simu.rng();

  // Senders live under leaves 0 and 1; the two receivers under leaf 2.
  const int per_leaf = cfg.senders_per_leaf;
  std::vector<transport::TransportEndpoint*> endpoints(topo.hosts.size(), nullptr);
  ManyToManyResult out;
  for (std::size_t i = 0; i < topo.hosts.size(); ++i) {
    transport::TransportConfig ep_cfg = tcfg;
    const bool is_sender = i < static_cast<std::size_t>(2 * per_leaf);
    if (is_sender) {
      ep_cfg.responsive = rng.bernoulli(cfg.responsive_ratio);
      if (ep_cfg.responsive) ++out.responsive_senders;
    }
    auto ep = core::make_endpoint(cfg.proto, simu, *topo.hosts[i], ep_cfg, &recorder);
    endpoints[i] = ep.get();
    topo.hosts[i]->attach(std::move(ep));
  }

  net::Host* recv0 = topo.hosts[static_cast<std::size_t>(2 * per_leaf)];
  net::Host* recv1 = topo.hosts[static_cast<std::size_t>(2 * per_leaf) + 1];
  net::FlowId next_flow = 1;
  for (int s = 0; s < 2 * per_leaf; ++s) {
    for (net::Host* recv : {recv0, recv1}) {
      // Slightly distinct sizes so SRPT ordering is meaningful (equal sizes
      // would make the overcommitment set a pure id tie-break).
      const std::uint64_t bytes = cfg.flow_bytes + static_cast<std::uint64_t>(s) * net::kMssBytes;
      transport::FlowSpec spec{next_flow++, topo.hosts[s]->id(), recv->id(), bytes,
                               sim::TimePoint::zero()};
      transport::TransportEndpoint* ep = endpoints[s];
      sched.at(spec.start, [ep, spec] { ep->start_flow(spec); });
    }
  }

  net::PortSampler down0{simu, network.port_at(topo.leaf_down[2][0]),
                         sim::Duration::microseconds(100)};
  net::PortSampler down1{simu, network.port_at(topo.leaf_down[2][1]),
                         sim::Duration::microseconds(100)};
  down0.start();
  down1.start();

  sched.run_until(sim::TimePoint::zero() + cfg.duration);

  out.mean_downlink_util = 0.5 * (down0.mean_utilization() + down1.mean_utilization());
  out.max_queue_pkts = std::max(down0.max_queue_pkts(), down1.max_queue_pkts());
  double queue_sum = 0.0;
  std::size_t queue_n = 0;
  for (const auto* s : {&down0, &down1}) {
    for (const auto& sample : s->samples()) {
      queue_sum += static_cast<double>(sample.queue_pkts);
      ++queue_n;
    }
  }
  out.mean_queue_pkts = queue_n == 0 ? 0.0 : queue_sum / static_cast<double>(queue_n);
  return out;
}

// ---------------------------------------------------------------------------
// Incast (Section 8.2)
// ---------------------------------------------------------------------------

IncastResult run_incast(const IncastConfig& cfg) {
  const auto rate = cfg.link_rate;
  const auto delay = cfg.link_delay;
  const auto base_rtt = net::path_base_rtt(2, rate, delay);

  sim::Simulation simu{cfg.seed};
  sim::Scheduler& sched = simu.scheduler();
  net::Network network{simu};
  auto qf = core::make_queue_factory(cfg.proto, cfg.queues);
  auto mf = core::make_marker_factory(cfg.proto);
  auto marker = [&]() -> std::unique_ptr<net::DequeueMarker> { return mf ? mf() : nullptr; };

  const net::SwitchId sw = network.add_switch();
  const net::HostId recv = network.add_host(
      rate, delay, std::make_unique<net::DropTailQueue>(cfg.queues.host_nic_pkts));
  const net::PortId recv_down = network.attach_host(recv, sw, qf(false), marker());
  network.switch_at(sw).routes().add_route(network.id_of(recv), recv_down);

  std::vector<net::HostId> senders;
  for (int i = 0; i < cfg.senders; ++i) {
    const net::HostId h = network.add_host(
        rate, delay, std::make_unique<net::DropTailQueue>(cfg.queues.host_nic_pkts));
    const net::PortId down = network.attach_host(h, sw, qf(false), marker());
    network.switch_at(sw).routes().add_route(network.id_of(h), down);
    senders.push_back(h);
  }

  transport::TransportConfig tcfg;
  tcfg.host_rate = rate;
  tcfg.base_rtt = base_rtt;

  stats::FctRecorder recorder{rate, base_rtt};
  std::vector<transport::TransportEndpoint*> endpoints;
  for (auto& host : network.hosts()) {
    auto ep = core::make_endpoint(cfg.proto, simu, host, tcfg, &recorder);
    endpoints.push_back(ep.get());
    host.attach(std::move(ep));
  }

  for (int i = 0; i < cfg.senders; ++i) {
    transport::FlowSpec spec{static_cast<net::FlowId>(i + 1),
                             network.id_of(senders[static_cast<std::size_t>(i)]),
                             network.id_of(recv), cfg.bytes_per_sender, sim::TimePoint::zero()};
    transport::TransportEndpoint* ep = endpoints[static_cast<std::size_t>(i) + 1];
    sched.at(spec.start, [ep, spec] { ep->start_flow(spec); });
  }

  net::PortSampler down{simu, network.port_at(recv_down), sim::Duration::microseconds(10)};
  down.start();

  const std::size_t expected = static_cast<std::size_t>(cfg.senders);
  std::function<void()> poll = [&] {
    if (recorder.completed().size() >= expected) {
      sched.stop();
      return;
    }
    sched.after(sim::Duration::microseconds(100), poll);
  };
  sched.after(sim::Duration::microseconds(100), poll);

  sched.run_until(sim::TimePoint::zero() + cfg.max_time);

  IncastResult out;
  out.fct = recorder.summarize();
  out.max_queue_pkts = down.max_queue_pkts();
  const net::Switch& tor = network.switch_at(sw);
  for (int p = 0; p < tor.port_count(); ++p) {
    out.drops += tor.port(p).queue().stats().dropped;
    out.trims += tor.port(p).queue().stats().trimmed;
  }
  const double total_bytes =
      static_cast<double>(cfg.bytes_per_sender) * static_cast<double>(cfg.senders);
  const double makespan_s = out.fct.max_fct_us * 1e-6;
  out.goodput_gbps = makespan_s > 0 ? total_bytes * 8.0 / makespan_s * 1e-9 : 0.0;
  return out;
}

}  // namespace amrt::harness
