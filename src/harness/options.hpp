// Command-line / environment knobs shared by the bench binaries.
//
// Every figure bench accepts:
//   --paper-scale      full Section 8.1 topology and flow counts (slow)
//   --flows=N          override the flow count
//   --seed=S           RNG seed
//   --loads=a,b,c      subset of load points (fig12)
//   --csv              emit CSV instead of aligned tables
//   --threads=N        sweep worker threads (0 = one per core)
//   --json=PATH        dump sweep results as JSON (benches that sweep
//                      ExperimentConfig points)
// plus AMRT_BENCH_SCALE (a float multiplier on flow counts) and
// AMRT_SWEEP_THREADS from the environment, so CI can shrink everything
// uniformly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace amrt::harness {

struct BenchOptions {
  bool paper_scale = false;
  bool csv = false;
  std::optional<std::size_t> flows;
  std::uint64_t seed = 1;
  std::vector<double> loads;   // empty = bench default
  double scale = 1.0;          // from AMRT_BENCH_SCALE
  unsigned threads = 0;        // sweep workers; 0 = one per core
  std::string json_path;       // empty = no JSON export

  // Applies `scale` to a default count, with a sane floor.
  [[nodiscard]] std::size_t scaled(std::size_t base) const;
};

[[nodiscard]] BenchOptions parse_bench_options(int argc, char** argv);

}  // namespace amrt::harness
