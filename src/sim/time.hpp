// Strongly-typed simulated time.
//
// The whole simulator runs on an integer nanosecond clock: at the rates the
// paper studies (1-100 Gbps) a nanosecond resolves individual bytes, and
// integer arithmetic keeps event ordering exact and runs bit-reproducible.
//
// `Duration` is a signed span, `TimePoint` an absolute instant since the
// start of the simulation. `Bandwidth` (bits/second) converts byte counts
// into transmission durations; that conversion is the single place where the
// simulator decides how long a packet occupies a link.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace amrt::sim {

class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration nanoseconds(std::int64_t ns) { return Duration{ns}; }
  [[nodiscard]] static constexpr Duration microseconds(std::int64_t us) { return Duration{us * 1'000}; }
  [[nodiscard]] static constexpr Duration milliseconds(std::int64_t ms) { return Duration{ms * 1'000'000}; }
  [[nodiscard]] static constexpr Duration seconds(std::int64_t s) { return Duration{s * 1'000'000'000}; }
  // From floating seconds; rounds to the nearest nanosecond.
  [[nodiscard]] static Duration from_seconds(double s);
  [[nodiscard]] static constexpr Duration zero() { return Duration{0}; }
  [[nodiscard]] static constexpr Duration max() { return Duration{INT64_MAX}; }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  [[nodiscard]] constexpr double to_micros() const { return static_cast<double>(ns_) * 1e-3; }
  [[nodiscard]] constexpr double to_millis() const { return static_cast<double>(ns_) * 1e-6; }

  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }
  [[nodiscard]] friend constexpr Duration operator+(Duration a, Duration b) { return Duration{a.ns_ + b.ns_}; }
  [[nodiscard]] friend constexpr Duration operator-(Duration a, Duration b) { return Duration{a.ns_ - b.ns_}; }
  [[nodiscard]] friend constexpr Duration operator*(Duration a, std::int64_t k) { return Duration{a.ns_ * k}; }
  [[nodiscard]] friend constexpr Duration operator*(std::int64_t k, Duration a) { return a * k; }
  // Deliberately no Duration*double operator (it makes Duration*int
  // ambiguous); use scaled() for fractional factors.
  [[nodiscard]] Duration scaled(double k) const { return Duration::from_seconds(to_seconds() * k); }
  [[nodiscard]] friend constexpr Duration operator/(Duration a, std::int64_t k) { return Duration{a.ns_ / k}; }
  [[nodiscard]] friend constexpr double operator/(Duration a, Duration b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }
  [[nodiscard]] friend constexpr Duration operator-(Duration a) { return Duration{-a.ns_}; }
  friend constexpr auto operator<=>(Duration, Duration) = default;

  [[nodiscard]] std::string str() const;  // human-readable, e.g. "12.3us"

 private:
  explicit constexpr Duration(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_ = 0;
};

class TimePoint {
 public:
  constexpr TimePoint() = default;

  [[nodiscard]] static constexpr TimePoint from_ns(std::int64_t ns) { return TimePoint{ns}; }
  [[nodiscard]] static constexpr TimePoint zero() { return TimePoint{0}; }
  [[nodiscard]] static constexpr TimePoint max() { return TimePoint{INT64_MAX}; }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  [[nodiscard]] constexpr double to_micros() const { return static_cast<double>(ns_) * 1e-3; }
  [[nodiscard]] constexpr double to_millis() const { return static_cast<double>(ns_) * 1e-6; }

  [[nodiscard]] friend constexpr TimePoint operator+(TimePoint t, Duration d) { return TimePoint{t.ns_ + d.ns()}; }
  [[nodiscard]] friend constexpr TimePoint operator+(Duration d, TimePoint t) { return t + d; }
  [[nodiscard]] friend constexpr TimePoint operator-(TimePoint t, Duration d) { return TimePoint{t.ns_ - d.ns()}; }
  [[nodiscard]] friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration::nanoseconds(a.ns_ - b.ns_);
  }
  constexpr TimePoint& operator+=(Duration d) { ns_ += d.ns(); return *this; }
  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

  [[nodiscard]] std::string str() const;

 private:
  explicit constexpr TimePoint(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_ = 0;
};

// Link speed in bits per second. Converts byte counts to wire time exactly
// (the intermediate product fits 64 bits for any packet-sized argument).
class Bandwidth {
 public:
  constexpr Bandwidth() = default;

  [[nodiscard]] static constexpr Bandwidth bps(std::int64_t v) { return Bandwidth{v}; }
  [[nodiscard]] static constexpr Bandwidth mbps(std::int64_t v) { return Bandwidth{v * 1'000'000}; }
  [[nodiscard]] static constexpr Bandwidth gbps(std::int64_t v) { return Bandwidth{v * 1'000'000'000}; }

  [[nodiscard]] constexpr std::int64_t bits_per_second() const { return bps_; }
  [[nodiscard]] constexpr double gbps_value() const { return static_cast<double>(bps_) * 1e-9; }

  // Time to serialize `bytes` onto this link, rounded up to a whole ns.
  [[nodiscard]] constexpr Duration tx_time(std::int64_t bytes) const {
    const std::int64_t bits = bytes * 8;
    // ceil(bits * 1e9 / bps) without overflow for packet-scale byte counts.
    const __int128 num = static_cast<__int128>(bits) * 1'000'000'000;
    const __int128 q = (num + bps_ - 1) / bps_;
    return Duration::nanoseconds(static_cast<std::int64_t>(q));
  }

  // Bytes deliverable in `d` at this rate (floor).
  [[nodiscard]] constexpr std::int64_t bytes_in(Duration d) const {
    const __int128 bits = static_cast<__int128>(d.ns()) * bps_ / 1'000'000'000;
    return static_cast<std::int64_t>(bits / 8);
  }

  friend constexpr auto operator<=>(Bandwidth, Bandwidth) = default;
  [[nodiscard]] friend constexpr Bandwidth operator*(Bandwidth b, std::int64_t k) { return Bandwidth{b.bps_ * k}; }
  [[nodiscard]] friend constexpr Bandwidth operator/(Bandwidth b, std::int64_t k) { return Bandwidth{b.bps_ / k}; }

  [[nodiscard]] std::string str() const;

 private:
  explicit constexpr Bandwidth(std::int64_t v) : bps_{v} {}
  std::int64_t bps_ = 0;
};

namespace literals {
[[nodiscard]] constexpr Duration operator""_ns(unsigned long long v) { return Duration::nanoseconds(static_cast<std::int64_t>(v)); }
[[nodiscard]] constexpr Duration operator""_us(unsigned long long v) { return Duration::microseconds(static_cast<std::int64_t>(v)); }
[[nodiscard]] constexpr Duration operator""_ms(unsigned long long v) { return Duration::milliseconds(static_cast<std::int64_t>(v)); }
[[nodiscard]] constexpr Duration operator""_s(unsigned long long v) { return Duration::seconds(static_cast<std::int64_t>(v)); }
[[nodiscard]] constexpr Bandwidth operator""_gbps(unsigned long long v) { return Bandwidth::gbps(static_cast<std::int64_t>(v)); }
[[nodiscard]] constexpr Bandwidth operator""_mbps(unsigned long long v) { return Bandwidth::mbps(static_cast<std::int64_t>(v)); }
}  // namespace literals

}  // namespace amrt::sim
