#include "sim/rng.hpp"

// Header-only today; this TU pins the library symbol table and is the home
// for any future out-of-line distribution helpers.
namespace amrt::sim {}
