// Cancellable future-event set for the discrete-event engine.
//
// Events at equal timestamps fire in insertion order (a monotonically
// increasing sequence number breaks ties), which makes every simulation in
// this repository deterministic for a fixed seed.
//
// Layout: event records live in fixed slabs that never move, recycled
// through a freelist, and the priority heap is a 4-ary min-heap of 16-byte
// POD entries (time, packed seq+slot) — half the levels of a binary heap
// and four entries per cache line, so a sift touches fewer lines. Together with the small-buffer
// `InplaceCallback` this makes steady-state push/pop allocation-free —
// slabs and heap capacity are retained across the whole run.
//
// Handles are weak references carrying a generation counter: destroying a
// Handle does not cancel the event, and a Handle whose slot has been
// recycled becomes inert (cancel is a no-op, pending() is false). A Handle
// must not outlive its EventQueue. Cancellation is O(1) and lazy: a
// cancelled record keeps its heap entry until it reaches the top and is
// skipped, so `size()` over-counts — use `live_size()` for the number of
// events that will actually fire.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace amrt::sim {

class EventQueue {
 public:
  using Callback = InplaceCallback;

  class Handle {
   public:
    Handle() = default;
    // Cancels the event if it has not fired yet. Safe to call repeatedly.
    void cancel();
    [[nodiscard]] bool pending() const;

   private:
    friend class EventQueue;
    Handle(EventQueue* q, std::uint32_t slot, std::uint32_t gen)
        : q_{q}, slot_{slot}, gen_{gen} {}
    EventQueue* q_ = nullptr;
    std::uint32_t slot_ = 0;
    std::uint32_t gen_ = 0;
  };

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  Handle push(TimePoint when, Callback cb);

  // Fast path: constructs the callable directly in the slab record, with no
  // intermediate InplaceCallback move. Lambdas land here; a pre-built
  // Callback takes the overload above.
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, Callback> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Handle push(TimePoint when, F&& f) {
    const std::uint32_t slot = alloc_slot();
    Record& rec = record(slot);
    rec.cb.assign(std::forward<F>(f));
    rec.live = true;
    heap_.push_back(HeapEntry{when.ns(), pack_seq_slot(next_seq_++, slot)});
    sift_up(heap_.size() - 1);
    ++live_;
    return Handle{this, slot, rec.gen};
  }

  [[nodiscard]] bool empty() const { return live_ == 0; }
  // Heap entries, including cancelled-but-unskipped records.
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  // Events that will actually fire.
  [[nodiscard]] std::size_t live_size() const { return live_; }
  // Timestamp of the earliest live event, if any.
  [[nodiscard]] std::optional<TimePoint> next_time();

  struct Ready {
    TimePoint when;
    Callback cb;
  };
  // Removes and returns the earliest live event.
  [[nodiscard]] std::optional<Ready> pop();

  // Fires the earliest live event if its timestamp is <= `horizon`: calls
  // `pre(when)` (the scheduler advances its clock here), then invokes the
  // callback *in place* in its slab record — no callback move — and recycles
  // the slot. Returns false if the queue is empty or the head is past the
  // horizon. This is the dispatch fast path; `pop()` stays for callers that
  // need to take ownership of the callback.
  template <typename PreFire>
  bool fire_next(TimePoint horizon, PreFire&& pre) {
    drop_cancelled();
    if (heap_.empty() || heap_.front().when_ns > horizon.ns()) return false;
    const HeapEntry top = heap_.front();
    const std::uint32_t slot = entry_slot(top);
    pop_top();
    Record& rec = record(slot);
    // Handles go inert before the callback runs, matching pop(): an event
    // that cancels its own handle mid-flight is a no-op. The record itself
    // stays put even if the callback pushes new events (slabs never move).
    rec.live = false;
    --live_;
    pre(TimePoint::from_ns(top.when_ns));
    try {
      rec.cb();
    } catch (...) {
      recycle_slot(slot);
      throw;
    }
    recycle_slot(slot);
    return true;
  }

 private:
  static constexpr std::uint32_t kSlabSize = 256;  // records per slab
  static constexpr std::uint32_t kNoSlot = UINT32_MAX;

  struct Record {
    Callback cb;
    std::uint32_t gen = 0;        // bumped on every recycle; pairs with Handle
    std::uint32_t next_free = 0;  // freelist link while the slot is free
    bool live = false;            // scheduled and not cancelled/fired
  };

  // 16-byte heap entry: the insertion sequence number (upper 40 bits, ~10^12
  // events) and the slot index (lower 24 bits, ~16M concurrent events) share
  // one word. Since sequence numbers are unique, comparing the packed word
  // for equal timestamps is exactly the FIFO tie-break — the slot bits never
  // decide an ordering. Four entries per cache line.
  struct HeapEntry {
    std::int64_t when_ns;
    std::uint64_t seq_slot;
  };
  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (std::uint64_t{1} << kSlotBits) - 1;
  [[nodiscard]] static std::uint32_t entry_slot(const HeapEntry& e) {
    return static_cast<std::uint32_t>(e.seq_slot & kSlotMask);
  }
  [[nodiscard]] static std::uint64_t pack_seq_slot(std::uint64_t seq, std::uint32_t slot) {
    assert(slot <= kSlotMask && seq < (std::uint64_t{1} << (64 - kSlotBits)));
    return (seq << kSlotBits) | slot;
  }
  // True when `a` fires after `b` (later time, or same time but inserted
  // later — FIFO among equal timestamps).
  static bool after(const HeapEntry& a, const HeapEntry& b) {
    if (a.when_ns != b.when_ns) return a.when_ns > b.when_ns;
    return a.seq_slot > b.seq_slot;
  }

  static constexpr std::size_t kHeapArity = 4;

  void sift_up(std::size_t i) {
    const HeapEntry e = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / kHeapArity;
      if (!after(heap_[parent], e)) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  // Removes the root (earliest) heap entry: walk the hole down along
  // min-children to a leaf, drop the displaced back element there, and sift
  // it up. The displaced element came from the bottom of the heap, so this
  // does fewer comparisons than a classic test-against-element sift-down
  // (same trick as libstdc++'s __pop_heap/__adjust_heap).
  void pop_top() {
    const HeapEntry e = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n == 0) return;
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = kHeapArity * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = std::min(first + kHeapArity, n);
      for (std::size_t c = first + 1; c < last; ++c) {
        if (after(heap_[best], heap_[c])) best = c;
      }
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = e;
    sift_up(i);
  }

  [[nodiscard]] Record& record(std::uint32_t slot) {
    return slabs_[slot / kSlabSize][slot % kSlabSize];
  }
  [[nodiscard]] const Record& record(std::uint32_t slot) const {
    return slabs_[slot / kSlabSize][slot % kSlabSize];
  }
  [[nodiscard]] std::uint32_t alloc_slot();
  void recycle_slot(std::uint32_t slot);
  void cancel(std::uint32_t slot, std::uint32_t gen);
  [[nodiscard]] bool pending(std::uint32_t slot, std::uint32_t gen) const;
  // Frees cancelled records sitting at the top of the heap.
  void drop_cancelled();

  std::vector<std::unique_ptr<Record[]>> slabs_;
  std::vector<HeapEntry> heap_;
  std::uint32_t free_head_ = kNoSlot;
  std::uint32_t slot_count_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace amrt::sim
