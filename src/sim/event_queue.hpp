// Cancellable future-event set for the discrete-event engine.
//
// Events at equal timestamps fire in insertion order (a monotonically
// increasing sequence number breaks ties), which makes every simulation in
// this repository deterministic for a fixed seed.
//
// Layout: event records live in fixed slabs that never move, recycled
// through a freelist. The priority structure is a two-level timing wheel
// rather than a heap: a near window of 2us buckets (each a small vector
// kept (time, seq)-sorted by insertion from the back) plus an unsorted far
// list for events beyond the window, re-bucketed when the window advances
// past them. Simulated traffic schedules almost everything a few link-times
// ahead, so a push is an append to a ~3-entry bucket and a pop is a pointer
// bump — O(1) against the O(log n) sift of a heap — while the global
// (time, seq) firing order is exactly the heap's: buckets partition time,
// and each bucket is totally ordered. Together with the small-buffer
// `InplaceCallback` this makes steady-state push/pop allocation-free —
// slabs and bucket capacity are retained across the whole run.
//
// Handles are weak references carrying a generation counter: destroying a
// Handle does not cancel the event, and a Handle whose slot has been
// recycled becomes inert (cancel is a no-op, pending() is false). A Handle
// must not outlive its EventQueue. Cancellation is O(1) and lazy: a
// cancelled record keeps its bucket entry until the drain cursor reaches it
// and it is skipped, so `size()` over-counts — use `live_size()` for the
// number of events that will actually fire.
#pragma once

#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace amrt::sim {

class EventQueue {
 public:
  using Callback = InplaceCallback;

  class Handle {
   public:
    Handle() = default;
    // Cancels the event if it has not fired yet. Safe to call repeatedly.
    void cancel();
    [[nodiscard]] bool pending() const;

   private:
    friend class EventQueue;
    Handle(EventQueue* q, std::uint32_t slot, std::uint32_t gen)
        : q_{q}, slot_{slot}, gen_{gen} {}
    EventQueue* q_ = nullptr;
    std::uint32_t slot_ = 0;
    std::uint32_t gen_ = 0;
  };

  EventQueue() : buckets_(kBuckets) {}
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  Handle push(TimePoint when, Callback cb);

  // Raw lane for fire-and-forget events: a bare function pointer plus
  // context, stored in a 16-byte side record instead of a full callback
  // slab record. No Handle, no cancellation, no generation counter — made
  // for the port-wakeup event, which is 40% of all events in a congested
  // run and is never cancelled. Raw events share the wheel and the sequence
  // counter, so they interleave with regular events in exact FIFO order.
  using RawFn = void (*)(void*);
  void push_raw(TimePoint when, RawFn fn, void* ctx);

  // Fast path: constructs the callable directly in the slab record, with no
  // intermediate InplaceCallback move. Lambdas land here; a pre-built
  // Callback takes the overload above.
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, Callback> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Handle push(TimePoint when, F&& f) {
    const std::uint32_t slot = alloc_slot();
    Record& rec = record(slot);
    rec.cb.assign(std::forward<F>(f));
    rec.live = true;
    insert_entry(when.ns(), slot);
    ++live_;
    return Handle{this, slot, rec.gen};
  }

  [[nodiscard]] bool empty() const { return live_ == 0; }
  // Scheduled entries, including cancelled-but-unskipped records.
  [[nodiscard]] std::size_t size() const { return entry_count_; }
  // Events that will actually fire.
  [[nodiscard]] std::size_t live_size() const { return live_; }
  // Timestamp of the earliest live event, if any.
  [[nodiscard]] std::optional<TimePoint> next_time();

  struct Ready {
    TimePoint when;
    Callback cb;
  };
  // Removes and returns the earliest live event.
  [[nodiscard]] std::optional<Ready> pop();

  // Fires the earliest live event if its timestamp is <= `horizon`: calls
  // `pre(when)` (the scheduler advances its clock here), then invokes the
  // callback *in place* in its slab record — no callback move — and recycles
  // the slot. Returns false if the queue is empty or the head is past the
  // horizon. This is the dispatch fast path; `pop()` stays for callers that
  // need to take ownership of the callback.
  template <typename PreFire>
  bool fire_next(TimePoint horizon, PreFire&& pre) {
    const Entry* head = peek_live();
    if (head == nullptr || head->when_ns > horizon.ns()) return false;
    // Copy before firing: the callback may push into (and reallocate) the
    // bucket the entry lives in.
    const Entry top = *head;
    consume_head();
    const std::uint32_t slot = entry_slot(top);
    --live_;
    if ((slot & kRawFlag) != 0) {
      // Raw record recycled before the call: the callee may push_raw again.
      const RawRec r = raw_recs_[slot & ~kRawFlag];
      recycle_raw(slot & ~kRawFlag);
      pre(TimePoint::from_ns(top.when_ns));
      r.fn(r.ctx);
      return true;
    }
    Record& rec = record(slot);
    // Handles go inert before the callback runs, matching pop(): an event
    // that cancels its own handle mid-flight is a no-op. The record itself
    // stays put even if the callback pushes new events (slabs never move).
    rec.live = false;
    pre(TimePoint::from_ns(top.when_ns));
    try {
      rec.cb();
    } catch (...) {
      recycle_slot(slot);
      throw;
    }
    recycle_slot(slot);
    return true;
  }

 private:
  static constexpr std::uint32_t kSlabSize = 256;  // records per slab
  static constexpr std::uint32_t kNoSlot = UINT32_MAX;

  struct Record {
    Callback cb;
    std::uint32_t gen = 0;        // bumped on every recycle; pairs with Handle
    std::uint32_t next_free = 0;  // freelist link while the slot is free
    bool live = false;            // scheduled and not cancelled/fired
  };

  // 16-byte wheel entry: the insertion sequence number (upper 40 bits, ~10^12
  // events) and the slot index (lower 24 bits, ~16M concurrent events) share
  // one word. Since sequence numbers are unique, comparing the packed word
  // for equal timestamps is exactly the FIFO tie-break — the slot bits never
  // decide an ordering.
  struct Entry {
    std::int64_t when_ns;
    std::uint64_t seq_slot;
  };
  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (std::uint64_t{1} << kSlotBits) - 1;
  // Top bit of the slot field marks a raw-lane event; the remaining 23 bits
  // index `raw_recs_` instead of the callback slabs.
  static constexpr std::uint32_t kRawFlag = std::uint32_t{1} << (kSlotBits - 1);
  [[nodiscard]] static std::uint32_t entry_slot(const Entry& e) {
    return static_cast<std::uint32_t>(e.seq_slot & kSlotMask);
  }
  [[nodiscard]] static std::uint64_t pack_seq_slot(std::uint64_t seq, std::uint32_t slot) {
    assert(slot <= kSlotMask && seq < (std::uint64_t{1} << (64 - kSlotBits)));
    return (seq << kSlotBits) | slot;
  }
  // True when `a` fires after `b` (later time, or same time but inserted
  // later — FIFO among equal timestamps).
  static bool after(const Entry& a, const Entry& b) {
    if (a.when_ns != b.when_ns) return a.when_ns > b.when_ns;
    return a.seq_slot > b.seq_slot;
  }

  // Wheel geometry: 512 buckets of 2us cover a ~1ms near window — wider
  // than any link tx time, propagation delay, or RTT in the experiments, so
  // only long recovery backoffs ever take the far path. Coarser, fewer
  // buckets beat finer, more: sorted insertion into a ~10-entry bucket is
  // still a short back-scan, while bucket vectors are allocated (and freed)
  // once per simulation each.
  static constexpr int kBucketShift = 11;  // 2048 ns per bucket
  static constexpr std::size_t kBuckets = 512;
  static constexpr std::int64_t kBucketNs = std::int64_t{1} << kBucketShift;
  static constexpr std::size_t kWords = kBuckets / 64;

  // Positions the drain cursor on the earliest live entry, reclaiming
  // cancelled entries it passes; returns nullptr when no events remain. The
  // hot case — cursor already on a live entry — stays inline.
  [[nodiscard]] const Entry* peek_live() {
    for (;;) {
      std::vector<Entry>& b = buckets_[cur_];
      if (drain_idx_ < b.size()) {
        const Entry& e = b[drain_idx_];
        // Raw events cannot be cancelled, so they are live by construction.
        const std::uint32_t slot = entry_slot(e);
        if ((slot & kRawFlag) != 0 || record(slot).live) return &e;
        recycle_slot(slot);  // cancelled: reclaim lazily
        ++drain_idx_;
        --entry_count_;
        continue;
      }
      if (!advance_bucket()) return nullptr;
    }
  }
  void consume_head() {
    ++drain_idx_;
    --entry_count_;
  }

  // Keeps the bucket (when, seq)-sorted. Pushes mostly carry later
  // timestamps and always carry later sequence numbers than what a bucket
  // already holds, so the back-to-front scan usually stops immediately. The
  // scan can never cross the drain cursor: every entry the cursor has passed
  // fired at or before the current simulation time, and new events are never
  // scheduled in the past, so they compare (time, seq)-after that prefix.
  void insort(std::size_t idx, const Entry& e) {
    std::vector<Entry>& b = buckets_[idx];
    std::size_t pos = b.size();
    b.push_back(e);
    while (pos > 0 && after(b[pos - 1], e)) {
      b[pos] = b[pos - 1];
      --pos;
    }
    b[pos] = e;
    occupied_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
  }

  void insert_entry(std::int64_t when_ns, std::uint32_t slot) {
    const Entry e{when_ns, pack_seq_slot(next_seq_++, slot)};
    ++entry_count_;
    if (entry_count_ == 1) [[unlikely]] {
      rebase_empty(when_ns);
    }
    std::int64_t idx = (when_ns - base_ns_) >> kBucketShift;
    if (idx >= static_cast<std::int64_t>(kBuckets)) [[unlikely]] {
      if (far_.empty() || when_ns < far_min_ns_) far_min_ns_ = when_ns;
      far_.push_back(e);
      return;
    }
    // An event earlier than the cursor's bucket (possible when the window
    // was anchored ahead of the clock) still fires in order: fold it into
    // the current bucket, where the sorted insert puts it ahead of every
    // later-timestamped entry.
    if (idx < static_cast<std::int64_t>(cur_)) idx = static_cast<std::int64_t>(cur_);
    insort(static_cast<std::size_t>(idx), e);
  }

  void rebase_empty(std::int64_t when_ns);
  bool advance_bucket();

  // Raw-lane side records. While free, `ctx` doubles as the freelist link
  // (stored as an index widened to a pointer-sized integer).
  struct RawRec {
    RawFn fn;
    void* ctx;
  };
  [[nodiscard]] std::uint32_t alloc_raw(RawFn fn, void* ctx) {
    std::uint32_t idx;
    if (raw_free_head_ != kNoSlot) {
      idx = raw_free_head_;
      raw_free_head_ =
          static_cast<std::uint32_t>(reinterpret_cast<std::uintptr_t>(raw_recs_[idx].ctx));
    } else {
      idx = static_cast<std::uint32_t>(raw_recs_.size());
      assert(idx < kRawFlag);
      raw_recs_.push_back(RawRec{});
    }
    raw_recs_[idx] = RawRec{fn, ctx};
    return idx;
  }
  void recycle_raw(std::uint32_t idx) {
    raw_recs_[idx].ctx = reinterpret_cast<void*>(static_cast<std::uintptr_t>(raw_free_head_));
    raw_free_head_ = idx;
  }

  [[nodiscard]] Record& record(std::uint32_t slot) {
    return slabs_[slot / kSlabSize][slot % kSlabSize];
  }
  [[nodiscard]] const Record& record(std::uint32_t slot) const {
    return slabs_[slot / kSlabSize][slot % kSlabSize];
  }
  [[nodiscard]] std::uint32_t alloc_slot();
  void recycle_slot(std::uint32_t slot);
  void cancel(std::uint32_t slot, std::uint32_t gen);
  [[nodiscard]] bool pending(std::uint32_t slot, std::uint32_t gen) const;

  std::vector<std::unique_ptr<Record[]>> slabs_;
  std::uint32_t free_head_ = kNoSlot;
  std::uint32_t slot_count_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;

  // The wheel. `base_ns_` is bucket 0's window start (bucket-aligned);
  // `cur_`/`drain_idx_` are the drain cursor. Buckets behind the cursor are
  // empty; the bitmap tracks non-empty buckets at/ahead of it. `far_` holds
  // events past the window (unsorted; re-bucketed when the window advances).
  std::vector<std::vector<Entry>> buckets_;
  std::array<std::uint64_t, kWords> occupied_{};
  std::int64_t base_ns_ = 0;
  std::size_t cur_ = 0;
  std::size_t drain_idx_ = 0;
  std::size_t entry_count_ = 0;
  std::vector<Entry> far_;
  std::int64_t far_min_ns_ = 0;

  std::vector<RawRec> raw_recs_;
  std::uint32_t raw_free_head_ = kNoSlot;
};

inline void EventQueue::push_raw(TimePoint when, RawFn fn, void* ctx) {
  insert_entry(when.ns(), alloc_raw(fn, ctx) | kRawFlag);
  ++live_;
}

}  // namespace amrt::sim
