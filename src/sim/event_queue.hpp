// Cancellable future-event set for the discrete-event engine.
//
// Events at equal timestamps fire in insertion order (a monotonically
// increasing sequence number breaks ties), which makes every simulation in
// this repository deterministic for a fixed seed.
//
// Cancellation is O(1) and lazy: a cancelled record stays in the heap until
// it reaches the top and is skipped. Handles are weak: destroying a Handle
// does not cancel the event.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace amrt::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  class Handle {
   public:
    Handle() = default;
    // Cancels the event if it has not fired yet. Safe to call repeatedly.
    void cancel();
    [[nodiscard]] bool pending() const;

   private:
    friend class EventQueue;
    explicit Handle(std::weak_ptr<struct EventRecord> rec) : rec_{std::move(rec)} {}
    std::weak_ptr<struct EventRecord> rec_;
  };

  Handle push(TimePoint when, Callback cb);

  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::size_t size() const;  // includes not-yet-skipped cancelled records
  // Timestamp of the earliest live event, if any.
  [[nodiscard]] std::optional<TimePoint> next_time();

  struct Ready {
    TimePoint when;
    Callback cb;
  };
  // Removes and returns the earliest live event.
  [[nodiscard]] std::optional<Ready> pop();

 private:
  void drop_cancelled();

  struct Compare {
    bool operator()(const std::shared_ptr<EventRecord>& a, const std::shared_ptr<EventRecord>& b) const;
  };
  std::priority_queue<std::shared_ptr<EventRecord>, std::vector<std::shared_ptr<EventRecord>>, Compare> heap_;
  std::uint64_t next_seq_ = 0;
  std::shared_ptr<std::size_t> live_ = std::make_shared<std::size_t>(0);
};

struct EventRecord {
  TimePoint when;
  std::uint64_t seq = 0;
  EventQueue::Callback cb;
  bool cancelled = false;
  bool fired = false;
  // Lets Handle::cancel decrement the owning queue's live count even though
  // the handle outlives nothing else of the queue's internals.
  std::weak_ptr<std::size_t> live_count;
};

}  // namespace amrt::sim
