// The discrete-event scheduler: virtual clock plus the event loop.
//
// Every component in the simulator holds a `Scheduler&` and expresses all
// timing through `at`/`after`. Time only advances inside `run*`; callbacks
// always observe `now()` equal to their own firing time.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <stdexcept>

#include "audit/auditor.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace amrt::sim {

class Scheduler {
 public:
  using Callback = EventQueue::Callback;
  using Handle = EventQueue::Handle;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] TimePoint now() const { return now_; }

  // Schedule `cb` at an absolute instant; `when` must not be in the past.
  // Templated so lambdas are constructed directly in the event record.
  template <typename F>
  Handle at(TimePoint when, F&& cb) {
    if (when < now_) throw std::logic_error("Scheduler::at: scheduling into the past");
    return queue_.push(when, std::forward<F>(cb));
  }
  // Schedule `cb` after a non-negative delay from now.
  template <typename F>
  Handle after(Duration delay, F&& cb) {
    if (delay < Duration::zero()) throw std::logic_error("Scheduler::after: negative delay");
    return queue_.push(now_ + delay, std::forward<F>(cb));
  }

  // Fire-and-forget lane: no Handle, no cancellation, half the per-event
  // bookkeeping. Use for events that are never cancelled and capture only a
  // context pointer (the port serializer wakeup is the canonical case).
  void at_raw(TimePoint when, EventQueue::RawFn fn, void* ctx) {
    if (when < now_) throw std::logic_error("Scheduler::at_raw: scheduling into the past");
    queue_.push_raw(when, fn, ctx);
  }

  // Runs until the event set is exhausted (or stop()/limits hit).
  void run();
  // Runs events with timestamp <= `until`, then sets the clock to `until`.
  void run_until(TimePoint until);
  // Runs events with timestamp strictly < `end` and leaves the clock at the
  // last fired event. The sharded driver (net/partition.hpp) executes one
  // conservative time window per call; windows are half-open so a message
  // produced at t and delivered at exactly t + lookahead lands in the *next*
  // window, never this one.
  void run_window(TimePoint end);
  // Timestamp of the earliest pending event, if any. The shard coordinator
  // uses the global minimum to skip idle windows.
  [[nodiscard]] std::optional<TimePoint> next_event_time() { return queue_.next_time(); }
  // Requests the current run loop to return after the in-flight callback.
  void stop() { stopped_ = true; }

  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  [[nodiscard]] bool idle() const { return queue_.empty(); }
  // Events scheduled and not yet fired/cancelled (telemetry).
  [[nodiscard]] std::size_t pending_events() const { return queue_.live_size(); }

  // Safety valve for runaway simulations (0 = unlimited).
  void set_event_limit(std::uint64_t limit) { event_limit_ = limit; }

  // Invariant auditor attached to this run (normally by the owning
  // Simulation). In builds without AMRT_AUDIT `auditor()` is a constexpr
  // nullptr, so every `if (auto* a = sched.auditor()) a->hook(...)` site —
  // arguments included — is dead code the compiler removes.
#ifdef AMRT_AUDIT
  void set_auditor(audit::Auditor* a) { auditor_ = a; }
  [[nodiscard]] audit::Auditor* auditor() const { return auditor_; }
#else
  void set_auditor(audit::Auditor* /*a*/) {}
  [[nodiscard]] static constexpr audit::Auditor* auditor() { return nullptr; }
#endif

 private:
  bool dispatch_next(TimePoint horizon);

  EventQueue queue_;
  TimePoint now_ = TimePoint::zero();
  std::uint64_t processed_ = 0;
  std::uint64_t event_limit_ = 0;
  bool stopped_ = false;
#ifdef AMRT_AUDIT
  audit::Auditor* auditor_ = nullptr;
#endif
};

}  // namespace amrt::sim
