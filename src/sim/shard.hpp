// Per-shard simulation contexts for partitioned (multi-threaded) runs.
//
// A sharded run owns one `Simulation` per shard. Shard 0 is the *master*:
// it carries the run's seed unchanged, so everything built against it —
// topology wiring, workload draws, flow schedules — is bit-identical to a
// serial run with the same seed. Shards 1..n-1 get independent streams
// derived from the master seed with a splitmix finalizer, so a given shard
// count is reproducible run-to-run and no two shards share an RNG.
//
// The group only owns contexts; the partition map and the barrier-driven
// execution loop live in net/partition.hpp (they need the network layer).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/simulation.hpp"

namespace amrt::sim {

class ShardGroup {
 public:
  // `n` must be >= 1; shard 0 is seeded with `seed` exactly.
  explicit ShardGroup(std::uint64_t seed, unsigned n);
  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  [[nodiscard]] unsigned size() const { return static_cast<unsigned>(sims_.size()); }
  [[nodiscard]] Simulation& shard(unsigned i) { return *sims_[i]; }
  [[nodiscard]] const Simulation& shard(unsigned i) const { return *sims_[i]; }
  // The build-side context: seed-identical to a serial Simulation{seed}.
  [[nodiscard]] Simulation& master() { return *sims_[0]; }

  // Sum of events fired across all shard schedulers.
  [[nodiscard]] std::uint64_t events_processed() const;
  // Latest virtual clock across shards (the run's end time at drain).
  [[nodiscard]] TimePoint now_max() const;

  // The stream-derivation function, exposed so tests can pin it down.
  [[nodiscard]] static std::uint64_t derive_seed(std::uint64_t seed, unsigned shard);

 private:
  std::vector<std::unique_ptr<Simulation>> sims_;
};

}  // namespace amrt::sim
