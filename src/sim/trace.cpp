#include "sim/trace.hpp"

#include <atomic>
#include <cstdarg>

namespace amrt::sim::trace {

namespace {
// Atomic so SweepRunner worker threads can log while another thread adjusts
// the level; stderr writes themselves are serialized by stdio.
std::atomic<Level> g_level{Level::kWarn};
}

Level level() { return g_level.load(std::memory_order_relaxed); }
void set_level(Level lvl) { g_level.store(lvl, std::memory_order_relaxed); }

void emit(Level lvl, const char* fmt, ...) {
  if (static_cast<int>(lvl) > static_cast<int>(level())) return;
  std::va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
  va_end(args);
}

}  // namespace amrt::sim::trace
