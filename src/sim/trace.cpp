#include "sim/trace.hpp"

#include <cstdarg>

namespace amrt::sim::trace {

namespace {
Level g_level = Level::kWarn;
}

Level level() { return g_level; }
void set_level(Level lvl) { g_level = lvl; }

void emit(Level lvl, const char* fmt, ...) {
  if (static_cast<int>(lvl) > static_cast<int>(g_level)) return;
  std::va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
  va_end(args);
}

}  // namespace amrt::sim::trace
