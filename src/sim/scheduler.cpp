#include "sim/scheduler.hpp"

#include <stdexcept>

namespace amrt::sim {

Scheduler::Handle Scheduler::at(TimePoint when, Callback cb) {
  if (when < now_) throw std::logic_error("Scheduler::at: scheduling into the past");
  return queue_.push(when, std::move(cb));
}

Scheduler::Handle Scheduler::after(Duration delay, Callback cb) {
  if (delay < Duration::zero()) throw std::logic_error("Scheduler::after: negative delay");
  return queue_.push(now_ + delay, std::move(cb));
}

bool Scheduler::dispatch_next(TimePoint horizon) {
  auto next = queue_.next_time();
  if (!next || *next > horizon) return false;
  auto ready = queue_.pop();
  now_ = ready->when;
  ++processed_;
  ready->cb();
  return true;
}

void Scheduler::run() {
  stopped_ = false;
  while (!stopped_) {
    if (event_limit_ != 0 && processed_ >= event_limit_) break;
    if (!dispatch_next(TimePoint::max())) break;
  }
}

void Scheduler::run_until(TimePoint until) {
  stopped_ = false;
  while (!stopped_) {
    if (event_limit_ != 0 && processed_ >= event_limit_) break;
    if (!dispatch_next(until)) break;
  }
  // stop() freezes the clock where the stopping event fired; an exhausted
  // horizon advances it to `until`.
  if (!stopped_ && now_ < until) now_ = until;
}

}  // namespace amrt::sim
