#include "sim/scheduler.hpp"

namespace amrt::sim {

bool Scheduler::dispatch_next(TimePoint horizon) {
  return queue_.fire_next(horizon, [this](TimePoint when) {
#ifdef AMRT_AUDIT
    if (auditor_ != nullptr) auditor_->on_event_fire(when.ns(), now_.ns());
#endif
    now_ = when;
    ++processed_;
  });
}

void Scheduler::run() {
  stopped_ = false;
  while (!stopped_) {
    if (event_limit_ != 0 && processed_ >= event_limit_) break;
    if (!dispatch_next(TimePoint::max())) break;
  }
}

void Scheduler::run_window(TimePoint end) {
  // Timestamps are integral nanoseconds, so "strictly before end" is the
  // same horizon as "at or before end - 1ns". Unlike run_until, the clock is
  // NOT bumped to the window edge: at() during the next window's injection
  // phase must still accept deliveries anywhere >= the last fired event.
  const TimePoint horizon = TimePoint::from_ns(end.ns() - 1);
  while (true) {
    if (event_limit_ != 0 && processed_ >= event_limit_) break;
    if (!dispatch_next(horizon)) break;
  }
}

void Scheduler::run_until(TimePoint until) {
  stopped_ = false;
  while (!stopped_) {
    if (event_limit_ != 0 && processed_ >= event_limit_) break;
    if (!dispatch_next(until)) break;
  }
  // stop() freezes the clock where the stopping event fired; an exhausted
  // horizon advances it to `until`.
  if (!stopped_ && now_ < until) now_ = until;
}

}  // namespace amrt::sim
