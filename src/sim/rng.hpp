// Seeded random source shared by workload generation and experiments.
//
// A thin façade over std::mt19937_64 so every random decision in the
// repository flows through one reproducible stream per experiment.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace amrt::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_{seed} {}

  // Uniform real in [lo, hi).
  [[nodiscard]] double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>{lo, hi}(engine_);
  }
  // Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
  }
  // Exponential with the given mean (inter-arrival times of a Poisson process).
  [[nodiscard]] double exponential(double mean) {
    return std::exponential_distribution<double>{1.0 / mean}(engine_);
  }
  [[nodiscard]] bool bernoulli(double p) {
    return std::bernoulli_distribution{p}(engine_);
  }
  // Uniform index in [0, n).
  [[nodiscard]] std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }
  // A derived, independent stream (for splitting one seed across components).
  [[nodiscard]] Rng fork() { return Rng{engine_()}; }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace amrt::sim
