#include "sim/shard.hpp"

#include <stdexcept>

namespace amrt::sim {

std::uint64_t ShardGroup::derive_seed(std::uint64_t seed, unsigned shard) {
  if (shard == 0) return seed;  // the master stream is the serial stream
  // Splitmix64 finalizer over (seed, shard): adjacent shard indices map to
  // statistically independent streams even for small seeds.
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(shard) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

ShardGroup::ShardGroup(std::uint64_t seed, unsigned n) {
  if (n == 0) throw std::invalid_argument("ShardGroup requires at least one shard");
  sims_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    sims_.push_back(std::make_unique<Simulation>(derive_seed(seed, i)));
  }
}

std::uint64_t ShardGroup::events_processed() const {
  std::uint64_t total = 0;
  for (const auto& s : sims_) total += s->events_processed();
  return total;
}

TimePoint ShardGroup::now_max() const {
  TimePoint t = TimePoint::zero();
  for (const auto& s : sims_) {
    if (s->now() > t) t = s->now();
  }
  return t;
}

}  // namespace amrt::sim
