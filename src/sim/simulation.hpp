// The owning context of one simulation run.
//
// `Simulation` bundles the three pieces of per-run mutable state — the
// event loop (`Scheduler`), the seeded random stream (`Rng`) and a trace
// sink for run-scoped diagnostics — behind a single object that is threaded
// through every constructor in `net::`, `transport::` and `harness::`.
// Nothing a simulation touches lives outside its Simulation, which is what
// lets `harness::SweepRunner` run many of them on concurrent threads with
// bit-identical results to serial execution.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "sim/scheduler.hpp"

namespace amrt::sim {

// Per-run diagnostic collector. Warnings are recorded on the owning
// Simulation (bounded) and forwarded to the global leveled logger; under a
// parallel sweep each run keeps its own tally instead of clobbering shared
// state.
class TraceSink {
 public:
  void warn(const char* fmt, ...) __attribute__((format(printf, 2, 3)));

  [[nodiscard]] std::uint64_t warn_count() const { return warns_; }
  // First `kMaxStored` formatted warnings, for tests and result reports.
  [[nodiscard]] const std::vector<std::string>& warnings() const { return stored_; }

 private:
  static constexpr std::size_t kMaxStored = 64;
  std::uint64_t warns_ = 0;
  std::vector<std::string> stored_;
};

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1) : seed_{seed}, rng_{seed} {
    // The auditor lives and dies with the run (per-Simulation state, so
    // parallel sweeps never share a check path). In builds without
    // AMRT_AUDIT this binds a stateless stub and compiles to nothing.
    sched_.set_auditor(&auditor_);
  }
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] Scheduler& scheduler() { return sched_; }
  [[nodiscard]] const Scheduler& scheduler() const { return sched_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] TraceSink& trace() { return trace_; }
  [[nodiscard]] audit::Auditor& auditor() { return auditor_; }
  [[nodiscard]] const audit::Auditor& auditor() const { return auditor_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  // Clock and event-loop conveniences, so most callers never name the
  // scheduler explicitly.
  [[nodiscard]] TimePoint now() const { return sched_.now(); }
  template <typename F>
  Scheduler::Handle at(TimePoint when, F&& cb) {
    return sched_.at(when, std::forward<F>(cb));
  }
  template <typename F>
  Scheduler::Handle after(Duration delay, F&& cb) {
    return sched_.after(delay, std::forward<F>(cb));
  }
  void run() { sched_.run(); }
  void run_until(TimePoint until) { sched_.run_until(until); }
  void stop() { sched_.stop(); }
  [[nodiscard]] std::uint64_t events_processed() const { return sched_.events_processed(); }

 private:
  std::uint64_t seed_;
  Scheduler sched_;
  Rng rng_;
  TraceSink trace_;
  audit::Auditor auditor_;
};

}  // namespace amrt::sim
