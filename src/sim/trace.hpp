// Minimal leveled logging for the simulator.
//
// Packet-level tracing is far too hot to leave enabled: AMRT_TRACE compiles
// to nothing unless AMRT_ENABLE_TRACE is defined. Warnings/info are runtime
// gated and used only on slow paths (setup, experiment summaries).
#pragma once

#include <cstdio>
#include <string>

namespace amrt::sim::trace {

enum class Level { kOff = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

Level level();
void set_level(Level lvl);

void emit(Level lvl, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace amrt::sim::trace

#define AMRT_WARN(...) ::amrt::sim::trace::emit(::amrt::sim::trace::Level::kWarn, __VA_ARGS__)
#define AMRT_INFO(...) ::amrt::sim::trace::emit(::amrt::sim::trace::Level::kInfo, __VA_ARGS__)

#ifdef AMRT_ENABLE_TRACE
#define AMRT_TRACE(...) ::amrt::sim::trace::emit(::amrt::sim::trace::Level::kDebug, __VA_ARGS__)
#else
#define AMRT_TRACE(...) static_cast<void>(0)
#endif
