#include "sim/simulation.hpp"

#include <cstdarg>
#include <cstdio>

#include "sim/trace.hpp"

namespace amrt::sim {

void TraceSink::warn(const char* fmt, ...) {
  char buf[512];
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);

  ++warns_;
  if (stored_.size() < kMaxStored) stored_.emplace_back(buf);
  trace::emit(trace::Level::kWarn, "%s", buf);
}

}  // namespace amrt::sim
