#include "sim/time.hpp"

#include <cmath>
#include <cstdio>

namespace amrt::sim {

Duration Duration::from_seconds(double s) {
  return Duration{static_cast<std::int64_t>(std::llround(s * 1e9))};
}

namespace {
std::string format_ns(std::int64_t ns) {
  char buf[64];
  const double a = static_cast<double>(ns < 0 ? -ns : ns);
  if (a >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.3fs", static_cast<double>(ns) * 1e-9);
  } else if (a >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.3fms", static_cast<double>(ns) * 1e-6);
  } else if (a >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.3fus", static_cast<double>(ns) * 1e-3);
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(ns));
  }
  return buf;
}
}  // namespace

std::string Duration::str() const { return format_ns(ns_); }
std::string TimePoint::str() const { return format_ns(ns_); }

std::string Bandwidth::str() const {
  char buf[64];
  if (bps_ >= 1'000'000'000) {
    std::snprintf(buf, sizeof buf, "%.3gGbps", static_cast<double>(bps_) * 1e-9);
  } else if (bps_ >= 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.3gMbps", static_cast<double>(bps_) * 1e-6);
  } else {
    std::snprintf(buf, sizeof buf, "%lldbps", static_cast<long long>(bps_));
  }
  return buf;
}

}  // namespace amrt::sim
