#include "sim/event_queue.hpp"

#include <algorithm>

namespace amrt::sim {

void EventQueue::Handle::cancel() {
  if (q_ != nullptr) q_->cancel(slot_, gen_);
}

bool EventQueue::Handle::pending() const { return q_ != nullptr && q_->pending(slot_, gen_); }

std::uint32_t EventQueue::alloc_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = record(slot).next_free;
    return slot;
  }
  if (slot_count_ % kSlabSize == 0) {
    slabs_.push_back(std::make_unique<Record[]>(kSlabSize));
  }
  return slot_count_++;
}

void EventQueue::recycle_slot(std::uint32_t slot) {
  Record& rec = record(slot);
  rec.cb.reset();
  rec.live = false;
  ++rec.gen;  // invalidates every outstanding Handle to this slot
  rec.next_free = free_head_;
  free_head_ = slot;
}

EventQueue::Handle EventQueue::push(TimePoint when, Callback cb) {
  const std::uint32_t slot = alloc_slot();
  Record& rec = record(slot);
  rec.cb = std::move(cb);
  rec.live = true;
  heap_.push_back(HeapEntry{when.ns(), pack_seq_slot(next_seq_++, slot)});
  sift_up(heap_.size() - 1);
  ++live_;
  return Handle{this, slot, rec.gen};
}

void EventQueue::cancel(std::uint32_t slot, std::uint32_t gen) {
  if (slot >= slot_count_) return;
  Record& rec = record(slot);
  if (rec.gen != gen || !rec.live) return;
  rec.live = false;
  rec.cb.reset();  // release captured state eagerly
  --live_;
}

bool EventQueue::pending(std::uint32_t slot, std::uint32_t gen) const {
  if (slot >= slot_count_) return false;
  const Record& rec = record(slot);
  return rec.gen == gen && rec.live;
}

void EventQueue::drop_cancelled() {
  while (!heap_.empty() && !record(entry_slot(heap_.front())).live) {
    recycle_slot(entry_slot(heap_.front()));
    pop_top();
  }
}

std::optional<TimePoint> EventQueue::next_time() {
  drop_cancelled();
  if (heap_.empty()) return std::nullopt;
  return TimePoint::from_ns(heap_.front().when_ns);
}

std::optional<EventQueue::Ready> EventQueue::pop() {
  drop_cancelled();
  if (heap_.empty()) return std::nullopt;
  const HeapEntry top = heap_.front();
  const std::uint32_t slot = entry_slot(top);
  pop_top();
  Ready out{TimePoint::from_ns(top.when_ns), std::move(record(slot).cb)};
  recycle_slot(slot);
  --live_;
  return out;
}

}  // namespace amrt::sim
