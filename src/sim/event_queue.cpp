#include "sim/event_queue.hpp"

namespace amrt::sim {

bool EventQueue::Compare::operator()(const std::shared_ptr<EventRecord>& a,
                                     const std::shared_ptr<EventRecord>& b) const {
  if (a->when != b->when) return a->when > b->when;  // min-heap on time
  return a->seq > b->seq;                            // FIFO among equal times
}

void EventQueue::Handle::cancel() {
  if (auto rec = rec_.lock(); rec && !rec->fired && !rec->cancelled) {
    rec->cancelled = true;
    rec->cb = nullptr;  // release captured state eagerly
    if (auto live = rec->live_count.lock()) --*live;
  }
}

bool EventQueue::Handle::pending() const {
  auto rec = rec_.lock();
  return rec && !rec->fired && !rec->cancelled;
}

EventQueue::Handle EventQueue::push(TimePoint when, Callback cb) {
  auto rec = std::make_shared<EventRecord>();
  rec->when = when;
  rec->seq = next_seq_++;
  rec->cb = std::move(cb);
  rec->live_count = live_;
  Handle h{rec};
  heap_.push(std::move(rec));
  ++*live_;
  return h;
}

void EventQueue::drop_cancelled() {
  while (!heap_.empty() && heap_.top()->cancelled) heap_.pop();
}

bool EventQueue::empty() const { return *live_ == 0; }

std::size_t EventQueue::size() const { return heap_.size(); }

std::optional<TimePoint> EventQueue::next_time() {
  drop_cancelled();
  if (heap_.empty()) return std::nullopt;
  return heap_.top()->when;
}

std::optional<EventQueue::Ready> EventQueue::pop() {
  drop_cancelled();
  if (heap_.empty()) return std::nullopt;
  auto rec = heap_.top();
  heap_.pop();
  rec->fired = true;
  --*live_;
  return Ready{rec->when, std::move(rec->cb)};
}

}  // namespace amrt::sim
