#include "sim/event_queue.hpp"

#include <limits>

namespace amrt::sim {

void EventQueue::Handle::cancel() {
  if (q_ != nullptr) q_->cancel(slot_, gen_);
}

bool EventQueue::Handle::pending() const { return q_ != nullptr && q_->pending(slot_, gen_); }

std::uint32_t EventQueue::alloc_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = record(slot).next_free;
    return slot;
  }
  if (slot_count_ % kSlabSize == 0) {
    slabs_.push_back(std::make_unique<Record[]>(kSlabSize));
  }
  assert(slot_count_ < kRawFlag);  // bit 23 is the raw-lane tag
  return slot_count_++;
}

void EventQueue::recycle_slot(std::uint32_t slot) {
  Record& rec = record(slot);
  rec.cb.reset();
  rec.live = false;
  ++rec.gen;  // invalidates every outstanding Handle to this slot
  rec.next_free = free_head_;
  free_head_ = slot;
}

// The set was empty: re-anchor the window at the incoming event. The
// current bucket may still hold a fully drained prefix (buckets are cleared
// lazily, on advance); drop it before reusing the wheel.
void EventQueue::rebase_empty(std::int64_t when_ns) {
  buckets_[cur_].clear();
  occupied_[cur_ >> 6] &= ~(std::uint64_t{1} << (cur_ & 63));
  base_ns_ = when_ns & ~(kBucketNs - 1);
  cur_ = 0;
  drain_idx_ = 0;
}

// The drain cursor exhausted its bucket: retire it and move to the next
// non-empty one, re-anchoring the window over the far list when the near
// window is spent. Returns false when no events remain anywhere.
bool EventQueue::advance_bucket() {
  buckets_[cur_].clear();  // keeps capacity for the next lap of the wheel
  drain_idx_ = 0;
  occupied_[cur_ >> 6] &= ~(std::uint64_t{1} << (cur_ & 63));

  std::size_t w = cur_ >> 6;
  std::uint64_t word = occupied_[w];
  for (;;) {
    if (word != 0) {
      cur_ = (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
      return true;
    }
    if (++w >= kWords) break;
    word = occupied_[w];
  }

  if (far_.empty()) {
    cur_ = 0;
    return false;
  }
  // Re-anchor the window at the earliest far event and re-bucket everything
  // that now falls inside it. Far events are rare (long timers), so the
  // linear partition is cheap and keeps pushes O(1).
  base_ns_ = far_min_ns_ & ~(kBucketNs - 1);
  cur_ = 0;
  std::int64_t next_min = std::numeric_limits<std::int64_t>::max();
  std::size_t keep = 0;
  for (const Entry& e : far_) {
    const std::int64_t idx = (e.when_ns - base_ns_) >> kBucketShift;
    if (idx < static_cast<std::int64_t>(kBuckets)) {
      insort(static_cast<std::size_t>(idx), e);
    } else {
      far_[keep++] = e;
      if (e.when_ns < next_min) next_min = e.when_ns;
    }
  }
  far_.resize(keep);
  far_min_ns_ = next_min;
  return true;  // the window now contains at least the old far minimum
}

EventQueue::Handle EventQueue::push(TimePoint when, Callback cb) {
  const std::uint32_t slot = alloc_slot();
  Record& rec = record(slot);
  rec.cb = std::move(cb);
  rec.live = true;
  insert_entry(when.ns(), slot);
  ++live_;
  return Handle{this, slot, rec.gen};
}

void EventQueue::cancel(std::uint32_t slot, std::uint32_t gen) {
  if (slot >= slot_count_) return;
  Record& rec = record(slot);
  if (rec.gen != gen || !rec.live) return;
  rec.live = false;
  rec.cb.reset();  // release captured state eagerly
  --live_;
}

bool EventQueue::pending(std::uint32_t slot, std::uint32_t gen) const {
  if (slot >= slot_count_) return false;
  const Record& rec = record(slot);
  return rec.gen == gen && rec.live;
}

std::optional<TimePoint> EventQueue::next_time() {
  const Entry* head = peek_live();
  if (head == nullptr) return std::nullopt;
  return TimePoint::from_ns(head->when_ns);
}

std::optional<EventQueue::Ready> EventQueue::pop() {
  const Entry* head = peek_live();
  if (head == nullptr) return std::nullopt;
  const Entry top = *head;
  consume_head();
  const std::uint32_t slot = entry_slot(top);
  --live_;
  if ((slot & kRawFlag) != 0) {
    // Slow path (tests/tools only): wrap the raw event in a callback so the
    // caller sees the uniform Ready shape.
    const RawRec r = raw_recs_[slot & ~kRawFlag];
    recycle_raw(slot & ~kRawFlag);
    return Ready{TimePoint::from_ns(top.when_ns), [r] { r.fn(r.ctx); }};
  }
  Ready out{TimePoint::from_ns(top.when_ns), std::move(record(slot).cb)};
  recycle_slot(slot);
  return out;
}

}  // namespace amrt::sim
