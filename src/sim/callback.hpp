// Small-buffer type-erased callable for the event hot path.
//
// `InplaceCallback` replaces `std::function<void()>` on the scheduling fast
// path: callables up to `kInlineBytes` are stored inline in the event
// record, so steady-state scheduling performs no heap allocation. Larger
// callables fall back to a single heap allocation, same as `std::function`
// would. The buffer is sized so the two hottest event shapes stay inline:
// a whole `std::function` (32 bytes) and a port's transmission/delivery
// lambda capturing `this` plus a `net::Packet` by value (80 bytes).
//
// Move-only by design: an event callback has exactly one owner (the event
// record, then the dispatch loop).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace amrt::sim {

class InplaceCallback {
 public:
  static constexpr std::size_t kInlineBytes = 96;

  InplaceCallback() = default;
  InplaceCallback(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename Fn = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<Fn, InplaceCallback> &&
                                        !std::is_same_v<Fn, std::nullptr_t> &&
                                        std::is_invocable_r_v<void, Fn&>>>
  InplaceCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace<Fn>(std::forward<F>(f));
  }

  InplaceCallback(InplaceCallback&& other) noexcept { steal(other); }
  InplaceCallback& operator=(InplaceCallback&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }
  InplaceCallback& operator=(std::nullptr_t) {
    reset();
    return *this;
  }
  InplaceCallback(const InplaceCallback&) = delete;
  InplaceCallback& operator=(const InplaceCallback&) = delete;
  ~InplaceCallback() { reset(); }

  void operator()() { ops_->invoke(&storage_); }

  // Constructs `f` directly in this callback (inline buffer or heap cell),
  // replacing any held callable. The event queue uses this to build the
  // callable in its slab record with zero intermediate moves.
  template <typename F,
            typename Fn = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<Fn, InplaceCallback> &&
                                        std::is_invocable_r_v<void, Fn&>>>
  void assign(F&& f) {
    reset();
    emplace<Fn>(std::forward<F>(f));
  }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  // Destroys the held callable (releasing captured state) and goes empty.
  // A null destroy op marks a trivially destructible callable (the common
  // case on the event path: captures of pointers and POD packets), letting
  // the per-event reset skip an indirect call to an empty destructor.
  void reset() {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(&storage_);
      ops_ = nullptr;
    }
  }

  // True when the callable lives in the inline buffer (introspection for
  // tests; empty callbacks report false).
  [[nodiscard]] bool stores_inline() const { return ops_ != nullptr && ops_->inline_stored; }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-constructs into `dst` from `src` and destroys `src`.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
    bool inline_stored;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn, typename F>
  void emplace(F&& f) {
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(&storage_)) Fn(std::forward<F>(f));
      static constexpr Ops ops{
          [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
          [](void* dst, void* src) {
            Fn* from = std::launder(reinterpret_cast<Fn*>(src));
            ::new (dst) Fn(std::move(*from));
            from->~Fn();
          },
          std::is_trivially_destructible_v<Fn>
              ? nullptr
              : +[](void* s) { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); },
          true};
      ops_ = &ops;
    } else {
      ::new (static_cast<void*>(&storage_)) Fn*(new Fn(std::forward<F>(f)));
      static constexpr Ops ops{
          [](void* s) { (**std::launder(reinterpret_cast<Fn**>(s)))(); },
          [](void* dst, void* src) {
            ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
          },
          [](void* s) { delete *std::launder(reinterpret_cast<Fn**>(s)); },
          false};
      ops_ = &ops;
    }
  }

  void steal(InplaceCallback& other) {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(&storage_, &other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace amrt::sim
