// Per-flow sequence-number state, two bits per packet in one allocation.
//
// A receiver flow tracks two facts per sequence number: "payload received"
// (was `std::vector<bool> got`) and "presumed lost, repair pending" (was a
// separate `std::unordered_set<uint32_t>`). The set cost a heap node and a
// hashed probe per loss event and a probe per credit; here both facts live
// as adjacent bits in the same word — checking or updating either is one
// shift-and-mask on a cache line the arrival path just touched anyway.
//
// Layout: sequence number s maps to word s/32, bits (s%32)*2 (received) and
// (s%32)*2+1 (repair-pending). A running count of repair bits keeps
// `pending_repairs()` O(1).
#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace amrt::util {

class SeqBitmap {
 public:
  // Sizes the bitmap for sequences [0, n). Clears all state.
  void resize(std::uint32_t n) {
    n_ = n;
    words_.assign((static_cast<std::size_t>(n) + 31) / 32, 0);
    repair_count_ = 0;
  }

  [[nodiscard]] std::uint32_t capacity() const { return n_; }

  [[nodiscard]] bool got(std::uint32_t seq) const {
    assert(seq < n_);
    return (words_[seq >> 5] >> shift_got(seq)) & 1u;
  }
  void set_got(std::uint32_t seq) {
    assert(seq < n_);
    words_[seq >> 5] |= std::uint64_t{1} << shift_got(seq);
  }

  [[nodiscard]] bool repair_pending(std::uint32_t seq) const {
    assert(seq < n_);
    return (words_[seq >> 5] >> shift_rep(seq)) & 1u;
  }
  // Marks `seq` repair-pending; returns true if it was newly marked.
  bool mark_repair(std::uint32_t seq) {
    assert(seq < n_);
    std::uint64_t& w = words_[seq >> 5];
    const std::uint64_t bit = std::uint64_t{1} << shift_rep(seq);
    if (w & bit) return false;
    w |= bit;
    ++repair_count_;
    return true;
  }
  // Clears the repair-pending bit; returns true if it was set.
  bool clear_repair(std::uint32_t seq) {
    assert(seq < n_);
    std::uint64_t& w = words_[seq >> 5];
    const std::uint64_t bit = std::uint64_t{1} << shift_rep(seq);
    if (!(w & bit)) return false;
    w &= ~bit;
    --repair_count_;
    return true;
  }

  // Number of sequences currently marked repair-pending.
  [[nodiscard]] std::size_t pending_repairs() const { return repair_count_; }

  // Number of received bits set, by popcount over the even (got) bit lanes.
  // O(words); used by consistency checks at flow completion, not per packet.
  [[nodiscard]] std::uint32_t count_got() const {
    constexpr std::uint64_t kGotLanes = 0x5555555555555555ULL;
    std::uint32_t n = 0;
    for (const std::uint64_t w : words_) {
      n += static_cast<std::uint32_t>(std::popcount(w & kGotLanes));
    }
    return n;
  }

 private:
  [[nodiscard]] static constexpr unsigned shift_got(std::uint32_t seq) {
    return (seq & 31u) * 2u;
  }
  [[nodiscard]] static constexpr unsigned shift_rep(std::uint32_t seq) {
    return (seq & 31u) * 2u + 1u;
  }

  std::vector<std::uint64_t> words_;
  std::uint32_t n_ = 0;
  std::size_t repair_count_ = 0;
};

}  // namespace amrt::util
