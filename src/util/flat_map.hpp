// Open-addressing hash containers for the per-packet hot path.
//
// `std::unordered_map` pays a heap allocation per node and a pointer chase
// per probe; on the transport arrival path that is two-to-three dependent
// cache misses per packet. `FlatMap` stores `pair<K, V>` slots in one
// power-of-two array with linear probing, so a lookup is one hash, one
// indexed load and (almost always) zero extra cache lines. Erasure uses
// backward-shift deletion, so the table carries no tombstones and lookup
// cost never degrades with churn — important for flow tables where every
// completed flow is erased.
//
// Invariants and caveats:
//   * Deterministic: the same sequence of operations yields the same
//     iteration order (slot order), on every platform. Nothing here depends
//     on pointer values or global state.
//   * Pointers/references into the table are invalidated by insertion
//     (rehash) and by erase (backward shift). Callers must re-find after
//     mutating — the transport layer takes a single handle per event and
//     never inserts while holding one.
//   * Keys must be trivially hashable integers (FlowId, NodeId values); the
//     default hash is the SplitMix64 finalizer, which is enough to make
//     sequential ids collide no worse than random ones.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace amrt::util {

// SplitMix64 finalizer: the cheapest hash with full avalanche. Sequential
// keys (flow ids are sequential) spread uniformly across slots.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct Mix64Hash {
  [[nodiscard]] constexpr std::uint64_t operator()(std::uint64_t key) const { return mix64(key); }
};

template <typename K, typename V, typename Hash = Mix64Hash>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;

  FlatMap() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  void clear() {
    slots_.clear();
    full_.clear();
    size_ = 0;
  }

  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    // Grow until `n` fits under the load-factor ceiling.
    while (cap * kMaxLoadNum < n * kMaxLoadDen) cap *= 2;
    if (cap > slots_.size()) rehash(cap);
  }

  [[nodiscard]] V* find(const K& key) {
    const std::size_t i = find_index(key);
    return i == kNotFound ? nullptr : &slots_[i].second;
  }
  [[nodiscard]] const V* find(const K& key) const {
    const std::size_t i = find_index(key);
    return i == kNotFound ? nullptr : &slots_[i].second;
  }
  [[nodiscard]] bool contains(const K& key) const { return find_index(key) != kNotFound; }

  // Inserts a default-constructed value for `key` if absent. Returns the
  // slot's value and whether it was inserted. The pointer is valid until the
  // next insert/erase.
  std::pair<V*, bool> try_emplace(const K& key) {
    if (slots_.empty() || (size_ + 1) * kMaxLoadDen > slots_.size() * kMaxLoadNum) {
      rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
    }
    std::size_t i = home(key);
    while (full_[i]) {
      if (slots_[i].first == key) return {&slots_[i].second, false};
      i = next(i);
    }
    full_[i] = 1;
    slots_[i].first = key;
    slots_[i].second = V{};
    ++size_;
    return {&slots_[i].second, true};
  }

  V& operator[](const K& key) { return *try_emplace(key).first; }

  // Backward-shift deletion: the probe chain after the hole is compacted in
  // place, so no tombstones accumulate. Returns true if the key was present.
  bool erase(const K& key) {
    std::size_t hole = find_index(key);
    if (hole == kNotFound) return false;
    std::size_t i = hole;
    for (;;) {
      i = next(i);
      if (!full_[i]) break;
      // An element may fill the hole only if its home slot does not lie
      // (cyclically) strictly after the hole — otherwise moving it would
      // break its own probe chain.
      const std::size_t h = home(slots_[i].first);
      const bool movable = hole <= i ? (h <= hole || h > i) : (h <= hole && h > i);
      if (movable) {
        slots_[hole] = std::move(slots_[i]);
        hole = i;
      }
    }
    full_[hole] = 0;
    slots_[hole] = value_type{};  // release held resources promptly
    --size_;
    return true;
  }

  // Iteration in slot order: deterministic for a given operation history.
  template <bool Const>
  class Iter {
   public:
    using Owner = std::conditional_t<Const, const FlatMap, FlatMap>;
    using Ref = std::conditional_t<Const, const value_type&, value_type&>;
    Iter(Owner* owner, std::size_t i) : owner_{owner}, i_{i} { skip(); }
    Ref operator*() const { return owner_->slots_[i_]; }
    Iter& operator++() {
      ++i_;
      skip();
      return *this;
    }
    bool operator==(const Iter& o) const { return i_ == o.i_; }
    bool operator!=(const Iter& o) const { return i_ != o.i_; }

   private:
    void skip() {
      while (i_ < owner_->slots_.size() && !owner_->full_[i_]) ++i_;
    }
    Owner* owner_;
    std::size_t i_;
  };

  [[nodiscard]] auto begin() { return Iter<false>{this, 0}; }
  [[nodiscard]] auto end() { return Iter<false>{this, slots_.size()}; }
  [[nodiscard]] auto begin() const { return Iter<true>{this, 0}; }
  [[nodiscard]] auto end() const { return Iter<true>{this, slots_.size()}; }

 private:
  static constexpr std::size_t kMinCapacity = 16;
  static constexpr std::size_t kNotFound = static_cast<std::size_t>(-1);
  // Max load factor 7/8: linear probing stays short, memory stays ~2x data.
  static constexpr std::size_t kMaxLoadNum = 7;
  static constexpr std::size_t kMaxLoadDen = 8;

  [[nodiscard]] std::size_t home(const K& key) const {
    return static_cast<std::size_t>(Hash{}(static_cast<std::uint64_t>(key))) &
           (slots_.size() - 1);
  }
  [[nodiscard]] std::size_t next(std::size_t i) const { return (i + 1) & (slots_.size() - 1); }

  [[nodiscard]] std::size_t find_index(const K& key) const {
    if (slots_.empty()) return kNotFound;
    std::size_t i = home(key);
    while (full_[i]) {
      if (slots_[i].first == key) return i;
      i = next(i);
    }
    return kNotFound;
  }

  void rehash(std::size_t new_cap) {
    std::vector<value_type> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_full = std::move(full_);
    slots_.assign(new_cap, value_type{});
    full_.assign(new_cap, 0);
    size_ = 0;
    // Reinsert in slot order: deterministic, and preserves relative order of
    // elements whose new home slots collide.
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (!old_full[i]) continue;
      std::size_t j = home(old_slots[i].first);
      while (full_[j]) j = next(j);
      full_[j] = 1;
      slots_[j] = std::move(old_slots[i]);
      ++size_;
    }
  }

  std::vector<value_type> slots_;
  std::vector<std::uint8_t> full_;  // separate so probing scans bytes, not pairs
  std::size_t size_ = 0;
};

// A set is a map with no payload; FlowId membership checks (finished-flow
// filtering) want exactly the same probe behaviour.
template <typename K, typename Hash = Mix64Hash>
class FlatSet {
 public:
  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] bool empty() const { return map_.empty(); }
  [[nodiscard]] bool contains(const K& key) const { return map_.contains(key); }
  bool insert(const K& key) { return map_.try_emplace(key).second; }
  bool erase(const K& key) { return map_.erase(key); }
  void clear() { map_.clear(); }
  void reserve(std::size_t n) { map_.reserve(n); }

 private:
  struct Empty {};
  FlatMap<K, Empty, Hash> map_;
};

}  // namespace amrt::util
