// Empirical flow-size distributions.
//
// A CDF is a piecewise-linear function over flow size in bytes, given as
// (size, cumulative-probability) knots — the standard format used by the
// pHost/Homa/ExpressPass simulation harnesses whose workloads Section 8.1
// borrows. Sampling inverts the CDF with linear interpolation inside each
// segment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hpp"

namespace amrt::workload {

class EmpiricalCdf {
 public:
  struct Point {
    double bytes = 0;
    double cum = 0;  // cumulative probability in (0, 1]
  };

  // Knots must be strictly increasing in both coordinates and end at cum==1.
  explicit EmpiricalCdf(std::vector<Point> points);

  [[nodiscard]] std::uint64_t sample(sim::Rng& rng) const;

  // Analytic mean/quantile under the piecewise-linear model (matches what
  // sampling converges to).
  [[nodiscard]] double mean_bytes() const;
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double min_bytes() const { return points_.front().bytes; }
  [[nodiscard]] double max_bytes() const { return points_.back().bytes; }
  [[nodiscard]] const std::vector<Point>& points() const { return points_; }
  // Fraction of flows no larger than `bytes`.
  [[nodiscard]] double fraction_below(double bytes) const;

 private:
  std::vector<Point> points_;
};

}  // namespace amrt::workload
