// Pluggable traffic engines (DESIGN.md §14).
//
// The workload layer is a three-layer stack, each layer swappable on its
// own axis:
//
//   * pair model     — who talks to whom: uniform random pairs (the legacy
//                      matrix), rack-skewed hot-rack matrices with a
//                      locality knob, or a fixed permutation;
//   * arrival model  — when flows start: Poisson arrivals (the legacy
//                      closed-loop client population) or open-loop
//                      fixed-rate clients that keep injecting at the target
//                      rate no matter how congested the fabric gets;
//   * structure      — what one arrival means: a single flow, an
//                      incast/coflow group of `coflow_width` senders into
//                      one receiver, or a front-end fan-out request (one
//                      user request → `fanout` backend response flows into
//                      the front end), every member carrying the group's
//                      `group_id`/`request_id`.
//
// Four engines compose these layers behind one interface:
//
//   kLegacy — uniform pairs + Poisson + no structure. Draw-for-draw
//             identical to the original FlowGenerator (the golden-fixture
//             gate and the fuzzer's old seeds depend on this);
//   kSkewed — the pair-model and arrival-model axes opened up, plus
//             optional coflow groups;
//   kFanout — front-end fan-out requests; per-request completion p99 is
//             the headline metric (bench_fanout);
//   kTrace  — replays a flow trace file (flow_trace.hpp) exactly; dumping
//             a synthetic schedule and replaying it reproduces the same
//             flow ids, starts and sizes bit for bit.
//
// Engines generate the whole schedule up front from the run's seeded
// stream; the harness turns GeneratedFlows into scheduled start_flow events
// exactly as before, so every engine composes with --shards (generation
// happens on the master shard before the clock starts).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "workload/cdf.hpp"
#include "workload/generator.hpp"

namespace amrt::workload {

enum class Engine : std::uint8_t { kLegacy, kSkewed, kFanout, kTrace };
enum class PairModel : std::uint8_t { kUniform, kHotRack, kPermutation };
enum class ArrivalModel : std::uint8_t { kPoisson, kFixedRate };

[[nodiscard]] const char* to_string(Engine e);
[[nodiscard]] const char* to_string(PairModel p);
[[nodiscard]] const char* to_string(ArrivalModel a);
[[nodiscard]] Engine engine_from_string(const std::string& s);
[[nodiscard]] PairModel pair_model_from_string(const std::string& s);
[[nodiscard]] ArrivalModel arrival_model_from_string(const std::string& s);

// Rack-skewed matrix knobs (PairModel::kHotRack). Hosts are grouped into
// racks of `hosts_per_rack` consecutive indices (the leaf-spine/fat-tree
// builders lay hosts out leaf-major, so index racks are physical racks).
struct SkewConfig {
  std::size_t hosts_per_rack = 8;
  double hot_rack_fraction = 0.25;  // leading ceil(f * racks) racks are hot
  double hot_weight = 0.7;          // P(src rack is hot)
  double locality = 0.3;            // P(dst lands in src's rack)
};

// Everything an engine needs beyond the base TrafficConfig. The default
// spec selects the legacy engine, whose output is byte-identical to the
// original FlowGenerator for the same rng state.
struct WorkloadSpec {
  Engine engine = Engine::kLegacy;
  PairModel pairs = PairModel::kUniform;        // kSkewed only
  ArrivalModel arrivals = ArrivalModel::kPoisson;
  SkewConfig skew{};
  // kSkewed: fraction of arrivals expanded into incast coflow groups of
  // `coflow_width` distinct senders into one receiver (group_id set,
  // request_id 0). The group's arrival gap scales with its width so the
  // offered byte load stays at TrafficConfig::load.
  double coflow_fraction = 0.0;
  std::size_t coflow_width = 8;
  // kFanout: backend responses per user request (group_id == request_id).
  std::size_t fanout = 8;
  // kFanout: fixed response size; 0 draws each response from the size CDF.
  std::uint64_t response_bytes = 0;
  // kTrace: the file to replay.
  std::string trace_path;
};

class TrafficEngine {
 public:
  virtual ~TrafficEngine() = default;
  // Flows sorted by non-decreasing start, ids 1..n, src != dst, every id
  // < cfg.n_hosts. `rng` is the run's stream; engines must draw nothing
  // outside this call.
  [[nodiscard]] virtual std::vector<GeneratedFlow> generate(const TrafficConfig& cfg,
                                                            sim::Rng& rng) = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

// Builds the engine for `spec`. `sizes` may be null only for kTrace (the
// trace carries its own sizes); every synthetic engine requires it.
[[nodiscard]] std::unique_ptr<TrafficEngine> make_engine(const WorkloadSpec& spec,
                                                         const EmpiricalCdf* sizes);

// One-shot convenience used by the harness.
[[nodiscard]] std::vector<GeneratedFlow> generate_traffic(const WorkloadSpec& spec,
                                                          const EmpiricalCdf* sizes,
                                                          const TrafficConfig& cfg, sim::Rng& rng);

}  // namespace amrt::workload
