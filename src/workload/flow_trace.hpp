// Flow-trace format: the interchange between synthetic generation and
// replay (DESIGN.md §14). A trace is a line-oriented CSV file:
//
//   # amrt-flow-trace v1
//   # t_ns,src,dst,bytes,group_id[,request_id]
//   27859,5,11,1014287,0,0
//   116595,0,7,103937,0,0
//   ...
//
// One data row per flow, in non-decreasing t_ns order; flow ids are implicit
// (row order, 1-based), which is what makes a dumped schedule replay with
// the exact flow ids — and therefore the exact FCT records — of the
// synthetic run it came from. `group_id`/`request_id` are 0 for ungrouped
// flows; the sixth column may be omitted (older dumps) and defaults to 0.
// Lines that are empty or start with '#' are ignored.
//
// The reader is strict: a malformed line (wrong field count, non-numeric
// field, src == dst, zero bytes) or a timestamp that goes backwards raises
// TraceError carrying "<name>:<line>: <what>" — silently mis-scheduling a
// mis-sorted trace is the one failure mode replay must never have.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "workload/generator.hpp"

namespace amrt::workload {

// Parse/validation failure; what() is "<name>:<line>: <message>" for line
// errors, "<name>: <message>" for file-level ones.
class TraceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr const char* kTraceMagic = "# amrt-flow-trace v1";

// Reads a complete trace. `name` labels diagnostics (a path or "<memory>").
// Flow ids are assigned 1..n in row order. Throws TraceError on any
// malformed line or non-monotonic timestamp.
[[nodiscard]] std::vector<GeneratedFlow> read_trace(std::istream& in, const std::string& name);

// Convenience: opens `path` and calls read_trace; TraceError if unreadable.
[[nodiscard]] std::vector<GeneratedFlow> read_trace_file(const std::string& path);

// Writes `flows` (assumed sorted by start, as every engine emits) with the
// v1 header. A write→read round trip reproduces t/src/dst/bytes/group/request
// exactly and reassigns the same 1..n ids.
void write_trace(std::ostream& out, const std::vector<GeneratedFlow>& flows);
void write_trace_file(const std::string& path, const std::vector<GeneratedFlow>& flows);

}  // namespace amrt::workload
