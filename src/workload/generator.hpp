// Poisson flow arrivals between random host pairs at a target load.
//
// The generator is deliberately network-agnostic: it emits host *indices*;
// the harness maps them to hosts/endpoints. Load is defined as in the
// paper's evaluation: the aggregate arrival byte-rate equals `load` times
// the aggregate host access capacity.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "workload/cdf.hpp"

namespace amrt::workload {

struct GeneratedFlow {
  std::uint64_t id = 0;
  std::size_t src_host = 0;
  std::size_t dst_host = 0;
  std::uint64_t bytes = 0;
  sim::TimePoint start{};
  // Structure layer (traffic.hpp): coflow/incast group and front-end fan-out
  // request membership. 0 = ungrouped, which is what every flow from the
  // legacy generator carries.
  std::uint64_t group_id = 0;
  std::uint64_t request_id = 0;
};

struct TrafficConfig {
  double load = 0.5;  // fraction of aggregate host capacity
  std::size_t n_flows = 1000;
  std::size_t n_hosts = 16;
  sim::Bandwidth host_rate = sim::Bandwidth::gbps(10);
  sim::TimePoint first_arrival = sim::TimePoint::zero();
};

class FlowGenerator {
 public:
  FlowGenerator(const EmpiricalCdf& sizes, sim::Rng& rng) : sizes_{sizes}, rng_{rng} {}

  // Flows sorted by start time, ids 1..n, src != dst uniformly at random.
  [[nodiscard]] std::vector<GeneratedFlow> generate(const TrafficConfig& cfg);

  // Mean inter-arrival for `cfg` (exposed for tests and load accounting).
  [[nodiscard]] sim::Duration mean_interarrival(const TrafficConfig& cfg) const;

 private:
  const EmpiricalCdf& sizes_;
  sim::Rng& rng_;
};

}  // namespace amrt::workload
