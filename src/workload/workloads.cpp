#include "workload/workloads.hpp"

#include <stdexcept>

namespace amrt::workload {

namespace {
constexpr double kKB = 1e3;
constexpr double kMB = 1e6;

EmpiricalCdf make_web_server() {
  // Section 8.1: "except for tiny flows smaller than 10KB the size of the
  // other flows is uniformly distributed from 10KB to 1MB, resulting in the
  // smallest average flow size" (~64KB with an 88/12 split).
  return EmpiricalCdf{{
      {1 * kKB, 0.30},
      {5 * kKB, 0.62},
      {10 * kKB, 0.88},
      {1 * kMB, 1.00},
  }};
}

EmpiricalCdf make_cache_follower() {
  // Facebook cache-follower mix: dominated by sub-KB objects with a body of
  // mid-size responses and a modest multi-MB tail (mean ~0.6MB).
  return EmpiricalCdf{{
      {0.3 * kKB, 0.30},
      {1 * kKB, 0.50},
      {2 * kKB, 0.60},
      {10 * kKB, 0.70},
      {100 * kKB, 0.80},
      {1 * kMB, 0.90},
      {10 * kMB, 1.00},
  }};
}

EmpiricalCdf make_hadoop() {
  // Facebook Hadoop cluster: mostly small control/shuffle records, tail of
  // multi-MB block transfers (mean ~2.4MB).
  return EmpiricalCdf{{
      {0.5 * kKB, 0.40},
      {2 * kKB, 0.55},
      {10 * kKB, 0.70},
      {100 * kKB, 0.80},
      {1 * kMB, 0.90},
      {10 * kMB, 0.96},
      {30 * kMB, 1.00},
  }};
}

EmpiricalCdf make_web_search() {
  // DCTCP web-search distribution (mean ~1.6MB): half the flows under
  // ~50KB, >95% of bytes from flows over 1MB.
  return EmpiricalCdf{{
      {6 * kKB, 0.15},
      {13 * kKB, 0.20},
      {19 * kKB, 0.30},
      {33 * kKB, 0.40},
      {53 * kKB, 0.53},
      {133 * kKB, 0.60},
      {667 * kKB, 0.70},
      {1333 * kKB, 0.80},
      {3333 * kKB, 0.90},
      {6667 * kKB, 0.97},
      {20 * kMB, 1.00},
  }};
}

EmpiricalCdf make_data_mining() {
  // VL2 data-mining distribution (mean ~7.4MB): 80% of flows under 10KB,
  // but almost all bytes in a tail of multi-hundred-MB transfers.
  return EmpiricalCdf{{
      {1 * kKB, 0.50},
      {2 * kKB, 0.60},
      {3 * kKB, 0.70},
      {7 * kKB, 0.80},
      {267 * kKB, 0.90},
      {2107 * kKB, 0.95},
      {30 * kMB, 0.98},
      {600 * kMB, 1.00},
  }};
}
}  // namespace

const char* name(Kind k) {
  switch (k) {
    case Kind::kWebServer: return "Web Server";
    case Kind::kCacheFollower: return "Cache Follower";
    case Kind::kHadoop: return "Hadoop Cluster";
    case Kind::kWebSearch: return "Web Search";
    case Kind::kDataMining: return "Data Mining";
  }
  return "?";
}

const char* abbrev(Kind k) {
  switch (k) {
    case Kind::kWebServer: return "WSv";
    case Kind::kCacheFollower: return "CF";
    case Kind::kHadoop: return "HC";
    case Kind::kWebSearch: return "WSc";
    case Kind::kDataMining: return "DM";
  }
  return "?";
}

Kind kind_from_string(const std::string& s) {
  for (Kind k : kAllKinds) {
    if (s == name(k) || s == abbrev(k)) return k;
  }
  throw std::invalid_argument("unknown workload: " + s);
}

const EmpiricalCdf& cdf(Kind k) {
  static const EmpiricalCdf web_server = make_web_server();
  static const EmpiricalCdf cache_follower = make_cache_follower();
  static const EmpiricalCdf hadoop = make_hadoop();
  static const EmpiricalCdf web_search = make_web_search();
  static const EmpiricalCdf data_mining = make_data_mining();
  switch (k) {
    case Kind::kWebServer: return web_server;
    case Kind::kCacheFollower: return cache_follower;
    case Kind::kHadoop: return hadoop;
    case Kind::kWebSearch: return web_search;
    case Kind::kDataMining: return data_mining;
  }
  return web_server;
}

}  // namespace amrt::workload
