#include "workload/cdf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace amrt::workload {

EmpiricalCdf::EmpiricalCdf(std::vector<Point> points) : points_{std::move(points)} {
  if (points_.size() < 2) throw std::invalid_argument("EmpiricalCdf: need at least two knots");
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].bytes <= points_[i - 1].bytes || points_[i].cum <= points_[i - 1].cum) {
      throw std::invalid_argument("EmpiricalCdf: knots must be strictly increasing");
    }
  }
  if (points_.front().cum < 0.0 || std::abs(points_.back().cum - 1.0) > 1e-9) {
    throw std::invalid_argument("EmpiricalCdf: last knot must have cum == 1");
  }
}

double EmpiricalCdf::quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  if (q <= points_.front().cum) return points_.front().bytes;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (q <= points_[i].cum) {
      const auto& lo = points_[i - 1];
      const auto& hi = points_[i];
      const double t = (q - lo.cum) / (hi.cum - lo.cum);
      return lo.bytes + t * (hi.bytes - lo.bytes);
    }
  }
  return points_.back().bytes;
}

std::uint64_t EmpiricalCdf::sample(sim::Rng& rng) const {
  const double bytes = quantile(rng.uniform());
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::llround(bytes)));
}

double EmpiricalCdf::mean_bytes() const {
  // The first knot carries a point mass of its own cum; each following
  // segment is uniform between its endpoints.
  double mean = points_.front().bytes * points_.front().cum;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const auto& lo = points_[i - 1];
    const auto& hi = points_[i];
    mean += (hi.cum - lo.cum) * 0.5 * (lo.bytes + hi.bytes);
  }
  return mean;
}

double EmpiricalCdf::fraction_below(double bytes) const {
  if (bytes <= points_.front().bytes) return points_.front().cum;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (bytes <= points_[i].bytes) {
      const auto& lo = points_[i - 1];
      const auto& hi = points_[i];
      const double t = (bytes - lo.bytes) / (hi.bytes - lo.bytes);
      return lo.cum + t * (hi.cum - lo.cum);
    }
  }
  return 1.0;
}

}  // namespace amrt::workload
