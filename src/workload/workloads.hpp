// The five realistic workloads of Section 8.1: Web Server (WSv), Cache
// Follower (CF), Hadoop Cluster (HC), Web Search (WSc) and Data Mining (DM).
//
// The paper reuses the distributions published with pHost/Homa/ExpressPass;
// the knots below reproduce their published shapes: WSv is mostly-tiny with
// a uniform 10KB-1MB body (smallest mean), WSc follows the DCTCP web-search
// distribution, DM the VL2 data-mining distribution (heaviest tail, ~7.4MB
// mean), and CF/HC the Facebook cache/Hadoop mixes in between. All five put
// more than half of the flows under 10KB while >90% of bytes come from the
// large-flow tail (except WSv, by construction).
#pragma once

#include <array>
#include <string>

#include "workload/cdf.hpp"

namespace amrt::workload {

enum class Kind { kWebServer, kCacheFollower, kHadoop, kWebSearch, kDataMining };

inline constexpr std::array<Kind, 5> kAllKinds = {
    Kind::kWebServer, Kind::kCacheFollower, Kind::kHadoop, Kind::kWebSearch, Kind::kDataMining};

[[nodiscard]] const char* name(Kind k);          // "Web Server"
[[nodiscard]] const char* abbrev(Kind k);        // "WSv"
[[nodiscard]] Kind kind_from_string(const std::string& s);  // accepts name or abbrev

// The flow-size distribution of a workload (built once, cached).
[[nodiscard]] const EmpiricalCdf& cdf(Kind k);

}  // namespace amrt::workload
