#include "workload/traffic.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "workload/flow_trace.hpp"

namespace amrt::workload {

namespace {

// --------------------------------------------------------------------------
// Pair-model layer: who talks to whom. Samplers may draw in prepare() (the
// permutation does); sample() draws per arrival.
// --------------------------------------------------------------------------

class PairSampler {
 public:
  virtual ~PairSampler() = default;
  virtual void prepare(const TrafficConfig&, sim::Rng&) {}
  // One (src, dst) pair, src != dst.
  virtual std::pair<std::size_t, std::size_t> sample(std::size_t n_hosts, sim::Rng& rng) = 0;
};

// The legacy matrix. Draw order (src index, then dst indices until
// distinct) is the original FlowGenerator's, bit for bit.
class UniformPairs final : public PairSampler {
 public:
  std::pair<std::size_t, std::size_t> sample(std::size_t n, sim::Rng& rng) override {
    const std::size_t src = rng.index(n);
    std::size_t dst;
    do {
      dst = rng.index(n);
    } while (dst == src);
    return {src, dst};
  }
};

// Rack-skewed matrix: hosts grouped into racks of `hosts_per_rack`
// consecutive indices; the leading ceil(hot_rack_fraction * racks) racks
// are hot and attract `hot_weight` of the src mass; `locality` of dsts stay
// in the src's rack, the rest are drawn from the same hot/cold marginal.
class HotRackPairs final : public PairSampler {
 public:
  explicit HotRackPairs(const SkewConfig& skew) : skew_{skew} {}

  void prepare(const TrafficConfig& cfg, sim::Rng&) override {
    const std::size_t hpr = std::max<std::size_t>(1, skew_.hosts_per_rack);
    n_ = cfg.n_hosts;
    hpr_ = hpr;
    racks_ = (n_ + hpr - 1) / hpr;
    const double want = skew_.hot_rack_fraction * static_cast<double>(racks_);
    hot_ = std::clamp<std::size_t>(static_cast<std::size_t>(want + 0.5), 1, racks_);
  }

  std::pair<std::size_t, std::size_t> sample(std::size_t, sim::Rng& rng) override {
    const std::size_t src = host_in_rack(sample_rack(rng), rng);
    // Locality first, then the skewed marginal for remote dsts. A one-host
    // rack can never satisfy a local draw, so bound the attempts and fall
    // back to the uniform matrix — termination beats purity here.
    for (int attempt = 0; attempt < 64; ++attempt) {
      const std::size_t rack =
          rng.bernoulli(skew_.locality) ? src / hpr_ : sample_rack(rng);
      const std::size_t dst = host_in_rack(rack, rng);
      if (dst != src) return {src, dst};
    }
    std::size_t dst;
    do {
      dst = rng.index(n_);
    } while (dst == src);
    return {src, dst};
  }

 private:
  std::size_t sample_rack(sim::Rng& rng) {
    if (hot_ >= racks_) return rng.index(racks_);
    return rng.bernoulli(skew_.hot_weight) ? rng.index(hot_)
                                           : hot_ + rng.index(racks_ - hot_);
  }
  std::size_t host_in_rack(std::size_t rack, sim::Rng& rng) {
    const std::size_t lo = rack * hpr_;
    const std::size_t hi = std::min(n_, lo + hpr_);
    return lo + rng.index(hi - lo);
  }

  SkewConfig skew_;
  std::size_t n_ = 0, hpr_ = 1, racks_ = 1, hot_ = 1;
};

// Fixed random derangement: host i always sends to perm[i]. The classic
// all-to-all stress matrix — every sender has exactly one receiver, so the
// fabric carries n simultaneous disjoint "elephant lanes".
class PermutationPairs final : public PairSampler {
 public:
  void prepare(const TrafficConfig& cfg, sim::Rng& rng) override {
    perm_.resize(cfg.n_hosts);
    for (std::size_t i = 0; i < perm_.size(); ++i) perm_[i] = i;
    for (std::size_t i = perm_.size() - 1; i > 0; --i) {
      std::swap(perm_[i], perm_[rng.index(i + 1)]);
    }
    // Break fixed points so src != dst always holds; one pass suffices (a
    // swap can only plant the *other* index at a position it came from).
    for (std::size_t i = 0; i < perm_.size(); ++i) {
      if (perm_[i] == i) std::swap(perm_[i], perm_[(i + 1) % perm_.size()]);
    }
  }

  std::pair<std::size_t, std::size_t> sample(std::size_t n, sim::Rng& rng) override {
    const std::size_t src = rng.index(n);
    return {src, perm_[src]};
  }

  [[nodiscard]] const std::vector<std::size_t>& permutation() const { return perm_; }

 private:
  std::vector<std::size_t> perm_;
};

// --------------------------------------------------------------------------
// Arrival-model layer: the gap to the next arrival unit.
// --------------------------------------------------------------------------

class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  virtual double gap_seconds(double mean_s, sim::Rng& rng) = 0;
};

class PoissonArrivals final : public ArrivalProcess {
 public:
  double gap_seconds(double mean_s, sim::Rng& rng) override { return rng.exponential(mean_s); }
};

// Open-loop clients: a fixed injection clock that does not slow down when
// the fabric congests (no draw — the schedule is a metronome).
class FixedRateArrivals final : public ArrivalProcess {
 public:
  double gap_seconds(double mean_s, sim::Rng&) override { return mean_s; }
};

std::unique_ptr<PairSampler> make_pairs(const WorkloadSpec& spec) {
  switch (spec.pairs) {
    case PairModel::kUniform:
      return std::make_unique<UniformPairs>();
    case PairModel::kHotRack:
      return std::make_unique<HotRackPairs>(spec.skew);
    case PairModel::kPermutation:
      return std::make_unique<PermutationPairs>();
  }
  throw std::logic_error("make_pairs: unknown pair model");
}

std::unique_ptr<ArrivalProcess> make_arrivals(const WorkloadSpec& spec) {
  switch (spec.arrivals) {
    case ArrivalModel::kPoisson:
      return std::make_unique<PoissonArrivals>();
    case ArrivalModel::kFixedRate:
      return std::make_unique<FixedRateArrivals>();
  }
  throw std::logic_error("make_arrivals: unknown arrival model");
}

// Mean inter-arrival per *flow* at the target load (the original
// FlowGenerator formula); multi-flow arrival units scale their gap by the
// member count so the offered byte rate is invariant across structures.
// The round trip through Duration (integer ns) is load-bearing: the legacy
// generator rounded its mean the same way, and the exponential draws are
// only bit-identical if the argument is.
double mean_flow_gap_seconds(const TrafficConfig& cfg, double mean_flow_bytes) {
  const double agg_bps = cfg.load * static_cast<double>(cfg.n_hosts) *
                         static_cast<double>(cfg.host_rate.bits_per_second());
  const double mean_bits = mean_flow_bytes * 8.0;
  if (agg_bps <= 0.0) throw std::invalid_argument("TrafficEngine: load must be positive");
  const double lambda = agg_bps / mean_bits;
  return sim::Duration::from_seconds(1.0 / lambda).to_seconds();
}

// --------------------------------------------------------------------------
// Structure layer + the synthetic engines (legacy, skewed, fanout): one
// generate loop, parameterized by the layers above.
// --------------------------------------------------------------------------

class SyntheticEngine final : public TrafficEngine {
 public:
  SyntheticEngine(WorkloadSpec spec, const EmpiricalCdf& sizes)
      : spec_{std::move(spec)}, sizes_{sizes} {}

  std::vector<GeneratedFlow> generate(const TrafficConfig& cfg, sim::Rng& rng) override {
    if (cfg.n_hosts < 2) throw std::invalid_argument("TrafficEngine: need at least two hosts");
    const double mean_bytes = spec_.engine == Engine::kFanout && spec_.response_bytes > 0
                                  ? static_cast<double>(spec_.response_bytes)
                                  : sizes_.mean_bytes();
    const double mean_gap_s = mean_flow_gap_seconds(cfg, mean_bytes);

    auto pairs = make_pairs(spec_);
    auto arrivals = make_arrivals(spec_);
    pairs->prepare(cfg, rng);

    std::vector<GeneratedFlow> flows;
    flows.reserve(cfg.n_flows);
    sim::TimePoint at = cfg.first_arrival;
    std::uint64_t next_group = 1;
    while (flows.size() < cfg.n_flows) {
      const std::size_t room = cfg.n_flows - flows.size();
      std::vector<GeneratedFlow> unit;
      if (spec_.engine == Engine::kFanout) {
        unit = fanout_request(cfg, rng, next_group, room);
      } else if (spec_.coflow_fraction > 0.0 && rng.bernoulli(spec_.coflow_fraction)) {
        unit = coflow_group(cfg, rng, next_group, room, *pairs);
      } else {
        GeneratedFlow f;
        const auto [src, dst] = pairs->sample(cfg.n_hosts, rng);
        f.src_host = src;
        f.dst_host = dst;
        f.bytes = sizes_.sample(rng);
        unit.push_back(f);
      }
      // One arrival-clock tick per unit, scaled by its member count so load
      // accounting holds (legacy: one member, the exact original draw).
      at += sim::Duration::from_seconds(
          arrivals->gap_seconds(mean_gap_s * static_cast<double>(unit.size()), rng));
      for (auto& f : unit) {
        f.id = flows.size() + 1;
        f.start = at;
        flows.push_back(f);
      }
    }
    return flows;
  }

  const char* name() const override { return to_string(spec_.engine); }

 private:
  // Incast coflow: `coflow_width` distinct senders into one receiver drawn
  // through the pair model (so hot racks attract coflows too).
  std::vector<GeneratedFlow> coflow_group(const TrafficConfig& cfg, sim::Rng& rng,
                                          std::uint64_t& next_group, std::size_t room,
                                          PairSampler& pairs) {
    const std::size_t width = std::min({std::max<std::size_t>(2, spec_.coflow_width),
                                        cfg.n_hosts - 1, std::max<std::size_t>(1, room)});
    const auto [first_src, dst] = pairs.sample(cfg.n_hosts, rng);
    const std::uint64_t group = next_group++;
    std::vector<GeneratedFlow> unit;
    std::vector<std::size_t> senders{first_src};
    while (senders.size() < width) {
      std::size_t s = 0;
      bool fresh = false;
      for (int attempt = 0; attempt < 64 && !fresh; ++attempt) {
        s = rng.index(cfg.n_hosts);
        fresh = s != dst && std::find(senders.begin(), senders.end(), s) == senders.end();
      }
      if (!fresh) {
        // Tiny fabric: distinctness is unsatisfiable; reuse is acceptable.
        do {
          s = rng.index(cfg.n_hosts);
        } while (s == dst);
      }
      senders.push_back(s);
    }
    for (const std::size_t s : senders) {
      GeneratedFlow f;
      f.src_host = s;
      f.dst_host = dst;
      f.bytes = sizes_.sample(rng);
      f.group_id = group;
      unit.push_back(f);
    }
    return unit;
  }

  // Front-end fan-out: one user request hits a front end, which fans out to
  // `fanout` distinct backends whose responses converge on it. We model the
  // response wave (the part the fabric actually feels): N backend→frontend
  // flows sharing one group_id == request_id; the request completes when
  // the slowest response lands (stats::GroupBook::requests).
  std::vector<GeneratedFlow> fanout_request(const TrafficConfig& cfg, sim::Rng& rng,
                                            std::uint64_t& next_group, std::size_t room) {
    const std::size_t width = std::min({std::max<std::size_t>(1, spec_.fanout),
                                        cfg.n_hosts - 1, std::max<std::size_t>(1, room)});
    const std::size_t frontend = rng.index(cfg.n_hosts);
    std::vector<std::size_t> backends;
    while (backends.size() < width) {
      std::size_t b = 0;
      bool fresh = false;
      for (int attempt = 0; attempt < 64 && !fresh; ++attempt) {
        b = rng.index(cfg.n_hosts);
        fresh = b != frontend && std::find(backends.begin(), backends.end(), b) == backends.end();
      }
      if (!fresh) {
        do {
          b = rng.index(cfg.n_hosts);
        } while (b == frontend);
      }
      backends.push_back(b);
    }
    const std::uint64_t request = next_group++;
    std::vector<GeneratedFlow> unit;
    for (const std::size_t b : backends) {
      GeneratedFlow f;
      f.src_host = b;
      f.dst_host = frontend;
      f.bytes = spec_.response_bytes > 0 ? spec_.response_bytes : sizes_.sample(rng);
      f.group_id = request;
      f.request_id = request;
      unit.push_back(f);
    }
    return unit;
  }

  WorkloadSpec spec_;
  const EmpiricalCdf& sizes_;
};

// --------------------------------------------------------------------------
// Trace replay.
// --------------------------------------------------------------------------

class TraceEngine final : public TrafficEngine {
 public:
  explicit TraceEngine(std::string path) : path_{std::move(path)} {}

  std::vector<GeneratedFlow> generate(const TrafficConfig& cfg, sim::Rng&) override {
    auto flows = read_trace_file(path_);
    for (const auto& f : flows) {
      if (f.src_host >= cfg.n_hosts || f.dst_host >= cfg.n_hosts) {
        throw TraceError(path_ + ": flow " + std::to_string(f.id) + " references host " +
                         std::to_string(std::max(f.src_host, f.dst_host)) + " but the fabric has " +
                         std::to_string(cfg.n_hosts) + " hosts");
      }
    }
    return flows;
  }

  const char* name() const override { return "trace"; }

 private:
  std::string path_;
};

}  // namespace

const char* to_string(Engine e) {
  switch (e) {
    case Engine::kLegacy:
      return "legacy";
    case Engine::kSkewed:
      return "skewed";
    case Engine::kFanout:
      return "fanout";
    case Engine::kTrace:
      return "trace";
  }
  return "?";
}

const char* to_string(PairModel p) {
  switch (p) {
    case PairModel::kUniform:
      return "uniform";
    case PairModel::kHotRack:
      return "hotrack";
    case PairModel::kPermutation:
      return "permutation";
  }
  return "?";
}

const char* to_string(ArrivalModel a) {
  switch (a) {
    case ArrivalModel::kPoisson:
      return "poisson";
    case ArrivalModel::kFixedRate:
      return "fixed";
  }
  return "?";
}

Engine engine_from_string(const std::string& s) {
  if (s == "legacy" || s == "poisson") return Engine::kLegacy;
  if (s == "skewed" || s == "skew") return Engine::kSkewed;
  if (s == "fanout") return Engine::kFanout;
  if (s == "trace") return Engine::kTrace;
  throw std::invalid_argument("unknown workload engine: " + s);
}

PairModel pair_model_from_string(const std::string& s) {
  if (s == "uniform") return PairModel::kUniform;
  if (s == "hotrack" || s == "hot-rack") return PairModel::kHotRack;
  if (s == "permutation" || s == "perm") return PairModel::kPermutation;
  throw std::invalid_argument("unknown pair model: " + s);
}

ArrivalModel arrival_model_from_string(const std::string& s) {
  if (s == "poisson") return ArrivalModel::kPoisson;
  if (s == "fixed" || s == "fixed-rate" || s == "openloop" || s == "open-loop") {
    return ArrivalModel::kFixedRate;
  }
  throw std::invalid_argument("unknown arrival model: " + s);
}

std::unique_ptr<TrafficEngine> make_engine(const WorkloadSpec& spec, const EmpiricalCdf* sizes) {
  if (spec.engine == Engine::kTrace) {
    if (spec.trace_path.empty()) {
      throw std::invalid_argument("make_engine: trace engine needs a trace_path");
    }
    return std::make_unique<TraceEngine>(spec.trace_path);
  }
  if (sizes == nullptr) {
    throw std::invalid_argument("make_engine: synthetic engines need a size CDF");
  }
  WorkloadSpec effective = spec;
  if (spec.engine == Engine::kLegacy) {
    // The byte-identity contract: legacy is uniform pairs + Poisson + no
    // structure, whatever else the spec says.
    effective.pairs = PairModel::kUniform;
    effective.arrivals = ArrivalModel::kPoisson;
    effective.coflow_fraction = 0.0;
  }
  return std::make_unique<SyntheticEngine>(std::move(effective), *sizes);
}

std::vector<GeneratedFlow> generate_traffic(const WorkloadSpec& spec, const EmpiricalCdf* sizes,
                                            const TrafficConfig& cfg, sim::Rng& rng) {
  return make_engine(spec, sizes)->generate(cfg, rng);
}

}  // namespace amrt::workload
