#include "workload/flow_trace.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace amrt::workload {

namespace {

[[noreturn]] void line_error(const std::string& name, std::size_t line, const std::string& what) {
  throw TraceError(name + ":" + std::to_string(line) + ": " + what);
}

// Strict unsigned-decimal field parse; rejects empty, sign, junk, overflow.
bool parse_field(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  out = 0;
  for (const char ch : s) {
    if (ch < '0' || ch > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(ch - '0');
    if (out > (UINT64_MAX - digit) / 10) return false;
    out = out * 10 + digit;
  }
  return true;
}

}  // namespace

std::vector<GeneratedFlow> read_trace(std::istream& in, const std::string& name) {
  std::vector<GeneratedFlow> flows;
  std::string line;
  std::size_t lineno = 0;
  std::int64_t last_t = -1;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF dumps
    // A format banner must be one this reader understands. Without this
    // check a "# amrt-flow-trace v2" header would be skipped as an ordinary
    // comment and the body silently misread under v1 rules.
    if (line.rfind("# amrt-flow-trace", 0) == 0) {
      if (line != kTraceMagic) {
        line_error(name, lineno,
                   "unsupported trace format '" + line.substr(2) + "' (this reader understands '" +
                       (kTraceMagic + 2) + "')");
      }
      continue;
    }
    if (line.empty() || line[0] == '#') continue;

    // Split on commas; reject anything but 5 or 6 fields.
    std::vector<std::string> fields;
    std::size_t pos = 0;
    for (;;) {
      const std::size_t comma = line.find(',', pos);
      fields.push_back(line.substr(pos, comma == std::string::npos ? comma : comma - pos));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    if (fields.size() != 5 && fields.size() != 6) {
      line_error(name, lineno,
                 "expected 5 or 6 fields (t_ns,src,dst,bytes,group_id[,request_id]), got " +
                     std::to_string(fields.size()));
    }

    std::uint64_t raw[6] = {0, 0, 0, 0, 0, 0};
    static constexpr const char* kField[6] = {"t_ns", "src", "dst", "bytes", "group_id",
                                              "request_id"};
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (!parse_field(fields[i], raw[i])) {
        line_error(name, lineno, std::string{"malformed "} + kField[i] + " field '" + fields[i] +
                                     "' (want a non-negative integer)");
      }
    }
    if (raw[0] > static_cast<std::uint64_t>(INT64_MAX)) {
      line_error(name, lineno, "t_ns " + fields[0] + " overflows the signed clock");
    }
    const auto t = static_cast<std::int64_t>(raw[0]);
    if (t < last_t) {
      line_error(name, lineno,
                 "non-monotonic timestamp: t_ns " + std::to_string(t) + " after " +
                     std::to_string(last_t) + " (replay would mis-schedule; sort the trace)");
    }
    last_t = t;
    if (raw[1] == raw[2]) line_error(name, lineno, "src == dst (" + fields[1] + ")");
    if (raw[3] == 0) line_error(name, lineno, "zero-byte flow");

    GeneratedFlow f;
    f.id = flows.size() + 1;
    f.start = sim::TimePoint::zero() + sim::Duration::nanoseconds(t);
    f.src_host = static_cast<std::size_t>(raw[1]);
    f.dst_host = static_cast<std::size_t>(raw[2]);
    f.bytes = raw[3];
    f.group_id = raw[4];
    f.request_id = raw[5];
    flows.push_back(f);
  }
  if (in.bad()) throw TraceError(name + ": read error");
  if (flows.empty()) throw TraceError(name + ": trace has no flows");
  return flows;
}

std::vector<GeneratedFlow> read_trace_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw TraceError(path + ": cannot open trace");
  return read_trace(in, path);
}

void write_trace(std::ostream& out, const std::vector<GeneratedFlow>& flows) {
  out << kTraceMagic << '\n';
  out << "# t_ns,src,dst,bytes,group_id,request_id\n";
  for (const auto& f : flows) {
    out << f.start.ns() << ',' << f.src_host << ',' << f.dst_host << ',' << f.bytes << ','
        << f.group_id << ',' << f.request_id << '\n';
  }
}

void write_trace_file(const std::string& path, const std::vector<GeneratedFlow>& flows) {
  std::ofstream out{path};
  if (!out) throw TraceError(path + ": cannot open for writing");
  write_trace(out, flows);
  out.flush();
  if (!out) throw TraceError(path + ": write error");
}

}  // namespace amrt::workload
