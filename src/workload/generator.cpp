#include "workload/generator.hpp"

#include <stdexcept>

namespace amrt::workload {

sim::Duration FlowGenerator::mean_interarrival(const TrafficConfig& cfg) const {
  // load * n_hosts * rate [bits/s] must equal mean_size [bits] * lambda.
  const double agg_bps =
      cfg.load * static_cast<double>(cfg.n_hosts) * static_cast<double>(cfg.host_rate.bits_per_second());
  const double mean_bits = sizes_.mean_bytes() * 8.0;
  if (agg_bps <= 0.0) throw std::invalid_argument("FlowGenerator: load must be positive");
  const double lambda = agg_bps / mean_bits;  // flows per second
  return sim::Duration::from_seconds(1.0 / lambda);
}

std::vector<GeneratedFlow> FlowGenerator::generate(const TrafficConfig& cfg) {
  if (cfg.n_hosts < 2) throw std::invalid_argument("FlowGenerator: need at least two hosts");
  const double mean_gap_s = mean_interarrival(cfg).to_seconds();

  std::vector<GeneratedFlow> flows;
  flows.reserve(cfg.n_flows);
  sim::TimePoint at = cfg.first_arrival;
  for (std::size_t i = 0; i < cfg.n_flows; ++i) {
    GeneratedFlow f;
    f.id = i + 1;
    f.src_host = rng_.index(cfg.n_hosts);
    do {
      f.dst_host = rng_.index(cfg.n_hosts);
    } while (f.dst_host == f.src_host);
    f.bytes = sizes_.sample(rng_);
    at += sim::Duration::from_seconds(rng_.exponential(mean_gap_s));
    f.start = at;
    flows.push_back(f);
  }
  return flows;
}

}  // namespace amrt::workload
