#include "model/amrt_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace amrt::model {

FillTime fill_time(std::uint32_t n, std::uint32_t k) {
  if (n == 0 || k >= n) throw std::invalid_argument("fill_time: need 0 <= k < n");
  FillTime out;
  if (k == 0) return out;
  out.min_rtts = std::ceil(static_cast<double>(k) / static_cast<double>(n - k));
  out.max_rtts = static_cast<double>(k);
  return out;
}

namespace {
void validate(const Scenario& s) {
  if (s.S <= 0 || s.C <= 0 || s.R <= 0 || s.R >= s.C || s.rtt <= 0) {
    throw std::invalid_argument("Scenario: need S,C,rtt > 0 and 0 < R < C");
  }
  if (s.S * 8.0 <= s.C * s.T_R) {
    throw std::invalid_argument("Scenario: flow finishes before the rate drop");
  }
}

// Packet slots per RTT at capacity, and how many go vacant at rate R.
double slots_per_rtt(const Scenario& s) { return s.C * s.rtt / (8.0 * s.mtu); }
}  // namespace

double fct_traditional(const Scenario& s) {
  validate(s);
  const double bits = s.S * 8.0;
  return (bits - s.C * s.T_R) / s.R + s.T_R;  // Eq. (6)
}

double convergence_earliest(const Scenario& s) {
  validate(s);
  // Eq. (7), with each doubling step taking one RTT: ceil((C-R)/R) RTTs.
  return std::ceil((s.C - s.R) / s.R) * s.rtt + s.T_R;
}

double convergence_latest(const Scenario& s) {
  validate(s);
  // Eq. (8), in packet slots: k consecutive vacancies take k RTTs (Eq. 5)
  // with k = n * (C-R)/C vacancies per RTT window.
  const double n = slots_per_rtt(s);
  const double k = n * (s.C - s.R) / s.C;
  return std::max(1.0, std::ceil(k)) * s.rtt + s.T_R;
}

double fct_amrt(const Scenario& s, double t_prime) {
  validate(s);
  const double bits = s.S * 8.0;
  // Eq. (10): linear ramp R -> C over [T_R, t'], then full rate.
  const double ramp_bits = 0.5 * (s.R + s.C) * (t_prime - s.T_R);
  return (bits - s.C * s.T_R - ramp_bits) / s.C + t_prime;
}

double utilization_gain(const Scenario& s, double t_prime) {
  return fct_traditional(s) / fct_amrt(s, t_prime);  // Eq. (11)
}

double fct_gain(const Scenario& s, double t_prime) {
  const double ti = s.S * 8.0 / s.C;
  const double t2 = fct_amrt(s, t_prime);
  if (t2 <= ti) return std::numeric_limits<double>::infinity();
  return (fct_traditional(s) - ti) / (t2 - ti);  // Eq. (12)
}

GainBounds utilization_gain_bounds(const Scenario& s) {
  // The latest convergence usually gives the smallest gain; for flows that
  // finish mid-ramp the order can flip, so normalize.
  const double a = utilization_gain(s, convergence_latest(s));
  const double b = utilization_gain(s, convergence_earliest(s));
  return GainBounds{std::min(a, b), std::max(a, b)};
}

GainBounds fct_gain_bounds(const Scenario& s) {
  const double a = fct_gain(s, convergence_latest(s));
  const double b = fct_gain(s, convergence_earliest(s));
  return GainBounds{std::min(a, b), std::max(a, b)};
}

}  // namespace amrt::model
