// Section 5's closed-form model of AMRT's utilization and FCT gains.
//
// The packet-slot forms (Eq. 4/5) are primary: with n back-to-back packets
// per RTT and k of them vacated, AMRT needs between ceil(k/(n-k)) and k RTTs
// to refill the link. The rate-form bounds (Eq. 7/8) are derived from them;
// the paper's printed versions omit the RTT factor, which we restore (see
// DESIGN.md §2). Figure 7 is produced by sweeping these formulas.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace amrt::model {

struct FillTime {
  double min_rtts = 0;  // Eq. (4): vacancies evenly spread
  double max_rtts = 0;  // Eq. (5): vacancies consecutive
};

// Time (in RTTs) for AMRT to refill a link after k of n per-RTT packet
// slots go vacant. Requires 0 <= k < n.
[[nodiscard]] FillTime fill_time(std::uint32_t n, std::uint32_t k);

// Scenario of Fig. 6: a flow of `S` bytes runs at capacity C until time T_R,
// then drops to R (both in bits/sec, times in seconds).
struct Scenario {
  double S = 0;        // flow size, bytes
  double C = 0;        // bottleneck capacity, bits/sec
  double R = 0;        // reduced rate, bits/sec (0 < R < C)
  double T_R = 0;      // time of the rate reduction, seconds
  double rtt = 0;      // base round-trip time, seconds
  double mtu = 1500;   // bytes per packet slot
};

// Eq. (6): completion time of a traditional receiver-driven protocol.
[[nodiscard]] double fct_traditional(const Scenario& s);

// Eq. (7)/(8) with the RTT factor restored: the earliest/latest instant at
// which AMRT is back at full rate C.
[[nodiscard]] double convergence_earliest(const Scenario& s);
[[nodiscard]] double convergence_latest(const Scenario& s);

// Eq. (10): AMRT's completion time given the convergence instant t'.
[[nodiscard]] double fct_amrt(const Scenario& s, double t_prime);

// Eq. (11): U_AMRT / U_TRP = T1 / T2.
[[nodiscard]] double utilization_gain(const Scenario& s, double t_prime);

// Eq. (12): (T1 - Ti) / (T2 - Ti) with Ti = S/C the ideal FCT.
[[nodiscard]] double fct_gain(const Scenario& s, double t_prime);

// Convenience: the {min, max} gain pair obtained at t'_max / t'_min.
struct GainBounds {
  double min_gain = 0;
  double max_gain = 0;
};
[[nodiscard]] GainBounds utilization_gain_bounds(const Scenario& s);
[[nodiscard]] GainBounds fct_gain_bounds(const Scenario& s);

}  // namespace amrt::model
