// Invariant-audit subsystem (compile-time gated by AMRT_AUDIT).
//
// One `Auditor` lives inside every `sim::Simulation` and observes the run
// through hooks woven into the scheduler, ports, queues, hosts and
// transports. It enforces, on every packet and every event:
//
//   * packet conservation — every injected packet is delivered, dropped
//     (with a reason) or still in flight; nothing is duplicated, and at a
//     drained (idle) scheduler the ledger closes exactly, payload bytes
//     included (trims account for the payload they cut);
//   * queue accounting — a shadow (packets, bytes) ledger per egress queue
//     must match the queue's own depth after every admit/dequeue, and the
//     stats identity depth == enqueued - dequeued - dropped must hold;
//   * clock monotonicity / wheel order — events fire in non-decreasing
//     timestamp order and the clock never runs backwards;
//   * transport invariants — grants never exceed a flow's packet budget, a
//     marked AMRT grant carries exactly the configured allowance, senders
//     never overshoot a grant's allowance, the received-sequence bitmap is
//     internally consistent at completion, and no credit is issued for a
//     finished flow;
//   * anti-ECN Eq. 1-3 — the CE bit a receiver sees equals the AND of the
//     per-hop gap-estimator verdicts (tracked per packet copy in an
//     audit-only Packet field), so markers can only ever clear it.
//
// Zero cost when off: without AMRT_AUDIT this header defines an empty stub
// with identical signatures, `Scheduler::auditor()` folds to a constexpr
// nullptr, and every `if (auto* a = ...auditor())` hook site — arguments
// included — is dead code the compiler deletes. The audited entry point is
// `Host::send`; packets injected by tests directly into ports or switches
// are simply untracked (delivery/drop of an unknown key is ignored), which
// keeps unit tests honest without false positives.
//
// Failure handling: by default a violation prints a diagnostic (plus the
// thread's replay context, see set_context) and aborts — the "checked
// build dies loudly" mode the fuzzer and CI rely on. Tests and the fuzzer
// flip `set_fail_fast(false)` to collect violations per run instead.
#pragma once

#include <atomic>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace amrt::audit {

// Why a queue refused (or evicted) a packet; carried into the conservation
// ledger so "dropped" always has an attributable cause.
enum class DropReason : std::uint8_t {
  kDataCapacity,          // data band full (drop-tail / shared cap)
  kUnscheduledSacrifice,  // Aeolus: blind packet refused at a full band
  kEvictedUnscheduled,    // Aeolus: queued blind packet evicted by scheduled
  kOther,
  // Fault-injection losses (src/fault): the fabric ate the packet. Kept
  // apart from congestion drops in the ledger — the `faulted` debit — so
  // conservation closes under injected failures without masking real leaks.
  kLinkDown,   // egress link down: packet refused or flushed from the queue
  kBlackhole,  // probabilistic per-port corruption/blackholing
};

[[nodiscard]] inline const char* to_string(DropReason r) {
  switch (r) {
    case DropReason::kDataCapacity: return "data-capacity";
    case DropReason::kUnscheduledSacrifice: return "unscheduled-sacrifice";
    case DropReason::kEvictedUnscheduled: return "evicted-unscheduled";
    case DropReason::kOther: return "other";
    case DropReason::kLinkDown: return "link-down";
    case DropReason::kBlackhole: return "blackhole";
  }
  return "?";
}

// Fault-injected losses are debited separately from congestion drops.
[[nodiscard]] inline bool is_fault(DropReason r) {
  return r == DropReason::kLinkDown || r == DropReason::kBlackhole;
}

// Primitive mirror of the net::Packet fields the auditor reads. Defined
// here (audit sits below net/ in the include graph); the converter lives in
// audit/hooks.hpp next to net::Packet.
struct PacketInfo {
  std::uint64_t flow = 0;
  std::uint32_t seq = 0;
  std::uint8_t type = 0;  // net::PacketType
  std::uint32_t wire_bytes = 0;
  std::uint32_t payload_bytes = 0;
  bool is_data = false;
  bool trimmed = false;
  bool ecn_capable = false;
  bool ce = false;
  bool ce_expected = false;  // AND of per-hop verdicts (audit builds only)
};

// --- process-global knobs ---------------------------------------------------

// Abort on the first violation (default) or record and keep going.
inline std::atomic<bool>& fail_fast_flag() {
  static std::atomic<bool> flag{true};
  return flag;
}
inline void set_fail_fast(bool on) { fail_fast_flag().store(on, std::memory_order_relaxed); }
[[nodiscard]] inline bool fail_fast() { return fail_fast_flag().load(std::memory_order_relaxed); }

// Replay context printed with every violation on this thread — the fuzzer
// sets it to the standalone repro line before each case.
inline std::string& context_ref() {
  thread_local std::string ctx;
  return ctx;
}
inline void set_context(std::string ctx) { context_ref() = std::move(ctx); }
[[nodiscard]] inline const std::string& context() { return context_ref(); }

#ifdef AMRT_AUDIT

class Auditor {
 public:
  static constexpr std::size_t kMaxStoredViolations = 64;

  // --- packet-conservation ledger ----------------------------------------
  void on_inject(const PacketInfo& p) {
    ++injected_;
    injected_payload_ += p.payload_bytes;
    ++ledger_[key_of(p)];
  }

  void on_deliver(const PacketInfo& p) {
    auto it = ledger_.find(key_of(p));
    if (it == ledger_.end()) {
      if (!cross_shard_) return;  // untracked (test-injected) packet
      // Sharded run: the injection was booked on the sender's shard. Debit
      // here into a fresh (negative-going) entry; merge_from cancels it
      // against the credit when the run's ledgers are folded together.
      it = ledger_.emplace(key_of(p), 0).first;
    } else if (!cross_shard_ && it->second <= 0) {
      fail("packet-conservation", "duplicate delivery of flow %llu seq %u type %u",
           static_cast<unsigned long long>(p.flow), p.seq, p.type);
      return;
    }
    --it->second;
    ++delivered_;
    delivered_payload_ += p.payload_bytes;
    // Anti-ECN Eq. 1-3: CE at the receiver must be the AND of every hop's
    // verdict; a marker may clear the bit, nothing may set it back.
    if (p.is_data && p.ecn_capable && !p.trimmed && p.ce != p.ce_expected) {
      fail("anti-ecn-eq3", "flow %llu seq %u delivered with CE=%d, per-hop AND says %d",
           static_cast<unsigned long long>(p.flow), p.seq, p.ce ? 1 : 0, p.ce_expected ? 1 : 0);
    }
  }

  void on_drop(const PacketInfo& p, DropReason r) {
    auto it = ledger_.find(key_of(p));
    if (it == ledger_.end() && cross_shard_) {
      it = ledger_.emplace(key_of(p), 0).first;  // debit the remote injection
    }
    if (it != ledger_.end()) {
      if (!cross_shard_ && it->second <= 0) {
        fail("packet-conservation", "drop of already-terminated flow %llu seq %u (%s)",
             static_cast<unsigned long long>(p.flow), p.seq, to_string(r));
        return;
      }
      --it->second;
    }
    if (is_fault(r)) {
      ++faulted_;
      faulted_payload_ += p.payload_bytes;
    } else {
      ++dropped_;
      dropped_payload_ += p.payload_bytes;
    }
  }

  // `payload_removed` is the payload the trim cut; the (now header-only)
  // packet stays live in the ledger and is delivered later.
  void on_trim(const PacketInfo& p, std::uint32_t payload_removed) {
    (void)p;
    ++trimmed_;
    trimmed_payload_ += payload_removed;
  }

  // At a drained (idle) scheduler nothing is in flight: every key must have
  // closed and the payload-byte ledger must balance exactly.
  void check_drained() {
    for (const auto& [key, outstanding] : ledger_) {
      if (outstanding != 0) {
        fail("packet-conservation",
             "drained run left flow %llu seq %u type %u with %lld unaccounted copies",
             static_cast<unsigned long long>(key >> 34), static_cast<std::uint32_t>((key >> 2) & 0xFFFFFFFFu),
             static_cast<unsigned>(key & 3), static_cast<long long>(outstanding));
        return;
      }
    }
    if (injected_payload_ !=
        delivered_payload_ + dropped_payload_ + trimmed_payload_ + faulted_payload_) {
      fail("byte-conservation",
           "payload ledger open at drain: injected %llu != delivered %llu + dropped %llu + trimmed %llu + faulted %llu",
           static_cast<unsigned long long>(injected_payload_),
           static_cast<unsigned long long>(delivered_payload_),
           static_cast<unsigned long long>(dropped_payload_),
           static_cast<unsigned long long>(trimmed_payload_),
           static_cast<unsigned long long>(faulted_payload_));
    }
  }

  // --- queue accounting ----------------------------------------------------
  // Called by EgressQueue after a packet is admitted into a band (control,
  // data, or a trimmed header into control) with the queue's own view of its
  // depth and stats; the auditor cross-checks its shadow ledger.
  void on_queue_admit(std::uint32_t q, std::uint32_t wire_bytes, std::size_t depth_pkts,
                      std::uint64_t enq, std::uint64_t deq, std::uint64_t dropped) {
    QueueShadow& s = shadow(q);
    ++s.pkts;
    s.bytes += wire_bytes;
    queue_check(q, s, depth_pkts, enq, deq, dropped, "admit");
  }

  void on_queue_dequeue(std::uint32_t q, std::uint32_t wire_bytes, std::size_t depth_pkts,
                        std::uint64_t enq, std::uint64_t deq, std::uint64_t dropped) {
    QueueShadow& s = shadow(q);
    --s.pkts;
    s.bytes -= wire_bytes;
    if (s.pkts < 0 || s.bytes < 0) {
      fail("queue-accounting", "queue %u dequeued more than it admitted (pkts %lld, bytes %lld)",
           q, static_cast<long long>(s.pkts), static_cast<long long>(s.bytes));
      return;
    }
    if (depth_pkts == 0 && s.bytes != 0) {
      fail("queue-accounting", "queue %u empty but shadow holds %lld bytes (byte drift)", q,
           static_cast<long long>(s.bytes));
      return;
    }
    queue_check(q, s, depth_pkts, enq, deq, dropped, "dequeue");
  }

  // An admitted packet leaves the band without being transmitted (Aeolus
  // eviction): shadow shrinks, and the caller reports the drop separately.
  void on_queue_unadmit(std::uint32_t q, std::uint32_t wire_bytes) {
    QueueShadow& s = shadow(q);
    --s.pkts;
    s.bytes -= wire_bytes;
    if (s.pkts < 0 || s.bytes < 0) {
      fail("queue-accounting", "queue %u evicted a packet it never admitted", q);
    }
  }

  // --- event core ----------------------------------------------------------
  void on_event_fire(std::int64_t when_ns, std::int64_t clock_before_ns) {
    if (when_ns < clock_before_ns) {
      fail("clock-monotonicity", "event at %lld ns fired with clock already at %lld ns",
           static_cast<long long>(when_ns), static_cast<long long>(clock_before_ns));
    } else if (when_ns < last_fire_ns_) {
      fail("wheel-order", "event at %lld ns fired after one at %lld ns",
           static_cast<long long>(when_ns), static_cast<long long>(last_fire_ns_));
    }
    if (when_ns > last_fire_ns_) last_fire_ns_ = when_ns;
  }

  // --- transport invariants ------------------------------------------------
  // An allowance grant left the receiver. `granted_total_pkts` counts
  // unscheduled + granted_new after this grant; `marked_expected` is the
  // AMRT marked-grant allowance (0 = protocol without the marked path).
  void on_grant_sent(std::uint64_t flow, bool marked, std::uint32_t allowance,
                     std::uint64_t granted_total_pkts, std::uint32_t total_pkts,
                     std::uint64_t remaining_before, std::uint32_t marked_expected) {
    check_not_finished(flow, "grant");
    if (granted_total_pkts > total_pkts) {
      fail("grant-budget", "flow %llu granted %llu of %u packets",
           static_cast<unsigned long long>(flow),
           static_cast<unsigned long long>(granted_total_pkts), total_pkts);
    }
    if (marked && marked_expected != 0) {
      const std::uint64_t want =
          remaining_before < marked_expected ? remaining_before : marked_expected;
      if (allowance != want) {
        fail("marked-grant-allowance", "flow %llu marked grant carries allowance %u, expected %llu",
             static_cast<unsigned long long>(flow), allowance,
             static_cast<unsigned long long>(want));
      }
    }
  }

  // A repair grant (re-request of one sequence number) left the receiver.
  void on_repair_grant(std::uint64_t flow, std::uint32_t seq, std::uint32_t total_pkts) {
    check_not_finished(flow, "repair grant");
    if (seq >= total_pkts) {
      fail("repair-range", "flow %llu re-requested seq %u of %u",
           static_cast<unsigned long long>(flow), seq, total_pkts);
    }
  }

  // Homa's byte-offset grant.
  void on_offset_grant(std::uint64_t flow, std::uint64_t offset, std::uint64_t flow_bytes) {
    check_not_finished(flow, "offset grant");
    if (offset > flow_bytes) {
      fail("grant-budget", "flow %llu offset-granted %llu of %llu bytes",
           static_cast<unsigned long long>(flow), static_cast<unsigned long long>(offset),
           static_cast<unsigned long long>(flow_bytes));
    }
  }

  // The sender answered one grant with `data_pkts_sent` data packets.
  // Offset grants (Homa) authorize by byte position, not count.
  void on_grant_response(std::uint64_t flow, std::uint32_t allowance, std::int64_t request_seq,
                         std::uint64_t data_pkts_sent, bool offset_semantics) {
    if (offset_semantics) return;
    const std::uint64_t allowed = request_seq >= 0 ? 1 : allowance;
    if (data_pkts_sent > allowed) {
      fail("grant-response", "flow %llu sender sent %llu packets for a grant allowing %llu",
           static_cast<unsigned long long>(flow),
           static_cast<unsigned long long>(data_pkts_sent),
           static_cast<unsigned long long>(allowed));
    }
  }

  void on_flow_finished(std::uint64_t flow, std::uint32_t total_pkts, std::uint32_t received_pkts,
                        std::uint32_t got_count) {
    if (received_pkts != total_pkts || got_count != total_pkts) {
      fail("seq-bitmap", "flow %llu finished with %u/%u received but %u bits set",
           static_cast<unsigned long long>(flow), received_pkts, total_pkts, got_count);
    }
    finished_.insert(flow);
  }

  // --- DCTCP window invariants (transport/dctcp.hpp) -----------------------
  // Fired after every window update (fresh ACK or timeout): alpha is a
  // fraction by construction and cwnd must stay inside [1, cap].
  void on_dctcp_window(std::uint64_t flow, double cwnd, double alpha, double cap) {
    if (!(alpha >= 0.0 && alpha <= 1.0)) {
      fail("dctcp-alpha", "flow %llu alpha %f outside [0, 1]",
           static_cast<unsigned long long>(flow), alpha);
      return;
    }
    if (cwnd < 1.0) {
      fail("dctcp-cwnd", "flow %llu cwnd %f below one packet",
           static_cast<unsigned long long>(flow), cwnd);
      return;
    }
    if (cwnd > cap) {
      fail("dctcp-cwnd", "flow %llu cwnd %f above cap %f",
           static_cast<unsigned long long>(flow), cwnd, cap);
    }
  }

  // Fired after each data transmission with the packets then in flight: the
  // sender must never run ahead of floor(cwnd) (minimum one).
  void on_dctcp_send(std::uint64_t flow, std::uint32_t inflight, double cwnd) {
    const double allowed = cwnd < 1.0 ? 1.0 : cwnd;
    if (static_cast<double>(inflight) > allowed) {
      fail("dctcp-inflight", "flow %llu has %u packets in flight with cwnd %f",
           static_cast<unsigned long long>(flow), inflight, cwnd);
    }
  }

  // --- sharded runs (net/partition.hpp) ------------------------------------
  // Cross-shard mode: one packet's inject and deliver/drop hooks may run on
  // different shards' auditors, so an unknown key books a negative entry
  // instead of being skipped and the local duplicate checks are disabled (a
  // negative count is legitimate until the ledgers merge). Per-shard
  // check_drained() is meaningless in this mode — only the merged master
  // closes — which is why only ShardedRunner flips it.
  void set_cross_shard(bool on) { cross_shard_ = on; }

  // Folds `other`'s state into this auditor: ledger entries and payload
  // tallies sum (credits cancel debits), queue shadows add element-wise,
  // finished flows union, violations append. Called once per shard at the
  // end of a sharded run, with every worker thread joined.
  void merge_from(const Auditor& other) {
    for (const auto& [key, outstanding] : other.ledger_) {
      if (outstanding != 0) ledger_[key] += outstanding;
    }
    if (queues_.size() < other.queues_.size()) queues_.resize(other.queues_.size());
    for (std::size_t i = 0; i < other.queues_.size(); ++i) {
      queues_[i].pkts += other.queues_[i].pkts;
      queues_[i].bytes += other.queues_[i].bytes;
    }
    finished_.insert(other.finished_.begin(), other.finished_.end());
    injected_ += other.injected_;
    delivered_ += other.delivered_;
    dropped_ += other.dropped_;
    trimmed_ += other.trimmed_;
    faulted_ += other.faulted_;
    injected_payload_ += other.injected_payload_;
    delivered_payload_ += other.delivered_payload_;
    dropped_payload_ += other.dropped_payload_;
    trimmed_payload_ += other.trimmed_payload_;
    faulted_payload_ += other.faulted_payload_;
    if (other.last_fire_ns_ > last_fire_ns_) last_fire_ns_ = other.last_fire_ns_;
    violation_count_ += other.violation_count_;
    for (const auto& v : other.violations_) {
      if (violations_.size() >= kMaxStoredViolations) break;
      violations_.push_back(v);
    }
  }

  // --- results -------------------------------------------------------------
  [[nodiscard]] std::uint64_t violation_count() const { return violation_count_; }
  [[nodiscard]] const std::vector<std::string>& violations() const { return violations_; }
  [[nodiscard]] std::uint64_t injected() const { return injected_; }
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t trimmed() const { return trimmed_; }
  [[nodiscard]] std::uint64_t faulted() const { return faulted_; }
  // True when the auditor is compiled in (the stub returns false).
  [[nodiscard]] static constexpr bool enabled() { return true; }

 private:
  struct QueueShadow {
    std::int64_t pkts = 0;
    std::int64_t bytes = 0;
  };

  // (flow, seq, type) packed: flow in the high 30 bits (experiment flow ids
  // are small), seq in the middle, the 2-bit type tag at the bottom.
  [[nodiscard]] static std::uint64_t key_of(const PacketInfo& p) {
    return (p.flow << 34) | (static_cast<std::uint64_t>(p.seq) << 2) |
           (static_cast<std::uint64_t>(p.type) & 3u);
  }

  // Dense shadow lookup: queues are identified by their pool slot (ports_
  // index inside Network), so the hot hooks index a vector instead of
  // hashing a pointer. Standalone queues in unit tests bind small ad-hoc
  // slots; resize-on-demand keeps those working.
  QueueShadow& shadow(std::uint32_t q) {
    if (q >= queues_.size()) queues_.resize(static_cast<std::size_t>(q) + 1);
    return queues_[q];
  }

  void queue_check(std::uint32_t q, const QueueShadow& s, std::size_t depth_pkts,
                   std::uint64_t enq, std::uint64_t deq, std::uint64_t dropped, const char* op) {
    if (static_cast<std::int64_t>(depth_pkts) != s.pkts) {
      fail("queue-accounting", "queue %u depth %zu != shadow %lld after %s", q, depth_pkts,
           static_cast<long long>(s.pkts), op);
      return;
    }
    if (enq != deq + dropped + depth_pkts) {
      fail("queue-accounting",
           "queue %u stats identity broken after %s: enqueued %llu != dequeued %llu + dropped %llu + depth %zu",
           q, op, static_cast<unsigned long long>(enq), static_cast<unsigned long long>(deq),
           static_cast<unsigned long long>(dropped), depth_pkts);
    }
  }

  void check_not_finished(std::uint64_t flow, const char* what) {
    if (finished_.count(flow) != 0) {
      fail("grant-after-finish", "flow %llu received a %s after completion",
           static_cast<unsigned long long>(flow), what);
    }
  }

  __attribute__((format(printf, 3, 4))) void fail(const char* invariant, const char* fmt, ...) {
    char buf[512];
    std::va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);

    ++violation_count_;
    std::string msg = std::string("[") + invariant + "] " + buf;
    if (violations_.size() < kMaxStoredViolations) violations_.push_back(msg);
    if (fail_fast()) {
      std::fprintf(stderr, "AMRT_AUDIT violation: %s\n", msg.c_str());
      if (!context().empty()) std::fprintf(stderr, "replay: %s\n", context().c_str());
      std::abort();
    }
  }

  std::unordered_map<std::uint64_t, std::int64_t> ledger_;
  std::vector<QueueShadow> queues_;  // indexed by queue pool slot
  std::unordered_set<std::uint64_t> finished_;
  std::uint64_t injected_ = 0, delivered_ = 0, dropped_ = 0, trimmed_ = 0, faulted_ = 0;
  std::uint64_t injected_payload_ = 0, delivered_payload_ = 0, dropped_payload_ = 0,
                trimmed_payload_ = 0, faulted_payload_ = 0;
  std::int64_t last_fire_ns_ = INT64_MIN;
  std::uint64_t violation_count_ = 0;
  std::vector<std::string> violations_;
  bool cross_shard_ = false;
};

#else  // !AMRT_AUDIT — signature-identical stub; every hook site folds away.

class Auditor {
 public:
  static constexpr std::size_t kMaxStoredViolations = 64;
  void on_inject(const PacketInfo&) {}
  void on_deliver(const PacketInfo&) {}
  void on_drop(const PacketInfo&, DropReason) {}
  void on_trim(const PacketInfo&, std::uint32_t) {}
  void check_drained() {}
  void on_queue_admit(std::uint32_t, std::uint32_t, std::size_t, std::uint64_t, std::uint64_t,
                      std::uint64_t) {}
  void on_queue_dequeue(std::uint32_t, std::uint32_t, std::size_t, std::uint64_t, std::uint64_t,
                        std::uint64_t) {}
  void on_queue_unadmit(std::uint32_t, std::uint32_t) {}
  void on_event_fire(std::int64_t, std::int64_t) {}
  void on_grant_sent(std::uint64_t, bool, std::uint32_t, std::uint64_t, std::uint32_t,
                     std::uint64_t, std::uint32_t) {}
  void on_repair_grant(std::uint64_t, std::uint32_t, std::uint32_t) {}
  void on_offset_grant(std::uint64_t, std::uint64_t, std::uint64_t) {}
  void on_grant_response(std::uint64_t, std::uint32_t, std::int64_t, std::uint64_t, bool) {}
  void on_flow_finished(std::uint64_t, std::uint32_t, std::uint32_t, std::uint32_t) {}
  void on_dctcp_window(std::uint64_t, double, double, double) {}
  void on_dctcp_send(std::uint64_t, std::uint32_t, double) {}
  void set_cross_shard(bool) {}
  void merge_from(const Auditor&) {}
  [[nodiscard]] std::uint64_t violation_count() const { return 0; }
  [[nodiscard]] const std::vector<std::string>& violations() const {
    static const std::vector<std::string> empty;
    return empty;
  }
  [[nodiscard]] std::uint64_t injected() const { return 0; }
  [[nodiscard]] std::uint64_t delivered() const { return 0; }
  [[nodiscard]] std::uint64_t dropped() const { return 0; }
  [[nodiscard]] std::uint64_t trimmed() const { return 0; }
  [[nodiscard]] std::uint64_t faulted() const { return 0; }
  [[nodiscard]] static constexpr bool enabled() { return false; }
};

#endif  // AMRT_AUDIT

}  // namespace amrt::audit
