// net-layer adapter for the audit subsystem.
//
// `audit/auditor.hpp` sits below `net/` in the include graph and speaks only
// primitives; this header lives beside the packet type and provides the one
// conversion the hook sites need. Included only by files that already
// depend on net/packet.hpp.
#pragma once

#include "audit/auditor.hpp"
#include "net/packet.hpp"

namespace amrt::audit {

[[nodiscard]] inline PacketInfo info_of(const net::Packet& pkt) {
  PacketInfo p;
  p.flow = pkt.flow;
  p.seq = pkt.seq;
  p.type = static_cast<std::uint8_t>(pkt.type);
  p.wire_bytes = pkt.wire_bytes;
  p.payload_bytes = pkt.payload_bytes;
  p.is_data = pkt.type == net::PacketType::kData;
  p.trimmed = pkt.trimmed;
  p.ecn_capable = pkt.ecn_capable;
  p.ce = pkt.ce;
#ifdef AMRT_AUDIT
  p.ce_expected = pkt.audit_ce_expected;
#endif
  return p;
}

}  // namespace amrt::audit
