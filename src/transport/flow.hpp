// Application-level unit of work: a one-way message of `bytes` from one
// host to another, identified by a globally unique id.
#pragma once

#include <cstdint>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace amrt::transport {

struct FlowSpec {
  net::FlowId id = 0;
  net::NodeId src{};
  net::NodeId dst{};
  std::uint64_t bytes = 0;
  sim::TimePoint start{};  // informational; the harness schedules start_flow
};

}  // namespace amrt::transport
