#include "transport/endpoint.hpp"

namespace amrt::transport {

TransportEndpoint::TransportEndpoint(sim::Scheduler& sched, net::Host& host, TransportConfig cfg,
                                     stats::FlowObserver* observer)
    : sched_{sched}, host_{host}, cfg_{cfg}, observer_{observer} {}

void TransportEndpoint::deliver(net::Packet&& pkt) {
  switch (pkt.type) {
    case net::PacketType::kData: on_data(std::move(pkt)); break;
    case net::PacketType::kRts: on_rts(std::move(pkt)); break;
    case net::PacketType::kGrant: on_grant(std::move(pkt)); break;
    case net::PacketType::kDone: on_done(std::move(pkt)); break;
  }
}

}  // namespace amrt::transport
