#include "transport/endpoint.hpp"

namespace amrt::transport {

TransportEndpoint::TransportEndpoint(sim::Simulation& sim, net::Host& host, TransportConfig cfg,
                                     stats::FlowObserver* observer)
    : sim_{sim}, sched_{sim.scheduler()}, host_{host}, cfg_{cfg}, observer_{observer} {}

void TransportEndpoint::deliver(net::Packet&& pkt) {
  switch (pkt.type) {
    case net::PacketType::kData: on_data(std::move(pkt)); break;
    case net::PacketType::kRts: on_rts(std::move(pkt)); break;
    case net::PacketType::kGrant: on_grant(std::move(pkt)); break;
    case net::PacketType::kDone: on_done(std::move(pkt)); break;
  }
}

}  // namespace amrt::transport
