#include "transport/config.hpp"

#include <stdexcept>

namespace amrt::transport {

const char* to_string(Protocol p) {
  switch (p) {
    case Protocol::kAmrt: return "AMRT";
    case Protocol::kPhost: return "pHost";
    case Protocol::kHoma: return "Homa";
    case Protocol::kNdp: return "NDP";
    case Protocol::kDctcp: return "DCTCP";
  }
  return "?";
}

Protocol protocol_from_string(const std::string& name) {
  if (name == "AMRT" || name == "amrt") return Protocol::kAmrt;
  if (name == "pHost" || name == "phost") return Protocol::kPhost;
  if (name == "Homa" || name == "homa") return Protocol::kHoma;
  if (name == "NDP" || name == "ndp") return Protocol::kNdp;
  if (name == "DCTCP" || name == "dctcp") return Protocol::kDctcp;
  throw std::invalid_argument("unknown protocol: " + name);
}

}  // namespace amrt::transport
