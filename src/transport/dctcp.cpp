#include "transport/dctcp.hpp"

namespace amrt::transport {

using net::Packet;
using net::PacketType;

std::uint8_t pias_priority(std::uint64_t bytes_sent, std::uint64_t base_threshold,
                           std::uint8_t levels) {
  if (levels <= 1 || base_threshold == 0) return 0;
  std::uint8_t level = 0;
  std::uint64_t threshold = base_threshold;
  while (level + 1 < levels && bytes_sent >= threshold) {
    ++level;
    if (threshold > (~std::uint64_t{0} >> 1)) break;  // next shift would overflow
    threshold <<= 1;
  }
  return level;
}

DctcpEndpoint::DctcpEndpoint(sim::Simulation& sim, net::Host& host, TransportConfig cfg,
                             stats::FlowObserver* observer)
    : TransportEndpoint{sim, host, cfg, observer},
      rto_{cfg_.default_loss_timeout(Protocol::kDctcp)} {}

const DctcpCc* DctcpEndpoint::sender_cc(net::FlowId id) const {
  const SenderFlow* flow = snd_.find(id);
  return flow == nullptr ? nullptr : &flow->cc;
}

void DctcpEndpoint::start_flow(const FlowSpec& spec) {
  auto [flow, inserted] = snd_.try_emplace(spec.id);
  if (!inserted) return;  // duplicate start
  flow->spec = spec;
  flow->total_pkts = flow_pkts(spec.bytes);
  flow->state.assign(flow->total_pkts, kUnsent);
  flow->cc = DctcpCc{cfg_.dctcp_g, cfg_.dctcp_init_cwnd_pkts, cfg_.dctcp_cwnd_cap_pkts()};
  if (observer_ != nullptr) observer_->on_flow_started(spec.id, spec.bytes, sched_.now());
  pump(*flow);
}

void DctcpEndpoint::send_seq(SenderFlow& flow, std::uint32_t seq) {
  Packet pkt;
  pkt.flow = flow.spec.id;
  pkt.seq = seq;
  pkt.payload_bytes = net::payload_of_seq(flow.spec.bytes, seq);
  pkt.wire_bytes = pkt.payload_bytes + net::kHeaderBytes;
  pkt.type = PacketType::kData;
  pkt.src = host_.id();
  pkt.dst = flow.spec.dst;
  // Threshold-mode ECN: CE starts clear, congested hops set it.
  pkt.ecn_capable = true;
  pkt.ce = false;
  pkt.threshold_ecn = true;
  // PIAS: demote by cumulative bytes already sent, before this packet.
  pkt.priority = pias_priority(flow.bytes_sent, cfg_.pias_base_threshold_bytes, cfg_.pias_levels);
  pkt.flow_bytes = flow.spec.bytes;
  pkt.created = sched_.now();
  flow.bytes_sent += pkt.payload_bytes;
  send(std::move(pkt));
}

void DctcpEndpoint::pump(SenderFlow& flow) {
  const std::uint32_t window = flow.cc.cwnd_pkts();
  while (flow.inflight < window) {
    std::uint32_t seq = 0;
    bool have = false;
    // Retransmissions first; entries whose state moved on (a late ACK
    // arrived while the seq sat queued) are skipped.
    while (!flow.lost_q.empty()) {
      const std::uint32_t candidate = flow.lost_q.pop_front();
      if (flow.state[candidate] == kLost) {
        seq = candidate;
        have = true;
        break;
      }
    }
    if (!have) {
      if (flow.next_new >= flow.total_pkts) break;
      seq = flow.next_new++;
    }
    flow.state[seq] = kInflight;
    ++flow.inflight;
    send_seq(flow, seq);
#ifdef AMRT_AUDIT
    if (auto* a = sched_.auditor()) {
      a->on_dctcp_send(flow.spec.id, flow.inflight, flow.cc.cwnd());
    }
#endif
  }
  if (flow.inflight > 0) arm_rto(flow);
}

void DctcpEndpoint::arm_rto(SenderFlow& flow) {
  flow.rto_timer.cancel();
  flow.rto_timer = sched_.after(rto_, [this, id = flow.spec.id] { rto_fire(id); });
}

void DctcpEndpoint::rto_fire(net::FlowId id) {
  SenderFlow* flow = snd_.find(id);
  if (flow == nullptr) return;
  ++timeouts_;
  // Everything unacknowledged and in flight is presumed lost.
  for (std::uint32_t seq = 0; seq < flow->total_pkts; ++seq) {
    if (flow->state[seq] == kInflight) {
      flow->state[seq] = kLost;
      flow->lost_q.push_back(std::uint32_t{seq});
    }
  }
  flow->inflight = 0;
  flow->cc.on_timeout();
#ifdef AMRT_AUDIT
  if (auto* a = sched_.auditor()) {
    a->on_dctcp_window(id, flow->cc.cwnd(), flow->cc.alpha(), flow->cc.cap());
  }
#endif
  pump(*flow);  // sends the one-packet window and re-arms the timer
}

void DctcpEndpoint::on_grant(Packet&& ack) {
  SenderFlow* flow = snd_.find(ack.flow);
  if (flow == nullptr) return;  // stale ACK after sender teardown
  if (ack.seq >= flow->total_pkts) return;
  const std::uint8_t prev = flow->state[ack.seq];
  if (prev == kAcked) return;  // duplicate ACK: must not clock the window
  flow->state[ack.seq] = kAcked;
  ++flow->acked;
  if (prev == kInflight) --flow->inflight;
  flow->cc.on_ack(ack.marked_grant);
#ifdef AMRT_AUDIT
  if (auto* a = sched_.auditor()) {
    a->on_dctcp_window(ack.flow, flow->cc.cwnd(), flow->cc.alpha(), flow->cc.cap());
  }
#endif
  if (flow->acked == flow->total_pkts) {
    flow->rto_timer.cancel();
    snd_.erase(ack.flow);
    return;
  }
  pump(*flow);
}

void DctcpEndpoint::send_ack(const Packet& data) {
  Packet ack;
  ack.flow = data.flow;
  ack.seq = data.seq;
  ack.type = PacketType::kGrant;
  ack.wire_bytes = net::kCtrlBytes;
  ack.src = host_.id();
  ack.dst = data.src;
  ack.marked_grant = data.ce;  // ECN-Echo, per packet, reordering-safe
  ack.allowance = 0;           // an ACK is not a credit
  ack.created = sched_.now();
  send(std::move(ack));
}

void DctcpEndpoint::on_data(Packet&& pkt) {
  if (pkt.trimmed) return;  // no trimming queues in DCTCP fabrics; be safe
  if (finished_rcv_.contains(pkt.flow)) {
    // The flow completed but the sender is still retransmitting: its final
    // ACKs were lost. Re-ACK so it can tear down.
    send_ack(pkt);
    return;
  }
  auto [flow, inserted] = rcv_.try_emplace(pkt.flow);
  if (inserted) {
    flow->id = pkt.flow;
    flow->bytes = pkt.flow_bytes;
    flow->total_pkts = flow_pkts(pkt.flow_bytes);
    flow->got.assign(flow->total_pkts, 0);
  }
  const bool fresh = pkt.seq < flow->total_pkts && flow->got[pkt.seq] == 0;
  if (fresh) {
    flow->got[pkt.seq] = 1;
    ++flow->received;
    if (observer_ != nullptr && pkt.payload_bytes > 0) {
      observer_->on_flow_progress(pkt.flow, pkt.payload_bytes, sched_.now());
    }
  }
  send_ack(pkt);
  if (fresh && flow->received == flow->total_pkts) {
#ifdef AMRT_AUDIT
    if (auto* a = sched_.auditor()) {
      std::uint32_t got_count = 0;
      for (const std::uint8_t g : flow->got) got_count += g;
      a->on_flow_finished(flow->id, flow->total_pkts, flow->received, got_count);
    }
#endif
    if (observer_ != nullptr) observer_->on_flow_completed(pkt.flow, sched_.now());
    finished_rcv_.insert(pkt.flow);
    rcv_.erase(pkt.flow);
  }
}

}  // namespace amrt::transport
