#include "transport/ndp.hpp"

#include <algorithm>

namespace amrt::transport {

using net::Packet;
using net::PacketType;

void NdpEndpoint::after_arrival(ReceiverFlow& flow, const Packet& pkt, bool fresh) {
  (void)fresh;
  if (pkt.type == PacketType::kRts) {
    // With line-rate start the first window needs no pulls; without it
    // (responsiveness experiments) bootstrap the pull clock.
    if (flow.unscheduled_pkts == 0) enqueue_new_pull(flow);
    return;
  }
  if (pkt.trimmed) {
    // The header survived the trim: pull the payload again, ahead of new data.
    enqueue_rtx_pull(flow, pkt.seq);
    return;
  }
  enqueue_new_pull(flow);
}

void NdpEndpoint::enqueue_new_pull(ReceiverFlow& flow) {
  if (flow.remaining_ungranted() <= flow.pending_new_pulls) return;  // all remaining data covered
  ++flow.pending_new_pulls;
  pull_queue_.push_back(PullRequest{flow.id, -1});
  arm_pacer();
}

void NdpEndpoint::enqueue_rtx_pull(ReceiverFlow& flow, std::uint32_t seq) {
  // Retransmissions jump the queue: NDP prioritizes loss repair.
  pull_queue_.push_front(PullRequest{flow.id, static_cast<std::int64_t>(seq)});
  arm_pacer();
}

void NdpEndpoint::arm_pacer() {
  if (pacer_armed_ || pull_queue_.empty()) return;
  pacer_armed_ = true;
  const auto earliest = last_pull_ + pull_spacing_;
  const auto delay = earliest > sched_.now() ? earliest - sched_.now() : sim::Duration::zero();
  sched_.after(delay, [this] { pacer_fire(); });
}

void NdpEndpoint::pacer_fire() {
  pacer_armed_ = false;
  while (!pull_queue_.empty()) {
    const PullRequest req = pull_queue_.pop_front();
    ReceiverFlow* open = rcv_.find(req.flow);
    if (open == nullptr) {
      // Flow completed while the pull waited; drop the stale request (its
      // pending count died with the flow record).
      continue;
    }
    ReceiverFlow& flow = *open;
    Packet pull = make_grant(flow);
    if (req.rtx_seq >= 0) {
#ifdef AMRT_AUDIT
      if (auto* a = sched_.auditor()) {
        a->on_repair_grant(flow.id, static_cast<std::uint32_t>(req.rtx_seq), flow.total_pkts);
      }
#endif
      pull.request_seq = req.rtx_seq;
      pull.allowance = 0;
    } else {
      if (flow.pending_new_pulls > 0) --flow.pending_new_pulls;
      const std::uint64_t remaining = flow.remaining_ungranted();
      if (remaining == 0) continue;  // raced with recovery grants
      ++flow.granted_new;
      pull.allowance = 1;
#ifdef AMRT_AUDIT
      if (auto* a = sched_.auditor()) {
        // Pull pacing bypasses grant_new, so this leg reports separately.
        a->on_grant_sent(flow.id, /*marked=*/false, 1,
                         static_cast<std::uint64_t>(flow.unscheduled_pkts) + flow.granted_new,
                         flow.total_pkts, remaining, /*marked_expected=*/0);
      }
#endif
    }
    last_pull_ = sched_.now();
    send(std::move(pull));
    break;
  }
  arm_pacer();
}

}  // namespace amrt::transport
