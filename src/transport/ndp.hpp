// NDP (Handley et al., SIGCOMM'17) as the AMRT paper evaluates it:
// senders start at line rate; overloaded switch queues trim payloads to
// headers (TrimmingQueue) which reach the receiver in the control band; the
// receiver paces one pull per MTU-time from a shared pull queue, pulling
// retransmissions of trimmed packets before new data.
#pragma once

#include "net/ring_deque.hpp"
#include "transport/receiver_driven.hpp"

namespace amrt::transport {

class NdpEndpoint final : public ReceiverDrivenEndpoint {
 public:
  NdpEndpoint(sim::Simulation& sim, net::Host& host, TransportConfig cfg,
              stats::FlowObserver* observer)
      : ReceiverDrivenEndpoint{sim, host, cfg, observer, Protocol::kNdp},
        pull_spacing_{cfg.host_rate.tx_time(net::kMtuBytes)} {}

  [[nodiscard]] std::size_t pull_queue_depth() const { return pull_queue_.size(); }

 protected:
  void after_arrival(ReceiverFlow& flow, const net::Packet& pkt, bool fresh) override;
  bool detect_holes() const override { return false; }  // trimming names losses

 private:
  struct PullRequest {
    net::FlowId flow = 0;
    std::int64_t rtx_seq = -1;  // >=0: pull a retransmission of this seq
  };

  void enqueue_new_pull(ReceiverFlow& flow);
  void enqueue_rtx_pull(ReceiverFlow& flow, std::uint32_t seq);
  void arm_pacer();
  void pacer_fire();

  // Per-flow "queued but unsent" pull counts live in ReceiverFlow
  // (`pending_new_pulls`), so an arrival touches no side table.
  net::RingDeque<PullRequest> pull_queue_;
  sim::Duration pull_spacing_;
  sim::TimePoint last_pull_ = sim::TimePoint::zero();
  bool pacer_armed_ = false;
};

}  // namespace amrt::transport
