#include "transport/homa.hpp"

#include <algorithm>
#include <vector>

namespace amrt::transport {

using net::Packet;

void HomaEndpoint::after_arrival(ReceiverFlow& flow, const Packet& pkt, bool fresh) {
  (void)pkt;
  (void)fresh;
  // One credit per arrival: repair a presumed loss of this message if one is
  // due, otherwise top up the overcommitted grant windows.
  issue_credits(flow, 1, /*marked=*/false);
}

std::uint32_t HomaEndpoint::grant_new_credits(ReceiverFlow& flow, std::uint32_t count, bool marked) {
  (void)flow;
  (void)count;
  (void)marked;
  // Homa's credits are byte offsets, not packet counts; re-evaluate the
  // SRPT top-K instead of issuing allowance grants.
  pump_grants();
  return 0;
}

void HomaEndpoint::pump_grants() {
  // SRPT order over incomplete messages.
  std::vector<ReceiverFlow*> order;
  order.reserve(rcv_.size());
  for (auto& [id, flow] : rcv_) {
    if (!flow.complete()) order.push_back(&flow);
  }
  std::sort(order.begin(), order.end(), [](const ReceiverFlow* a, const ReceiverFlow* b) {
    if (a->remaining_bytes() != b->remaining_bytes()) return a->remaining_bytes() < b->remaining_bytes();
    return a->id < b->id;  // deterministic tie-break
  });

  const auto k = static_cast<std::size_t>(std::max(1, cfg_.homa_overcommit));
  const std::uint64_t bdp = cfg_.bdp_payload_bytes();
  for (std::size_t rank = 0; rank < order.size() && rank < k; ++rank) {
    ReceiverFlow& flow = *order[rank];
    // Scheduled priorities start below the unscheduled band (priority 0).
    const auto prio = static_cast<std::uint8_t>(
        std::min<std::size_t>(rank + 1, cfg_.homa_priority_levels - 1));
    const std::uint64_t target = std::min(flow.bytes, flow.received_bytes + bdp);
    if (flow.granted_bytes < target) {
      flow.granted_bytes = target;
      send_offset_grant(flow, target, prio);
    }
  }
}

void HomaEndpoint::send_offset_grant(ReceiverFlow& flow, std::uint64_t offset, std::uint8_t priority) {
#ifdef AMRT_AUDIT
  if (auto* a = sched_.auditor()) a->on_offset_grant(flow.id, offset, flow.bytes);
#endif
  Packet grant = make_grant(flow);
  grant.grant_offset = offset;
  grant.priority = priority;
  grant.allowance = 0;  // byte-offset semantics, not packet-count semantics
  send(std::move(grant));
}

void HomaEndpoint::decorate_data(Packet& pkt, const SenderFlow& flow) {
  const std::uint32_t unscheduled =
      cfg_.unscheduled_start ? std::min<std::uint32_t>(cfg_.bdp_packets(), flow.total_pkts) : 0;
  pkt.priority = pkt.seq < unscheduled ? 0 : flow.sched_priority;
}

void HomaEndpoint::handle_grant_packet(SenderFlow& flow, const Packet& grant) {
  if (grant.request_seq >= 0) {
    ReceiverDrivenEndpoint::handle_grant_packet(flow, grant);
    return;
  }
  const std::uint64_t offset = std::min(grant.grant_offset, flow.spec.bytes);
  const auto target_pkts = net::packets_for_bytes(offset);
  while (flow.next_new_seq < target_pkts) {
    send_data_seq(flow, flow.next_new_seq);
    ++flow.next_new_seq;
  }
}

std::uint32_t HomaEndpoint::expected_sent_pkts(const ReceiverFlow& flow) const {
  const auto pkts = net::packets_for_bytes(std::min(flow.granted_bytes, flow.bytes));
  return std::max(pkts, std::min(flow.unscheduled_pkts, flow.total_pkts));
}

void HomaEndpoint::recovery_nudge(ReceiverFlow& flow) {
  // Re-advertise the current target — but only for messages inside the
  // overcommitment set. Homa has no mechanism to service a message beyond
  // its K granted slots; a stalled (e.g. unresponsive-sender) message that
  // holds a slot simply keeps blocking it (the Fig. 14 pathology).
  const auto k = static_cast<std::size_t>(std::max(1, cfg_.homa_overcommit));
  std::size_t rank = 0;
  for (const auto& [id, other] : rcv_) {
    if (other.complete() || id == flow.id) continue;
    if (other.remaining_bytes() < flow.remaining_bytes() ||
        (other.remaining_bytes() == flow.remaining_bytes() && id < flow.id)) {
      ++rank;
    }
  }
  if (rank >= k) return;
  const std::uint64_t target = std::min(flow.bytes, flow.received_bytes + cfg_.bdp_payload_bytes());
  flow.granted_bytes = std::max(flow.granted_bytes, target);
  send_offset_grant(flow, flow.granted_bytes, 1);
}

}  // namespace amrt::transport
