#include "transport/phost.hpp"

#include <algorithm>
#include <cmath>

namespace amrt::transport {

std::uint64_t PhostEndpoint::token_window() const {
  const double w = static_cast<double>(cfg_.bdp_packets()) * cfg_.phost_token_window_bdp;
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::llround(w)));
}

std::uint64_t PhostEndpoint::outstanding(const ReceiverFlow& flow) const {
  // Presumed-lost packets are no longer in flight; without this adjustment
  // an early loss burst would pin the flow above its token window forever.
  const std::uint64_t triggered = expected_sent_pkts(flow);
  const std::uint64_t in_flight_upper =
      triggered > flow.received_pkts ? triggered - flow.received_pkts : 0;
  const std::uint64_t lost = presumed_lost(flow);
  return in_flight_upper > lost ? in_flight_upper - lost : 0;
}

void PhostEndpoint::after_arrival(ReceiverFlow& flow, const net::Packet& pkt, bool fresh) {
  (void)flow;
  (void)fresh;
  if (pkt.type == net::PacketType::kRts && cfg_.unscheduled_start) {
    // The unscheduled burst is already in flight; the token clock starts
    // with the first data arrival.
    return;
  }
  assign_token();
}

void PhostEndpoint::assign_token() {
  ReceiverFlow* best = nullptr;
  const std::uint64_t window = token_window();
  for (auto& [id, flow] : rcv_) {
    if (!wants_credit(flow)) continue;
    // Window-full flows are skipped: this is pHost's downgrade of
    // unresponsive senders, expressed as a credit window.
    if (outstanding(flow) >= window) continue;
    // Tie-break on flow id so the pick is independent of table iteration
    // order (the flat map's slot order is deterministic but layout-defined).
    if (best == nullptr || flow.remaining_bytes() < best->remaining_bytes() ||
        (flow.remaining_bytes() == best->remaining_bytes() && flow.id < best->id)) {
      best = &flow;
    }
  }
  if (best != nullptr) issue_credits(*best, 1, /*marked=*/false);
}

}  // namespace amrt::transport
