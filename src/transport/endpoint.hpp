// Base transport endpoint: one per host, handles packet dispatch and owns
// the config plumbing. Concrete behaviour lives in ReceiverDrivenEndpoint
// and the per-protocol subclasses.
#pragma once

#include "net/network.hpp"  // Host's inline send/nic need the complete Network
#include "sim/simulation.hpp"
#include "stats/fct.hpp"
#include "transport/config.hpp"
#include "transport/flow.hpp"

namespace amrt::transport {

class TransportEndpoint : public net::PacketSink {
 public:
  TransportEndpoint(sim::Simulation& sim, net::Host& host, TransportConfig cfg,
                    stats::FlowObserver* observer);

  // Begins transmitting `spec` from this (sending) endpoint.
  virtual void start_flow(const FlowSpec& spec) = 0;

  void deliver(net::Packet&& pkt) final;

  [[nodiscard]] const TransportConfig& config() const { return cfg_; }
  [[nodiscard]] net::Host& host() { return host_; }

 protected:
  virtual void on_data(net::Packet&& pkt) = 0;
  virtual void on_rts(net::Packet&& pkt) = 0;
  virtual void on_grant(net::Packet&& pkt) = 0;
  virtual void on_done(net::Packet&& pkt) = 0;

  void send(net::Packet&& pkt) { host_.send(std::move(pkt)); }

  sim::Simulation& sim_;
  sim::Scheduler& sched_;  // == sim_.scheduler(), cached for the hot path
  net::Host& host_;
  TransportConfig cfg_;
  stats::FlowObserver* observer_;  // may be null
};

}  // namespace amrt::transport
