// Homa (Montazeri et al., SIGCOMM'18) as the AMRT paper evaluates it:
// SRPT-ordered byte-offset grants with a configurable degree of
// overcommitment K — the receiver keeps its K shortest incomplete messages
// granted one BDP ahead of what it has received (Fig. 14 sweeps K).
// Scheduled data carries a priority equal to the message's SRPT rank;
// unscheduled data rides the highest priority, matching Homa's use of
// in-network priority queues.
#pragma once

#include "transport/receiver_driven.hpp"

namespace amrt::transport {

class HomaEndpoint final : public ReceiverDrivenEndpoint {
 public:
  HomaEndpoint(sim::Simulation& sim, net::Host& host, TransportConfig cfg,
               stats::FlowObserver* observer)
      : ReceiverDrivenEndpoint{sim, host, cfg, observer, Protocol::kHoma} {}

 protected:
  void after_arrival(ReceiverFlow& flow, const net::Packet& pkt, bool fresh) override;
  std::uint32_t grant_new_credits(ReceiverFlow& flow, std::uint32_t count, bool marked) override;
  void decorate_data(net::Packet& pkt, const SenderFlow& flow) override;
  void handle_grant_packet(SenderFlow& flow, const net::Packet& grant) override;
  [[nodiscard]] std::uint32_t expected_sent_pkts(const ReceiverFlow& flow) const override;
  void recovery_nudge(ReceiverFlow& flow) override;

 private:
  // Re-evaluates the SRPT order and tops up the grant window of the top-K
  // messages (the overcommitment mechanism).
  void pump_grants();
  void send_offset_grant(ReceiverFlow& flow, std::uint64_t offset, std::uint8_t priority);
};

}  // namespace amrt::transport
