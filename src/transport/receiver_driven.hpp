// Shared machinery of receiver-driven transports (Sections 3-4 of the paper
// describe this skeleton; pHost/Homa/NDP/AMRT differ only in their granting
// policies, which subclasses supply through the hooks below).
//
// Sender side: a flow starts with an RTS announcement and (if enabled) an
// unscheduled burst of one BDP at line rate; afterwards data moves only when
// the receiver grants it. Receiver side: arrivals are tracked per flow, each
// arrival is handed to the protocol's `after_arrival` hook (the grant clock),
// and a per-flow timeout re-requests specific lost sequence numbers.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/ring_deque.hpp"
#include "transport/endpoint.hpp"
#include "util/flat_map.hpp"
#include "util/seq_bitmap.hpp"

namespace amrt::transport {

class ReceiverDrivenEndpoint : public TransportEndpoint {
 public:
  ReceiverDrivenEndpoint(sim::Simulation& sim, net::Host& host, TransportConfig cfg,
                         stats::FlowObserver* observer, Protocol proto);

  void start_flow(const FlowSpec& spec) override;

  // --- introspection (tests/monitors) ---
  [[nodiscard]] std::size_t open_sender_flows() const { return snd_.size(); }
  [[nodiscard]] std::size_t open_receiver_flows() const { return rcv_.size(); }
  [[nodiscard]] Protocol protocol() const { return proto_; }

 protected:
  struct SenderFlow {
    FlowSpec spec;
    std::uint32_t total_pkts = 0;
    std::uint32_t next_new_seq = 0;   // next never-sent sequence number
    std::uint8_t sched_priority = 0;  // Homa: priority carried by granted data
    std::uint64_t packets_sent = 0;   // includes retransmissions
    // Control-plane backstops (DESIGN.md §11). `heard` flips on the first
    // grant/Done from the receiver and silences the RTS retry; `last_heard`
    // feeds the linger teardown that reclaims the flow when the control
    // plane goes permanently silent (e.g. a lost Done).
    bool heard = false;
    std::uint32_t rts_tries = 0;
    sim::TimePoint last_heard{};
    sim::Scheduler::Handle rts_timer{};
    sim::Scheduler::Handle linger_timer{};
  };

  // A sequence number presumed lost: requested again when `eligible_at`
  // passes (so a retransmission gets a full timeout before the next try).
  struct RepairEntry {
    std::uint32_t seq = 0;
    sim::TimePoint eligible_at{};
  };

  struct ReceiverFlow {
    net::FlowId id = 0;
    net::NodeId src{};
    std::uint64_t bytes = 0;
    std::uint32_t total_pkts = 0;
    std::uint32_t unscheduled_pkts = 0;  // what the sender was allowed to blast
    // Received + repair-pending bits, word-packed two bits per sequence so
    // loss bookkeeping shares cache lines with the arrival bookkeeping.
    util::SeqBitmap seqs;
    std::uint32_t received_pkts = 0;
    std::uint64_t received_bytes = 0;
    std::uint64_t granted_new = 0;    // new-packet credits issued beyond unscheduled
    std::uint64_t granted_bytes = 0;  // Homa's byte-offset bookkeeping
    sim::TimePoint first_seen{};
    sim::TimePoint last_arrival{};
    sim::Scheduler::Handle recovery_timer{};
    std::uint32_t scan_cursor = 0;    // lowest possibly-missing seq (stall-scan state)
    std::uint32_t stall_backoff = 1;  // doubles per silent stall tick (bounds incast storms)
    std::uint32_t max_seen = 0;       // highest data seq observed
    std::uint32_t detect_cursor = 0;  // seqs below this are received or repair-pending
    // NDP only: new-data pulls queued but not yet sent for this flow. Lives
    // here (not in a side map) so an arrival touches one flow record, period.
    std::uint32_t pending_new_pulls = 0;
    net::RingDeque<RepairEntry> repair_q;
    // Timeout-scan suspects: granted-but-silent seqs with no arrival-side
    // evidence of loss (often just queued, not lost — the AMRT timeout is a
    // single base RTT). Only the recovery backstop drains this queue, at
    // most a batch per fire; the in-band credit path must not amplify them
    // into duplicate retransmissions.
    net::RingDeque<RepairEntry> suspect_q;

    [[nodiscard]] std::uint64_t remaining_ungranted() const {
      const std::uint64_t base = static_cast<std::uint64_t>(unscheduled_pkts) + granted_new;
      return base >= total_pkts ? 0 : total_pkts - base;
    }
    [[nodiscard]] std::uint64_t remaining_bytes() const { return bytes - received_bytes; }
    [[nodiscard]] bool complete() const { return received_pkts == total_pkts; }
  };

  // --- protocol hooks -----------------------------------------------------
  // The grant clock: called on every arrival at the receiver. `fresh` is
  // true when the packet delivered new payload (false for duplicates, RTS
  // announcements and trimmed headers).
  virtual void after_arrival(ReceiverFlow& flow, const net::Packet& pkt, bool fresh) = 0;
  // Stamp protocol-specific header bits onto outgoing data.
  virtual void decorate_data(net::Packet& pkt, const SenderFlow& flow) { (void)pkt; (void)flow; }
  // Sender's reaction to a grant. Default: retransmit `request_seq` if set,
  // else send `allowance` new packets.
  virtual void handle_grant_packet(SenderFlow& flow, const net::Packet& grant);
  // Highest sequence number (exclusive) the receiver may assume was sent.
  [[nodiscard]] virtual std::uint32_t expected_sent_pkts(const ReceiverFlow& flow) const;
  // Timeout found the flow stalled with nothing missing below the expected
  // horizon: push the grant clock forward. Default issues a small batch of
  // allowance-1 grants.
  virtual void recovery_nudge(ReceiverFlow& flow);
  // Whether sequence holes imply drops. NDP turns this off: its trimmed
  // headers name lost packets explicitly, so hole-based repair would only
  // duplicate the rtx pulls.
  [[nodiscard]] virtual bool detect_holes() const { return true; }

  // --- sender-side helpers ------------------------------------------------
  void send_new_packets(SenderFlow& flow, std::uint32_t count);
  void send_data_seq(SenderFlow& flow, std::uint32_t seq);

  // --- receiver-side helpers ----------------------------------------------
  // A grant template addressed to the flow's sender (64B control packet).
  [[nodiscard]] net::Packet make_grant(const ReceiverFlow& flow) const;
  // Issues `count` allowance credits (clamped to remaining_ungranted) as one
  // grant packet; returns the credits actually granted.
  std::uint32_t grant_new(ReceiverFlow& flow, std::uint32_t count, bool marked);

  // The unified credit path protocols should use: each credit repairs a
  // presumed-lost packet if one is due, and only otherwise triggers new
  // data. This keeps the number of packets in circulation conserved — the
  // defining property of receiver-driven transports — even across losses.
  std::uint32_t issue_credits(ReceiverFlow& flow, std::uint32_t count, bool marked);
  // New-packet leg of issue_credits; Homa overrides it with offset grants.
  virtual std::uint32_t grant_new_credits(ReceiverFlow& flow, std::uint32_t count, bool marked);
  // True if the flow has work for another credit (repairs or ungranted data).
  [[nodiscard]] bool wants_credit(ReceiverFlow& flow);
  // Packets currently presumed lost (repair entries not yet satisfied).
  [[nodiscard]] std::size_t presumed_lost(const ReceiverFlow& flow) const {
    return flow.seqs.pending_repairs();
  }

  // Flow tables are open-addressing flat maps: one probe per arrival, no
  // node allocations. References into them are invalidated by insert/erase
  // (see flat_map.hpp); each packet event takes one handle up front and the
  // event-driven design guarantees no re-entrant mutation while it is held.
  util::FlatMap<net::FlowId, SenderFlow> snd_;
  util::FlatMap<net::FlowId, ReceiverFlow> rcv_;

  // Receiver flows seen to completion; stale retransmissions are ignored and
  // a stale RTS gets the Done resent (the original may have been lost). Two
  // generations, rotated lazily every finished_epoch_rtos x rto on the
  // insert path: lookups check both, inserts go to the current one, so an id
  // is remembered for at least one full epoch and at most two — the set
  // cannot grow without bound across long runs.
  util::FlatSet<net::FlowId> finished_rcv_;
  util::FlatSet<net::FlowId> finished_prev_;
  sim::TimePoint finished_epoch_end_{};

  [[nodiscard]] bool is_finished(net::FlowId id) const {
    return finished_rcv_.contains(id) || finished_prev_.contains(id);
  }

 private:
  void on_data(net::Packet&& pkt) final;
  void on_rts(net::Packet&& pkt) final;
  void on_grant(net::Packet&& pkt) final;
  void on_done(net::Packet&& pkt) final;

  // --- sender control-plane backstops (DESIGN.md §11) ---------------------
  void send_rts(const SenderFlow& flow);
  [[nodiscard]] sim::Duration rts_retry_delay(const SenderFlow& flow) const;
  void arm_rts_retry(SenderFlow& flow);
  void rts_retry_fire(net::FlowId id);
  void arm_linger(SenderFlow& flow, sim::Duration delay);
  void linger_fire(net::FlowId id);

  ReceiverFlow* ensure_registered(const net::Packet& pkt);
  void finish_receive(ReceiverFlow& flow);
  void remember_finished(net::FlowId id);
  void arm_recovery(ReceiverFlow& flow, sim::Duration delay);
  void recovery_fire(net::FlowId id);
  void detect_losses(ReceiverFlow& flow);
  [[nodiscard]] std::optional<std::uint32_t> pop_due_repair(ReceiverFlow& flow);
  [[nodiscard]] std::optional<std::uint32_t> pop_due_suspect(ReceiverFlow& flow);

  Protocol proto_;
  sim::Duration rto_;
};

}  // namespace amrt::transport
