// DCTCP: the sender-driven congestion-control wing (DESIGN.md §13).
//
// Everything else in this repo is receiver-driven — the receiver paces data
// with explicit credits. DCTCP is the conventional counterpoint the paper's
// fabrics would actually share switches with: a windowed sender, per-packet
// ACKs, and the marked-fraction EWMA of Alizadeh et al. (SIGCOMM'10):
//
//   per window:  F = #marked ACKs / #ACKs,   alpha <- (1 - g) alpha + g F
//   on marks:    cwnd <- max(1, cwnd * (1 - alpha / 2))
//
// Switches mark departing data packets when the egress backlog is >= K
// (core/threshold_ecn.hpp); the receiver echoes each packet's CE bit in its
// ACK (ECN-Echo). Growth is TCP-shaped: slow start (+1 per ACK) below
// ssthresh, congestion avoidance (+1/cwnd per ACK) above, and an RTO
// collapses the window to 1.
//
// PIAS (Bai et al., NSDI'15) rides along as the priority policy: data starts
// in the highest strict-priority band and is demoted as the flow's
// cumulative bytes sent cross geometric thresholds, approximating SJF
// without knowing flow sizes. The demotion function is pure
// (pias_priority()) so tests can pin the threshold crossings exactly.
//
// Wire mapping: data uses PacketType::kData; ACKs reuse PacketType::kGrant
// (seq = ACKed sequence, marked_grant = ECN-Echo, allowance = 0). Grants are
// control packets, so ACKs ride the lossless strict-priority control band —
// the standard "ACKs are never ECN-marked or dropped by DCTCP" assumption —
// and only injected faults can lose them, which the RTO path covers.
#pragma once

#include <cstdint>
#include <vector>

#include "net/ring_deque.hpp"
#include "transport/endpoint.hpp"
#include "util/flat_map.hpp"

namespace amrt::transport {

// The window state machine, separated from the endpoint so unit tests can
// drive it ACK by ACK against hand-computed sequences.
class DctcpCc {
 public:
  DctcpCc() = default;
  DctcpCc(double g, std::uint32_t init_cwnd_pkts, std::uint32_t cap_pkts)
      : g_{g}, cwnd_{static_cast<double>(init_cwnd_pkts < 1 ? 1 : init_cwnd_pkts)},
        cap_{static_cast<double>(cap_pkts < 1 ? 1 : cap_pkts)} {
    if (cwnd_ > cap_) cwnd_ = cap_;
  }

  // Feed one *fresh* ACK (duplicates must not clock the window). `marked` is
  // the ACK's ECN-Echo. Returns true when this ACK closed an observation
  // window (alpha was updated, and the window cut applied if marks arrived).
  bool on_ack(bool marked) {
    if (window_len_ == 0) open_window();
    // Growth first, cut at the window edge: one cut per window, as specified.
    if (cwnd_ < ssthresh_) {
      cwnd_ += 1.0;  // slow start
    } else {
      cwnd_ += 1.0 / cwnd_;  // congestion avoidance
    }
    if (cwnd_ > cap_) cwnd_ = cap_;
    ++acks_;
    if (marked) ++marks_;
    if (acks_ < window_len_) return false;

    const double f = static_cast<double>(marks_) / static_cast<double>(acks_);
    alpha_ = (1.0 - g_) * alpha_ + g_ * f;
    if (marks_ > 0) {
      cwnd_ *= 1.0 - alpha_ / 2.0;
      if (cwnd_ < 1.0) cwnd_ = 1.0;
      ssthresh_ = cwnd_;  // marks end slow start
      ++cuts_;
    }
    ++windows_;
    open_window();
    return true;
  }

  // Retransmission timeout: collapse to one packet, remember half the window
  // as the slow-start exit, and restart the observation window.
  void on_timeout() {
    ssthresh_ = cwnd_ / 2.0;
    if (ssthresh_ < 2.0) ssthresh_ = 2.0;
    cwnd_ = 1.0;
    window_len_ = acks_ = marks_ = 0;
    ++timeouts_;
  }

  [[nodiscard]] std::uint32_t cwnd_pkts() const {
    return cwnd_ < 1.0 ? 1u : static_cast<std::uint32_t>(cwnd_);
  }
  [[nodiscard]] double cwnd() const { return cwnd_; }
  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] double cap() const { return cap_; }
  [[nodiscard]] bool in_slow_start() const { return cwnd_ < ssthresh_; }
  [[nodiscard]] std::uint64_t windows_closed() const { return windows_; }
  [[nodiscard]] std::uint64_t cuts() const { return cuts_; }
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }

 private:
  void open_window() {
    window_len_ = cwnd_pkts();
    acks_ = marks_ = 0;
  }

  double g_ = 1.0 / 16.0;
  double alpha_ = 1.0;  // conservative start, per the DCTCP paper
  double cwnd_ = 10.0;
  double ssthresh_ = 1e18;  // slow start until the first cut or timeout
  double cap_ = 1e9;
  std::uint32_t window_len_ = 0;  // snapshot of cwnd when the window opened
  std::uint32_t acks_ = 0;
  std::uint32_t marks_ = 0;
  std::uint64_t windows_ = 0;
  std::uint64_t cuts_ = 0;
  std::uint64_t timeouts_ = 0;
};

// PIAS demotion: the priority band for a packet sent after `bytes_sent`
// cumulative payload bytes, with thresholds T_l = base << l. Returns values
// in [0, levels); 0 is the highest band.
[[nodiscard]] std::uint8_t pias_priority(std::uint64_t bytes_sent, std::uint64_t base_threshold,
                                         std::uint8_t levels);

class DctcpEndpoint final : public TransportEndpoint {
 public:
  DctcpEndpoint(sim::Simulation& sim, net::Host& host, TransportConfig cfg,
                stats::FlowObserver* observer);

  void start_flow(const FlowSpec& spec) override;

  // --- introspection (tests/monitors) ---
  [[nodiscard]] std::size_t open_sender_flows() const { return snd_.size(); }
  [[nodiscard]] std::size_t open_receiver_flows() const { return rcv_.size(); }
  [[nodiscard]] const DctcpCc* sender_cc(net::FlowId id) const;
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }

 protected:
  void on_data(net::Packet&& pkt) override;
  void on_grant(net::Packet&& pkt) override;  // ACKs ride the kGrant type
  // DCTCP has no RTS/Done control plane; stray packets are ignored.
  void on_rts(net::Packet&& pkt) override { (void)pkt; }
  void on_done(net::Packet&& pkt) override { (void)pkt; }

 private:
  enum SeqState : std::uint8_t { kUnsent = 0, kInflight = 1, kLost = 2, kAcked = 3 };

  struct SenderFlow {
    FlowSpec spec;
    std::uint32_t total_pkts = 0;
    std::uint32_t next_new = 0;  // next never-sent sequence number
    std::uint32_t inflight = 0;
    std::uint32_t acked = 0;
    std::uint64_t bytes_sent = 0;  // cumulative payload, drives PIAS demotion
    std::vector<std::uint8_t> state;  // SeqState per sequence number
    net::RingDeque<std::uint32_t> lost_q;
    DctcpCc cc;
    sim::Scheduler::Handle rto_timer{};
  };

  struct ReceiverFlow {
    net::FlowId id = 0;
    std::uint64_t bytes = 0;
    std::uint32_t total_pkts = 0;
    std::uint32_t received = 0;
    std::vector<std::uint8_t> got;
  };

  // Fills the window: retransmissions first, then new data, never exceeding
  // floor(cwnd) packets in flight.
  void pump(SenderFlow& flow);
  void send_seq(SenderFlow& flow, std::uint32_t seq);
  void send_ack(const net::Packet& data);
  void arm_rto(SenderFlow& flow);
  void rto_fire(net::FlowId id);
  [[nodiscard]] static std::uint32_t flow_pkts(std::uint64_t bytes) {
    // A zero-byte flow still sends one (empty) packet so completion is
    // always signalled by the receiver.
    const std::uint32_t n = net::packets_for_bytes(bytes);
    return n == 0 ? 1 : n;
  }

  util::FlatMap<net::FlowId, SenderFlow> snd_;
  util::FlatMap<net::FlowId, ReceiverFlow> rcv_;
  // Completed receiver flows: stale retransmissions (the Done-equivalent ACK
  // was lost) are re-ACKed from here so the sender can finish. Small ids
  // accumulate for the run's lifetime — bounded by the flow count, same as
  // the FCT recorder.
  util::FlatSet<net::FlowId> finished_rcv_;
  sim::Duration rto_;
  std::uint64_t timeouts_ = 0;
};

}  // namespace amrt::transport
