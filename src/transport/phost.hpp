// pHost (Gao et al., CoNEXT'15) as modelled by the AMRT paper:
// per-packet tokens issued by the receiver, one per arriving data packet
// (the conservative arrival clock of Section 1), assigned to the incoming
// flow with the shortest remaining processing time. A sender that leaves a
// full token window unanswered is implicitly downgraded — it is skipped by
// the SRPT pick until recovery refills its window — mirroring pHost's
// 3xRTT unresponsive-sender timeout (Section 6).
#pragma once

#include "transport/receiver_driven.hpp"

namespace amrt::transport {

class PhostEndpoint final : public ReceiverDrivenEndpoint {
 public:
  PhostEndpoint(sim::Simulation& sim, net::Host& host, TransportConfig cfg,
                stats::FlowObserver* observer)
      : ReceiverDrivenEndpoint{sim, host, cfg, observer, Protocol::kPhost} {}

 protected:
  void after_arrival(ReceiverFlow& flow, const net::Packet& pkt, bool fresh) override;

 private:
  // One token of downlink capacity became available: hand it to the
  // SRPT-best eligible flow (possibly a different one than `just_arrived`).
  void assign_token();

  [[nodiscard]] std::uint64_t token_window() const;
  [[nodiscard]] std::uint64_t outstanding(const ReceiverFlow& flow) const;
};

}  // namespace amrt::transport
