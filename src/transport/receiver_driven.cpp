#include "transport/receiver_driven.hpp"

#include <algorithm>
#include <utility>

#include "sim/trace.hpp"

namespace amrt::transport {

using net::Packet;
using net::PacketType;

ReceiverDrivenEndpoint::ReceiverDrivenEndpoint(sim::Simulation& sim, net::Host& host,
                                               TransportConfig cfg, stats::FlowObserver* observer,
                                               Protocol proto)
    : TransportEndpoint{sim, host, cfg, observer},
      proto_{proto},
      rto_{cfg.default_loss_timeout(proto)} {}

// ---------------------------------------------------------------------------
// Sender side
// ---------------------------------------------------------------------------

void ReceiverDrivenEndpoint::start_flow(const FlowSpec& spec) {
  const std::uint32_t total = net::packets_for_bytes(spec.bytes);
  if (total == 0) {
    AMRT_WARN("start_flow: empty flow %llu ignored", static_cast<unsigned long long>(spec.id));
    return;
  }
  auto [slot, inserted] = snd_.try_emplace(spec.id);
  if (!inserted) {
    AMRT_WARN("start_flow: duplicate flow id %llu", static_cast<unsigned long long>(spec.id));
    return;
  }
  SenderFlow& flow = *slot;
  flow.spec = spec;
  flow.total_pkts = total;

  if (observer_ != nullptr) observer_->on_flow_started(spec.id, spec.bytes, sched_.now());

  // Announce the flow so the receiver can schedule it (pHost RTS, Homa's
  // message header, NDP's first-window header all play this role). The RTS
  // can be lost, so until the receiver is heard from it is re-announced on a
  // backstop timer, and the whole flow record is reclaimed by the linger
  // timer if the control plane stays silent (DESIGN.md §11).
  send_rts(flow);
  flow.last_heard = sched_.now();
  if (cfg_.rts_retry_limit > 0) arm_rts_retry(flow);
  if (cfg_.sender_linger_rtos > 0) arm_linger(flow, rto_ * cfg_.sender_linger_rtos);

  if (cfg_.responsive && cfg_.unscheduled_start) {
    const auto window = std::min<std::uint32_t>(cfg_.bdp_packets(), total);
    send_new_packets(flow, window);
  }
}

void ReceiverDrivenEndpoint::send_rts(const SenderFlow& flow) {
  Packet rts;
  rts.flow = flow.spec.id;
  rts.type = PacketType::kRts;
  rts.wire_bytes = net::kCtrlBytes;
  rts.src = host_.id();
  rts.dst = flow.spec.dst;
  rts.flow_bytes = flow.spec.bytes;
  rts.created = sched_.now();
  send(std::move(rts));
}

sim::Duration ReceiverDrivenEndpoint::rts_retry_delay(const SenderFlow& flow) const {
  // Flows whose unscheduled burst also announces them only need the RTS if
  // *everything* was lost, so they retry lazily — late enough that a healthy
  // congested run never fires one. Pure-RTS flows (unresponsive senders,
  // unscheduled_start off) retry with exponential backoff: until the RTS
  // lands the receiver does not know the flow exists at all.
  const bool announced_by_data = cfg_.responsive && cfg_.unscheduled_start;
  const std::uint32_t first = announced_by_data ? 16 : 2;
  const std::uint32_t cap = announced_by_data ? 16 : 8;
  const std::uint32_t shift = std::min<std::uint32_t>(flow.rts_tries, 8);
  return rto_ * std::min<std::uint32_t>(cap, first << shift);
}

void ReceiverDrivenEndpoint::arm_rts_retry(SenderFlow& flow) {
  flow.rts_timer =
      sched_.after(rts_retry_delay(flow), [this, id = flow.spec.id] { rts_retry_fire(id); });
}

void ReceiverDrivenEndpoint::rts_retry_fire(net::FlowId id) {
  SenderFlow* flow = snd_.find(id);
  if (flow == nullptr || flow->heard) return;
  if (flow->rts_tries >= cfg_.rts_retry_limit) return;  // budget spent; linger reclaims
  ++flow->rts_tries;
  send_rts(*flow);
  arm_rts_retry(*flow);
}

void ReceiverDrivenEndpoint::arm_linger(SenderFlow& flow, sim::Duration delay) {
  flow.linger_timer =
      sched_.after(delay, [this, id = flow.spec.id] { linger_fire(id); });
}

void ReceiverDrivenEndpoint::linger_fire(net::FlowId id) {
  SenderFlow* flow = snd_.find(id);
  if (flow == nullptr) return;
  const sim::Duration window = rto_ * cfg_.sender_linger_rtos;
  // A responsive sender still holding unsent bytes is waiting on the
  // receiver's scheduler, not on a lost control packet: Homa parks
  // beyond-overcommitment messages in exactly this state for arbitrarily
  // long (SRPT starvation), so silence alone must not tear the flow down.
  // The countdown applies once every byte has been sent at least once;
  // unresponsive senders ignore credit and so are always eligible.
  if (cfg_.responsive && flow->next_new_seq < flow->total_pkts) {
    arm_linger(*flow, window);
    return;
  }
  const auto idle = sched_.now() - flow->last_heard;
  if (idle < window) {
    arm_linger(*flow, window - idle);
    return;
  }
  // The control plane has been silent for the whole linger window: the Done
  // was lost, the receiver abandoned the flow, or the fabric ate every
  // grant. The receiver's own backstops re-pull anything it still wants;
  // holding the sender record forever is a leak, so forget it.
  flow->rts_timer.cancel();
  snd_.erase(id);
}

void ReceiverDrivenEndpoint::send_new_packets(SenderFlow& flow, std::uint32_t count) {
  while (count > 0 && flow.next_new_seq < flow.total_pkts) {
    send_data_seq(flow, flow.next_new_seq);
    ++flow.next_new_seq;
    --count;
  }
}

void ReceiverDrivenEndpoint::send_data_seq(SenderFlow& flow, std::uint32_t seq) {
  Packet pkt;
  pkt.flow = flow.spec.id;
  pkt.seq = seq;
  // Blind first-window packets are tagged so Aeolus-style queues can prefer
  // dropping them over scheduled (granted) traffic.
  pkt.unscheduled =
      cfg_.unscheduled_start && seq < std::min<std::uint32_t>(cfg_.bdp_packets(), flow.total_pkts);
  pkt.type = PacketType::kData;
  pkt.payload_bytes = net::payload_of_seq(flow.spec.bytes, seq);
  pkt.wire_bytes = pkt.payload_bytes + net::kHeaderBytes;
  pkt.src = host_.id();
  pkt.dst = flow.spec.dst;
  pkt.flow_bytes = flow.spec.bytes;
  pkt.created = sched_.now();
  decorate_data(pkt, flow);
  ++flow.packets_sent;
  send(std::move(pkt));
}

void ReceiverDrivenEndpoint::handle_grant_packet(SenderFlow& flow, const Packet& grant) {
  if (grant.request_seq >= 0) {
    if (grant.request_seq < flow.total_pkts) {
      send_data_seq(flow, static_cast<std::uint32_t>(grant.request_seq));
    }
    return;
  }
  send_new_packets(flow, grant.allowance);
}

void ReceiverDrivenEndpoint::on_grant(Packet&& pkt) {
  SenderFlow* flow = snd_.find(pkt.flow);
  if (flow == nullptr) return;  // flow already torn down
  // Any grant proves the receiver knows the flow: stop re-announcing and
  // refresh the linger clock. This happens even for unresponsive senders —
  // the control path working is separate from whether data follows.
  if (!flow->heard) {
    flow->heard = true;
    flow->rts_timer.cancel();
  }
  flow->last_heard = sched_.now();
  if (!cfg_.responsive) return;  // Fig. 14: unresponsive senders ignore credit
  flow->sched_priority = pkt.priority;
#ifdef AMRT_AUDIT
  const std::uint64_t sent_before = flow->packets_sent;
#endif
  handle_grant_packet(*flow, pkt);
#ifdef AMRT_AUDIT
  if (auto* a = sched_.auditor()) {
    // The sender must not overshoot the grant: one packet for a repair
    // request, at most `allowance` otherwise. Homa's byte-offset grants
    // (grant_offset > 0) authorize by position, not count — exempt.
    a->on_grant_response(pkt.flow, pkt.allowance, pkt.request_seq,
                         flow->packets_sent - sent_before, pkt.grant_offset > 0);
  }
#endif
}

void ReceiverDrivenEndpoint::on_done(Packet&& pkt) {
  SenderFlow* flow = snd_.find(pkt.flow);
  if (flow == nullptr) return;
  flow->rts_timer.cancel();
  flow->linger_timer.cancel();
  snd_.erase(pkt.flow);
}

// ---------------------------------------------------------------------------
// Receiver side
// ---------------------------------------------------------------------------

ReceiverDrivenEndpoint::ReceiverFlow* ReceiverDrivenEndpoint::ensure_registered(const Packet& pkt) {
  // Common case (every arrival after the first) resolves in this one probe;
  // the handle is then threaded through after_arrival/issue_credits, so the
  // whole arrival chain touches the flow table exactly once.
  if (ReceiverFlow* open = rcv_.find(pkt.flow)) return open;
  if (is_finished(pkt.flow)) return nullptr;
  auto [slot, inserted] = rcv_.try_emplace(pkt.flow);
  ReceiverFlow& flow = *slot;
  if (inserted) {
    flow.id = pkt.flow;
    flow.src = pkt.src;
    flow.bytes = pkt.flow_bytes;
    flow.total_pkts = net::packets_for_bytes(pkt.flow_bytes);
    flow.unscheduled_pkts =
        cfg_.unscheduled_start ? std::min<std::uint32_t>(cfg_.bdp_packets(), flow.total_pkts) : 0;
    flow.granted_bytes =
        static_cast<std::uint64_t>(flow.unscheduled_pkts) * net::kMssBytes;
    flow.seqs.resize(flow.total_pkts);
    flow.first_seen = sched_.now();
    flow.last_arrival = sched_.now();
    arm_recovery(flow, rto_);
  }
  return &flow;
}

net::Packet ReceiverDrivenEndpoint::make_grant(const ReceiverFlow& flow) const {
  Packet grant;
  grant.flow = flow.id;
  grant.type = PacketType::kGrant;
  grant.wire_bytes = net::kCtrlBytes;
  grant.src = host_.id();
  grant.dst = flow.src;
  grant.created = sched_.now();
  return grant;
}

std::uint32_t ReceiverDrivenEndpoint::grant_new(ReceiverFlow& flow, std::uint32_t count, bool marked) {
  auto remaining = flow.remaining_ungranted();
  const auto credits = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(count, remaining));
  if (credits == 0) return 0;
  // The wire allowance field is 16 bits. A credit burst beyond 65535 (a
  // recovery nudge against a multi-GB flow) is chunked across several grant
  // packets; truncating the cast would wrap and silently strand the rest of
  // the flow. Marked AMRT grants carry at most amrt_marked_allowance (2)
  // credits, so they are always a single chunk.
  std::uint32_t left = credits;
  while (left > 0) {
    const auto chunk = std::min<std::uint32_t>(left, 65535U);
    flow.granted_new += chunk;
#ifdef AMRT_AUDIT
    if (auto* a = sched_.auditor()) {
      // A marked AMRT grant must carry exactly the configured allowance (the
      // paper's "send one more"), clamped only by what is left to grant.
      a->on_grant_sent(flow.id, marked, chunk,
                       static_cast<std::uint64_t>(flow.unscheduled_pkts) + flow.granted_new,
                       flow.total_pkts, remaining, marked ? cfg_.amrt_marked_allowance : 0);
    }
#endif
    remaining -= chunk;
    Packet grant = make_grant(flow);
    grant.allowance = static_cast<std::uint16_t>(chunk);
    grant.marked_grant = marked;
    send(std::move(grant));
    left -= chunk;
  }
  return credits;
}

void ReceiverDrivenEndpoint::on_data(Packet&& pkt) {
  ReceiverFlow* flow = ensure_registered(pkt);
  if (flow == nullptr) return;  // stale retransmission of a finished flow
  flow->last_arrival = sched_.now();

  bool fresh = false;
  if (pkt.seq < flow->total_pkts) {
    if (pkt.seq > flow->max_seen) flow->max_seen = pkt.seq;
    if (!pkt.trimmed && !flow->seqs.got(pkt.seq)) {
      flow->seqs.set_got(pkt.seq);
      ++flow->received_pkts;
      flow->received_bytes += pkt.payload_bytes;
      fresh = true;
      if (observer_ != nullptr) {
        observer_->on_flow_progress(flow->id, pkt.payload_bytes, sched_.now());
      }
    }
  }
  if (detect_holes()) detect_losses(*flow);

  after_arrival(*flow, pkt, fresh);

  if (flow->complete()) finish_receive(*flow);
}

// A sequence hole more than kReorderSlack behind the highest seq seen is a
// presumed drop (per-flow ECMP keeps paths in order; only losses make holes).
void ReceiverDrivenEndpoint::detect_losses(ReceiverFlow& flow) {
  constexpr std::uint32_t kReorderSlack = 2;
  const std::uint32_t horizon = flow.max_seen > kReorderSlack ? flow.max_seen - kReorderSlack : 0;
  for (std::uint32_t seq = flow.detect_cursor; seq < horizon; ++seq) {
    if (!flow.seqs.got(seq) && flow.seqs.mark_repair(seq)) {
      // Fresh detections are immediately eligible and jump the queue.
      flow.repair_q.push_front(RepairEntry{seq, sched_.now()});
    }
  }
  flow.detect_cursor = std::max(flow.detect_cursor, horizon);
}

std::optional<std::uint32_t> ReceiverDrivenEndpoint::pop_due_repair(ReceiverFlow& flow) {
  while (!flow.repair_q.empty()) {
    const RepairEntry e = flow.repair_q.front();
    if (flow.seqs.got(e.seq)) {  // repaired in the meantime
      flow.repair_q.pop_front();
      flow.seqs.clear_repair(e.seq);
      continue;
    }
    if (e.eligible_at > sched_.now()) return std::nullopt;  // retry window still open
    flow.repair_q.pop_front();
    // Leave the repair bit set and re-queue for another try in case the
    // retransmission is lost too.
    flow.repair_q.push_back(RepairEntry{e.seq, sched_.now() + rto_});
    return e.seq;
  }
  return std::nullopt;
}

std::optional<std::uint32_t> ReceiverDrivenEndpoint::pop_due_suspect(ReceiverFlow& flow) {
  while (!flow.suspect_q.empty()) {
    const RepairEntry e = flow.suspect_q.front();
    if (flow.seqs.got(e.seq)) {  // it was queued after all, not lost
      flow.suspect_q.pop_front();
      flow.seqs.clear_repair(e.seq);
      continue;
    }
    if (e.eligible_at > sched_.now()) return std::nullopt;
    flow.suspect_q.pop_front();
    flow.suspect_q.push_back(RepairEntry{e.seq, sched_.now() + rto_});
    return e.seq;
  }
  return std::nullopt;
}

std::uint32_t ReceiverDrivenEndpoint::grant_new_credits(ReceiverFlow& flow, std::uint32_t count,
                                                        bool marked) {
  return grant_new(flow, count, marked);
}

std::uint32_t ReceiverDrivenEndpoint::issue_credits(ReceiverFlow& flow, std::uint32_t count,
                                                    bool marked) {
  // New data first: while the flow has ungranted packets, a lost packet's
  // credit is simply gone — the circulation (and thus the rate) shrinks,
  // exactly the conservative behaviour the paper ascribes to receiver-driven
  // designs. Only once the grant clock has nothing new to trigger do
  // arrivals start pulling retransmissions of the presumed-lost packets.
  std::uint32_t issued = grant_new_credits(flow, count, marked);
  while (issued < count) {
    const auto repair = pop_due_repair(flow);
    if (!repair) break;
#ifdef AMRT_AUDIT
    if (auto* a = sched_.auditor()) a->on_repair_grant(flow.id, *repair, flow.total_pkts);
#endif
    Packet grant = make_grant(flow);
    grant.request_seq = static_cast<std::int64_t>(*repair);
    grant.allowance = 0;
    send(std::move(grant));
    ++issued;
  }
  return issued;
}

bool ReceiverDrivenEndpoint::wants_credit(ReceiverFlow& flow) {
  if (flow.remaining_ungranted() > 0) return true;
  // Peek for a due repair without consuming it.
  while (!flow.repair_q.empty() && flow.seqs.got(flow.repair_q.front().seq)) {
    flow.seqs.clear_repair(flow.repair_q.front().seq);
    flow.repair_q.pop_front();
  }
  return !flow.repair_q.empty() && flow.repair_q.front().eligible_at <= sched_.now();
}

void ReceiverDrivenEndpoint::on_rts(Packet&& pkt) {
  ReceiverFlow* flow = ensure_registered(pkt);
  if (flow == nullptr) {
    // The flow already finished but the sender is still announcing it: the
    // Done was lost. Resend it so the sender's retry/linger backstops stand
    // down. Only an RTS triggers this — stale *data* duplicates are routine
    // in healthy runs and must not generate control traffic.
    Packet done;
    done.flow = pkt.flow;
    done.type = PacketType::kDone;
    done.wire_bytes = net::kCtrlBytes;
    done.src = host_.id();
    done.dst = pkt.src;
    done.created = sched_.now();
    send(std::move(done));
    return;
  }
  // An RTS is an announcement, not an arrival: it must not reset the
  // stall detector, or unresponsive senders would never look stalled.
  after_arrival(*flow, pkt, false);
}

void ReceiverDrivenEndpoint::finish_receive(ReceiverFlow& flow) {
  flow.recovery_timer.cancel();
#ifdef AMRT_AUDIT
  if (auto* a = sched_.auditor()) {
    // Bitmap consistency at completion: the received counter, the total and
    // the popcount of the got-bits must all agree. Also registers the flow
    // as finished so any later grant for it is flagged.
    a->on_flow_finished(flow.id, flow.total_pkts, flow.received_pkts, flow.seqs.count_got());
  }
#endif
  Packet done = make_grant(flow);
  done.type = PacketType::kDone;
  send(std::move(done));
  if (observer_ != nullptr) observer_->on_flow_completed(flow.id, sched_.now());
  remember_finished(flow.id);
  rcv_.erase(flow.id);
}

void ReceiverDrivenEndpoint::remember_finished(net::FlowId id) {
  // Two-generation compaction of the finished-id filter. Rotation is lazy
  // (on the insert path, no standing timer — runs must drain naturally):
  // once the current epoch is over, the current generation becomes the old
  // one and the previous old generation is dropped. An id therefore
  // survives between one and two epochs, long enough to outlast every
  // sender backstop (linger < epoch by config contract).
  const sim::Duration epoch = rto_ * std::max<std::uint32_t>(cfg_.finished_epoch_rtos, 1);
  if (finished_epoch_end_ == sim::TimePoint{}) {
    finished_epoch_end_ = sched_.now() + epoch;
  } else if (sched_.now() >= finished_epoch_end_) {
    std::swap(finished_prev_, finished_rcv_);
    finished_rcv_.clear();
    finished_epoch_end_ = sched_.now() + epoch;
  }
  finished_rcv_.insert(id);
}

// ---------------------------------------------------------------------------
// Loss recovery (Sec. 6: the receiver reissues grants for packets that fail
// to arrive within a timeout of being triggered).
// ---------------------------------------------------------------------------

std::uint32_t ReceiverDrivenEndpoint::expected_sent_pkts(const ReceiverFlow& flow) const {
  const std::uint64_t n = static_cast<std::uint64_t>(flow.unscheduled_pkts) + flow.granted_new;
  return static_cast<std::uint32_t>(std::min<std::uint64_t>(n, flow.total_pkts));
}

void ReceiverDrivenEndpoint::recovery_nudge(ReceiverFlow& flow) {
  grant_new(flow, cfg_.recovery_batch, /*marked=*/false);
}

void ReceiverDrivenEndpoint::arm_recovery(ReceiverFlow& flow, sim::Duration delay) {
  flow.recovery_timer = sched_.after(delay, [this, id = flow.id] { recovery_fire(id); });
}

// The liveness backstop (Sec. 6's timeout). Losses during an active flow
// are repaired in-band by issue_credits; this timer only acts when the flow
// has gone completely silent for an RTO — then the arrival clock is dead
// and nothing in-band can restart it. It re-requests missing packets
// directly (including tail losses the hole detector cannot see) and, if
// nothing is missing, pushes the grant clock with fresh credits.
void ReceiverDrivenEndpoint::recovery_fire(net::FlowId id) {
  ReceiverFlow* open = rcv_.find(id);
  if (open == nullptr) return;
  ReceiverFlow& flow = *open;

  const auto idle = sched_.now() - flow.last_arrival;
  if (idle < rto_) {
    flow.stall_backoff = 1;  // the flow is alive again
    arm_recovery(flow, rto_ - idle);
    return;
  }

  // Abandon: nothing has arrived for a long multiple of the timeout — the
  // sender is gone (crashed, reclaimed by its own linger backstop, or
  // unresponsive with the RTS budget spent). Dropping the record bounds
  // receiver state and lets the run drain; a late retransmission would
  // simply re-register the flow. Only flows the receiver is actually owed
  // packets on qualify: a flow whose every expected packet landed is merely
  // unscheduled (a Homa message parked outside the overcommitment set), and
  // abandoning it would strand a perfectly healthy sender.
  if (cfg_.receiver_abandon_rtos > 0 && idle >= rto_ * cfg_.receiver_abandon_rtos &&
      flow.received_pkts < expected_sent_pkts(flow)) {
    rcv_.erase(id);
    return;
  }

  // Feed every missing sequence below the expected horizon through the
  // shared repair bookkeeping (pending bit + suspect queue). mark_repair
  // dedupes: a seq the in-band path already re-requested keeps its single
  // repair_q entry and its retry window, instead of being re-requested in
  // parallel. Suspects carry no arrival-side evidence of loss — with the
  // AMRT timeout at a single base RTT, "expected but not arrived" is
  // routinely a queued packet — so they get an extra rto of grace to land,
  // and only this backstop (never the in-band credit path) requests them,
  // at most a batch per fire under the stall backoff.
  const std::uint32_t horizon = expected_sent_pkts(flow);
  for (std::uint32_t seq = flow.scan_cursor; seq < horizon; ++seq) {
    if (flow.seqs.got(seq)) {
      if (seq == flow.scan_cursor) ++flow.scan_cursor;  // advance past the received prefix
      continue;
    }
    if (flow.seqs.mark_repair(seq)) {
      flow.suspect_q.push_back(RepairEntry{seq, sched_.now() + rto_});
    }
  }
  std::uint32_t requested = 0;
  while (requested < cfg_.recovery_batch) {
    auto repair = pop_due_repair(flow);
    if (!repair) repair = pop_due_suspect(flow);
    if (!repair) break;
#ifdef AMRT_AUDIT
    if (auto* a = sched_.auditor()) a->on_repair_grant(flow.id, *repair, flow.total_pkts);
#endif
    Packet grant = make_grant(flow);
    grant.request_seq = static_cast<std::int64_t>(*repair);
    grant.allowance = 0;
    send(std::move(grant));
    ++requested;
  }
  if (requested == 0 && flow.remaining_ungranted() > 0) {
    recovery_nudge(flow);
  }
  // Exponential backoff while the flow stays silent: with many flows
  // timing out in lockstep (incast), fixed-interval retries re-overload
  // the queue that dropped them in the first place.
  arm_recovery(flow, rto_ * flow.stall_backoff);
  flow.stall_backoff = std::min<std::uint32_t>(flow.stall_backoff * 2, 8);
}

}  // namespace amrt::transport
