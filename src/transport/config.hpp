// Per-endpoint transport configuration shared by all four protocols.
//
// A TransportConfig is constructed once per experiment (both ends of every
// flow must agree on `unscheduled_start` and the BDP so the receiver can
// reconstruct what the sender was allowed to send).
#pragma once

#include <cstdint>
#include <string>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace amrt::transport {

enum class Protocol : std::uint8_t { kAmrt, kPhost, kHoma, kNdp, kDctcp };

[[nodiscard]] const char* to_string(Protocol p);
[[nodiscard]] Protocol protocol_from_string(const std::string& name);

struct TransportConfig {
  sim::Bandwidth host_rate = sim::Bandwidth::gbps(10);
  // Minimum end-to-end RTT of the topology (data out + grant back); drives
  // the BDP window and every timeout.
  sim::Duration base_rtt = sim::Duration::microseconds(100);

  // Sec. 6: receiver-driven flows start blind with one BDP of data.
  bool unscheduled_start = true;
  // Fig. 14: unresponsive senders announce flows (RTS) but never send data.
  bool responsive = true;

  // Receiver-side loss detection: if a flow stalls this long with packets
  // outstanding, re-request specific sequence numbers. Zero means "use the
  // protocol default" (1xRTT for AMRT per Sec. 6, 3xRTT otherwise).
  sim::Duration loss_timeout = sim::Duration::zero();
  std::uint32_t recovery_batch = 8;  // max seqs re-requested per timeout

  // --- control-plane loss hardening (DESIGN.md §11) -----------------------
  // The paper assumes a lossless control plane; under fault injection RTS,
  // grant and Done packets can vanish, so each control dependency gets a
  // bounded backstop. All windows are multiples of the loss timeout (rto).
  //
  // Sender RTS backstop: until the first grant/Done arrives, the RTS is
  // resent with exponential backoff (first after 2x rto, doubling, capped at
  // 8x rto) up to this many times; 0 disables the retry. The cumulative
  // window (~54x rto) stays below the finished-id retention below so a
  // Done-less retry still finds the receiver's finished record.
  std::uint32_t rts_retry_limit = 8;
  // Sender teardown: once every byte has been sent at least once and no
  // grant has been heard for this many rtos, the sender forgets the flow (a
  // lost Done otherwise leaks the state forever).
  std::uint32_t sender_linger_rtos = 64;
  // Receiver abandon: a flow the receiver is owed packets on (granted or
  // announced, never arrived) with no arrival for this many rtos is dropped
  // (its sender is gone — crashed, torn down, or unresponsive with the
  // retry budget spent). Flows whose every expected packet landed are
  // exempt: they are merely unscheduled, which Homa's overcommitment makes
  // arbitrarily long. Must exceed sender_linger_rtos so a merely-idle
  // sender is not abandoned first.
  std::uint32_t receiver_abandon_rtos = 128;
  // Finished-flow ids are kept for two epochs of this many rtos each (see
  // the finished_rcv_ compaction in receiver_driven.cpp) before stale-
  // retransmission filtering forgets them.
  std::uint32_t finished_epoch_rtos = 64;

  // Homa: number of messages granted concurrently (degree of overcommitment)
  // and the number of switch priority levels.
  int homa_overcommit = 2;
  std::uint8_t homa_priority_levels = 8;

  // pHost: outstanding-token window per flow, as a multiple of BDP.
  double phost_token_window_bdp = 1.0;

  // AMRT: packets triggered by a marked grant (paper: 2 — "send one more").
  // Exposed for the ablation benches.
  std::uint16_t amrt_marked_allowance = 2;

  // --- DCTCP (sender-driven wing, DESIGN.md §13) --------------------------
  // The windowed sender is clocked by per-packet ACKs; switches mark CE when
  // the egress data backlog is at least `dctcp_ecn_threshold_pkts` (the K of
  // the DCTCP paper), and the sender cuts its window by the marked-fraction
  // EWMA (gain g). Windows are counted in packets, not bytes: every data
  // packet is one MSS on the wire except a flow's short tail.
  double dctcp_g = 1.0 / 16.0;
  std::uint32_t dctcp_init_cwnd_pkts = 10;
  std::size_t dctcp_ecn_threshold_pkts = 20;
  // Hard cap on cwnd; 0 = derive from BDP (see dctcp_cwnd_cap_pkts()).
  std::uint32_t dctcp_cwnd_cap = 0;

  // PIAS-style multi-level feedback: a flow's data starts at priority 0 and
  // is demoted one level each time its cumulative bytes sent cross the next
  // threshold T_l = pias_base_threshold_bytes << l. Rides the same
  // strict-priority egress bands Homa uses.
  std::uint64_t pias_base_threshold_bytes = 50'000;
  std::uint8_t pias_levels = 8;

  // --- derived quantities ---
  [[nodiscard]] std::uint32_t bdp_packets() const {
    const std::int64_t bytes = host_rate.bytes_in(base_rtt);
    const auto pkts = static_cast<std::uint32_t>((bytes + net::kMtuBytes - 1) / net::kMtuBytes);
    return pkts == 0 ? 1 : pkts;
  }
  [[nodiscard]] std::uint64_t bdp_payload_bytes() const {
    return static_cast<std::uint64_t>(bdp_packets()) * net::kMssBytes;
  }
  [[nodiscard]] sim::Duration default_loss_timeout(Protocol p) const {
    if (loss_timeout > sim::Duration::zero()) return loss_timeout;
    return p == Protocol::kAmrt ? base_rtt : base_rtt * 3;
  }
  [[nodiscard]] sim::Duration phost_downgrade_timeout() const { return base_rtt * 3; }
  [[nodiscard]] std::uint32_t dctcp_cwnd_cap_pkts() const {
    if (dctcp_cwnd_cap != 0) return dctcp_cwnd_cap;
    // Generous by design: the cap is a sanity bound (audited), not the
    // congestion control — 8x BDP leaves slow start room to overshoot.
    const std::uint32_t cap = bdp_packets() * 8;
    return cap < 64 ? 64 : cap;
  }
};

}  // namespace amrt::transport
