// Per-endpoint transport configuration shared by all four protocols.
//
// A TransportConfig is constructed once per experiment (both ends of every
// flow must agree on `unscheduled_start` and the BDP so the receiver can
// reconstruct what the sender was allowed to send).
#pragma once

#include <cstdint>
#include <string>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace amrt::transport {

enum class Protocol : std::uint8_t { kAmrt, kPhost, kHoma, kNdp };

[[nodiscard]] const char* to_string(Protocol p);
[[nodiscard]] Protocol protocol_from_string(const std::string& name);

struct TransportConfig {
  sim::Bandwidth host_rate = sim::Bandwidth::gbps(10);
  // Minimum end-to-end RTT of the topology (data out + grant back); drives
  // the BDP window and every timeout.
  sim::Duration base_rtt = sim::Duration::microseconds(100);

  // Sec. 6: receiver-driven flows start blind with one BDP of data.
  bool unscheduled_start = true;
  // Fig. 14: unresponsive senders announce flows (RTS) but never send data.
  bool responsive = true;

  // Receiver-side loss detection: if a flow stalls this long with packets
  // outstanding, re-request specific sequence numbers. Zero means "use the
  // protocol default" (1xRTT for AMRT per Sec. 6, 3xRTT otherwise).
  sim::Duration loss_timeout = sim::Duration::zero();
  std::uint32_t recovery_batch = 8;  // max seqs re-requested per timeout

  // Homa: number of messages granted concurrently (degree of overcommitment)
  // and the number of switch priority levels.
  int homa_overcommit = 2;
  std::uint8_t homa_priority_levels = 8;

  // pHost: outstanding-token window per flow, as a multiple of BDP.
  double phost_token_window_bdp = 1.0;

  // AMRT: packets triggered by a marked grant (paper: 2 — "send one more").
  // Exposed for the ablation benches.
  std::uint16_t amrt_marked_allowance = 2;

  // --- derived quantities ---
  [[nodiscard]] std::uint32_t bdp_packets() const {
    const std::int64_t bytes = host_rate.bytes_in(base_rtt);
    const auto pkts = static_cast<std::uint32_t>((bytes + net::kMtuBytes - 1) / net::kMtuBytes);
    return pkts == 0 ? 1 : pkts;
  }
  [[nodiscard]] std::uint64_t bdp_payload_bytes() const {
    return static_cast<std::uint64_t>(bdp_packets()) * net::kMssBytes;
  }
  [[nodiscard]] sim::Duration default_loss_timeout(Protocol p) const {
    if (loss_timeout > sim::Duration::zero()) return loss_timeout;
    return p == Protocol::kAmrt ? base_rtt : base_rtt * 3;
  }
  [[nodiscard]] sim::Duration phost_downgrade_timeout() const { return base_rtt * 3; }
};

}  // namespace amrt::transport
