// One-stop construction of a protocol's moving parts: the endpoint, the
// switch queue discipline it expects, and (for AMRT) the anti-ECN marker.
// Experiments pick a Protocol; everything else follows.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

#include "core/amrt.hpp"
#include "net/queue.hpp"
#include "transport/config.hpp"
#include "transport/endpoint.hpp"

namespace amrt::core {

[[nodiscard]] std::unique_ptr<transport::TransportEndpoint> make_endpoint(
    transport::Protocol proto, sim::Simulation& sim, net::Host& host,
    const transport::TransportConfig& cfg, stats::FlowObserver* observer);

struct QueueConfig {
  std::size_t buffer_pkts = 128;      // Section 8.1's switch buffer
  std::size_t trim_threshold = 8;     // NDP trimming point (Section 6)
  std::size_t priority_levels = 8;    // Homa / PIAS priority bands
  std::size_t host_nic_pkts = 8192;   // room for the unscheduled burst
  std::size_t ecn_threshold_pkts = 20;  // DCTCP's K, in data packets
  // AMRT extension: Aeolus-style selective dropping — when a queue is full,
  // blind unscheduled packets are sacrificed before granted traffic.
  bool selective_drop = false;
};

// Switch-port queue discipline per protocol: trimming for NDP, strict
// priorities for Homa and DCTCP (PIAS bands), drop-tail otherwise.
[[nodiscard]] net::QueueFactory make_queue_factory(transport::Protocol proto, QueueConfig cfg = {});

// Anti-ECN markers for AMRT, threshold-ECN for DCTCP; a null factory for
// the baselines. `probe_bytes` is Eq. (2)'s MSS (the gap must fit this many
// bytes to count as spare bandwidth); the paper uses the full 1500B MTU.
// `ecn_threshold_pkts` is DCTCP's K (ignored for the other protocols).
[[nodiscard]] net::MarkerFactory make_marker_factory(transport::Protocol proto,
                                                     std::uint32_t probe_bytes = net::kMtuBytes,
                                                     std::size_t ecn_threshold_pkts = 20);

// --- mixed AMRT + DCTCP fabrics (DESIGN.md §13) -----------------------------
// A shared fabric carries both populations: strict-priority queues (AMRT
// data rides band 0, above every demoted PIAS band) and one composite marker
// per port holding both ECN semantics.
[[nodiscard]] net::QueueFactory make_mixed_queue_factory(QueueConfig cfg = {});
[[nodiscard]] net::MarkerFactory make_mixed_marker_factory(
    QueueConfig cfg = {}, std::uint32_t probe_bytes = net::kMtuBytes);

// A host endpoint carrying both transports, dispatching each flow by the
// predicate (true = DCTCP background, false = AMRT foreground). Both ends of
// a flow must agree on the predicate, so it is a pure function of the id.
[[nodiscard]] std::unique_ptr<transport::TransportEndpoint> make_mixed_endpoint(
    sim::Simulation& sim, net::Host& host, const transport::TransportConfig& cfg,
    stats::FlowObserver* observer, std::function<bool(net::FlowId)> is_background);

}  // namespace amrt::core
