// One-stop construction of a protocol's moving parts: the endpoint, the
// switch queue discipline it expects, and (for AMRT) the anti-ECN marker.
// Experiments pick a Protocol; everything else follows.
#pragma once

#include <cstddef>
#include <memory>

#include "core/amrt.hpp"
#include "net/queue.hpp"
#include "transport/config.hpp"
#include "transport/endpoint.hpp"

namespace amrt::core {

[[nodiscard]] std::unique_ptr<transport::TransportEndpoint> make_endpoint(
    transport::Protocol proto, sim::Simulation& sim, net::Host& host,
    const transport::TransportConfig& cfg, stats::FlowObserver* observer);

struct QueueConfig {
  std::size_t buffer_pkts = 128;      // Section 8.1's switch buffer
  std::size_t trim_threshold = 8;     // NDP trimming point (Section 6)
  std::size_t priority_levels = 8;    // Homa priority bands
  std::size_t host_nic_pkts = 8192;   // room for the unscheduled burst
  // AMRT extension: Aeolus-style selective dropping — when a queue is full,
  // blind unscheduled packets are sacrificed before granted traffic.
  bool selective_drop = false;
};

// Switch-port queue discipline per protocol: trimming for NDP, strict
// priorities for Homa, drop-tail otherwise.
[[nodiscard]] net::QueueFactory make_queue_factory(transport::Protocol proto, QueueConfig cfg = {});

// Anti-ECN markers for AMRT; a null factory for the baselines.
// `probe_bytes` is Eq. (2)'s MSS (the gap must fit this many bytes to count
// as spare bandwidth); the paper uses the full 1500B MTU.
[[nodiscard]] net::MarkerFactory make_marker_factory(transport::Protocol proto,
                                                     std::uint32_t probe_bytes = net::kMtuBytes);

}  // namespace amrt::core
