#include "core/threshold_ecn.hpp"

#include "core/anti_ecn.hpp"
#include "net/queue.hpp"

namespace amrt::core {

void ThresholdEcnMarker::on_dequeue(net::Packet& pkt, sim::TimePoint tx_start,
                                    sim::TimePoint last_tx_end, sim::Bandwidth rate) {
  (void)tx_start;
  (void)last_tx_end;
  (void)rate;
  if (pkt.type != net::PacketType::kData || !pkt.ecn_capable || pkt.trimmed ||
      !pkt.threshold_ecn) {
    return;
  }
  ++observed_;
  // The marker runs after the packet left the queue, so data_pkts() is the
  // backlog still behind it — the instantaneous depth DCTCP thresholds on.
  const bool mark = queue_ != nullptr && queue_->data_pkts() >= threshold_;
  pkt.ce = pkt.ce || mark;
#ifdef AMRT_AUDIT
  // OR-mode shadow of the CE bit, the dual of the anti-ECN AND shadow: a
  // congested hop may set it, nothing downstream may clear it.
  pkt.audit_ce_expected = pkt.audit_ce_expected || mark;
#endif
  if (mark) ++marked_;
}

namespace {

// Both semantics on one port: forward to the anti-ECN and threshold markers
// in turn; their Packet::threshold_ecn filters make the pair commutative.
class MixedMarker final : public net::DequeueMarker {
 public:
  MixedMarker(std::uint32_t probe_bytes, std::size_t threshold_pkts)
      : anti_{probe_bytes}, threshold_{threshold_pkts} {}

  void bind_queue(const net::EgressQueue& queue) override {
    anti_.bind_queue(queue);
    threshold_.bind_queue(queue);
  }

  void on_dequeue(net::Packet& pkt, sim::TimePoint tx_start, sim::TimePoint last_tx_end,
                  sim::Bandwidth rate) override {
    anti_.on_dequeue(pkt, tx_start, last_tx_end, rate);
    threshold_.on_dequeue(pkt, tx_start, last_tx_end, rate);
  }

 private:
  AntiEcnMarker anti_;
  ThresholdEcnMarker threshold_;
};

}  // namespace

std::unique_ptr<net::DequeueMarker> make_mixed_marker(std::uint32_t probe_bytes,
                                                      std::size_t threshold_pkts) {
  return std::make_unique<MixedMarker>(probe_bytes, threshold_pkts);
}

}  // namespace amrt::core
