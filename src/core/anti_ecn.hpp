// Anti-ECN marking (Section 4.1) — the paper's core switch-side mechanism.
//
// A switch egress port measures the idle gap between consecutive data-packet
// transmissions. If the gap is long enough to have carried one more
// MTU-sized packet, the link has spare bandwidth and the departing packet's
// CE bit stays set; otherwise CE is cleared. Because senders initialize
// CE=1 and every switch ANDs its own verdict in (Eq. 3), a packet reaches
// the receiver marked iff *every* bottleneck on its path had spare capacity —
// exactly the condition under which the sender may safely add a packet.
//
// Note on Eq. (1)/(2): we interpret the "inter-dequeue time" as the idle gap
// between the end of the previous transmission and the start of the current
// one. Back-to-back packets then yield a gap of zero (saturated link, no
// mark); measuring start-to-start timestamps instead would mark saturated
// links whose gap merely equals the previous packet's serialization time.
#pragma once

#include <cstdint>

#include "net/marker.hpp"

namespace amrt::core {

class AntiEcnMarker final : public net::DequeueMarker {
 public:
  // `probe_bytes` is the MSS of Eq. (2): the paper uses the full Ethernet
  // MTU (1500B) regardless of actual packet sizes, "to avoid congestion".
  explicit AntiEcnMarker(std::uint32_t probe_bytes = net::kMtuBytes) : probe_bytes_{probe_bytes} {}

  void on_dequeue(net::Packet& pkt, sim::TimePoint tx_start, sim::TimePoint last_tx_end,
                  sim::Bandwidth rate) override;

  [[nodiscard]] std::uint64_t observed() const { return observed_; }
  [[nodiscard]] std::uint64_t kept_marked() const { return kept_marked_; }
  [[nodiscard]] std::uint64_t cleared() const { return cleared_; }

 private:
  std::uint32_t probe_bytes_;
  bool link_ever_used_ = false;
  // Eq. (2)'s threshold, rate.tx_time(probe_bytes_), memoized on first use:
  // a marker is bound to one port whose rate never changes, and the division
  // is 128-bit — too expensive to repeat per data packet.
  sim::Duration probe_tx_ = sim::Duration::zero();
  std::uint64_t observed_ = 0;
  std::uint64_t kept_marked_ = 0;
  std::uint64_t cleared_ = 0;
};

}  // namespace amrt::core
