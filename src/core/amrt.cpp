#include "core/amrt.hpp"

namespace amrt::core {

void AmrtEndpoint::decorate_data(net::Packet& pkt, const SenderFlow& flow) {
  (void)flow;
  // Section 4.1: the CE bit is initialized to 1; switches AND it down.
  pkt.ecn_capable = true;
  pkt.ce = true;
}

void AmrtEndpoint::after_arrival(ReceiverFlow& flow, const net::Packet& pkt, bool fresh) {
  if (pkt.type == net::PacketType::kRts) {
    // With the unscheduled burst disabled (responsiveness experiments) the
    // arrival clock needs one seed grant.
    if (flow.unscheduled_pkts == 0 && flow.granted_new == 0) grant_new(flow, 1, false);
    return;
  }
  if (!fresh) return;  // duplicates must not advance the clock

  // Section 4.3: a marked packet means every bottleneck had room for one
  // more; echo the mark and trigger two packets instead of one. Credits
  // repair presumed-lost packets before triggering new data.
  const bool marked = pkt.ce;
  const auto issued = issue_credits(flow, marked ? cfg_.amrt_marked_allowance : 1u, marked);
  if (marked && issued > 0) ++marked_grants_;
}

}  // namespace amrt::core
