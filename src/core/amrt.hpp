// The AMRT transport endpoint (Sections 4.2-4.3).
//
// Receiver-driven at heart: each fresh data arrival triggers exactly one
// grant. The twist is the anti-ECN echo: if the arriving packet still
// carries CE=1 (every bottleneck had spare capacity, see anti_ecn.hpp), the
// grant is marked and carries an allowance of two packets, so the sender
// fills the observed gap; otherwise the grant triggers one packet and the
// flow stays arrival-clocked. Grants never exceed the flow's remaining
// ungranted packets, and lost packets are re-requested by sequence number
// after a 1xRTT stall (Section 6).
#pragma once

#include "transport/receiver_driven.hpp"

namespace amrt::core {

class AmrtEndpoint final : public transport::ReceiverDrivenEndpoint {
 public:
  AmrtEndpoint(sim::Simulation& sim, net::Host& host, transport::TransportConfig cfg,
               stats::FlowObserver* observer)
      : ReceiverDrivenEndpoint{sim, host, cfg, observer, transport::Protocol::kAmrt} {}

  [[nodiscard]] std::uint64_t marked_grants_sent() const { return marked_grants_; }

 protected:
  void decorate_data(net::Packet& pkt, const SenderFlow& flow) override;
  void after_arrival(ReceiverFlow& flow, const net::Packet& pkt, bool fresh) override;

 private:
  std::uint64_t marked_grants_ = 0;
};

}  // namespace amrt::core
