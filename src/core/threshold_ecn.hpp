// Conventional threshold ECN marking (the DCTCP switch side), plus the
// composite marker a mixed AMRT/DCTCP fabric needs.
//
// Where AMRT's anti-ECN marker measures idle gaps and ANDs the CE bit down
// (spare bandwidth), a DCTCP switch looks at its own backlog: a departing
// data packet is marked when the egress data band still holds at least K
// packets. Senders emit CE=0 and any congested hop ORs the bit up, so the
// receiver's echo reports "some bottleneck was deep" — the exact dual of
// Eq. 3. The two semantics are told apart per packet by
// Packet::threshold_ecn: each marker acts only on its own population, which
// is what lets both run on the same port of a shared fabric.
#pragma once

#include <cstdint>
#include <memory>

#include "net/marker.hpp"

namespace amrt::core {

class ThresholdEcnMarker final : public net::DequeueMarker {
 public:
  // `threshold_pkts` is DCTCP's K, in data packets of the egress queue.
  explicit ThresholdEcnMarker(std::size_t threshold_pkts) : threshold_{threshold_pkts} {}

  void bind_queue(const net::EgressQueue& queue) override { queue_ = &queue; }
  void on_dequeue(net::Packet& pkt, sim::TimePoint tx_start, sim::TimePoint last_tx_end,
                  sim::Bandwidth rate) override;

  [[nodiscard]] std::size_t threshold() const { return threshold_; }
  [[nodiscard]] std::uint64_t observed() const { return observed_; }
  [[nodiscard]] std::uint64_t marked() const { return marked_; }

 private:
  std::size_t threshold_;
  const net::EgressQueue* queue_ = nullptr;
  std::uint64_t observed_ = 0;
  std::uint64_t marked_ = 0;
};

// One marker per mixed-fabric port holding both semantics; each inner marker
// filters on Packet::threshold_ecn, so forwarding every packet to both is
// correct. Built by make_mixed_marker_factory (core/factory.hpp).
[[nodiscard]] std::unique_ptr<net::DequeueMarker> make_mixed_marker(std::uint32_t probe_bytes,
                                                                    std::size_t threshold_pkts);

}  // namespace amrt::core
