#include "core/factory.hpp"

#include "core/anti_ecn.hpp"
#include "transport/homa.hpp"
#include "transport/ndp.hpp"
#include "transport/phost.hpp"

namespace amrt::core {

using transport::Protocol;

std::unique_ptr<transport::TransportEndpoint> make_endpoint(Protocol proto, sim::Simulation& sim,
                                                            net::Host& host,
                                                            const transport::TransportConfig& cfg,
                                                            stats::FlowObserver* observer) {
  switch (proto) {
    case Protocol::kAmrt:
      return std::make_unique<AmrtEndpoint>(sim, host, cfg, observer);
    case Protocol::kPhost:
      return std::make_unique<transport::PhostEndpoint>(sim, host, cfg, observer);
    case Protocol::kHoma:
      return std::make_unique<transport::HomaEndpoint>(sim, host, cfg, observer);
    case Protocol::kNdp:
      return std::make_unique<transport::NdpEndpoint>(sim, host, cfg, observer);
  }
  return nullptr;
}

net::QueueFactory make_queue_factory(Protocol proto, QueueConfig cfg) {
  return [proto, cfg](bool host_nic) -> std::unique_ptr<net::EgressQueue> {
    if (host_nic) return std::make_unique<net::DropTailQueue>(cfg.host_nic_pkts);
    switch (proto) {
      case Protocol::kNdp:
        return std::make_unique<net::TrimmingQueue>(cfg.trim_threshold);
      case Protocol::kHoma:
        return std::make_unique<net::StrictPriorityQueue>(cfg.priority_levels, cfg.buffer_pkts);
      case Protocol::kAmrt:
        if (cfg.selective_drop) return std::make_unique<net::SelectiveDropQueue>(cfg.buffer_pkts);
        return std::make_unique<net::DropTailQueue>(cfg.buffer_pkts);
      case Protocol::kPhost:
        return std::make_unique<net::DropTailQueue>(cfg.buffer_pkts);
    }
    return std::make_unique<net::DropTailQueue>(cfg.buffer_pkts);
  };
}

net::MarkerFactory make_marker_factory(Protocol proto, std::uint32_t probe_bytes) {
  if (proto != Protocol::kAmrt) return nullptr;
  return [probe_bytes] { return std::make_unique<AntiEcnMarker>(probe_bytes); };
}

}  // namespace amrt::core
