#include "core/factory.hpp"

#include <utility>

#include "core/anti_ecn.hpp"
#include "core/threshold_ecn.hpp"
#include "transport/dctcp.hpp"
#include "transport/homa.hpp"
#include "transport/ndp.hpp"
#include "transport/phost.hpp"

namespace amrt::core {

using transport::Protocol;

std::unique_ptr<transport::TransportEndpoint> make_endpoint(Protocol proto, sim::Simulation& sim,
                                                            net::Host& host,
                                                            const transport::TransportConfig& cfg,
                                                            stats::FlowObserver* observer) {
  switch (proto) {
    case Protocol::kAmrt:
      return std::make_unique<AmrtEndpoint>(sim, host, cfg, observer);
    case Protocol::kPhost:
      return std::make_unique<transport::PhostEndpoint>(sim, host, cfg, observer);
    case Protocol::kHoma:
      return std::make_unique<transport::HomaEndpoint>(sim, host, cfg, observer);
    case Protocol::kNdp:
      return std::make_unique<transport::NdpEndpoint>(sim, host, cfg, observer);
    case Protocol::kDctcp:
      return std::make_unique<transport::DctcpEndpoint>(sim, host, cfg, observer);
  }
  return nullptr;
}

net::QueueFactory make_queue_factory(Protocol proto, QueueConfig cfg) {
  return [proto, cfg](bool host_nic) -> std::unique_ptr<net::EgressQueue> {
    if (host_nic) return std::make_unique<net::DropTailQueue>(cfg.host_nic_pkts);
    switch (proto) {
      case Protocol::kNdp:
        return std::make_unique<net::TrimmingQueue>(cfg.trim_threshold);
      case Protocol::kHoma:
        return std::make_unique<net::StrictPriorityQueue>(cfg.priority_levels, cfg.buffer_pkts);
      case Protocol::kDctcp:
        // PIAS demotion needs the priority bands; the ECN marking itself is
        // the dequeue marker's job, not the queue's.
        return std::make_unique<net::StrictPriorityQueue>(cfg.priority_levels, cfg.buffer_pkts);
      case Protocol::kAmrt:
        if (cfg.selective_drop) return std::make_unique<net::SelectiveDropQueue>(cfg.buffer_pkts);
        return std::make_unique<net::DropTailQueue>(cfg.buffer_pkts);
      case Protocol::kPhost:
        return std::make_unique<net::DropTailQueue>(cfg.buffer_pkts);
    }
    return std::make_unique<net::DropTailQueue>(cfg.buffer_pkts);
  };
}

net::MarkerFactory make_marker_factory(Protocol proto, std::uint32_t probe_bytes,
                                       std::size_t ecn_threshold_pkts) {
  if (proto == Protocol::kAmrt) {
    return [probe_bytes] { return std::make_unique<AntiEcnMarker>(probe_bytes); };
  }
  if (proto == Protocol::kDctcp) {
    return [ecn_threshold_pkts] { return std::make_unique<ThresholdEcnMarker>(ecn_threshold_pkts); };
  }
  return nullptr;
}

net::QueueFactory make_mixed_queue_factory(QueueConfig cfg) {
  // Both populations share the PIAS strict-priority bands: AMRT data keeps
  // priority 0, so it competes only with a DCTCP flow's first-threshold
  // bytes — the PIAS contract for unknown-size foreground traffic.
  return [cfg](bool host_nic) -> std::unique_ptr<net::EgressQueue> {
    if (host_nic) return std::make_unique<net::DropTailQueue>(cfg.host_nic_pkts);
    return std::make_unique<net::StrictPriorityQueue>(cfg.priority_levels, cfg.buffer_pkts);
  };
}

net::MarkerFactory make_mixed_marker_factory(QueueConfig cfg, std::uint32_t probe_bytes) {
  const std::size_t threshold = cfg.ecn_threshold_pkts;
  return [probe_bytes, threshold] { return make_mixed_marker(probe_bytes, threshold); };
}

namespace {

// Two full endpoints behind one PacketSink; each flow belongs to exactly one
// of them, decided by the id predicate at both the sender and the receiver.
class MixedEndpoint final : public transport::TransportEndpoint {
 public:
  MixedEndpoint(sim::Simulation& sim, net::Host& host, const transport::TransportConfig& cfg,
                stats::FlowObserver* observer, std::function<bool(net::FlowId)> is_background)
      : TransportEndpoint{sim, host, cfg, observer},
        is_background_{std::move(is_background)},
        amrt_{sim, host, cfg, observer},
        dctcp_{sim, host, cfg, observer} {}

  void start_flow(const transport::FlowSpec& spec) override { sub(spec.id).start_flow(spec); }

 protected:
  // deliver() already split by type; re-join and re-dispatch by flow so each
  // sub-endpoint sees the packet through its own deliver() path.
  void on_data(net::Packet&& pkt) override { forward(std::move(pkt)); }
  void on_rts(net::Packet&& pkt) override { forward(std::move(pkt)); }
  void on_grant(net::Packet&& pkt) override { forward(std::move(pkt)); }
  void on_done(net::Packet&& pkt) override { forward(std::move(pkt)); }

 private:
  void forward(net::Packet&& pkt) { sub(pkt.flow).deliver(std::move(pkt)); }
  [[nodiscard]] transport::TransportEndpoint& sub(net::FlowId id) {
    return is_background_(id) ? static_cast<transport::TransportEndpoint&>(dctcp_)
                              : static_cast<transport::TransportEndpoint&>(amrt_);
  }

  std::function<bool(net::FlowId)> is_background_;
  AmrtEndpoint amrt_;
  transport::DctcpEndpoint dctcp_;
};

}  // namespace

std::unique_ptr<transport::TransportEndpoint> make_mixed_endpoint(
    sim::Simulation& sim, net::Host& host, const transport::TransportConfig& cfg,
    stats::FlowObserver* observer, std::function<bool(net::FlowId)> is_background) {
  return std::make_unique<MixedEndpoint>(sim, host, cfg, observer, std::move(is_background));
}

}  // namespace amrt::core
