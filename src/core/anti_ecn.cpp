#include "core/anti_ecn.hpp"

namespace amrt::core {

void AntiEcnMarker::on_dequeue(net::Packet& pkt, sim::TimePoint tx_start,
                               sim::TimePoint last_tx_end, sim::Bandwidth rate) {
  // Every transmission advances the gap reference, but only ECN-capable
  // data packets carry the verdict (grants and trimmed headers are tiny
  // control frames; marking them would convey nothing).
  const bool first_use = !link_ever_used_;
  link_ever_used_ = true;
  if (first_use) probe_tx_ = rate.tx_time(probe_bytes_);
  // Threshold-mode packets (DCTCP, Packet::threshold_ecn) carry the opposite
  // CE semantics; on a mixed fabric they are left to the threshold marker.
  if (pkt.type != net::PacketType::kData || !pkt.ecn_capable || pkt.trimmed ||
      pkt.threshold_ecn) {
    return;
  }

  ++observed_;
  // Eq. (2): spare bandwidth iff the idle gap could have carried one more
  // MTU. A never-used link is idle by definition (CE initialized to 1).
  const sim::Duration gap = tx_start - last_tx_end;
  const bool spare = first_use || gap >= probe_tx_;

  // Eq. (3): CE_final = CE_current & CE_last.
  const bool before = pkt.ce;
  pkt.ce = pkt.ce && spare;
#ifdef AMRT_AUDIT
  // Shadow of Eq. (3) for the auditor: the AND of every hop's verdict,
  // carried out-of-band so delivery can verify that nothing between the
  // markers (queues, ports, switches) set or cleared the real CE bit.
  pkt.audit_ce_expected = pkt.audit_ce_expected && spare;
#endif
  if (pkt.ce) {
    ++kept_marked_;
  } else if (before) {
    ++cleared_;
  }
}

}  // namespace amrt::core
