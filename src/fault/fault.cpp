#include "fault/fault.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "net/network.hpp"
#include "sim/scheduler.hpp"

namespace amrt::fault {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kLinkDown: return "link-down";
    case FaultKind::kLinkUp: return "link-up";
    case FaultKind::kRateScale: return "rate-scale";
    case FaultKind::kDropProb: return "drop-prob";
  }
  return "?";
}

void FaultPlan::flap(std::int32_t port, sim::TimePoint at, sim::Duration outage) {
  add(FaultEvent{at, port, FaultKind::kLinkDown, 0.0});
  add(FaultEvent{at + outage, port, FaultKind::kLinkUp, 0.0});
}

void FaultPlan::rate_dip(std::int32_t port, sim::TimePoint at, double scale,
                         sim::Duration window) {
  add(FaultEvent{at, port, FaultKind::kRateScale, scale});
  add(FaultEvent{at + window, port, FaultKind::kRateScale, 1.0});
}

void FaultPlan::blackhole(std::int32_t port, sim::TimePoint at, double prob,
                          sim::Duration window) {
  add(FaultEvent{at, port, FaultKind::kDropProb, prob});
  add(FaultEvent{at + window, port, FaultKind::kDropProb, 0.0});
}

void FaultPlan::draw(sim::Rng& rng, const std::vector<std::int32_t>& ports,
                     sim::Duration base_rtt, std::uint64_t incidents) {
  if (ports.empty()) return;
  for (std::uint64_t i = 0; i < incidents; ++i) {
    const std::int32_t port = ports[rng.index(ports.size())];
    const auto start =
        sim::TimePoint::zero() + base_rtt * static_cast<std::uint32_t>(rng.uniform_int(0, 200));
    const auto window = base_rtt * static_cast<std::uint32_t>(rng.uniform_int(2, 16));
    const double roll = rng.uniform(0.0, 1.0);
    if (roll < 0.45) {
      flap(port, start, window);
    } else if (roll < 0.80) {
      blackhole(port, start, rng.uniform(0.2, 0.9), window);
    } else {
      rate_dip(port, start, rng.uniform(0.1, 0.5), window);
    }
  }
}

namespace {

[[noreturn]] void bad_plan(const FaultEvent& e, const char* why) {
  throw std::invalid_argument(std::string{"FaultPlan: "} + why + " (event " + to_string(e.kind) +
                              " port " + std::to_string(e.port) + " at " + e.at.str() + ")");
}

}  // namespace

void FaultPlan::validate(std::size_t port_count) const {
  // Terminal state per port, in time order (stable across equal timestamps:
  // a down and its up may share an instant, the up wins by plan order).
  std::vector<const FaultEvent*> ordered;
  ordered.reserve(events_.size());
  for (const FaultEvent& e : events_) ordered.push_back(&e);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const FaultEvent* a, const FaultEvent* b) { return a->at < b->at; });

  struct PortEnd {
    bool down = false;
    double rate = 1.0;
    double prob = 0.0;
  };
  std::unordered_map<std::int32_t, PortEnd> end_state;
  for (const FaultEvent* e : ordered) {
    if (e->port < 0 || static_cast<std::size_t>(e->port) >= port_count) {
      bad_plan(*e, "port outside the network's port pool");
    }
    if (e->at < sim::TimePoint::zero()) bad_plan(*e, "event before t=0");
    PortEnd& s = end_state[e->port];
    switch (e->kind) {
      case FaultKind::kLinkDown:
        s.down = true;
        break;
      case FaultKind::kLinkUp:
        s.down = false;
        break;
      case FaultKind::kRateScale:
        if (e->value <= 0.0 || e->value > 1.0) bad_plan(*e, "rate scale outside (0, 1]");
        s.rate = e->value;
        break;
      case FaultKind::kDropProb:
        if (e->value < 0.0 || e->value > 1.0) bad_plan(*e, "drop probability outside [0, 1]");
        s.prob = e->value;
        break;
    }
  }
  for (const auto& [port, s] : end_state) {
    const FaultEvent probe{sim::TimePoint::zero(), port, FaultKind::kLinkDown, 0.0};
    if (s.down) bad_plan(probe, "unbounded outage: link left down at the end of the plan");
    if (s.rate != 1.0) bad_plan(probe, "unbounded degradation: rate never restored to 1.0");
    if (s.prob != 0.0) bad_plan(probe, "unbounded blackhole: drop probability never cleared");
  }
}

FaultInjector::FaultInjector(net::Network& net, FaultPlan plan)
    : net_{net}, plan_{std::move(plan)} {
  plan_.validate(net_.port_count());
}

void FaultInjector::arm() {
  if (armed_ || plan_.empty()) return;
  armed_ = true;
  sim::Scheduler& sched = net_.scheduler();
  for (const FaultEvent& e : plan_.events()) {
    sched.at(e.at, [this, &e] { apply(e); });
  }
}

void FaultInjector::apply(const FaultEvent& e) {
  switch (e.kind) {
    case FaultKind::kLinkDown:
      net_.set_link_up(e.port, false);
      ++stats_.link_transitions;
      break;
    case FaultKind::kLinkUp:
      net_.set_link_up(e.port, true);
      ++stats_.link_transitions;
      break;
    case FaultKind::kRateScale:
      net_.set_port_rate_scale(e.port, e.value);
      ++stats_.rate_changes;
      break;
    case FaultKind::kDropProb:
      // Mix the plan seed with the port so concurrent blackholes draw
      // independent, reproducible streams.
      net_.set_port_drop_prob(e.port, e.value,
                              plan_.seed ^ (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(e.port) + 1)));
      ++stats_.prob_changes;
      break;
  }
}

}  // namespace amrt::fault
