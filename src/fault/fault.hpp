// Fault-injection subsystem: deterministic, seeded failure schedules for
// the simulated fabric.
//
// A `FaultPlan` is data — an ordered list of timed events against egress
// ports (link down/up, rate degradation, probabilistic blackholing) plus a
// seed for the per-port blackhole streams. Plans are built by hand (unit
// tests), drawn from a seeded stream (harness::fuzz), or parsed from CLI
// knobs (tools), then validated: every perturbation must be restored, so a
// plan describes a *bounded* outage the transports are expected to survive.
//
// A `FaultInjector` arms a plan against a `net::Network`: each event becomes
// one scheduler event that flips the port's state through Network's fault
// API (which also bumps the link-state epoch so ECMP reroutes; see
// RoutingTable::bind_link_state). Everything is driven off the simulation
// clock and the plan's own seed, so runs replay bit-identically and an
// empty plan leaves the simulation byte-for-byte unchanged.
//
// Loss accounting: packets consumed by faults are charged to the owning
// port's `packets_faulted()` counter and, in audit builds, to the ledger's
// `faulted` debit (DropReason::kLinkDown / kBlackhole) — packet and byte
// conservation still close under injected failures. See DESIGN.md §11.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace amrt::net {
class Network;
}

namespace amrt::fault {

enum class FaultKind : std::uint8_t {
  kLinkDown,   // take the port's link down (flushes its queue)
  kLinkUp,     // bring it back
  kRateScale,  // scale the port's line rate by `value` (1.0 restores)
  kDropProb,   // blackhole each enqueued packet with probability `value`
};

[[nodiscard]] const char* to_string(FaultKind k);

struct FaultEvent {
  sim::TimePoint at{};
  std::int32_t port = -1;  // net::PortId (global pool slot)
  FaultKind kind = FaultKind::kLinkDown;
  double value = 0.0;  // kRateScale: factor in (0,1]; kDropProb: prob in [0,1]
};

class FaultPlan {
 public:
  // Seed for the per-port blackhole RNG streams (mixed with the port id, so
  // two blackholed ports drop independently but reproducibly).
  std::uint64_t seed = 1;

  void add(const FaultEvent& e) { events_.push_back(e); }

  // --- convenience builders (each schedules the matching restore) ---------
  // Hard failure: down at `at`, up again after `outage`.
  void flap(std::int32_t port, sim::TimePoint at, sim::Duration outage);
  // Degraded link: rate scaled to `scale` at `at`, restored after `window`.
  void rate_dip(std::int32_t port, sim::TimePoint at, double scale, sim::Duration window);
  // Lossy window: packets blackholed with `prob` during [at, at + window).
  void blackhole(std::int32_t port, sim::TimePoint at, double prob, sim::Duration window);

  [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  // Draws `incidents` random bounded incidents against `ports` into this
  // plan: a link flap (45%), a blackhole window (35%) or a rate dip (20%),
  // each starting within [0, 200] x base_rtt and lasting 2..16 x base_rtt.
  // Consumes a fixed number of draws per incident from `rng`, so callers
  // embedding this in a larger parameter stream keep replay stability.
  void draw(sim::Rng& rng, const std::vector<std::int32_t>& ports, sim::Duration base_rtt,
            std::uint64_t incidents);

  // Structural validation: ports within [0, port_count), values in range,
  // and the plan bounded — every down is eventually matched by an up, every
  // degradation and blackhole window is eventually restored. Throws
  // std::invalid_argument with the offending event's description.
  void validate(std::size_t port_count) const;

 private:
  std::vector<FaultEvent> events_;
};

// Applies a plan to a network: validates it, then schedules one simulation
// event per FaultEvent. The injector must outlive the run (it owns the plan
// the scheduled callbacks read).
class FaultInjector {
 public:
  struct Stats {
    std::uint64_t link_transitions = 0;  // downs + ups actually applied
    std::uint64_t rate_changes = 0;
    std::uint64_t prob_changes = 0;
  };

  FaultInjector(net::Network& net, FaultPlan plan);

  // Schedules every event of the plan. Call once, before the run starts
  // (events in the simulated past would violate clock monotonicity).
  void arm();

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void apply(const FaultEvent& e);

  net::Network& net_;
  FaultPlan plan_;
  Stats stats_;
  bool armed_ = false;
};

}  // namespace amrt::fault
