// Regenerates tests/golden_fct.inc: the pinned golden-seed scenario run
// under every transport, emitted as one C array per protocol.
//
//   build/tools/regen_golden_fct > tests/golden_fct.inc     (or tools/regen_golden.sh)
//
// The fixture is a behaviour lock, not a correctness statement: regenerate
// it only for a change that is *supposed* to alter observable results, and
// say so in the commit message (see the GoldenSeedFctFixtureUnchanged test).
#include <cstdio>

#include "harness/experiment.hpp"

using namespace amrt;

namespace {

// Must match tests/test_determinism.cpp exactly.
harness::ExperimentConfig golden_cfg(transport::Protocol proto) {
  harness::ExperimentConfig cfg;
  cfg.proto = proto;
  cfg.workload = workload::Kind::kWebSearch;
  cfg.load = 0.6;
  cfg.n_flows = 80;
  cfg.leaves = 2;
  cfg.spines = 2;
  cfg.hosts_per_leaf = 4;
  cfg.seed = 42;
  return cfg;
}

void emit(const char* suffix, transport::Protocol proto) {
  const auto r = harness::run_leaf_spine(golden_cfg(proto));
  std::printf("inline constexpr GoldenRecord kGoldenFct%s[] = {\n", suffix);
  for (const auto& rec : r.flow_records) {
    std::printf("    {%lluULL, %lluULL, %lldLL, %lldLL},\n",
                static_cast<unsigned long long>(rec.flow),
                static_cast<unsigned long long>(rec.bytes),
                static_cast<long long>(rec.start.ns()), static_cast<long long>(rec.end.ns()));
  }
  std::printf("};\n");
}

}  // namespace

int main() {
  std::printf(
      "// Golden-seed FCT fixtures: WebSearch, load 0.6, 80 flows, 2x2x4\n"
      "// leaf-spine, seed 42, one array per transport. The first four arrays\n"
      "// were last regenerated when the duplicate-repair-request fix landed\n"
      "// (the golden load level takes congestion drops, so de-duplicating\n"
      "// repair grants legitimately moves FCTs); the DCTCP array was pinned\n"
      "// when the sender-driven wing landed. Regenerate with\n"
      "// tools/regen_golden.sh only for a change that is *supposed* to alter\n"
      "// results, and say so in the commit; tools/regen_golden.sh --check\n"
      "// gates that the unarmed fault machinery never moves a byte here.\n"
      "// Fields: flow id, bytes, start ns, end ns.\n");
  emit("Amrt", transport::Protocol::kAmrt);
  std::printf("\n");
  emit("Phost", transport::Protocol::kPhost);
  std::printf("\n");
  emit("Homa", transport::Protocol::kHoma);
  std::printf("\n");
  emit("Ndp", transport::Protocol::kNdp);
  std::printf("\n");
  emit("Dctcp", transport::Protocol::kDctcp);
  return 0;
}
