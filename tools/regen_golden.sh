#!/usr/bin/env sh
# Rebuilds the golden FCT fixture from the release build. Run from the repo
# root after a change that is *supposed* to alter observable results:
#
#   cmake --build build --target regen_golden_fct && tools/regen_golden.sh
#
# With --check, regenerates to a temp file and asserts it is byte-identical
# to the committed fixture (exit 1 with a diff otherwise). This is the
# faults-disabled determinism gate: fault-injection machinery compiled in
# but not armed must not change a single byte of the golden run.
set -eu
cd "$(dirname "$0")/.."

if [ "${1:-}" = "--check" ]; then
  tmp="$(mktemp)"
  trap 'rm -f "$tmp"' EXIT
  build/tools/regen_golden_fct > "$tmp"
  if cmp -s "$tmp" tests/golden_fct.inc; then
    echo "golden fixture byte-identical"
  else
    echo "golden fixture DRIFTED:" >&2
    diff -u tests/golden_fct.inc "$tmp" >&2 || true
    exit 1
  fi
  # The fidelity switch (DESIGN.md §15) must be inert on the packet path:
  # spelling --fidelity=packet explicitly has to produce byte-for-byte the
  # same run as the default. Anything less means the flow-level fast path
  # leaked into the packet simulator.
  default_out="$(mktemp)"
  packet_out="$(mktemp)"
  trap 'rm -f "$tmp" "$default_out" "$packet_out"' EXIT
  build/tools/amrt_sim --flows=200 --seed=7 > "$default_out"
  build/tools/amrt_sim --flows=200 --seed=7 --fidelity=packet > "$packet_out"
  if cmp -s "$default_out" "$packet_out"; then
    echo "packet fidelity byte-identical to default"
  else
    echo "--fidelity=packet DIVERGED from the default run:" >&2
    diff -u "$default_out" "$packet_out" >&2 || true
    exit 1
  fi
  exit 0
fi

build/tools/regen_golden_fct > tests/golden_fct.inc.new
mv tests/golden_fct.inc.new tests/golden_fct.inc
echo "wrote tests/golden_fct.inc"
