#!/usr/bin/env sh
# Rebuilds the golden FCT fixture from the release build. Run from the repo
# root after a change that is *supposed* to alter observable results:
#
#   cmake --build build --target regen_golden_fct && tools/regen_golden.sh
set -eu
cd "$(dirname "$0")/.."
build/tools/regen_golden_fct > tests/golden_fct.inc.new
mv tests/golden_fct.inc.new tests/golden_fct.inc
echo "wrote tests/golden_fct.inc"
