// amrt_sim — command-line front end for the leaf-spine experiment runner.
//
// Runs one experiment point — or, with --seeds=N, a parallel sweep over N
// consecutive seeds — and prints one result row per point, so it composes
// with shell loops and plotting scripts:
//
//   amrt_sim --proto=AMRT --workload=DM --load=0.7 --flows=300 --seed=3
//   amrt_sim --proto=pHost --workload=WSc --leaves=10 --spines=8 ...
//            --hosts-per-leaf=40 --link-delay-us=100 --csv
//   amrt_sim --proto=AMRT --seeds=8 --threads=4 --json=sweep.json
//
// All flags are optional; defaults match the laptop-scale fabric used by the
// figure benches.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "harness/sweep.hpp"
#include "net/topology.hpp"
#include "workload/flow_trace.hpp"

using namespace amrt;

namespace {

void usage() {
  std::puts(
      "amrt_sim [options]\n"
      "  --proto=AMRT|pHost|Homa|NDP|DCTCP   transport under test (default AMRT)\n"
      "  --fidelity=packet|flow|mixed  simulation fidelity (default packet; see\n"
      "                                DESIGN.md §15 — flow runs the fluid fast path,\n"
      "                                mixed keeps foreground flows packet-level)\n"
      "  --flow-background=FRAC        mixed fidelity: fraction of flows (by id)\n"
      "                                simulated fluidly (default 0.5)\n"
      "  --mixed=FRAC                  carry FRAC of flows (by id) on DCTCP background\n"
      "                                senders under an AMRT foreground (requires\n"
      "                                --proto=AMRT; serial-only — excludes --shards)\n"
      "  --workload=WSv|CF|HC|WSc|DM   flow-size distribution (default WSc)\n"
      "  --workload-engine=legacy|skewed|fanout|trace\n"
      "                                traffic engine (default legacy — byte-identical\n"
      "                                to older builds; see DESIGN.md §14)\n"
      "  --pairs=uniform|hotrack|permutation   pair model (skewed engine)\n"
      "  --arrivals=poisson|fixed      arrival model (default poisson)\n"
      "  --hosts-per-rack=N --hot-racks=F --hot-weight=F --locality=F\n"
      "                                hot-rack matrix knobs (skewed engine)\n"
      "  --coflow=F --coflow-width=N   expand F of arrivals into incast groups\n"
      "  --fanout=N --response-bytes=B fan-out engine: N responses per request\n"
      "                                (B=0 draws sizes from the workload CDF)\n"
      "  --trace=PATH                  replay a flow trace (engine=trace)\n"
      "  --trace-out=PATH              dump the generated schedule as a trace\n"
      "                                (single-point runs only)\n"
      "  --validate-trace=PATH         parse and validate a trace file, then exit\n"
      "  --load=X                      offered load fraction (default 0.5)\n"
      "  --flows=N                     number of flows (default 400)\n"
      "  --leaves=N --spines=N --hosts-per-leaf=N   fabric shape (4/4/8)\n"
      "  --link-gbps=N                 link rate (default 10)\n"
      "  --link-delay-us=N             per-link propagation (default 10)\n"
      "  --buffer-pkts=N               switch buffer (default 128)\n"
      "  --overcommit=K                Homa overcommitment degree (default 2)\n"
      "  --spray                       per-packet multipath instead of ECMP\n"
      "  --faults=N                    inject N random bounded fault incidents (link\n"
      "                                flaps, blackhole windows, rate dips; default 0)\n"
      "  --fault-seed=S                seed for the fault schedule (default 1)\n"
      "  --seed=S                      RNG seed (default 1)\n"
      "  --shards=N                    partition the fabric across N shard threads\n"
      "                                (default 1 = serial; excludes --faults; sharded\n"
      "                                runs report utilization as 0 — see DESIGN.md §12)\n"
      "  --seeds=N                     sweep seeds S..S+N-1 in parallel (default 1)\n"
      "  --threads=N                   sweep worker threads (0 = one per core)\n"
      "  --json=PATH                   dump sweep results as JSON\n"
      "  --csv                         machine-readable one-line-per-point output\n"
      "  --fct-csv=PATH                dump per-flow completion records (first point)\n");
}

bool match(const std::string& arg, const char* prefix, std::string& value) {
  const std::string p = prefix;
  if (arg.rfind(p, 0) == 0) {
    value = arg.substr(p.size());
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  harness::ExperimentConfig cfg;
  cfg.proto = transport::Protocol::kAmrt;
  cfg.workload = workload::Kind::kWebSearch;
  cfg.n_flows = 400;
  bool csv = false;
  std::string fct_csv_path;
  std::string json_path;
  std::size_t n_seeds = 1;
  unsigned threads = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    try {
      if (match(arg, "--proto=", v)) {
        cfg.proto = transport::protocol_from_string(v);
      } else if (match(arg, "--fidelity=", v)) {
        cfg.fidelity = harness::fidelity_from_string(v);
      } else if (match(arg, "--flow-background=", v)) {
        cfg.flow_background_fraction = std::stod(v);
      } else if (match(arg, "--mixed=", v)) {
        cfg.background_dctcp_fraction = std::stod(v);
      } else if (match(arg, "--workload=", v)) {
        cfg.workload = workload::kind_from_string(v);
      } else if (match(arg, "--workload-engine=", v)) {
        cfg.engine.engine = workload::engine_from_string(v);
      } else if (match(arg, "--pairs=", v)) {
        cfg.engine.pairs = workload::pair_model_from_string(v);
      } else if (match(arg, "--arrivals=", v)) {
        cfg.engine.arrivals = workload::arrival_model_from_string(v);
      } else if (match(arg, "--hosts-per-rack=", v)) {
        cfg.engine.skew.hosts_per_rack = std::stoul(v);
      } else if (match(arg, "--hot-racks=", v)) {
        cfg.engine.skew.hot_rack_fraction = std::stod(v);
      } else if (match(arg, "--hot-weight=", v)) {
        cfg.engine.skew.hot_weight = std::stod(v);
      } else if (match(arg, "--locality=", v)) {
        cfg.engine.skew.locality = std::stod(v);
      } else if (match(arg, "--coflow=", v)) {
        cfg.engine.coflow_fraction = std::stod(v);
      } else if (match(arg, "--coflow-width=", v)) {
        cfg.engine.coflow_width = std::stoul(v);
      } else if (match(arg, "--fanout=", v)) {
        cfg.engine.fanout = std::stoul(v);
      } else if (match(arg, "--response-bytes=", v)) {
        cfg.engine.response_bytes = std::stoull(v);
      } else if (match(arg, "--trace=", v)) {
        cfg.engine.engine = workload::Engine::kTrace;
        cfg.engine.trace_path = v;
      } else if (match(arg, "--trace-out=", v)) {
        cfg.trace_out = v;
      } else if (match(arg, "--validate-trace=", v)) {
        try {
          const auto flows = workload::read_trace_file(v);
          std::printf("%s: ok, %zu flows, last start %s\n", v.c_str(), flows.size(),
                      flows.back().start.str().c_str());
          return 0;
        } catch (const workload::TraceError& e) {
          std::fprintf(stderr, "%s\n", e.what());
          return 1;
        }
      } else if (match(arg, "--load=", v)) {
        cfg.load = std::stod(v);
      } else if (match(arg, "--flows=", v)) {
        cfg.n_flows = std::stoul(v);
      } else if (match(arg, "--leaves=", v)) {
        cfg.leaves = std::stoi(v);
      } else if (match(arg, "--spines=", v)) {
        cfg.spines = std::stoi(v);
      } else if (match(arg, "--hosts-per-leaf=", v)) {
        cfg.hosts_per_leaf = std::stoi(v);
      } else if (match(arg, "--link-gbps=", v)) {
        cfg.link_rate = sim::Bandwidth::gbps(std::stoll(v));
      } else if (match(arg, "--link-delay-us=", v)) {
        cfg.link_delay = sim::Duration::microseconds(std::stoll(v));
      } else if (match(arg, "--buffer-pkts=", v)) {
        cfg.queues.buffer_pkts = std::stoul(v);
      } else if (match(arg, "--overcommit=", v)) {
        cfg.homa_overcommit = std::stoi(v);
      } else if (match(arg, "--faults=", v)) {
        cfg.fault_incidents = std::stoul(v);
      } else if (match(arg, "--fault-seed=", v)) {
        cfg.fault_seed = std::stoull(v);
      } else if (match(arg, "--seed=", v)) {
        cfg.seed = std::stoull(v);
      } else if (match(arg, "--shards=", v)) {
        cfg.shards = static_cast<unsigned>(std::stoul(v));
        if (cfg.shards == 0) cfg.shards = 1;
      } else if (match(arg, "--seeds=", v)) {
        n_seeds = std::stoul(v);
        if (n_seeds == 0) n_seeds = 1;
      } else if (match(arg, "--threads=", v)) {
        threads = static_cast<unsigned>(std::stoul(v));
      } else if (match(arg, "--json=", v)) {
        json_path = v;
      } else if (match(arg, "--fct-csv=", v)) {
        fct_csv_path = v;
      } else if (arg == "--spray") {
        cfg.multipath = net::MultipathMode::kPacketSpray;
      } else if (arg == "--csv") {
        csv = true;
      } else if (arg == "--help" || arg == "-h") {
        usage();
        return 0;
      } else {
        std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
        usage();
        return 2;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad option %s: %s\n", arg.c_str(), e.what());
      return 2;
    }
  }

  if (cfg.shards > 1 && cfg.fault_incidents > 0) {
    std::fprintf(stderr, "amrt_sim: --faults and --shards are mutually exclusive\n");
    return 2;
  }
  if (cfg.engine.engine == workload::Engine::kTrace && cfg.engine.trace_path.empty()) {
    std::fprintf(stderr, "amrt_sim: --workload-engine=trace needs --trace=PATH\n");
    return 2;
  }
  if (!cfg.trace_out.empty() && n_seeds > 1) {
    std::fprintf(stderr, "amrt_sim: --trace-out only supports a single point (drop --seeds)\n");
    return 2;
  }
  if (cfg.background_dctcp_fraction > 0.0) {
    if (cfg.proto != transport::Protocol::kAmrt) {
      std::fprintf(stderr, "amrt_sim: --mixed requires --proto=AMRT\n");
      return 2;
    }
    if (cfg.shards > 1) {
      std::fprintf(stderr, "amrt_sim: --mixed and --shards are mutually exclusive\n");
      return 2;
    }
  }
  if (cfg.fidelity != harness::Fidelity::kPacket) {
    if (cfg.shards > 1) {
      std::fprintf(stderr, "amrt_sim: --fidelity=%s and --shards are mutually exclusive\n",
                   harness::to_string(cfg.fidelity));
      return 2;
    }
    if (cfg.fault_incidents > 0) {
      std::fprintf(stderr, "amrt_sim: --fidelity=%s and --faults are mutually exclusive\n",
                   harness::to_string(cfg.fidelity));
      return 2;
    }
    if (cfg.fidelity == harness::Fidelity::kMixed && cfg.background_dctcp_fraction > 0.0) {
      std::fprintf(stderr, "amrt_sim: --fidelity=mixed and --mixed are mutually exclusive\n");
      return 2;
    }
  }

  // One point per seed; a single run is just a one-point sweep.
  std::vector<harness::ExperimentConfig> points;
  for (std::size_t s = 0; s < n_seeds; ++s) {
    auto point = cfg;
    point.seed = cfg.seed + s;
    points.push_back(point);
  }

  harness::SweepOptions sopts;
  sopts.threads = threads;
  if (points.size() > 1) {
    sopts.on_progress = [](std::size_t done, std::size_t total) {
      std::fprintf(stderr, "  amrt_sim %zu/%zu\n", done, total);
    };
  }
  harness::SweepRunner runner{sopts};
  const auto results = runner.run(points);

  if (!fct_csv_path.empty()) {
    std::ofstream out{fct_csv_path};
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", fct_csv_path.c_str());
      return 2;
    }
    harness::write_fct_csv(out, results.front().flow_records);
  }
  if (!json_path.empty()) {
    std::ofstream out{json_path};
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
    harness::write_results_json(out, points, results);
  }

  if (csv) {
    std::printf("proto,workload,engine,load,flows,seed,afct_us,p99_us,small_afct_us,large_afct_us,"
                "slowdown,utilization,max_queue,drops,trims,faulted,completed,events,wall_s,"
                "groups,group_p99_us,requests,request_p99_us\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto& p = points[i];
      const auto& r = results[i];
      std::printf(
          "%s,%s,%s,%.2f,%zu,%llu,%.1f,%.1f,%.1f,%.1f,%.2f,%.4f,%zu,%llu,%llu,%llu,%zu,%llu,%.2f,"
          "%zu,%.1f,%zu,%.1f\n",
          transport::to_string(p.proto), workload::abbrev(p.workload),
          workload::to_string(p.engine.engine), p.load, p.n_flows,
          static_cast<unsigned long long>(p.seed), r.fct_all.afct_us,
          r.fct_all.p99_us, r.fct_small.afct_us, r.fct_large.afct_us,
          r.fct_all.mean_slowdown, r.mean_utilization, r.max_queue_pkts,
          static_cast<unsigned long long>(r.drops), static_cast<unsigned long long>(r.trims),
          static_cast<unsigned long long>(r.faulted), r.flows_completed,
          static_cast<unsigned long long>(r.events), r.wall_seconds, r.group_stats.groups,
          r.group_stats.p99_us, r.request_stats.groups, r.request_stats.p99_us);
    }
    return 0;
  }

  bool all_complete = true;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    const auto& r = results[i];
    std::printf("%s on %s, load %.2f, %zu flows (seed %llu)\n", transport::to_string(p.proto),
                workload::name(p.workload), p.load, p.n_flows,
                static_cast<unsigned long long>(p.seed));
    std::printf("  completed:    %zu/%zu flows (%llu drops, %llu trims, %llu faulted)\n",
                r.flows_completed, r.flows_started, static_cast<unsigned long long>(r.drops),
                static_cast<unsigned long long>(r.trims),
                static_cast<unsigned long long>(r.faulted));
    std::printf("  FCT:          avg %.1fus, p99 %.1fus, small %.1fus, large %.1fus, slowdown %.2f\n",
                r.fct_all.afct_us, r.fct_all.p99_us, r.fct_small.afct_us, r.fct_large.afct_us,
                r.fct_all.mean_slowdown);
    if (r.group_stats.groups > 0) {
      std::printf("  groups:       %zu/%zu complete, cct p99 %.1fus, max %.1fus\n",
                  r.group_stats.complete, r.group_stats.groups, r.group_stats.p99_us,
                  r.group_stats.max_us);
    }
    if (r.request_stats.groups > 0) {
      std::printf("  requests:     %zu/%zu complete, p99 %.1fus, max %.1fus\n",
                  r.request_stats.complete, r.request_stats.groups, r.request_stats.p99_us,
                  r.request_stats.max_us);
    }
    if (p.background_dctcp_fraction > 0.0) {
      std::printf("  foreground:   AMRT avg %.1fus, p99 %.1fus (%zu flows)\n",
                  r.fct_foreground.afct_us, r.fct_foreground.p99_us, r.fct_foreground.completed);
      std::printf("  background:   DCTCP avg %.1fus, p99 %.1fus (%zu flows)\n",
                  r.fct_background.afct_us, r.fct_background.p99_us, r.fct_background.completed);
    }
    std::printf("  utilization:  %.1f%% (byte-weighted over active downlinks)\n",
                100.0 * r.mean_utilization);
    std::printf("  max queue:    %zu packets\n", r.max_queue_pkts);
    std::printf("  simulated %.3fs in %.2fs wall (%llu events)\n", r.sim_seconds, r.wall_seconds,
                static_cast<unsigned long long>(r.events));
    all_complete = all_complete && r.flows_completed == r.flows_started;
  }
  return all_complete ? 0 : 1;
}
