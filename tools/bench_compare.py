#!/usr/bin/env python3
"""Interleaved A/B comparison of micro_core benchmarks.

Runs two micro_core binaries -- a baseline and a candidate -- in alternating
rounds (A B A B ...) so slow drift in machine load hits both sides equally,
then prints a per-benchmark delta table of CPU time. Interleaving plus
median-of-rounds is what makes small (10-30%) wins trustworthy on a noisy
box; a single back-to-back run is not.

Typical use, comparing a git ref against the working tree:

    python3 tools/bench_compare.py --baseline-ref <ref>

which builds the ref's micro_core in a temporary git worktree (Release, same
generator as ./build) and the working tree's in ./build. Or point it at two
existing binaries:

    python3 tools/bench_compare.py --baseline-bin old/micro_core \
        --test-bin build/bench/micro_core

Exits non-zero if any benchmark regresses by more than --fail-above (off by
default), so it can gate CI.

A second mode diffs two bench_scale JSON reports (the fat-tree macro
benchmark) instead of running anything:

    python3 tools/bench_compare.py --scale old.json new.json

which prints per-transport deltas of wall time, events/sec and peak RSS.

A third mode diffs two bench_coexist JSON reports (the mixed-transport
leaf-spine macro benchmark, DESIGN.md section 13):

    python3 tools/bench_compare.py --coexist bench/baselines/coexist_leafspine.json new.json

which prints per-mode (amrt_solo / dctcp_solo / mixed) deltas of average and
p99 FCT, mean downlink utilization and the foreground/background FCT split.
--fail-above here gates the worst p99-FCT ratio, not wall time: the coexist
benchmark exists to catch behavioural regressions (foreground tail blowing
up when background DCTCP flows join), not machine noise.

A fourth mode diffs two bench_fanout JSON reports (the front-end fan-out
macro benchmark, DESIGN.md section 14):

    python3 tools/bench_compare.py --fanout bench/baselines/fanout_leafspine.json new.json

which prints per-mode (amrt / dctcp / mixed) deltas of per-request
completion time (mean/p99/max) next to the member-flow FCT. --fail-above
gates the worst request-p99 ratio -- the request tail is the number the
fan-out scenario exists to protect.
"""

import argparse
import json
import os
import shutil
import statistics
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run(cmd, **kw):
    kw.setdefault("check", True)
    return subprocess.run(cmd, **kw)


def build_ref(ref, jobs):
    """Builds micro_core at `ref` in a throwaway worktree; returns binary path."""
    wt = tempfile.mkdtemp(prefix="bench_baseline_")
    run(["git", "-C", REPO, "worktree", "add", "--detach", wt, ref],
        stdout=subprocess.DEVNULL)
    build = os.path.join(wt, "build")
    run(["cmake", "-B", build, "-S", wt, "-DCMAKE_BUILD_TYPE=Release"],
        stdout=subprocess.DEVNULL)
    run(["cmake", "--build", build, "--target", "micro_core", "-j", str(jobs)],
        stdout=subprocess.DEVNULL)
    return os.path.join(build, "bench", "micro_core"), wt


def cleanup_worktree(wt):
    run(["git", "-C", REPO, "worktree", "remove", "--force", wt],
        stdout=subprocess.DEVNULL, check=False)
    shutil.rmtree(wt, ignore_errors=True)


def run_bench(binary, bench_filter, min_time):
    out = subprocess.run(
        [binary,
         f"--benchmark_filter={bench_filter}",
         f"--benchmark_min_time={min_time}",
         "--benchmark_format=json"],
        check=True, capture_output=True, text=True)
    doc = json.loads(out.stdout)
    res = {}
    for b in doc["benchmarks"]:
        if b.get("run_type", "iteration") != "iteration":
            continue  # skip _mean/_median aggregate rows
        res[b["name"]] = (b["cpu_time"], b["time_unit"])
    return res


def load_scale_report(path):
    """bench_scale JSON -> {name: row dict}, skipping aggregate rows."""
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        rows[b["name"]] = b
    return rows


def ratio_of(new, old):
    """new/old, or None when the baseline metric is zero or missing.

    A zero/absent baseline (e.g. an older bench build that didn't emit the
    metric, or a mode that completed no flows) has no meaningful ratio; it is
    rendered as n/a and never counts toward the --fail-above gate.
    """
    if not old or not new:
        return None
    return new / old


def fmt_ratio(ratio, width=6):
    return f"{ratio:>{width}.3f}" if ratio is not None else f"{'n/a':>{width}}"


def compare_scale(baseline_path, test_path, fail_above):
    base = load_scale_report(baseline_path)
    test = load_scale_report(test_path)
    names = sorted(set(base) & set(test))
    if not names:
        sys.exit("error: the two reports share no benchmark names")
    gone = sorted(set(base) - set(test))
    if gone:
        print(f"(benchmarks present only in the baseline: {', '.join(gone)})")

    wname = max(len(n) for n in names)
    header = (f"{'benchmark':<{wname}}  {'time old':>10}  {'time new':>10}  {'ratio':>6}  "
              f"{'Mev/s old':>9}  {'Mev/s new':>9}  {'rss old':>8}  {'rss new':>8}")
    print(header)
    print("-" * len(header))
    worst = 0.0
    for name in names:
        b, t = base[name], test[name]
        ratio = ratio_of(t.get("real_time", 0), b.get("real_time", 0))
        if ratio is not None:
            worst = max(worst, ratio)
        print(f"{name:<{wname}}  {b.get('real_time', 0):>8.1f}ms  "
              f"{t.get('real_time', 0):>8.1f}ms  "
              f"{fmt_ratio(ratio)}  "
              f"{b.get('events_per_second', 0) / 1e6:>9.2f}  "
              f"{t.get('events_per_second', 0) / 1e6:>9.2f}  "
              f"{b.get('peak_rss_mb', 0):>6.1f}MB  {t.get('peak_rss_mb', 0):>6.1f}MB")
    print("\n(wall time per run; ratio < 1 means the candidate is faster)")
    for name in sorted(set(test) - set(base)):
        t = test[name]
        print(f"new: {name}  {t.get('real_time', 0):.1f}ms  "
              f"{t.get('events_per_second', 0) / 1e6:.2f}Mev/s")
    if fail_above is not None and worst > fail_above:
        sys.exit(f"FAIL: worst ratio {worst:.3f} exceeds --fail-above {fail_above}")


def compare_coexist(baseline_path, test_path, fail_above):
    base = load_scale_report(baseline_path)
    test = load_scale_report(test_path)
    names = sorted(set(base) & set(test))
    if not names:
        sys.exit("error: the two reports share no benchmark names")
    gone = sorted(set(base) - set(test))
    if gone:
        print(f"(modes present only in the baseline: {', '.join(gone)})")

    wname = max(len(n) for n in names)
    header = (f"{'mode':<{wname}}  {'afct old':>10}  {'afct new':>10}  "
              f"{'p99 old':>10}  {'p99 new':>10}  {'ratio':>6}  "
              f"{'util old':>8}  {'util new':>8}")
    print(header)
    print("-" * len(header))
    worst = 0.0
    for name in names:
        b, t = base[name], test[name]
        ratio = ratio_of(t.get("p99_us", 0), b.get("p99_us", 0))
        if ratio is not None:
            worst = max(worst, ratio)
        print(f"{name:<{wname}}  {b.get('afct_us', 0):>8.1f}us  {t.get('afct_us', 0):>8.1f}us  "
              f"{b.get('p99_us', 0):>8.1f}us  {t.get('p99_us', 0):>8.1f}us  {fmt_ratio(ratio)}  "
              f"{b.get('mean_utilization', 0) * 100:>7.1f}%  "
              f"{t.get('mean_utilization', 0) * 100:>7.1f}%")
        for pop in ("foreground", "background"):
            bs, ts = b.get(pop, {}), t.get(pop, {})
            if bs.get("completed", 0) == 0 and ts.get("completed", 0) == 0:
                continue
            print(f"{'  ' + pop:<{wname}}  {bs.get('afct_us', 0):>8.1f}us  "
                  f"{ts.get('afct_us', 0):>8.1f}us  {bs.get('p99_us', 0):>8.1f}us  "
                  f"{ts.get('p99_us', 0):>8.1f}us  {'':>6}  "
                  f"{bs.get('completed', 0):>7}f  {ts.get('completed', 0):>7}f")
    print("\n(simulated FCT; ratio is p99 new/old, < 1 means the candidate improved)")
    for name in sorted(set(test) - set(base)):
        t = test[name]
        print(f"new: {name}  afct {t.get('afct_us', 0):.1f}us  p99 {t.get('p99_us', 0):.1f}us")
    if fail_above is not None and worst > fail_above:
        sys.exit(f"FAIL: worst p99 ratio {worst:.3f} exceeds --fail-above {fail_above}")


def compare_fanout(baseline_path, test_path, fail_above):
    base = load_scale_report(baseline_path)
    test = load_scale_report(test_path)
    names = sorted(set(base) & set(test))
    if not names:
        sys.exit("error: the two reports share no benchmark names")
    gone = sorted(set(base) - set(test))
    if gone:
        print(f"(modes present only in the baseline: {', '.join(gone)})")

    wname = max(len(n) for n in names)
    header = (f"{'mode':<{wname}}  {'req p99 old':>11}  {'req p99 new':>11}  {'ratio':>6}  "
              f"{'req mean new':>12}  {'req max new':>11}  {'flow p99 new':>12}")
    print(header)
    print("-" * len(header))
    worst = 0.0
    for name in names:
        b, t = base[name], test[name]
        old_p99 = b.get("request_p99_us", 0)
        new_p99 = t.get("request_p99_us", 0)
        ratio = ratio_of(new_p99, old_p99)
        if ratio is not None:
            worst = max(worst, ratio)
        print(f"{name:<{wname}}  {old_p99:>9.1f}us  {new_p99:>9.1f}us  {fmt_ratio(ratio)}  "
              f"{t.get('request_mean_us', 0):>10.1f}us  {t.get('request_max_us', 0):>9.1f}us  "
              f"{t.get('p99_us', 0):>10.1f}us")
        if (b.get("requests_complete", 0) != b.get("requests", 0)
                or t.get("requests_complete", 0) != t.get("requests", 0)):
            print(f"{'  (incomplete)':<{wname}}  "
                  f"{b.get('requests_complete', 0)}/{b.get('requests', 0)} old, "
                  f"{t.get('requests_complete', 0)}/{t.get('requests', 0)} new")
    print("\n(per-request completion time: first member start -> last member finish;"
          "\n ratio is request p99 new/old, < 1 means the candidate improved)")
    for name in sorted(set(test) - set(base)):
        t = test[name]
        print(f"new: {name}  req p99 {t.get('request_p99_us', 0):.1f}us  "
              f"flow p99 {t.get('p99_us', 0):.1f}us")
    if fail_above is not None and worst > fail_above:
        sys.exit(f"FAIL: worst request-p99 ratio {worst:.3f} exceeds --fail-above {fail_above}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    src = ap.add_mutually_exclusive_group(required=True)
    src.add_argument("--baseline-ref", help="git ref to build as the baseline")
    src.add_argument("--baseline-bin", help="path to a prebuilt baseline micro_core")
    src.add_argument("--scale", nargs=2, metavar=("BASELINE_JSON", "TEST_JSON"),
                     help="diff two bench_scale JSON reports instead of running micro_core")
    src.add_argument("--coexist", nargs=2, metavar=("BASELINE_JSON", "TEST_JSON"),
                     help="diff two bench_coexist JSON reports (FCT + utilization per mode)")
    src.add_argument("--fanout", nargs=2, metavar=("BASELINE_JSON", "TEST_JSON"),
                     help="diff two bench_fanout JSON reports (per-request completion per mode)")
    ap.add_argument("--test-bin", default=os.path.join(REPO, "build", "bench", "micro_core"),
                    help="candidate binary (default: build/bench/micro_core)")
    ap.add_argument("--filter", default=".", help="benchmark name regex")
    ap.add_argument("--rounds", type=int, default=7,
                    help="interleaved A/B rounds (default 7; median is reported)")
    ap.add_argument("--min-time", default="0.2",
                    help="per-benchmark --benchmark_min_time seconds (default 0.2)")
    ap.add_argument("--fail-above", type=float, default=None,
                    help="exit 1 if any benchmark's cpu-time ratio (new/old) exceeds this")
    ap.add_argument("-j", "--jobs", type=int, default=os.cpu_count() or 4)
    args = ap.parse_args()

    if args.scale:
        compare_scale(args.scale[0], args.scale[1], args.fail_above)
        return
    if args.coexist:
        compare_coexist(args.coexist[0], args.coexist[1], args.fail_above)
        return
    if args.fanout:
        compare_fanout(args.fanout[0], args.fanout[1], args.fail_above)
        return

    worktree = None
    try:
        if args.baseline_ref:
            print(f"building baseline micro_core at {args.baseline_ref} ...", flush=True)
            baseline_bin, worktree = build_ref(args.baseline_ref, args.jobs)
        else:
            baseline_bin = args.baseline_bin

        for binary in (baseline_bin, args.test_bin):
            if not os.access(binary, os.X_OK):
                sys.exit(f"error: {binary} is not an executable")

        base_samples, test_samples = {}, {}
        units = {}
        for r in range(args.rounds):
            print(f"round {r + 1}/{args.rounds} ...", flush=True)
            for binary, sink in ((baseline_bin, base_samples), (args.test_bin, test_samples)):
                for name, (cpu, unit) in run_bench(binary, args.filter, args.min_time).items():
                    sink.setdefault(name, []).append(cpu)
                    units[name] = unit

        names = sorted(set(base_samples) & set(test_samples))
        new_only = sorted(set(test_samples) - set(base_samples))
        gone = sorted(set(base_samples) - set(test_samples))
        if gone:
            print(f"(benchmarks present only in the baseline: {', '.join(gone)})")

        wname = max((len(n) for n in names), default=10)
        header = (f"{'benchmark':<{wname}}  {'baseline':>12}  {'candidate':>12}  "
                  f"{'ratio':>7}  {'speedup':>8}")
        print()
        print(header)
        print("-" * len(header))
        worst = 0.0
        for name in names:
            old = statistics.median(base_samples[name])
            new = statistics.median(test_samples[name])
            ratio = new / old if old else float("inf")
            worst = max(worst, ratio)
            unit = units[name]
            print(f"{name:<{wname}}  {old:>10.3f}{unit:>2}  {new:>10.3f}{unit:>2}  "
                  f"{ratio:>7.3f}  {1 / ratio:>7.2f}x")
        print(f"\n(cpu time, median of {args.rounds} interleaved rounds; "
              f"ratio < 1 means the candidate is faster)")

        if new_only:
            print("\nnew benchmarks (no baseline counterpart):")
            for name in new_only:
                new = statistics.median(test_samples[name])
                print(f"  {name:<{wname}}  {new:>10.3f}{units[name]:>2}")

        if args.fail_above is not None and worst > args.fail_above:
            sys.exit(f"FAIL: worst ratio {worst:.3f} exceeds --fail-above {args.fail_above}")
    finally:
        if worktree:
            cleanup_worktree(worktree)


if __name__ == "__main__":
    main()
