// Deterministic scenario fuzzer CLI (see src/harness/fuzz.hpp).
//
// Sweeps seeded random scenarios across topologies and transports and checks
// the cross-protocol oracles; in AMRT_AUDIT builds every case additionally
// runs under the invariant auditor. On failure each case prints its one-line
// reproduction command, e.g.
//
//   scenario_fuzz --seed 7 --topo dumbbell --transport ndp
//
// which re-runs exactly that case (same parameters, same flows, same hash).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "audit/auditor.hpp"
#include "harness/fuzz.hpp"

namespace {

using namespace amrt;
using harness::fuzz::CaseConfig;
using harness::fuzz::CaseResult;
using harness::fuzz::FuzzOptions;
using harness::fuzz::Topo;

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed N] [--seeds N] [--topo leafspine|dumbbell|chain|fattree|all]\n"
               "          [--transport amrt|phost|homa|ndp|dctcp|all] [--threads N] [--shards N]\n"
               "          [--faults] [--mixed] [--workload-engine] [--keep-going] [--quiet]\n"
               "\n"
               "  --seed N       first seed (default 1); with --seeds 1, runs exactly one case\n"
               "  --seeds N      seeds per (topology, transport) pair (default 25)\n"
               "  --shards N     run every case partitioned across N worker threads (fat-tree\n"
               "                 and leaf-spine only; other topologies are skipped). Mutually\n"
               "                 exclusive with --faults and --mixed\n"
               "  --faults       inject a seeded fault schedule (link flaps, blackhole\n"
               "                 windows, rate dips) into every case; oracles must still hold\n"
               "  --mixed        mixed transports: AMRT foreground + a drawn fraction of DCTCP\n"
               "                 background flows on a shared strict-priority fabric. Restricts\n"
               "                 the transport axis to AMRT; serial-only\n"
               "  --workload-engine\n"
               "                 draw a non-legacy traffic engine per case (skewed matrices\n"
               "                 with coflow groups, or fan-out requests); adds the group-\n"
               "                 accounting oracle on top of the standard four\n"
               "  --keep-going   record audit violations instead of aborting on the first\n"
               "  --quiet        only print failures and the final summary\n",
               argv0);
}

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(s, &end, 10);
  return end != s && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  FuzzOptions opts;
  bool quiet = false;
  bool keep_going = false;
  bool transport_set = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    try {
      if (arg == "--seed") {
        if (!parse_u64(value(), opts.first_seed)) throw std::invalid_argument("bad --seed");
      } else if (arg == "--seeds") {
        if (!parse_u64(value(), opts.seeds) || opts.seeds == 0) {
          throw std::invalid_argument("bad --seeds");
        }
      } else if (arg == "--topo") {
        const std::string v = value();
        if (v != "all") opts.topos = {harness::fuzz::topo_from_string(v)};
      } else if (arg == "--transport") {
        const std::string v = value();
        if (v != "all") {
          opts.protocols = {transport::protocol_from_string(v)};
          transport_set = true;
        }
      } else if (arg == "--threads") {
        std::uint64_t n = 0;
        if (!parse_u64(value(), n)) throw std::invalid_argument("bad --threads");
        opts.threads = static_cast<unsigned>(n);
      } else if (arg == "--shards") {
        std::uint64_t n = 0;
        if (!parse_u64(value(), n) || n == 0) throw std::invalid_argument("bad --shards");
        opts.shards = static_cast<unsigned>(n);
      } else if (arg == "--faults") {
        opts.faults = true;
      } else if (arg == "--mixed") {
        opts.mixed = true;
      } else if (arg == "--workload-engine") {
        opts.engine = true;
      } else if (arg == "--keep-going") {
        keep_going = true;
      } else if (arg == "--quiet") {
        quiet = true;
      } else if (arg == "--help" || arg == "-h") {
        usage(argv[0]);
        return 0;
      } else {
        std::fprintf(stderr, "%s: unknown flag %s\n", argv[0], arg.c_str());
        usage(argv[0]);
        return 2;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
      return 2;
    }
  }

  if (opts.faults && opts.shards > 1) {
    std::fprintf(stderr, "%s: --faults and --shards are mutually exclusive\n", argv[0]);
    return 2;
  }
  if (opts.mixed && opts.shards > 1) {
    std::fprintf(stderr, "%s: --mixed and --shards are mutually exclusive\n", argv[0]);
    return 2;
  }
  if (opts.mixed) {
    // The foreground transport is fixed. With the default axis run_fuzz just
    // narrows it; an explicit `--transport ndp --mixed` fails loudly instead
    // of silently running zero cases.
    if (transport_set && opts.protocols.front() != transport::Protocol::kAmrt) {
      std::fprintf(stderr, "%s: --mixed requires --transport amrt\n", argv[0]);
      return 2;
    }
    opts.protocols = {transport::Protocol::kAmrt};
  }

  // Fail-fast aborts (printing the replay line) are the right default for a
  // CI tripwire; --keep-going collects violations into the report instead.
  audit::set_fail_fast(!keep_going);

  opts.on_case = [&](const CaseConfig& c, const CaseResult& r) {
    if (!r.ok) {
      std::fprintf(stderr, "FAIL %s\n     %s\n", harness::fuzz::repro_line(c).c_str(),
                   r.failure.c_str());
    } else if (!quiet) {
      std::printf("ok   seed=%llu topo=%s transport=%s flows=%zu events=%llu drops=%llu "
                  "trims=%llu faulted=%llu hash=%016llx\n",
                  static_cast<unsigned long long>(c.seed), harness::fuzz::to_string(c.topo),
                  transport::to_string(c.proto), r.flows,
                  static_cast<unsigned long long>(r.events),
                  static_cast<unsigned long long>(r.drops),
                  static_cast<unsigned long long>(r.trims),
                  static_cast<unsigned long long>(r.faulted),
                  static_cast<unsigned long long>(r.hash));
    }
  };

  const auto report = harness::fuzz::run_fuzz(opts);

  std::printf("scenario_fuzz: %zu cases, %zu failures (audit %s)\n", report.cases,
              report.failures, audit::Auditor::enabled() ? "on" : "off");
  for (const auto& line : report.failure_lines) std::printf("  %s\n", line.c_str());
  return report.failures == 0 ? 0 : 1;
}
