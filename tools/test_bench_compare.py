#!/usr/bin/env python3
"""Regression tests for bench_compare.py's JSON-diff modes.

The bug these pin down: a baseline row with a zero or missing metric
(an older bench build that didn't emit it, or a mode that completed no
flows) used to produce ratio = inf, which both crashed --coexist on the
missing keys (KeyError) and poisoned the --fail-above gate with a
spurious FAIL. The fixed behaviour: such rows print `n/a`, are excluded
from the worst-ratio gate, and --fail-above only fires on genuine
regressions.

Run directly (no third-party deps):  python3 tools/test_bench_compare.py
"""

import contextlib
import importlib.util
import io
import json
import os
import sys
import tempfile
import unittest

_HERE = os.path.dirname(os.path.abspath(__file__))
_SPEC = importlib.util.spec_from_file_location(
    "bench_compare", os.path.join(_HERE, "bench_compare.py"))
bench_compare = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_compare)


def write_report(tmpdir, name, rows):
    path = os.path.join(tmpdir, name)
    with open(path, "w") as f:
        json.dump({"benchmarks": rows}, f)
    return path


def run_compare(fn, base_rows, test_rows, fail_above=None):
    """Runs one compare_* function on crafted reports.

    Returns (exit_code_or_None, captured_stdout). SystemExit with a string
    message maps to exit code 1 (that is what sys.exit does).
    """
    out = io.StringIO()
    with tempfile.TemporaryDirectory() as tmp:
        base = write_report(tmp, "base.json", base_rows)
        test = write_report(tmp, "test.json", test_rows)
        try:
            with contextlib.redirect_stdout(out):
                fn(base, test, fail_above)
        except SystemExit as e:
            code = e.code if isinstance(e.code, int) else 1
            return code, out.getvalue(), str(e.code)
    return None, out.getvalue(), ""


class RatioOfTest(unittest.TestCase):
    def test_normal_ratio(self):
        self.assertAlmostEqual(bench_compare.ratio_of(3.0, 2.0), 1.5)

    def test_zero_or_missing_baseline_is_none(self):
        self.assertIsNone(bench_compare.ratio_of(3.0, 0))
        self.assertIsNone(bench_compare.ratio_of(3.0, 0.0))
        self.assertIsNone(bench_compare.ratio_of(3.0, None))

    def test_zero_candidate_is_none(self):
        # 0/old = 0 would read as an infinitely-good speedup; also n/a.
        self.assertIsNone(bench_compare.ratio_of(0, 5.0))


class CompareScaleTest(unittest.TestCase):
    def test_zero_baseline_time_does_not_fail_gate(self):
        base = [{"name": "BM_Scale/fattree_k4/amrt", "real_time": 0.0}]
        test = [{"name": "BM_Scale/fattree_k4/amrt", "real_time": 12.5,
                 "events_per_second": 1e6}]
        code, out, _ = run_compare(bench_compare.compare_scale, base, test,
                                   fail_above=1.05)
        self.assertIsNone(code, f"zero baseline must not trip --fail-above:\n{out}")
        self.assertIn("n/a", out)

    def test_missing_metric_keys_do_not_crash(self):
        # An old report without real_time/events_per_second at all.
        base = [{"name": "BM_Scale/fattree_k4/amrt"}]
        test = [{"name": "BM_Scale/fattree_k4/amrt", "real_time": 12.5}]
        code, out, _ = run_compare(bench_compare.compare_scale, base, test,
                                   fail_above=1.05)
        self.assertIsNone(code)
        self.assertIn("n/a", out)

    def test_new_only_row_without_metrics_does_not_crash(self):
        base = [{"name": "BM_Scale/fattree_k4/amrt", "real_time": 10.0}]
        test = [{"name": "BM_Scale/fattree_k4/amrt", "real_time": 10.0},
                {"name": "BM_Scale/fattree_k4/amrt/flow"}]  # new row, no metrics
        code, out, _ = run_compare(bench_compare.compare_scale, base, test)
        self.assertIsNone(code)
        self.assertIn("new: BM_Scale/fattree_k4/amrt/flow", out)

    def test_genuine_regression_still_fails(self):
        base = [{"name": "BM_Scale/fattree_k4/amrt", "real_time": 10.0}]
        test = [{"name": "BM_Scale/fattree_k4/amrt", "real_time": 20.0}]
        code, out, msg = run_compare(bench_compare.compare_scale, base, test,
                                     fail_above=1.5)
        self.assertEqual(code, 1)
        self.assertIn("2.000", msg)

    def test_no_fail_above_never_exits(self):
        base = [{"name": "a", "real_time": 10.0}]
        test = [{"name": "a", "real_time": 500.0}]
        code, _, _ = run_compare(bench_compare.compare_scale, base, test)
        self.assertIsNone(code)


class CompareCoexistTest(unittest.TestCase):
    def test_missing_p99_and_afct_keys(self):
        # The pre-fix code did b["afct_us"] / b["p99_us"] unguarded: KeyError.
        base = [{"name": "coexist/mixed"}]
        test = [{"name": "coexist/mixed", "afct_us": 100.0, "p99_us": 900.0}]
        code, out, _ = run_compare(bench_compare.compare_coexist, base, test,
                                   fail_above=1.1)
        self.assertIsNone(code, f"missing baseline keys must not crash or fail:\n{out}")
        self.assertIn("n/a", out)

    def test_zero_p99_baseline_excluded_from_gate(self):
        base = [{"name": "coexist/amrt_solo", "afct_us": 0.0, "p99_us": 0.0},
                {"name": "coexist/mixed", "afct_us": 100.0, "p99_us": 1000.0}]
        test = [{"name": "coexist/amrt_solo", "afct_us": 90.0, "p99_us": 800.0},
                {"name": "coexist/mixed", "afct_us": 101.0, "p99_us": 1010.0}]
        code, out, _ = run_compare(bench_compare.compare_coexist, base, test,
                                   fail_above=1.05)
        # amrt_solo's zero baseline is n/a; mixed's real ratio 1.01 passes.
        self.assertIsNone(code)
        self.assertIn("n/a", out)

    def test_genuine_p99_regression_still_fails(self):
        base = [{"name": "coexist/mixed", "afct_us": 100.0, "p99_us": 1000.0}]
        test = [{"name": "coexist/mixed", "afct_us": 100.0, "p99_us": 1200.0}]
        code, _, msg = run_compare(bench_compare.compare_coexist, base, test,
                                   fail_above=1.1)
        self.assertEqual(code, 1)
        self.assertIn("1.200", msg)

    def test_new_only_mode_without_keys(self):
        base = [{"name": "coexist/mixed", "afct_us": 1.0, "p99_us": 1.0}]
        test = [{"name": "coexist/mixed", "afct_us": 1.0, "p99_us": 1.0},
                {"name": "coexist/extra"}]
        code, out, _ = run_compare(bench_compare.compare_coexist, base, test)
        self.assertIsNone(code)
        self.assertIn("new: coexist/extra", out)


class CompareFanoutTest(unittest.TestCase):
    def test_zero_request_p99_baseline(self):
        base = [{"name": "fanout/amrt", "request_p99_us": 0.0}]
        test = [{"name": "fanout/amrt", "request_p99_us": 450.0}]
        code, out, _ = run_compare(bench_compare.compare_fanout, base, test,
                                   fail_above=1.1)
        self.assertIsNone(code, f"zero baseline must not trip --fail-above:\n{out}")
        self.assertIn("n/a", out)

    def test_missing_request_p99_key(self):
        base = [{"name": "fanout/amrt"}]
        test = [{"name": "fanout/amrt", "request_p99_us": 450.0}]
        code, out, _ = run_compare(bench_compare.compare_fanout, base, test,
                                   fail_above=1.1)
        self.assertIsNone(code)
        self.assertIn("n/a", out)

    def test_genuine_regression_still_fails(self):
        base = [{"name": "fanout/amrt", "request_p99_us": 400.0}]
        test = [{"name": "fanout/amrt", "request_p99_us": 520.0}]
        code, _, msg = run_compare(bench_compare.compare_fanout, base, test,
                                   fail_above=1.1)
        self.assertEqual(code, 1)
        self.assertIn("1.300", msg)


class DisjointReportsTest(unittest.TestCase):
    def test_no_shared_names_is_a_clear_error(self):
        base = [{"name": "a", "real_time": 1.0}]
        test = [{"name": "b", "real_time": 1.0}]
        code, _, msg = run_compare(bench_compare.compare_scale, base, test)
        self.assertEqual(code, 1)
        self.assertIn("share no benchmark names", msg)


if __name__ == "__main__":
    unittest.main(verbosity=2)
