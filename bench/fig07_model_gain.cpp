// Figure 7: the Section-5 model's minimum/maximum utilization gain and FCT
// gain for AMRT over a traditional receiver-driven protocol.
//
//  (a)/(b): utilization gain vs R/C for flow sizes 100KB / 1MB / 10MB
//  (c)/(d): FCT gain vs T_R/T_i for the same sizes at R/C = 0.5
//
// Settings follow the paper: C = 1Gbps, RTT = 100us, T_R = 0 for (a)/(b).
// Expected shape: both gains are >= 1 everywhere, grow as R/C falls and as
// the flow size grows, and the min/max curves bracket a narrow band.
#include <cstdio>
#include <iostream>

#include "harness/csv.hpp"
#include "harness/options.hpp"
#include "harness/sweep.hpp"
#include "model/amrt_model.hpp"

using namespace amrt;

int main(int argc, char** argv) {
  const auto opts = harness::parse_bench_options(argc, argv);
  const double C = 1e9;      // 1 Gbps
  const double rtt = 100e-6; // 100 us
  const double sizes[] = {100e3, 1e6, 10e6};

  harness::SweepRunner runner = harness::make_bench_runner(opts, "fig07");

  std::printf("Fig. 7(a)(b): utilization gain vs R/C (C=1Gbps, RTT=100us, T_R=0)\n");
  harness::Table util{{"R_over_C", "min_100KB", "max_100KB", "min_1MB", "max_1MB", "min_10MB",
                       "max_10MB"}};
  std::vector<double> rcs;
  for (double rc = 0.1; rc < 0.95; rc += 0.1) rcs.push_back(rc);
  const auto util_rows = runner.map_points(rcs, [&](double rc) {
    std::vector<std::string> row{harness::fmt(rc, 1)};
    for (double s : sizes) {
      model::Scenario sc{s, C, rc * C, 0.0, rtt};
      const auto g = model::utilization_gain_bounds(sc);
      row.push_back(harness::fmt(g.min_gain));
      row.push_back(harness::fmt(g.max_gain));
    }
    return row;
  });
  for (auto row : util_rows) util.add_row(std::move(row));
  if (opts.csv) util.print_csv(std::cout); else util.print(std::cout);

  std::printf("\nFig. 7(c)(d): FCT gain vs T_R/T_i (R/C=0.5)\n");
  harness::Table fct{{"TR_over_Ti", "min_100KB", "max_100KB", "min_1MB", "max_1MB", "min_10MB",
                      "max_10MB"}};
  std::vector<double> fracs;
  for (double frac = 0.0; frac < 0.85; frac += 0.1) fracs.push_back(frac);
  const auto fct_rows = runner.map_points(fracs, [&](double frac) {
    std::vector<std::string> row{harness::fmt(frac, 1)};
    for (double s : sizes) {
      const double ti = s * 8.0 / C;
      model::Scenario sc{s, C, 0.5 * C, frac * ti, rtt};
      const auto g = model::fct_gain_bounds(sc);
      row.push_back(harness::fmt(g.min_gain));
      row.push_back(harness::fmt(g.max_gain));
    }
    return row;
  });
  for (auto row : fct_rows) fct.add_row(std::move(row));
  if (opts.csv) fct.print_csv(std::cout); else fct.print(std::cout);

  std::printf("\nFill-time bounds (Eq. 4/5), n=6 slots: ");
  for (std::uint32_t k = 1; k <= 5; ++k) {
    const auto ft = model::fill_time(6, k);
    std::printf("k=%u:[%.0f,%.0f]RTT ", k, ft.min_rtts, ft.max_rtts);
  }
  std::printf("\n");
  return 0;
}
