// Micro-benchmarks of the simulation substrate itself (google-benchmark):
// event-queue throughput, queue disciplines, the anti-ECN marker, workload
// sampling, and a small end-to-end simulation as a packets/second figure.
#include <benchmark/benchmark.h>

#include "core/anti_ecn.hpp"
#include "core/factory.hpp"
#include "net/topology.hpp"
#include "net/routing.hpp"
#include "sim/event_queue.hpp"
#include "util/flat_map.hpp"
#include "workload/workloads.hpp"

using namespace amrt;

namespace {

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue q;
  std::int64_t t = 0;
  int sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      (void)q.push(sim::TimePoint::from_ns(t + (i * 37) % 1000), [&sink] { ++sink; });
    }
    while (auto e = q.pop()) e->cb();
    t += 1000;
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueuePushPop);

void BM_SchedulerTimerChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      auto h = sched.after(sim::Duration::nanoseconds(i), [&fired] { ++fired; });
      if (i % 2 == 0) h.cancel();  // half the timers are cancelled, as in transport RTO churn
    }
    sched.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerTimerChurn);

net::Packet make_pkt(std::uint32_t seq) {
  net::Packet p;
  p.flow = 7;
  p.seq = seq;
  p.wire_bytes = net::kMtuBytes;
  p.payload_bytes = net::kMssBytes;
  p.ecn_capable = true;
  p.ce = true;
  return p;
}

void BM_DropTailQueue(benchmark::State& state) {
  net::DropTailQueue q{128};
  std::uint32_t seq = 0;
  for (auto _ : state) {
    q.enqueue(make_pkt(seq++));
    benchmark::DoNotOptimize(q.dequeue());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DropTailQueue);

void BM_StrictPriorityQueue(benchmark::State& state) {
  net::StrictPriorityQueue q{8, 128};
  std::uint32_t seq = 0;
  for (auto _ : state) {
    auto p = make_pkt(seq++);
    p.priority = static_cast<std::uint8_t>(seq % 8);
    q.enqueue(std::move(p));
    benchmark::DoNotOptimize(q.dequeue());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StrictPriorityQueue);

void BM_AntiEcnMarker(benchmark::State& state) {
  core::AntiEcnMarker marker;
  auto pkt = make_pkt(1);
  std::int64_t t = 0;
  for (auto _ : state) {
    pkt.ce = true;
    marker.on_dequeue(pkt, sim::TimePoint::from_ns(t), sim::TimePoint::from_ns(t - 600),
                      sim::Bandwidth::gbps(10));
    benchmark::DoNotOptimize(pkt.ce);
    t += 1200;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AntiEcnMarker);

// One routed hop: RoutingTable::select over a 16-destination, 4-way ECMP
// table with 64 concurrent flows. Pins the dense-array + per-flow route
// cache fast path (hash and modulo only on each flow's first packet).
void BM_SwitchForward(benchmark::State& state) {
  net::RoutingTable table;
  constexpr std::uint32_t kDsts = 16;
  for (std::uint32_t d = 0; d < kDsts; ++d) {
    for (int p = 0; p < 4; ++p) table.add_route(net::NodeId{d}, p);
  }
  net::Packet pkt = make_pkt(0);
  std::uint64_t flow = 0;
  int sink = 0;
  for (auto _ : state) {
    pkt.flow = 1 + (flow % 64);
    pkt.dst = net::NodeId{static_cast<std::uint32_t>(flow % kDsts)};
    sink += table.select(pkt);
    ++flow;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwitchForward);

// Flow-table probe: hit-rate lookups over a 256-flow FlatMap — the shape of
// the per-arrival snd_/rcv_ probe in the transport layer.
void BM_FlatMapLookup(benchmark::State& state) {
  util::FlatMap<net::FlowId, std::uint64_t> map;
  constexpr std::uint64_t kFlows = 256;
  for (std::uint64_t i = 0; i < kFlows; ++i) map[i * 7 + 1] = i;
  std::uint64_t key = 0;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    const std::uint64_t* v = map.find((key % kFlows) * 7 + 1);
    sink += *v;
    ++key;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatMapLookup);

// Endpoint arrival path in situ: one AMRT pair moving 1MB across a single
// uncontended switch, so per-packet cost is dominated by the receiver's
// on_data chain (flow-table probe, SeqBitmap mark, grant clock). items/s is
// delivered data packets per wall second.
void BM_ReceiverArrival(benchmark::State& state) {
  double total_pkts = 0;
  for (auto _ : state) {
    sim::Simulation sim;
    net::Network network{sim};
    const auto rate = sim::Bandwidth::gbps(10);
    const auto delay = sim::Duration::microseconds(5);
    const auto base_rtt = net::path_base_rtt(2, rate, delay);

    auto qf = core::make_queue_factory(transport::Protocol::kAmrt);
    auto mf = core::make_marker_factory(transport::Protocol::kAmrt);
    const net::SwitchId sw = network.add_switch();
    const net::HostId src_id = network.add_host(rate, delay, std::make_unique<net::DropTailQueue>(1024));
    const net::HostId dst_id = network.add_host(rate, delay, std::make_unique<net::DropTailQueue>(1024));
    const net::PortId src_down = network.attach_host(src_id, sw, qf(false), mf ? mf() : nullptr);
    const net::PortId dst_down = network.attach_host(dst_id, sw, qf(false), mf ? mf() : nullptr);
    network.switch_at(sw).routes().add_route(network.id_of(src_id), src_down);
    network.switch_at(sw).routes().add_route(network.id_of(dst_id), dst_down);
    net::Host& src = network.host(src_id);
    net::Host& dst = network.host(dst_id);

    transport::TransportConfig tcfg;
    tcfg.host_rate = rate;
    tcfg.base_rtt = base_rtt;
    stats::FctRecorder recorder{rate, base_rtt};
    auto sep = core::make_endpoint(transport::Protocol::kAmrt, sim, src, tcfg, &recorder);
    auto* sender = sep.get();
    src.attach(std::move(sep));
    dst.attach(core::make_endpoint(transport::Protocol::kAmrt, sim, dst, tcfg, &recorder));

    sender->start_flow({1, src.id(), dst.id(), 1'000'000, sim::TimePoint::zero()});
    sim.run_until(sim::TimePoint::zero() + sim::Duration::milliseconds(10));
    benchmark::DoNotOptimize(recorder.completed().size());
    total_pkts +=
        static_cast<double>(recorder.bytes_delivered()) / static_cast<double>(net::kMssBytes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total_pkts));
}
BENCHMARK(BM_ReceiverArrival)->Unit(benchmark::kMillisecond);

void BM_WorkloadSampling(benchmark::State& state) {
  sim::Rng rng{1};
  const auto& cdf = workload::cdf(workload::Kind::kDataMining);
  for (auto _ : state) benchmark::DoNotOptimize(cdf.sample(rng));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorkloadSampling);

// End-to-end: a 2x2x4 AMRT fabric moving 20 x 100KB flows; items/s is the
// simulator's packet throughput (delivered data packets per wall second) and
// events/s its raw event throughput.
void BM_EndToEndSmallFabric(benchmark::State& state) {
  double total_events = 0;
  double total_pkts = 0;
  for (auto _ : state) {
    sim::Simulation sim;
    net::Network network{sim};
    net::LeafSpineConfig topo_cfg;
    topo_cfg.leaves = 2;
    topo_cfg.spines = 2;
    topo_cfg.hosts_per_leaf = 4;
    topo_cfg.link_delay = sim::Duration::microseconds(5);
    topo_cfg.queue_factory = core::make_queue_factory(transport::Protocol::kAmrt);
    topo_cfg.marker_factory = core::make_marker_factory(transport::Protocol::kAmrt);
    auto topo = net::build_leaf_spine(network, topo_cfg);

    transport::TransportConfig tcfg;
    tcfg.base_rtt = topo.base_rtt;
    stats::FctRecorder recorder{topo_cfg.link_rate, topo.base_rtt};
    std::vector<transport::TransportEndpoint*> eps;
    for (auto* h : topo.hosts) {
      auto ep = core::make_endpoint(transport::Protocol::kAmrt, sim, *h, tcfg, &recorder);
      eps.push_back(ep.get());
      h->attach(std::move(ep));
    }
    for (net::FlowId i = 0; i < 20; ++i) {
      const std::size_t src = i % topo.hosts.size();
      const std::size_t dst = (i + 5) % topo.hosts.size();
      eps[src]->start_flow({i + 1, topo.hosts[src]->id(), topo.hosts[dst]->id(), 100'000,
                            sim::TimePoint::zero()});
    }
    sim.run_until(sim::TimePoint::zero() + sim::Duration::milliseconds(50));
    benchmark::DoNotOptimize(recorder.completed().size());
    total_events += static_cast<double>(sim.events_processed());
    total_pkts +=
        static_cast<double>(recorder.bytes_delivered()) / static_cast<double>(net::kMssBytes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total_pkts));
  state.counters["events"] = total_events / static_cast<double>(state.iterations());
  state.counters["events_per_s"] = benchmark::Counter(total_events, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EndToEndSmallFabric)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
