// Front-end fan-out macro-benchmark (DESIGN.md §14): the same seeded
// leaf-spine fabric driven by the fan-out traffic engine (every arrival is
// one user request that fans out to N backend response flows converging on
// a front end) and run three ways — AMRT, DCTCP, and mixed (AMRT foreground
// + a DCTCP background fraction). The headline metric is per-request
// completion p99: a request is answered when its *slowest* response lands,
// so this is the tail-at-scale number the paper's incast discussion is
// about. Output is google-benchmark-shaped JSON that
// tools/bench_compare.py --fanout can diff across builds.
//
//   bench_fanout [--leaves N] [--spines N] [--hosts-per-leaf N] [--requests N]
//                [--fanout N] [--response-bytes B] [--load F] [--seed N]
//                [--fraction F] [--json PATH] [--check]
//
// All modes share one seed and one topology, so the request schedule is
// identical across them. --check exits non-zero unless every flow completes
// and every request is accounted complete in every mode (the fanout_smoke
// ctest).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/experiment.hpp"

using namespace amrt;

namespace {

struct Options {
  int leaves = 2;
  int spines = 2;
  int hosts_per_leaf = 4;
  std::size_t requests = 40;
  std::size_t fanout = 8;
  std::uint64_t response_bytes = 20'000;
  double load = 0.6;
  std::uint64_t seed = 42;
  double fraction = 0.25;  // DCTCP background share of the mixed run
  std::string json_path;
  bool check = false;
};

struct ModeResult {
  std::string name;
  harness::ExperimentResult r;
  double wall_ms = 0.0;
};

harness::ExperimentConfig base_config(const Options& opt) {
  harness::ExperimentConfig cfg;
  cfg.workload = workload::Kind::kWebSearch;
  cfg.load = opt.load;
  // n_flows counts member flows: `requests` requests of `fanout` responses.
  cfg.n_flows = opt.requests * opt.fanout;
  cfg.leaves = opt.leaves;
  cfg.spines = opt.spines;
  cfg.hosts_per_leaf = opt.hosts_per_leaf;
  cfg.seed = opt.seed;
  cfg.engine.engine = workload::Engine::kFanout;
  cfg.engine.fanout = opt.fanout;
  cfg.engine.response_bytes = opt.response_bytes;
  return cfg;
}

ModeResult run_mode(const Options& opt, const char* mode, transport::Protocol proto,
                    double fraction) {
  auto cfg = base_config(opt);
  cfg.proto = proto;
  cfg.background_dctcp_fraction = fraction;
  const auto t0 = std::chrono::steady_clock::now();
  ModeResult m;
  m.r = harness::run_leaf_spine(cfg);
  m.wall_ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                  .count();
  m.name = std::string{"BM_Fanout/leafspine_"} + std::to_string(opt.leaves) + "x" +
           std::to_string(opt.spines) + "x" + std::to_string(opt.hosts_per_leaf) + "/fan" +
           std::to_string(opt.fanout) + "/" + mode;
  return m;
}

void print_json(std::FILE* out, const Options& opt, const std::vector<ModeResult>& modes) {
  std::fprintf(out,
               "{\n  \"context\": {\"leaves\": %d, \"spines\": %d, \"hosts_per_leaf\": %d, "
               "\"requests\": %zu, \"fanout\": %zu, \"response_bytes\": %llu, \"load\": %.3f, "
               "\"seed\": %llu, \"fraction\": %.3f},\n",
               opt.leaves, opt.spines, opt.hosts_per_leaf, opt.requests, opt.fanout,
               static_cast<unsigned long long>(opt.response_bytes), opt.load,
               static_cast<unsigned long long>(opt.seed), opt.fraction);
  std::fprintf(out, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < modes.size(); ++i) {
    const auto& m = modes[i];
    const auto& r = m.r;
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"run_type\": \"iteration\", \"iterations\": 1,\n"
                 "     \"real_time\": %.3f, \"cpu_time\": %.3f, \"time_unit\": \"ms\",\n"
                 "     \"flows\": %zu, \"completed\": %zu,\n"
                 "     \"afct_us\": %.3f, \"p99_us\": %.3f,\n"
                 "     \"requests\": %zu, \"requests_complete\": %zu,\n"
                 "     \"request_mean_us\": %.3f, \"request_p50_us\": %.3f, "
                 "\"request_p99_us\": %.3f, \"request_max_us\": %.3f,\n"
                 "     \"mean_utilization\": %.6f, \"max_queue_pkts\": %zu,\n"
                 "     \"drops\": %llu, \"trims\": %llu, \"events\": %llu}%s\n",
                 m.name.c_str(), m.wall_ms, m.wall_ms, r.flows_started, r.flows_completed,
                 r.fct_all.afct_us, r.fct_all.p99_us, r.request_stats.groups,
                 r.request_stats.complete, r.request_stats.mean_us, r.request_stats.p50_us,
                 r.request_stats.p99_us, r.request_stats.max_us, r.mean_utilization,
                 r.max_queue_pkts, static_cast<unsigned long long>(r.drops),
                 static_cast<unsigned long long>(r.trims),
                 static_cast<unsigned long long>(r.events), i + 1 < modes.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--leaves N] [--spines N] [--hosts-per-leaf N] [--requests N]\n"
               "          [--fanout N] [--response-bytes B] [--load F] [--seed N]\n"
               "          [--fraction F] [--json PATH] [--check]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--leaves") {
      opt.leaves = std::atoi(next());
    } else if (arg == "--spines") {
      opt.spines = std::atoi(next());
    } else if (arg == "--hosts-per-leaf") {
      opt.hosts_per_leaf = std::atoi(next());
    } else if (arg == "--requests") {
      opt.requests = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--fanout") {
      opt.fanout = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--response-bytes") {
      opt.response_bytes = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--load") {
      opt.load = std::atof(next());
    } else if (arg == "--seed") {
      opt.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--fraction") {
      opt.fraction = std::atof(next());
      if (opt.fraction <= 0.0 || opt.fraction >= 1.0) {
        std::fprintf(stderr, "bench_fanout: --fraction must be in (0, 1)\n");
        return 2;
      }
    } else if (arg == "--json") {
      opt.json_path = next();
    } else if (arg == "--check") {
      opt.check = true;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (opt.check) {
    opt.requests = 12;  // a few seconds, same fabric
  }

  std::vector<ModeResult> modes;
  modes.push_back(run_mode(opt, "amrt", transport::Protocol::kAmrt, 0.0));
  modes.push_back(run_mode(opt, "dctcp", transport::Protocol::kDctcp, 0.0));
  modes.push_back(run_mode(opt, "mixed", transport::Protocol::kAmrt, opt.fraction));

  bool ok = true;
  for (const auto& m : modes) {
    const auto& r = m.r;
    std::fprintf(stderr,
                 "%-44s %7.1f ms  %zu/%zu flows  %zu/%zu requests  req p99 %9.1f us  "
                 "afct %8.1f us\n",
                 m.name.c_str(), m.wall_ms, r.flows_completed, r.flows_started,
                 r.request_stats.complete, r.request_stats.groups, r.request_stats.p99_us,
                 r.fct_all.afct_us);
    if (r.flows_completed != r.flows_started) {
      std::fprintf(stderr, "FAIL: %s completed only %zu of %zu flows\n", m.name.c_str(),
                   r.flows_completed, r.flows_started);
      ok = false;
    }
    if (r.request_stats.complete != r.request_stats.groups) {
      std::fprintf(stderr, "FAIL: %s accounted only %zu of %zu requests complete\n",
                   m.name.c_str(), r.request_stats.complete, r.request_stats.groups);
      ok = false;
    }
  }

  if (!opt.json_path.empty()) {
    if (opt.json_path == "-") {
      print_json(stdout, opt, modes);
    } else {
      std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
      if (f == nullptr) {
        std::perror("bench_fanout: fopen");
        return 1;
      }
      print_json(f, opt, modes);
      std::fclose(f);
    }
  }
  return ok ? 0 : 1;
}
