// Macro-benchmark for the pooled network core: a three-tier fat-tree fabric
// (k=16 -> 1024 hosts, 320 switches by default) running the Section 8
// websearch workload under each receiver-driven transport. Reports raw event
// throughput (events/sec), packet throughput (delivered data packets/sec)
// and peak RSS, as google-benchmark-shaped JSON that
// tools/bench_compare.py --scale can diff across builds.
//
//   bench_scale [--k N] [--transport amrt|phost|homa|ndp|all]
//               [--flows N] [--load F] [--shards N] [--repeat R]
//               [--fidelity packet|flow|both] [--json PATH] [--check]
//
// --shards N runs each transport on the partitioned (pod-sharded) executor
// with N worker threads (see net/partition.hpp); --repeat R reports the
// median-of-R wall time. --fidelity flow runs the flow-level fast path
// (src/flowsim) on the same seeded workload; both emits a packet row and a
// "/flow"-suffixed row per transport, which is how the committed
// baselines/scale_k16_flow.json headroom figure is produced. --check
// shrinks the fabric (k=4, a few hundred flows) and exits non-zero unless
// every flow completes under every requested transport — the scale_smoke /
// shard_smoke ctests run exactly that in a few seconds.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "core/factory.hpp"
#include "harness/fidelity.hpp"
#include "harness/sharded.hpp"
#include "net/partition.hpp"
#include "net/topology.hpp"
#include "sim/shard.hpp"
#include "sim/simulation.hpp"
#include "stats/fct.hpp"
#include "transport/endpoint.hpp"
#include "workload/generator.hpp"
#include "workload/workloads.hpp"

using namespace amrt;

namespace {

struct Options {
  int k = 16;
  std::vector<transport::Protocol> protocols{
      transport::Protocol::kAmrt, transport::Protocol::kPhost, transport::Protocol::kHoma,
      transport::Protocol::kNdp};
  std::size_t flows = 2'000;
  double load = 0.5;
  std::uint64_t seed = 1;
  unsigned shards = 1;  // 1 = serial (the unchanged fast path)
  int repeat = 1;       // median-of-R wall time
  std::string json_path;  // empty: stdout only when --json given
  bool check = false;
  bool run_packet = true;  // --fidelity packet|flow|both
  bool run_flow = false;
};

struct RunResult {
  std::string name;
  double real_ms = 0.0;
  std::uint64_t events = 0;
  std::uint64_t delivered_pkts = 0;
  std::size_t flows = 0;
  std::size_t completed = 0;
  long peak_rss_kb = 0;
  unsigned shards = 1;
};

long peak_rss_kb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;  // KiB on Linux
}

RunResult run_one(const Options& opt, transport::Protocol proto) {
  sim::Simulation simu{opt.seed};
  sim::Scheduler& sched = simu.scheduler();
  net::Network network{simu};

  net::FatTreeConfig topo_cfg;
  topo_cfg.k = opt.k;
  topo_cfg.queue_factory = core::make_queue_factory(proto);
  topo_cfg.marker_factory = core::make_marker_factory(proto);
  const net::FatTree topo = net::build_fat_tree(network, topo_cfg);

  transport::TransportConfig tcfg;
  tcfg.host_rate = topo_cfg.link_rate;
  tcfg.base_rtt = topo.base_rtt;
  stats::FctRecorder recorder{topo_cfg.link_rate, topo.base_rtt};

  std::vector<transport::TransportEndpoint*> eps;
  eps.reserve(topo.hosts.size());
  for (net::Host* host : topo.hosts) {
    auto ep = core::make_endpoint(proto, simu, *host, tcfg, &recorder);
    eps.push_back(ep.get());
    host->attach(std::move(ep));
  }

  workload::FlowGenerator gen{workload::cdf(workload::Kind::kWebSearch), simu.rng()};
  workload::TrafficConfig traffic;
  traffic.load = opt.load;
  traffic.n_flows = opt.flows;
  traffic.n_hosts = topo.hosts.size();
  traffic.host_rate = topo_cfg.link_rate;
  const auto flows = gen.generate(traffic);

  for (const auto& f : flows) {
    transport::FlowSpec spec{f.id, topo.hosts[f.src_host]->id(), topo.hosts[f.dst_host]->id(),
                             f.bytes, f.start};
    transport::TransportEndpoint* src_ep = eps[f.src_host];
    sched.at(f.start, [src_ep, spec] { src_ep->start_flow(spec); });
  }

  const auto t0 = std::chrono::steady_clock::now();
  sched.run();  // natural drain: no samplers keep the loop alive
  const auto t1 = std::chrono::steady_clock::now();

  RunResult r;
  r.name = std::string{"BM_Scale/fattree_k"} + std::to_string(opt.k) + "/" +
           transport::to_string(proto);
  r.real_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.events = sched.events_processed();
  r.delivered_pkts = recorder.bytes_delivered() / net::kMssBytes;
  r.flows = flows.size();
  r.completed = recorder.completed().size();
  r.peak_rss_kb = peak_rss_kb();
  return r;
}

// The flow-level fast path (src/flowsim) on the same seeded workload; the
// "/flow" row name keeps packet and fluid rows side by side in one JSON so
// tools/bench_compare.py --scale can diff either against a baseline.
RunResult run_one_flow(const Options& opt, transport::Protocol proto) {
  const auto t0 = std::chrono::steady_clock::now();
  const harness::FlowFatTreeResult f =
      harness::run_fat_tree_flow(opt.k, proto, opt.flows, opt.load, opt.seed);
  const auto t1 = std::chrono::steady_clock::now();

  RunResult r;
  r.name = std::string{"BM_Scale/fattree_k"} + std::to_string(opt.k) + "/" +
           transport::to_string(proto) + "/flow";
  r.real_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.events = f.events;
  r.delivered_pkts = f.delivered_bytes / net::kMssBytes;
  r.flows = f.flows;
  r.completed = f.completed;
  r.peak_rss_kb = peak_rss_kb();
  return r;
}

// The partitioned executor: same topology, same (master-seeded) workload,
// pod-sharded across `opt.shards` worker threads.
RunResult run_one_sharded(const Options& opt, transport::Protocol proto) {
  sim::ShardGroup group{opt.seed, opt.shards};
  net::Network network{group.master()};

  net::FatTreeConfig topo_cfg;
  topo_cfg.k = opt.k;
  topo_cfg.queue_factory = core::make_queue_factory(proto);
  topo_cfg.marker_factory = core::make_marker_factory(proto);
  const net::FatTree topo = net::build_fat_tree(network, topo_cfg);
  net::Partition part = net::partition_fat_tree(network, topo, opt.shards);
  harness::ShardedScenario scen{group, network, std::move(part), topo_cfg.link_rate,
                                topo.base_rtt};

  transport::TransportConfig tcfg;
  tcfg.host_rate = topo_cfg.link_rate;
  tcfg.base_rtt = topo.base_rtt;

  std::vector<transport::TransportEndpoint*> eps;
  eps.reserve(topo.hosts.size());
  for (net::Host* host : topo.hosts) {
    // The endpoint caches the scheduler of the Simulation it is built with,
    // so constructing against the host's shard pins its timers there.
    auto ep = core::make_endpoint(proto, scen.sim_of(host->id()), *host, tcfg,
                                  &scen.recorder_of(host->id()));
    eps.push_back(ep.get());
    host->attach(std::move(ep));
  }

  // The master rng is seed-identical to the serial path: same flows.
  workload::FlowGenerator gen{workload::cdf(workload::Kind::kWebSearch), group.master().rng()};
  workload::TrafficConfig traffic;
  traffic.load = opt.load;
  traffic.n_flows = opt.flows;
  traffic.n_hosts = topo.hosts.size();
  traffic.host_rate = topo_cfg.link_rate;
  const auto flows = gen.generate(traffic);

  for (const auto& f : flows) {
    transport::FlowSpec spec{f.id, topo.hosts[f.src_host]->id(), topo.hosts[f.dst_host]->id(),
                             f.bytes, f.start};
    transport::TransportEndpoint* src_ep = eps[f.src_host];
    scen.sched_of(spec.src).at(f.start, [src_ep, spec] { src_ep->start_flow(spec); });
  }

  const auto t0 = std::chrono::steady_clock::now();
  scen.run({});
  const auto t1 = std::chrono::steady_clock::now();

  RunResult r;
  r.name = std::string{"BM_Scale/fattree_k"} + std::to_string(opt.k) + "/" +
           transport::to_string(proto);
  r.real_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.events = scen.events();
  r.delivered_pkts = scen.merged().bytes_delivered() / net::kMssBytes;
  r.flows = flows.size();
  r.completed = scen.merged().completed().size();
  r.peak_rss_kb = peak_rss_kb();
  r.shards = opt.shards;
  return r;
}

// Median-of-R by wall time (the simulation itself is deterministic per
// mode, so only timing varies across repeats).
RunResult run_repeated(const Options& opt, transport::Protocol proto, bool flow_fidelity) {
  std::vector<RunResult> runs;
  const int reps = opt.repeat < 1 ? 1 : opt.repeat;
  runs.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    runs.push_back(flow_fidelity        ? run_one_flow(opt, proto)
                   : opt.shards > 1 ? run_one_sharded(opt, proto)
                                    : run_one(opt, proto));
  }
  std::sort(runs.begin(), runs.end(),
            [](const RunResult& a, const RunResult& b) { return a.real_ms < b.real_ms; });
  return runs[static_cast<std::size_t>(reps - 1) / 2];
}

void print_json(std::FILE* out, const Options& opt, const std::vector<RunResult>& results) {
  std::fprintf(out,
               "{\n  \"context\": {\"k\": %d, \"flows\": %zu, \"load\": %.3f, \"shards\": %u, "
               "\"repeat\": %d},\n",
               opt.k, opt.flows, opt.load, opt.shards, opt.repeat);
  std::fprintf(out, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    const double secs = r.real_ms / 1e3;
    const double eps = secs > 0 ? static_cast<double>(r.events) / secs : 0.0;
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"run_type\": \"iteration\", \"iterations\": 1,\n"
                 "     \"real_time\": %.3f, \"cpu_time\": %.3f, \"time_unit\": \"ms\",\n"
                 "     \"shards\": %u, \"wall_ms\": %.3f,\n"
                 "     \"events\": %llu, \"events_per_second\": %.0f,\n"
                 "     \"events_per_second_per_shard\": %.0f,\n"
                 "     \"delivered_pkts\": %llu, \"delivered_pkts_per_second\": %.0f,\n"
                 "     \"flows\": %zu, \"completed\": %zu, \"peak_rss_mb\": %.1f}%s\n",
                 r.name.c_str(), r.real_ms, r.real_ms, r.shards, r.real_ms,
                 static_cast<unsigned long long>(r.events), eps,
                 eps / static_cast<double>(r.shards == 0 ? 1 : r.shards),
                 static_cast<unsigned long long>(r.delivered_pkts),
                 secs > 0 ? static_cast<double>(r.delivered_pkts) / secs : 0.0, r.flows,
                 r.completed, static_cast<double>(r.peak_rss_kb) / 1024.0,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--k N] [--transport amrt|phost|homa|ndp|all] [--flows N]\n"
               "          [--load F] [--seed N] [--shards N] [--repeat R]\n"
               "          [--fidelity packet|flow|both] [--json PATH] [--check]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--k") {
      opt.k = std::atoi(next());
    } else if (arg == "--transport") {
      const std::string v = next();
      if (v != "all") opt.protocols = {transport::protocol_from_string(v)};
    } else if (arg == "--flows") {
      opt.flows = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--load") {
      opt.load = std::atof(next());
    } else if (arg == "--seed") {
      opt.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--shards") {
      const int v = std::atoi(next());
      if (v < 1) {
        std::fprintf(stderr, "bench_scale: --shards must be >= 1\n");
        return 2;
      }
      opt.shards = static_cast<unsigned>(v);
    } else if (arg == "--repeat") {
      opt.repeat = std::atoi(next());
      if (opt.repeat < 1) {
        std::fprintf(stderr, "bench_scale: --repeat must be >= 1\n");
        return 2;
      }
    } else if (arg == "--fidelity") {
      const std::string v = next();
      if (v == "packet") {
        opt.run_packet = true;
        opt.run_flow = false;
      } else if (v == "flow") {
        opt.run_packet = false;
        opt.run_flow = true;
      } else if (v == "both") {
        opt.run_packet = true;
        opt.run_flow = true;
      } else {
        std::fprintf(stderr, "bench_scale: --fidelity must be packet, flow or both\n");
        return 2;
      }
    } else if (arg == "--json") {
      opt.json_path = next();
    } else if (arg == "--check") {
      opt.check = true;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (opt.check) {
    opt.k = 4;
    opt.flows = 400;
  }

  std::vector<RunResult> results;
  bool ok = true;
  auto report = [&](const RunResult& r) {
    std::fprintf(stderr,
                 "%-28s %9.1f ms  %12llu events (%.2fM ev/s, %u shard%s)  %9llu pkts  "
                 "%zu/%zu flows  rss %.1f MB\n",
                 r.name.c_str(), r.real_ms, static_cast<unsigned long long>(r.events),
                 r.real_ms > 0 ? static_cast<double>(r.events) / r.real_ms / 1e3 : 0.0,
                 r.shards, r.shards == 1 ? "" : "s",
                 static_cast<unsigned long long>(r.delivered_pkts), r.completed, r.flows,
                 static_cast<double>(r.peak_rss_kb) / 1024.0);
    if (r.completed != r.flows) {
      std::fprintf(stderr, "FAIL: %s completed only %zu of %zu flows\n", r.name.c_str(),
                   r.completed, r.flows);
      ok = false;
    }
    results.push_back(r);
  };
  for (const auto proto : opt.protocols) {
    if (opt.run_packet) report(run_repeated(opt, proto, false));
    if (opt.run_flow) report(run_repeated(opt, proto, true));
  }

  if (!opt.json_path.empty()) {
    if (opt.json_path == "-") {
      print_json(stdout, opt, results);
    } else {
      std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
      if (f == nullptr) {
        std::perror("bench_scale: fopen");
        return 1;
      }
      print_json(f, opt, results);
      std::fclose(f);
    }
  }
  return ok ? 0 : 1;
}
