// Figure 11: the testbed multi-bottleneck comparison (Fig. 10 topology) on
// the simulated 1GbE substrate, for all four protocols. f1 crosses two
// bottlenecks (shared with f2 and f3 respectively); f4 shares the second
// bottleneck with f3. The testbed's seconds-long timeline is scaled ~100x
// (1s -> 10ms) to keep packet counts laptop-friendly; the dynamics are
// rate-free so the shape is unchanged.
//
// Expected shape (paper Fig. 11): only AMRT lets f2 climb above its initial
// 50% share while f1 is squeezed, and AMRT cuts f2's completion time by
// ~36%/~36%/~13% vs pHost/Homa/NDP.
#include <cstdio>
#include <iostream>

#include "harness/csv.hpp"
#include "harness/options.hpp"
#include "harness/scenarios.hpp"
#include "harness/sweep.hpp"

using namespace amrt;
using harness::ChainConfig;
using harness::ChainFlow;
using harness::ChainPath;

namespace {
constexpr transport::Protocol kProtos[] = {transport::Protocol::kPhost, transport::Protocol::kHoma,
                                           transport::Protocol::kNdp, transport::Protocol::kAmrt};

harness::TimelineResult run(transport::Protocol proto, std::uint64_t seed) {
  using sim::Duration;
  ChainConfig cfg;
  cfg.proto = proto;
  cfg.seed = seed;
  cfg.link_rate = sim::Bandwidth::gbps(1);
  // 100us links give the 1GbE testbed a ~0.6ms RTT and a ~53-packet BDP,
  // comfortably above the 8-packet queue threshold (as on real hardware).
  cfg.link_delay = Duration::microseconds(100);
  cfg.flows = {
      ChainFlow{ChainPath::kBoth, 2'500'000, Duration::zero()},             // f1
      ChainFlow{ChainPath::kFirst, 4'000'000, Duration::zero()},            // f2
      ChainFlow{ChainPath::kSecond, 1'800'000, Duration::milliseconds(10)}, // f3
      ChainFlow{ChainPath::kSecond, 1'500'000, Duration::milliseconds(15)}, // f4
  };
  cfg.duration = Duration::milliseconds(150);
  cfg.bin = Duration::milliseconds(2);
  return harness::run_chain(cfg);
}
}  // namespace

int main(int argc, char** argv) {
  const auto opts = harness::parse_bench_options(argc, argv);

  harness::SweepRunner runner = harness::make_bench_runner(opts, "fig11");
  const std::vector<transport::Protocol> protos(std::begin(kProtos), std::end(kProtos));
  const auto results =
      runner.map_points(protos, [&](transport::Protocol p) { return run(p, opts.seed); });

  std::printf("Fig. 11 reproduction: multi-bottleneck testbed comparison (1GbE)\n\n");
  harness::Table fct{{"flow", "pHost_ms", "Homa_ms", "NDP_ms", "AMRT_ms", "AMRT_vs_pHost",
                      "AMRT_vs_Homa", "AMRT_vs_NDP"}};
  for (std::size_t f = 0; f < 4; ++f) {
    auto cell = [&](int p) {
      return results[p].flow_fct_ms[f] < 0 ? std::string("-")
                                           : harness::fmt(results[p].flow_fct_ms[f], 2);
    };
    auto redu = [&](int p) {
      const double base = results[p].flow_fct_ms[f];
      const double ours = results[3].flow_fct_ms[f];
      if (base <= 0 || ours <= 0) return std::string("-");
      return harness::fmt_pct((base - ours) / base);
    };
    fct.add_row({"f" + std::to_string(f + 1), cell(0), cell(1), cell(2), cell(3), redu(0), redu(1),
                 redu(2)});
  }
  if (opts.csv) fct.print_csv(std::cout); else fct.print(std::cout);

  std::printf("\nf2 normalized throughput over time (watch it rise above 0.5 only under AMRT):\n");
  harness::Table tl{{"t_ms", "pHost_f2", "Homa_f2", "NDP_f2", "AMRT_f2"}};
  const std::size_t bins = results[0].bottleneck1_util.size();
  for (std::size_t b = 0; b < bins; b += 4) {
    std::vector<std::string> row{harness::fmt(static_cast<double>(b) * results[0].bin.to_millis(), 0)};
    for (int p = 0; p < 4; ++p) {
      const auto& s = results[p].flow_gbps[1];
      row.push_back(harness::fmt(b < s.size() ? s[b] : 0.0));
    }
    tl.add_row(std::move(row));
  }
  if (opts.csv) tl.print_csv(std::cout); else tl.print(std::cout);

  std::printf("\nmean B1 utilization: pHost %.1f%%, Homa %.1f%%, NDP %.1f%%, AMRT %.1f%%\n",
              100 * results[0].mean_util_b1, 100 * results[1].mean_util_b1,
              100 * results[2].mean_util_b1, 100 * results[3].mean_util_b1);
  return 0;
}
