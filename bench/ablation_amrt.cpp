// Ablations of AMRT's design choices (called out in DESIGN.md §6):
//
//  1. Marking threshold (Eq. 2's MSS): how big must the inter-dequeue gap be
//     before the switch declares spare bandwidth? The paper fixes it at one
//     1500B MTU; smaller probes mark more aggressively, larger ones damp.
//  2. Marked-grant allowance: the paper triggers 2 packets per marked grant;
//     higher allowances converge faster but overshoot harder.
//  3. Loss timeout: Sec. 6's 1xRTT grant-reissue vs more conservative RTOs,
//     measured on a loaded fabric cell.
//
// Each row runs the Fig. 2 dynamic-traffic scenario (where the refill speed
// is visible) and reports the large flow's completion, utilization and queue.
#include <cstdio>
#include <iostream>

#include "harness/csv.hpp"
#include "harness/experiment.hpp"
#include "harness/options.hpp"
#include "harness/scenarios.hpp"
#include "net/topology.hpp"

using namespace amrt;
using harness::DynamicConfig;
using harness::DynamicFlow;

namespace {
DynamicConfig base_dynamic() {
  DynamicConfig cfg;
  cfg.proto = transport::Protocol::kAmrt;
  cfg.flows = {DynamicFlow{2'500'000, sim::Duration::zero()},
               DynamicFlow{5'000'000, sim::Duration::zero()},
               DynamicFlow{10'000'000, sim::Duration::zero()}};
  cfg.duration = sim::Duration::milliseconds(25);
  cfg.bin = sim::Duration::microseconds(250);
  return cfg;
}
}  // namespace

int main(int argc, char** argv) {
  const auto opts = harness::parse_bench_options(argc, argv);

  std::printf("Ablation 1: anti-ECN marking threshold (probe bytes)\n");
  harness::Table t1{{"probe_bytes", "f3_fct_ms", "mean_util", "max_queue"}};
  for (std::uint32_t probe : {750u, 1500u, 3000u, 6000u}) {
    auto cfg = base_dynamic();
    cfg.marker_probe_bytes = probe;
    cfg.seed = opts.seed;
    const auto r = harness::run_dynamic(cfg);
    t1.add_row({std::to_string(probe), harness::fmt(r.flow_fct_ms[2]),
                harness::fmt_pct(r.mean_util_b1), std::to_string(r.max_queue_pkts)});
  }
  if (opts.csv) t1.print_csv(std::cout); else t1.print(std::cout);

  std::printf("\nAblation 2: marked-grant allowance (paper: 2)\n");
  harness::Table t2{{"allowance", "f3_fct_ms", "mean_util", "max_queue"}};
  for (std::uint16_t allowance : {2, 3, 4}) {
    auto cfg = base_dynamic();
    cfg.amrt_marked_allowance = allowance;
    cfg.seed = opts.seed;
    const auto r = harness::run_dynamic(cfg);
    t2.add_row({std::to_string(allowance), harness::fmt(r.flow_fct_ms[2]),
                harness::fmt_pct(r.mean_util_b1), std::to_string(r.max_queue_pkts)});
  }
  if (opts.csv) t2.print_csv(std::cout); else t2.print(std::cout);

  std::printf("\nAblation 3: receiver loss timeout on a loaded fabric cell (Web Search, load 0.7)\n");
  harness::Table t3{{"rto_x_rtt", "afct_us", "p99_us", "small_afct_us", "drops"}};
  for (int x : {1, 2, 3, 5}) {
    harness::ExperimentConfig cfg;
    cfg.proto = transport::Protocol::kAmrt;
    cfg.workload = workload::Kind::kWebSearch;
    cfg.load = 0.7;
    cfg.n_flows = opts.scaled(200);
    cfg.seed = opts.seed;
    cfg.loss_timeout = net::path_base_rtt(4, cfg.link_rate, cfg.link_delay) * x;
    const auto r = harness::run_leaf_spine(cfg);
    t3.add_row({std::to_string(x), harness::fmt(r.fct_all.afct_us, 1),
                harness::fmt(r.fct_all.p99_us, 1), harness::fmt(r.fct_small.afct_us, 1),
                std::to_string(r.drops)});
  }
  if (opts.csv) t3.print_csv(std::cout); else t3.print(std::cout);

  std::printf("\nAblation 4: per-flow ECMP vs per-packet spraying (Web Search, load 0.7)\n");
  harness::Table t4{{"proto", "multipath", "afct_us", "p99_us", "util"}};
  for (auto proto : {transport::Protocol::kNdp, transport::Protocol::kAmrt}) {
    for (auto mode : {net::MultipathMode::kPerFlowEcmp, net::MultipathMode::kPacketSpray}) {
      harness::ExperimentConfig cfg;
      cfg.proto = proto;
      cfg.workload = workload::Kind::kWebSearch;
      cfg.load = 0.7;
      cfg.n_flows = opts.scaled(200);
      cfg.seed = opts.seed;
      cfg.multipath = mode;
      const auto r = harness::run_leaf_spine(cfg);
      t4.add_row({transport::to_string(proto),
                  mode == net::MultipathMode::kPerFlowEcmp ? "per-flow" : "spray",
                  harness::fmt(r.fct_all.afct_us, 1), harness::fmt(r.fct_all.p99_us, 1),
                  harness::fmt_pct(r.mean_utilization)});
    }
  }
  if (opts.csv) t4.print_csv(std::cout); else t4.print(std::cout);

  std::printf("\nAblation 5: Aeolus-style selective dropping of blind packets (32-way incast)\n");
  harness::Table t5{{"queue", "afct_us", "p99_us", "drops", "goodput_gbps"}};
  for (bool selective : {false, true}) {
    harness::IncastConfig cfg;
    cfg.proto = transport::Protocol::kAmrt;
    cfg.senders = 32;
    cfg.queues.buffer_pkts = 8;
    cfg.queues.selective_drop = selective;
    const auto r = harness::run_incast(cfg);
    t5.add_row({selective ? "selective-drop" : "drop-tail", harness::fmt(r.fct.afct_us, 1),
                harness::fmt(r.fct.p99_us, 1), std::to_string(r.drops),
                harness::fmt(r.goodput_gbps)});
  }
  if (opts.csv) t5.print_csv(std::cout); else t5.print(std::cout);
  return 0;
}
