// Ablations of AMRT's design choices (called out in DESIGN.md §6):
//
//  1. Marking threshold (Eq. 2's MSS): how big must the inter-dequeue gap be
//     before the switch declares spare bandwidth? The paper fixes it at one
//     1500B MTU; smaller probes mark more aggressively, larger ones damp.
//  2. Marked-grant allowance: the paper triggers 2 packets per marked grant;
//     higher allowances converge faster but overshoot harder.
//  3. Loss timeout: Sec. 6's 1xRTT grant-reissue vs more conservative RTOs,
//     measured on a loaded fabric cell.
//
// Each row runs the Fig. 2 dynamic-traffic scenario (where the refill speed
// is visible) and reports the large flow's completion, utilization and queue.
#include <cstdio>
#include <iostream>

#include "harness/csv.hpp"
#include "harness/options.hpp"
#include "harness/scenarios.hpp"
#include "harness/sweep.hpp"
#include "net/topology.hpp"

using namespace amrt;
using harness::DynamicConfig;
using harness::DynamicFlow;

namespace {
DynamicConfig base_dynamic() {
  DynamicConfig cfg;
  cfg.proto = transport::Protocol::kAmrt;
  cfg.flows = {DynamicFlow{2'500'000, sim::Duration::zero()},
               DynamicFlow{5'000'000, sim::Duration::zero()},
               DynamicFlow{10'000'000, sim::Duration::zero()}};
  cfg.duration = sim::Duration::milliseconds(25);
  cfg.bin = sim::Duration::microseconds(250);
  return cfg;
}
}  // namespace

int main(int argc, char** argv) {
  const auto opts = harness::parse_bench_options(argc, argv);
  harness::SweepRunner runner = harness::make_bench_runner(opts, "ablation");

  std::printf("Ablation 1: anti-ECN marking threshold (probe bytes)\n");
  harness::Table t1{{"probe_bytes", "f3_fct_ms", "mean_util", "max_queue"}};
  {
    const std::vector<std::uint32_t> probes{750u, 1500u, 3000u, 6000u};
    std::vector<DynamicConfig> points;
    for (std::uint32_t probe : probes) {
      auto cfg = base_dynamic();
      cfg.marker_probe_bytes = probe;
      cfg.seed = opts.seed;
      points.push_back(cfg);
    }
    const auto rs = runner.map_points(
        points, [](const DynamicConfig& cfg) { return harness::run_dynamic(cfg); });
    for (std::size_t i = 0; i < rs.size(); ++i) {
      t1.add_row({std::to_string(probes[i]), harness::fmt(rs[i].flow_fct_ms[2]),
                  harness::fmt_pct(rs[i].mean_util_b1), std::to_string(rs[i].max_queue_pkts)});
    }
  }
  if (opts.csv) t1.print_csv(std::cout); else t1.print(std::cout);

  std::printf("\nAblation 2: marked-grant allowance (paper: 2)\n");
  harness::Table t2{{"allowance", "f3_fct_ms", "mean_util", "max_queue"}};
  {
    const std::vector<std::uint16_t> allowances{2, 3, 4};
    std::vector<DynamicConfig> points;
    for (std::uint16_t allowance : allowances) {
      auto cfg = base_dynamic();
      cfg.amrt_marked_allowance = allowance;
      cfg.seed = opts.seed;
      points.push_back(cfg);
    }
    const auto rs = runner.map_points(
        points, [](const DynamicConfig& cfg) { return harness::run_dynamic(cfg); });
    for (std::size_t i = 0; i < rs.size(); ++i) {
      t2.add_row({std::to_string(allowances[i]), harness::fmt(rs[i].flow_fct_ms[2]),
                  harness::fmt_pct(rs[i].mean_util_b1), std::to_string(rs[i].max_queue_pkts)});
    }
  }
  if (opts.csv) t2.print_csv(std::cout); else t2.print(std::cout);

  std::printf("\nAblation 3: receiver loss timeout on a loaded fabric cell (Web Search, load 0.7)\n");
  harness::Table t3{{"rto_x_rtt", "afct_us", "p99_us", "small_afct_us", "drops"}};
  {
    const std::vector<int> multiples{1, 2, 3, 5};
    std::vector<harness::ExperimentConfig> points;
    for (int x : multiples) {
      harness::ExperimentConfig cfg;
      cfg.proto = transport::Protocol::kAmrt;
      cfg.workload = workload::Kind::kWebSearch;
      cfg.load = 0.7;
      cfg.n_flows = opts.scaled(200);
      cfg.seed = opts.seed;
      cfg.loss_timeout = net::path_base_rtt(4, cfg.link_rate, cfg.link_delay) * x;
      points.push_back(cfg);
    }
    const auto rs = runner.run(points);
    for (std::size_t i = 0; i < rs.size(); ++i) {
      t3.add_row({std::to_string(multiples[i]), harness::fmt(rs[i].fct_all.afct_us, 1),
                  harness::fmt(rs[i].fct_all.p99_us, 1), harness::fmt(rs[i].fct_small.afct_us, 1),
                  std::to_string(rs[i].drops)});
    }
  }
  if (opts.csv) t3.print_csv(std::cout); else t3.print(std::cout);

  std::printf("\nAblation 4: per-flow ECMP vs per-packet spraying (Web Search, load 0.7)\n");
  harness::Table t4{{"proto", "multipath", "afct_us", "p99_us", "util"}};
  {
    std::vector<harness::ExperimentConfig> points;
    for (auto proto : {transport::Protocol::kNdp, transport::Protocol::kAmrt}) {
      for (auto mode : {net::MultipathMode::kPerFlowEcmp, net::MultipathMode::kPacketSpray}) {
        harness::ExperimentConfig cfg;
        cfg.proto = proto;
        cfg.workload = workload::Kind::kWebSearch;
        cfg.load = 0.7;
        cfg.n_flows = opts.scaled(200);
        cfg.seed = opts.seed;
        cfg.multipath = mode;
        points.push_back(cfg);
      }
    }
    const auto rs = runner.run(points);
    for (std::size_t i = 0; i < rs.size(); ++i) {
      t4.add_row({transport::to_string(points[i].proto),
                  points[i].multipath == net::MultipathMode::kPerFlowEcmp ? "per-flow" : "spray",
                  harness::fmt(rs[i].fct_all.afct_us, 1), harness::fmt(rs[i].fct_all.p99_us, 1),
                  harness::fmt_pct(rs[i].mean_utilization)});
    }
  }
  if (opts.csv) t4.print_csv(std::cout); else t4.print(std::cout);

  std::printf("\nAblation 5: Aeolus-style selective dropping of blind packets (32-way incast)\n");
  harness::Table t5{{"queue", "afct_us", "p99_us", "drops", "goodput_gbps"}};
  {
    const std::vector<bool> modes{false, true};
    std::vector<harness::IncastConfig> points;
    for (bool selective : modes) {
      harness::IncastConfig cfg;
      cfg.proto = transport::Protocol::kAmrt;
      cfg.senders = 32;
      cfg.queues.buffer_pkts = 8;
      cfg.queues.selective_drop = selective;
      cfg.seed = opts.seed;
      points.push_back(cfg);
    }
    const auto rs = runner.map_points(
        points, [](const harness::IncastConfig& cfg) { return harness::run_incast(cfg); });
    for (std::size_t i = 0; i < rs.size(); ++i) {
      t5.add_row({modes[i] ? "selective-drop" : "drop-tail", harness::fmt(rs[i].fct.afct_us, 1),
                  harness::fmt(rs[i].fct.p99_us, 1), std::to_string(rs[i].drops),
                  harness::fmt(rs[i].goodput_gbps)});
    }
  }
  if (opts.csv) t5.print_csv(std::cout); else t5.print(std::cout);
  return 0;
}
