// Figure 12: average and 99th-percentile FCT vs load (0.1-0.7) under the
// five realistic workloads, for pHost / Homa / NDP / AMRT.
//
// Default: a scaled-down fabric (4 leaves x 4 spines x 8 hosts, 10us links)
// and loads {0.3, 0.5, 0.7} so the sweep finishes in minutes. --paper-scale
// restores Section 8.1's 10x8x40 fabric with 100us links and all 7 loads.
// Expected shape: AMRT lowest AFCT/p99 everywhere, with the margin growing
// with load and largest for Data Mining.
#include <cstdio>
#include <iostream>

#include "harness/csv.hpp"
#include "harness/options.hpp"
#include "harness/sweep.hpp"

using namespace amrt;
using harness::ExperimentConfig;

namespace {
constexpr transport::Protocol kProtos[] = {transport::Protocol::kPhost, transport::Protocol::kHoma,
                                           transport::Protocol::kNdp, transport::Protocol::kAmrt};

// Flow-count budget per workload so every cell moves a similar byte volume.
std::size_t base_flows(workload::Kind k) {
  switch (k) {
    case workload::Kind::kWebServer: return 600;
    case workload::Kind::kCacheFollower: return 300;
    case workload::Kind::kHadoop: return 250;
    case workload::Kind::kWebSearch: return 250;
    case workload::Kind::kDataMining: return 300;
  }
  return 200;
}
}  // namespace

int main(int argc, char** argv) {
  const auto opts = harness::parse_bench_options(argc, argv);
  std::vector<double> loads = opts.loads;
  if (loads.empty()) loads = opts.paper_scale ? std::vector<double>{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7}
                                              : std::vector<double>{0.3, 0.5, 0.7};

  harness::Table table{{"workload", "load", "pHost_afct_us", "pHost_p99_us", "Homa_afct_us",
                        "Homa_p99_us", "NDP_afct_us", "NDP_p99_us", "AMRT_afct_us", "AMRT_p99_us",
                        "AMRT_vs_pHost", "AMRT_vs_Homa", "AMRT_vs_NDP"}};

  std::printf("Fig. 12 reproduction: FCT vs load (%s scale, seed %llu)\n",
              opts.paper_scale ? "paper" : "laptop", static_cast<unsigned long long>(opts.seed));

  // One sweep point per (workload, load, protocol) cell, protocol innermost.
  std::vector<ExperimentConfig> points;
  for (auto wk : workload::kAllKinds) {
    for (double load : loads) {
      for (auto proto : kProtos) {
        ExperimentConfig cfg;
        cfg.proto = proto;
        cfg.workload = wk;
        cfg.load = load;
        cfg.n_flows = opts.scaled(base_flows(wk));
        cfg.seed = opts.seed;
        if (opts.paper_scale) {
          cfg.leaves = 10;
          cfg.spines = 8;
          cfg.hosts_per_leaf = 40;
          cfg.link_delay = sim::Duration::microseconds(100);
        }
        points.push_back(cfg);
      }
    }
  }

  harness::SweepRunner runner = harness::make_bench_runner(opts, "fig12");
  const auto results = runner.run(points);
  harness::export_json_if_requested(opts, points, results);

  std::size_t idx = 0;
  for (auto wk : workload::kAllKinds) {
    for (double load : loads) {
      double afct[4] = {0, 0, 0, 0};
      double p99[4] = {0, 0, 0, 0};
      for (int p = 0; p < 4; ++p) {
        const auto& r = results[idx++];
        afct[p] = r.fct_all.afct_us;
        p99[p] = r.fct_all.p99_us;
        std::fprintf(stderr, "  [%s %s load=%.1f] afct=%.1fus p99=%.1fus done=%zu/%zu wall=%.1fs\n",
                     workload::abbrev(wk), transport::to_string(kProtos[p]), load, afct[p], p99[p],
                     r.flows_completed, r.flows_started, r.wall_seconds);
      }
      auto reduction = [&](int base) {
        return afct[base] > 0 ? (afct[base] - afct[3]) / afct[base] : 0.0;
      };
      table.add_row({workload::abbrev(wk), harness::fmt(load, 1), harness::fmt(afct[0], 1),
                     harness::fmt(p99[0], 1), harness::fmt(afct[1], 1), harness::fmt(p99[1], 1),
                     harness::fmt(afct[2], 1), harness::fmt(p99[2], 1), harness::fmt(afct[3], 1),
                     harness::fmt(p99[3], 1), harness::fmt_pct(reduction(0)),
                     harness::fmt_pct(reduction(1)), harness::fmt_pct(reduction(2))});
    }
  }

  if (opts.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
    std::printf(
        "\nPaper reference (load 0.7, Data Mining): AMRT reduces AFCT by ~40.8%% vs pHost,\n"
        "~26.4%% vs Homa, ~18.3%% vs NDP; the margin grows with load.\n");
  }
  return 0;
}
