// Figure 9: the testbed dynamic-traffic experiment (Fig. 8 topology) on the
// simulated 1GbE substrate. Two independent bottlenecks: f1/f2 share one,
// f3/f4 the other. f1 finishes early; f2 should absorb its bandwidth within
// ~2ms; f3 finishes later and f4 absorbs in turn.
//
// Expected shape (paper Fig. 9): each survivor's normalized throughput steps
// from ~0.5 to ~1.0 shortly after its partner completes, and both
// bottlenecks end up fully utilized.
#include <cstdio>
#include <iostream>

#include "harness/csv.hpp"
#include "harness/options.hpp"
#include "harness/scenarios.hpp"
#include "harness/sweep.hpp"

using namespace amrt;
using harness::DynamicConfig;
using harness::DynamicFlow;

int main(int argc, char** argv) {
  const auto opts = harness::parse_bench_options(argc, argv);
  using sim::Duration;

  // The two bottlenecks are independent; model them as two runs of the
  // shared-bottleneck rig at 1Gbps (see DESIGN.md's experiment index).
  DynamicConfig pair_a;
  pair_a.proto = transport::Protocol::kAmrt;
  pair_a.link_rate = sim::Bandwidth::gbps(1);
  pair_a.link_delay = Duration::microseconds(100);  // testbed-like ~0.6ms RTT
  pair_a.seed = opts.seed;
  pair_a.flows = {DynamicFlow{300'000, Duration::zero()}, DynamicFlow{1'800'000, Duration::zero()}};
  pair_a.duration = Duration::milliseconds(25);
  pair_a.bin = Duration::microseconds(500);

  DynamicConfig pair_b = pair_a;
  pair_b.flows = {DynamicFlow{800'000, Duration::zero()}, DynamicFlow{2'000'000, Duration::zero()}};

  harness::SweepRunner runner = harness::make_bench_runner(opts, "fig09");
  const std::vector<DynamicConfig> cells{pair_a, pair_b};
  const auto results =
      runner.map_points(cells, [](const DynamicConfig& c) { return harness::run_dynamic(c); });
  const auto& ra = results[0];
  const auto& rb = results[1];

  harness::Table table{{"t_ms", "f1_norm", "f2_norm", "f3_norm", "f4_norm", "B_a_util", "B_b_util"}};
  auto norm = [](const std::vector<double>& v, std::size_t b) {
    return b < v.size() ? v[b] / 1.0 : 0.0;  // 1Gbps link => Gbps is the normalized unit
  };
  const std::size_t bins = std::max(ra.bottleneck1_util.size(), rb.bottleneck1_util.size());
  for (std::size_t b = 0; b < bins; b += 2) {
    table.add_row({harness::fmt(static_cast<double>(b) * ra.bin.to_millis(), 1),
                   harness::fmt(norm(ra.flow_gbps[0], b)), harness::fmt(norm(ra.flow_gbps[1], b)),
                   harness::fmt(norm(rb.flow_gbps[0], b)), harness::fmt(norm(rb.flow_gbps[1], b)),
                   harness::fmt(b < ra.bottleneck1_util.size() ? ra.bottleneck1_util[b] : 0.0),
                   harness::fmt(b < rb.bottleneck1_util.size() ? rb.bottleneck1_util[b] : 0.0)});
  }

  std::printf("Fig. 9 reproduction: AMRT throughput under dynamic traffic (1GbE testbed params)\n");
  if (opts.csv) table.print_csv(std::cout); else table.print(std::cout);

  std::printf("\nf1 fct %.2fms (f2 absorbs after), f3 fct %.2fms (f4 absorbs after)\n",
              ra.flow_fct_ms[0], rb.flow_fct_ms[0]);
  std::printf("bottleneck mean utilization: a %.1f%%, b %.1f%%\n", 100 * ra.mean_util_b1,
              100 * rb.mean_util_b1);
  return 0;
}
