// Mixed-transport coexistence macro-benchmark (DESIGN.md §13): the same
// seeded leaf-spine scenario run three ways — AMRT solo, DCTCP solo, and
// mixed (AMRT foreground + a DCTCP background fraction) — reporting FCT and
// per-link utilization for each mode, as google-benchmark-shaped JSON that
// tools/bench_compare.py --coexist can diff across builds.
//
//   bench_coexist [--leaves N] [--spines N] [--hosts-per-leaf N] [--flows N]
//                 [--load F] [--seed N] [--fraction F] [--json PATH] [--check]
//
// All three modes share one seed and one topology, so the flow schedule is
// identical across them — the mixed run literally re-carries 100*fraction %
// of the same flow ids on DCTCP. --check exits non-zero unless every flow
// completes in every mode (the coexist_smoke ctest).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/experiment.hpp"

using namespace amrt;

namespace {

struct Options {
  int leaves = 2;
  int spines = 2;
  int hosts_per_leaf = 4;
  std::size_t flows = 120;
  double load = 0.6;
  std::uint64_t seed = 42;
  double fraction = 0.25;  // DCTCP background share of the mixed run
  std::string json_path;
  bool check = false;
};

struct ModeResult {
  std::string name;
  harness::ExperimentResult r;
  double wall_ms = 0.0;
};

harness::ExperimentConfig base_config(const Options& opt) {
  harness::ExperimentConfig cfg;
  cfg.workload = workload::Kind::kWebSearch;
  cfg.load = opt.load;
  cfg.n_flows = opt.flows;
  cfg.leaves = opt.leaves;
  cfg.spines = opt.spines;
  cfg.hosts_per_leaf = opt.hosts_per_leaf;
  cfg.seed = opt.seed;
  return cfg;
}

ModeResult run_mode(const Options& opt, const char* mode, transport::Protocol proto,
                    double fraction) {
  auto cfg = base_config(opt);
  cfg.proto = proto;
  cfg.background_dctcp_fraction = fraction;
  const auto t0 = std::chrono::steady_clock::now();
  ModeResult m;
  m.r = harness::run_leaf_spine(cfg);
  m.wall_ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                  .count();
  m.name = std::string{"BM_Coexist/leafspine_"} + std::to_string(opt.leaves) + "x" +
           std::to_string(opt.spines) + "x" + std::to_string(opt.hosts_per_leaf) + "/" + mode;
  return m;
}

void print_summary_json(std::FILE* out, const stats::FctSummary& s, const char* key,
                        const char* tail) {
  std::fprintf(out,
               "     \"%s\": {\"completed\": %zu, \"afct_us\": %.3f, \"p50_us\": %.3f, "
               "\"p99_us\": %.3f, \"max_fct_us\": %.3f}%s\n",
               key, s.completed, s.afct_us, s.p50_us, s.p99_us, s.max_fct_us, tail);
}

void print_json(std::FILE* out, const Options& opt, const std::vector<ModeResult>& modes) {
  std::fprintf(out,
               "{\n  \"context\": {\"leaves\": %d, \"spines\": %d, \"hosts_per_leaf\": %d, "
               "\"flows\": %zu, \"load\": %.3f, \"seed\": %llu, \"fraction\": %.3f},\n",
               opt.leaves, opt.spines, opt.hosts_per_leaf, opt.flows, opt.load,
               static_cast<unsigned long long>(opt.seed), opt.fraction);
  std::fprintf(out, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < modes.size(); ++i) {
    const auto& m = modes[i];
    const auto& r = m.r;
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"run_type\": \"iteration\", \"iterations\": 1,\n"
                 "     \"real_time\": %.3f, \"cpu_time\": %.3f, \"time_unit\": \"ms\",\n"
                 "     \"flows\": %zu, \"completed\": %zu,\n"
                 "     \"afct_us\": %.3f, \"p99_us\": %.3f, \"mean_slowdown\": %.4f,\n"
                 "     \"mean_utilization\": %.6f, \"max_queue_pkts\": %zu,\n"
                 "     \"drops\": %llu, \"trims\": %llu, \"events\": %llu,\n",
                 m.name.c_str(), m.wall_ms, m.wall_ms, r.flows_started, r.flows_completed,
                 r.fct_all.afct_us, r.fct_all.p99_us, r.fct_all.mean_slowdown,
                 r.mean_utilization, r.max_queue_pkts, static_cast<unsigned long long>(r.drops),
                 static_cast<unsigned long long>(r.trims),
                 static_cast<unsigned long long>(r.events));
    print_summary_json(out, r.fct_foreground, "foreground", ",");
    print_summary_json(out, r.fct_background, "background", ",");
    std::fprintf(out, "     \"downlink_utilization\": [");
    for (std::size_t u = 0; u < r.downlink_utilization.size(); ++u) {
      std::fprintf(out, "%s%.6f", u == 0 ? "" : ", ", r.downlink_utilization[u]);
    }
    std::fprintf(out, "]}%s\n", i + 1 < modes.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--leaves N] [--spines N] [--hosts-per-leaf N] [--flows N]\n"
               "          [--load F] [--seed N] [--fraction F] [--json PATH] [--check]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--leaves") {
      opt.leaves = std::atoi(next());
    } else if (arg == "--spines") {
      opt.spines = std::atoi(next());
    } else if (arg == "--hosts-per-leaf") {
      opt.hosts_per_leaf = std::atoi(next());
    } else if (arg == "--flows") {
      opt.flows = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--load") {
      opt.load = std::atof(next());
    } else if (arg == "--seed") {
      opt.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--fraction") {
      opt.fraction = std::atof(next());
      if (opt.fraction <= 0.0 || opt.fraction >= 1.0) {
        std::fprintf(stderr, "bench_coexist: --fraction must be in (0, 1)\n");
        return 2;
      }
    } else if (arg == "--json") {
      opt.json_path = next();
    } else if (arg == "--check") {
      opt.check = true;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (opt.check) {
    opt.flows = 60;  // a few seconds, same fabric
  }

  std::vector<ModeResult> modes;
  modes.push_back(run_mode(opt, "amrt_solo", transport::Protocol::kAmrt, 0.0));
  modes.push_back(run_mode(opt, "dctcp_solo", transport::Protocol::kDctcp, 0.0));
  modes.push_back(run_mode(opt, "mixed", transport::Protocol::kAmrt, opt.fraction));

  bool ok = true;
  for (const auto& m : modes) {
    const auto& r = m.r;
    std::fprintf(stderr,
                 "%-36s %7.1f ms  %zu/%zu flows  afct %8.1f us  p99 %9.1f us  util %5.1f%%  "
                 "fg/bg %zu/%zu\n",
                 m.name.c_str(), m.wall_ms, r.flows_completed, r.flows_started,
                 r.fct_all.afct_us, r.fct_all.p99_us, 100.0 * r.mean_utilization,
                 r.fct_foreground.completed, r.fct_background.completed);
    if (r.flows_completed != r.flows_started) {
      std::fprintf(stderr, "FAIL: %s completed only %zu of %zu flows\n", m.name.c_str(),
                   r.flows_completed, r.flows_started);
      ok = false;
    }
  }

  if (!opt.json_path.empty()) {
    if (opt.json_path == "-") {
      print_json(stdout, opt, modes);
    } else {
      std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
      if (f == nullptr) {
        std::perror("bench_coexist: fopen");
        return 1;
      }
      print_json(f, opt, modes);
      std::fclose(f);
    }
  }
  return ok ? 0 : 1;
}
