// Figure 2: the dynamic-traffic motivation experiment. Four pHost flows
// with distinct sender/receiver pairs share one 10Gbps bottleneck; sizes
// are staggered so they finish one after another.
//
// Expected shape (paper Fig. 2b): utilization steps down ~25% with each
// completion — the survivors cannot raise their arrival-clocked rates. The
// AMRT columns show the survivors absorbing the freed bandwidth instead.
#include <cstdio>
#include <iostream>

#include "harness/csv.hpp"
#include "harness/options.hpp"
#include "harness/scenarios.hpp"
#include "harness/sweep.hpp"

using namespace amrt;
using harness::DynamicConfig;
using harness::DynamicFlow;

namespace {
harness::TimelineResult run(transport::Protocol proto, std::uint64_t seed) {
  using sim::Duration;
  DynamicConfig cfg;
  cfg.proto = proto;
  cfg.seed = seed;
  cfg.flows = {
      DynamicFlow{2'500'000, Duration::zero()},
      DynamicFlow{5'000'000, Duration::zero()},
      DynamicFlow{7'500'000, Duration::zero()},
      DynamicFlow{10'000'000, Duration::zero()},
  };
  cfg.duration = Duration::milliseconds(30);
  cfg.bin = Duration::microseconds(250);
  return harness::run_dynamic(cfg);
}
}  // namespace

int main(int argc, char** argv) {
  const auto opts = harness::parse_bench_options(argc, argv);
  harness::SweepRunner runner = harness::make_bench_runner(opts, "fig02");
  const std::vector<transport::Protocol> protos{transport::Protocol::kPhost,
                                                transport::Protocol::kAmrt};
  const auto results =
      runner.map_points(protos, [&](transport::Protocol p) { return run(p, opts.seed); });
  const auto& phost = results[0];
  const auto& amrt_r = results[1];

  harness::Table table{{"t_ms", "pHost_util", "AMRT_util", "pHost_active", "AMRT_active"}};
  auto active = [](const harness::TimelineResult& r, std::size_t b) {
    int n = 0;
    for (const auto& s : r.flow_gbps) {
      if (b < s.size() && s[b] > 0.05) ++n;
    }
    return n;
  };
  for (std::size_t b = 0; b < phost.bottleneck1_util.size(); b += 4) {
    table.add_row({harness::fmt(static_cast<double>(b) * phost.bin.to_millis(), 2),
                   harness::fmt(phost.bottleneck1_util[b]),
                   harness::fmt(b < amrt_r.bottleneck1_util.size() ? amrt_r.bottleneck1_util[b] : 0.0),
                   std::to_string(active(phost, b)), std::to_string(active(amrt_r, b))});
  }

  std::printf("Fig. 2 reproduction: pHost utilization staircase under dynamic traffic\n");
  if (opts.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  std::printf("\nFCTs (ms):   pHost        AMRT\n");
  for (std::size_t f = 0; f < phost.flow_fct_ms.size(); ++f) {
    auto cell = [](double v) { return v < 0 ? std::string("(running)") : harness::fmt(v, 2); };
    std::printf("  f%zu        %-12s %-12s\n", f + 1, cell(phost.flow_fct_ms[f]).c_str(),
                cell(amrt_r.flow_fct_ms[f]).c_str());
  }
  std::printf("mean utilization: pHost %.1f%%, AMRT %.1f%%\n", 100 * phost.mean_util_b1,
              100 * amrt_r.mean_util_b1);
  return 0;
}
