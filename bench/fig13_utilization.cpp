// Figure 13: bottleneck (receiver downlink) utilization vs number of flows
// under the five realistic workloads, for pHost / Homa / NDP / AMRT.
//
// Default: scaled-down fabric with flow counts {100, 200, 400}; --paper-scale
// uses Section 8.1's fabric and counts up to 800. Expected shape: AMRT
// highest everywhere (paper: +36.8% / +22.5% / +11.6% over pHost / Homa /
// NDP on Data Mining at 800 flows), with ordering AMRT > NDP > Homa > pHost.
#include <cstdio>
#include <iostream>

#include "harness/csv.hpp"
#include "harness/options.hpp"
#include "harness/sweep.hpp"

using namespace amrt;
using harness::ExperimentConfig;

namespace {
constexpr transport::Protocol kProtos[] = {transport::Protocol::kPhost, transport::Protocol::kHoma,
                                           transport::Protocol::kNdp, transport::Protocol::kAmrt};
}

int main(int argc, char** argv) {
  const auto opts = harness::parse_bench_options(argc, argv);
  std::vector<std::size_t> flow_counts =
      opts.paper_scale ? std::vector<std::size_t>{100, 200, 400, 800}
                       : std::vector<std::size_t>{100, 200, 400};
  if (opts.flows) flow_counts = {*opts.flows};

  harness::Table table{{"workload", "flows", "pHost_util", "Homa_util", "NDP_util", "AMRT_util",
                        "AMRT_vs_pHost", "AMRT_vs_Homa", "AMRT_vs_NDP"}};

  std::printf("Fig. 13 reproduction: bottleneck utilization vs flow count (%s scale)\n",
              opts.paper_scale ? "paper" : "laptop");

  std::vector<ExperimentConfig> points;
  for (auto wk : workload::kAllKinds) {
    for (std::size_t n : flow_counts) {
      for (auto proto : kProtos) {
        ExperimentConfig cfg;
        cfg.proto = proto;
        cfg.workload = wk;
        cfg.load = 0.6;  // a busy fabric, short of saturation
        cfg.n_flows = static_cast<std::size_t>(static_cast<double>(n) * opts.scale);
        cfg.seed = opts.seed;
        if (opts.paper_scale) {
          cfg.leaves = 10;
          cfg.spines = 8;
          cfg.hosts_per_leaf = 40;
          cfg.link_delay = sim::Duration::microseconds(100);
        }
        points.push_back(cfg);
      }
    }
  }

  harness::SweepRunner runner = harness::make_bench_runner(opts, "fig13");
  const auto results = runner.run(points);
  harness::export_json_if_requested(opts, points, results);

  std::size_t idx = 0;
  for (auto wk : workload::kAllKinds) {
    for (std::size_t n : flow_counts) {
      double util[4] = {0, 0, 0, 0};
      for (int p = 0; p < 4; ++p) {
        const auto& r = results[idx];
        util[p] = r.mean_utilization;
        std::fprintf(stderr, "  [%s %s n=%zu] util=%.3f done=%zu/%zu wall=%.1fs\n",
                     workload::abbrev(wk), transport::to_string(kProtos[p]), points[idx].n_flows,
                     util[p], r.flows_completed, r.flows_started, r.wall_seconds);
        ++idx;
      }
      auto gain = [&](int base) { return util[base] > 0 ? (util[3] - util[base]) / util[base] : 0.0; };
      table.add_row({workload::abbrev(wk), std::to_string(n), harness::fmt_pct(util[0]),
                     harness::fmt_pct(util[1]), harness::fmt_pct(util[2]), harness::fmt_pct(util[3]),
                     harness::fmt_pct(gain(0)), harness::fmt_pct(gain(1)), harness::fmt_pct(gain(2))});
    }
  }

  if (opts.csv) table.print_csv(std::cout); else table.print(std::cout);
  std::printf("\nPaper reference (Data Mining, 800 flows): pHost ~61%%, Homa ~68%%, NDP ~75%%;\n"
              "AMRT improves them by ~36.8%%, ~22.5%%, ~11.6%% respectively.\n");
  return 0;
}
