// Figure 1: the multi-bottleneck motivation experiment. Four pHost flows on
// a two-bottleneck chain (10Gbps, ~100us RTT, per-flow sender/receiver
// pairs): f0 crosses both bottlenecks, f1 shares the first with it, f2 and
// f3 the second. f2 starts at 1ms, f3 at 3.5ms.
//
// Expected shape (paper Fig. 1b): the first bottleneck starts ~fully used
// by f0+f1; when f2 starts, f0's rate collapses and the first bottleneck's
// utilization drops toward ~83%, then toward ~66% when f3 starts — f1 never
// grabs the bandwidth f0 released. The AMRT column shows the contrast: f1
// climbs as f0 shrinks.
#include <cstdio>
#include <iostream>

#include "harness/csv.hpp"
#include "harness/options.hpp"
#include "harness/scenarios.hpp"
#include "harness/sweep.hpp"

using namespace amrt;
using harness::ChainConfig;
using harness::ChainFlow;
using harness::ChainPath;

namespace {
harness::TimelineResult run(transport::Protocol proto, std::uint64_t seed) {
  using sim::Duration;
  ChainConfig cfg;
  cfg.proto = proto;
  cfg.seed = seed;
  // Long-lived flows so the timeline, not the completions, is the subject.
  cfg.flows = {
      ChainFlow{ChainPath::kBoth, 30'000'000, Duration::zero()},            // f0
      ChainFlow{ChainPath::kFirst, 30'000'000, Duration::zero()},           // f1
      ChainFlow{ChainPath::kSecond, 30'000'000, Duration::milliseconds(1)}, // f2
      ChainFlow{ChainPath::kSecond, 30'000'000, sim::Duration::nanoseconds(3'500'000)},  // f3
  };
  cfg.duration = Duration::milliseconds(7);
  cfg.bin = Duration::microseconds(250);
  return harness::run_chain(cfg);
}
}  // namespace

int main(int argc, char** argv) {
  const auto opts = harness::parse_bench_options(argc, argv);
  harness::SweepRunner runner = harness::make_bench_runner(opts, "fig01");
  const std::vector<transport::Protocol> protos{transport::Protocol::kPhost,
                                                transport::Protocol::kAmrt};
  const auto results =
      runner.map_points(protos, [&](transport::Protocol p) { return run(p, opts.seed); });
  const auto& phost = results[0];
  const auto& amrt_r = results[1];

  harness::Table table{{"t_ms", "pHost_f0_gbps", "pHost_f1_gbps", "pHost_B1_util", "AMRT_f0_gbps",
                        "AMRT_f1_gbps", "AMRT_B1_util"}};
  auto at = [](const std::vector<double>& v, std::size_t i) { return i < v.size() ? v[i] : 0.0; };
  for (std::size_t b = 0; b < phost.bottleneck1_util.size(); b += 2) {
    table.add_row({harness::fmt(static_cast<double>(b) * phost.bin.to_millis(), 2),
                   harness::fmt(at(phost.flow_gbps[0], b)), harness::fmt(at(phost.flow_gbps[1], b)),
                   harness::fmt(phost.bottleneck1_util[b]), harness::fmt(at(amrt_r.flow_gbps[0], b)),
                   harness::fmt(at(amrt_r.flow_gbps[1], b)), harness::fmt(amrt_r.bottleneck1_util[b])});
  }

  std::printf("Fig. 1 reproduction: pHost under-utilization on the first bottleneck\n");
  if (opts.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  auto window_mean = [&](const std::vector<double>& u, double from_ms, double to_ms) {
    double sum = 0;
    std::size_t n = 0;
    for (std::size_t b = 0; b < u.size(); ++b) {
      const double t = static_cast<double>(b) * phost.bin.to_millis();
      if (t >= from_ms && t < to_ms) {
        sum += u[b];
        ++n;
      }
    }
    return n ? sum / static_cast<double>(n) : 0.0;
  };
  std::printf("\npHost B1 utilization: before f2 %.1f%%, f2..f3 %.1f%% (paper ~83%%), after f3 %.1f%% (paper ~66%%)\n",
              100 * window_mean(phost.bottleneck1_util, 0.3, 1.0),
              100 * window_mean(phost.bottleneck1_util, 1.5, 3.5),
              100 * window_mean(phost.bottleneck1_util, 4.5, 7.0));
  std::printf("AMRT  B1 utilization: before f2 %.1f%%, f2..f3 %.1f%%, after f3 %.1f%% (marking refills)\n",
              100 * window_mean(amrt_r.bottleneck1_util, 0.3, 1.0),
              100 * window_mean(amrt_r.bottleneck1_util, 1.5, 3.5),
              100 * window_mean(amrt_r.bottleneck1_util, 4.5, 7.0));
  return 0;
}
