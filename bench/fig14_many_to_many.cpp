// Figure 14: many-to-many communication with unresponsive senders. Forty
// senders (under two leaves) each open connections to two receivers (under a
// third leaf); only a fraction of senders answer grants. Homa runs with
// overcommitment degrees 2/4/8, AMRT with plain anti-ECN granting.
//
// Expected shape (paper Fig. 14): Homa's downlink utilization rises with K
// but its queue grows ~4x from K=2 to K=8; AMRT matches the best utilization
// with a small queue at every responsive ratio.
#include <cstdio>
#include <iostream>

#include "harness/csv.hpp"
#include "harness/options.hpp"
#include "harness/scenarios.hpp"
#include "harness/sweep.hpp"

using namespace amrt;
using harness::ManyToManyConfig;

namespace {
struct Cell {
  double util = 0;
  double max_q = 0;
};

// The four table columns per ratio row: Homa K=2/4/8 and AMRT.
struct Variant {
  transport::Protocol proto;
  int overcommit;
};
constexpr Variant kVariants[] = {{transport::Protocol::kHoma, 2},
                                 {transport::Protocol::kHoma, 4},
                                 {transport::Protocol::kHoma, 8},
                                 {transport::Protocol::kAmrt, 2}};
}  // namespace

int main(int argc, char** argv) {
  const auto opts = harness::parse_bench_options(argc, argv);
  // Paper averages 50 repetitions; the default keeps 5 for speed.
  const int repeats = opts.paper_scale ? 50 : std::max(1, static_cast<int>(5 * opts.scale));

  harness::Table table{{"ratio", "Homa_K2_util", "Homa_K4_util", "Homa_K8_util", "AMRT_util",
                        "Homa_K2_maxQ", "Homa_K4_maxQ", "Homa_K8_maxQ", "AMRT_maxQ"}};

  std::printf("Fig. 14 reproduction: utilization & queueing vs responsive sender ratio (%d repeats)\n",
              repeats);

  // Flatten ratio x variant x repeat into one sweep; repeats only differ in
  // seed and are averaged per (ratio, variant) cell afterwards.
  std::vector<double> ratios;
  for (double ratio = 0.1; ratio <= 1.001; ratio += opts.paper_scale ? 0.1 : 0.2) {
    ratios.push_back(ratio);
  }
  std::vector<ManyToManyConfig> points;
  for (double ratio : ratios) {
    for (const auto& v : kVariants) {
      for (int rep = 0; rep < repeats; ++rep) {
        ManyToManyConfig cfg;
        cfg.proto = v.proto;
        cfg.homa_overcommit = v.overcommit;
        cfg.responsive_ratio = ratio;
        cfg.seed = opts.seed + static_cast<std::uint64_t>(rep) * 7919;
        points.push_back(cfg);
      }
    }
  }

  harness::SweepRunner runner = harness::make_bench_runner(opts, "fig14");
  const auto results = runner.map_points(
      points, [](const ManyToManyConfig& cfg) { return harness::run_many_to_many(cfg); });

  std::size_t idx = 0;
  for (double ratio : ratios) {
    Cell cells[4];
    for (auto& cell : cells) {
      for (int rep = 0; rep < repeats; ++rep) {
        const auto& r = results[idx++];
        cell.util += r.mean_downlink_util;
        cell.max_q += static_cast<double>(r.max_queue_pkts);
      }
      cell.util /= repeats;
      cell.max_q /= repeats;
    }
    table.add_row({harness::fmt(ratio, 1), harness::fmt_pct(cells[0].util),
                   harness::fmt_pct(cells[1].util), harness::fmt_pct(cells[2].util),
                   harness::fmt_pct(cells[3].util), harness::fmt(cells[0].max_q, 0),
                   harness::fmt(cells[1].max_q, 0), harness::fmt(cells[2].max_q, 0),
                   harness::fmt(cells[3].max_q, 0)});
  }

  if (opts.csv) table.print_csv(std::cout); else table.print(std::cout);
  std::printf("\nPaper reference: at ratio 0.5, Homa K=8 improves utilization ~32%% over K=2 but\n"
              "queues ~4x deeper; AMRT keeps both high utilization and a short queue.\n");
  return 0;
}
