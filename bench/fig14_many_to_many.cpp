// Figure 14: many-to-many communication with unresponsive senders. Forty
// senders (under two leaves) each open connections to two receivers (under a
// third leaf); only a fraction of senders answer grants. Homa runs with
// overcommitment degrees 2/4/8, AMRT with plain anti-ECN granting.
//
// Expected shape (paper Fig. 14): Homa's downlink utilization rises with K
// but its queue grows ~4x from K=2 to K=8; AMRT matches the best utilization
// with a small queue at every responsive ratio.
#include <cstdio>
#include <iostream>

#include "harness/csv.hpp"
#include "harness/options.hpp"
#include "harness/scenarios.hpp"

using namespace amrt;
using harness::ManyToManyConfig;

namespace {
struct Cell {
  double util = 0;
  double max_q = 0;
};

Cell averaged(transport::Protocol proto, int overcommit, double ratio, std::uint64_t seed,
              int repeats) {
  Cell out;
  for (int rep = 0; rep < repeats; ++rep) {
    ManyToManyConfig cfg;
    cfg.proto = proto;
    cfg.homa_overcommit = overcommit;
    cfg.responsive_ratio = ratio;
    cfg.seed = seed + static_cast<std::uint64_t>(rep) * 7919;
    const auto r = harness::run_many_to_many(cfg);
    out.util += r.mean_downlink_util;
    out.max_q += static_cast<double>(r.max_queue_pkts);
  }
  out.util /= repeats;
  out.max_q /= repeats;
  return out;
}
}  // namespace

int main(int argc, char** argv) {
  const auto opts = harness::parse_bench_options(argc, argv);
  // Paper averages 50 repetitions; the default keeps 5 for speed.
  const int repeats = opts.paper_scale ? 50 : std::max(1, static_cast<int>(5 * opts.scale));

  harness::Table table{{"ratio", "Homa_K2_util", "Homa_K4_util", "Homa_K8_util", "AMRT_util",
                        "Homa_K2_maxQ", "Homa_K4_maxQ", "Homa_K8_maxQ", "AMRT_maxQ"}};

  std::printf("Fig. 14 reproduction: utilization & queueing vs responsive sender ratio (%d repeats)\n",
              repeats);
  for (double ratio = 0.1; ratio <= 1.001; ratio += opts.paper_scale ? 0.1 : 0.2) {
    const Cell k2 = averaged(transport::Protocol::kHoma, 2, ratio, opts.seed, repeats);
    const Cell k4 = averaged(transport::Protocol::kHoma, 4, ratio, opts.seed, repeats);
    const Cell k8 = averaged(transport::Protocol::kHoma, 8, ratio, opts.seed, repeats);
    const Cell am = averaged(transport::Protocol::kAmrt, 2, ratio, opts.seed, repeats);
    table.add_row({harness::fmt(ratio, 1), harness::fmt_pct(k2.util), harness::fmt_pct(k4.util),
                   harness::fmt_pct(k8.util), harness::fmt_pct(am.util), harness::fmt(k2.max_q, 0),
                   harness::fmt(k4.max_q, 0), harness::fmt(k8.max_q, 0),
                   harness::fmt(am.max_q, 0)});
    std::fprintf(stderr, "  ratio %.1f done\n", ratio);
  }

  if (opts.csv) table.print_csv(std::cout); else table.print(std::cout);
  std::printf("\nPaper reference: at ratio 0.5, Homa K=8 improves utilization ~32%% over K=2 but\n"
              "queues ~4x deeper; AMRT keeps both high utilization and a short queue.\n");
  return 0;
}
