// Incast sweep (Section 8.2's second scenario): N synchronized senders to
// one receiver with Section 6's small-buffer discipline, N from 8 to 64.
// Reports AFCT, p99, drops/trims and goodput per protocol.
//
// Expected shape: NDP never drops (trims instead); AMRT recovers with its
// 1xRTT grant reissue and stays close to the best AFCT; everyone completes.
#include <cstdio>
#include <iostream>

#include "harness/csv.hpp"
#include "harness/options.hpp"
#include "harness/scenarios.hpp"
#include "harness/sweep.hpp"

using namespace amrt;

int main(int argc, char** argv) {
  const auto opts = harness::parse_bench_options(argc, argv);
  harness::Table table{{"senders", "proto", "afct_us", "p99_us", "completed", "max_queue", "drops",
                        "trims", "goodput_gbps"}};

  std::printf("Incast sweep: synchronized fan-in, 64KB per sender, 8-packet buffers\n");
  std::vector<harness::IncastConfig> points;
  for (int n : {8, 16, 32, 64}) {
    for (auto proto : {transport::Protocol::kPhost, transport::Protocol::kHoma,
                       transport::Protocol::kNdp, transport::Protocol::kAmrt}) {
      harness::IncastConfig cfg;
      cfg.proto = proto;
      cfg.senders = n;
      cfg.queues.buffer_pkts = 8;
      cfg.queues.trim_threshold = 8;
      cfg.seed = opts.seed;
      points.push_back(cfg);
    }
  }

  harness::SweepRunner runner = harness::make_bench_runner(opts, "incast");
  const auto results = runner.map_points(
      points, [](const harness::IncastConfig& cfg) { return harness::run_incast(cfg); });

  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& cfg = points[i];
    const auto& r = results[i];
    table.add_row({std::to_string(cfg.senders), transport::to_string(cfg.proto),
                   harness::fmt(r.fct.afct_us, 1), harness::fmt(r.fct.p99_us, 1),
                   std::to_string(r.fct.completed) + "/" + std::to_string(cfg.senders),
                   std::to_string(r.max_queue_pkts), std::to_string(r.drops),
                   std::to_string(r.trims), harness::fmt(r.goodput_gbps)});
  }
  if (opts.csv) table.print_csv(std::cout); else table.print(std::cout);
  return 0;
}
