// Incast sweep (Section 8.2's second scenario): N synchronized senders to
// one receiver with Section 6's small-buffer discipline, N from 8 to 64.
// Reports AFCT, p99, drops/trims and goodput per protocol.
//
// Expected shape: NDP never drops (trims instead); AMRT recovers with its
// 1xRTT grant reissue and stays close to the best AFCT; everyone completes.
#include <cstdio>
#include <iostream>

#include "harness/csv.hpp"
#include "harness/options.hpp"
#include "harness/scenarios.hpp"

using namespace amrt;

int main(int argc, char** argv) {
  const auto opts = harness::parse_bench_options(argc, argv);
  harness::Table table{{"senders", "proto", "afct_us", "p99_us", "completed", "max_queue", "drops",
                        "trims", "goodput_gbps"}};

  std::printf("Incast sweep: synchronized fan-in, 64KB per sender, 8-packet buffers\n");
  for (int n : {8, 16, 32, 64}) {
    for (auto proto : {transport::Protocol::kPhost, transport::Protocol::kHoma,
                       transport::Protocol::kNdp, transport::Protocol::kAmrt}) {
      harness::IncastConfig cfg;
      cfg.proto = proto;
      cfg.senders = n;
      cfg.queues.buffer_pkts = 8;
      cfg.queues.trim_threshold = 8;
      const auto r = harness::run_incast(cfg);
      table.add_row({std::to_string(n), transport::to_string(proto), harness::fmt(r.fct.afct_us, 1),
                     harness::fmt(r.fct.p99_us, 1),
                     std::to_string(r.fct.completed) + "/" + std::to_string(n),
                     std::to_string(r.max_queue_pkts), std::to_string(r.drops),
                     std::to_string(r.trims), harness::fmt(r.goodput_gbps)});
    }
  }
  if (opts.csv) table.print_csv(std::cout); else table.print(std::cout);
  return 0;
}
