// Traffic-engine layer tests (DESIGN.md §14): the legacy-engine byte-identity
// contract, trace round trips and diagnostics, skew-matrix marginals, group
// structure, and the dump→replay FCT identity through the harness.
#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "stats/group.hpp"
#include "workload/flow_trace.hpp"
#include "workload/generator.hpp"
#include "workload/traffic.hpp"
#include "workload/workloads.hpp"

using namespace amrt;
using workload::ArrivalModel;
using workload::Engine;
using workload::GeneratedFlow;
using workload::PairModel;
using workload::TrafficConfig;
using workload::WorkloadSpec;

namespace {

TrafficConfig small_config(std::size_t n_hosts = 16, std::size_t n_flows = 200) {
  TrafficConfig cfg;
  cfg.load = 0.6;
  cfg.n_flows = n_flows;
  cfg.n_hosts = n_hosts;
  return cfg;
}

std::vector<GeneratedFlow> run_engine(const WorkloadSpec& spec, const TrafficConfig& cfg,
                                      std::uint64_t seed,
                                      workload::Kind kind = workload::Kind::kWebSearch) {
  sim::Rng rng{seed};
  return workload::generate_traffic(spec, &workload::cdf(kind), cfg, rng);
}

// ---------------------------------------------------------------------------
// The byte-identity contract: the default (legacy) engine is draw-for-draw
// the old FlowGenerator.
// ---------------------------------------------------------------------------

TEST(TrafficEngine, LegacyEngineMatchesFlowGeneratorExactly) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL, 31337ULL}) {
    for (const workload::Kind kind : workload::kAllKinds) {
      const TrafficConfig cfg = small_config();

      sim::Rng rng_old{seed};
      workload::FlowGenerator gen{workload::cdf(kind), rng_old};
      const auto want = gen.generate(cfg);

      sim::Rng rng_new{seed};
      const auto got = workload::generate_traffic(WorkloadSpec{}, &workload::cdf(kind), cfg, rng_new);

      ASSERT_EQ(want.size(), got.size());
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(want[i].id, got[i].id);
        EXPECT_EQ(want[i].src_host, got[i].src_host);
        EXPECT_EQ(want[i].dst_host, got[i].dst_host);
        EXPECT_EQ(want[i].bytes, got[i].bytes);
        EXPECT_EQ(want[i].start.ns(), got[i].start.ns());
        EXPECT_EQ(got[i].group_id, 0u);
        EXPECT_EQ(got[i].request_id, 0u);
      }
    }
  }
}

TEST(TrafficEngine, LegacyIgnoresNonDefaultKnobsInSpec) {
  // The contract holds whatever else sits in the spec: kLegacy forces
  // uniform + Poisson + no structure.
  WorkloadSpec spec;
  spec.engine = Engine::kLegacy;
  spec.pairs = PairModel::kHotRack;
  spec.arrivals = ArrivalModel::kFixedRate;
  spec.coflow_fraction = 0.5;

  const TrafficConfig cfg = small_config();
  sim::Rng rng_old{42};
  workload::FlowGenerator gen{workload::cdf(workload::Kind::kWebSearch), rng_old};
  const auto want = gen.generate(cfg);
  const auto got = run_engine(spec, cfg, 42);
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].src_host, got[i].src_host);
    EXPECT_EQ(want[i].start.ns(), got[i].start.ns());
  }
}

TEST(TrafficEngine, ThrowsLikeTheLegacyGenerator) {
  WorkloadSpec spec;
  TrafficConfig cfg = small_config();
  cfg.n_hosts = 1;
  sim::Rng rng{1};
  EXPECT_THROW(
      (void)workload::generate_traffic(spec, &workload::cdf(workload::Kind::kWebSearch), cfg, rng),
      std::invalid_argument);
  cfg = small_config();
  cfg.load = 0.0;
  EXPECT_THROW(
      (void)workload::generate_traffic(spec, &workload::cdf(workload::Kind::kWebSearch), cfg, rng),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Pair models.
// ---------------------------------------------------------------------------

TEST(TrafficEngine, HotRackSourceMarginalTracksHotWeight) {
  WorkloadSpec spec;
  spec.engine = Engine::kSkewed;
  spec.pairs = PairModel::kHotRack;
  spec.skew.hosts_per_rack = 8;
  spec.skew.hot_rack_fraction = 0.25;  // 1 hot rack of 4
  spec.skew.hot_weight = 0.7;
  spec.skew.locality = 0.3;

  const auto flows = run_engine(spec, small_config(32, 3000), 5);
  std::size_t hot_srcs = 0;
  for (const auto& f : flows) {
    ASSERT_LT(f.src_host, 32u);
    ASSERT_NE(f.src_host, f.dst_host);
    if (f.src_host < 8) ++hot_srcs;
  }
  const double frac = static_cast<double>(hot_srcs) / static_cast<double>(flows.size());
  EXPECT_NEAR(frac, 0.7, 0.05);
}

TEST(TrafficEngine, LocalityKnobMovesSameRackFraction) {
  auto same_rack_fraction = [](double locality) {
    WorkloadSpec spec;
    spec.engine = Engine::kSkewed;
    spec.pairs = PairModel::kHotRack;
    spec.skew.hosts_per_rack = 8;
    spec.skew.hot_rack_fraction = 0.5;
    spec.skew.hot_weight = 0.5;  // uniform over racks: isolates the locality term
    spec.skew.locality = locality;
    const auto flows = run_engine(spec, small_config(32, 3000), 11);
    std::size_t same = 0;
    for (const auto& f : flows) {
      if (f.src_host / 8 == f.dst_host / 8) ++same;
    }
    return static_cast<double>(same) / static_cast<double>(flows.size());
  };
  const double low = same_rack_fraction(0.0);
  const double high = same_rack_fraction(0.8);
  // With locality 0, same-rack happens only when the skewed marginal lands
  // back on the source's rack (~1/4 here with hot_weight 0.5 over 2+2
  // racks); with 0.8 the local draw dominates.
  EXPECT_LT(low, 0.40);
  EXPECT_GT(high, 0.65);
  EXPECT_GT(high, low + 0.3);
}

TEST(TrafficEngine, PermutationIsAFixedDerangement) {
  WorkloadSpec spec;
  spec.engine = Engine::kSkewed;
  spec.pairs = PairModel::kPermutation;

  const auto flows = run_engine(spec, small_config(16, 2000), 3);
  std::vector<std::size_t> dst_of(16, SIZE_MAX);
  for (const auto& f : flows) {
    ASSERT_NE(f.src_host, f.dst_host);
    if (dst_of[f.src_host] == SIZE_MAX) {
      dst_of[f.src_host] = f.dst_host;
    } else {
      EXPECT_EQ(dst_of[f.src_host], f.dst_host) << "src " << f.src_host << " changed receiver";
    }
  }
  // Injective where observed: no two sources share a receiver.
  std::set<std::size_t> seen;
  for (const std::size_t d : dst_of) {
    if (d == SIZE_MAX) continue;
    EXPECT_TRUE(seen.insert(d).second);
  }
}

// ---------------------------------------------------------------------------
// Arrival models and structure.
// ---------------------------------------------------------------------------

TEST(TrafficEngine, FixedRateArrivalsAreEquallySpaced) {
  WorkloadSpec spec;
  spec.engine = Engine::kSkewed;
  spec.arrivals = ArrivalModel::kFixedRate;

  const auto flows = run_engine(spec, small_config(16, 50), 9);
  ASSERT_GE(flows.size(), 3u);
  const std::int64_t gap = flows[1].start.ns() - flows[0].start.ns();
  EXPECT_GT(gap, 0);
  for (std::size_t i = 2; i < flows.size(); ++i) {
    EXPECT_EQ(flows[i].start.ns() - flows[i - 1].start.ns(), gap);
  }
}

TEST(TrafficEngine, CoflowGroupsAreIncastsWithSharedGroupId) {
  WorkloadSpec spec;
  spec.engine = Engine::kSkewed;
  spec.coflow_fraction = 0.5;
  spec.coflow_width = 4;

  const auto flows = run_engine(spec, small_config(16, 400), 21);
  std::size_t grouped = 0;
  std::map<std::uint64_t, std::vector<const GeneratedFlow*>> groups;
  for (const auto& f : flows) {
    EXPECT_EQ(f.request_id, 0u);  // coflows are not requests
    if (f.group_id != 0) {
      ++grouped;
      groups[f.group_id].push_back(&f);
    }
  }
  EXPECT_GT(grouped, 0u);
  EXPECT_LT(grouped, flows.size());
  for (const auto& [id, members] : groups) {
    // Full groups have the configured width (the last may be truncated to
    // the n_flows budget); every member converges on one receiver at one
    // start time, from distinct senders.
    EXPECT_LE(members.size(), 4u);
    EXPECT_GE(members.size(), 1u);
    std::set<std::size_t> senders;
    for (const auto* m : members) {
      EXPECT_EQ(m->dst_host, members.front()->dst_host);
      EXPECT_EQ(m->start.ns(), members.front()->start.ns());
      EXPECT_NE(m->src_host, m->dst_host);
      EXPECT_TRUE(senders.insert(m->src_host).second);
    }
  }
}

TEST(TrafficEngine, FanoutRequestsConvergeOnOneFrontend) {
  WorkloadSpec spec;
  spec.engine = Engine::kFanout;
  spec.fanout = 5;
  spec.response_bytes = 20'000;

  const auto flows = run_engine(spec, small_config(16, 200), 13);
  ASSERT_EQ(flows.size(), 200u);
  std::map<std::uint64_t, std::vector<const GeneratedFlow*>> requests;
  for (const auto& f : flows) {
    EXPECT_NE(f.group_id, 0u);
    EXPECT_EQ(f.group_id, f.request_id);  // fan-out: group == request
    EXPECT_EQ(f.bytes, 20'000u);
    requests[f.request_id].push_back(&f);
  }
  ASSERT_EQ(requests.size(), 40u);  // 200 flows / fanout 5
  for (const auto& [id, members] : requests) {
    EXPECT_EQ(members.size(), 5u);
    std::set<std::size_t> backends;
    for (const auto* m : members) {
      EXPECT_EQ(m->dst_host, members.front()->dst_host);  // one front end
      EXPECT_NE(m->src_host, m->dst_host);
      EXPECT_TRUE(backends.insert(m->src_host).second);  // distinct backends
    }
  }
}

TEST(TrafficEngine, EnumStringsRoundTrip) {
  for (const Engine e : {Engine::kLegacy, Engine::kSkewed, Engine::kFanout, Engine::kTrace}) {
    EXPECT_EQ(workload::engine_from_string(workload::to_string(e)), e);
  }
  for (const PairModel p :
       {PairModel::kUniform, PairModel::kHotRack, PairModel::kPermutation}) {
    EXPECT_EQ(workload::pair_model_from_string(workload::to_string(p)), p);
  }
  for (const ArrivalModel a : {ArrivalModel::kPoisson, ArrivalModel::kFixedRate}) {
    EXPECT_EQ(workload::arrival_model_from_string(workload::to_string(a)), a);
  }
  EXPECT_THROW((void)workload::engine_from_string("warp"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Trace format.
// ---------------------------------------------------------------------------

TEST(FlowTrace, WriteReadRoundTripIsExact) {
  WorkloadSpec spec;
  spec.engine = Engine::kFanout;
  spec.fanout = 3;
  const auto want = run_engine(spec, small_config(16, 60), 17);

  std::stringstream buf;
  workload::write_trace(buf, want);
  const auto got = workload::read_trace(buf, "<memory>");

  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].id, i + 1);  // ids are implicit row order
    EXPECT_EQ(want[i].src_host, got[i].src_host);
    EXPECT_EQ(want[i].dst_host, got[i].dst_host);
    EXPECT_EQ(want[i].bytes, got[i].bytes);
    EXPECT_EQ(want[i].start.ns(), got[i].start.ns());
    EXPECT_EQ(want[i].group_id, got[i].group_id);
    EXPECT_EQ(want[i].request_id, got[i].request_id);
  }
}

TEST(FlowTrace, FiveFieldRowsDefaultRequestToZero) {
  std::stringstream in{"100,0,1,5000,7\n200,1,2,6000,0\n"};
  const auto flows = workload::read_trace(in, "t");
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_EQ(flows[0].group_id, 7u);
  EXPECT_EQ(flows[0].request_id, 0u);
}

TEST(FlowTrace, MalformedLinesNameFileAndLine) {
  auto expect_error = [](const std::string& text, const std::string& needle) {
    std::stringstream in{text};
    try {
      (void)workload::read_trace(in, "bad.csv");
      FAIL() << "expected TraceError for: " << text;
    } catch (const workload::TraceError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(needle), std::string::npos) << what;
    }
  };
  // Wrong field count, line 2 (line 1 is a comment).
  expect_error("# header\n1,2,3\n", "bad.csv:2");
  expect_error("# header\n1,2,3\n", "expected 5 or 6 fields");
  // Non-numeric field names the column.
  expect_error("10,0,x,100,0\n", "bad.csv:1");
  expect_error("10,0,x,100,0\n", "malformed dst");
  // Self-loop and zero bytes.
  expect_error("10,3,3,100,0\n", "src == dst");
  expect_error("10,0,1,0,0\n", "zero-byte");
  // Empty trace.
  expect_error("# only comments\n", "no flows");
}

// Table-driven robustness sweep over line-ending and banner variants. Unix,
// CRLF, and missing-trailing-newline dumps must parse identically; a matching
// magic prefix with an unknown version must be rejected with a clear error
// (before the fix it was skipped as an ordinary comment and the body silently
// misread under v1 rules).
TEST(FlowTrace, LineEndingAndBannerTable) {
  struct Case {
    const char* name;
    std::string text;
    bool ok;
    const char* needle;  // substring of the error for !ok; ignored for ok
  };
  const Case kCases[] = {
      {"unix", "# amrt-flow-trace v1\n100,0,1,5000,0\n200,1,2,6000,0\n", true, ""},
      {"crlf", "# amrt-flow-trace v1\r\n100,0,1,5000,0\r\n200,1,2,6000,0\r\n", true, ""},
      {"no_trailing_newline", "# amrt-flow-trace v1\n100,0,1,5000,0\n200,1,2,6000,0", true, ""},
      {"crlf_no_trailing_newline", "# amrt-flow-trace v1\r\n100,0,1,5000,0", true, ""},
      {"bannerless_body", "100,0,1,5000,0\n", true, ""},
      {"v2_banner", "# amrt-flow-trace v2\n100,0,1,5000,0\n", false, "unsupported trace format"},
      {"v2_banner_crlf", "# amrt-flow-trace v2\r\n100,0,1,5000,0\r\n", false,
       "unsupported trace format"},
      {"versionless_banner", "# amrt-flow-trace\n100,0,1,5000,0\n", false,
       "unsupported trace format"},
  };
  for (const auto& c : kCases) {
    SCOPED_TRACE(c.name);
    std::stringstream in{c.text};
    if (c.ok) {
      const auto flows = workload::read_trace(in, c.name);
      ASSERT_FALSE(flows.empty());
      EXPECT_EQ(flows[0].bytes, 5000u);
      EXPECT_EQ(flows[0].start.ns(), 100);
    } else {
      try {
        (void)workload::read_trace(in, c.name);
        FAIL() << "expected TraceError";
      } catch (const workload::TraceError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find(c.needle), std::string::npos) << what;
        // The message must also say what the reader *does* understand.
        EXPECT_NE(what.find("amrt-flow-trace v1"), std::string::npos) << what;
      }
    }
  }
}

TEST(FlowTrace, RejectsNonMonotonicTimestamps) {
  std::stringstream in{"200,0,1,5000,0\n100,1,2,6000,0\n"};
  try {
    (void)workload::read_trace(in, "unsorted.csv");
    FAIL() << "expected TraceError";
  } catch (const workload::TraceError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unsorted.csv:2"), std::string::npos) << what;
    EXPECT_NE(what.find("non-monotonic"), std::string::npos) << what;
  }
}

TEST(FlowTrace, TraceEngineRejectsOutOfRangeHosts) {
  const std::string path = testing::TempDir() + "oob_trace.csv";
  {
    std::ofstream out{path};
    out << "100,0,99,5000,0\n";
  }
  WorkloadSpec spec;
  spec.engine = Engine::kTrace;
  spec.trace_path = path;
  TrafficConfig cfg = small_config(16, 10);
  sim::Rng rng{1};
  EXPECT_THROW((void)workload::generate_traffic(spec, nullptr, cfg, rng), workload::TraceError);
}

// ---------------------------------------------------------------------------
// Group accounting.
// ---------------------------------------------------------------------------

TEST(GroupBook, CollectiveCompletionTimeSpansFirstStartToLastEnd) {
  stats::GroupBook book;
  book.note(1, 10, 0);
  book.note(2, 10, 0);
  book.note(3, 0, 5);
  book.note(4, 0, 0);  // ungrouped: ignored entirely

  auto rec = [](std::uint64_t flow, std::int64_t start_us, std::int64_t end_us) {
    stats::FlowRecord r;
    r.flow = flow;
    r.bytes = 1000;
    r.start = sim::TimePoint::from_ns(start_us * 1000);
    r.end = sim::TimePoint::from_ns(end_us * 1000);
    return r;
  };

  std::vector<stats::FlowRecord> records{rec(1, 0, 10), rec(2, 5, 30), rec(3, 2, 9), rec(4, 0, 1)};
  book.annotate(records);
  EXPECT_EQ(records[0].group, 10u);
  EXPECT_EQ(records[1].group, 10u);
  EXPECT_EQ(records[2].request, 5u);
  EXPECT_EQ(records[3].group, 0u);

  const auto gs = book.group_stats(records);
  EXPECT_EQ(gs.groups, 1u);
  EXPECT_EQ(gs.complete, 1u);
  EXPECT_DOUBLE_EQ(gs.max_us, 30.0);  // first start 0, last end 30
  EXPECT_DOUBLE_EQ(gs.p99_us, 30.0);

  const auto qs = book.request_stats(records);
  EXPECT_EQ(qs.groups, 1u);
  EXPECT_EQ(qs.complete, 1u);
  EXPECT_DOUBLE_EQ(qs.max_us, 7.0);
}

TEST(GroupBook, PartialGroupsDoNotCountAsComplete) {
  stats::GroupBook book;
  book.note(1, 10, 0);
  book.note(2, 10, 0);
  stats::FlowRecord only_one;
  only_one.flow = 1;
  only_one.start = sim::TimePoint::zero();
  only_one.end = sim::TimePoint::from_ns(1000);
  const auto gs = book.group_stats({only_one});
  EXPECT_EQ(gs.groups, 1u);
  EXPECT_EQ(gs.complete, 0u);
  EXPECT_DOUBLE_EQ(gs.p99_us, 0.0);
}

// ---------------------------------------------------------------------------
// Harness integration: fan-out metrics and the dump→replay FCT identity.
// ---------------------------------------------------------------------------

harness::ExperimentConfig tiny_fabric() {
  harness::ExperimentConfig cfg;
  cfg.proto = transport::Protocol::kAmrt;
  cfg.leaves = 2;
  cfg.spines = 2;
  cfg.hosts_per_leaf = 4;
  cfg.load = 0.6;
  cfg.n_flows = 48;
  cfg.seed = 42;
  return cfg;
}

TEST(HarnessEngine, FanoutRunReportsRequestStats) {
  auto cfg = tiny_fabric();
  cfg.engine.engine = Engine::kFanout;
  cfg.engine.fanout = 4;
  cfg.engine.response_bytes = 20'000;

  const auto r = harness::run_leaf_spine(cfg);
  EXPECT_EQ(r.flows_completed, r.flows_started);
  EXPECT_EQ(r.request_stats.groups, 12u);  // 48 flows / fanout 4
  EXPECT_EQ(r.request_stats.complete, 12u);
  EXPECT_GT(r.request_stats.p99_us, 0.0);
  EXPECT_GE(r.request_stats.max_us, r.request_stats.p99_us - 1e-9);

  // Records carry membership, and the CSV exposes it.
  std::stringstream csv;
  harness::write_fct_csv(csv, r.flow_records);
  const std::string head = csv.str().substr(0, csv.str().find('\n'));
  EXPECT_EQ(head, "flow,bytes,start_us,end_us,fct_us,group_id,request_id");
  bool any_grouped = false;
  for (const auto& rec : r.flow_records) any_grouped = any_grouped || rec.request != 0;
  EXPECT_TRUE(any_grouped);
}

TEST(HarnessEngine, LegacyRunsLeaveGroupColumnsEmpty) {
  const auto r = harness::run_leaf_spine(tiny_fabric());
  std::stringstream csv;
  harness::write_fct_csv(csv, r.flow_records);
  std::string line;
  std::getline(csv, line);  // header
  while (std::getline(csv, line)) {
    EXPECT_EQ(line.substr(line.size() - 2), ",,") << line;
  }
  EXPECT_EQ(r.group_stats.groups, 0u);
  EXPECT_EQ(r.request_stats.groups, 0u);
}

TEST(HarnessEngine, TraceDumpReplaysWithIdenticalFctRecords) {
  const std::string path = testing::TempDir() + "dump_replay_trace.csv";
  auto cfg = tiny_fabric();
  cfg.trace_out = path;
  const auto original = harness::run_leaf_spine(cfg);
  ASSERT_EQ(original.flows_completed, original.flows_started);

  auto replay_cfg = tiny_fabric();
  replay_cfg.engine.engine = Engine::kTrace;
  replay_cfg.engine.trace_path = path;
  const auto replay = harness::run_leaf_spine(replay_cfg);

  ASSERT_EQ(original.flow_records.size(), replay.flow_records.size());
  for (std::size_t i = 0; i < original.flow_records.size(); ++i) {
    const auto& a = original.flow_records[i];
    const auto& b = replay.flow_records[i];
    EXPECT_EQ(a.flow, b.flow);
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.start.ns(), b.start.ns());
    EXPECT_EQ(a.end.ns(), b.end.ns());
  }
}

TEST(HarnessEngine, TraceReplayComposesWithShards) {
  const std::string path = testing::TempDir() + "shard_replay_trace.csv";
  auto cfg = tiny_fabric();
  cfg.trace_out = path;
  cfg.shards = 2;
  const auto serial = harness::run_leaf_spine(cfg);
  ASSERT_EQ(serial.flows_started, serial.flows_completed);

  auto replay_cfg = tiny_fabric();
  replay_cfg.engine.engine = Engine::kTrace;
  replay_cfg.engine.trace_path = path;
  replay_cfg.shards = 2;
  const auto replay = harness::run_leaf_spine(replay_cfg);
  EXPECT_EQ(replay.flows_started, serial.flows_started);
  EXPECT_EQ(replay.flows_completed, replay.flows_started);
}

}  // namespace
