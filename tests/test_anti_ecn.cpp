// Unit tests for the anti-ECN marker (src/core/anti_ecn.hpp) — Eq. (1)-(3).
#include <gtest/gtest.h>

#include "core/anti_ecn.hpp"

using amrt::core::AntiEcnMarker;
using namespace amrt::net;
using namespace amrt::sim;
using namespace amrt::sim::literals;

namespace {
Packet amrt_data() {
  Packet p;
  p.type = PacketType::kData;
  p.ecn_capable = true;
  p.ce = true;  // senders initialize CE=1 (Sec. 4.1)
  p.wire_bytes = kMtuBytes;
  p.payload_bytes = kMssBytes;
  return p;
}

constexpr Bandwidth kRate = Bandwidth::gbps(10);
// At 10Gbps one MTU takes 1.2us; that's the Eq. (2) threshold.
constexpr auto kThreshold = 1200_ns;
}  // namespace

TEST(AntiEcn, FirstPacketOnIdleLinkStaysMarked) {
  AntiEcnMarker m;
  auto p = amrt_data();
  m.on_dequeue(p, TimePoint::zero(), TimePoint::zero(), kRate);
  EXPECT_TRUE(p.ce);  // a never-used link is spare by definition
}

TEST(AntiEcn, BackToBackPacketClearsMark) {
  AntiEcnMarker m;
  auto p0 = amrt_data();
  m.on_dequeue(p0, TimePoint::zero(), TimePoint::zero(), kRate);
  auto p1 = amrt_data();
  // Previous tx ended at 1200ns, this one starts right then: zero gap.
  m.on_dequeue(p1, TimePoint::from_ns(1200), TimePoint::from_ns(1200), kRate);
  EXPECT_FALSE(p1.ce);
}

TEST(AntiEcn, GapOfExactlyOneMtuKeepsMark) {
  AntiEcnMarker m;
  auto p0 = amrt_data();
  m.on_dequeue(p0, TimePoint::zero(), TimePoint::zero(), kRate);
  auto p1 = amrt_data();
  m.on_dequeue(p1, TimePoint::from_ns(1200) + kThreshold, TimePoint::from_ns(1200), kRate);
  EXPECT_TRUE(p1.ce);  // Eq. (2) uses >=
}

TEST(AntiEcn, GapJustUnderThresholdClears) {
  AntiEcnMarker m;
  auto p0 = amrt_data();
  m.on_dequeue(p0, TimePoint::zero(), TimePoint::zero(), kRate);
  auto p1 = amrt_data();
  m.on_dequeue(p1, TimePoint::from_ns(1200 + 1199), TimePoint::from_ns(1200), kRate);
  EXPECT_FALSE(p1.ce);
}

TEST(AntiEcn, AndSemanticsAcrossSwitches) {
  // Eq. (3): a packet marked spare at switch 1 but saturated at switch 2
  // must arrive unmarked; once cleared it can never be re-marked.
  AntiEcnMarker sw1, sw2;
  auto p = amrt_data();
  sw1.on_dequeue(p, TimePoint::from_ns(10'000), TimePoint::zero(), kRate);  // big gap: keep
  EXPECT_TRUE(p.ce);
  sw2.on_dequeue(p, TimePoint::from_ns(20'000), TimePoint::zero(), kRate);  // sw2's first packet
  EXPECT_TRUE(p.ce);
  auto p2 = amrt_data();
  p2.ce = false;  // already cleared upstream
  sw1.on_dequeue(p2, TimePoint::from_ns(50'000), TimePoint::from_ns(11'200), kRate);
  EXPECT_FALSE(p2.ce) << "a spare hop must not resurrect a cleared mark";
}

TEST(AntiEcn, NonEcnCapablePacketUntouched) {
  AntiEcnMarker m;
  Packet p = amrt_data();
  p.ecn_capable = false;
  p.ce = false;
  m.on_dequeue(p, TimePoint::from_ns(100'000), TimePoint::zero(), kRate);
  EXPECT_FALSE(p.ce);
  EXPECT_EQ(m.observed(), 0u);
}

TEST(AntiEcn, ControlPacketsIgnoredButAdvanceState) {
  AntiEcnMarker m;
  Packet grant;
  grant.type = PacketType::kGrant;
  grant.wire_bytes = kCtrlBytes;
  m.on_dequeue(grant, TimePoint::zero(), TimePoint::zero(), kRate);
  EXPECT_EQ(m.observed(), 0u);
  // The next data packet is no longer "first use" — the link carried the grant.
  auto p = amrt_data();
  m.on_dequeue(p, TimePoint::from_ns(52), TimePoint::from_ns(52), kRate);
  EXPECT_FALSE(p.ce);
}

TEST(AntiEcn, TrimmedHeadersNotMarked) {
  AntiEcnMarker m;
  auto p = amrt_data();
  p.trimmed = true;
  m.on_dequeue(p, TimePoint::from_ns(100'000), TimePoint::zero(), kRate);
  EXPECT_EQ(m.observed(), 0u);
}

TEST(AntiEcn, CountersTrackDecisions) {
  AntiEcnMarker m;
  auto p0 = amrt_data();
  m.on_dequeue(p0, TimePoint::zero(), TimePoint::zero(), kRate);  // kept
  auto p1 = amrt_data();
  m.on_dequeue(p1, TimePoint::from_ns(1200), TimePoint::from_ns(1200), kRate);  // cleared
  EXPECT_EQ(m.observed(), 2u);
  EXPECT_EQ(m.kept_marked(), 1u);
  EXPECT_EQ(m.cleared(), 1u);
}

TEST(AntiEcn, CustomProbeSize) {
  AntiEcnMarker m{3000};  // require room for two MTUs
  auto p0 = amrt_data();
  m.on_dequeue(p0, TimePoint::zero(), TimePoint::zero(), kRate);
  auto p1 = amrt_data();
  // 1.5us gap: enough for one MTU but not 3000B.
  m.on_dequeue(p1, TimePoint::from_ns(1200 + 1500), TimePoint::from_ns(1200), kRate);
  EXPECT_FALSE(p1.ce);
}

// Property sweep: for every gap in a grid, the mark must equal gap >= MTU/C.
class AntiEcnGapSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(AntiEcnGapSweep, MarkMatchesThresholdRule) {
  const std::int64_t gap_ns = GetParam();
  AntiEcnMarker m;
  auto warm = amrt_data();
  m.on_dequeue(warm, TimePoint::zero(), TimePoint::zero(), kRate);
  auto p = amrt_data();
  const auto last_end = TimePoint::from_ns(1200);
  m.on_dequeue(p, last_end + Duration::nanoseconds(gap_ns), last_end, kRate);
  EXPECT_EQ(p.ce, gap_ns >= 1200) << "gap " << gap_ns;
}

INSTANTIATE_TEST_SUITE_P(GapGrid, AntiEcnGapSweep,
                         ::testing::Values(0, 1, 100, 600, 1199, 1200, 1201, 2400, 10'000,
                                           1'000'000));

// At 1Gbps the threshold scales to 12us.
TEST(AntiEcn, ThresholdScalesWithLinkRate) {
  AntiEcnMarker m;
  const auto rate = Bandwidth::gbps(1);
  auto p0 = amrt_data();
  m.on_dequeue(p0, TimePoint::zero(), TimePoint::zero(), rate);
  auto p1 = amrt_data();
  m.on_dequeue(p1, TimePoint::from_ns(12'000 + 11'000), TimePoint::from_ns(12'000), rate);
  EXPECT_FALSE(p1.ce);
  auto p2 = amrt_data();
  m.on_dequeue(p2, TimePoint::from_ns(23'000 + 12'000 + 12'000), TimePoint::from_ns(23'000 + 12'000),
               rate);
  EXPECT_TRUE(p2.ce);
}
