// ctest smoke for the deterministic scenario fuzzer (src/harness/fuzz.hpp).
//
// Built in every configuration: the completion/physics/queue-accounting
// oracles run everywhere, and under -DAMRT_AUDIT=ON the same cases also run
// with the full invariant auditor live. The seed budget here is deliberately
// modest (ctest must stay fast); the scenario_fuzz CLI runs the deep sweeps.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "audit/auditor.hpp"
#include "harness/fuzz.hpp"

using namespace amrt;
using harness::fuzz::CaseConfig;
using harness::fuzz::CaseResult;
using harness::fuzz::FuzzOptions;
using harness::fuzz::Topo;

namespace {

// Collect-don't-abort so a violation surfaces as a readable test failure
// with its repro line instead of a process abort.
struct NoFailFast : ::testing::Test {
  void SetUp() override { audit::set_fail_fast(false); }
  void TearDown() override { audit::set_fail_fast(true); }
};

using FuzzSmoke = NoFailFast;
using FuzzDeterminism = NoFailFast;

}  // namespace

TEST_F(FuzzSmoke, SeedBudgetAllOraclesHold) {
  // 5 seeds x 4 topologies x 4 transports = 80 cases; every failure prints
  // the standalone one-line repro.
  FuzzOptions opts;
  opts.first_seed = 1;
  opts.seeds = 5;
  const auto report = harness::fuzz::run_fuzz(opts);
  EXPECT_EQ(report.cases, 80u);
  EXPECT_EQ(report.failures, 0u);
  for (const auto& line : report.failure_lines) ADD_FAILURE() << line;
}

TEST_F(FuzzDeterminism, SameCaseReplaysBitIdentically) {
  for (const auto topo : harness::fuzz::kAllTopos) {
    const CaseConfig cfg{42, topo, transport::Protocol::kAmrt};
    const auto r1 = harness::fuzz::run_case(cfg);
    const auto r2 = harness::fuzz::run_case(cfg);
    ASSERT_TRUE(r1.ok) << harness::fuzz::repro_line(cfg) << ": " << r1.failure;
    EXPECT_EQ(r1.hash, r2.hash) << harness::fuzz::repro_line(cfg);
    EXPECT_EQ(r1.events, r2.events);
    EXPECT_EQ(r1.drops, r2.drops);
    EXPECT_EQ(r1.trims, r2.trims);
    EXPECT_EQ(r1.completed, r2.completed);
  }
}

TEST_F(FuzzDeterminism, DifferentSeedsDiverge) {
  const auto r1 = harness::fuzz::run_case({1, Topo::kLeafSpine, transport::Protocol::kAmrt});
  const auto r2 = harness::fuzz::run_case({2, Topo::kLeafSpine, transport::Protocol::kAmrt});
  EXPECT_NE(r1.hash, r2.hash);  // the seed must actually reach the case
}

TEST_F(FuzzDeterminism, SerialAndParallelSweepsIdentical) {
  using Key = std::tuple<std::uint64_t, int, int>;
  auto sweep = [](unsigned threads) {
    FuzzOptions opts;
    opts.first_seed = 1;
    opts.seeds = 3;
    opts.threads = threads;
    std::map<Key, std::uint64_t> hashes;
    opts.on_case = [&hashes](const CaseConfig& c, const CaseResult& r) {
      hashes[{c.seed, static_cast<int>(c.topo), static_cast<int>(c.proto)}] = r.hash;
    };
    const auto report = harness::fuzz::run_fuzz(opts);
    EXPECT_EQ(report.failures, 0u);
    return hashes;
  };
  const auto serial = sweep(1);
  const auto parallel = sweep(4);
  ASSERT_EQ(serial.size(), 48u);
  EXPECT_EQ(serial, parallel);
}

TEST(FuzzRepro, LineNamesSeedTopoAndTransport) {
  const CaseConfig cfg{7, Topo::kDumbbell, transport::Protocol::kNdp};
  const auto line = harness::fuzz::repro_line(cfg);
  EXPECT_NE(line.find("scenario_fuzz"), std::string::npos);
  EXPECT_NE(line.find("--seed 7"), std::string::npos);
  EXPECT_NE(line.find("--topo dumbbell"), std::string::npos);
  EXPECT_NE(line.find("--transport"), std::string::npos);
  // And the names round-trip back into a config.
  EXPECT_EQ(harness::fuzz::topo_from_string("dumbbell"), Topo::kDumbbell);
  EXPECT_EQ(harness::fuzz::topo_from_string("leaf-spine"), Topo::kLeafSpine);
  EXPECT_EQ(harness::fuzz::topo_from_string("fat-tree"), Topo::kFatTree);
  EXPECT_THROW(harness::fuzz::topo_from_string("torus"), std::invalid_argument);
}

TEST(FuzzRepro, FailFastAbortPrintsTheReplayLine) {
  // The CI contract: when a fuzz case trips an invariant in fail-fast mode,
  // the abort names the exact repro command. Exercised with a synthetic
  // violation so it works on a healthy tree; audit-only because without
  // AMRT_AUDIT the hooks are stubs and nothing can trip.
  if (!audit::Auditor::enabled()) {
    GTEST_SKIP() << "requires -DAMRT_AUDIT=ON (the audit preset)";
  }
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const CaseConfig cfg{7, Topo::kDumbbell, transport::Protocol::kNdp};
  EXPECT_DEATH(
      {
        audit::set_fail_fast(true);
        audit::set_context(harness::fuzz::repro_line(cfg));
        audit::Auditor a;
        audit::PacketInfo p;
        p.flow = 1;
        a.on_inject(p);
        a.on_deliver(p);
        a.on_deliver(p);
      },
      "replay: scenario_fuzz --seed 7 --topo dumbbell");
}
