// Mixed-transport coexistence regression (DESIGN.md §13): an AMRT foreground
// sharing a small leaf-spine with a DCTCP background population must stay
// close to its solo behaviour — PIAS keeps the background demoted and the
// threshold/anti-ECN markers act on disjoint packet populations, so adding
// background flows must not collapse foreground utilization or blow up its
// tail FCT beyond the stated tolerances.
#include <gtest/gtest.h>

#include <stdexcept>

#include "harness/experiment.hpp"

using namespace amrt;

namespace {

harness::ExperimentConfig small_leaf_spine(double background_fraction) {
  harness::ExperimentConfig cfg;
  cfg.proto = transport::Protocol::kAmrt;
  cfg.workload = workload::Kind::kWebSearch;
  cfg.load = 0.5;
  cfg.n_flows = 60;
  cfg.leaves = 2;
  cfg.spines = 2;
  cfg.hosts_per_leaf = 4;
  cfg.seed = 7;
  cfg.background_dctcp_fraction = background_fraction;
  return cfg;
}

}  // namespace

TEST(Coexistence, BackgroundFlowRuleIsPureAndMatchesTheFraction) {
  // The dispatch rule is the contract between sender, receiver and the
  // post-processing split: pure in the id, fraction via residues mod 100.
  EXPECT_FALSE(harness::is_background_flow(1, 0.0));
  EXPECT_TRUE(harness::is_background_flow(1, 1.0));
  int bg = 0;
  for (net::FlowId id = 0; id < 100; ++id) bg += harness::is_background_flow(id, 0.25) ? 1 : 0;
  EXPECT_EQ(bg, 25);
}

TEST(Coexistence, MixedRunCompletesBothPopulations) {
  const auto r = harness::run_leaf_spine(small_leaf_spine(0.25));
  EXPECT_EQ(r.flows_completed, r.flows_started);
  EXPECT_GT(r.fct_foreground.completed, 0u);
  EXPECT_GT(r.fct_background.completed, 0u);
  EXPECT_EQ(r.fct_foreground.completed + r.fct_background.completed, r.fct_all.completed);
  // The split must follow the id rule exactly.
  std::size_t bg = 0;
  for (const auto& rec : r.flow_records) {
    bg += harness::is_background_flow(rec.flow, 0.25) ? 1 : 0;
  }
  EXPECT_EQ(bg, r.fct_background.completed);
  // Downlink utilization is reported per receiver downlink, leaf-major.
  EXPECT_EQ(r.downlink_utilization.size(), 2u * 4u);
}

TEST(Coexistence, ForegroundStaysWithinToleranceOfSolo) {
  const auto solo = harness::run_leaf_spine(small_leaf_spine(0.0));
  const auto mixed = harness::run_leaf_spine(small_leaf_spine(0.25));
  ASSERT_EQ(solo.flows_completed, solo.flows_started);
  ASSERT_EQ(mixed.flows_completed, mixed.flows_started);

  // Utilization: the mixed fabric serves the same offered load (the flow
  // schedule is identical; only 25% of ids switched transport), so the
  // byte-weighted downlink utilization must stay in the same regime. The
  // fabric itself changes (strict-priority queues, threshold marking), so
  // this is an absolute-band check, not exact equality.
  EXPECT_GT(mixed.mean_utilization, 0.0);
  EXPECT_NEAR(mixed.mean_utilization, solo.mean_utilization, 0.25);

  // Foreground tail: AMRT keeps priority band 0, above every demoted DCTCP
  // packet, so its p99 must not explode. 3x is deliberately loose — the
  // foreground population in the mixed run is a 45-flow subset of the solo
  // 60, so the quantiles move for composition reasons alone; this test
  // exists to catch order-of-magnitude regressions (e.g. background ACKs
  // starving grants), not to pin queueing noise.
  ASSERT_GT(solo.fct_all.p99_us, 0.0);
  EXPECT_LT(mixed.fct_foreground.p99_us, solo.fct_all.p99_us * 3.0);
  // And the foreground average must stay in the same decade.
  EXPECT_LT(mixed.fct_foreground.afct_us, solo.fct_all.afct_us * 3.0);
}

TEST(Coexistence, ZeroFractionIsByteIdenticalToSolo) {
  // background_dctcp_fraction = 0 must take the single-transport code path
  // exactly: same records, same utilization, same event count.
  auto cfg = small_leaf_spine(0.0);
  const auto a = harness::run_leaf_spine(cfg);
  cfg.background_dctcp_fraction = 0.0;
  const auto b = harness::run_leaf_spine(cfg);
  ASSERT_EQ(a.flow_records.size(), b.flow_records.size());
  for (std::size_t i = 0; i < a.flow_records.size(); ++i) {
    EXPECT_EQ(a.flow_records[i].flow, b.flow_records[i].flow);
    EXPECT_EQ(a.flow_records[i].end.ns(), b.flow_records[i].end.ns());
  }
  EXPECT_EQ(a.events, b.events);
}

TEST(Coexistence, MixedRunIsDeterministic) {
  const auto a = harness::run_leaf_spine(small_leaf_spine(0.25));
  const auto b = harness::run_leaf_spine(small_leaf_spine(0.25));
  ASSERT_EQ(a.flow_records.size(), b.flow_records.size());
  for (std::size_t i = 0; i < a.flow_records.size(); ++i) {
    EXPECT_EQ(a.flow_records[i].flow, b.flow_records[i].flow);
    EXPECT_EQ(a.flow_records[i].start.ns(), b.flow_records[i].start.ns());
    EXPECT_EQ(a.flow_records[i].end.ns(), b.flow_records[i].end.ns());
  }
  EXPECT_EQ(a.events, b.events);
}

TEST(Coexistence, MixedModeRejectsUnsupportedCombinations) {
  auto wrong_proto = small_leaf_spine(0.25);
  wrong_proto.proto = transport::Protocol::kNdp;
  EXPECT_THROW((void)harness::run_leaf_spine(wrong_proto), std::invalid_argument);

  auto sharded = small_leaf_spine(0.25);
  sharded.shards = 2;
  EXPECT_THROW((void)harness::run_leaf_spine(sharded), std::invalid_argument);
}
