// Cross-validation: the Section-5 closed-form model against the actual
// simulator. The model predicts how long AMRT needs to refill a bottleneck
// after a co-flow departs (Eq. 4/5) and how much FCT it saves over a
// traditional receiver-driven protocol (Eq. 11/12); here we measure both on
// the dynamic-traffic rig and check the simulation lands in (a generous
// envelope around) the model's band.
#include <gtest/gtest.h>

#include <cmath>

#include "flowsim/fabric.hpp"
#include "flowsim/flowsim.hpp"
#include "harness/scenarios.hpp"
#include "model/amrt_model.hpp"
#include "stats/fct.hpp"

using namespace amrt;
using namespace amrt::sim::literals;
using harness::DynamicConfig;
using harness::DynamicFlow;
using transport::Protocol;

namespace {

// Two flows share a 10G bottleneck; the short one departs halfway. The
// survivor then runs at R ~ C/2 until the refill mechanism (AMRT) or
// nothing (pHost) brings it back to C.
DynamicConfig two_flow_cfg(Protocol proto) {
  DynamicConfig cfg;
  cfg.proto = proto;
  cfg.flows = {DynamicFlow{2'000'000, sim::Duration::zero()},
               DynamicFlow{9'000'000, sim::Duration::zero()}};
  cfg.duration = 16_ms;
  cfg.bin = 100_us;
  return cfg;
}

// First bin index at/after `from` where utilization stays >= thresh for 3
// consecutive bins; -1 if never.
int refill_bin(const harness::TimelineResult& r, std::size_t from, double thresh) {
  for (std::size_t b = from; b + 2 < r.bottleneck1_util.size(); ++b) {
    if (r.bottleneck1_util[b] >= thresh && r.bottleneck1_util[b + 1] >= thresh &&
        r.bottleneck1_util[b + 2] >= thresh) {
      return static_cast<int>(b);
    }
  }
  return -1;
}

}  // namespace

TEST(ModelValidation, AmrtRefillTimeWithinModelBand) {
  const auto amrt = harness::run_dynamic(two_flow_cfg(Protocol::kAmrt));
  ASSERT_GE(amrt.flow_fct_ms[0], 0.0) << "short flow must complete";

  // Locate the departure and the refill in bins.
  const auto departure_bin = static_cast<std::size_t>(amrt.flow_fct_ms[0] * 10.0);  // 100us bins
  const int refilled = refill_bin(amrt, departure_bin + 1, 0.93);
  ASSERT_GE(refilled, 0) << "AMRT must refill the bottleneck";
  const double measured_refill_ms =
      (static_cast<double>(refilled) - static_cast<double>(departure_bin)) * 0.1;

  // Model: the survivor holds roughly half the slots; k ~ n/2 vacancies.
  // Eq. (4)/(5) band: [ceil(k/(n-k)), k] RTTs. With base RTT ~100us (12us
  // links over 3 hops) and n = BDP ~ 88 slots: band ~ [0.1ms, 4.4ms].
  const double rtt_ms = 0.105;
  const std::uint32_t n = 88;
  const std::uint32_t k = n / 2;
  const auto band = model::fill_time(n, k);
  EXPECT_GE(measured_refill_ms, 0.0);
  EXPECT_LE(measured_refill_ms, band.max_rtts * rtt_ms * 2.0)
      << "refill took " << measured_refill_ms << "ms, model max "
      << band.max_rtts * rtt_ms << "ms";
}

TEST(ModelValidation, PhostNeverRefills) {
  const auto phost = harness::run_dynamic(two_flow_cfg(Protocol::kPhost));
  ASSERT_GE(phost.flow_fct_ms[0], 0.0);
  const auto departure_bin = static_cast<std::size_t>(phost.flow_fct_ms[0] * 10.0);
  // The traditional protocol's "fill time" is infinite (Section 5's T1 has
  // the flow finish at rate R): utilization must not recover to >=93%.
  EXPECT_EQ(refill_bin(phost, departure_bin + 5, 0.93), -1);
}

TEST(ModelValidation, FctGainDirectionMatchesEq12) {
  const auto amrt = harness::run_dynamic(two_flow_cfg(Protocol::kAmrt));
  const auto phost = harness::run_dynamic(two_flow_cfg(Protocol::kPhost));
  ASSERT_GE(amrt.flow_fct_ms[1], 0.0);
  ASSERT_GE(phost.flow_fct_ms[1], 0.0);
  // Eq. (12) predicts gain > 1 whenever R < C at some point; the simulated
  // survivor must finish strictly faster under AMRT.
  const double measured_gain = phost.flow_fct_ms[1] / amrt.flow_fct_ms[1];
  EXPECT_GT(measured_gain, 1.0);

  // And the measured gain cannot exceed the model's max (perfect refill
  // from the departure instant with R/C at the collapsed share).
  model::Scenario s;
  s.S = 9'000'000;
  s.C = 10e9;
  s.R = 0.25 * s.C;  // generous lower bound on the survivor's collapsed share
  s.T_R = 0.0;
  s.rtt = 105e-6;
  const auto bounds = model::utilization_gain_bounds(s);
  EXPECT_LT(measured_gain, bounds.max_gain * 1.5)
      << "measured " << measured_gain << " vs model max " << bounds.max_gain;
}

// ---------------------------------------------------------------------------
// The flow-level fast path against the closed forms directly. The fluid
// simulator implements the Section-5 rate trajectories as code (flowsim.cpp's
// rate models); this pins them to Eq. (6)/(10) on the exact single-bottleneck
// scenario the equations describe: a flow at capacity C until T_R, cut to
// R = C/2 by a competing arrival, then either never recovering (traditional)
// or ramping back per the earliest/latest AMRT bound.

namespace {

// The model works on payload-equivalent capacity (what FctRecorder counts).
constexpr double kPayloadFraction = 1460.0 / 1500.0;
constexpr double kCapPayloadBps = 10e9 / 8.0 * kPayloadFraction;  // bytes/sec
constexpr double kRttS = 100e-6;
constexpr double kTrS = 0.002;  // the cut happens 2ms in

// ~10ms of bytes at full payload rate.
const std::uint64_t kModelFlowBytes = static_cast<std::uint64_t>(std::llround(kCapPayloadBps * 0.010));

// FCT (ms) of a flow cut to half rate at kTrS under `rate_model`. A tiny
// instant-model competitor arrives at T_R, halves the subject's share for
// ~24us, and departs; what happens next is the model under test. Pipeline
// latency is zeroed so the comparison isolates the rate trajectory.
double single_bottleneck_fct_ms(flowsim::RateModel rate_model, bool ramp_latest) {
  const flowsim::Fabric fab = flowsim::Fabric::leaf_spine(1, 1, 4, sim::Bandwidth::gbps(10));
  flowsim::FlowSimConfig cfg;
  cfg.rtt = 100_us;
  cfg.payload_fraction = kPayloadFraction;
  cfg.prop_delay = sim::Duration::zero();
  cfg.mtu_tx = sim::Duration::zero();
  cfg.amrt_ramp_latest = ramp_latest;
  flowsim::FlowSim fs{fab, cfg};
  fs.add_flow(1, 0, 1, kModelFlowBytes, sim::TimePoint::zero(), rate_model);
  fs.add_flow(2, 2, 1, 14'600, sim::TimePoint::zero() + 2_ms, flowsim::RateModel::kInstant);
  stats::FctRecorder rec{sim::Bandwidth::gbps(10), 100_us};
  fs.run(&rec);
  for (const auto& r : rec.completed()) {
    if (r.flow == 1) return r.fct().to_micros() / 1000.0;
  }
  return -1.0;
}

model::Scenario eq_scenario() {
  model::Scenario s;
  s.S = static_cast<double>(kModelFlowBytes);
  s.C = kCapPayloadBps * 8.0;  // bits/sec of payload
  s.R = s.C / 2.0;
  s.T_R = kTrS;
  s.rtt = kRttS;
  s.mtu = 1500.0;
  return s;
}

}  // namespace

TEST(ModelValidation, FlowsimTraditionalMatchesEq6) {
  const double sim_ms = single_bottleneck_fct_ms(flowsim::RateModel::kTraditional, false);
  ASSERT_GT(sim_ms, 0.0);
  const double model_ms = model::fct_traditional(eq_scenario()) * 1e3;  // 18ms
  EXPECT_NEAR(sim_ms, model_ms, model_ms * 0.015)
      << "traditional: sim " << sim_ms << "ms vs Eq.(6) " << model_ms << "ms";
}

TEST(ModelValidation, FlowsimAmrtMatchesEq10Bounds) {
  const auto s = eq_scenario();
  const double sim_early_ms = single_bottleneck_fct_ms(flowsim::RateModel::kAmrtGrantClock, false);
  const double sim_late_ms = single_bottleneck_fct_ms(flowsim::RateModel::kAmrtGrantClock, true);
  ASSERT_GT(sim_early_ms, 0.0);
  ASSERT_GT(sim_late_ms, 0.0);

  const double model_early_ms = model::fct_amrt(s, model::convergence_earliest(s)) * 1e3;
  const double model_late_ms = model::fct_amrt(s, model::convergence_latest(s)) * 1e3;
  EXPECT_NEAR(sim_early_ms, model_early_ms, model_early_ms * 0.02)
      << "earliest bound: sim " << sim_early_ms << "ms vs Eq.(10) " << model_early_ms << "ms";
  EXPECT_NEAR(sim_late_ms, model_late_ms, model_late_ms * 0.025)
      << "latest bound: sim " << sim_late_ms << "ms vs Eq.(10) " << model_late_ms << "ms";

  // Ordering from the paper: earliest <= latest < traditional, in both the
  // closed forms and the fluid simulation.
  EXPECT_LE(sim_early_ms, sim_late_ms);
  EXPECT_LT(sim_late_ms, single_bottleneck_fct_ms(flowsim::RateModel::kTraditional, false));
  EXPECT_LE(model_early_ms, model_late_ms);
  EXPECT_LT(model_late_ms, model::fct_traditional(s) * 1e3);
}
