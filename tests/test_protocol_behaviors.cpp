// Protocol-specific behaviour tests: the mechanisms that differentiate
// AMRT, pHost, Homa and NDP from the shared receiver-driven skeleton.
#include <gtest/gtest.h>

#include "core/amrt.hpp"
#include "test_rig.hpp"

using namespace amrt;
using namespace amrt::sim::literals;
using amrt::testutil::DumbbellRig;
using amrt::testutil::RigOptions;
using transport::Protocol;

// ---------------------------------------------------------------------------
// AMRT
// ---------------------------------------------------------------------------

TEST(AmrtBehavior, SoloFlowRampsViaMarkedGrants) {
  RigOptions opt;
  opt.proto = Protocol::kAmrt;
  opt.unscheduled = false;  // force the ramp to come from marking alone
  DumbbellRig rig{opt};
  rig.start_flow(1, 0, 2'000'000);
  ASSERT_TRUE(rig.run_to_completion(1, 200_ms));
  auto& receiver = static_cast<core::AmrtEndpoint&>(rig.receiver_ep(0));
  EXPECT_GT(receiver.marked_grants_sent(), 10u)
      << "an under-utilized path must produce marked grants";
  // Doubling from 1 packet/RTT must beat plain arrival clocking by a lot:
  // arrival-clocked would need ~1370 RTTs for 1370 packets; expect < 100.
  const auto fct = rig.recorder().completed().at(0).fct();
  EXPECT_LT(fct, rig.tcfg().base_rtt * 100);
}

TEST(AmrtBehavior, SaturatedBottleneckStopsMarking) {
  RigOptions opt;
  opt.proto = Protocol::kAmrt;
  opt.pairs = 2;
  DumbbellRig rig{opt};
  rig.start_flow(1, 0, 3'000'000);
  rig.start_flow(2, 1, 3'000'000);
  ASSERT_TRUE(rig.run_to_completion(2, 200_ms));
  // With two flows saturating the bottleneck, the overwhelming majority of
  // packets must arrive unmarked (marks only during startup/teardown).
  std::uint64_t marked = 0;
  for (int i = 0; i < 2; ++i) {
    marked += static_cast<core::AmrtEndpoint&>(rig.receiver_ep(i)).marked_grants_sent();
  }
  const std::uint64_t total_pkts = 2 * net::packets_for_bytes(3'000'000);
  EXPECT_LT(marked, total_pkts / 4);
}

TEST(AmrtBehavior, DataPacketsCarryCeInitializedToOne) {
  // Capture a sender-side data packet by looking at the NIC queue contents
  // indirectly: run a flow with no marker on the path; CE must survive to
  // the receiver (AND over zero switches = initial value 1).
  RigOptions opt;
  opt.proto = Protocol::kAmrt;
  opt.unscheduled = false;
  DumbbellRig rig{opt};
  rig.start_flow(1, 0, 100'000);
  ASSERT_TRUE(rig.run_to_completion(1, 200_ms));
  auto& receiver = static_cast<core::AmrtEndpoint&>(rig.receiver_ep(0));
  EXPECT_GT(receiver.marked_grants_sent(), 0u);
}

// ---------------------------------------------------------------------------
// pHost
// ---------------------------------------------------------------------------

TEST(PhostBehavior, SrptPrefersShortFlow) {
  // Two flows from different senders to the SAME receiver; the shorter one
  // must finish first even though both start together, because tokens go to
  // the smallest remaining flow.
  RigOptions opt;
  opt.proto = Protocol::kPhost;
  opt.pairs = 2;
  DumbbellRig rig{opt};
  // Send both to receiver 0: craft specs manually.
  transport::FlowSpec big{1, rig.sender(0).id(), rig.receiver(0).id(), 4'000'000,
                          sim::TimePoint::zero()};
  transport::FlowSpec small{2, rig.sender(1).id(), rig.receiver(0).id(), 400'000,
                            sim::TimePoint::zero()};
  rig.sender_ep(0).start_flow(big);
  rig.sender_ep(1).start_flow(small);
  ASSERT_TRUE(rig.run_to_completion(2, 1_s));
  const auto big_rec = rig.recorder().record_of(1);
  const auto small_rec = rig.recorder().record_of(2);
  ASSERT_TRUE(big_rec && small_rec);
  EXPECT_LT(small_rec->end, big_rec->end);
}

TEST(PhostBehavior, ArrivalClockedRateNeverRecovers) {
  // The motivation property: after a co-flow departs, the survivor's rate
  // stays flat under pHost (no marking to tell it otherwise).
  RigOptions opt;
  opt.proto = Protocol::kPhost;
  opt.pairs = 2;
  opt.queues.buffer_pkts = 8;
  DumbbellRig rig{opt};
  rig.start_flow(1, 0, 1'000'000);  // finishes around ~1.7ms at half share
  rig.start_flow(2, 1, 6'000'000);
  ASSERT_TRUE(rig.run_to_completion(2, 1_s));
  const auto f2 = rig.recorder().record_of(2);
  ASSERT_TRUE(f2.has_value());
  // If f2 could re-accelerate to 10G after f1 left (~1.7ms), it would finish
  // near ~5.3ms. Arrival-clocked it stays near its collapsed share and needs
  // much longer.
  EXPECT_GT(f2->fct().to_millis(), 6.5);
}

// ---------------------------------------------------------------------------
// Homa
// ---------------------------------------------------------------------------

TEST(HomaBehavior, OvercommitGrantsMultipleSenders) {
  // With K=2, two of three pending messages are granted concurrently; with
  // K=1 they serialize. Compare total completion times.
  auto run_k = [](int k) {
    RigOptions opt;
    opt.proto = Protocol::kHoma;
    opt.pairs = 3;
    opt.unscheduled = false;
    opt.homa_overcommit = k;
    DumbbellRig rig{opt};
    for (int i = 0; i < 3; ++i) {
      transport::FlowSpec spec{static_cast<net::FlowId>(i + 1), rig.sender(i).id(),
                               rig.receiver(0).id(), 1'000'000, sim::TimePoint::zero()};
      rig.sender_ep(i).start_flow(spec);
    }
    EXPECT_TRUE(rig.run_to_completion(3, 1_s));
    double last = 0;
    for (const auto& r : rig.recorder().completed()) last = std::max(last, r.fct().to_millis());
    return last;
  };
  const double k1 = run_k(1);
  const double k3 = run_k(3);
  // All three share one downlink, so overcommitment cannot beat the
  // serialization bound by much — but it must not be slower, and queue-level
  // pipelining should make it at least marginally faster.
  EXPECT_LE(k3, k1 * 1.05);
}

TEST(HomaBehavior, ScheduledDataCarriesPriorities) {
  RigOptions opt;
  opt.proto = Protocol::kHoma;
  opt.pairs = 2;
  opt.unscheduled = false;
  DumbbellRig rig{opt};
  // Two messages to one receiver: rank 1 and rank 2 -> priorities 1 and 2.
  transport::FlowSpec a{1, rig.sender(0).id(), rig.receiver(0).id(), 2'000'000,
                        sim::TimePoint::zero()};
  transport::FlowSpec b{2, rig.sender(1).id(), rig.receiver(0).id(), 500'000,
                        sim::TimePoint::zero()};
  rig.sender_ep(0).start_flow(a);
  rig.sender_ep(1).start_flow(b);
  ASSERT_TRUE(rig.run_to_completion(2, 1_s));
  // The smaller message is SRPT-preferred: it must finish well before the
  // larger despite starting together (priority queueing + grant priority).
  EXPECT_LT(rig.recorder().record_of(2)->end, rig.recorder().record_of(1)->end);
}

// ---------------------------------------------------------------------------
// NDP
// ---------------------------------------------------------------------------

TEST(NdpBehavior, PullPacingMatchesLinkRate) {
  RigOptions opt;
  opt.proto = Protocol::kNdp;
  DumbbellRig rig{opt};
  rig.start_flow(1, 0, 3'000'000);
  ASSERT_TRUE(rig.run_to_completion(1, 200_ms));
  // Pull-clocked at the link rate, a 3MB flow must complete near line rate.
  EXPECT_LT(rig.recorder().completed().at(0).fct().to_micros(), 2'466 * 1.4);
}

TEST(NdpBehavior, TrimmedHeadersTriggerFastRetransmit) {
  RigOptions opt;
  opt.proto = Protocol::kNdp;
  opt.pairs = 2;
  opt.queues.trim_threshold = 4;
  DumbbellRig rig{opt};
  rig.start_flow(1, 0, 500'000);
  rig.start_flow(2, 1, 500'000);
  ASSERT_TRUE(rig.run_to_completion(2, 500_ms));
  // Trim-based repair is one-RTT-ish: even with heavy trimming the makespan
  // must stay near the serialization bound (1MB over 10G ~ 0.85ms), far from
  // a timeout-dominated schedule.
  double last = 0;
  for (const auto& r : rig.recorder().completed()) last = std::max(last, r.fct().to_millis());
  EXPECT_LT(last, 3.0);
}
