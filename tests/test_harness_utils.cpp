// Tests for the harness utilities (tables, options) and the multipath modes
// used by the ablation benches.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "harness/csv.hpp"
#include "harness/options.hpp"
#include "net/routing.hpp"

using namespace amrt;

TEST(Table, AlignedPrintContainsHeaderAndRows) {
  harness::Table t{{"a", "long_column", "c"}};
  t.add_row({"1", "2", "3"});
  t.add_row({"x", "y", "z"});
  std::ostringstream os;
  t.print(os);
  const auto s = os.str();
  EXPECT_NE(s.find("long_column"), std::string::npos);
  EXPECT_NE(s.find("x"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvIsCommaSeparated) {
  harness::Table t{{"a", "b"}};
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, ShortRowsArePadded) {
  harness::Table t{{"a", "b", "c"}};
  t.add_row({"1"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b,c\n1,,\n");
}

TEST(Fmt, NumberFormatting) {
  EXPECT_EQ(harness::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(harness::fmt(3.0, 0), "3");
  EXPECT_EQ(harness::fmt_pct(0.368), "36.8%");
  EXPECT_EQ(harness::fmt_pct(1.0, 0), "100%");
}

TEST(BenchOptions, DefaultsAreSane) {
  char prog[] = "bench";
  char* argv[] = {prog};
  const auto o = harness::parse_bench_options(1, argv);
  EXPECT_FALSE(o.paper_scale);
  EXPECT_FALSE(o.csv);
  EXPECT_FALSE(o.flows.has_value());
  EXPECT_EQ(o.seed, 1u);
}

TEST(BenchOptions, ParsesEveryFlag) {
  char prog[] = "bench";
  char a1[] = "--paper-scale";
  char a2[] = "--csv";
  char a3[] = "--flows=123";
  char a4[] = "--seed=9";
  char a5[] = "--loads=0.1,0.5,0.7";
  char a6[] = "--scale=0.5";
  char* argv[] = {prog, a1, a2, a3, a4, a5, a6};
  const auto o = harness::parse_bench_options(7, argv);
  EXPECT_TRUE(o.paper_scale);
  EXPECT_TRUE(o.csv);
  EXPECT_EQ(*o.flows, 123u);
  EXPECT_EQ(o.seed, 9u);
  ASSERT_EQ(o.loads.size(), 3u);
  EXPECT_DOUBLE_EQ(o.loads[1], 0.5);
  EXPECT_DOUBLE_EQ(o.scale, 0.5);
}

TEST(BenchOptions, ScaledAppliesMultiplierAndFloor) {
  harness::BenchOptions o;
  o.scale = 0.5;
  EXPECT_EQ(o.scaled(100), 50u);
  EXPECT_EQ(o.scaled(10), 20u);  // floor
  o.flows = 7;
  EXPECT_EQ(o.scaled(100), 7u);  // explicit override wins
}

TEST(BenchOptions, UnknownFlagsIgnored) {
  char prog[] = "bench";
  char a1[] = "--benchmark_filter=foo";
  char* argv[] = {prog, a1};
  EXPECT_NO_THROW((void)harness::parse_bench_options(2, argv));
}

// --- multipath modes -------------------------------------------------------

namespace {
net::Packet data_to(net::NodeId dst, net::FlowId flow) {
  net::Packet p;
  p.flow = flow;
  p.dst = dst;
  p.type = net::PacketType::kData;
  return p;
}
}  // namespace

TEST(Multipath, SprayRoundRobinsDataPackets) {
  net::RoutingTable rt;
  for (int p = 0; p < 4; ++p) rt.add_route(net::NodeId{1}, p);
  rt.set_mode(net::MultipathMode::kPacketSpray);
  std::set<int> used;
  for (int i = 0; i < 4; ++i) used.insert(rt.select(data_to(net::NodeId{1}, 7)));
  EXPECT_EQ(used.size(), 4u) << "four consecutive packets of one flow hit four paths";
}

TEST(Multipath, SprayKeepsControlOnHashedPath) {
  net::RoutingTable rt;
  for (int p = 0; p < 4; ++p) rt.add_route(net::NodeId{1}, p);
  rt.set_mode(net::MultipathMode::kPacketSpray);
  net::Packet grant;
  grant.flow = 7;
  grant.dst = net::NodeId{1};
  grant.type = net::PacketType::kGrant;
  const int first = rt.select(grant);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(rt.select(grant), first);
}

TEST(Multipath, PerFlowModeIsDefaultAndStable) {
  net::RoutingTable rt;
  for (int p = 0; p < 4; ++p) rt.add_route(net::NodeId{1}, p);
  EXPECT_EQ(rt.mode(), net::MultipathMode::kPerFlowEcmp);
  const int first = rt.select(data_to(net::NodeId{1}, 7));
  for (int i = 0; i < 8; ++i) EXPECT_EQ(rt.select(data_to(net::NodeId{1}, 7)), first);
}
