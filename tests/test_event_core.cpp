// Unit tests for the slab/arena event core (src/sim/event_queue.hpp and
// src/sim/callback.hpp): small-buffer callable storage, generation-checked
// weak handles across slot recycling, and FIFO tie-breaks that survive
// freelist reuse.
#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/scheduler.hpp"

using namespace amrt::sim;

namespace {
TimePoint at_ns(std::int64_t ns) { return TimePoint::from_ns(ns); }
}  // namespace

// ---------------------------------------------------------------------------
// InplaceCallback
// ---------------------------------------------------------------------------

TEST(InplaceCallback, SmallLambdaStoredInline) {
  int hits = 0;
  InplaceCallback cb{[&hits] { ++hits; }};
  ASSERT_TRUE(static_cast<bool>(cb));
  EXPECT_TRUE(cb.stores_inline());
  cb();
  EXPECT_EQ(hits, 1);
}

TEST(InplaceCallback, StdFunctionFitsInline) {
  // The self-recursive polling pattern used all over the harness stores a
  // std::function<void()> by copy; it must stay on the inline path.
  static_assert(sizeof(std::function<void()>) <= InplaceCallback::kInlineBytes);
  int hits = 0;
  std::function<void()> fn = [&hits] { ++hits; };
  InplaceCallback cb{fn};
  EXPECT_TRUE(cb.stores_inline());
  cb();
  EXPECT_EQ(hits, 1);
}

TEST(InplaceCallback, LargeCaptureFallsBackToHeap) {
  std::array<char, 128> big{};
  big[0] = 42;
  int out = 0;
  InplaceCallback cb{[big, &out] { out = big[0]; }};
  ASSERT_TRUE(static_cast<bool>(cb));
  EXPECT_FALSE(cb.stores_inline());
  cb();
  EXPECT_EQ(out, 42);
}

TEST(InplaceCallback, MoveTransfersOwnershipInline) {
  int hits = 0;
  InplaceCallback a{[&hits] { ++hits; }};
  InplaceCallback b{std::move(a)};
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
}

TEST(InplaceCallback, MoveTransfersOwnershipHeap) {
  std::array<char, 128> big{};
  int hits = 0;
  InplaceCallback a{[big, &hits] { ++hits; }};
  InplaceCallback b;
  b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_FALSE(b.stores_inline());
  b();
  EXPECT_EQ(hits, 1);
}

TEST(InplaceCallback, ResetReleasesCapturedState) {
  auto token = std::make_shared<int>(7);
  InplaceCallback cb{[token] { (void)*token; }};
  EXPECT_EQ(token.use_count(), 2);
  cb.reset();
  EXPECT_EQ(token.use_count(), 1);
  EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(InplaceCallback, DestructorReleasesHeapCallable) {
  auto token = std::make_shared<int>(7);
  std::array<char, 128> big{};
  {
    InplaceCallback cb{[token, big] { (void)*token; }};
    EXPECT_FALSE(cb.stores_inline());
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);
}

// ---------------------------------------------------------------------------
// Generation-checked handles across slot recycling
// ---------------------------------------------------------------------------

TEST(EventCore, StaleHandleDoesNotCancelSlotReuser) {
  EventQueue q;
  int a_fired = 0;
  int b_fired = 0;

  // A occupies the first slot; popping it recycles that slot.
  auto ha = q.push(at_ns(10), [&a_fired] { ++a_fired; });
  {
    auto e = q.pop();
    ASSERT_TRUE(e.has_value());
    e->cb();
  }
  EXPECT_EQ(a_fired, 1);
  EXPECT_FALSE(ha.pending());

  // B reuses A's slot (fresh queue: the freelist has exactly that slot).
  auto hb = q.push(at_ns(20), [&b_fired] { ++b_fired; });
  EXPECT_TRUE(hb.pending());

  // The stale handle must be inert: its generation no longer matches.
  ha.cancel();
  EXPECT_TRUE(hb.pending());
  auto e = q.pop();
  ASSERT_TRUE(e.has_value());
  e->cb();
  EXPECT_EQ(b_fired, 1);
}

TEST(EventCore, StaleHandleAfterCancelledSlotRecycled) {
  EventQueue q;
  int fired = 0;

  auto ha = q.push(at_ns(10), [&fired] { ++fired; });
  ha.cancel();
  EXPECT_FALSE(ha.pending());
  // The cancelled record still holds its heap entry; popping the queue (which
  // finds it dead, recycles it, and returns empty) frees the slot.
  EXPECT_FALSE(q.pop().has_value());

  auto hb = q.push(at_ns(20), [&fired] { ++fired; });
  ha.cancel();  // stale again: must not touch B
  EXPECT_TRUE(hb.pending());
  auto e = q.pop();
  ASSERT_TRUE(e.has_value());
  e->cb();
  EXPECT_EQ(fired, 1);
}

TEST(EventCore, TieBreakOrderSurvivesFreelistRecycling) {
  EventQueue q;
  std::vector<int> order;

  // Interleave pops (which recycle low-numbered slots) with same-time pushes,
  // so later insertions land on lower slot numbers than earlier ones. FIFO
  // order among equal timestamps must follow insertion, not slot index.
  auto warmup = q.push(at_ns(1), [] {});
  (void)warmup;
  (void)q.push(at_ns(100), [&order] { order.push_back(1); });
  {
    auto e = q.pop();  // pops the t=1 warmup, recycling its slot
    ASSERT_TRUE(e.has_value());
  }
  (void)q.push(at_ns(100), [&order] { order.push_back(2); });  // reuses warmup's slot
  (void)q.push(at_ns(100), [&order] { order.push_back(3); });
  while (auto e = q.pop()) e->cb();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventCore, InsertionOrderAcrossManySlabsWithChurn) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventQueue::Handle> handles;
  // Four slabs' worth of same-time events, cancelling every third.
  constexpr int kEvents = 1024;
  for (int i = 0; i < kEvents; ++i) {
    handles.push_back(q.push(at_ns(50), [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < kEvents; i += 3) handles[static_cast<std::size_t>(i)].cancel();
  while (auto e = q.pop()) e->cb();

  std::vector<int> expect;
  for (int i = 0; i < kEvents; ++i) {
    if (i % 3 != 0) expect.push_back(i);
  }
  EXPECT_EQ(order, expect);
}

// ---------------------------------------------------------------------------
// size() vs live_size() accounting
// ---------------------------------------------------------------------------

TEST(EventCore, SizeCountsHeapEntriesLiveSizeCountsFirable) {
  EventQueue q;
  auto h1 = q.push(at_ns(10), [] {});
  auto h2 = q.push(at_ns(20), [] {});
  auto h3 = q.push(at_ns(30), [] {});
  (void)h1;
  (void)h3;
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.live_size(), 3u);

  h2.cancel();
  EXPECT_EQ(q.size(), 3u);  // lazy cancellation keeps the heap entry
  EXPECT_EQ(q.live_size(), 2u);
  EXPECT_FALSE(q.empty());

  ASSERT_TRUE(q.pop().has_value());  // h1
  ASSERT_TRUE(q.pop().has_value());  // h3 (h2 skipped and reclaimed)
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.live_size(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventCore, NextTimeSkipsCancelledHead) {
  EventQueue q;
  auto ha = q.push(at_ns(5), [] {});
  (void)q.push(at_ns(10), [] {});
  ha.cancel();
  auto t = q.next_time();
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->ns(), 10);
}

TEST(EventCore, CallbackStateReleasedOnCancel) {
  // Cancelling must destroy the callable immediately (it may pin buffers),
  // not when the dead heap entry is eventually skimmed.
  EventQueue q;
  auto token = std::make_shared<int>(1);
  auto h = q.push(at_ns(10), [token] { (void)*token; });
  EXPECT_EQ(token.use_count(), 2);
  h.cancel();
  EXPECT_EQ(token.use_count(), 1);
}

// ---------------------------------------------------------------------------
// Scheduler-level churn on the slab core
// ---------------------------------------------------------------------------

TEST(EventCore, SchedulerChurnRetainsSemantics) {
  Scheduler sched;
  int fired = 0;
  std::vector<Scheduler::Handle> handles;
  for (int round = 0; round < 4; ++round) {
    handles.clear();
    for (int i = 0; i < 500; ++i) {
      handles.push_back(
          sched.after(Duration::nanoseconds(i + 1), [&fired] { ++fired; }));
    }
    for (int i = 0; i < 500; i += 2) handles[static_cast<std::size_t>(i)].cancel();
    sched.run();
  }
  EXPECT_EQ(fired, 4 * 250);
}
