// End-to-end transport unit tests, parameterized over all four protocols:
// single flows complete with near-ideal FCT, payload is conserved, state is
// torn down, and the unscheduled-window rules hold.
#include <gtest/gtest.h>

#include "test_rig.hpp"

using namespace amrt;
using namespace amrt::sim::literals;
using amrt::testutil::DumbbellRig;
using amrt::testutil::RigOptions;
using transport::Protocol;

namespace {
std::string proto_name(const ::testing::TestParamInfo<Protocol>& info) {
  return transport::to_string(info.param);
}
}  // namespace

class SingleFlow : public ::testing::TestWithParam<Protocol> {};

TEST_P(SingleFlow, TinyFlowCompletesQuickly) {
  RigOptions opt;
  opt.proto = GetParam();
  DumbbellRig rig{opt};
  rig.start_flow(1, 0, 1'000);
  ASSERT_TRUE(rig.run_to_completion(1, 50_ms));
  const auto rec = rig.recorder().completed().at(0);
  EXPECT_EQ(rec.bytes, 1'000u);
  // One packet out (3 hops) — well under 4 base RTTs even with overheads.
  EXPECT_LT(rec.fct(), rig.tcfg().base_rtt * 4);
}

TEST_P(SingleFlow, BulkFlowApproachesLineRate) {
  RigOptions opt;
  opt.proto = GetParam();
  DumbbellRig rig{opt};
  rig.start_flow(1, 0, 5'000'000);
  ASSERT_TRUE(rig.run_to_completion(1, 100_ms));
  const auto rec = rig.recorder().completed().at(0);
  // Ideal: 5MB at 10G ~ 4.1ms incl. headers; allow 40% slack.
  const double ideal_us = 4'110.0;
  EXPECT_LT(rec.fct().to_micros(), ideal_us * 1.4) << transport::to_string(GetParam());
}

TEST_P(SingleFlow, PayloadConservation) {
  RigOptions opt;
  opt.proto = GetParam();
  DumbbellRig rig{opt};
  for (std::uint64_t bytes : {1ull, 1460ull, 1461ull, 123'456ull}) {
    static net::FlowId id = 0;
    rig.start_flow(++id, 0, bytes);
  }
  ASSERT_TRUE(rig.run_to_completion(4, 100_ms));
  EXPECT_EQ(rig.recorder().bytes_delivered(), 1ull + 1460 + 1461 + 123'456);
}

TEST_P(SingleFlow, SenderAndReceiverStateTornDown) {
  RigOptions opt;
  opt.proto = GetParam();
  DumbbellRig rig{opt};
  rig.start_flow(1, 0, 100'000);
  ASSERT_TRUE(rig.run_to_completion(1, 50_ms));
  // Give the kDone message time to drain back.
  rig.sched().run_until(rig.sched().now() + 1_ms);
  EXPECT_EQ(rig.sender_ep(0).open_sender_flows(), 0u);
  EXPECT_EQ(rig.receiver_ep(0).open_receiver_flows(), 0u);
}

TEST_P(SingleFlow, ManySequentialFlowsAllComplete) {
  RigOptions opt;
  opt.proto = GetParam();
  DumbbellRig rig{opt};
  for (int i = 0; i < 20; ++i) {
    rig.start_flow(static_cast<net::FlowId>(i + 1), 0, 40'000,
                   sim::TimePoint::zero() + sim::Duration::microseconds(i * 100));
  }
  ASSERT_TRUE(rig.run_to_completion(20, 200_ms));
  EXPECT_EQ(rig.recorder().completed().size(), 20u);
}

TEST_P(SingleFlow, TwoConcurrentFlowsShareTheBottleneck) {
  RigOptions opt;
  opt.proto = GetParam();
  opt.pairs = 2;
  DumbbellRig rig{opt};
  rig.start_flow(1, 0, 2'000'000);
  rig.start_flow(2, 1, 2'000'000);
  ASSERT_TRUE(rig.run_to_completion(2, 100_ms));
  // Two 2MB flows over a shared 10G bottleneck: neither can beat solo time
  // and both must finish within a loose 5x of the shared ideal.
  for (const auto& rec : rig.recorder().completed()) {
    EXPECT_GT(rec.fct().to_micros(), 1'600.0);
    EXPECT_LT(rec.fct().to_micros(), 17'000.0);
  }
}

TEST_P(SingleFlow, UnresponsiveSenderDeliversNothing) {
  RigOptions opt;
  opt.proto = GetParam();
  opt.responsive = false;
  DumbbellRig rig{opt};
  rig.start_flow(1, 0, 100'000);
  EXPECT_FALSE(rig.run_to_completion(1, 5_ms));
  EXPECT_EQ(rig.recorder().bytes_delivered(), 0u);
  EXPECT_EQ(rig.recorder().started_count(), 1u);  // the RTS still announced it
}

TEST_P(SingleFlow, NoUnscheduledStartStillCompletes) {
  RigOptions opt;
  opt.proto = GetParam();
  opt.unscheduled = false;
  DumbbellRig rig{opt};
  rig.start_flow(1, 0, 200'000);
  ASSERT_TRUE(rig.run_to_completion(1, 100_ms)) << "grant bootstrap must work without blind start";
}

TEST_P(SingleFlow, ZeroByteFlowIgnored) {
  RigOptions opt;
  opt.proto = GetParam();
  DumbbellRig rig{opt};
  rig.start_flow(1, 0, 0);
  rig.sched().run_until(sim::TimePoint::zero() + 1_ms);
  EXPECT_EQ(rig.recorder().started_count(), 0u);
}

TEST_P(SingleFlow, DeterministicForIdenticalSetup) {
  auto run_once = [&] {
    RigOptions opt;
    opt.proto = GetParam();
    DumbbellRig rig{opt};
    rig.start_flow(1, 0, 1'000'000);
    EXPECT_TRUE(rig.run_to_completion(1, 100_ms));
    return rig.recorder().completed().at(0).fct();
  };
  EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, SingleFlow, ::testing::ValuesIn(testutil::kAllProtocols),
                         proto_name);

// Unscheduled window: a flow larger than one BDP must not blast everything.
TEST(UnscheduledWindow, BlindBurstCappedAtBdp) {
  RigOptions opt;
  opt.proto = Protocol::kAmrt;
  DumbbellRig rig{opt};
  const auto bdp = rig.tcfg().bdp_packets();
  rig.start_flow(1, 0, static_cast<std::uint64_t>(bdp) * net::kMssBytes * 4);
  // Run only until the blind burst is fully on the wire but no grant has
  // returned yet (half a base RTT).
  rig.sched().run_until(sim::TimePoint::zero() + rig.tcfg().base_rtt / 2);
  const auto sent = rig.sender(0).nic().packets_sent();
  EXPECT_LE(sent, static_cast<std::uint64_t>(bdp) + 2);  // burst + RTS
}

TEST(UnscheduledWindow, SmallFlowSendsEverythingBlind) {
  RigOptions opt;
  opt.proto = Protocol::kAmrt;
  DumbbellRig rig{opt};
  rig.start_flow(1, 0, 5 * net::kMssBytes);
  rig.sched().run_until(sim::TimePoint::zero() + rig.tcfg().base_rtt / 2);
  EXPECT_EQ(rig.sender(0).nic().packets_sent(), 6u);  // 5 data + 1 RTS
}
