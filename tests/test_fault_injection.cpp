// Fault-injection tests (DESIGN.md §11): transports must survive link flaps,
// blackhole windows and rate dips with every flow completing and the audit
// ledger closed — plus one regression per control-plane hardening fix (lost
// RTS, lost Done, 16-bit grant truncation, duplicate repair requests).
#include <gtest/gtest.h>

#include "audit/hooks.hpp"
#include "fault/fault.hpp"
#include "test_rig.hpp"

using namespace amrt;
using namespace amrt::sim::literals;
using amrt::testutil::DumbbellRig;
using amrt::testutil::RigOptions;
using transport::Protocol;

namespace {

std::string proto_name(const ::testing::TestParamInfo<Protocol>& info) {
  return transport::to_string(info.param);
}

// Runs a short drain window, then asserts the conservation ledger closed
// (no-op without AMRT_AUDIT — the stub reports zero violations).
void expect_audit_clean(DumbbellRig& rig) {
  rig.sched().run_until(rig.sched().now() + 5_ms);
  rig.sim().auditor().check_drained();
  EXPECT_EQ(rig.sim().auditor().violation_count(), 0u);
}

}  // namespace

// ---------------------------------------------------------------------------
// FaultPlan structural validation
// ---------------------------------------------------------------------------

TEST(FaultPlan, BuildersProduceBoundedPlansThatValidate) {
  fault::FaultPlan plan;
  plan.flap(0, sim::TimePoint::zero() + 1_ms, 500_us);
  plan.rate_dip(1, sim::TimePoint::zero(), 0.25, 2_ms);
  plan.blackhole(2, sim::TimePoint::zero() + 3_ms, 0.9, 1_ms);
  EXPECT_EQ(plan.size(), 6u);  // every perturbation schedules its restore
  EXPECT_NO_THROW(plan.validate(8));
}

TEST(FaultPlan, UnboundedOutageRejected) {
  fault::FaultPlan plan;
  plan.add({sim::TimePoint::zero(), 0, fault::FaultKind::kLinkDown, 0.0});
  EXPECT_THROW(plan.validate(8), std::invalid_argument);
}

TEST(FaultPlan, UnrestoredRateAndProbRejected) {
  fault::FaultPlan dip;
  dip.add({sim::TimePoint::zero(), 0, fault::FaultKind::kRateScale, 0.5});
  EXPECT_THROW(dip.validate(8), std::invalid_argument);
  fault::FaultPlan hole;
  hole.add({sim::TimePoint::zero(), 0, fault::FaultKind::kDropProb, 0.5});
  EXPECT_THROW(hole.validate(8), std::invalid_argument);
}

TEST(FaultPlan, OutOfRangeValuesRejected) {
  fault::FaultPlan plan;
  plan.rate_dip(0, sim::TimePoint::zero(), 1.5, 1_ms);  // scale > 1
  EXPECT_THROW(plan.validate(8), std::invalid_argument);
  fault::FaultPlan port_plan;
  port_plan.flap(9, sim::TimePoint::zero(), 1_ms);  // port outside the pool
  EXPECT_THROW(port_plan.validate(8), std::invalid_argument);
}

TEST(FaultPlan, DrawnPlansAreBoundedAndDeterministic) {
  const std::vector<std::int32_t> ports{0, 1, 2, 3};
  auto draw_once = [&] {
    fault::FaultPlan plan;
    sim::Rng rng{42};
    plan.draw(rng, ports, 20_us, 16);
    plan.validate(4);  // every drawn incident must restore itself
    return plan.events().size();
  };
  const auto n = draw_once();
  EXPECT_EQ(n, 32u);  // 16 incidents, each one perturbation + one restore
  EXPECT_EQ(n, draw_once());
}

// ---------------------------------------------------------------------------
// Fault scenarios across all four transports: completion, bounded FCT, and
// a closed audit ledger despite injected loss.
// ---------------------------------------------------------------------------

class FaultScenarios : public ::testing::TestWithParam<Protocol> {};

TEST_P(FaultScenarios, HardLinkFailureHealsAndCompletes) {
  RigOptions opt;
  opt.proto = GetParam();
  opt.pairs = 2;
  DumbbellRig rig{opt};
  fault::FaultPlan plan;
  plan.flap(rig.s0().port_id(0), sim::TimePoint::zero() + 100_us, 500_us);
  fault::FaultInjector injector{rig.network(), std::move(plan)};
  injector.arm();

  rig.start_flow(1, 0, 300'000);
  rig.start_flow(2, 1, 300'000);
  ASSERT_TRUE(rig.run_to_completion(2, 2_s)) << "flows must survive the outage";
  EXPECT_EQ(injector.stats().link_transitions, 2u);
  // The flush on link-down plus arrivals while dark are charged as faulted.
  EXPECT_GT(rig.network().packets_faulted(), 0u);
  for (const auto& rec : rig.recorder().completed()) EXPECT_LT(rec.fct(), 1'500_ms);
  expect_audit_clean(rig);
}

TEST_P(FaultScenarios, FlappingLinkCompletes) {
  RigOptions opt;
  opt.proto = GetParam();
  opt.pairs = 2;
  DumbbellRig rig{opt};
  const auto rto = rig.tcfg().default_loss_timeout(opt.proto);
  fault::FaultPlan plan;
  for (int i = 0; i < 3; ++i) {
    plan.flap(rig.s0().port_id(0), sim::TimePoint::zero() + rto * (2 + 6 * i), rto * 3);
  }
  fault::FaultInjector injector{rig.network(), std::move(plan)};
  injector.arm();

  rig.start_flow(1, 0, 200'000);
  rig.start_flow(2, 1, 200'000);
  ASSERT_TRUE(rig.run_to_completion(2, 2_s));
  // Fast transports can finish before the later flaps; the drain inside
  // expect_audit_clean runs the clock past them so every event fires.
  expect_audit_clean(rig);
  EXPECT_EQ(injector.stats().link_transitions, 6u);
}

TEST_P(FaultScenarios, BlackholeWindowCompletes) {
  RigOptions opt;
  opt.proto = GetParam();
  opt.pairs = 2;
  DumbbellRig rig{opt};
  fault::FaultPlan plan;
  plan.seed = 7;
  plan.blackhole(rig.s0().port_id(0), sim::TimePoint::zero() + 50_us, 0.5, 400_us);
  fault::FaultInjector injector{rig.network(), std::move(plan)};
  injector.arm();

  rig.start_flow(1, 0, 300'000);
  rig.start_flow(2, 1, 300'000);
  ASSERT_TRUE(rig.run_to_completion(2, 2_s));
  EXPECT_GT(rig.network().packets_faulted(), 0u);
  expect_audit_clean(rig);
}

TEST_P(FaultScenarios, RateDipSlowsButCompletes) {
  RigOptions opt;
  opt.proto = GetParam();
  DumbbellRig rig{opt};
  fault::FaultPlan plan;
  plan.rate_dip(rig.s0().port_id(0), sim::TimePoint::zero(), 0.25, 1_ms);
  fault::FaultInjector injector{rig.network(), std::move(plan)};
  injector.arm();

  rig.start_flow(1, 0, 500'000);
  ASSERT_TRUE(rig.run_to_completion(1, 2_s));
  // A rate dip degrades, it never destroys: nothing may be charged faulted.
  EXPECT_EQ(rig.network().packets_faulted(), 0u);
  // 500KB at the dipped 2.5Gbps would take ~1.7ms; full rate ~0.43ms. The
  // flow must land between "unaffected" and "stuck until the deadline".
  EXPECT_GT(rig.recorder().completed().at(0).fct(), 500_us);
  EXPECT_LT(rig.recorder().completed().at(0).fct(), 100_ms);
  expect_audit_clean(rig);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, FaultScenarios,
                         ::testing::ValuesIn(testutil::kAllProtocols), proto_name);

// ---------------------------------------------------------------------------
// Regression: lost RTS must not deadlock the flow (sender-side retry).
// ---------------------------------------------------------------------------

class ControlLoss : public ::testing::TestWithParam<Protocol> {};

TEST_P(ControlLoss, LostRtsRetriedInsteadOfDeadlocking) {
  RigOptions opt;
  opt.proto = GetParam();
  opt.unscheduled = false;  // pure-RTS flow: the announcement is all there is
  DumbbellRig rig{opt};
  const auto rto = rig.tcfg().default_loss_timeout(opt.proto);
  // Eat everything on the forward path long enough to kill the initial RTS;
  // the first sender retry (2x rto for pure-RTS flows) lands after restore.
  fault::FaultPlan plan;
  plan.blackhole(rig.s0().port_id(0), sim::TimePoint::zero(), 1.0, rto);
  fault::FaultInjector injector{rig.network(), std::move(plan)};
  injector.arm();

  rig.start_flow(1, 0, 100'000);
  // Without the retry the receiver never learns the flow exists: deadlock.
  ASSERT_TRUE(rig.run_to_completion(1, 1_s)) << "lost RTS must be re-announced";
  expect_audit_clean(rig);
}

TEST_P(ControlLoss, LostDoneRecoveredByRtsProbe) {
  RigOptions opt;
  opt.proto = GetParam();
  DumbbellRig rig{opt};
  const auto rto = rig.tcfg().default_loss_timeout(opt.proto);
  // Single-packet flow: delivered blind, so the Done is the only control
  // packet the sender will ever hear. Eat the reverse path past the first
  // RTS retry (16x rto); the retry at 32x rto finds the flow finished and
  // the receiver resends the Done.
  fault::FaultPlan plan;
  plan.blackhole(rig.s1().port_id(0), sim::TimePoint::zero(), 1.0, rto * 20);
  fault::FaultInjector injector{rig.network(), std::move(plan)};
  injector.arm();

  rig.start_flow(1, 0, 1'000);
  ASSERT_TRUE(rig.run_to_completion(1, 1_s));
  rig.sched().run_until(sim::TimePoint::zero() + rto * 40);
  EXPECT_EQ(rig.sender_ep(0).open_sender_flows(), 0u)
      << "resent Done must tear the sender down";
  expect_audit_clean(rig);
}

TEST_P(ControlLoss, LostDoneBeyondRetriesReclaimedByLinger) {
  RigOptions opt;
  opt.proto = GetParam();
  DumbbellRig rig{opt};
  const auto rto = rig.tcfg().default_loss_timeout(opt.proto);
  // Reverse path dark past the linger window (64x rto): every Done and
  // every resent Done dies, and the sender must eventually give up on its
  // own — before this fix the flow record leaked forever.
  fault::FaultPlan plan;
  plan.blackhole(rig.s1().port_id(0), sim::TimePoint::zero(), 1.0, rto * 70);
  fault::FaultInjector injector{rig.network(), std::move(plan)};
  injector.arm();

  rig.start_flow(1, 0, 1'000);
  ASSERT_TRUE(rig.run_to_completion(1, 1_s));
  rig.sched().run_until(sim::TimePoint::zero() + rto * 80);
  EXPECT_EQ(rig.sender_ep(0).open_sender_flows(), 0u)
      << "linger backstop must reclaim the silent flow";
  expect_audit_clean(rig);
}

TEST_P(ControlLoss, AbandonedSenderDoesNotLeakReceiverState) {
  RigOptions opt;
  opt.proto = GetParam();
  opt.responsive = false;  // announces the flow, never sends a byte
  DumbbellRig rig{opt};
  const auto rto = rig.tcfg().default_loss_timeout(opt.proto);
  rig.start_flow(1, 0, 100'000);
  // receiver_abandon_rtos (128) of silence — reached after the RTS retry
  // budget (~8 rtos of probes) — then the sender's linger window (64 rtos)
  // on top: the teardown chain can land right at 200 rtos, so leave slack.
  rig.sched().run_until(sim::TimePoint::zero() + rto * 240);
  EXPECT_EQ(rig.receiver_ep(0).open_receiver_flows(), 0u)
      << "receiver must abandon a flow whose sender went dark";
  EXPECT_EQ(rig.sender_ep(0).open_sender_flows(), 0u)
      << "sender linger must fire once the receiver stops probing";
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ControlLoss, ::testing::ValuesIn(testutil::kAllProtocols),
                         proto_name);

// ---------------------------------------------------------------------------
// Regression: a credit burst beyond 65535 must chunk, not truncate.
// ---------------------------------------------------------------------------

namespace {

// Exposes the protected grant path so the 16-bit wire-field boundary can be
// driven directly (no sane protocol grants 70k credits in one call, which
// is exactly why the truncation survived until the fault fuzzer).
class GrantProbe : public transport::ReceiverDrivenEndpoint {
 public:
  GrantProbe(sim::Simulation& sim, net::Host& host, transport::TransportConfig cfg)
      : ReceiverDrivenEndpoint(sim, host, cfg, nullptr, Protocol::kPhost) {}

  // Registers a synthetic receiver flow of `total_pkts` from `src` and
  // grants `count` credits in one call; returns granted_new afterwards.
  std::uint64_t grant_burst(net::NodeId src, std::uint32_t total_pkts, std::uint32_t count) {
    auto [slot, inserted] = rcv_.try_emplace(77);
    ReceiverFlow& flow = *slot;
    flow.id = 77;
    flow.src = src;
    flow.total_pkts = total_pkts;
    flow.bytes = static_cast<std::uint64_t>(total_pkts) * net::kMssBytes;
    flow.seqs.resize(total_pkts);
    const auto granted = grant_new(flow, count, /*marked=*/false);
    EXPECT_EQ(granted, count);
    return flow.granted_new;
  }

 private:
  void after_arrival(ReceiverFlow&, const net::Packet&, bool) override {}
};

}  // namespace

TEST(GrantAllowance, BurstBeyondWireFieldIsChunkedNotTruncated) {
  RigOptions opt;
  opt.proto = Protocol::kPhost;
  DumbbellRig rig{opt};
  // A probe endpoint on the receiver host replaces the rig's endpoint; the
  // grants it emits travel the real reverse path to the sender host.
  auto probe_owner = std::make_unique<GrantProbe>(rig.sim(), rig.receiver(0), rig.tcfg());
  GrantProbe* probe = probe_owner.get();
  rig.receiver(0).attach(std::move(probe_owner));

  const auto before = rig.receiver(0).nic().packets_sent();
  // 70'000 credits: pre-fix this cast to uint16 (allowance 4'464) while the
  // receiver booked all 70'000 as granted — the flow stalled forever.
  EXPECT_EQ(probe->grant_burst(rig.sender(0).id(), 100'000, 70'000), 70'000u);
  rig.sched().run_until(rig.sched().now() + 1_ms);
  EXPECT_EQ(rig.receiver(0).nic().packets_sent() - before, 2u)
      << "70k credits must ride two grant packets (65535 + 4465)";
}

// ---------------------------------------------------------------------------
// Regression: stall-scan repairs share the in-band bookkeeping, so one lost
// packet is never re-requested by both paths inside one timeout window.
// ---------------------------------------------------------------------------

TEST(RepairDedup, LossBurstRepairedWithoutDuplicateRequests) {
  RigOptions opt;
  opt.proto = Protocol::kAmrt;
  DumbbellRig rig{opt};
  const auto rto = rig.tcfg().default_loss_timeout(opt.proto);
  // A hard blackhole mid-flow eats a contiguous burst: the hole detector
  // (arrivals after restore) and the stall scan (timeout) both see the same
  // missing range — the forced duplicate-repair window.
  fault::FaultPlan plan;
  plan.blackhole(rig.s0().port_id(0), sim::TimePoint::zero() + rto, 1.0, rto * 4);
  fault::FaultInjector injector{rig.network(), std::move(plan)};
  injector.arm();

  rig.start_flow(1, 0, 500'000);
  ASSERT_TRUE(rig.run_to_completion(1, 2_s));

  const std::uint64_t payload_pkts = net::packets_for_bytes(500'000);
  const std::uint64_t lost = rig.network().packets_faulted();
  std::uint64_t queue_drops = 0;
  for (const auto& sw : rig.network().switches()) {
    for (int p = 0; p < sw.port_count(); ++p) queue_drops += sw.port(p).queue().stats().dropped;
  }
  const std::uint64_t sent = rig.sender(0).nic().packets_sent();
  // Every retransmission answers one loss; doubled repair requests would
  // push `sent` toward payload + 2x losses. Allow the losses themselves
  // plus a small control/RTS margin.
  EXPECT_LT(sent, payload_pkts + (lost + queue_drops) + 50)
      << "suspicious duplicate retransmissions: sent " << sent << " for " << payload_pkts
      << " payload packets with " << lost << " faulted and " << queue_drops << " dropped";
  expect_audit_clean(rig);
}
