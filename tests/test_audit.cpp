// Tests for the invariant-audit subsystem (src/audit). Built only under
// -DAMRT_AUDIT=ON (the `audit` preset): each test deliberately violates one
// invariant through the hook API and asserts the auditor reports it with
// the right diagnostic; the death test checks the fail-fast mode used by CI
// prints the replay line before aborting.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "audit/auditor.hpp"
#include "audit/hooks.hpp"
#include "harness/fuzz.hpp"
#include "sim/simulation.hpp"

using namespace amrt;
using audit::Auditor;
using audit::DropReason;
using audit::PacketInfo;

namespace {

PacketInfo data_info(std::uint64_t flow, std::uint32_t seq) {
  PacketInfo p;
  p.flow = flow;
  p.seq = seq;
  p.type = 0;  // kData
  p.wire_bytes = net::kMtuBytes;
  p.payload_bytes = net::kMssBytes;
  p.is_data = true;
  return p;
}

// Collect-don't-abort for every test; individual tests opt back in.
class AuditTest : public ::testing::Test {
 protected:
  void SetUp() override { audit::set_fail_fast(false); }
  void TearDown() override {
    audit::set_fail_fast(true);
    audit::set_context("");
  }
  Auditor a;
};

void expect_violation(const Auditor& a, const std::string& invariant) {
  ASSERT_GE(a.violation_count(), 1u);
  EXPECT_NE(a.violations().front().find("[" + invariant + "]"), std::string::npos)
      << "got: " << a.violations().front();
}

}  // namespace

TEST_F(AuditTest, CompiledIn) { EXPECT_TRUE(Auditor::enabled()); }

TEST_F(AuditTest, BalancedLedgerIsClean) {
  const auto p = data_info(1, 0);
  a.on_inject(p);
  a.on_deliver(p);
  a.check_drained();
  EXPECT_EQ(a.violation_count(), 0u);
  EXPECT_EQ(a.injected(), 1u);
  EXPECT_EQ(a.delivered(), 1u);
}

TEST_F(AuditTest, DuplicateDeliveryCaught) {
  const auto p = data_info(1, 7);
  a.on_inject(p);
  a.on_deliver(p);
  a.on_deliver(p);  // the network never carried a second copy
  expect_violation(a, "packet-conservation");
  EXPECT_NE(a.violations().front().find("duplicate delivery"), std::string::npos);
}

TEST_F(AuditTest, UntrackedDeliveryIgnored) {
  // Test-forged packets never pass Host::send; their delivery is not an
  // auditable event (this is what keeps unit tests false-positive free).
  a.on_deliver(data_info(99, 0));
  EXPECT_EQ(a.violation_count(), 0u);
}

TEST_F(AuditTest, InFlightPacketFailsDrainCheck) {
  a.on_inject(data_info(3, 2));
  a.check_drained();
  expect_violation(a, "packet-conservation");
  EXPECT_NE(a.violations().front().find("flow 3 seq 2"), std::string::npos);
}

TEST_F(AuditTest, PayloadByteDriftFailsDrainCheck) {
  auto p = data_info(1, 0);
  a.on_inject(p);
  p.payload_bytes -= 100;  // deliver fewer payload bytes than were injected
  a.on_deliver(p);
  a.check_drained();
  expect_violation(a, "byte-conservation");
}

TEST_F(AuditTest, TrimAccountsForRemovedPayload) {
  auto p = data_info(1, 0);
  a.on_inject(p);
  a.on_trim(p, net::kMssBytes);
  p.payload_bytes = 0;  // header-only survivor
  p.trimmed = true;
  a.on_deliver(p);
  a.check_drained();
  EXPECT_EQ(a.violation_count(), 0u);
  EXPECT_EQ(a.trimmed(), 1u);
}

TEST_F(AuditTest, AntiEcnSetBitCaught) {
  // Eq. 3: CE_final must be the AND of the per-hop verdicts. Model a hop
  // that *set* the bit after a marker had cleared the shadow.
  auto p = data_info(1, 0);
  p.ecn_capable = true;
  p.ce = true;
  p.ce_expected = false;
  a.on_inject(p);
  a.on_deliver(p);
  expect_violation(a, "anti-ecn-eq3");
}

TEST_F(AuditTest, QueueByteDriftCaught) {
  const std::uint32_t q = 7;
  a.on_queue_admit(q, 100, /*depth=*/1, /*enq=*/1, /*deq=*/0, /*dropped=*/0);
  // Dequeue reports fewer wire bytes than were admitted: queue empty but
  // shadow bytes nonzero.
  a.on_queue_dequeue(q, 60, /*depth=*/0, /*enq=*/1, /*deq=*/1, /*dropped=*/0);
  expect_violation(a, "queue-accounting");
  EXPECT_NE(a.violations().front().find("byte drift"), std::string::npos);
}

TEST_F(AuditTest, QueueOverDequeueCaught) {
  const std::uint32_t q = 7;
  a.on_queue_dequeue(q, 100, 0, 0, 1, 0);  // dequeue from a never-admitted queue
  expect_violation(a, "queue-accounting");
}

TEST_F(AuditTest, QueueStatsIdentityCaught) {
  const std::uint32_t q = 7;
  // Depth 1 but stats claim 2 enqueued, 0 dequeued, 0 dropped: one packet
  // vanished without a drop record.
  a.on_queue_admit(q, 100, /*depth=*/1, /*enq=*/2, /*deq=*/0, /*dropped=*/0);
  expect_violation(a, "queue-accounting");
  EXPECT_NE(a.violations().front().find("stats identity"), std::string::npos);
}

TEST_F(AuditTest, ClockMonotonicityCaught) {
  a.on_event_fire(/*when=*/5, /*clock_before=*/10);
  expect_violation(a, "clock-monotonicity");
}

TEST_F(AuditTest, WheelOrderCaught) {
  a.on_event_fire(10, 0);
  a.on_event_fire(5, 0);  // earlier timestamp fired later: wheel misordered
  expect_violation(a, "wheel-order");
}

TEST_F(AuditTest, InOrderEventsClean) {
  a.on_event_fire(5, 0);
  a.on_event_fire(5, 5);  // ties are legal
  a.on_event_fire(9, 5);
  EXPECT_EQ(a.violation_count(), 0u);
}

TEST_F(AuditTest, MarkedGrantWrongAllowanceCaught) {
  // AMRT's marked grant must carry exactly min(remaining, configured
  // allowance); 3 packets for a marked grant is the classic off-by-one.
  a.on_grant_sent(/*flow=*/1, /*marked=*/true, /*allowance=*/3, /*granted_total=*/5,
                  /*total=*/10, /*remaining_before=*/7, /*marked_expected=*/2);
  expect_violation(a, "marked-grant-allowance");
}

TEST_F(AuditTest, MarkedGrantClampedByRemainingIsClean) {
  a.on_grant_sent(1, true, 1, 10, 10, /*remaining_before=*/1, /*marked_expected=*/2);
  EXPECT_EQ(a.violation_count(), 0u);
}

TEST_F(AuditTest, GrantBudgetOvershootCaught) {
  a.on_grant_sent(1, false, 1, /*granted_total=*/11, /*total=*/10, 1, 0);
  expect_violation(a, "grant-budget");
}

TEST_F(AuditTest, OffsetGrantBeyondFlowCaught) {
  a.on_offset_grant(1, /*offset=*/2000, /*flow_bytes=*/1500);
  expect_violation(a, "grant-budget");
}

TEST_F(AuditTest, RepairOutOfRangeCaught) {
  a.on_repair_grant(1, /*seq=*/8, /*total=*/8);
  expect_violation(a, "repair-range");
}

TEST_F(AuditTest, GrantResponseOvershootCaught) {
  a.on_grant_response(1, /*allowance=*/2, /*request_seq=*/-1, /*sent=*/3, false);
  expect_violation(a, "grant-response");
}

TEST_F(AuditTest, OffsetSemanticsExemptFromCountCheck) {
  a.on_grant_response(1, 0, -1, 40, /*offset_semantics=*/true);
  EXPECT_EQ(a.violation_count(), 0u);
}

TEST_F(AuditTest, SeqBitmapMismatchCaught) {
  a.on_flow_finished(2, /*total=*/4, /*received=*/4, /*got_count=*/3);
  expect_violation(a, "seq-bitmap");
}

TEST_F(AuditTest, GrantAfterFinishCaught) {
  a.on_flow_finished(1, 4, 4, 4);
  a.on_grant_sent(1, false, 1, 4, 4, 0, 0);
  expect_violation(a, "grant-after-finish");
}

TEST(AuditDeath, FailFastAbortsWithReplayLine) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        audit::set_fail_fast(true);
        audit::set_context("scenario_fuzz --seed 7 --topo dumbbell --transport NDP");
        Auditor a;
        const auto p = data_info(1, 0);
        a.on_inject(p);
        a.on_deliver(p);
        a.on_deliver(p);
      },
      "AMRT_AUDIT violation: \\[packet-conservation\\].*\n.*replay: scenario_fuzz --seed 7");
}

// End to end: full simulations under every transport and topology family
// must run violation-free with the auditor live (the positive control for
// all the deliberate violations above).
TEST(AuditEndToEnd, AllTransportsZeroViolations) {
  audit::set_fail_fast(false);
  for (const auto proto : {transport::Protocol::kAmrt, transport::Protocol::kPhost,
                           transport::Protocol::kHoma, transport::Protocol::kNdp}) {
    for (const auto topo : harness::fuzz::kAllTopos) {
      const harness::fuzz::CaseConfig cfg{11, topo, proto};
      const auto r = harness::fuzz::run_case(cfg);
      EXPECT_TRUE(r.ok) << harness::fuzz::repro_line(cfg) << ": " << r.failure;
      EXPECT_EQ(r.audit_violations, 0u) << harness::fuzz::repro_line(cfg);
    }
  }
  audit::set_fail_fast(true);
}

// The simulation wires its own auditor into the scheduler at construction.
TEST(AuditWiring, SimulationOwnsTheSchedulerAuditor) {
  sim::Simulation simu{1};
  EXPECT_EQ(simu.scheduler().auditor(), &simu.auditor());
}
