// Property sweep: across protocols, buffer regimes and seeds, randomized
// traffic through the dumbbell always delivers exactly the injected payload
// and always terminates — the fundamental safety/liveness invariants of a
// reliable transport.
#include <gtest/gtest.h>

#include <tuple>

#include "test_rig.hpp"

using namespace amrt;
using namespace amrt::sim::literals;
using amrt::testutil::DumbbellRig;
using amrt::testutil::RigOptions;
using transport::Protocol;

namespace {
using Param = std::tuple<Protocol, std::size_t /*buffer*/, std::uint64_t /*seed*/>;

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  const auto [proto, buffer, seed] = info.param;
  return std::string(transport::to_string(proto)) + "_buf" + std::to_string(buffer) + "_seed" +
         std::to_string(seed);
}
}  // namespace

class ConservationSweep : public ::testing::TestWithParam<Param> {};

TEST_P(ConservationSweep, RandomTrafficIsDeliveredExactlyOnce) {
  const auto [proto, buffer, seed] = GetParam();
  RigOptions opt;
  opt.proto = proto;
  opt.pairs = 4;
  opt.queues.buffer_pkts = buffer;
  opt.queues.trim_threshold = buffer;
  DumbbellRig rig{opt};

  sim::Rng rng{seed};
  std::uint64_t total = 0;
  constexpr int kFlows = 12;
  for (int i = 0; i < kFlows; ++i) {
    // Sizes spanning sub-packet to multi-BDP; staggered Poisson-ish starts.
    const auto bytes = static_cast<std::uint64_t>(rng.uniform_int(1, 400'000));
    const auto start = sim::TimePoint::zero() +
                       sim::Duration::microseconds(rng.uniform_int(0, 2'000));
    rig.start_flow(static_cast<net::FlowId>(i + 1), static_cast<int>(rng.index(4)), bytes, start);
    total += bytes;
  }

  ASSERT_TRUE(rig.run_to_completion(kFlows, 3_s)) << "liveness: all flows must complete";
  // Exactly-once delivery: duplicates are filtered by the receiver bitmap,
  // losses are repaired, so delivered payload equals injected payload.
  EXPECT_EQ(rig.recorder().bytes_delivered(), total);
  EXPECT_EQ(rig.recorder().completed().size(), static_cast<std::size_t>(kFlows));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConservationSweep,
    ::testing::Combine(::testing::ValuesIn(testutil::kAllProtocols),
                       ::testing::Values<std::size_t>(4, 32, 128),
                       ::testing::Values<std::uint64_t>(1, 42)),
    param_name);

// FCT sanity across the same grid: no completed flow can beat the physical
// lower bound (serialization at line rate + one-way propagation).
class FctBoundSweep : public ::testing::TestWithParam<Protocol> {};

TEST_P(FctBoundSweep, NoFlowBeatsThePhysicalBound) {
  RigOptions opt;
  opt.proto = GetParam();
  opt.pairs = 2;
  DumbbellRig rig{opt};
  rig.start_flow(1, 0, 750'000);
  rig.start_flow(2, 1, 50'000);
  ASSERT_TRUE(rig.run_to_completion(2, 1_s));
  for (const auto& rec : rig.recorder().completed()) {
    const auto pkts = net::packets_for_bytes(rec.bytes);
    const auto wire = static_cast<std::int64_t>(rec.bytes + pkts * net::kHeaderBytes);
    // Serialize once onto the wire plus 3 hops of propagation.
    const auto bound = opt.rate.tx_time(wire) + opt.delay * 3;
    EXPECT_GE(rec.fct(), bound) << "flow " << rec.flow;
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, FctBoundSweep, ::testing::ValuesIn(testutil::kAllProtocols),
                         [](const auto& pinfo) { return transport::to_string(pinfo.param); });
