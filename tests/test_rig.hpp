// Shared test fixture: a tiny dumbbell network (N sender hosts and N
// receiver hosts around one switch pair) with per-protocol endpoints, so
// transport tests can push real flows end-to-end in a few lines.
#pragma once

#include <memory>
#include <vector>

#include "core/factory.hpp"
#include "net/monitor.hpp"
#include "net/topology.hpp"
#include "stats/fct.hpp"

namespace amrt::testutil {

struct RigOptions {
  transport::Protocol proto = transport::Protocol::kAmrt;
  std::uint64_t seed = 1;
  int pairs = 1;  // sender/receiver host pairs
  sim::Bandwidth rate = sim::Bandwidth::gbps(10);
  sim::Duration delay = sim::Duration::microseconds(5);
  core::QueueConfig queues{};
  bool unscheduled = true;
  bool responsive = true;
  sim::Duration loss_timeout = sim::Duration::zero();
  int homa_overcommit = 2;
};

// senders[i] -> S0 -> S1 -> receivers[i]; the S0->S1 link is the bottleneck.
class DumbbellRig {
 public:
  explicit DumbbellRig(const RigOptions& opt) : opt_{opt}, sim_{opt.seed}, network_{sim_} {
    const auto base_rtt = net::path_base_rtt(3, opt.rate, opt.delay);
    recorder_ = std::make_unique<stats::FctRecorder>(opt.rate, base_rtt);

    auto qf = core::make_queue_factory(opt.proto, opt.queues);
    auto mf = core::make_marker_factory(opt.proto);
    auto marker = [&]() -> std::unique_ptr<net::DequeueMarker> { return mf ? mf() : nullptr; };

    const net::SwitchId s0 = network_.add_switch();
    const net::SwitchId s1 = network_.add_switch();
    bottleneck_id_ =
        network_.add_switch_port(s0, network_.id_of(s1), opt.rate, opt.delay, qf(false), marker());
    network_.add_switch_port(s1, network_.id_of(s0), opt.rate, opt.delay, qf(false), marker());

    transport::TransportConfig tcfg;
    tcfg.host_rate = opt.rate;
    tcfg.base_rtt = base_rtt;
    tcfg.unscheduled_start = opt.unscheduled;
    tcfg.responsive = opt.responsive;
    tcfg.loss_timeout = opt.loss_timeout;
    tcfg.homa_overcommit = opt.homa_overcommit;
    tcfg_ = tcfg;

    // Wire everything first — pool references are stable only once the
    // topology stops growing.
    std::vector<net::HostId> src_ids;
    std::vector<net::HostId> dst_ids;
    for (int i = 0; i < opt.pairs; ++i) {
      const net::HostId src = network_.add_host(
          opt.rate, opt.delay, std::make_unique<net::DropTailQueue>(opt.queues.host_nic_pkts));
      const net::HostId dst = network_.add_host(
          opt.rate, opt.delay, std::make_unique<net::DropTailQueue>(opt.queues.host_nic_pkts));
      const net::PortId src_down = network_.attach_host(src, s0, qf(false), marker());
      const net::PortId dst_down = network_.attach_host(dst, s1, qf(false), marker());
      network_.switch_at(s0).routes().add_route(network_.id_of(src), src_down);
      network_.switch_at(s1).routes().add_route(network_.id_of(dst), dst_down);
      // via bottleneck / reverse path
      network_.switch_at(s0).routes().add_route(network_.id_of(dst), bottleneck_id_);
      network_.switch_at(s1).routes().add_route(network_.id_of(src),
                                                network_.switch_at(s1).port_id(0));
      src_ids.push_back(src);
      dst_ids.push_back(dst);
    }
    s0_ = &network_.switch_at(s0);
    s1_ = &network_.switch_at(s1);
    for (int i = 0; i < opt.pairs; ++i) {
      net::Host& src = network_.host(src_ids[i]);
      net::Host& dst = network_.host(dst_ids[i]);
      senders_.push_back(&src);
      receivers_.push_back(&dst);

      auto sep = core::make_endpoint(opt.proto, sim_, src, tcfg, recorder_.get());
      sender_eps_.push_back(static_cast<transport::ReceiverDrivenEndpoint*>(sep.get()));
      src.attach(std::move(sep));
      auto rep = core::make_endpoint(opt.proto, sim_, dst, tcfg, recorder_.get());
      receiver_eps_.push_back(static_cast<transport::ReceiverDrivenEndpoint*>(rep.get()));
      dst.attach(std::move(rep));
    }
  }

  // Starts `bytes` from pair i's sender to pair i's receiver at `at`.
  void start_flow(net::FlowId id, int pair, std::uint64_t bytes,
                  sim::TimePoint at = sim::TimePoint::zero()) {
    transport::FlowSpec spec{id, senders_[pair]->id(), receivers_[pair]->id(), bytes, at};
    auto* ep = sender_eps_[pair];
    sched_.at(at, [ep, spec] { ep->start_flow(spec); });
  }

  // Runs until all of `expected` flows complete or `deadline` passes;
  // returns true if everything completed.
  bool run_to_completion(std::size_t expected, sim::Duration deadline) {
    poll_ = [this, expected] {
      if (recorder_->completed().size() >= expected) {
        sched_.stop();
        return;
      }
      sched_.after(sim::Duration::microseconds(50), poll_);
    };
    sched_.after(sim::Duration::microseconds(50), poll_);
    sched_.run_until(sim::TimePoint::zero() + deadline);
    return recorder_->completed().size() >= expected;
  }

  sim::Simulation& sim() { return sim_; }
  sim::Scheduler& sched() { return sim_.scheduler(); }
  net::Network& network() { return network_; }
  stats::FctRecorder& recorder() { return *recorder_; }
  net::EgressPort& bottleneck() { return network_.port_at(bottleneck_id_); }
  net::Switch& s0() { return *s0_; }
  net::Switch& s1() { return *s1_; }
  net::Host& sender(int i) { return *senders_[i]; }
  net::Host& receiver(int i) { return *receivers_[i]; }
  transport::ReceiverDrivenEndpoint& sender_ep(int i) { return *sender_eps_[i]; }
  transport::ReceiverDrivenEndpoint& receiver_ep(int i) { return *receiver_eps_[i]; }
  const transport::TransportConfig& tcfg() const { return tcfg_; }

 private:
  RigOptions opt_;
  sim::Simulation sim_;
  sim::Scheduler& sched_ = sim_.scheduler();
  net::Network network_;
  std::unique_ptr<stats::FctRecorder> recorder_;
  net::Switch* s0_ = nullptr;
  net::Switch* s1_ = nullptr;
  net::PortId bottleneck_id_ = -1;
  std::vector<net::Host*> senders_;
  std::vector<net::Host*> receivers_;
  std::vector<transport::ReceiverDrivenEndpoint*> sender_eps_;
  std::vector<transport::ReceiverDrivenEndpoint*> receiver_eps_;
  transport::TransportConfig tcfg_;
  std::function<void()> poll_;
};

inline constexpr transport::Protocol kAllProtocols[] = {
    transport::Protocol::kAmrt, transport::Protocol::kPhost, transport::Protocol::kHoma,
    transport::Protocol::kNdp};

}  // namespace amrt::testutil
