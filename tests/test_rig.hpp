// Shared test fixture: a tiny dumbbell network (N sender hosts and N
// receiver hosts around one switch pair) with per-protocol endpoints, so
// transport tests can push real flows end-to-end in a few lines.
#pragma once

#include <memory>
#include <vector>

#include "core/factory.hpp"
#include "net/monitor.hpp"
#include "net/topology.hpp"
#include "stats/fct.hpp"

namespace amrt::testutil {

struct RigOptions {
  transport::Protocol proto = transport::Protocol::kAmrt;
  std::uint64_t seed = 1;
  int pairs = 1;  // sender/receiver host pairs
  sim::Bandwidth rate = sim::Bandwidth::gbps(10);
  sim::Duration delay = sim::Duration::microseconds(5);
  core::QueueConfig queues{};
  bool unscheduled = true;
  bool responsive = true;
  sim::Duration loss_timeout = sim::Duration::zero();
  int homa_overcommit = 2;
};

// senders[i] -> S0 -> S1 -> receivers[i]; the S0->S1 link is the bottleneck.
class DumbbellRig {
 public:
  explicit DumbbellRig(const RigOptions& opt) : opt_{opt}, sim_{opt.seed}, network_{sim_} {
    const auto base_rtt = net::path_base_rtt(3, opt.rate, opt.delay);
    recorder_ = std::make_unique<stats::FctRecorder>(opt.rate, base_rtt);

    auto qf = core::make_queue_factory(opt.proto, opt.queues);
    auto mf = core::make_marker_factory(opt.proto);
    auto marker = [&]() -> std::unique_ptr<net::DequeueMarker> { return mf ? mf() : nullptr; };

    s0_ = &network_.add_switch("S0");
    s1_ = &network_.add_switch("S1");
    bottleneck_ = &network_.add_switch_port(*s0_, *s1_, opt.rate, opt.delay, qf(false), marker());
    network_.add_switch_port(*s1_, *s0_, opt.rate, opt.delay, qf(false), marker());

    transport::TransportConfig tcfg;
    tcfg.host_rate = opt.rate;
    tcfg.base_rtt = base_rtt;
    tcfg.unscheduled_start = opt.unscheduled;
    tcfg.responsive = opt.responsive;
    tcfg.loss_timeout = opt.loss_timeout;
    tcfg.homa_overcommit = opt.homa_overcommit;
    tcfg_ = tcfg;

    for (int i = 0; i < opt.pairs; ++i) {
      auto& src = network_.add_host("src" + std::to_string(i), opt.rate, opt.delay,
                                    std::make_unique<net::DropTailQueue>(opt.queues.host_nic_pkts));
      auto& dst = network_.add_host("dst" + std::to_string(i), opt.rate, opt.delay,
                                    std::make_unique<net::DropTailQueue>(opt.queues.host_nic_pkts));
      const int src_down = network_.attach_host(src, *s0_, qf(false), marker());
      const int dst_down = network_.attach_host(dst, *s1_, qf(false), marker());
      s0_->routes().add_route(src.id(), src_down);
      s1_->routes().add_route(dst.id(), dst_down);
      s0_->routes().add_route(dst.id(), 0);  // via bottleneck
      s1_->routes().add_route(src.id(), 0);  // reverse path
      senders_.push_back(&src);
      receivers_.push_back(&dst);

      auto sep = core::make_endpoint(opt.proto, sim_, src, tcfg, recorder_.get());
      sender_eps_.push_back(static_cast<transport::ReceiverDrivenEndpoint*>(sep.get()));
      src.attach(std::move(sep));
      auto rep = core::make_endpoint(opt.proto, sim_, dst, tcfg, recorder_.get());
      receiver_eps_.push_back(static_cast<transport::ReceiverDrivenEndpoint*>(rep.get()));
      dst.attach(std::move(rep));
    }
  }

  // Starts `bytes` from pair i's sender to pair i's receiver at `at`.
  void start_flow(net::FlowId id, int pair, std::uint64_t bytes,
                  sim::TimePoint at = sim::TimePoint::zero()) {
    transport::FlowSpec spec{id, senders_[pair]->id(), receivers_[pair]->id(), bytes, at};
    auto* ep = sender_eps_[pair];
    sched_.at(at, [ep, spec] { ep->start_flow(spec); });
  }

  // Runs until all of `expected` flows complete or `deadline` passes;
  // returns true if everything completed.
  bool run_to_completion(std::size_t expected, sim::Duration deadline) {
    poll_ = [this, expected] {
      if (recorder_->completed().size() >= expected) {
        sched_.stop();
        return;
      }
      sched_.after(sim::Duration::microseconds(50), poll_);
    };
    sched_.after(sim::Duration::microseconds(50), poll_);
    sched_.run_until(sim::TimePoint::zero() + deadline);
    return recorder_->completed().size() >= expected;
  }

  sim::Simulation& sim() { return sim_; }
  sim::Scheduler& sched() { return sim_.scheduler(); }
  net::Network& network() { return network_; }
  stats::FctRecorder& recorder() { return *recorder_; }
  net::EgressPort& bottleneck() { return *bottleneck_; }
  net::Switch& s0() { return *s0_; }
  net::Switch& s1() { return *s1_; }
  net::Host& sender(int i) { return *senders_[i]; }
  net::Host& receiver(int i) { return *receivers_[i]; }
  transport::ReceiverDrivenEndpoint& sender_ep(int i) { return *sender_eps_[i]; }
  transport::ReceiverDrivenEndpoint& receiver_ep(int i) { return *receiver_eps_[i]; }
  const transport::TransportConfig& tcfg() const { return tcfg_; }

 private:
  RigOptions opt_;
  sim::Simulation sim_;
  sim::Scheduler& sched_ = sim_.scheduler();
  net::Network network_;
  std::unique_ptr<stats::FctRecorder> recorder_;
  net::Switch* s0_ = nullptr;
  net::Switch* s1_ = nullptr;
  net::EgressPort* bottleneck_ = nullptr;
  std::vector<net::Host*> senders_;
  std::vector<net::Host*> receivers_;
  std::vector<transport::ReceiverDrivenEndpoint*> sender_eps_;
  std::vector<transport::ReceiverDrivenEndpoint*> receiver_eps_;
  transport::TransportConfig tcfg_;
  std::function<void()> poll_;
};

inline constexpr transport::Protocol kAllProtocols[] = {
    transport::Protocol::kAmrt, transport::Protocol::kPhost, transport::Protocol::kHoma,
    transport::Protocol::kNdp};

}  // namespace amrt::testutil
