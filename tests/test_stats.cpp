// Unit tests for the metrics library (src/stats/).
#include <gtest/gtest.h>

#include "net/packet.hpp"
#include "stats/fct.hpp"
#include "stats/summary.hpp"
#include "stats/timeseries.hpp"

using namespace amrt::stats;
using namespace amrt::sim;
using namespace amrt::sim::literals;

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(OnlineStats, MomentsMatchHandComputation) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Percentile, BasicQuantiles) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 100.0);
  EXPECT_NEAR(percentile(xs, 0.5), 50.0, 1.0);
  EXPECT_NEAR(percentile(xs, 0.99), 99.0, 1.0);
}

TEST(Percentile, EmptyAndClamped) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 2.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, -1.0), 7.0);
}

// Pins the one percentile convention everywhere (summary.hpp): linear
// interpolation between closest ranks with rank = q*(n-1), NumPy's default.
// Before unification, GroupBook carried a private copy while FctRecorder used
// nearest-rank, so p50/p99 of the *same data* differed by code path.
TEST(Percentile, PinnedLinearInterpolationConvention) {
  const std::vector<double> odd{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(odd, 0.50), 3.0);  // exact middle order statistic

  // Even count: rank = 0.5 * 3 = 1.5 -> halfway between 20 and 30.
  const std::vector<double> even{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(even, 0.50), 25.0);
  // rank = 0.25 * 3 = 0.75 -> 10 + 0.75 * (20 - 10).
  EXPECT_DOUBLE_EQ(percentile(even, 0.25), 17.5);

  // p99 of 1..100: rank = 0.99 * 99 = 98.01 -> 99 + 0.01 * (100 - 99).
  std::vector<double> hundred;
  for (int i = 1; i <= 100; ++i) hundred.push_back(i);
  EXPECT_NEAR(percentile(hundred, 0.99), 99.01, 1e-9);

  // Unsorted input must give the same answer (the function partial-sorts).
  const std::vector<double> shuffled{40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile(shuffled, 0.50), 25.0);
}

namespace {
FctRecorder make_recorder() {
  return FctRecorder{Bandwidth::gbps(10), 100_us};
}
}  // namespace

// FctRecorder's summary percentiles go through the same stats::percentile as
// GroupBook's collective times: 10 flows at 100..1000us give p99 at rank
// 0.99 * 9 = 8.91, i.e. 900 + 0.91 * (1000 - 900) = 991us.
TEST(Percentile, FctSummaryUsesSharedConvention) {
  auto r = make_recorder();
  for (std::uint64_t i = 1; i <= 10; ++i) {
    r.on_flow_started(i, 10'000, TimePoint::zero());
    r.on_flow_completed(
        i, TimePoint::zero() + Duration::microseconds(static_cast<std::int64_t>(i * 100)));
  }
  const auto s = r.summarize();
  EXPECT_NEAR(s.p99_us, 991.0, 1e-6);
  EXPECT_NEAR(s.p50_us, 550.0, 1e-6);  // rank 4.5 -> midpoint of 500 and 600

  std::vector<double> fcts;
  for (const auto& rec : r.completed()) fcts.push_back(rec.fct().to_micros());
  EXPECT_DOUBLE_EQ(s.p99_us, percentile(fcts, 0.99));
}

TEST(FctRecorder, RecordsLifecycle) {
  auto r = make_recorder();
  r.on_flow_started(1, 100'000, TimePoint::zero());
  r.on_flow_progress(1, 100'000, TimePoint::zero() + 50_us);
  r.on_flow_completed(1, TimePoint::zero() + 200_us);
  ASSERT_EQ(r.completed().size(), 1u);
  EXPECT_EQ(r.completed()[0].fct(), 200_us);
  EXPECT_EQ(r.bytes_delivered(), 100'000u);
  EXPECT_EQ(r.incomplete_count(), 0u);
}

TEST(FctRecorder, SummaryStatistics) {
  auto r = make_recorder();
  for (std::uint64_t i = 1; i <= 10; ++i) {
    r.on_flow_started(i, 10'000, TimePoint::zero());
    r.on_flow_completed(i, TimePoint::zero() + Duration::microseconds(static_cast<std::int64_t>(i * 100)));
  }
  const auto s = r.summarize();
  EXPECT_EQ(s.completed, 10u);
  EXPECT_DOUBLE_EQ(s.afct_us, 550.0);
  EXPECT_NEAR(s.p99_us, 1000.0, 101.0);
  EXPECT_DOUBLE_EQ(s.max_fct_us, 1000.0);
}

TEST(FctRecorder, SizeBucketedSummaries) {
  auto r = make_recorder();
  r.on_flow_started(1, 10'000, TimePoint::zero());      // small
  r.on_flow_completed(1, TimePoint::zero() + 100_us);
  r.on_flow_started(2, 5'000'000, TimePoint::zero());   // large
  r.on_flow_completed(2, TimePoint::zero() + 5_ms);
  EXPECT_EQ(r.summarize(0, 100'000).completed, 1u);
  EXPECT_EQ(r.summarize(1'000'000, UINT64_MAX).completed, 1u);
  EXPECT_DOUBLE_EQ(r.summarize(0, 100'000).afct_us, 100.0);
}

TEST(FctRecorder, SlowdownRelativeToIdeal) {
  auto r = make_recorder();
  // 1460B flow: ideal = tx(1500)/10G + 100us rtt = 1.2 + 100 = 101.2us.
  r.on_flow_started(1, 1460, TimePoint::zero());
  r.on_flow_completed(1, TimePoint::zero() + Duration::nanoseconds(101'200 * 2));
  EXPECT_NEAR(r.summarize().mean_slowdown, 2.0, 0.01);
}

TEST(FctRecorder, UnknownCompletionIgnored) {
  auto r = make_recorder();
  r.on_flow_completed(99, TimePoint::zero());
  EXPECT_EQ(r.completed().size(), 0u);
}

TEST(FctRecorder, RecordOfFindsOpenAndClosed) {
  auto r = make_recorder();
  r.on_flow_started(1, 100, TimePoint::zero());
  ASSERT_TRUE(r.record_of(1).has_value());
  EXPECT_FALSE(r.record_of(2).has_value());
  r.on_flow_completed(1, TimePoint::zero() + 1_us);
  ASSERT_TRUE(r.record_of(1).has_value());
}

TEST(FctRecorder, ProgressHookFires) {
  auto r = make_recorder();
  std::uint64_t hooked = 0;
  r.set_progress_hook([&](std::uint64_t, std::uint64_t delta, TimePoint) { hooked += delta; });
  r.on_flow_started(1, 100, TimePoint::zero());
  r.on_flow_progress(1, 60, TimePoint::zero());
  r.on_flow_progress(1, 40, TimePoint::zero());
  EXPECT_EQ(hooked, 100u);
}

TEST(BinnedSeries, AccumulatesIntoCorrectBins) {
  BinnedSeries s{100_us};
  s.add(TimePoint::zero() + 50_us, 10.0);
  s.add(TimePoint::zero() + 150_us, 20.0);
  s.add(TimePoint::zero() + 160_us, 5.0);
  ASSERT_EQ(s.bins(), 2u);
  EXPECT_DOUBLE_EQ(s.sum_at(0), 10.0);
  EXPECT_DOUBLE_EQ(s.sum_at(1), 25.0);
  EXPECT_DOUBLE_EQ(s.sum_at(7), 0.0);
}

TEST(BinnedSeries, RatesDivideByWidth) {
  BinnedSeries s{100_us};
  s.add(TimePoint::zero(), 1e-4);  // 1e-4 units per 100us = 1 unit/sec
  const auto rates = s.rates();
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_NEAR(rates[0], 1.0, 1e-9);
}

TEST(BinnedSeries, BinStartTimes) {
  BinnedSeries s{250_us};
  EXPECT_EQ(s.bin_start(0), TimePoint::zero());
  EXPECT_EQ(s.bin_start(4), TimePoint::zero() + 1_ms);
}

TEST(FlowThroughputTracker, PerFlowGbps) {
  FlowThroughputTracker t{1_ms};
  // 1.25MB in 1ms = 10 Gbps.
  t.record(1, 1'250'000, TimePoint::zero() + 500_us);
  const auto g = t.gbps(1);
  ASSERT_EQ(g.size(), 1u);
  EXPECT_NEAR(g[0], 10.0, 0.01);
  EXPECT_TRUE(t.gbps(2).empty());
}

TEST(FlowThroughputTracker, TotalSumsFlows) {
  FlowThroughputTracker t{1_ms};
  t.record(1, 625'000, TimePoint::zero());
  t.record(2, 625'000, TimePoint::zero());
  const auto total = t.total_gbps();
  ASSERT_EQ(total.size(), 1u);
  EXPECT_NEAR(total[0], 10.0, 0.01);
}
