// FlatMap/FlatSet: open-addressing invariants the data plane leans on —
// collision chains survive backward-shift erasure, rehash keeps every
// element, iteration order is a pure function of operation history, and a
// randomized differential test pins behaviour to std::unordered_map.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <unordered_map>
#include <vector>

#include "util/flat_map.hpp"

using amrt::util::FlatMap;
using amrt::util::FlatSet;

namespace {

// Degenerate hash: every key lands in one home slot, so the whole table is
// a single probe chain and erase exercises the worst-case backward shift.
struct CollideAll {
  [[nodiscard]] constexpr std::uint64_t operator()(std::uint64_t) const { return 0; }
};

// Identity hash gives precise control over home slots (table capacity is a
// power of two, so key % cap == key & (cap - 1)).
struct Identity {
  [[nodiscard]] constexpr std::uint64_t operator()(std::uint64_t k) const { return k; }
};

TEST(FlatMap, InsertFindErase) {
  FlatMap<std::uint64_t, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(7), nullptr);

  m[7] = 70;
  m[9] = 90;
  ASSERT_NE(m.find(7), nullptr);
  EXPECT_EQ(*m.find(7), 70);
  EXPECT_EQ(*m.find(9), 90);
  EXPECT_EQ(m.size(), 2u);

  EXPECT_TRUE(m.erase(7));
  EXPECT_FALSE(m.erase(7));  // already gone
  EXPECT_EQ(m.find(7), nullptr);
  EXPECT_EQ(*m.find(9), 90);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, TryEmplaceReportsInsertion) {
  FlatMap<std::uint64_t, int> m;
  auto [v1, inserted1] = m.try_emplace(5);
  EXPECT_TRUE(inserted1);
  *v1 = 55;
  auto [v2, inserted2] = m.try_emplace(5);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(*v2, 55);
}

TEST(FlatMap, CollisionChainSurvivesMiddleErase) {
  FlatMap<std::uint64_t, int, CollideAll> m;
  for (std::uint64_t k = 1; k <= 8; ++k) m[k] = static_cast<int>(k * 10);
  // Erase from the middle of the single probe chain: backward-shift must
  // keep every survivor reachable.
  EXPECT_TRUE(m.erase(4));
  EXPECT_TRUE(m.erase(1));
  for (std::uint64_t k : {2u, 3u, 5u, 6u, 7u, 8u}) {
    ASSERT_NE(m.find(k), nullptr) << "lost key " << k << " after erase";
    EXPECT_EQ(*m.find(k), static_cast<int>(k * 10));
  }
  EXPECT_EQ(m.find(4), nullptr);
  EXPECT_EQ(m.find(1), nullptr);
  // Reinsert an erased key into the compacted chain.
  m[4] = 44;
  EXPECT_EQ(*m.find(4), 44);
  EXPECT_EQ(m.size(), 7u);
}

TEST(FlatMap, WrappedChainErase) {
  // Keys homed near the end of a 16-slot table so the probe chain wraps
  // around slot 0 — the cyclic-distance case in the backward-shift rule.
  FlatMap<std::uint64_t, int, Identity> m;
  m.reserve(10);  // capacity 16
  for (std::uint64_t k : {14u, 30u, 46u, 15u, 62u}) m[k] = static_cast<int>(k);
  EXPECT_TRUE(m.erase(30));
  for (std::uint64_t k : {14u, 46u, 15u, 62u}) {
    ASSERT_NE(m.find(k), nullptr) << "lost key " << k << " across the wrap";
    EXPECT_EQ(*m.find(k), static_cast<int>(k));
  }
}

TEST(FlatMap, RehashGrowthKeepsEverything) {
  FlatMap<std::uint64_t, std::uint64_t> m;
  constexpr std::uint64_t kN = 5000;  // forces many doublings from capacity 16
  for (std::uint64_t k = 0; k < kN; ++k) m[k * 2654435761u] = k;
  EXPECT_EQ(m.size(), kN);
  for (std::uint64_t k = 0; k < kN; ++k) {
    ASSERT_NE(m.find(k * 2654435761u), nullptr) << "lost key index " << k << " in rehash";
    EXPECT_EQ(*m.find(k * 2654435761u), k);
  }
}

TEST(FlatMap, DeterministicIterationOrder) {
  // Two tables fed the same operation history iterate identically; this is
  // what makes FlatMap-ordered loops safe in a bit-reproducible simulator.
  auto build = [] {
    FlatMap<std::uint64_t, int> m;
    for (std::uint64_t k = 0; k < 100; ++k) m[k * 3 + 1] = static_cast<int>(k);
    for (std::uint64_t k = 0; k < 100; k += 2) m.erase(k * 3 + 1);
    for (std::uint64_t k = 100; k < 130; ++k) m[k] = static_cast<int>(k);
    return m;
  };
  auto a = build();
  auto b = build();
  std::vector<std::uint64_t> ka, kb;
  for (const auto& [k, v] : a) ka.push_back(k);
  for (const auto& [k, v] : b) kb.push_back(k);
  EXPECT_EQ(ka, kb);
  EXPECT_EQ(ka.size(), a.size());
}

TEST(FlatMap, DifferentialFuzzAgainstUnorderedMap) {
  // Random insert/erase/lookup stream, cross-checked against the reference
  // container after every step and exhaustively at checkpoints.
  FlatMap<std::uint64_t, std::uint64_t> flat;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  std::mt19937_64 rng{12345};
  const std::uint64_t key_space = 512;  // small space => heavy churn per key

  for (int step = 0; step < 100'000; ++step) {
    const std::uint64_t key = rng() % key_space;
    switch (rng() % 4) {
      case 0:
      case 1: {  // insert-or-assign
        const std::uint64_t val = rng();
        flat[key] = val;
        ref[key] = val;
        break;
      }
      case 2: {  // erase
        EXPECT_EQ(flat.erase(key), ref.erase(key) > 0);
        break;
      }
      default: {  // lookup
        const auto* fv = flat.find(key);
        const auto rv = ref.find(key);
        ASSERT_EQ(fv != nullptr, rv != ref.end()) << "membership diverged for " << key;
        if (fv != nullptr) ASSERT_EQ(*fv, rv->second);
        break;
      }
    }
    ASSERT_EQ(flat.size(), ref.size());
    if (step % 10'000 == 9'999) {
      std::size_t seen = 0;
      for (const auto& [k, v] : flat) {
        const auto it = ref.find(k);
        ASSERT_NE(it, ref.end()) << "phantom key " << k;
        ASSERT_EQ(v, it->second);
        ++seen;
      }
      ASSERT_EQ(seen, ref.size());
    }
  }
}

TEST(FlatSet, BasicMembershipAndChurn) {
  FlatSet<std::uint64_t> s;
  EXPECT_TRUE(s.insert(3));
  EXPECT_FALSE(s.insert(3));
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.erase(3));
  EXPECT_FALSE(s.erase(3));
  EXPECT_FALSE(s.contains(3));
  for (std::uint64_t k = 0; k < 1000; ++k) s.insert(k);
  EXPECT_EQ(s.size(), 1000u);
  for (std::uint64_t k = 0; k < 1000; k += 2) s.erase(k);
  EXPECT_EQ(s.size(), 500u);
  for (std::uint64_t k = 0; k < 1000; ++k) EXPECT_EQ(s.contains(k), k % 2 == 1);
}

}  // namespace
