// Determinism guarantees: a fixed seed must give byte-identical results
// across repeated serial runs, and `harness::SweepRunner` must give the
// same bytes whether points run on one thread or many. These invariants are
// what make every figure in the repository reproducible and what licenses
// the parallel sweep runner in the first place.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <iterator>
#include <sstream>
#include <vector>

#include "harness/sweep.hpp"

using namespace amrt;
using harness::ExperimentConfig;
using harness::ExperimentResult;

namespace {

ExperimentConfig small_cfg(transport::Protocol proto, std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.proto = proto;
  cfg.workload = workload::Kind::kWebSearch;
  cfg.load = 0.5;
  cfg.n_flows = 60;
  cfg.leaves = 2;
  cfg.spines = 2;
  cfg.hosts_per_leaf = 4;
  cfg.seed = seed;
  return cfg;
}

// Exact (bitwise, for the doubles) equality on everything except wall-clock.
void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.sim_seconds, b.sim_seconds);
  EXPECT_EQ(a.bytes_delivered, b.bytes_delivered);
  EXPECT_EQ(a.flows_started, b.flows_started);
  EXPECT_EQ(a.flows_completed, b.flows_completed);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.trims, b.trims);
  EXPECT_EQ(a.max_queue_pkts, b.max_queue_pkts);
  EXPECT_EQ(a.fct_all.afct_us, b.fct_all.afct_us);
  EXPECT_EQ(a.fct_all.p99_us, b.fct_all.p99_us);
  EXPECT_EQ(a.fct_all.mean_slowdown, b.fct_all.mean_slowdown);
  EXPECT_EQ(a.fct_small.afct_us, b.fct_small.afct_us);
  EXPECT_EQ(a.fct_large.afct_us, b.fct_large.afct_us);
  EXPECT_EQ(a.mean_utilization, b.mean_utilization);
  ASSERT_EQ(a.flow_records.size(), b.flow_records.size());
  for (std::size_t i = 0; i < a.flow_records.size(); ++i) {
    EXPECT_EQ(a.flow_records[i].flow, b.flow_records[i].flow);
    EXPECT_EQ(a.flow_records[i].bytes, b.flow_records[i].bytes);
    EXPECT_EQ(a.flow_records[i].start.ns(), b.flow_records[i].start.ns());
    EXPECT_EQ(a.flow_records[i].end.ns(), b.flow_records[i].end.ns());
  }
}

std::vector<ExperimentConfig> grid() {
  std::vector<ExperimentConfig> points;
  for (auto proto : {transport::Protocol::kAmrt, transport::Protocol::kHoma}) {
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      points.push_back(small_cfg(proto, seed));
    }
  }
  return points;
}

}  // namespace

TEST(Determinism, SameSeedSameBytesAcrossSerialRuns) {
  const auto cfg = small_cfg(transport::Protocol::kAmrt, 7);
  const auto r1 = harness::run_leaf_spine(cfg);
  const auto r2 = harness::run_leaf_spine(cfg);
  ASSERT_GT(r1.flows_completed, 0u);
  expect_identical(r1, r2);
}

TEST(Determinism, DifferentSeedsDiverge) {
  const auto r1 = harness::run_leaf_spine(small_cfg(transport::Protocol::kAmrt, 1));
  const auto r2 = harness::run_leaf_spine(small_cfg(transport::Protocol::kAmrt, 2));
  EXPECT_NE(r1.events, r2.events);  // the seed must actually reach the run
}

TEST(Determinism, SerialAndParallelSweepIdentical) {
  const auto points = grid();

  harness::SweepOptions serial;
  serial.threads = 1;
  auto serial_results = harness::SweepRunner{serial}.run(points);

  harness::SweepOptions parallel;
  parallel.threads = 4;
  auto parallel_results = harness::SweepRunner{parallel}.run(points);

  ASSERT_EQ(serial_results.size(), parallel_results.size());
  for (std::size_t i = 0; i < serial_results.size(); ++i) {
    expect_identical(serial_results[i], parallel_results[i]);
  }

  // The JSON export (what plotting scripts consume) must also be
  // byte-identical once the wall-clock field is neutralized.
  for (auto* results : {&serial_results, &parallel_results}) {
    for (auto& r : *results) r.wall_seconds = 0.0;
  }
  std::ostringstream js, jp;
  harness::write_results_json(js, points, serial_results);
  harness::write_results_json(jp, points, parallel_results);
  EXPECT_EQ(js.str(), jp.str());
}

TEST(Determinism, Fig13StyleSweepSerialVsThreadsByteIdentical) {
  // The shape of bench/fig13_utilization: all four protocols across several
  // flow counts at load 0.6, exported as JSON. The export must be
  // byte-identical between a serial run and a --threads=N run — this is the
  // exact property that licenses running the figure sweeps in parallel.
  std::vector<ExperimentConfig> points;
  for (auto proto : {transport::Protocol::kPhost, transport::Protocol::kHoma,
                     transport::Protocol::kNdp, transport::Protocol::kAmrt}) {
    for (std::size_t n : {40u, 80u}) {
      ExperimentConfig cfg;
      cfg.proto = proto;
      cfg.workload = workload::Kind::kDataMining;
      cfg.load = 0.6;
      cfg.n_flows = n;
      cfg.leaves = 2;
      cfg.spines = 2;
      cfg.hosts_per_leaf = 4;
      cfg.seed = 13;
      points.push_back(cfg);
    }
  }

  harness::SweepOptions serial;
  serial.threads = 1;
  auto serial_results = harness::SweepRunner{serial}.run(points);
  harness::SweepOptions parallel;
  parallel.threads = 4;
  auto parallel_results = harness::SweepRunner{parallel}.run(points);

  for (auto* results : {&serial_results, &parallel_results}) {
    for (auto& r : *results) r.wall_seconds = 0.0;  // only non-deterministic field
  }
  std::ostringstream js, jp;
  harness::write_results_json(js, points, serial_results);
  harness::write_results_json(jp, points, parallel_results);
  ASSERT_GT(js.str().size(), 0u);
  EXPECT_EQ(js.str(), jp.str());
}

namespace {
struct GoldenRecord {
  std::uint64_t flow;
  std::uint64_t bytes;
  std::int64_t start_ns;
  std::int64_t end_ns;
};
#include "golden_fct.inc"
}  // namespace

TEST(Determinism, GoldenSeedFctFixtureUnchanged) {
  // Pinned scenario under every transport. The AMRT fixture was generated
  // before the data-plane fast-path refactor (flat flow tables, dense
  // routing + route cache, timing-wheel event queue) and has been
  // bit-identical since; the other three were pinned when the audit
  // subsystem landed, locking all protocol behaviour against accidental
  // drift. If this fails, an "optimization" changed observable behaviour.
  // Regenerate golden_fct.inc (tools/regen_golden.sh) only for a change
  // that is *supposed* to alter results, and say so in the commit.
  struct Fixture {
    transport::Protocol proto;
    const GoldenRecord* golden;
    std::size_t count;
  };
  const Fixture fixtures[] = {
      {transport::Protocol::kAmrt, kGoldenFctAmrt, std::size(kGoldenFctAmrt)},
      {transport::Protocol::kPhost, kGoldenFctPhost, std::size(kGoldenFctPhost)},
      {transport::Protocol::kHoma, kGoldenFctHoma, std::size(kGoldenFctHoma)},
      {transport::Protocol::kNdp, kGoldenFctNdp, std::size(kGoldenFctNdp)},
      {transport::Protocol::kDctcp, kGoldenFctDctcp, std::size(kGoldenFctDctcp)},
  };
  for (const auto& fixture : fixtures) {
    SCOPED_TRACE(transport::to_string(fixture.proto));
    ExperimentConfig cfg;
    cfg.proto = fixture.proto;
    cfg.workload = workload::Kind::kWebSearch;
    cfg.load = 0.6;
    cfg.n_flows = 80;
    cfg.leaves = 2;
    cfg.spines = 2;
    cfg.hosts_per_leaf = 4;
    cfg.seed = 42;
    const auto r = harness::run_leaf_spine(cfg);

    ASSERT_EQ(r.flow_records.size(), fixture.count);
    for (std::size_t i = 0; i < fixture.count; ++i) {
      EXPECT_EQ(r.flow_records[i].flow, fixture.golden[i].flow) << "record " << i;
      EXPECT_EQ(r.flow_records[i].bytes, fixture.golden[i].bytes) << "record " << i;
      EXPECT_EQ(r.flow_records[i].start.ns(), fixture.golden[i].start_ns) << "record " << i;
      EXPECT_EQ(r.flow_records[i].end.ns(), fixture.golden[i].end_ns) << "record " << i;
    }
  }
}

TEST(SweepRunner, ForEachRunsEveryIndexExactlyOnce) {
  harness::SweepOptions opts;
  opts.threads = 4;
  harness::SweepRunner runner{opts};
  constexpr std::size_t kN = 100;
  std::vector<std::atomic<int>> hits(kN);
  runner.for_each(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(SweepRunner, MapPreservesInputOrder) {
  harness::SweepOptions opts;
  opts.threads = 3;
  harness::SweepRunner runner{opts};
  const auto out = runner.map<std::size_t>(50, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 50u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(SweepRunner, FirstExceptionPropagates) {
  harness::SweepOptions opts;
  opts.threads = 2;
  harness::SweepRunner runner{opts};
  EXPECT_THROW(
      runner.for_each(8,
                      [](std::size_t i) {
                        if (i == 3) throw std::runtime_error("boom");
                      }),
      std::runtime_error);
}

TEST(SweepRunner, ProgressCallbackReachesTotal) {
  harness::SweepOptions opts;
  opts.threads = 2;
  std::atomic<std::size_t> last_done{0};
  std::atomic<std::size_t> calls{0};
  opts.on_progress = [&](std::size_t done, std::size_t total) {
    EXPECT_LE(done, total);
    last_done = done;
    calls.fetch_add(1);
  };
  harness::SweepRunner runner{opts};
  runner.for_each(10, [](std::size_t) {});
  EXPECT_EQ(calls.load(), 10u);
  EXPECT_EQ(last_done.load(), 10u);
}

TEST(SweepRunner, ThreadsResolveFromEnv) {
  ::setenv("AMRT_SWEEP_THREADS", "3", 1);
  harness::SweepRunner from_env{};
  EXPECT_EQ(from_env.threads(), 3u);
  // An explicit request wins over the environment.
  harness::SweepOptions opts;
  opts.threads = 5;
  harness::SweepRunner explicit_threads{opts};
  EXPECT_EQ(explicit_threads.threads(), 5u);
  ::unsetenv("AMRT_SWEEP_THREADS");
}
