// Unit + property tests for the workload machinery (src/workload/).
#include <gtest/gtest.h>

#include "workload/generator.hpp"
#include "workload/workloads.hpp"

using namespace amrt::workload;
using amrt::sim::Rng;

TEST(Cdf, RejectsMalformedKnots) {
  using P = EmpiricalCdf::Point;
  EXPECT_THROW(EmpiricalCdf({P{100, 1.0}}), std::invalid_argument);                 // too few
  EXPECT_THROW(EmpiricalCdf({P{100, 0.5}, P{50, 1.0}}), std::invalid_argument);     // bytes down
  EXPECT_THROW(EmpiricalCdf({P{100, 0.5}, P{200, 0.4}}), std::invalid_argument);    // cum down
  EXPECT_THROW(EmpiricalCdf({P{100, 0.5}, P{200, 0.9}}), std::invalid_argument);    // cum != 1
}

TEST(Cdf, QuantileInterpolatesLinearly) {
  EmpiricalCdf cdf{{{100, 0.5}, {200, 1.0}}};
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 100.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.75), 150.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 200.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.1), 100.0);  // point mass at the first knot
}

TEST(Cdf, MeanMatchesPiecewiseModel) {
  EmpiricalCdf cdf{{{100, 0.5}, {200, 1.0}}};
  // 50% point mass at 100 + 50% uniform [100,200]: 50 + 75 = 125.
  EXPECT_DOUBLE_EQ(cdf.mean_bytes(), 125.0);
}

TEST(Cdf, FractionBelowInterpolates) {
  EmpiricalCdf cdf{{{100, 0.5}, {200, 1.0}}};
  EXPECT_DOUBLE_EQ(cdf.fraction_below(50), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_below(150), 0.75);
  EXPECT_DOUBLE_EQ(cdf.fraction_below(500), 1.0);
}

TEST(Cdf, SamplesWithinSupport) {
  EmpiricalCdf cdf{{{100, 0.3}, {1000, 1.0}}};
  Rng rng{3};
  for (int i = 0; i < 1000; ++i) {
    const auto v = cdf.sample(rng);
    EXPECT_GE(v, 100u);
    EXPECT_LE(v, 1000u);
  }
}

TEST(Workloads, NamesAndAbbrevsRoundTrip) {
  for (Kind k : kAllKinds) {
    EXPECT_EQ(kind_from_string(name(k)), k);
    EXPECT_EQ(kind_from_string(abbrev(k)), k);
  }
  EXPECT_THROW((void)kind_from_string("bogus"), std::invalid_argument);
}

TEST(Workloads, WebServerHasSmallestMean) {
  const double wsv = cdf(Kind::kWebServer).mean_bytes();
  for (Kind k : kAllKinds) {
    if (k == Kind::kWebServer) continue;
    EXPECT_LT(wsv, cdf(k).mean_bytes()) << name(k);
  }
}

TEST(Workloads, DataMiningHasLargestMean) {
  const double dm = cdf(Kind::kDataMining).mean_bytes();
  for (Kind k : kAllKinds) {
    if (k == Kind::kDataMining) continue;
    EXPECT_GT(dm, cdf(k).mean_bytes()) << name(k);
  }
  // Section 8.1: average flow sizes range from ~64KB to ~7.41MB.
  EXPECT_NEAR(cdf(Kind::kWebServer).mean_bytes(), 64e3, 30e3);
  EXPECT_NEAR(dm, 7.41e6, 3e6);
}

TEST(Workloads, MajorityOfFlowsAreTiny) {
  // "more than half of the flows are less than 10KB" (Section 8.1).
  for (Kind k : {Kind::kWebServer, Kind::kCacheFollower, Kind::kHadoop, Kind::kDataMining}) {
    EXPECT_GT(cdf(k).fraction_below(10'000), 0.5) << name(k);
  }
}

// Property: sampling converges to the analytic mean for every workload.
class WorkloadSampling : public ::testing::TestWithParam<Kind> {};

TEST_P(WorkloadSampling, SampledMeanMatchesAnalytic) {
  const auto& dist = cdf(GetParam());
  Rng rng{12345};
  double sum = 0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(dist.sample(rng));
  EXPECT_NEAR(sum / kN, dist.mean_bytes(), dist.mean_bytes() * 0.05);
}

TEST_P(WorkloadSampling, SampledTinyFractionMatchesCdf) {
  const auto& dist = cdf(GetParam());
  Rng rng{777};
  int tiny = 0;
  constexpr int kN = 50'000;
  for (int i = 0; i < kN; ++i) tiny += dist.sample(rng) <= 10'000 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(tiny) / kN, dist.fraction_below(10'000), 0.02);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadSampling, ::testing::ValuesIn(kAllKinds),
                         [](const auto& pinfo) { return abbrev(pinfo.param); });

TEST(Generator, MeanInterarrivalMatchesLoadFormula) {
  Rng rng{5};
  FlowGenerator gen{cdf(Kind::kWebSearch), rng};
  TrafficConfig cfg;
  cfg.load = 0.5;
  cfg.n_hosts = 10;
  cfg.host_rate = amrt::sim::Bandwidth::gbps(10);
  // lambda = 0.5 * 10 * 10e9 / (mean*8).
  const double mean_bits = cdf(Kind::kWebSearch).mean_bytes() * 8;
  const double expect_s = mean_bits / (0.5 * 10 * 10e9);
  // The generator rounds the interval to a whole nanosecond.
  EXPECT_NEAR(gen.mean_interarrival(cfg).to_seconds(), expect_s, 1e-9);
}

TEST(Generator, HigherLoadArrivesFaster) {
  Rng rng{5};
  FlowGenerator gen{cdf(Kind::kWebSearch), rng};
  TrafficConfig lo, hi;
  lo.load = 0.1;
  hi.load = 0.7;
  EXPECT_GT(gen.mean_interarrival(lo), gen.mean_interarrival(hi));
}

TEST(Generator, FlowsSortedUniqueIdsDistinctEndpoints) {
  Rng rng{5};
  FlowGenerator gen{cdf(Kind::kWebServer), rng};
  TrafficConfig cfg;
  cfg.n_flows = 500;
  cfg.n_hosts = 8;
  const auto flows = gen.generate(cfg);
  ASSERT_EQ(flows.size(), 500u);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_EQ(flows[i].id, i + 1);
    EXPECT_NE(flows[i].src_host, flows[i].dst_host);
    EXPECT_LT(flows[i].src_host, 8u);
    EXPECT_GT(flows[i].bytes, 0u);
    if (i > 0) {
      EXPECT_GE(flows[i].start, flows[i - 1].start);
    }
  }
}

TEST(Generator, EmpiricalArrivalRateNearTarget) {
  Rng rng{9};
  FlowGenerator gen{cdf(Kind::kWebSearch), rng};
  TrafficConfig cfg;
  cfg.n_flows = 5000;
  cfg.n_hosts = 16;
  cfg.load = 0.6;
  const auto flows = gen.generate(cfg);
  const double span_s = (flows.back().start - flows.front().start).to_seconds();
  const double measured_rate = static_cast<double>(flows.size() - 1) / span_s;
  const double target_rate = 1.0 / gen.mean_interarrival(cfg).to_seconds();
  EXPECT_NEAR(measured_rate, target_rate, target_rate * 0.1);
}

TEST(Generator, RejectsDegenerateConfigs) {
  Rng rng{5};
  FlowGenerator gen{cdf(Kind::kWebServer), rng};
  TrafficConfig cfg;
  cfg.n_hosts = 1;
  EXPECT_THROW((void)gen.generate(cfg), std::invalid_argument);
  cfg.n_hosts = 4;
  cfg.load = 0.0;
  EXPECT_THROW((void)gen.generate(cfg), std::invalid_argument);
}

TEST(Generator, DeterministicForSeed) {
  Rng a{42}, b{42};
  FlowGenerator ga{cdf(Kind::kHadoop), a}, gb{cdf(Kind::kHadoop), b};
  TrafficConfig cfg;
  cfg.n_flows = 50;
  cfg.n_hosts = 6;
  const auto fa = ga.generate(cfg);
  const auto fb = gb.generate(cfg);
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].bytes, fb[i].bytes);
    EXPECT_EQ(fa[i].start, fb[i].start);
    EXPECT_EQ(fa[i].src_host, fb[i].src_host);
  }
}
