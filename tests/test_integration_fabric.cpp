// Integration tests of the full leaf-spine experiment pipeline
// (workload generation -> fabric -> transports -> metrics).
#include <gtest/gtest.h>

#include "harness/experiment.hpp"

using namespace amrt;
using namespace amrt::sim::literals;
using harness::ExperimentConfig;
using transport::Protocol;

namespace {
ExperimentConfig tiny(Protocol proto) {
  ExperimentConfig cfg;
  cfg.proto = proto;
  cfg.workload = workload::Kind::kWebServer;
  cfg.leaves = 2;
  cfg.spines = 2;
  cfg.hosts_per_leaf = 4;
  cfg.n_flows = 60;
  cfg.load = 0.5;
  cfg.link_delay = 5_us;
  return cfg;
}

std::string proto_name(const ::testing::TestParamInfo<Protocol>& info) {
  return transport::to_string(info.param);
}
}  // namespace

class Fabric : public ::testing::TestWithParam<Protocol> {};

TEST_P(Fabric, AllFlowsComplete) {
  const auto r = harness::run_leaf_spine(tiny(GetParam()));
  EXPECT_EQ(r.flows_completed, 60u);
  EXPECT_EQ(r.flows_started, 60u);
  EXPECT_GT(r.fct_all.afct_us, 0.0);
}

TEST_P(Fabric, GoodputConservation) {
  // Delivered payload equals the sum of generated flow sizes: regenerate the
  // same flow list and compare.
  auto cfg = tiny(GetParam());
  const auto r = harness::run_leaf_spine(cfg);
  sim::Rng rng{cfg.seed};
  workload::FlowGenerator gen{workload::cdf(cfg.workload), rng};
  workload::TrafficConfig traffic;
  traffic.load = cfg.load;
  traffic.n_flows = cfg.n_flows;
  traffic.n_hosts = 8;
  traffic.host_rate = cfg.link_rate;
  std::uint64_t expected = 0;
  for (const auto& f : gen.generate(traffic)) expected += f.bytes;
  EXPECT_EQ(r.bytes_delivered, expected);
}

TEST_P(Fabric, DeterministicAcrossRuns) {
  const auto a = harness::run_leaf_spine(tiny(GetParam()));
  const auto b = harness::run_leaf_spine(tiny(GetParam()));
  EXPECT_DOUBLE_EQ(a.fct_all.afct_us, b.fct_all.afct_us);
  EXPECT_DOUBLE_EQ(a.fct_all.p99_us, b.fct_all.p99_us);
  EXPECT_EQ(a.events, b.events);
}

TEST_P(Fabric, SeedChangesOutcome) {
  auto cfg = tiny(GetParam());
  const auto a = harness::run_leaf_spine(cfg);
  cfg.seed = 999;
  const auto b = harness::run_leaf_spine(cfg);
  EXPECT_NE(a.fct_all.afct_us, b.fct_all.afct_us);
}

TEST_P(Fabric, MetricsWithinPhysicalBounds) {
  const auto r = harness::run_leaf_spine(tiny(GetParam()));
  EXPECT_GE(r.mean_utilization, 0.0);
  EXPECT_LE(r.mean_utilization, 1.0);
  EXPECT_LE(r.fct_all.p50_us, r.fct_all.p99_us);
  EXPECT_LE(r.fct_all.p99_us, r.fct_all.max_fct_us + 1e-9);
  EXPECT_GT(r.sim_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, Fabric,
                         ::testing::Values(Protocol::kAmrt, Protocol::kPhost, Protocol::kHoma,
                                           Protocol::kNdp),
                         proto_name);

TEST(FabricLoad, HigherLoadSlowsFlows) {
  auto lo = tiny(Protocol::kAmrt);
  lo.load = 0.2;
  lo.n_flows = 120;
  auto hi = lo;
  hi.load = 0.9;
  const auto rl = harness::run_leaf_spine(lo);
  const auto rh = harness::run_leaf_spine(hi);
  EXPECT_EQ(rl.flows_completed, 120u);
  EXPECT_EQ(rh.flows_completed, 120u);
  // Temporal compression at 0.9 load must hurt tail latency.
  EXPECT_GT(rh.fct_all.p99_us, rl.fct_all.p99_us);
}

TEST(FabricQueues, HomaGetsPriorityQueuesNdpTrims) {
  auto cfg = tiny(Protocol::kNdp);
  cfg.n_flows = 100;
  cfg.load = 0.9;
  const auto ndp = harness::run_leaf_spine(cfg);
  EXPECT_EQ(ndp.drops, 0u) << "NDP data is trimmed, not dropped";
  auto cfg2 = tiny(Protocol::kHoma);
  cfg2.n_flows = 100;
  cfg2.load = 0.9;
  const auto homa = harness::run_leaf_spine(cfg2);
  EXPECT_EQ(homa.trims, 0u);
}

TEST(FabricWorkloads, EveryWorkloadRunsEndToEnd) {
  for (auto wk : workload::kAllKinds) {
    auto cfg = tiny(Protocol::kAmrt);
    cfg.workload = wk;
    cfg.n_flows = 25;
    const auto r = harness::run_leaf_spine(cfg);
    EXPECT_EQ(r.flows_completed, 25u) << workload::name(wk);
  }
}
