// Unit tests for the Network container and the leaf-spine builder.
#include <gtest/gtest.h>

#include "core/factory.hpp"
#include "net/topology.hpp"

using namespace amrt;
using namespace amrt::net;
using namespace amrt::sim;
using namespace amrt::sim::literals;

namespace {
LeafSpineConfig small_cfg() {
  LeafSpineConfig cfg;
  cfg.leaves = 3;
  cfg.spines = 2;
  cfg.hosts_per_leaf = 4;
  cfg.link_delay = 5_us;
  cfg.queue_factory = core::make_queue_factory(transport::Protocol::kAmrt);
  return cfg;
}
}  // namespace

TEST(LeafSpine, NodeAndPortCounts) {
  Simulation sim;
  Network net{sim};
  const auto topo = build_leaf_spine(net, small_cfg());
  EXPECT_EQ(topo.hosts.size(), 12u);
  EXPECT_EQ(topo.leaves.size(), 3u);
  EXPECT_EQ(topo.spines.size(), 2u);
  // Each leaf: 4 host downlinks + 2 spine uplinks.
  for (auto* leaf : topo.leaves) EXPECT_EQ(leaf->port_count(), 6);
  // Each spine: 3 leaf downlinks.
  for (auto* spine : topo.spines) EXPECT_EQ(spine->port_count(), 3);
}

TEST(LeafSpine, EveryPairRoutable) {
  Simulation sim;
  Network net{sim};
  const auto topo = build_leaf_spine(net, small_cfg());
  for (auto* src : topo.hosts) {
    for (auto* dst : topo.hosts) {
      if (src == dst) continue;
      Packet p;
      p.flow = src->id().value * 100 + dst->id().value;
      p.dst = dst->id();
      // Routing at the source's leaf must resolve.
      for (auto* leaf : topo.leaves) {
        // Only the owning leaf necessarily has the downlink; every leaf must
        // at least resolve remote hosts via spines.
        EXPECT_NO_THROW((void)leaf->routes().select(p));
      }
      for (auto* spine : topo.spines) {
        EXPECT_NO_THROW((void)spine->routes().select(p));
      }
    }
  }
}

TEST(LeafSpine, CrossRackDeliveryWorks) {
  Simulation sim;
  Network net{sim};
  const auto topo = build_leaf_spine(net, small_cfg());
  Packet p;
  p.flow = 7;
  p.src = topo.hosts[0]->id();
  p.dst = topo.hosts[11]->id();  // other rack
  p.type = PacketType::kData;
  p.wire_bytes = kMtuBytes;
  topo.hosts[0]->nic().enqueue(std::move(p));
  sim.run();
  EXPECT_EQ(topo.hosts[11]->bytes_received(), kMtuBytes);
}

TEST(LeafSpine, SameRackStaysLocal) {
  Simulation sim;
  Network net{sim};
  const auto topo = build_leaf_spine(net, small_cfg());
  Packet p;
  p.flow = 9;
  p.dst = topo.hosts[1]->id();  // same leaf as hosts[0]
  p.type = PacketType::kData;
  p.wire_bytes = kMtuBytes;
  topo.hosts[0]->nic().enqueue(std::move(p));
  sim.run();
  EXPECT_EQ(topo.hosts[1]->bytes_received(), kMtuBytes);
  for (auto* spine : topo.spines) {
    for (int i = 0; i < spine->port_count(); ++i) {
      EXPECT_EQ(spine->port(i).packets_sent(), 0u) << "intra-rack traffic must not touch spines";
    }
  }
}

TEST(LeafSpine, BaseRttMatchesPathFormula) {
  Simulation sim;
  Network net{sim};
  const auto cfg = small_cfg();
  const auto topo = build_leaf_spine(net, cfg);
  EXPECT_EQ(topo.base_rtt, path_base_rtt(4, cfg.link_rate, cfg.link_delay));
  EXPECT_GT(topo.base_rtt, Duration::zero());
}

TEST(LeafSpine, RequiresQueueFactory) {
  Simulation sim;
  Network net{sim};
  LeafSpineConfig cfg = small_cfg();
  cfg.queue_factory = nullptr;
  EXPECT_THROW((void)build_leaf_spine(net, cfg), std::invalid_argument);
}

TEST(LeafSpine, MarkerFactoryAppliedToSwitchPorts) {
  Simulation sim;
  Network net{sim};
  auto cfg = small_cfg();
  int markers_made = 0;
  cfg.marker_factory = [&markers_made]() -> std::unique_ptr<DequeueMarker> {
    ++markers_made;
    return core::make_marker_factory(transport::Protocol::kAmrt)();
  };
  (void)build_leaf_spine(net, cfg);
  // 12 host downlinks + 3*2 leaf uplinks + 2*3 spine downlinks.
  EXPECT_EQ(markers_made, 24);
}

TEST(PathBaseRtt, ScalesWithHopsAndDelay) {
  const auto rtt2 = path_base_rtt(2, Bandwidth::gbps(10), 10_us);
  const auto rtt4 = path_base_rtt(4, Bandwidth::gbps(10), 10_us);
  EXPECT_EQ(rtt4, rtt2 * 2);
  // 4 hops at 10G/10us: data way 4*(1.2+10), ctrl way 4*(0.052->52ns + 10us).
  EXPECT_EQ(rtt4, Duration::nanoseconds(4 * (1200 + 10'000) + 4 * (52 + 10'000)));
}

TEST(Network, HostIdsAreUnique) {
  Simulation sim;
  Network net{sim};
  const auto topo = build_leaf_spine(net, small_cfg());
  std::set<std::uint32_t> ids;
  for (auto* h : topo.hosts) ids.insert(h->id().value);
  EXPECT_EQ(ids.size(), topo.hosts.size());
}
