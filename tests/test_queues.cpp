// Unit tests for egress queue disciplines (src/net/queue.hpp).
#include <gtest/gtest.h>

#include "net/queue.hpp"

using namespace amrt::net;

namespace {
Packet data_pkt(std::uint32_t seq, std::uint8_t prio = 0) {
  Packet p;
  p.flow = 1;
  p.seq = seq;
  p.type = PacketType::kData;
  p.payload_bytes = kMssBytes;
  p.wire_bytes = kMtuBytes;
  p.priority = prio;
  return p;
}

Packet grant_pkt(std::uint32_t seq) {
  Packet p;
  p.flow = 1;
  p.seq = seq;
  p.type = PacketType::kGrant;
  p.wire_bytes = kCtrlBytes;
  return p;
}
}  // namespace

TEST(DropTail, FifoOrder) {
  DropTailQueue q{8};
  for (std::uint32_t i = 0; i < 4; ++i) q.enqueue(data_pkt(i));
  for (std::uint32_t i = 0; i < 4; ++i) {
    auto p = q.dequeue();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->seq, i);
  }
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(DropTail, DropsBeyondCapacity) {
  DropTailQueue q{2};
  for (std::uint32_t i = 0; i < 5; ++i) q.enqueue(data_pkt(i));
  EXPECT_EQ(q.data_pkts(), 2u);
  EXPECT_EQ(q.stats().dropped, 3u);
  EXPECT_EQ(q.stats().enqueued, 5u);
}

TEST(DropTail, ControlBandBypassesCapacity) {
  DropTailQueue q{1};
  q.enqueue(data_pkt(0));
  q.enqueue(data_pkt(1));  // dropped
  for (std::uint32_t i = 0; i < 10; ++i) q.enqueue(grant_pkt(i));
  EXPECT_EQ(q.control_pkts(), 10u);
  EXPECT_EQ(q.stats().dropped, 1u);  // only the data packet
}

TEST(DropTail, ControlDequeuedBeforeData) {
  DropTailQueue q{8};
  q.enqueue(data_pkt(0));
  q.enqueue(grant_pkt(100));
  auto first = q.dequeue();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->type, PacketType::kGrant);
  auto second = q.dequeue();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->type, PacketType::kData);
}

TEST(DropTail, HighWaterMarkTracksPeak) {
  DropTailQueue q{8};
  for (std::uint32_t i = 0; i < 5; ++i) q.enqueue(data_pkt(i));
  (void)q.dequeue();
  (void)q.dequeue();
  q.enqueue(data_pkt(9));
  EXPECT_EQ(q.stats().max_data_pkts, 5u);
}

TEST(DropTail, ByteAccounting) {
  DropTailQueue q{8};
  q.enqueue(data_pkt(0));
  q.enqueue(data_pkt(1));
  EXPECT_EQ(q.stats().data_bytes_in, 2ull * kMtuBytes);
}

TEST(Trimming, TrimsBeyondThreshold) {
  TrimmingQueue q{2};
  for (std::uint32_t i = 0; i < 5; ++i) q.enqueue(data_pkt(i));
  EXPECT_EQ(q.data_pkts(), 2u);
  EXPECT_EQ(q.stats().trimmed, 3u);
  EXPECT_EQ(q.stats().dropped, 0u);  // NDP never drops data, it trims
  EXPECT_EQ(q.control_pkts(), 3u);
}

TEST(Trimming, TrimmedHeaderKeepsIdentityLosesPayload) {
  TrimmingQueue q{0};  // everything trims
  q.enqueue(data_pkt(7));
  auto p = q.dequeue();
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->trimmed);
  EXPECT_EQ(p->seq, 7u);
  EXPECT_EQ(p->payload_bytes, 0u);
  EXPECT_EQ(p->wire_bytes, kCtrlBytes);
  EXPECT_EQ(p->type, PacketType::kData);
}

TEST(Trimming, TrimmedHeadersJumpTheDataQueue) {
  TrimmingQueue q{1};
  q.enqueue(data_pkt(0));
  q.enqueue(data_pkt(1));  // trimmed
  auto first = q.dequeue();
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->trimmed);
  EXPECT_EQ(first->seq, 1u);
}

TEST(Priority, StrictOrderingAcrossBands) {
  StrictPriorityQueue q{8, 64};
  q.enqueue(data_pkt(0, 5));
  q.enqueue(data_pkt(1, 1));
  q.enqueue(data_pkt(2, 3));
  EXPECT_EQ(q.dequeue()->priority, 1);
  EXPECT_EQ(q.dequeue()->priority, 3);
  EXPECT_EQ(q.dequeue()->priority, 5);
}

TEST(Priority, FifoWithinBand) {
  StrictPriorityQueue q{8, 64};
  q.enqueue(data_pkt(0, 2));
  q.enqueue(data_pkt(1, 2));
  EXPECT_EQ(q.dequeue()->seq, 0u);
  EXPECT_EQ(q.dequeue()->seq, 1u);
}

TEST(Priority, SharedCapacityAcrossBands) {
  StrictPriorityQueue q{8, 3};
  q.enqueue(data_pkt(0, 0));
  q.enqueue(data_pkt(1, 7));
  q.enqueue(data_pkt(2, 3));
  q.enqueue(data_pkt(3, 0));  // over capacity
  EXPECT_EQ(q.stats().dropped, 1u);
  EXPECT_EQ(q.data_pkts(), 3u);
}

TEST(Priority, OutOfRangePriorityClampsToLastBand) {
  StrictPriorityQueue q{4, 64};
  q.enqueue(data_pkt(0, 200));
  auto p = q.dequeue();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->seq, 0u);
}

TEST(Priority, ControlStillBeatsPriorityZero) {
  StrictPriorityQueue q{8, 64};
  q.enqueue(data_pkt(0, 0));
  q.enqueue(grant_pkt(9));
  EXPECT_EQ(q.dequeue()->type, PacketType::kGrant);
}

TEST(Queues, DequeueCountsInStats) {
  DropTailQueue q{8};
  q.enqueue(data_pkt(0));
  q.enqueue(grant_pkt(1));
  (void)q.dequeue();
  (void)q.dequeue();
  EXPECT_EQ(q.stats().dequeued, 2u);
  EXPECT_TRUE(q.empty());
}

// ---------------------------------------------------------------------------
// Drop/trim path regressions. Every disposition now routes through one
// instrumented helper each (drop_data / drop_admitted / trim_to_control);
// these lock the accounting those helpers guarantee: the stats identity
// enqueued == dequeued + dropped + depth at every step, and a packet is
// trimmed or dropped, never both.
// ---------------------------------------------------------------------------

namespace {
void expect_stats_identity(const EgressQueue& q) {
  EXPECT_EQ(q.stats().enqueued, q.stats().dequeued + q.stats().dropped + q.total_pkts());
}
}  // namespace

TEST(Trimming, TrimThenDrainNeverDrops) {
  // The NDP regression: heavy congestion interleaved with service. Trimmed
  // packets convert to control headers in place — they must count as
  // enqueued (they are still in the queue) and never as dropped, or the
  // identity (and the fabric-wide conservation audit) breaks.
  TrimmingQueue q{2};
  std::size_t trimmed_out = 0;
  const auto drain_n = [&](std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      auto p = q.dequeue();
      ASSERT_TRUE(p.has_value());
      if (p->trimmed) ++trimmed_out;
    }
  };
  for (std::uint32_t i = 0; i < 4; ++i) q.enqueue(data_pkt(i));
  expect_stats_identity(q);
  drain_n(2);  // trimmed headers first (control jumps the data band)
  expect_stats_identity(q);
  for (std::uint32_t i = 4; i < 8; ++i) q.enqueue(data_pkt(i));
  expect_stats_identity(q);
  while (auto p = q.dequeue()) {
    if (p->trimmed) ++trimmed_out;
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.stats().dropped, 0u);
  EXPECT_GT(q.stats().trimmed, 0u);
  EXPECT_EQ(trimmed_out, q.stats().trimmed);  // every trim was delivered as a header
  EXPECT_EQ(q.stats().enqueued, q.stats().dequeued);
  expect_stats_identity(q);
}

TEST(SelectiveDrop, UnscheduledSacrificeKeepsIdentity) {
  SelectiveDropQueue q{2};
  Packet blind = data_pkt(0);
  blind.unscheduled = true;
  q.enqueue(std::move(blind));
  q.enqueue(data_pkt(1));
  Packet refused = data_pkt(2);
  refused.unscheduled = true;  // blind arrival at a full band is sacrificed
  q.enqueue(std::move(refused));
  EXPECT_EQ(q.stats().dropped, 1u);
  EXPECT_EQ(q.data_pkts(), 2u);
  expect_stats_identity(q);
}

TEST(SelectiveDrop, EvictionCountsExactlyOnce) {
  // Scheduled traffic evicts an already-admitted blind packet: the eviction
  // must surface as exactly one drop (not zero — the packet vanished; not
  // two — it was only one packet) and the survivor set must stay full.
  SelectiveDropQueue q{2};
  Packet blind = data_pkt(0);
  blind.unscheduled = true;
  q.enqueue(std::move(blind));
  q.enqueue(data_pkt(1));
  q.enqueue(data_pkt(2));  // evicts seq 0
  EXPECT_EQ(q.stats().dropped, 1u);
  EXPECT_EQ(q.data_pkts(), 2u);
  expect_stats_identity(q);
  // Drain: the blind packet is gone; both scheduled packets survive.
  auto a = q.dequeue();
  auto b = q.dequeue();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->seq, 1u);
  EXPECT_EQ(b->seq, 2u);
  EXPECT_TRUE(q.empty());
  expect_stats_identity(q);
}
