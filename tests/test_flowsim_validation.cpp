// Packet-for-packet validation of the flow-level fast path (DESIGN.md §15):
// for every workload engine, the same seeded schedule is run through the
// per-packet simulator and through the fluid flowsim, and the FCT summaries
// must agree within avg ±10% / p99 ±25%. Also checks the mixed fidelity and
// the fat-tree flow path, and that the fluid side's event count gives the
// >=10x headroom the fast path exists for.
//
// Protocol scope: AMRT, pHost and Homa have faithful fluid analogues. NDP's
// trim/retransmit overhead and DCTCP's window dynamics are modelled
// optimistically (the fluid side under-predicts their FCTs by ~12-19% on
// these fabrics; see DESIGN.md §15), so they are exercised by the unit tests
// but not held to the ±10% gate here.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "flowsim/fabric.hpp"
#include "flowsim/flowsim.hpp"
#include "harness/experiment.hpp"
#include "harness/fidelity.hpp"
#include "core/factory.hpp"
#include "net/network.hpp"
#include "net/packet.hpp"
#include "net/topology.hpp"
#include "sim/simulation.hpp"
#include "stats/fct.hpp"
#include "transport/endpoint.hpp"
#include "workload/generator.hpp"
#include "workload/workloads.hpp"

using namespace amrt;
using namespace amrt::harness;
using namespace amrt::sim::literals;

namespace {

ExperimentConfig base_cfg(transport::Protocol proto, std::size_t n_flows, std::uint64_t seed) {
  ExperimentConfig cfg;  // default 4x4x8 leaf-spine, 10G links, 10us delay
  cfg.proto = proto;
  cfg.n_flows = n_flows;
  cfg.load = 0.5;
  cfg.seed = seed;
  return cfg;
}

// Runs `cfg` at both fidelities and checks the flow-level summary against
// the packet-level truth.
void expect_fidelities_agree(ExperimentConfig cfg, const char* what, double avg_tol = 0.10,
                             double p99_tol = 0.25) {
  cfg.fidelity = Fidelity::kPacket;
  const ExperimentResult packet = run_leaf_spine(cfg);
  cfg.fidelity = Fidelity::kFlow;
  const ExperimentResult flow = run_leaf_spine(cfg);

  // Identical seeded workload on both sides: same flow count, same bytes.
  ASSERT_EQ(packet.flows_started, flow.flows_started) << what;
  EXPECT_EQ(packet.bytes_delivered, flow.bytes_delivered) << what;
  EXPECT_EQ(packet.flows_completed, packet.flows_started) << what;
  EXPECT_EQ(flow.flows_completed, flow.flows_started) << what;

  ASSERT_GT(packet.fct_all.afct_us, 0.0) << what;
  ASSERT_GT(packet.fct_all.p99_us, 0.0) << what;
  const double avg_err = flow.fct_all.afct_us / packet.fct_all.afct_us - 1.0;
  const double p99_err = flow.fct_all.p99_us / packet.fct_all.p99_us - 1.0;
  EXPECT_LE(std::abs(avg_err), avg_tol)
      << what << ": avg FCT flow=" << flow.fct_all.afct_us
      << "us packet=" << packet.fct_all.afct_us << "us";
  EXPECT_LE(std::abs(p99_err), p99_tol)
      << what << ": p99 FCT flow=" << flow.fct_all.p99_us
      << "us packet=" << packet.fct_all.p99_us << "us";

  // The point of the fast path: the fluid run spends orders of magnitude
  // fewer events on the same schedule.
  EXPECT_GE(packet.events, 10 * flow.events) << what;
}

}  // namespace

TEST(FlowsimValidation, LegacyEngineAmrt) {
  expect_fidelities_agree(base_cfg(transport::Protocol::kAmrt, 200, 3), "amrt/legacy");
}

TEST(FlowsimValidation, LegacyEnginePhost) {
  expect_fidelities_agree(base_cfg(transport::Protocol::kPhost, 200, 3), "phost/legacy");
}

TEST(FlowsimValidation, LegacyEngineHoma) {
  expect_fidelities_agree(base_cfg(transport::Protocol::kHoma, 200, 3), "homa/legacy");
}

TEST(FlowsimValidation, SkewedCoflowEngine) {
  ExperimentConfig cfg = base_cfg(transport::Protocol::kAmrt, 300, 5);
  cfg.engine.engine = workload::Engine::kSkewed;
  cfg.engine.pairs = workload::PairModel::kHotRack;
  cfg.engine.coflow_fraction = 0.2;
  cfg.engine.coflow_width = 4;
  expect_fidelities_agree(cfg, "amrt/skewed+coflow");

  // Coflow completion times ride the same records; spot-check the group
  // tail agrees too (same ±25% band as the flow tail).
  cfg.fidelity = Fidelity::kPacket;
  const ExperimentResult packet = run_leaf_spine(cfg);
  cfg.fidelity = Fidelity::kFlow;
  const ExperimentResult flow = run_leaf_spine(cfg);
  ASSERT_GT(packet.group_stats.complete, 0u);
  ASSERT_EQ(packet.group_stats.complete, flow.group_stats.complete);
  EXPECT_LE(std::abs(flow.group_stats.p99_us / packet.group_stats.p99_us - 1.0), 0.25);
}

TEST(FlowsimValidation, FanoutEngine) {
  ExperimentConfig cfg = base_cfg(transport::Protocol::kAmrt, 300, 5);
  cfg.engine.engine = workload::Engine::kFanout;
  cfg.engine.fanout = 4;
  expect_fidelities_agree(cfg, "amrt/fanout");
}

TEST(FlowsimValidation, TraceEngineReplay) {
  // Dump a legacy schedule, then validate the trace engine's replay at both
  // fidelities: the replayed schedule is the original one, so the packet
  // result of the original run is the truth for the flow-level replay.
  const std::string path = testing::TempDir() + "flowsim_validation_trace.csv";
  ExperimentConfig cfg = base_cfg(transport::Protocol::kAmrt, 150, 11);
  cfg.trace_out = path;
  cfg.fidelity = Fidelity::kPacket;
  const ExperimentResult packet = run_leaf_spine(cfg);
  ASSERT_EQ(packet.flows_completed, packet.flows_started);

  ExperimentConfig replay = base_cfg(transport::Protocol::kAmrt, 150, 11);
  replay.engine.engine = workload::Engine::kTrace;
  replay.engine.trace_path = path;
  replay.fidelity = Fidelity::kFlow;
  const ExperimentResult flow = run_leaf_spine(replay);
  std::remove(path.c_str());

  ASSERT_EQ(flow.flows_started, packet.flows_started);
  EXPECT_EQ(flow.flows_completed, flow.flows_started);
  EXPECT_EQ(flow.bytes_delivered, packet.bytes_delivered);
  EXPECT_LE(std::abs(flow.fct_all.afct_us / packet.fct_all.afct_us - 1.0), 0.10);
  EXPECT_LE(std::abs(flow.fct_all.p99_us / packet.fct_all.p99_us - 1.0), 0.25);
}

TEST(FlowsimValidation, MixedFidelityTracksPacket) {
  // Mixed mode: background half fluid, foreground half packet-level under
  // the fluid side's bandwidth reservations. The merged summary must stay
  // close to the all-packet truth.
  ExperimentConfig cfg = base_cfg(transport::Protocol::kAmrt, 300, 7);
  cfg.fidelity = Fidelity::kPacket;
  const ExperimentResult packet = run_leaf_spine(cfg);
  cfg.fidelity = Fidelity::kMixed;
  cfg.flow_background_fraction = 0.5;
  const ExperimentResult mixed = run_leaf_spine(cfg);

  ASSERT_EQ(mixed.flows_started, packet.flows_started);
  EXPECT_EQ(mixed.flows_completed, mixed.flows_started);
  EXPECT_EQ(mixed.bytes_delivered, packet.bytes_delivered);
  // Mixed is a one-way coupling approximation (DESIGN.md §15): the fluid
  // side's reservations throttle the packet fabric without modelling the
  // background's real burst structure, which costs extra drops on the
  // foreground. Its band is therefore wider than the pure flow fidelity's
  // ±10%/±25% gate.
  EXPECT_LE(std::abs(mixed.fct_all.afct_us / packet.fct_all.afct_us - 1.0), 0.20);
  EXPECT_LE(std::abs(mixed.fct_all.p99_us / packet.fct_all.p99_us - 1.0), 0.30);
  // Both populations actually ran and completed.
  EXPECT_GT(mixed.fct_foreground.completed, 0u);
  EXPECT_GT(mixed.fct_background.completed, 0u);
}

TEST(FlowsimValidation, FatTreeFlowMatchesPacket) {
  // k=4 fat-tree, websearch workload, seed-identical generation on both
  // sides: packet truth via the full simulator, fluid side via a FlowSim
  // over the fat-tree fabric, both feeding an FctRecorder. Links use the
  // scaled-down 10us delay of the leaf-spine experiment fabric: at the
  // stock 100us fat-tree delay the mean websearch flow is about one BDP and
  // FCTs are latency-dominated, which the fluid model (built for bandwidth
  // sharing) intentionally does not capture — see DESIGN.md §15.
  constexpr int k = 4;
  constexpr std::size_t kNFlows = 300;
  constexpr std::uint64_t kSeed = 1;
  constexpr double kLoad = 0.5;

  // --- packet truth (bench_scale::run_one in miniature) -------------------
  sim::Simulation simu{kSeed};
  net::Network network{simu};
  net::FatTreeConfig topo_cfg;
  topo_cfg.k = k;
  topo_cfg.link_delay = 10_us;
  topo_cfg.queue_factory = core::make_queue_factory(transport::Protocol::kAmrt);
  topo_cfg.marker_factory = core::make_marker_factory(transport::Protocol::kAmrt);
  const net::FatTree topo = net::build_fat_tree(network, topo_cfg);

  transport::TransportConfig tcfg;
  tcfg.host_rate = topo_cfg.link_rate;
  tcfg.base_rtt = topo.base_rtt;
  stats::FctRecorder packet_rec{topo_cfg.link_rate, topo.base_rtt};

  std::vector<transport::TransportEndpoint*> eps;
  for (net::Host* host : topo.hosts) {
    auto ep = core::make_endpoint(transport::Protocol::kAmrt, simu, *host, tcfg, &packet_rec);
    eps.push_back(ep.get());
    host->attach(std::move(ep));
  }
  workload::FlowGenerator gen{workload::cdf(workload::Kind::kWebSearch), simu.rng()};
  workload::TrafficConfig traffic;
  traffic.load = kLoad;
  traffic.n_flows = kNFlows;
  traffic.n_hosts = topo.hosts.size();
  traffic.host_rate = topo_cfg.link_rate;
  const auto flows = gen.generate(traffic);
  for (const auto& f : flows) {
    transport::FlowSpec spec{f.id, topo.hosts[f.src_host]->id(), topo.hosts[f.dst_host]->id(),
                             f.bytes, f.start};
    transport::TransportEndpoint* src_ep = eps[f.src_host];
    simu.scheduler().at(f.start, [src_ep, spec] { src_ep->start_flow(spec); });
  }
  simu.scheduler().run();
  const std::uint64_t packet_events = simu.scheduler().events_processed();
  ASSERT_EQ(packet_rec.completed().size(), flows.size());

  // --- fluid side over the same schedule ----------------------------------
  const flowsim::Fabric fabric = flowsim::Fabric::fat_tree(k, topo_cfg.link_rate);
  flowsim::FlowSimConfig fcfg;
  fcfg.rtt = topo.base_rtt;
  fcfg.payload_fraction = static_cast<double>(net::kMssBytes) / net::kMtuBytes;
  fcfg.prop_delay = topo_cfg.link_delay;
  fcfg.mtu_tx = topo_cfg.link_rate.tx_time(net::kMtuBytes);
  flowsim::FlowSim fs{fabric, fcfg};
  for (const auto& f : flows) {
    fs.add_flow(f.id, f.src_host, f.dst_host, f.bytes, f.start,
                flowsim::RateModel::kAmrtGrantClock);
  }
  stats::FctRecorder flow_rec{topo_cfg.link_rate, topo.base_rtt};
  const flowsim::FlowSimResult fres = fs.run(&flow_rec);
  ASSERT_EQ(fres.completed, flows.size());

  const auto ps = packet_rec.summarize();
  const auto fsum = flow_rec.summarize();
  EXPECT_EQ(flow_rec.bytes_delivered(), packet_rec.bytes_delivered());
  // Wider avg band than leaf-spine: the fluid fabric picks ECMP uplinks with
  // its own path hash, so individual agg/core collisions land on different
  // flows than the packet fabric's hash, and at k=4 (only 2 aggs per pod)
  // that shifts the mean by ~15%. The tail is dominated by the largest flows,
  // which collide either way, so p99 keeps the standard band.
  EXPECT_LE(std::abs(fsum.afct_us / ps.afct_us - 1.0), 0.20)
      << "fat-tree avg: flow=" << fsum.afct_us << " packet=" << ps.afct_us;
  EXPECT_LE(std::abs(fsum.p99_us / ps.p99_us - 1.0), 0.25)
      << "fat-tree p99: flow=" << fsum.p99_us << " packet=" << ps.p99_us;
  EXPECT_GE(packet_events, 10 * fres.events);

  // The bench helper runs the identical schedule: same byte count.
  const FlowFatTreeResult bench =
      run_fat_tree_flow(k, transport::Protocol::kAmrt, kNFlows, kLoad, kSeed);
  EXPECT_EQ(bench.delivered_bytes, flow_rec.bytes_delivered());
  EXPECT_EQ(bench.completed, flows.size());
}
