// Tests for the three-tier fat-tree builder (net/topology.hpp): Al-Fares
// counts and cabling symmetry, ECMP route completeness at every tier, and
// end-to-end payload conservation on a small fabric under every transport.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "core/factory.hpp"
#include "net/topology.hpp"
#include "stats/fct.hpp"
#include "test_rig.hpp"
#include "transport/endpoint.hpp"

using namespace amrt;
using namespace amrt::sim::literals;
using transport::Protocol;

namespace {

net::FatTree make_fabric(net::Network& network, int k,
                         Protocol proto = Protocol::kAmrt) {
  net::FatTreeConfig cfg;
  cfg.k = k;
  cfg.link_delay = sim::Duration::microseconds(5);
  cfg.queue_factory = core::make_queue_factory(proto);
  cfg.marker_factory = core::make_marker_factory(proto);
  return net::build_fat_tree(network, cfg);
}

}  // namespace

TEST(FatTree, CountsMatchAlFares) {
  sim::Simulation sim;
  net::Network network{sim};
  const auto topo = make_fabric(network, 4);
  // k=4: k^3/4 = 16 hosts, k/2 edge + k/2 agg per pod over k pods, (k/2)^2
  // cores; every switch has exactly k ports.
  EXPECT_EQ(topo.host_count(), 16u);
  EXPECT_EQ(topo.edges.size(), 8u);
  EXPECT_EQ(topo.aggs.size(), 8u);
  EXPECT_EQ(topo.cores.size(), 4u);
  EXPECT_EQ(network.host_count(), 16u);
  EXPECT_EQ(network.switch_count(), 20u);
  for (const auto* sw : topo.edges) EXPECT_EQ(sw->port_count(), 4);
  for (const auto* sw : topo.aggs) EXPECT_EQ(sw->port_count(), 4);
  for (const auto* sw : topo.cores) EXPECT_EQ(sw->port_count(), 4);
  EXPECT_EQ(topo.base_rtt,
            net::path_base_rtt(6, sim::Bandwidth::gbps(10), sim::Duration::microseconds(5)));
}

TEST(FatTree, WiringIsSymmetric) {
  sim::Simulation sim;
  net::Network network{sim};
  const int k = 4;
  const int half = k / 2;
  const auto topo = make_fabric(network, k);

  // Hosts and edges point at each other.
  for (std::size_t e = 0; e < topo.edges.size(); ++e) {
    for (int h = 0; h < half; ++h) {
      net::Host* host = topo.hosts[e * static_cast<std::size_t>(half) + static_cast<std::size_t>(h)];
      EXPECT_EQ(network.port_at(topo.edge_down[e][static_cast<std::size_t>(h)]).peer(), host->id());
      EXPECT_EQ(host->nic().peer(), topo.edges[e]->id());
    }
  }
  // Edge <-> agg cabling inside each pod, both directions.
  for (int p = 0; p < k; ++p) {
    for (int e = 0; e < half; ++e) {
      for (int a = 0; a < half; ++a) {
        const auto ei = static_cast<std::size_t>(p * half + e);
        const auto ai = static_cast<std::size_t>(p * half + a);
        EXPECT_EQ(network.port_at(topo.edge_up[ei][static_cast<std::size_t>(a)]).peer(),
                  topo.aggs[ai]->id());
        EXPECT_EQ(network.port_at(topo.agg_down[ai][static_cast<std::size_t>(e)]).peer(),
                  topo.edges[ei]->id());
      }
    }
  }
  // Agg `a` of every pod serves core group [a*half, (a+1)*half), and each
  // core has exactly one downlink per pod.
  for (int p = 0; p < k; ++p) {
    for (int a = 0; a < half; ++a) {
      const auto ai = static_cast<std::size_t>(p * half + a);
      for (int j = 0; j < half; ++j) {
        const auto ci = static_cast<std::size_t>(a * half + j);
        EXPECT_EQ(network.port_at(topo.agg_up[ai][static_cast<std::size_t>(j)]).peer(),
                  topo.cores[ci]->id());
        EXPECT_EQ(network.port_at(topo.core_down[ci][static_cast<std::size_t>(p)]).peer(),
                  topo.aggs[ai]->id());
      }
    }
  }
}

TEST(FatTree, EcmpRoutesAreCompleteAtEveryTier) {
  sim::Simulation sim;
  net::Network network{sim};
  const int k = 4;
  const int half = k / 2;
  const auto topo = make_fabric(network, k);

  const auto hosts_per_pod = static_cast<std::size_t>(half * half);
  for (std::size_t hi = 0; hi < topo.host_count(); ++hi) {
    const net::NodeId dst = topo.hosts[hi]->id();
    const std::size_t dst_pod = hi / hosts_per_pod;
    const std::size_t dst_edge = hi / static_cast<std::size_t>(half);

    // Edges: one port to a local host, the full uplink fan elsewhere.
    for (std::size_t e = 0; e < topo.edges.size(); ++e) {
      ASSERT_NO_THROW(topo.edges[e]->routes().require_route(dst));
      const auto fan = topo.edges[e]->routes().ports_for(dst).size();
      EXPECT_EQ(fan, e == dst_edge ? 1u : static_cast<std::size_t>(half));
    }
    // Aggs: one downlink within the pod, all core uplinks across pods.
    for (std::size_t a = 0; a < topo.aggs.size(); ++a) {
      ASSERT_NO_THROW(topo.aggs[a]->routes().require_route(dst));
      const auto fan = topo.aggs[a]->routes().ports_for(dst).size();
      const std::size_t agg_pod = a / static_cast<std::size_t>(half);
      EXPECT_EQ(fan, agg_pod == dst_pod ? 1u : static_cast<std::size_t>(half));
    }
    // Cores: exactly one pod downlink each.
    for (const auto* core : topo.cores) {
      ASSERT_NO_THROW(core->routes().require_route(dst));
      EXPECT_EQ(core->routes().ports_for(dst).size(), 1u);
    }
  }
}

TEST(FatTree, RejectsOddOrTinyK) {
  sim::Simulation sim;
  net::Network network{sim};
  net::FatTreeConfig cfg;
  cfg.queue_factory = core::make_queue_factory(Protocol::kAmrt);
  cfg.k = 3;
  EXPECT_THROW((void)net::build_fat_tree(network, cfg), std::invalid_argument);
  cfg.k = 0;
  EXPECT_THROW((void)net::build_fat_tree(network, cfg), std::invalid_argument);
}

// Real traffic across pods: delivered payload equals injected payload, all
// flows finish, and after drain every switch queue satisfies the packet
// conservation identity enqueued == dequeued + dropped with nothing left.
class FatTreeConservation : public ::testing::TestWithParam<Protocol> {};

TEST_P(FatTreeConservation, CrossPodTrafficDeliveredExactlyOnce) {
  const Protocol proto = GetParam();
  sim::Simulation sim{7};
  sim::Scheduler& sched = sim.scheduler();
  net::Network network{sim};
  const auto topo = make_fabric(network, 4, proto);

  transport::TransportConfig tcfg;
  tcfg.host_rate = sim::Bandwidth::gbps(10);
  tcfg.base_rtt = topo.base_rtt;
  stats::FctRecorder recorder{tcfg.host_rate, topo.base_rtt};

  std::vector<transport::TransportEndpoint*> eps;
  for (net::Host* host : topo.hosts) {
    auto ep = core::make_endpoint(proto, sim, *host, tcfg, &recorder);
    eps.push_back(ep.get());
    host->attach(std::move(ep));
  }

  // Intra-edge, intra-pod and cross-pod flows, staggered starts.
  struct Spec {
    std::size_t src, dst;
    std::uint64_t bytes;
  };
  const std::vector<Spec> specs = {
      {0, 1, 40'000},   // same edge
      {0, 3, 120'000},  // same pod, other edge
      {2, 13, 250'000}, {5, 8, 90'000}, {15, 0, 180'000},  // cross-pod
      {7, 12, 60'000},  {9, 2, 30'000},
  };
  std::uint64_t total = 0;
  net::FlowId id = 1;
  for (const auto& s : specs) {
    transport::FlowSpec spec{id, topo.hosts[s.src]->id(), topo.hosts[s.dst]->id(), s.bytes,
                             sim::TimePoint::zero() + sim::Duration::microseconds(10) * id};
    transport::TransportEndpoint* src_ep = eps[s.src];
    sched.at(spec.start, [src_ep, spec] { src_ep->start_flow(spec); });
    total += s.bytes;
    ++id;
  }

  sched.run();  // natural drain: no samplers keep the loop alive
  EXPECT_EQ(recorder.completed().size(), specs.size());
  EXPECT_EQ(recorder.bytes_delivered(), total);

  for (const auto& sw : network.switches()) {
    for (int p = 0; p < sw.port_count(); ++p) {
      const auto& st = sw.port(p).queue().stats();
      EXPECT_TRUE(sw.port(p).queue().empty());
      EXPECT_EQ(st.enqueued, st.dequeued + st.dropped);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTransports, FatTreeConservation,
                         ::testing::ValuesIn(testutil::kAllProtocols),
                         [](const ::testing::TestParamInfo<Protocol>& info) {
                           return std::string(transport::to_string(info.param));
                         });
