// Unit tests for the flow-level fast path (src/flowsim): fabric link layout
// and path resolution, max-min water-filling, the AMRT/DCTCP/traditional
// rate ramps, usage recording and observer accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "flowsim/fabric.hpp"
#include "flowsim/flowsim.hpp"
#include "stats/fct.hpp"

using namespace amrt;
using namespace amrt::flowsim;
using namespace amrt::sim::literals;
using amrt::sim::Bandwidth;
using amrt::sim::Duration;
using amrt::sim::TimePoint;

namespace {

constexpr double kCapBps = 10e9;

Fabric small_ls() { return Fabric::leaf_spine(2, 2, 2, Bandwidth::gbps(10)); }

FlowSimConfig quiet_config() {
  FlowSimConfig cfg;
  cfg.rtt = 100_us;
  cfg.payload_fraction = 1460.0 / 1500.0;
  cfg.prop_delay = 10_us;
  cfg.mtu_tx = Duration::nanoseconds(1200);
  return cfg;
}

// Payload bytes/sec a 10G link carries under the MSS/MTU derate.
double payload_Bps(const FlowSimConfig& cfg) { return kCapBps / 8.0 * cfg.payload_fraction; }

}  // namespace

// ---------------------------------------------------------------------------
// Fabric: layout and path resolution.

TEST(FlowFabric, LeafSpineLinkLayout) {
  const Fabric f = small_ls();
  EXPECT_EQ(f.n_hosts(), 4u);
  // [4 host up][4 host down][2*2 leaf up][2*2 spine down].
  EXPECT_EQ(f.link_count(), 16u);
  EXPECT_EQ(f.host_up(0), 0u);
  EXPECT_EQ(f.host_down(0), 4u);
  EXPECT_EQ(f.leaf_up(0, 0), 8u);
  EXPECT_EQ(f.leaf_up(1, 1), 11u);
  EXPECT_EQ(f.spine_down(0, 0), 12u);
  EXPECT_EQ(f.spine_down(1, 1), 15u);
  for (LinkId l = 0; l < f.link_count(); ++l) EXPECT_DOUBLE_EQ(f.capacity_bps(l), kCapBps);
}

TEST(FlowFabric, IntraLeafPathSkipsTheFabric) {
  const Fabric f = small_ls();
  std::vector<LinkId> path;
  f.path(7, 0, 1, path);  // hosts 0,1 share leaf 0
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], f.host_up(0));
  EXPECT_EQ(path[1], f.host_down(1));
}

TEST(FlowFabric, InterLeafPathIsDeterministicPerFlow) {
  const Fabric f = small_ls();
  std::vector<LinkId> a, b;
  f.path(42, 0, 2, a);  // leaf 0 -> leaf 1
  f.path(42, 0, 2, b);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a, b);  // the ECMP choice is a pure function of the flow id
  const int spine = static_cast<int>(path_hash(42) % 2);
  EXPECT_EQ(a[1], f.leaf_up(0, spine));
  EXPECT_EQ(a[2], f.spine_down(spine, 1));
}

TEST(FlowFabric, FatTreePathLengthsByLocality) {
  const Fabric f = Fabric::fat_tree(4, Bandwidth::gbps(10));
  EXPECT_EQ(f.n_hosts(), 16u);  // k^3/4
  std::vector<LinkId> path;
  f.path(1, 0, 1, path);  // same edge switch
  EXPECT_EQ(path.size(), 2u);
  path.clear();
  f.path(1, 0, 2, path);  // same pod, different edge
  EXPECT_EQ(path.size(), 4u);
  path.clear();
  f.path(1, 0, 15, path);  // inter-pod: up to a core and back down
  EXPECT_EQ(path.size(), 6u);
}

TEST(FlowFabric, RejectsBadHostPairs) {
  const Fabric f = small_ls();
  std::vector<LinkId> path;
  EXPECT_THROW(f.path(1, 0, 0, path), std::invalid_argument);
  EXPECT_THROW(f.path(1, 0, 99, path), std::invalid_argument);
  EXPECT_THROW(Fabric::fat_tree(3, Bandwidth::gbps(10)), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// FlowSim: draining, sharing, ramps.

TEST(FlowSim, SingleFlowDrainsAtPayloadRate) {
  const Fabric f = small_ls();
  const FlowSimConfig cfg = quiet_config();
  FlowSim fs{f, cfg};
  const std::uint64_t bytes = 1'460'000;
  fs.add_flow(1, 0, 1, bytes, TimePoint::zero(), RateModel::kInstant);

  stats::FctRecorder rec{Bandwidth::gbps(10), 100_us};
  const FlowSimResult r = fs.run(&rec);
  EXPECT_EQ(r.started, 1u);
  EXPECT_EQ(r.completed, 1u);
  ASSERT_EQ(rec.completed().size(), 1u);

  // Drain time at the payload-derated line rate, plus the 2-link pipeline
  // latency (2 props + 1 store-and-forward MTU).
  const double drain_s = static_cast<double>(bytes) / payload_Bps(cfg);
  const double want_us = drain_s * 1e6 + 2 * 10.0 + 1.2;
  EXPECT_NEAR(rec.completed()[0].fct().to_micros(), want_us, 1.0);
  EXPECT_EQ(rec.bytes_delivered(), bytes);
}

TEST(FlowSim, EqualSharingDoublesTheDrainTime) {
  const Fabric f = small_ls();
  const FlowSimConfig cfg = quiet_config();
  FlowSim fs{f, cfg};
  const std::uint64_t bytes = 1'460'000;
  // Both flows bottleneck on host 0's downlink.
  fs.add_flow(1, 1, 0, bytes, TimePoint::zero(), RateModel::kInstant);
  fs.add_flow(2, 2, 0, bytes, TimePoint::zero(), RateModel::kInstant);

  stats::FctRecorder rec{Bandwidth::gbps(10), 100_us};
  fs.run(&rec);
  ASSERT_EQ(rec.completed().size(), 2u);
  const double drain_us = static_cast<double>(bytes) / payload_Bps(cfg) * 1e6;
  for (const auto& flow : rec.completed()) {
    EXPECT_NEAR(flow.fct().to_micros(), 2 * drain_us, 2 * drain_us * 0.02 + 50.0);
  }
}

TEST(FlowSim, MaxMinWaterFillingPropagatesResidualShares) {
  const Fabric f = Fabric::leaf_spine(1, 1, 4, Bandwidth::gbps(10));
  const FlowSimConfig cfg = quiet_config();
  FlowSim fs{f, cfg};
  const std::uint64_t bytes = 1'460'000;
  // A and B share host 0's uplink (half rate each); C owns its own path.
  fs.add_flow(1, 0, 1, bytes, TimePoint::zero(), RateModel::kInstant);
  fs.add_flow(2, 0, 2, bytes, TimePoint::zero(), RateModel::kInstant);
  fs.add_flow(3, 3, 2, bytes, TimePoint::zero(), RateModel::kInstant);

  // C shares host 2's downlink with B (B frozen at half by the uplink), so
  // max-min gives C the remaining half plus the slack: C = cap - cap/2.
  stats::FctRecorder rec{Bandwidth::gbps(10), 100_us};
  fs.run(&rec);
  ASSERT_EQ(rec.completed().size(), 3u);
  const double drain_us = static_cast<double>(bytes) / payload_Bps(cfg) * 1e6;
  const auto fct_us = [&](std::uint64_t id) {
    for (const auto& flow : rec.completed()) {
      if (flow.flow == id) return flow.fct().to_micros();
    }
    return -1.0;
  };
  EXPECT_NEAR(fct_us(1), 2 * drain_us, 2 * drain_us * 0.02 + 50.0);
  EXPECT_NEAR(fct_us(2), 2 * drain_us, 2 * drain_us * 0.02 + 50.0);
  EXPECT_NEAR(fct_us(3), 2 * drain_us, 2 * drain_us * 0.02 + 50.0);
}

namespace {

// One long foreground flow disturbed by a short burst: returns the long
// flow's FCT under `model`. The burst halves the long flow's share; after it
// drains, the model decides how fast the rate comes back.
double disturbed_fct_us(RateModel model, bool ramp_latest) {
  const Fabric f = Fabric::leaf_spine(1, 1, 4, Bandwidth::gbps(10));
  FlowSimConfig cfg = quiet_config();
  cfg.amrt_ramp_latest = ramp_latest;
  FlowSim fs{f, cfg};
  const std::uint64_t long_bytes = 12'166'666;  // ~10ms at the payload rate
  const std::uint64_t burst_bytes = 1'216'666;  // ~2ms at half rate
  fs.add_flow(1, 0, 1, long_bytes, TimePoint::zero(), model);
  fs.add_flow(2, 2, 1, burst_bytes, TimePoint::zero() + 1_ms, RateModel::kInstant);

  stats::FctRecorder rec{Bandwidth::gbps(10), 100_us};
  fs.run(&rec);
  for (const auto& flow : rec.completed()) {
    if (flow.flow == 1) return flow.fct().to_micros();
  }
  return -1.0;
}

}  // namespace

TEST(FlowSim, RampModelsOrderRecoverySpeed) {
  const double instant = disturbed_fct_us(RateModel::kInstant, false);
  const double amrt_early = disturbed_fct_us(RateModel::kAmrtGrantClock, false);
  const double amrt_late = disturbed_fct_us(RateModel::kAmrtGrantClock, true);
  const double dctcp = disturbed_fct_us(RateModel::kDctcpThreshold, false);
  const double traditional = disturbed_fct_us(RateModel::kTraditional, false);
  ASSERT_GT(instant, 0.0);

  // Eq. 4 vs Eq. 5 vs Eq. 6 ordering: the earliest AMRT ramp recovers within
  // about one RTT of instant; the latest bound is slower; DCTCP's one-MSS
  // additive increase is slower still; traditional never recovers at all.
  EXPECT_GE(amrt_early, instant - 1.0);
  EXPECT_LE(amrt_early, instant + 2 * 100.0);  // within ~2 RTTs of ideal
  EXPECT_GT(amrt_late, amrt_early);
  EXPECT_GT(dctcp, amrt_late);
  EXPECT_GT(traditional, dctcp);

  // Traditional is pinned at half rate for its remaining ~9/10 of the bytes:
  // analytically fct ~ 1ms at full + ~11.17ms/0.5... just bound it hard.
  EXPECT_GT(traditional, instant * 1.5);
}

TEST(FlowSim, TraditionalRateNeverRecovers) {
  // Direct check of the Eq. 6 semantics: after the burst departs, a
  // traditional flow's completion matches the no-recovery prediction.
  const Fabric f = Fabric::leaf_spine(1, 1, 4, Bandwidth::gbps(10));
  const FlowSimConfig cfg = quiet_config();
  FlowSim fs{f, cfg};
  const double cap = payload_Bps(cfg);
  const std::uint64_t long_bytes = static_cast<std::uint64_t>(cap * 0.010);  // 10ms of bytes
  const std::uint64_t burst_bytes = static_cast<std::uint64_t>(cap * 0.001);
  fs.add_flow(1, 0, 1, long_bytes, TimePoint::zero(), RateModel::kTraditional);
  fs.add_flow(2, 2, 1, burst_bytes, TimePoint::zero() + 1_ms, RateModel::kInstant);

  stats::FctRecorder rec{Bandwidth::gbps(10), 100_us};
  fs.run(&rec);
  double fct_us = -1.0;
  for (const auto& flow : rec.completed()) {
    if (flow.flow == 1) fct_us = flow.fct().to_micros();
  }
  // 1ms at full rate, then cap/2 forever: remaining 9ms of bytes take 18ms.
  EXPECT_NEAR(fct_us, 1'000.0 + 18'000.0, 250.0);
}

TEST(FlowSim, UsageRecordingConservesBytes) {
  const Fabric f = small_ls();
  const FlowSimConfig cfg = quiet_config();
  FlowSim fs{f, cfg};
  const std::uint64_t bytes = 2'920'000;
  fs.add_flow(1, 0, 1, bytes, TimePoint::zero(), RateModel::kInstant);
  fs.record_link_usage(500_us);
  fs.run(nullptr);

  const LinkId up = f.host_up(0);
  EXPECT_NEAR(fs.link_bytes(up), static_cast<double>(bytes), 1.0);
  EXPECT_EQ(fs.link_first_busy(up), TimePoint::zero());
  // usage_[link][bin] is a mean rate over the bin: integrate it back.
  double integrated = 0.0;
  for (const double mean_rate : fs.link_usage()[up]) integrated += mean_rate * 500e-6;
  EXPECT_NEAR(integrated, static_cast<double>(bytes), static_cast<double>(bytes) * 1e-6);
  // An untouched link recorded nothing.
  EXPECT_DOUBLE_EQ(fs.link_bytes(f.host_up(3)), 0.0);
}

TEST(FlowSim, ObserverSeesEveryByteExactlyOnce) {
  const Fabric f = small_ls();
  FlowSim fs{f, quiet_config()};
  const std::uint64_t sizes[] = {1460, 73'000, 1'460'000};
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < 3; ++i) {
    fs.add_flow(i + 1, i % 2, 2 + (i % 2), sizes[i],
                TimePoint::zero() + Duration::microseconds(static_cast<std::int64_t>(i * 50)),
                RateModel::kAmrtGrantClock);
    total += sizes[i];
  }
  stats::FctRecorder rec{Bandwidth::gbps(10), 100_us};
  const FlowSimResult r = fs.run(&rec);
  EXPECT_EQ(r.started, 3u);
  EXPECT_EQ(r.completed, 3u);
  EXPECT_EQ(rec.bytes_delivered(), total);
  EXPECT_EQ(rec.incomplete_count(), 0u);
  EXPECT_GT(r.events, 0u);
  EXPECT_GT(r.recomputes, 0u);
}

TEST(FlowSim, MaxTimeLeavesFlowsIncomplete) {
  const Fabric f = small_ls();
  FlowSimConfig cfg = quiet_config();
  cfg.max_time = TimePoint::zero() + 1_ms;
  FlowSim fs{f, cfg};
  // ~12ms of bytes cannot finish inside a 1ms horizon.
  fs.add_flow(1, 0, 1, 14'600'000, TimePoint::zero(), RateModel::kInstant);
  stats::FctRecorder rec{Bandwidth::gbps(10), 100_us};
  const FlowSimResult r = fs.run(&rec);
  EXPECT_EQ(r.completed, 0u);
  EXPECT_EQ(rec.incomplete_count(), 1u);
  EXPECT_EQ(r.end_time, cfg.max_time);
}

TEST(FlowSim, RejectsBadConfigAndFlows) {
  const Fabric f = small_ls();
  FlowSimConfig bad_rtt = quiet_config();
  bad_rtt.rtt = Duration::zero();
  EXPECT_THROW((FlowSim{f, bad_rtt}), std::invalid_argument);

  FlowSimConfig bad_frac = quiet_config();
  bad_frac.payload_fraction = 0.0;
  EXPECT_THROW((FlowSim{f, bad_frac}), std::invalid_argument);

  FlowSim fs{f, quiet_config()};
  EXPECT_THROW(fs.add_flow(1, 0, 1, 0, TimePoint::zero(), RateModel::kInstant),
               std::invalid_argument);
  EXPECT_THROW(fs.record_link_usage(Duration::zero()), std::invalid_argument);
}
