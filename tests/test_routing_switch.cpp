// Unit tests for routing tables, ECMP and switch forwarding.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "net/switch.hpp"
#include "net/topology.hpp"

using namespace amrt::net;
using namespace amrt::sim;
using namespace amrt::sim::literals;

namespace {
Packet to_dst(NodeId dst, FlowId flow = 1) {
  Packet p;
  p.flow = flow;
  p.dst = dst;
  p.type = PacketType::kData;
  p.wire_bytes = kMtuBytes;
  return p;
}
}  // namespace

TEST(RoutingTable, SinglePathSelected) {
  RoutingTable rt;
  rt.add_route(NodeId{5}, 2);
  EXPECT_EQ(rt.select(to_dst(NodeId{5})), 2);
}

TEST(RoutingTableDeathTest, UnknownDestinationAborts) {
  // An unroutable packet mid-run is a wiring bug, not a recoverable error:
  // the hot path aborts with a diagnostic instead of carrying throw
  // machinery (misconfiguration is meant to be caught at build time by
  // require_route).
  RoutingTable rt;
  rt.add_route(NodeId{1}, 0);
  EXPECT_DEATH((void)rt.select(to_dst(NodeId{9})), "unknown destination");
}

TEST(RoutingTable, RequireRouteValidatesAtWiringTime) {
  RoutingTable rt;
  rt.add_route(NodeId{3}, 1);
  EXPECT_NO_THROW(rt.require_route(NodeId{3}));
  EXPECT_THROW(rt.require_route(NodeId{9}), std::logic_error);
}

TEST(RoutingTable, EcmpIsPerFlowDeterministic) {
  RoutingTable rt;
  for (int p = 0; p < 4; ++p) rt.add_route(NodeId{1}, p);
  for (FlowId f = 1; f < 50; ++f) {
    const int first = rt.select(to_dst(NodeId{1}, f));
    for (int rep = 0; rep < 5; ++rep) {
      EXPECT_EQ(rt.select(to_dst(NodeId{1}, f)), first) << "flow must stay on one path";
    }
  }
}

TEST(RoutingTable, EcmpSpreadsFlows) {
  RoutingTable rt;
  for (int p = 0; p < 4; ++p) rt.add_route(NodeId{1}, p);
  std::set<int> used;
  for (FlowId f = 1; f < 100; ++f) used.insert(rt.select(to_dst(NodeId{1}, f)));
  EXPECT_EQ(used.size(), 4u);
}

TEST(RoutingTable, PortsForExposesEcmpSet) {
  RoutingTable rt;
  rt.add_route(NodeId{1}, 0);
  rt.add_route(NodeId{1}, 3);
  EXPECT_EQ(rt.ports_for(NodeId{1}).size(), 2u);
  EXPECT_EQ(rt.destinations(), 1u);
}

TEST(RoutingTable, RouteCacheSurvivesChurnAndInvalidation) {
  // The per-flow route cache must never change an answer: repeated lookups
  // across many interleaved flows (direct-mapped slots will collide and
  // evict) always reproduce the first pick, and adding a route afterwards
  // rebuilds the table without stale cached ports escaping.
  RoutingTable rt;
  for (int p = 0; p < 3; ++p) rt.add_route(NodeId{1}, p);
  std::map<FlowId, int> first_pick;
  for (FlowId f = 1; f <= 2000; ++f) first_pick[f] = rt.select(to_dst(NodeId{1}, f));
  for (int round = 0; round < 3; ++round) {
    for (FlowId f = 1; f <= 2000; ++f) {
      ASSERT_EQ(rt.select(to_dst(NodeId{1}, f)), first_pick[f]) << "flow " << f;
    }
  }
  // Table mutation invalidates the compiled form and the cache wholesale;
  // every answer must still be a member of the (new) ECMP set.
  rt.add_route(NodeId{1}, 7);
  std::set<int> used;
  for (FlowId f = 1; f <= 2000; ++f) used.insert(rt.select(to_dst(NodeId{1}, f)));
  for (int p : used) EXPECT_TRUE((p >= 0 && p < 3) || p == 7);
  EXPECT_TRUE(used.count(7) > 0) << "new route never selected after invalidation";
}

TEST(RoutingTable, SprayCountersArePerDestination) {
  // Two spray destinations on one switch must round-robin independently:
  // with a shared counter, alternating traffic would visit only half of
  // each destination's ports (correlated lockstep).
  RoutingTable rt;
  rt.set_mode(MultipathMode::kPacketSpray);
  for (int p = 0; p < 2; ++p) rt.add_route(NodeId{1}, p);
  for (int p = 2; p < 4; ++p) rt.add_route(NodeId{2}, p);
  std::set<int> used1, used2;
  for (int i = 0; i < 4; ++i) {
    used1.insert(rt.select(to_dst(NodeId{1})));
    used2.insert(rt.select(to_dst(NodeId{2})));
  }
  EXPECT_EQ(used1, (std::set<int>{0, 1}));
  EXPECT_EQ(used2, (std::set<int>{2, 3}));
}

TEST(RoutingTable, SpraySkipsControlPackets) {
  RoutingTable rt;
  rt.set_mode(MultipathMode::kPacketSpray);
  for (int p = 0; p < 4; ++p) rt.add_route(NodeId{1}, p);
  Packet ctrl = to_dst(NodeId{1});
  ctrl.type = PacketType::kGrant;
  const int first = rt.select(ctrl);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(rt.select(ctrl), first) << "control packets must stay on the hashed path";
  }
}

TEST(EcmpHash, DistinctForConsecutiveFlows) {
  std::set<std::uint64_t> hashes;
  for (FlowId f = 0; f < 1000; ++f) hashes.insert(ecmp_hash(f));
  EXPECT_EQ(hashes.size(), 1000u);  // no collisions on a small range
}

TEST(Switch, ForwardsToRoutedPort) {
  Simulation sim;
  Scheduler& sched = sim.scheduler();
  Network net{sim};
  const SwitchId sw = net.add_switch();
  const HostId h0 = net.add_host(Bandwidth::gbps(10), 1_us, std::make_unique<DropTailQueue>(64));
  const HostId h1 = net.add_host(Bandwidth::gbps(10), 1_us, std::make_unique<DropTailQueue>(64));
  const PortId h0_down = net.attach_host(h0, sw, std::make_unique<DropTailQueue>(64));
  const PortId h1_down = net.attach_host(h1, sw, std::make_unique<DropTailQueue>(64));
  net.switch_at(sw).routes().add_route(net.id_of(h0), h0_down);
  net.switch_at(sw).routes().add_route(net.id_of(h1), h1_down);

  net.switch_at(sw).handle_packet(to_dst(net.id_of(h1)), 0);
  sched.run();
  EXPECT_EQ(net.host(h0).bytes_received(), 0u);
  EXPECT_EQ(net.host(h1).bytes_received(), kMtuBytes);
}

TEST(Switch, PortAccessorsAndCount) {
  Simulation sim;
  Network net{sim};
  const SwitchId sw = net.add_switch();
  EXPECT_EQ(net.switch_at(sw).port_count(), 0);
  const SwitchId a = net.add_switch();
  net.add_switch_port(sw, net.id_of(a), Bandwidth::gbps(10), 1_us,
                      std::make_unique<DropTailQueue>(8));
  EXPECT_EQ(net.switch_at(sw).port_count(), 1);
  EXPECT_EQ(net.switch_at(sw).port(0).config().rate, Bandwidth::gbps(10));
}
