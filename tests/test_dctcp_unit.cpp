// DCTCP sender-driven wing unit tests (DESIGN.md §13): the DctcpCc window
// state machine against hand-computed sequences, PIAS demotion-threshold
// crossings, the threshold-ECN dequeue marker, ECN-Echo fidelity under
// reordering, and end-to-end completion for pure-DCTCP and mixed fabrics.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "core/factory.hpp"
#include "core/threshold_ecn.hpp"
#include "net/queue.hpp"
#include "net/topology.hpp"
#include "stats/fct.hpp"
#include "transport/dctcp.hpp"

using namespace amrt;
using transport::DctcpCc;
using transport::pias_priority;

namespace {

// Feeds one full observation window of ACKs, `marked` of them with ECN-Echo
// (spread from the front); returns when the window closes.
void feed_window(DctcpCc& cc, std::uint32_t marked) {
  std::uint32_t fed = 0;
  for (;;) {
    const bool closed = cc.on_ack(fed < marked);
    ++fed;
    if (closed) return;
    ASSERT_LT(fed, 1'000'000u) << "window never closed";
  }
}

}  // namespace

// --- DctcpCc: alpha EWMA -----------------------------------------------------

TEST(DctcpCcAlpha, MatchesHandComputedSequence) {
  // g = 1/16, alpha starts at 1. A fully marked window keeps alpha at 1
  // (F = 1); each unmarked window then decays it by exactly 15/16.
  DctcpCc cc{1.0 / 16.0, 4, 1024};
  EXPECT_DOUBLE_EQ(cc.alpha(), 1.0);

  feed_window(cc, 4);  // every ACK marked: alpha <- (15/16)*1 + (1/16)*1 = 1
  EXPECT_DOUBLE_EQ(cc.alpha(), 1.0);

  // Hand-computed decay: 0.9375, 0.87890625, 0.823974609375.
  std::uint32_t w = cc.cwnd_pkts();
  (void)w;
  feed_window(cc, 0);
  EXPECT_DOUBLE_EQ(cc.alpha(), 0.9375);
  feed_window(cc, 0);
  EXPECT_DOUBLE_EQ(cc.alpha(), 0.87890625);
  feed_window(cc, 0);
  EXPECT_DOUBLE_EQ(cc.alpha(), 0.823974609375);
}

TEST(DctcpCcAlpha, TracksMarkedFractionNotJustPresence) {
  // A window with half its ACKs marked moves alpha toward 0.5, not 1:
  // alpha' = (15/16) alpha + (1/16) F with F = marks/acks.
  DctcpCc cc{1.0 / 16.0, 8, 1024};
  const std::uint32_t w = cc.cwnd_pkts();
  ASSERT_EQ(w, 8u);
  feed_window(cc, 4);  // F = 0.5
  EXPECT_DOUBLE_EQ(cc.alpha(), (15.0 / 16.0) * 1.0 + (1.0 / 16.0) * 0.5);
}

TEST(DctcpCcAlpha, ConvergesToZeroWhenUnmarkedAndOneWhenSaturated) {
  DctcpCc clean{1.0 / 16.0, 4, 64};
  for (int i = 0; i < 200; ++i) feed_window(clean, 0);
  EXPECT_LT(clean.alpha(), 1e-3);
  EXPECT_GE(clean.alpha(), 0.0);

  DctcpCc hot{1.0 / 16.0, 4, 64};
  for (int i = 0; i < 200; ++i) feed_window(hot, hot.cwnd_pkts());
  EXPECT_DOUBLE_EQ(hot.alpha(), 1.0);
}

// --- DctcpCc: window cut bounds ---------------------------------------------

TEST(DctcpCcCut, NeverCutsBelowOnePacket) {
  // alpha = 1 means every marked window halves cwnd; from 10 packets the
  // floor must stop the collapse at exactly 1 MSS, and cwnd_pkts() must
  // never report 0.
  DctcpCc cc{1.0 / 16.0, 10, 1024};
  for (int i = 0; i < 50; ++i) {
    feed_window(cc, cc.cwnd_pkts());
    EXPECT_GE(cc.cwnd(), 1.0);
    EXPECT_GE(cc.cwnd_pkts(), 1u);
  }
  EXPECT_GE(cc.cuts(), 1u);
}

TEST(DctcpCcCut, UnmarkedWindowDoesNotCut) {
  DctcpCc cc{1.0 / 16.0, 10, 1024};
  const double before = cc.cwnd();
  feed_window(cc, 0);
  EXPECT_GT(cc.cwnd(), before);  // pure growth
  EXPECT_EQ(cc.cuts(), 0u);
}

TEST(DctcpCcCut, CwndRespectsCap) {
  DctcpCc cc{1.0 / 16.0, 10, 16};
  for (int i = 0; i < 100; ++i) feed_window(cc, 0);
  EXPECT_LE(cc.cwnd(), 16.0);
  EXPECT_LE(cc.cwnd_pkts(), 16u);
}

// --- DctcpCc: slow start -> congestion avoidance -----------------------------

TEST(DctcpCcPhases, SlowStartDoublesThenFirstCutEntersCongestionAvoidance) {
  DctcpCc cc{1.0 / 16.0, 4, 4096};
  ASSERT_TRUE(cc.in_slow_start());

  // Slow start: +1 per ACK, so one full window doubles cwnd (4 -> 8 -> 16).
  feed_window(cc, 0);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 8.0);
  feed_window(cc, 0);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 16.0);
  EXPECT_TRUE(cc.in_slow_start());

  // First marked window: the cut sets ssthresh = cwnd, ending slow start.
  feed_window(cc, cc.cwnd_pkts());
  EXPECT_FALSE(cc.in_slow_start());

  // Congestion avoidance: one unmarked window adds ~1 packet, not 2x.
  const double before = cc.cwnd();
  feed_window(cc, 0);
  EXPECT_GT(cc.cwnd(), before);
  EXPECT_LT(cc.cwnd() - before, 1.5);
}

TEST(DctcpCcPhases, TimeoutCollapsesToOneAndReentersSlowStart) {
  DctcpCc cc{1.0 / 16.0, 4, 4096};
  feed_window(cc, 0);  // grow a little first
  const double before = cc.cwnd();
  cc.on_timeout();
  EXPECT_DOUBLE_EQ(cc.cwnd(), 1.0);
  EXPECT_EQ(cc.timeouts(), 1u);
  EXPECT_TRUE(cc.in_slow_start());  // 1 < ssthresh = max(before/2, 2)
  (void)before;
  // Recovery grows exponentially again until ssthresh.
  feed_window(cc, 0);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 2.0);
}

// --- PIAS demotion ----------------------------------------------------------

TEST(PiasPriority, GeometricThresholdCrossings) {
  // T_l = 1000 << l: bands are [0,1000), [1000,2000), [2000,4000), [4000,inf).
  const std::uint64_t base = 1'000;
  const std::uint8_t levels = 4;
  EXPECT_EQ(pias_priority(0, base, levels), 0);
  EXPECT_EQ(pias_priority(999, base, levels), 0);
  EXPECT_EQ(pias_priority(1'000, base, levels), 1);  // first crossing, exact
  EXPECT_EQ(pias_priority(1'999, base, levels), 1);
  EXPECT_EQ(pias_priority(2'000, base, levels), 2);
  EXPECT_EQ(pias_priority(3'999, base, levels), 2);
  EXPECT_EQ(pias_priority(4'000, base, levels), 3);
  EXPECT_EQ(pias_priority(~std::uint64_t{0}, base, levels), 3);  // capped
}

TEST(PiasPriority, DegenerateConfigsPinToTopBand) {
  EXPECT_EQ(pias_priority(123'456, 1'000, 1), 0);  // one band: nothing to demote
  EXPECT_EQ(pias_priority(123'456, 0, 8), 0);      // zero base disables demotion
}

TEST(PiasPriority, HugeBaseThresholdDoesNotOverflow) {
  // Crossings at 2^62 and 2^63 are representable; the next doubling would
  // overflow, so the overflow guard pins everything past 2^63 at level 2
  // instead of wrapping around to band 0.
  const std::uint64_t base = 1ULL << 62;
  EXPECT_EQ(pias_priority(0, base, 8), 0);
  EXPECT_EQ(pias_priority(1ULL << 62, base, 8), 1);
  EXPECT_EQ(pias_priority(~std::uint64_t{0}, base, 8), 2);
}

// --- Threshold-ECN marker ----------------------------------------------------

namespace {

net::Packet dctcp_data(std::uint32_t seq) {
  net::Packet p;
  p.flow = 1;
  p.seq = seq;
  p.type = net::PacketType::kData;
  p.payload_bytes = 1'000;
  p.wire_bytes = 1'000 + net::kHeaderBytes;
  p.ecn_capable = true;
  p.ce = false;
  p.threshold_ecn = true;
  return p;
}

}  // namespace

TEST(ThresholdEcnMarker, MarksWhenResidualBacklogAtLeastK) {
  core::ThresholdEcnMarker m{2};
  net::StrictPriorityQueue q{8, 64};
  m.bind_queue(q);
  for (std::uint32_t i = 0; i < 4; ++i) q.enqueue(dctcp_data(i));

  const auto t0 = sim::TimePoint::zero();
  const auto rate = sim::Bandwidth::gbps(10);
  // Backlog behind each departure: 3, 2, 1, 0 -> marked, marked, clear, clear.
  const bool expect_mark[] = {true, true, false, false};
  for (const bool expected : expect_mark) {
    auto pkt = q.dequeue();
    ASSERT_TRUE(pkt.has_value());
    m.on_dequeue(*pkt, t0, t0, rate);
    EXPECT_EQ(pkt->ce, expected) << "backlog " << q.data_pkts();
  }
  EXPECT_EQ(m.observed(), 4u);
  EXPECT_EQ(m.marked(), 2u);
}

TEST(ThresholdEcnMarker, IgnoresAntiEcnPopulation) {
  // An AMRT data packet (threshold_ecn = false, CE starts set) passing a deep
  // queue must be left alone: the anti-ECN marker owns that population.
  core::ThresholdEcnMarker m{1};
  net::StrictPriorityQueue q{8, 64};
  m.bind_queue(q);
  net::Packet amrt = dctcp_data(0);
  amrt.threshold_ecn = false;
  amrt.ce = true;
  net::Packet follower = dctcp_data(1);
  q.enqueue(std::move(follower));  // keeps the backlog >= K during on_dequeue

  m.on_dequeue(amrt, sim::TimePoint::zero(), sim::TimePoint::zero(), sim::Bandwidth::gbps(10));
  EXPECT_TRUE(amrt.ce);  // unchanged, not ORed
  EXPECT_EQ(m.observed(), 0u);
}

// --- Endpoint: ECN-Echo fidelity under reordering ----------------------------

namespace {

// Captures ACKs (kGrant) arriving back at the sender host.
class AckTrap final : public transport::TransportEndpoint {
 public:
  using TransportEndpoint::TransportEndpoint;
  void start_flow(const transport::FlowSpec&) override {}
  std::vector<std::pair<std::uint32_t, bool>> acks;  // (seq, ECN-Echo)

 protected:
  void on_data(net::Packet&&) override {}
  void on_rts(net::Packet&&) override {}
  void on_grant(net::Packet&& p) override { acks.emplace_back(p.seq, p.marked_grant); }
  void on_done(net::Packet&&) override {}
};

// One switch, two hosts, symmetric routes — just enough fabric for ACKs to
// travel from the receiver endpoint back to the trap.
struct MiniFabric {
  sim::Simulation sim{1};
  net::Network network{sim};
  net::Host* a = nullptr;
  net::Host* b = nullptr;
  transport::TransportConfig tcfg;

  MiniFabric() {
    const auto rate = sim::Bandwidth::gbps(10);
    const auto delay = sim::Duration::microseconds(5);
    const net::SwitchId sw = network.add_switch();
    const net::HostId ha =
        network.add_host(rate, delay, std::make_unique<net::DropTailQueue>(64));
    const net::HostId hb =
        network.add_host(rate, delay, std::make_unique<net::DropTailQueue>(64));
    const net::PortId down_a = network.attach_host(ha, sw, std::make_unique<net::DropTailQueue>(64),
                                                   nullptr);
    const net::PortId down_b = network.attach_host(hb, sw, std::make_unique<net::DropTailQueue>(64),
                                                   nullptr);
    network.switch_at(sw).routes().add_route(network.id_of(ha), down_a);
    network.switch_at(sw).routes().add_route(network.id_of(hb), down_b);
    a = &network.host(ha);
    b = &network.host(hb);
    tcfg.host_rate = rate;
    tcfg.base_rtt = net::path_base_rtt(2, rate, delay);
  }
};

}  // namespace

TEST(DctcpEndpoint, EcnEchoFollowsPerPacketCeUnderReordering) {
  MiniFabric f;
  auto trap = std::make_unique<AckTrap>(f.sim, *f.a, f.tcfg, nullptr);
  AckTrap* trap_p = trap.get();
  f.a->attach(std::move(trap));
  auto rcv = std::make_unique<transport::DctcpEndpoint>(f.sim, *f.b, f.tcfg, nullptr);
  transport::DctcpEndpoint* rcv_p = rcv.get();
  f.b->attach(std::move(rcv));

  // Three-packet flow delivered out of order with a CE pattern; the echo
  // must be per packet (seq-matched), not cumulative.
  const std::uint64_t bytes = 3ull * net::kMssBytes;
  struct Arrival {
    std::uint32_t seq;
    bool ce;
  };
  const Arrival arrivals[] = {{2, true}, {0, false}, {1, true}};
  for (const auto& ar : arrivals) {
    net::Packet p;
    p.flow = 7;
    p.seq = ar.seq;
    p.type = net::PacketType::kData;
    p.payload_bytes = net::payload_of_seq(bytes, ar.seq);
    p.wire_bytes = p.payload_bytes + net::kHeaderBytes;
    p.src = f.a->id();
    p.dst = f.b->id();
    p.ecn_capable = true;
    p.threshold_ecn = true;
    p.ce = ar.ce;
    p.flow_bytes = bytes;
    rcv_p->deliver(std::move(p));
  }
  f.sim.scheduler().run();

  ASSERT_EQ(trap_p->acks.size(), 3u);
  EXPECT_EQ(trap_p->acks[0], (std::pair<std::uint32_t, bool>{2, true}));
  EXPECT_EQ(trap_p->acks[1], (std::pair<std::uint32_t, bool>{0, false}));
  EXPECT_EQ(trap_p->acks[2], (std::pair<std::uint32_t, bool>{1, true}));
  EXPECT_EQ(rcv_p->open_receiver_flows(), 0u);  // flow completed and torn down
}

TEST(DctcpEndpoint, DuplicateDataIsReAckedWithoutDoubleCounting) {
  MiniFabric f;
  auto trap = std::make_unique<AckTrap>(f.sim, *f.a, f.tcfg, nullptr);
  AckTrap* trap_p = trap.get();
  f.a->attach(std::move(trap));
  auto rcv = std::make_unique<transport::DctcpEndpoint>(f.sim, *f.b, f.tcfg, nullptr);
  transport::DctcpEndpoint* rcv_p = rcv.get();
  f.b->attach(std::move(rcv));

  stats::FctRecorder recorder{f.tcfg.host_rate, f.tcfg.base_rtt};
  auto one_pkt = [&](std::uint32_t seq) {
    net::Packet p;
    p.flow = 9;
    p.seq = seq;
    p.type = net::PacketType::kData;
    p.payload_bytes = 500;
    p.wire_bytes = 500 + net::kHeaderBytes;
    p.src = f.a->id();
    p.dst = f.b->id();
    p.ecn_capable = true;
    p.threshold_ecn = true;
    p.flow_bytes = 500;
    return p;
  };
  rcv_p->deliver(one_pkt(0));  // completes the single-packet flow
  rcv_p->deliver(one_pkt(0));  // stale retransmission: re-ACK from tombstone
  f.sim.scheduler().run();
  EXPECT_EQ(trap_p->acks.size(), 2u);
  EXPECT_EQ(rcv_p->open_receiver_flows(), 0u);
  (void)recorder;
}

// --- End-to-end: pure DCTCP and mixed fabrics --------------------------------

TEST(DctcpEndToEnd, SingleFlowCompletesOnDctcpFabric) {
  MiniFabric f;
  stats::FctRecorder recorder{f.tcfg.host_rate, f.tcfg.base_rtt};
  auto snd = std::make_unique<transport::DctcpEndpoint>(f.sim, *f.a, f.tcfg, &recorder);
  transport::DctcpEndpoint* snd_p = snd.get();
  f.a->attach(std::move(snd));
  auto rcv = std::make_unique<transport::DctcpEndpoint>(f.sim, *f.b, f.tcfg, &recorder);
  f.b->attach(std::move(rcv));

  snd_p->start_flow({1, f.a->id(), f.b->id(), 200'000, sim::TimePoint::zero()});
  f.sim.scheduler().run();

  ASSERT_EQ(recorder.completed().size(), 1u);
  EXPECT_EQ(recorder.completed().front().bytes, 200'000u);
  EXPECT_EQ(snd_p->open_sender_flows(), 0u);
  EXPECT_EQ(snd_p->timeouts(), 0u);  // clean fabric: the RTO never fires
}

TEST(DctcpEndToEnd, MixedEndpointRoutesFlowsByPopulation) {
  // One mixed endpoint per host: even flow ids ride AMRT, odd ids ride
  // DCTCP; both must complete over the shared strict-priority fabric.
  sim::Simulation sim{1};
  net::Network network{sim};
  const auto rate = sim::Bandwidth::gbps(10);
  const auto delay = sim::Duration::microseconds(5);
  auto qf = core::make_mixed_queue_factory({});
  auto mf = core::make_mixed_marker_factory({});
  const net::SwitchId sw = network.add_switch();
  const net::HostId ha = network.add_host(rate, delay, qf(true));
  const net::HostId hb = network.add_host(rate, delay, qf(true));
  const net::PortId down_a = network.attach_host(ha, sw, qf(false), mf());
  const net::PortId down_b = network.attach_host(hb, sw, qf(false), mf());
  network.switch_at(sw).routes().add_route(network.id_of(ha), down_a);
  network.switch_at(sw).routes().add_route(network.id_of(hb), down_b);
  net::Host& a = network.host(ha);
  net::Host& b = network.host(hb);

  transport::TransportConfig tcfg;
  tcfg.host_rate = rate;
  tcfg.base_rtt = net::path_base_rtt(2, rate, delay);
  stats::FctRecorder recorder{rate, tcfg.base_rtt};
  const auto is_bg = [](net::FlowId id) { return id % 2 == 1; };
  auto ea = core::make_mixed_endpoint(sim, a, tcfg, &recorder, is_bg);
  transport::TransportEndpoint* ea_p = ea.get();
  a.attach(std::move(ea));
  auto eb = core::make_mixed_endpoint(sim, b, tcfg, &recorder, is_bg);
  b.attach(std::move(eb));

  ea_p->start_flow({2, a.id(), b.id(), 100'000, sim::TimePoint::zero()});  // AMRT
  ea_p->start_flow({3, a.id(), b.id(), 100'000, sim::TimePoint::zero()});  // DCTCP
  sim.scheduler().run();

  ASSERT_EQ(recorder.completed().size(), 2u);
  EXPECT_EQ(recorder.bytes_delivered(), 200'000u);
}

// --- PIAS on the wire ---------------------------------------------------------

namespace {

// Observes data packets at the receiver host, recording PIAS priorities.
class DataTrap final : public transport::TransportEndpoint {
 public:
  using TransportEndpoint::TransportEndpoint;
  void start_flow(const transport::FlowSpec&) override {}
  std::vector<std::pair<std::uint32_t, std::uint8_t>> seen;  // (seq, priority)

 protected:
  void on_data(net::Packet&& p) override { seen.emplace_back(p.seq, p.priority); }
  void on_rts(net::Packet&&) override {}
  void on_grant(net::Packet&&) override {}
  void on_done(net::Packet&&) override {}
};

}  // namespace

TEST(DctcpEndpoint, PiasDemotesWirePrioritiesAsBytesAccumulate) {
  MiniFabric f;
  f.tcfg.pias_base_threshold_bytes = 2 * net::kMssBytes;  // demote every 2 MSS
  f.tcfg.pias_levels = 3;
  f.tcfg.dctcp_init_cwnd_pkts = 16;  // whole flow fits the initial window
  auto snd = std::make_unique<transport::DctcpEndpoint>(f.sim, *f.a, f.tcfg, nullptr);
  transport::DctcpEndpoint* snd_p = snd.get();
  f.a->attach(std::move(snd));
  auto trap = std::make_unique<DataTrap>(f.sim, *f.b, f.tcfg, nullptr);
  DataTrap* trap_p = trap.get();
  f.b->attach(std::move(trap));

  // 8 full packets; thresholds at 2 and 4 MSS, then capped at band 2. The
  // trap never ACKs, so the RTO eventually retransmits — only the initial
  // window (the first 8 arrivals, in sequence order) pins the demotions.
  snd_p->start_flow({5, f.a->id(), f.b->id(), 8ull * net::kMssBytes,
                     sim::TimePoint::zero()});
  f.sim.scheduler().run_until(sim::TimePoint::zero() + sim::Duration::milliseconds(2));

  ASSERT_GE(trap_p->seen.size(), 8u);
  const std::uint8_t expect[] = {0, 0, 1, 1, 2, 2, 2, 2};
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(trap_p->seen[i].first, i) << "initial window must arrive in order";
    EXPECT_EQ(trap_p->seen[i].second, expect[i]) << "packet " << i;
  }
}
