// Unit tests for the cancellable event set (src/sim/event_queue.hpp).
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"

using namespace amrt::sim;

namespace {
TimePoint at_ns(std::int64_t ns) { return TimePoint::from_ns(ns); }
}  // namespace

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  (void)q.push(at_ns(30), [&] { order.push_back(3); });
  (void)q.push(at_ns(10), [&] { order.push_back(1); });
  (void)q.push(at_ns(20), [&] { order.push_back(2); });
  while (auto e = q.pop()) e->cb();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    (void)q.push(at_ns(100), [&order, i] { order.push_back(i); });
  }
  while (auto e = q.pop()) e->cb();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, PopReturnsTimestamp) {
  EventQueue q;
  (void)q.push(at_ns(42), [] {});
  auto e = q.pop();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->when.ns(), 42);
}

TEST(EventQueue, EmptyPopReturnsNullopt) {
  EventQueue q;
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  auto h = q.push(at_ns(10), [&] { ++fired; });
  h.cancel();
  while (auto e = q.pop()) e->cb();
  EXPECT_EQ(fired, 0);
}

TEST(EventQueue, CancelledEventSkippedButOthersFire) {
  EventQueue q;
  std::vector<int> order;
  auto h1 = q.push(at_ns(10), [&] { order.push_back(1); });
  (void)q.push(at_ns(20), [&] { order.push_back(2); });
  h1.cancel();
  while (auto e = q.pop()) e->cb();
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue q;
  auto h = q.push(at_ns(10), [] {});
  h.cancel();
  h.cancel();  // no crash, no effect
  EXPECT_FALSE(h.pending());
}

TEST(EventQueue, PendingReflectsLifecycle) {
  EventQueue q;
  auto h = q.push(at_ns(10), [] {});
  EXPECT_TRUE(h.pending());
  (void)q.pop();
  EXPECT_FALSE(h.pending());
}

TEST(EventQueue, DefaultHandleIsNotPending) {
  EventQueue::Handle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // no crash
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  auto h = q.push(at_ns(10), [] {});
  (void)q.push(at_ns(20), [] {});
  h.cancel();
  ASSERT_TRUE(q.next_time().has_value());
  EXPECT_EQ(q.next_time()->ns(), 20);
}

TEST(EventQueue, EmptyAccountsForCancellations) {
  EventQueue q;
  auto h = q.push(at_ns(10), [] {});
  EXPECT_FALSE(q.empty());
  h.cancel();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ManyInterleavedPushesAndPops) {
  EventQueue q;
  std::int64_t last = -1;
  bool monotonic = true;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 10; ++i) {
      (void)q.push(at_ns(round * 10 + (i * 7) % 10), [] {});
    }
    // Drain half each round; order must stay globally monotonic.
    for (int i = 0; i < 5; ++i) {
      auto e = q.pop();
      ASSERT_TRUE(e.has_value());
      monotonic = monotonic && e->when.ns() >= last;
      last = e->when.ns();
    }
  }
  EXPECT_TRUE(monotonic);
}
