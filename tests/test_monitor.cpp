// Unit tests for port telemetry (src/net/monitor.hpp).
#include <gtest/gtest.h>

#include "net/monitor.hpp"
#include "net/topology.hpp"

using namespace amrt::net;
using namespace amrt::sim;
using namespace amrt::sim::literals;

namespace {
struct Rig {
  Simulation sim;
  Scheduler& sched = sim.scheduler();
  Network net{sim};
  Host* a = nullptr;
  Host* b = nullptr;
  Switch* sw = nullptr;

  Rig() {
    const SwitchId s = net.add_switch();
    const HostId ha = net.add_host(Bandwidth::gbps(10), 1_us, std::make_unique<DropTailQueue>(4096));
    const HostId hb = net.add_host(Bandwidth::gbps(10), 1_us, std::make_unique<DropTailQueue>(4096));
    const PortId a_down = net.attach_host(ha, s, std::make_unique<DropTailQueue>(256));
    const PortId b_down = net.attach_host(hb, s, std::make_unique<DropTailQueue>(256));
    net.switch_at(s).routes().add_route(net.id_of(ha), a_down);
    net.switch_at(s).routes().add_route(net.id_of(hb), b_down);
    sw = &net.switch_at(s);
    a = &net.host(ha);
    b = &net.host(hb);
  }

  void blast(int packets) {
    for (int i = 0; i < packets; ++i) {
      Packet p;
      p.flow = 1;
      p.seq = static_cast<std::uint32_t>(i);
      p.dst = b->id();
      p.type = PacketType::kData;
      p.wire_bytes = kMtuBytes;
      a->nic().enqueue(std::move(p));
    }
  }
};
}  // namespace

TEST(PortSampler, SaturatedLinkReadsNearFullUtilization) {
  Rig rig;
  rig.blast(2000);  // 2.4ms of traffic at 10G
  PortSampler sampler{rig.sim, rig.sw->port(1), 100_us};
  sampler.start();
  rig.sched.run_until(TimePoint::zero() + 2_ms);
  ASSERT_GE(sampler.samples().size(), 10u);
  // Host NIC jitter (~1/8 of a packet time) caps the offered rate at ~94%.
  EXPECT_GT(sampler.mean_utilization(), 0.90);
}

TEST(PortSampler, IdleLinkReadsZero) {
  Rig rig;
  PortSampler sampler{rig.sim, rig.sw->port(1), 100_us};
  sampler.start();
  rig.sched.run_until(TimePoint::zero() + 1_ms);
  EXPECT_DOUBLE_EQ(sampler.mean_utilization(), 0.0);
}

TEST(PortSampler, StopHaltsSampling) {
  Rig rig;
  PortSampler sampler{rig.sim, rig.sw->port(1), 100_us};
  sampler.start();
  rig.sched.run_until(TimePoint::zero() + 500_us);
  const auto n = sampler.samples().size();
  sampler.stop();
  rig.sched.run_until(TimePoint::zero() + 1_ms);
  EXPECT_EQ(sampler.samples().size(), n);
}

TEST(PortSampler, WindowedMeanSelectsInterval) {
  Rig rig;
  PortSampler sampler{rig.sim, rig.sw->port(1), 100_us};
  sampler.start();
  // Idle first ms, then traffic.
  rig.sched.at(TimePoint::zero() + 1_ms, [&] { rig.blast(2000); });
  rig.sched.run_until(TimePoint::zero() + 3_ms);
  EXPECT_LT(sampler.mean_utilization(TimePoint::zero(), TimePoint::zero() + 900_us), 0.01);
  EXPECT_GT(sampler.mean_utilization(TimePoint::zero() + 1200_us, TimePoint::zero() + 3_ms), 0.9);
}

TEST(PortSampler, TracksQueueHighWater) {
  Rig rig;
  rig.blast(200);  // NIC serializes at the same rate as the downlink: queue ~1
  PortSampler sampler{rig.sim, rig.sw->port(1), 10_us};
  sampler.start();
  rig.sched.run_until(TimePoint::zero() + 1_ms);
  EXPECT_LE(sampler.max_queue_pkts(), 2u);
}

TEST(WindowUtilization, ComputesFromByteCounters) {
  Rig rig;
  const auto& port = rig.sw->port(1);
  const auto before = port.bytes_sent();
  const auto t0 = rig.sched.now();
  rig.blast(1000);
  rig.sched.run_until(TimePoint::zero() + 1_ms);
  const double u = window_utilization(port, before, t0, rig.sched.now());
  EXPECT_GT(u, 0.9);
  EXPECT_LE(u, 1.0);
}

TEST(WindowUtilization, EmptyWindowIsZero) {
  Rig rig;
  const auto& port = rig.sw->port(1);
  EXPECT_DOUBLE_EQ(window_utilization(port, 0, TimePoint::zero(), TimePoint::zero()), 0.0);
}
