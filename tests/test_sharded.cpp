// End-to-end gates for partitioned execution (net/partition.hpp +
// harness/sharded.hpp): a k=4 fat-tree under the web-search workload must
// complete every flow at every shard count, a fixed shard count must
// reproduce bit-identically run-to-run, and the sharded FCT distribution
// must stay within a stated tolerance of the serial one — the serial path
// itself is pinned byte-for-byte by the golden fixtures, so this file only
// owns the sharded side of the contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "core/factory.hpp"
#include "harness/sharded.hpp"
#include "net/partition.hpp"
#include "net/topology.hpp"
#include "sim/shard.hpp"
#include "stats/fct.hpp"
#include "workload/generator.hpp"
#include "workload/workloads.hpp"

using namespace amrt;
using transport::Protocol;

namespace {

constexpr std::uint64_t kSeed = 11;
constexpr std::size_t kFlows = 120;
constexpr double kLoad = 0.5;

struct RunOutput {
  std::size_t flows = 0;
  std::vector<stats::FlowRecord> records;
  stats::FctSummary summary;
};

// One k=4 fat-tree web-search run. shards == 1 uses the plain serial
// scheduler; shards > 1 the windowed multi-threaded runner. Both build from
// the same seed, so topology, workload draws and flow schedule agree.
RunOutput run_fat_tree(unsigned shards, Protocol proto = Protocol::kAmrt) {
  sim::ShardGroup group{kSeed, shards};
  net::Network network{group.master()};

  net::FatTreeConfig topo_cfg;
  topo_cfg.k = 4;
  topo_cfg.link_delay = sim::Duration::microseconds(5);
  topo_cfg.queue_factory = core::make_queue_factory(proto);
  topo_cfg.marker_factory = core::make_marker_factory(proto);
  const net::FatTree topo = net::build_fat_tree(network, topo_cfg);

  harness::ShardedScenario scen{group, network,
                                net::partition_fat_tree(network, topo, shards),
                                topo_cfg.link_rate, topo.base_rtt};

  transport::TransportConfig tcfg;
  tcfg.host_rate = topo_cfg.link_rate;
  tcfg.base_rtt = topo.base_rtt;

  std::vector<transport::TransportEndpoint*> eps;
  eps.reserve(topo.hosts.size());
  for (net::Host* host : topo.hosts) {
    auto ep = core::make_endpoint(proto, scen.sim_of(host->id()), *host, tcfg,
                                  &scen.recorder_of(host->id()));
    eps.push_back(ep.get());
    host->attach(std::move(ep));
  }

  workload::FlowGenerator gen{workload::cdf(workload::Kind::kWebSearch), group.master().rng()};
  workload::TrafficConfig traffic;
  traffic.load = kLoad;
  traffic.n_flows = kFlows;
  traffic.n_hosts = topo.hosts.size();
  traffic.host_rate = topo_cfg.link_rate;
  const auto flows = gen.generate(traffic);

  for (const auto& f : flows) {
    transport::FlowSpec spec{f.id, topo.hosts[f.src_host]->id(), topo.hosts[f.dst_host]->id(),
                             f.bytes, f.start};
    transport::TransportEndpoint* src_ep = eps[f.src_host];
    scen.sched_of(spec.src).at(f.start, [src_ep, spec] { src_ep->start_flow(spec); });
  }

  scen.run({});

  RunOutput out;
  out.flows = flows.size();
  out.records = scen.merged().completed();
  out.summary = scen.merged().summarize();
  return out;
}

}  // namespace

TEST(Sharded, AllFlowsCompleteAtEveryShardCount) {
  for (const unsigned n : {1u, 2u, 4u}) {
    const RunOutput out = run_fat_tree(n);
    EXPECT_EQ(out.records.size(), out.flows) << n << " shards";
    EXPECT_EQ(out.flows, kFlows);
  }
}

TEST(Sharded, FixedShardCountIsReproducible) {
  const RunOutput a = run_fat_tree(4);
  const RunOutput b = run_fat_tree(4);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].flow, b.records[i].flow) << "slot " << i;
    EXPECT_EQ(a.records[i].bytes, b.records[i].bytes) << "slot " << i;
    EXPECT_EQ(a.records[i].start.ns(), b.records[i].start.ns()) << "slot " << i;
    EXPECT_EQ(a.records[i].end.ns(), b.records[i].end.ns()) << "slot " << i;
  }
}

TEST(Sharded, FctDistributionTracksSerialWithinTolerance) {
  // Sharding reorders same-timestamp ties across shards, so FCTs differ in
  // the tail of scheduling noise, not in protocol behavior. Observed on this
  // scenario (seed 11, 120 flows): avg within well under 1%, p99 within a
  // few percent. The gate allows 5% on the average and 15% on the p99 —
  // wide enough to not flake on tie-break drift, tight enough that a broken
  // window protocol (lost packets, stalled grants, duplicated deliveries)
  // blows through it.
  const RunOutput serial = run_fat_tree(1);
  ASSERT_EQ(serial.records.size(), serial.flows);
  for (const unsigned n : {2u, 4u}) {
    const RunOutput sharded = run_fat_tree(n);
    ASSERT_EQ(sharded.records.size(), sharded.flows) << n << " shards";
    EXPECT_NEAR(sharded.summary.afct_us, serial.summary.afct_us,
                serial.summary.afct_us * 0.05)
        << n << " shards";
    EXPECT_NEAR(sharded.summary.p99_us, serial.summary.p99_us, serial.summary.p99_us * 0.15)
        << n << " shards";
  }
}

TEST(Sharded, SerialAndShardedSeeTheSameFlowSet) {
  // Same seed -> same flow ids and sizes; only completion times may differ.
  const RunOutput serial = run_fat_tree(1);
  const RunOutput sharded = run_fat_tree(4);
  auto key = [](const stats::FlowRecord& r) { return std::make_pair(r.flow, r.bytes); };
  auto collect = [&key](const RunOutput& o) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> v;
    v.reserve(o.records.size());
    for (const auto& r : o.records) v.push_back(key(r));
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(collect(serial), collect(sharded));
}
