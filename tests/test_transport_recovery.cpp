// Loss-recovery tests: flows must survive brutal queues, trimming, and tail
// drops, without livelock and without runaway retransmission.
#include <gtest/gtest.h>

#include "audit/hooks.hpp"
#include "test_rig.hpp"

using namespace amrt;
using namespace amrt::sim::literals;
using amrt::testutil::DumbbellRig;
using amrt::testutil::RigOptions;
using transport::Protocol;

namespace {
std::string proto_name(const ::testing::TestParamInfo<Protocol>& info) {
  return transport::to_string(info.param);
}

std::uint64_t total_drops(DumbbellRig& rig) {
  std::uint64_t drops = 0;
  for (const auto& sw : rig.network().switches()) {
    for (int p = 0; p < sw.port_count(); ++p) drops += sw.port(p).queue().stats().dropped;
  }
  return drops;
}
}  // namespace

class Recovery : public ::testing::TestWithParam<Protocol> {};

TEST_P(Recovery, CompletesThroughTinyBuffers) {
  RigOptions opt;
  opt.proto = GetParam();
  opt.queues.buffer_pkts = 4;
  opt.queues.trim_threshold = 4;
  opt.pairs = 3;
  DumbbellRig rig{opt};
  // Three colliding 300KB bursts through a 4-packet bottleneck.
  for (int i = 0; i < 3; ++i) rig.start_flow(static_cast<net::FlowId>(i + 1), i, 300'000);
  ASSERT_TRUE(rig.run_to_completion(3, 1_s)) << "losses must be repaired";
  EXPECT_EQ(rig.recorder().bytes_delivered(), 900'000u);
}

TEST_P(Recovery, SurvivesExtremeIncastCollision) {
  RigOptions opt;
  opt.proto = GetParam();
  opt.queues.buffer_pkts = 2;
  opt.queues.trim_threshold = 2;
  opt.pairs = 6;
  DumbbellRig rig{opt};
  for (int i = 0; i < 6; ++i) rig.start_flow(static_cast<net::FlowId>(i + 1), i, 100'000);
  ASSERT_TRUE(rig.run_to_completion(6, 2_s));
}

TEST_P(Recovery, TailLossRepairedByStallScan) {
  // A small flow whose *last* packets drop has no later arrivals to expose
  // the hole — only the stall timer can save it.
  RigOptions opt;
  opt.proto = GetParam();
  opt.queues.buffer_pkts = 3;
  opt.queues.trim_threshold = 3;
  opt.pairs = 2;
  DumbbellRig rig{opt};
  rig.start_flow(1, 0, 30'000);
  rig.start_flow(2, 1, 30'000);  // collide to force drops
  ASSERT_TRUE(rig.run_to_completion(2, 1_s));
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, Recovery, ::testing::ValuesIn(testutil::kAllProtocols),
                         proto_name);

TEST(RecoveryNdp, TrimsInsteadOfDropping) {
  RigOptions opt;
  opt.proto = Protocol::kNdp;
  opt.queues.trim_threshold = 4;
  opt.pairs = 3;
  DumbbellRig rig{opt};
  for (int i = 0; i < 3; ++i) rig.start_flow(static_cast<net::FlowId>(i + 1), i, 300'000);
  ASSERT_TRUE(rig.run_to_completion(3, 1_s));
  std::uint64_t trims = 0;
  for (const auto& sw : rig.network().switches()) {
    for (int p = 0; p < sw.port_count(); ++p) trims += sw.port(p).queue().stats().trimmed;
  }
  EXPECT_GT(trims, 0u);
  EXPECT_EQ(total_drops(rig), 0u) << "NDP's switches never drop data";
}

TEST(RecoveryBounded, RetransmissionsStayProportionalToLosses) {
  RigOptions opt;
  opt.proto = Protocol::kAmrt;
  opt.queues.buffer_pkts = 4;
  opt.pairs = 2;
  DumbbellRig rig{opt};
  rig.start_flow(1, 0, 500'000);
  rig.start_flow(2, 1, 500'000);
  ASSERT_TRUE(rig.run_to_completion(2, 1_s));
  const std::uint64_t payload_pkts = 2 * net::packets_for_bytes(500'000);
  std::uint64_t data_sent = 0;
  for (int i = 0; i < 2; ++i) data_sent += rig.sender(i).nic().packets_sent();
  const std::uint64_t drops = total_drops(rig);
  // Everything sent = payload + retransmissions (~= drops) + control; a
  // factor-2 margin catches runaway duplicate storms.
  EXPECT_LT(data_sent, (payload_pkts + drops) * 2 + 200)
      << "suspicious retransmission volume: sent " << data_sent << " for " << payload_pkts
      << " packets with " << drops << " drops";
}

TEST(RecoveryStale, LatePacketsOfFinishedFlowsIgnored) {
  RigOptions opt;
  opt.proto = Protocol::kAmrt;
  DumbbellRig rig{opt};
  rig.start_flow(1, 0, 50'000);
  ASSERT_TRUE(rig.run_to_completion(1, 100_ms));
  const auto done = rig.recorder().completed().size();
  // Replay a stale data packet of the finished flow straight into the
  // receiver: nothing should change, no flow resurrection.
  net::Packet stale;
  stale.flow = 1;
  stale.seq = 0;
  stale.type = net::PacketType::kData;
  stale.payload_bytes = net::kMssBytes;
  stale.wire_bytes = net::kMtuBytes;
  stale.src = rig.sender(0).id();
  stale.dst = rig.receiver(0).id();
  stale.flow_bytes = 50'000;
  // The forged copy bypasses Host::send (the audited injection point), so
  // book it into the conservation ledger by hand or its delivery would be
  // flagged as a duplicate. A no-op without AMRT_AUDIT.
  rig.sim().auditor().on_inject(audit::info_of(stale));
  rig.receiver(0).handle_packet(std::move(stale), 0);
  rig.sched().run_until(rig.sched().now() + 5_ms);
  EXPECT_EQ(rig.recorder().completed().size(), done);
  EXPECT_EQ(rig.receiver_ep(0).open_receiver_flows(), 0u);
}

TEST(RecoveryBackoff, SilentFlowBacksOff) {
  // An unresponsive sender leaves the receiver probing forever; the stall
  // timer must back off instead of hammering every RTO.
  RigOptions opt;
  opt.proto = Protocol::kAmrt;
  opt.responsive = false;
  opt.unscheduled = false;
  DumbbellRig rig{opt};
  rig.start_flow(1, 0, 1'000'000);
  rig.sched().run_until(sim::TimePoint::zero() + 50_ms);
  // Without backoff the stall timer would probe every rto (~34us): ~1470
  // probes in 50ms. The 8x backoff cap must cut that by roughly 8x.
  const auto ctrl_sent = rig.receiver(0).nic().packets_sent();
  EXPECT_GE(ctrl_sent, 3u);
  EXPECT_LE(ctrl_sent, 250u);
}
