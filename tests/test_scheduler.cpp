// Unit tests for the discrete-event scheduler (src/sim/scheduler.hpp).
#include <gtest/gtest.h>

#include <vector>

#include "sim/scheduler.hpp"

using namespace amrt::sim;
using namespace amrt::sim::literals;

TEST(Scheduler, StartsAtTimeZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), TimePoint::zero());
  EXPECT_TRUE(s.idle());
}

TEST(Scheduler, CallbackObservesItsOwnFiringTime) {
  Scheduler s;
  TimePoint seen;
  (void)s.after(10_us, [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, TimePoint::zero() + 10_us);
  EXPECT_EQ(s.now(), TimePoint::zero() + 10_us);
}

TEST(Scheduler, NestedSchedulingRunsInOrder) {
  Scheduler s;
  std::vector<int> order;
  (void)s.after(1_us, [&] {
    order.push_back(1);
    (void)s.after(1_us, [&] { order.push_back(3); });
    (void)s.after(Duration::zero(), [&] { order.push_back(2); });
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, RunUntilStopsAtHorizonAndAdvancesClock) {
  Scheduler s;
  int fired = 0;
  (void)s.after(10_us, [&] { ++fired; });
  (void)s.after(30_us, [&] { ++fired; });
  s.run_until(TimePoint::zero() + 20_us);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), TimePoint::zero() + 20_us);
  s.run();  // the 30us event is still there
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, RunUntilIncludesEventsAtHorizon) {
  Scheduler s;
  int fired = 0;
  (void)s.after(20_us, [&] { ++fired; });
  s.run_until(TimePoint::zero() + 20_us);
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, StopBreaksTheLoop) {
  Scheduler s;
  int fired = 0;
  (void)s.after(1_us, [&] {
    ++fired;
    s.stop();
  });
  (void)s.after(2_us, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  s.run();  // resumable after stop
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, CancelViaHandle) {
  Scheduler s;
  int fired = 0;
  auto h = s.after(5_us, [&] { ++fired; });
  h.cancel();
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(Scheduler, SchedulingIntoThePastThrows) {
  Scheduler s;
  (void)s.after(10_us, [] {});
  s.run();
  EXPECT_THROW((void)s.at(TimePoint::zero() + 5_us, [] {}), std::logic_error);
  EXPECT_THROW((void)s.after(Duration::nanoseconds(-1), [] {}), std::logic_error);
}

TEST(Scheduler, EventLimitGuardsRunaways) {
  Scheduler s;
  s.set_event_limit(100);
  std::function<void()> loop = [&] { (void)s.after(1_ns, loop); };  // would never end
  (void)s.after(1_ns, loop);
  s.run();
  EXPECT_EQ(s.events_processed(), 100u);
}

TEST(Scheduler, ProcessedCountsOnlyFiredEvents) {
  Scheduler s;
  (void)s.after(1_us, [] {});
  auto h = s.after(2_us, [] {});
  h.cancel();
  s.run();
  EXPECT_EQ(s.events_processed(), 1u);
}

TEST(Scheduler, RunUntilWithEmptyQueueStillAdvances) {
  Scheduler s;
  s.run_until(TimePoint::zero() + 1_ms);
  EXPECT_EQ(s.now(), TimePoint::zero() + 1_ms);
}
