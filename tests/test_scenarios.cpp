// Tests of the harness scenarios behind the paper's figures — including the
// headline qualitative claims (AMRT refills spare bandwidth, baselines
// don't).
#include <gtest/gtest.h>

#include "harness/scenarios.hpp"

using namespace amrt;
using namespace amrt::sim::literals;
using harness::ChainConfig;
using harness::ChainFlow;
using harness::ChainPath;
using harness::DynamicConfig;
using harness::DynamicFlow;
using transport::Protocol;

namespace {
DynamicConfig dynamic_cfg(Protocol proto) {
  DynamicConfig cfg;
  cfg.proto = proto;
  cfg.flows = {DynamicFlow{1'500'000, sim::Duration::zero()},
               DynamicFlow{8'000'000, sim::Duration::zero()}};
  cfg.duration = 12_ms;
  cfg.bin = 250_us;
  return cfg;
}

double mean_between(const harness::TimelineResult& r, double from_ms, double to_ms) {
  double sum = 0;
  std::size_t n = 0;
  for (std::size_t b = 0; b < r.bottleneck1_util.size(); ++b) {
    const double t = static_cast<double>(b) * r.bin.to_millis();
    if (t >= from_ms && t < to_ms) {
      sum += r.bottleneck1_util[b];
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}
}  // namespace

TEST(DynamicScenario, HeadlineClaimAmrtRefillsPhostDoesNot) {
  // After the short flow completes (~2.5ms), the bottleneck's remaining
  // utilization separates the protocols: AMRT climbs back toward 100%,
  // pHost stays at the survivor's collapsed share. Compare over a window
  // where AMRT's large flow is still running (it finishes *earlier*, which
  // would otherwise depress its own tail-average with idle bins).
  const auto phost = harness::run_dynamic(dynamic_cfg(Protocol::kPhost));
  const auto amrt = harness::run_dynamic(dynamic_cfg(Protocol::kAmrt));
  ASSERT_GE(amrt.flow_fct_ms[1], 0.0);
  const double window_end = amrt.flow_fct_ms[1];
  ASSERT_GT(window_end, 4.5);
  const double phost_tail = mean_between(phost, 4.0, window_end);
  const double amrt_tail = mean_between(amrt, 4.0, window_end);
  EXPECT_GT(amrt_tail, 0.85) << "marking must drive the survivor near line rate";
  EXPECT_GT(amrt_tail, phost_tail + 0.05)
      << "AMRT tail util " << amrt_tail << " vs pHost " << phost_tail;
}

TEST(DynamicScenario, AmrtShortensLargeFlowFct) {
  const auto phost = harness::run_dynamic(dynamic_cfg(Protocol::kPhost));
  const auto amrt = harness::run_dynamic(dynamic_cfg(Protocol::kAmrt));
  ASSERT_GE(amrt.flow_fct_ms[1], 0.0) << "AMRT's large flow must finish within the window";
  if (phost.flow_fct_ms[1] >= 0) {
    EXPECT_LT(amrt.flow_fct_ms[1], phost.flow_fct_ms[1]);
  }
}

TEST(DynamicScenario, UtilizationBounded) {
  for (auto proto : {Protocol::kPhost, Protocol::kHoma, Protocol::kNdp, Protocol::kAmrt}) {
    const auto r = harness::run_dynamic(dynamic_cfg(proto));
    for (double u : r.bottleneck1_util) {
      EXPECT_GE(u, 0.0);
      EXPECT_LE(u, 1.0);
    }
  }
}

TEST(ChainScenario, AmrtLetsCoFlowGrabReleasedBandwidth) {
  // Fig. 1/11 shape: f1 (both bottlenecks) is squeezed by f3 on the second
  // bottleneck; only AMRT lets f2 climb above its initial half share.
  auto make = [](Protocol proto) {
    ChainConfig cfg;
    cfg.proto = proto;
    cfg.flows = {ChainFlow{ChainPath::kBoth, 8'000'000, sim::Duration::zero()},
                 ChainFlow{ChainPath::kFirst, 8'000'000, sim::Duration::zero()},
                 ChainFlow{ChainPath::kSecond, 6'000'000, 1_ms}};
    cfg.duration = 8_ms;
    cfg.bin = 250_us;
    return cfg;
  };
  const auto phost = harness::run_chain(make(Protocol::kPhost));
  const auto amrt = harness::run_chain(make(Protocol::kAmrt));
  // Mean f2 throughput between 2ms and 6ms.
  auto f2_mean = [](const harness::TimelineResult& r) {
    double sum = 0;
    std::size_t n = 0;
    for (std::size_t b = 8; b < 24 && b < r.flow_gbps[1].size(); ++b) {
      sum += r.flow_gbps[1][b];
      ++n;
    }
    return n ? sum / static_cast<double>(n) : 0.0;
  };
  EXPECT_GT(f2_mean(amrt), f2_mean(phost) + 1.0)
      << "AMRT f2 " << f2_mean(amrt) << " Gbps vs pHost " << f2_mean(phost);
}

TEST(ChainScenario, BothBottlenecksMonitored) {
  ChainConfig cfg;
  cfg.flows = {ChainFlow{ChainPath::kBoth, 1'000'000, sim::Duration::zero()}};
  cfg.duration = 3_ms;
  const auto r = harness::run_chain(cfg);
  EXPECT_FALSE(r.bottleneck1_util.empty());
  EXPECT_FALSE(r.bottleneck2_util.empty());
  EXPECT_GT(r.mean_util_b1, 0.0);
  EXPECT_GT(r.mean_util_b2, 0.0);
}

TEST(ManyToMany, FullyResponsiveBeatsFullyUnresponsive) {
  harness::ManyToManyConfig cfg;
  cfg.proto = Protocol::kAmrt;
  cfg.senders_per_leaf = 4;
  cfg.flow_bytes = 2'000'000;
  cfg.duration = 10_ms;
  cfg.responsive_ratio = 1.0;
  const auto full = harness::run_many_to_many(cfg);
  cfg.responsive_ratio = 0.0;
  const auto none = harness::run_many_to_many(cfg);
  EXPECT_EQ(none.responsive_senders, 0u);
  EXPECT_EQ(full.responsive_senders, 8u);
  EXPECT_GT(full.mean_downlink_util, 0.5);
  EXPECT_LT(none.mean_downlink_util, 0.05);
}

TEST(ManyToMany, HomaOvercommitRaisesUtilizationAndQueue) {
  auto run = [](int k) {
    harness::ManyToManyConfig cfg;
    cfg.proto = Protocol::kHoma;
    cfg.senders_per_leaf = 6;
    cfg.homa_overcommit = k;
    cfg.responsive_ratio = 0.4;
    cfg.flow_bytes = 3'000'000;
    cfg.duration = 10_ms;
    double util = 0, queue = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      cfg.seed = seed;
      const auto r = harness::run_many_to_many(cfg);
      util += r.mean_downlink_util;
      queue += static_cast<double>(r.max_queue_pkts);
    }
    return std::pair{util / 5, queue / 5};
  };
  const auto [u2, q2] = run(2);
  const auto [u8, q8] = run(8);
  EXPECT_GT(u8, u2) << "more overcommitment must raise utilization with unresponsive senders";
  EXPECT_GE(q8, q2) << "and it costs queueing";
}

TEST(ManyToMany, AmrtHighUtilizationSmallQueue) {
  harness::ManyToManyConfig homa_cfg;
  homa_cfg.proto = Protocol::kHoma;
  homa_cfg.senders_per_leaf = 6;
  homa_cfg.homa_overcommit = 8;
  homa_cfg.responsive_ratio = 0.6;
  homa_cfg.flow_bytes = 3'000'000;
  homa_cfg.duration = 10_ms;
  auto amrt_cfg = homa_cfg;
  amrt_cfg.proto = Protocol::kAmrt;
  double homa_q = 0, amrt_q = 0, amrt_u = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    homa_cfg.seed = amrt_cfg.seed = seed;
    homa_q += static_cast<double>(harness::run_many_to_many(homa_cfg).max_queue_pkts);
    const auto a = harness::run_many_to_many(amrt_cfg);
    amrt_q += static_cast<double>(a.max_queue_pkts);
    amrt_u += a.mean_downlink_util;
  }
  EXPECT_GT(amrt_u / 5, 0.5);
  EXPECT_LT(amrt_q, homa_q) << "AMRT must not pay Homa's overcommitment queue";
}

TEST(Incast, AllProtocolsComplete) {
  for (auto proto : {Protocol::kPhost, Protocol::kHoma, Protocol::kNdp, Protocol::kAmrt}) {
    harness::IncastConfig cfg;
    cfg.proto = proto;
    cfg.senders = 16;
    cfg.bytes_per_sender = 30'000;
    cfg.queues.buffer_pkts = 8;
    cfg.queues.trim_threshold = 8;
    const auto r = harness::run_incast(cfg);
    EXPECT_EQ(r.fct.completed, 16u) << transport::to_string(proto);
    EXPECT_GT(r.goodput_gbps, 1.0) << transport::to_string(proto);
  }
}

TEST(Incast, QueueRespectsConfiguredCap) {
  harness::IncastConfig cfg;
  cfg.proto = Protocol::kAmrt;
  cfg.senders = 24;
  cfg.queues.buffer_pkts = 8;
  const auto r = harness::run_incast(cfg);
  EXPECT_LE(r.max_queue_pkts, 8u);
  EXPECT_GT(r.drops, 0u);  // the collision must actually have happened
}
