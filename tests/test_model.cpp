// Unit + property tests for the Section-5 analytical model (src/model/).
#include <gtest/gtest.h>

#include "model/amrt_model.hpp"

using namespace amrt::model;

namespace {
Scenario base() {
  Scenario s;
  s.S = 1e6;       // 1MB
  s.C = 1e9;       // 1Gbps
  s.R = 0.5e9;     // halved
  s.T_R = 0.0;
  s.rtt = 100e-6;  // 100us
  return s;
}
}  // namespace

TEST(FillTime, PaperExampleNSixKFour) {
  // Fig. 5: n=6 back-to-back slots, k=4 vacancies -> [2, 4] RTTs.
  const auto ft = fill_time(6, 4);
  EXPECT_DOUBLE_EQ(ft.min_rtts, 2.0);
  EXPECT_DOUBLE_EQ(ft.max_rtts, 4.0);
}

TEST(FillTime, NoVacanciesIsInstant) {
  const auto ft = fill_time(10, 0);
  EXPECT_DOUBLE_EQ(ft.min_rtts, 0.0);
  EXPECT_DOUBLE_EQ(ft.max_rtts, 0.0);
}

TEST(FillTime, SingleVacancy) {
  const auto ft = fill_time(6, 1);
  EXPECT_DOUBLE_EQ(ft.min_rtts, 1.0);
  EXPECT_DOUBLE_EQ(ft.max_rtts, 1.0);
}

TEST(FillTime, RejectsInvalid) {
  EXPECT_THROW((void)fill_time(0, 0), std::invalid_argument);
  EXPECT_THROW((void)fill_time(5, 5), std::invalid_argument);
  EXPECT_THROW((void)fill_time(5, 6), std::invalid_argument);
}

TEST(FillTime, MinNeverExceedsMax) {
  for (std::uint32_t n = 2; n <= 40; ++n) {
    for (std::uint32_t k = 1; k < n; ++k) {
      const auto ft = fill_time(n, k);
      EXPECT_LE(ft.min_rtts, ft.max_rtts) << n << "," << k;
      EXPECT_GE(ft.min_rtts, 1.0);
    }
  }
}

TEST(Model, TraditionalFctMatchesEq6) {
  auto s = base();
  // T_R=0: everything at rate R: T1 = S*8/R = 16ms.
  EXPECT_DOUBLE_EQ(fct_traditional(s), 16e-3);
  s.T_R = 1e-3;  // 1ms at full rate first
  EXPECT_DOUBLE_EQ(fct_traditional(s), (8e6 - 1e9 * 1e-3) / 0.5e9 + 1e-3);
}

TEST(Model, ConvergenceBoundsOrdered) {
  const auto s = base();
  EXPECT_LE(convergence_earliest(s), convergence_latest(s));
  EXPECT_GT(convergence_earliest(s), s.T_R);
}

TEST(Model, EarliestConvergenceIsDoublingTime) {
  auto s = base();
  s.R = 0.25e9;  // needs ceil(0.75/0.25)=3 doubling steps
  EXPECT_DOUBLE_EQ(convergence_earliest(s), 3 * s.rtt);
}

TEST(Model, AmrtFctBetweenIdealAndTraditional) {
  const auto s = base();
  const double ti = s.S * 8 / s.C;
  for (double t : {convergence_earliest(s), convergence_latest(s)}) {
    const double t2 = fct_amrt(s, t);
    EXPECT_GT(t2, ti);
    EXPECT_LT(t2, fct_traditional(s));
  }
}

TEST(Model, GainsExceedOne) {
  const auto s = base();
  const auto ug = utilization_gain_bounds(s);
  const auto fg = fct_gain_bounds(s);
  EXPECT_GT(ug.min_gain, 1.0);
  EXPECT_GE(ug.max_gain, ug.min_gain);
  EXPECT_GT(fg.min_gain, 1.0);
  EXPECT_GE(fg.max_gain, fg.min_gain);
}

TEST(Model, RejectsInvalidScenarios) {
  auto s = base();
  s.R = s.C;  // no reduction
  EXPECT_THROW((void)fct_traditional(s), std::invalid_argument);
  s = base();
  s.S = 0;
  EXPECT_THROW((void)fct_traditional(s), std::invalid_argument);
  s = base();
  s.T_R = 1.0;  // flow already done before the drop
  EXPECT_THROW((void)fct_traditional(s), std::invalid_argument);
}

// Property: utilization gain grows as R/C shrinks (Fig. 7a/b trend).
class GainVsRate : public ::testing::TestWithParam<double> {};

TEST_P(GainVsRate, GainDecreasesWithRatio) {
  const double rc = GetParam();
  auto lo = base();
  lo.R = rc * lo.C;
  auto hi = base();
  hi.R = (rc + 0.1) * hi.C;
  EXPECT_GE(utilization_gain_bounds(lo).min_gain, utilization_gain_bounds(hi).min_gain);
}

INSTANTIATE_TEST_SUITE_P(RatioGrid, GainVsRate, ::testing::Values(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8));

// Property: FCT gain grows with flow size (Fig. 7 trend).
class GainVsSize : public ::testing::TestWithParam<double> {};

TEST_P(GainVsSize, LargerFlowsGainMore) {
  auto small = base();
  small.S = GetParam();
  auto large = base();
  large.S = GetParam() * 10;
  EXPECT_LE(fct_gain_bounds(small).min_gain, fct_gain_bounds(large).min_gain);
}

INSTANTIATE_TEST_SUITE_P(SizeGrid, GainVsSize, ::testing::Values(1e5, 1e6, 1e7));

TEST(Model, UtilizationGainEqualsFctRatio) {
  const auto s = base();
  const double t = convergence_latest(s);
  EXPECT_DOUBLE_EQ(utilization_gain(s, t), fct_traditional(s) / fct_amrt(s, t));
}
